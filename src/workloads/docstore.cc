#include "workloads/docstore.h"

#include <algorithm>
#include <array>
#include <cstring>

namespace fluid::wl {

DocStore::DocStore(DocstoreConfig config, paging::PagedMemory& memory,
                   blk::BlockDevice& disk)
    : config_(config),
      memory_(&memory),
      disk_(&disk),
      rng_(config.seed),
      cache_slots_(config.cache_bytes / config.record_bytes),
      records_per_block_(kPageSize / config.record_bytes) {
  free_slots_.reserve(cache_slots_);
  for (std::size_t i = cache_slots_; i-- > 0;) free_slots_.push_back(i);
  pc_free_.reserve(config_.pagecache_pages);
  for (std::size_t i = config_.pagecache_pages; i-- > 0;)
    pc_free_.push_back(i);
}

SimTime DocStore::Load(SimTime now) {
  // Write every record's block once; records are stamped with their id so
  // reads can be verified end to end.
  std::array<std::byte, kPageSize> block{};
  const std::size_t blocks =
      (config_.record_count + records_per_block_ - 1) / records_per_block_;
  for (std::size_t b = 0; b < blocks; ++b) {
    for (std::size_t r = 0; r < records_per_block_; ++r) {
      const std::uint64_t id = b * records_per_block_ + r;
      std::memcpy(block.data() + r * config_.record_bytes, &id, 8);
    }
    auto io = disk_->Write(b, block, now);
    now = io.complete_at;
  }
  return now;
}

DocStore::ReadResult DocStore::Read(std::uint64_t record_id, SimTime now) {
  ReadResult out;
  if (record_id >= config_.record_count) {
    out.status = Status::InvalidArgument("record id out of range");
    out.done = now;
    return out;
  }

  now += config_.server_op.Sample(rng_);

  // Index descent: the b-tree root stays hot; the leaf page depends on the
  // key. Then a few mongod heap pages (BSON scratch, session state) — all
  // of them ordinary VM memory that may fault under memory pressure.
  {
    paging::TouchResult t =
        memory_->Touch(IndexBase(), /*is_write=*/false, now);
    if (!t.status.ok()) return ReadResult{t.status, t.done, false};
    now = t.done;
    const VirtAddr leaf =
        IndexBase() + kPageSize + (record_id * 8 / kPageSize) * kPageSize;
    t = memory_->Touch(leaf, /*is_write=*/false, now);
    if (!t.status.ok()) return ReadResult{t.status, t.done, false};
    now = t.done;
    for (std::size_t i = 0; i < config_.heap_touches_per_op; ++i) {
      heap_cursor_ = (heap_cursor_ + 37) % config_.heap_pages;
      t = memory_->Touch(HeapBase() + heap_cursor_ * kPageSize,
                         /*is_write=*/true, now);
      if (!t.status.ok()) return ReadResult{t.status, t.done, false};
      now = t.done;
    }
  }

  auto it = slot_of_.find(record_id);
  if (it != slot_of_.end()) {
    // Cache hit: the record lives in the cache arena — touching it may
    // still page-fault, which is the whole point of Fig. 5.
    ++hits_;
    out.cache_hit = true;
    paging::TouchResult t =
        memory_->Touch(SlotAddr(it->second), /*is_write=*/false, now);
    if (!t.status.ok()) {
      out.status = t.status;
      out.done = t.done;
      return out;
    }
    now = t.done;
    lru_.splice(lru_.begin(), lru_, lru_pos_[record_id]);
    out.status = Status::Ok();
    out.done = now;
    return out;
  }

  // Miss in the WT cache: first try the guest's filesystem page cache —
  // native memory (possibly remote under FluidMem), no disk IO — then the
  // disk.
  ++misses_;
  const blk::BlockNum bnum = BlockOf(record_id);
  std::array<std::byte, kPageSize> block;
  auto pc_it = pc_slot_of_.find(bnum);
  if (pc_it != pc_slot_of_.end()) {
    ++pc_hits_;
    paging::TouchResult t = memory_->Touch(
        PageCacheBase() + pc_it->second * kPageSize, /*is_write=*/false, now);
    if (!t.status.ok()) {
      out.status = t.status;
      out.done = t.done;
      return out;
    }
    now = t.done + config_.pagecache_cpu.Sample(rng_);
    pc_lru_.splice(pc_lru_.begin(), pc_lru_, pc_pos_[bnum]);
    // Contents still come from the disk model (the pc arena's bytes are
    // not separately stored); the stamp check below validates the mapping.
    if (Status s = disk_->Peek(bnum, block); !s.ok()) {
      out.status = s;
      out.done = now;
      return out;
    }
  } else {
    auto io = disk_->Read(bnum, block, now);
    if (!io.status.ok()) {
      out.status = io.status;
      out.done = io.complete_at;
      return out;
    }
    now = io.complete_at + config_.miss_cpu.Sample(rng_);
    // Install the block into the guest page cache.
    if (config_.pagecache_pages > 0) {
      std::size_t pc_slot;
      if (!pc_free_.empty()) {
        pc_slot = pc_free_.back();
        pc_free_.pop_back();
      } else {
        const blk::BlockNum victim = pc_lru_.back();
        pc_lru_.pop_back();
        pc_pos_.erase(victim);
        auto vit = pc_slot_of_.find(victim);
        pc_slot = vit->second;
        pc_slot_of_.erase(vit);
      }
      paging::TouchResult t = memory_->Touch(
          PageCacheBase() + pc_slot * kPageSize, /*is_write=*/true, now);
      if (!t.status.ok()) {
        out.status = t.status;
        out.done = t.done;
        return out;
      }
      now = t.done;
      pc_slot_of_[bnum] = pc_slot;
      pc_lru_.push_front(bnum);
      pc_pos_[bnum] = pc_lru_.begin();
    }
  }

  // Verify the stamped id (catches block-mapping bugs).
  std::uint64_t stamped;
  std::memcpy(&stamped,
              block.data() +
                  (record_id % records_per_block_) * config_.record_bytes,
              8);
  if (stamped != record_id) {
    out.status = Status::Internal("record stamp mismatch");
    out.done = now;
    return out;
  }

  // Evict LRU records if the cache is full. The eviction server must READ
  // the victim's slot to reconcile it — if the guest (or the monitor)
  // paged that cold slot out, this faults it back in just to throw it
  // away: the double-paging pathology behind Fig. 5a's instability ("the
  // poor interaction between the WiredTiger storage engine's memory cache
  // and kswapd").
  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    lru_pos_.erase(victim);
    auto vit = slot_of_.find(victim);
    slot = vit->second;
    slot_of_.erase(vit);
    paging::TouchResult vt =
        memory_->Touch(SlotAddr(slot), /*is_write=*/false, now);
    if (!vt.status.ok()) {
      out.status = vt.status;
      out.done = vt.done;
      return out;
    }
    now = vt.done;
  }

  // Fill the slot: a write into the cache arena.
  paging::TouchResult t = memory_->Touch(SlotAddr(slot), /*is_write=*/true, now);
  if (!t.status.ok()) {
    out.status = t.status;
    out.done = t.done;
    return out;
  }
  now = t.done;

  slot_of_[record_id] = slot;
  lru_.push_front(record_id);
  lru_pos_[record_id] = lru_.begin();
  out.status = Status::Ok();
  out.done = now;
  return out;
}

YcsbResult RunYcsbC(DocStore& store, const YcsbConfig& config, SimTime start) {
  YcsbResult result;
  Rng rng{config.seed};
  ZipfGenerator zipf{store.RecordCount(), config.zipf_theta};

  const std::uint64_t hits0 = store.CacheHits();
  const std::uint64_t misses0 = store.CacheMisses();

  const std::uint64_t per_bucket =
      std::max<std::uint64_t>(1, config.operations / config.timeline_buckets);
  SimTime now = start;
  double bucket_sum_us = 0.0;
  std::uint64_t bucket_n = 0;

  for (std::uint64_t op = 0; op < config.operations; ++op) {
    const std::uint64_t id = zipf.Next(rng);
    const SimTime t0 = now;
    DocStore::ReadResult r = store.Read(id, now);
    if (!r.status.ok()) {
      result.status = r.status;
      return result;
    }
    now = r.done;
    const SimDuration lat = now - t0;
    result.latency.Record(lat);
    bucket_sum_us += ToMicros(lat);
    if (++bucket_n == per_bucket) {
      result.timeline.emplace_back(
          static_cast<double>(now - start) / 1e9,
          bucket_sum_us / static_cast<double>(bucket_n));
      bucket_sum_us = 0.0;
      bucket_n = 0;
    }
  }
  if (bucket_n > 0) {
    result.timeline.emplace_back(static_cast<double>(now - start) / 1e9,
                                 bucket_sum_us / static_cast<double>(bucket_n));
  }

  result.cache_hits = store.CacheHits() - hits0;
  result.cache_misses = store.CacheMisses() - misses0;
  result.finished = now;
  result.status = Status::Ok();
  return result;
}

}  // namespace fluid::wl
