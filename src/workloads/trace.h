// Synthetic access traces and a trace replayer.
//
// The paper's workloads (pmbench, BFS, YCSB) each hard-code one access
// pattern. Production memory traces mix phases: sequential scans, zipfian
// hot sets, uniform noise, strided walks, and pointer chases. This module
// generates such multi-phase traces deterministically and replays them
// against any PagedMemory, reporting per-phase latency — the tool a
// FluidMem operator would use to size LRU budgets for a tenant's real
// behaviour before committing DRAM to it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "common/zipf.h"
#include "paging/paged_memory.h"

namespace fluid::wl {

enum class AccessPattern : std::uint8_t {
  kSequential,   // linear sweep, wrapping
  kUniform,      // uniform random
  kZipfian,      // hot-set skew (theta 0.99)
  kStrided,      // fixed stride (e.g. column walk), wrapping
  kPointerChase, // pseudo-random permutation walk (dependent accesses)
};

constexpr std::string_view PatternName(AccessPattern p) noexcept {
  switch (p) {
    case AccessPattern::kSequential: return "sequential";
    case AccessPattern::kUniform: return "uniform";
    case AccessPattern::kZipfian: return "zipfian";
    case AccessPattern::kStrided: return "strided";
    case AccessPattern::kPointerChase: return "pointer-chase";
  }
  return "?";
}

struct TracePhase {
  AccessPattern pattern = AccessPattern::kUniform;
  std::uint64_t accesses = 10'000;
  // Page range [first_page, first_page + pages) within the trace region.
  std::size_t first_page = 0;
  std::size_t pages = 1024;
  double write_fraction = 0.3;
  std::size_t stride_pages = 17;  // for kStrided (coprime with pages helps)
};

struct TraceAccess {
  std::size_t page = 0;
  bool is_write = false;
};

// Generate the flat access list for a phase (deterministic in `seed`).
std::vector<TraceAccess> GeneratePhase(const TracePhase& phase,
                                       std::uint64_t seed);

// One access of a timestamped stream: `at` is the virtual arrival time and
// `stream` identifies the source trace after merging (the tenant index, in
// the multi-tenant composer).
struct TimedAccess {
  SimTime at = 0;
  std::uint32_t stream = 0;
  TraceAccess access;
};

// Stamp a flat access list with fixed-rate arrivals: access i arrives at
// start + i * gap (an open-loop client issuing at a constant rate).
std::vector<TimedAccess> StampTrace(const std::vector<TraceAccess>& accesses,
                                    std::uint32_t stream, SimTime start,
                                    SimDuration gap);

// Merge per-stream timelines (each non-decreasing in `at`) into one global
// arrival order. Stable: ties break toward the lower stream index, so the
// merged order is a pure function of the inputs and replays identically.
std::vector<TimedAccess> MergeByTimestamp(
    std::span<const std::vector<TimedAccess>> streams);

struct PhaseResult {
  AccessPattern pattern;
  LatencyHistogram latency;
  std::uint64_t faults = 0;
  SimTime finished = 0;
};

struct TraceResult {
  Status status;
  std::vector<PhaseResult> phases;
  SimTime finished = 0;
  std::uint64_t verify_failures = 0;
};

// Replay phases back to back at `base` in the VM's address space. Writes
// stamp pages (page number + running generation); reads verify, so a
// paging bug surfaces as verify_failures.
TraceResult ReplayTrace(paging::PagedMemory& memory, VirtAddr base,
                        const std::vector<TracePhase>& phases,
                        SimTime start, std::uint64_t seed = 1701);

}  // namespace fluid::wl
