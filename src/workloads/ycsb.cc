#include "workloads/ycsb.h"

#include <algorithm>

namespace fluid::wl {

namespace {

std::size_t EffectiveMaxRecords(const YcsbConfig& cfg) {
  if (cfg.max_records != 0)
    return std::max(cfg.max_records, cfg.records);
  return cfg.records + static_cast<std::size_t>(cfg.ops / 10);
}

}  // namespace

std::size_t YcsbFootprintPages(const YcsbConfig& cfg) {
  return cfg.first_page + EffectiveMaxRecords(cfg);
}

std::vector<TraceAccess> GenerateYcsb(const YcsbConfig& cfg,
                                      std::uint64_t seed,
                                      YcsbOpStats* stats) {
  const YcsbMixRatios mix = RatiosOf(cfg.mix);
  const std::size_t cap = EffectiveMaxRecords(cfg);
  const std::size_t initial = std::max<std::size_t>(1, cfg.records);

  Rng rng{seed};
  ZipfGenerator zipf{initial, cfg.theta};
  LatestGenerator latest{initial, cfg.theta};

  std::vector<TraceAccess> out;
  out.reserve(cfg.ops + (mix.scan > 0 ? cfg.ops * cfg.max_scan_len / 2 : 0));
  YcsbOpStats st;
  std::size_t live = initial;  // current key space [0, live)

  // Zipfian rank maps to key directly: rank 0 (hottest) is page 0, the
  // same convention as the kZipfian trace phase.
  const auto zipf_key = [&]() -> std::size_t {
    return static_cast<std::size_t>(zipf.Next(rng));
  };
  const auto latest_key = [&]() -> std::size_t {
    const std::uint64_t off = latest.NextOffset(rng, live);
    return static_cast<std::size_t>(live - 1 - off);
  };
  const auto push = [&](std::size_t key, bool is_write) {
    out.push_back(TraceAccess{cfg.first_page + key, is_write});
  };

  for (std::uint64_t i = 0; i < cfg.ops; ++i) {
    const double r = rng.NextDouble();
    if (r < mix.read) {
      push(mix.latest ? latest_key() : zipf_key(), /*is_write=*/false);
      ++st.reads;
    } else if (r < mix.read + mix.update) {
      push(zipf_key(), /*is_write=*/true);
      ++st.updates;
    } else if (r < mix.read + mix.update + mix.insert) {
      // Append at the end of the key space; once the cap is hit, inserts
      // degrade to updates of the newest key (the footprint stays bounded).
      const std::size_t key = live < cap ? live++ : live - 1;
      push(key, /*is_write=*/true);
      ++st.inserts;
    } else if (r < mix.read + mix.update + mix.insert + mix.scan) {
      const std::size_t start = zipf_key();
      const std::size_t want =
          1 + static_cast<std::size_t>(
                  rng.NextBounded(std::max<std::size_t>(1, cfg.max_scan_len)));
      const std::size_t end = std::min(start + want, live);
      for (std::size_t k = start; k < end; ++k) {
        push(k, /*is_write=*/false);
        ++st.scanned_pages;
      }
      st.max_scan_run = std::max<std::uint64_t>(st.max_scan_run, end - start);
      ++st.scans;
    } else {
      const std::size_t key = zipf_key();
      push(key, /*is_write=*/false);
      push(key, /*is_write=*/true);
      ++st.rmws;
    }
  }

  st.final_records = live;
  if (stats != nullptr) *stats = st;
  return out;
}

}  // namespace fluid::wl
