// A MongoDB-like document store with a WiredTiger-style application cache,
// plus the YCSB workload-C (read-only) driver — §VI-D2 / Fig. 5.
//
// The mechanism under study: WiredTiger manages its own record cache of a
// configured size, oblivious to how much of the VM's memory is actually in
// local DRAM. When the cache exceeds DRAM, every cache *hit* can still be a
// page fault — under swap this collides with kswapd ("the poor interaction
// between the WiredTiger storage engine's memory cache and kswapd") and
// latency never stabilises; under FluidMem the hotplugged memory looks
// native, faults are cheaper, and cold OS pages are out of the way.
//
// The store keeps records on a block device (the guest's disk) and caches
// them in a cache arena laid out in the VM's paged address space: cache
// slot i occupies bytes [i*record, (i+1)*record) from `cache_base`. Every
// cache hit or fill touches the slot's page through PagedMemory.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "blockdev/block_device.h"
#include "common/dist.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "common/zipf.h"
#include "paging/paged_memory.h"

namespace fluid::wl {

struct DocstoreConfig {
  std::size_t record_count = 50'000;
  std::size_t record_bytes = 1024;  // YCSB's 1 KB records
  std::size_t cache_bytes = 10ULL << 20;
  VirtAddr cache_base = 0;
  double zipf_theta = 0.99;
  // Server-side CPU per request: parse, BSON, b-tree descent.
  LatencyDist server_op = LatencyDist::Normal(110.0, 15.0, 60.0);
  // Extra disk-path CPU on a cache miss: block decompress, page image
  // reconstruction (WiredTiger reads are more than a raw block read).
  LatencyDist miss_cpu = LatencyDist::Normal(700.0, 90.0, 300.0);
  // Pages of mongod heap (BSON scratch, session state, WT internals)
  // touched per request, rotating over `heap_pages`. These — plus the
  // b-tree index pages — are what make *every* request feel memory
  // pressure, not just the record copy.
  std::size_t heap_touches_per_op = 8;
  std::size_t heap_pages = 3072;
  // Guest filesystem page cache (one 4 KB disk block per page), sized by
  // the VM's memory beyond the WT cache. This is §VI-D2's decisive
  // asymmetry: the FluidMem VM has 4 GB of native memory, so WT misses are
  // frequently absorbed by the guest page cache (a remote-memory fault at
  // worst); the 1 GB swap VM has almost none, and every WT miss is a disk
  // read. "FluidMem ... transparently provides the storage engine with
  // native memory capacity."
  std::size_t pagecache_pages = 64;
  // CPU to serve a read from the guest page cache (copy + fs lookup).
  LatencyDist pagecache_cpu = LatencyDist::Normal(35.0, 6.0, 15.0);
  std::uint64_t seed = 303;
};

class DocStore {
 public:
  DocStore(DocstoreConfig config, paging::PagedMemory& memory,
           blk::BlockDevice& disk);

  // Bulk-load all records to disk (the YCSB load phase).
  SimTime Load(SimTime now);

  struct ReadResult {
    Status status;
    SimTime done = 0;
    bool cache_hit = false;
  };
  ReadResult Read(std::uint64_t record_id, SimTime now);

  std::size_t RecordCount() const noexcept { return config_.record_count; }
  // Arena layout after the record cache: [cache][index][heap].
  VirtAddr IndexBase() const noexcept {
    const std::size_t cache_pages =
        (cache_slots_ * config_.record_bytes + kPageSize - 1) / kPageSize;
    return config_.cache_base + cache_pages * kPageSize;
  }
  VirtAddr HeapBase() const noexcept {
    const std::size_t index_pages =
        (config_.record_count * 8 + kPageSize - 1) / kPageSize + 1;
    return IndexBase() + index_pages * kPageSize;
  }
  VirtAddr PageCacheBase() const noexcept {
    return HeapBase() + config_.heap_pages * kPageSize;
  }
  // Total pages the store needs in the VM's address space.
  std::size_t ArenaPages() const noexcept {
    return static_cast<std::size_t>(PageCacheBase() - config_.cache_base) /
               kPageSize +
           config_.pagecache_pages;
  }
  std::uint64_t PageCacheHits() const noexcept { return pc_hits_; }
  std::size_t CacheRecords() const noexcept { return lru_.size(); }
  std::size_t CacheCapacityRecords() const noexcept {
    return cache_slots_;
  }
  std::uint64_t CacheHits() const noexcept { return hits_; }
  std::uint64_t CacheMisses() const noexcept { return misses_; }

 private:
  VirtAddr SlotAddr(std::size_t slot) const noexcept {
    return config_.cache_base + slot * config_.record_bytes;
  }
  blk::BlockNum BlockOf(std::uint64_t record_id) const noexcept {
    return record_id / records_per_block_;
  }

  DocstoreConfig config_;
  paging::PagedMemory* memory_;
  blk::BlockDevice* disk_;
  Rng rng_;

  std::size_t cache_slots_;
  std::size_t records_per_block_;

  // Record cache: id -> slot, LRU order, free slots.
  std::unordered_map<std::uint64_t, std::size_t> slot_of_;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
      lru_pos_;
  std::vector<std::size_t> free_slots_;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t pc_hits_ = 0;
  std::size_t heap_cursor_ = 0;

  // Guest page cache state: disk block -> cache slot, LRU order.
  std::unordered_map<blk::BlockNum, std::size_t> pc_slot_of_;
  std::list<blk::BlockNum> pc_lru_;
  std::unordered_map<blk::BlockNum, std::list<blk::BlockNum>::iterator>
      pc_pos_;
  std::vector<std::size_t> pc_free_;
};

// --- YCSB workload C ---------------------------------------------------------

struct YcsbConfig {
  std::uint64_t operations = 100'000;
  double zipf_theta = 0.99;
  std::size_t timeline_buckets = 60;
  std::uint64_t seed = 304;
};

struct YcsbResult {
  Status status;
  LatencyHistogram latency;
  // (virtual runtime seconds, mean latency us) per bucket — Fig. 5's lines.
  std::vector<std::pair<double, double>> timeline;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  SimTime finished = 0;
};

YcsbResult RunYcsbC(DocStore& store, const YcsbConfig& config, SimTime start);

}  // namespace fluid::wl
