// Multi-tenant traffic composer: N YCSB tenants on one monitor, in virtual
// time, with per-tenant attribution and SLO verdicts.
//
// Each tenant gets its own uffd region (its "VM"), its own store partition,
// an optional DRAM quota, and a YCSB stream stamped with open-loop arrival
// times from its ArrivalModel (steady pacing, bursts, or a delayed batch
// job). The per-tenant timelines are merged by timestamp into one global
// arrival order and replayed against the shared stack: an access's latency
// is completion minus ARRIVAL, so time spent queued behind another tenant's
// burst is charged where the user feels it — that is the noisy-neighbor
// effect the drills probe.
//
// Attribution is double-entry: the replay loop's own histogram (per tenant,
// from its region's accesses) and the obs spans' per-region aggregation
// (opened inside the fault engine, keyed by region id). The two are
// reconciled in tests — sum of per-tenant ok spans must equal the engine's
// MergedLatency() count exactly.
//
// Correctness rides along: every write is mirrored into a per-tenant
// ShadowMemory and the run ends with the chaos harness's location-aware
// differential sweep per tenant plus the global invariant check, so a drill
// that corrupts a page fails the run, not just the SLO.
//
// Determinism: a (MultiTenantConfig) value fully determines the run —
// workload streams, arrival jitter, injector decisions, and scripted drill
// events all derive from drill.options.{seed, plan} and the specs. Two runs
// of the same config produce identical MultiTenantResult::Fingerprint()s.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "chaos/drills.h"
#include "common/histogram.h"
#include "common/status.h"
#include "common/types.h"
#include "workloads/trace.h"
#include "workloads/ycsb.h"

namespace fluid::wl {

enum class TenantRole : std::uint8_t {
  kSteady,      // latency-sensitive serving tenant (the SLO protagonist)
  kAntagonist,  // bursty neighbor contending for DRAM + handler time
  kBatch,       // scan-heavy batch job (throughput over latency)
};

constexpr std::string_view RoleName(TenantRole r) noexcept {
  switch (r) {
    case TenantRole::kSteady: return "steady";
    case TenantRole::kAntagonist: return "antagonist";
    case TenantRole::kBatch: return "batch";
  }
  return "?";
}

// Open-loop arrival process. burst_len == 0: constant rate (one access per
// `gap`). burst_len > 0: bursts of `burst_len` accesses spaced `burst_gap`
// apart, with `idle_between_bursts` of silence after each burst.
struct ArrivalModel {
  SimTime start = 0;
  SimDuration gap = 10 * kMicrosecond;
  std::size_t burst_len = 0;
  SimDuration burst_gap = kMicrosecond;
  SimDuration idle_between_bursts = 2 * kMillisecond;
};

struct TenantSpec {
  std::string name;
  TenantRole role = TenantRole::kSteady;
  YcsbConfig workload;
  ArrivalModel arrival;
  // DRAM quota (pages); 0 = share the global budget unbounded.
  std::size_t quota_pages = 0;
  // SLO bounds on end-to-end ACCESS latency (arrival -> completion), in
  // microseconds; 0 disables a bound.
  double slo_p50_us = 0;
  double slo_p99_us = 0;
};

struct TenantResult {
  std::string name;
  TenantRole role = TenantRole::kSteady;
  YcsbMix mix = YcsbMix::kA;

  std::uint64_t accesses = 0;
  std::uint64_t faults = 0;   // accesses that took at least one uffd fault
  std::uint64_t blocked = 0;  // stayed inaccessible after bounded retries
  std::uint64_t verify_failures = 0;  // stamp mismatches on reads

  // Access latency (arrival -> completion, queueing included).
  double p50_us = 0;
  double p99_us = 0;
  double mean_us = 0;

  // Span-attributed fault-path view (obs, keyed by this tenant's region).
  std::uint64_t span_faults = 0;     // spans finished for the region
  std::uint64_t span_ok = 0;         // successful ones (in fault_p* below)
  double fault_p50_us = 0;
  double fault_p99_us = 0;

  double slo_p50_us = 0;  // echoed bounds
  double slo_p99_us = 0;
  bool slo_pass = true;   // latency quantiles within bounds
};

struct MultiTenantConfig {
  std::vector<TenantSpec> tenants;
  // Drill preset (chaos::MakeDrill) or default-constructed for a clean
  // baseline. Carries the (seed, plan) pair all randomness derives from.
  chaos::Drill drill;
  // Global DRAM budget. 0 = auto: the sum of the tenants' quotas plus a
  // small unquota'd headroom, so adding tenants scales the pool the way a
  // capacity planner would provision it instead of silently overcommitting.
  std::size_t lru_capacity_pages = 0;
  std::size_t write_batch_pages = 16;
  // Background pump cadence (flush retirement, spill migrate-back, store
  // maintenance) in virtual time.
  SimDuration pump_every = 200 * kMicrosecond;
};

struct MultiTenantResult {
  Status status;        // not-ok on oracle/invariant violation
  std::string failure;  // first violation, human-readable
  std::vector<TenantResult> tenants;

  SimTime finished = 0;
  std::uint64_t total_accesses = 0;
  std::uint64_t blocked_total = 0;
  // Attribution reconciliation inputs: the engine's merged ok-fault count
  // vs the sum of per-region ok span counts.
  std::uint64_t merged_latency_count = 0;
  std::uint64_t span_ok_total = 0;

  // Integrity pipeline counters (drills that arm silent corruption:
  // bit_rot, store_failover). All zero when integrity is off.
  std::uint64_t corruptions_detected = 0;  // envelope mismatches (read+scrub)
  std::uint64_t scrub_pages = 0;           // pages re-verified by scrubbers
  std::uint64_t repairs = 0;               // anti-entropy page re-copies
  std::uint64_t corruption_failovers = 0;  // reads routed off a rotten replica
  std::uint64_t dead_declared = 0;         // replicas declared permanently dead
  std::uint64_t rf_restored = 0;           // pages re-replicated onto them
  std::uint64_t poisoned_fast_fails = 0;   // monitor quarantine hits
  // Predictive-prefetch / tier counters (zero when the features are off).
  std::uint64_t prefetched_pages = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t prefetch_wasted = 0;
  std::uint64_t prefetch_gated_skips = 0;
  std::uint64_t tier_demotions = 0;
  std::uint64_t tier_promotions = 0;
  // Stamp-mismatch reads summed across tenants: corrupt bytes that REACHED
  // a VM. The integrity drills' core verdict is that this stays zero.
  std::uint64_t wrong_bytes = 0;

  bool AllSlosPass() const {
    for (const TenantResult& t : tenants)
      if (!t.slo_pass) return false;
    return status.ok();
  }
  bool RolePasses(TenantRole role) const {
    for (const TenantResult& t : tenants)
      if (t.role == role && !t.slo_pass) return false;
    return status.ok();
  }

  // Replay-identity hash over every count and the bit patterns of every
  // latency statistic: two runs of the same config must match exactly.
  std::uint64_t Fingerprint() const;
};

MultiTenantResult RunTenants(const MultiTenantConfig& cfg);

// The canonical tenant family the drill catalog runs against: tenant 0 is
// the steady server (mix `steady_mix`, quota'd, tight SLO), tenant 1 the
// bursty antagonist (YCSB-A), tenant 2 the scan-heavy batch job (YCSB-E);
// tenants 3+ are additional steady readers (YCSB-C/D alternating). `scale`
// in (0, 1] shrinks every tenant's op count for fast test configs.
std::vector<TenantSpec> StandardTenants(std::size_t count, YcsbMix steady_mix,
                                        double scale = 1.0);

// Shape of the specs' combined traffic, computed by generating and
// stamping every stream (pure in (tenants, seed)). The drill factory needs
// both numbers up front: total_accesses keys the failover outage window in
// op-id space, horizon anchors the time-scripted events. Measured WITHOUT
// any antagonist boost, so a drill's anchors do not depend on the drill.
struct TrafficShape {
  std::size_t total_accesses = 0;
  SimTime horizon = 0;  // arrival time of the last access
};
TrafficShape MeasureTraffic(const std::vector<TenantSpec>& tenants,
                            std::uint64_t seed);

}  // namespace fluid::wl
