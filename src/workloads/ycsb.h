// The six canonical YCSB core workload mixes, emitted as deterministic
// page-access streams.
//
// Each "record" is one page of VM memory: a read touches it, an
// update/insert dirties it, a scan walks a short run of consecutive pages,
// and a read-modify-write does a read immediately followed by a write of
// the same page. Key choice follows the YCSB core distributions — zipfian
// (Gray's sampler in common/zipf.h, theta 0.99, rank 0 hottest) for A/B/C/E/F
// and the "latest" distribution (zipfian over recency: offset 0 = the
// newest inserted record) for D. Inserts append new pages at the end of the
// key space, so D and E grow their footprint as they run, exactly like the
// reference implementation's SkewedLatestGenerator + insert key chooser.
//
// Output goes through the existing workloads::Trace vocabulary
// (TraceAccess), so anything that replays traces — including the
// multi-tenant composer in tenants.h — consumes YCSB streams unchanged.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "workloads/trace.h"

namespace fluid::wl {

enum class YcsbMix : std::uint8_t {
  kA,  // update heavy: 50% read / 50% update, zipfian
  kB,  // read mostly: 95% read / 5% update, zipfian
  kC,  // read only: 100% read, zipfian
  kD,  // read latest: 95% read (latest) / 5% insert
  kE,  // short scans: 95% scan / 5% insert, zipfian start, uniform length
  kF,  // read-modify-write: 50% read / 50% RMW, zipfian
};

inline constexpr std::size_t kYcsbMixCount = 6;

constexpr std::string_view MixName(YcsbMix m) noexcept {
  switch (m) {
    case YcsbMix::kA: return "A";
    case YcsbMix::kB: return "B";
    case YcsbMix::kC: return "C";
    case YcsbMix::kD: return "D";
    case YcsbMix::kE: return "E";
    case YcsbMix::kF: return "F";
  }
  return "?";
}

// Operation fractions for a mix (sum to 1). `latest` marks mixes whose read
// keys follow the latest distribution instead of zipfian-over-rank.
struct YcsbMixRatios {
  double read = 0, update = 0, insert = 0, scan = 0, rmw = 0;
  bool latest = false;
};

constexpr YcsbMixRatios RatiosOf(YcsbMix m) noexcept {
  switch (m) {
    case YcsbMix::kA: return {.read = 0.5, .update = 0.5};
    case YcsbMix::kB: return {.read = 0.95, .update = 0.05};
    case YcsbMix::kC: return {.read = 1.0};
    case YcsbMix::kD: return {.read = 0.95, .insert = 0.05, .latest = true};
    case YcsbMix::kE: return {.insert = 0.05, .scan = 0.95};
    case YcsbMix::kF: return {.read = 0.5, .rmw = 0.5};
  }
  return {};
}

// The YCSB "latest" distribution: a zipfian sample reinterpreted as an
// offset back from the most recently inserted key, so freshly written
// records are the hottest. The underlying zipfian is sized once (to the
// initial record count) and offsets are folded into the live key range,
// matching YCSB's SkewedLatestGenerator behaviour under inserts.
class LatestGenerator {
 public:
  explicit LatestGenerator(std::uint64_t n, double theta = 0.99)
      : zipf_(n < 1 ? 1 : n, theta) {}

  // Offset back from the newest key, in [0, live_records).
  std::uint64_t NextOffset(Rng& rng, std::uint64_t live_records) const {
    if (live_records == 0) return 0;
    const std::uint64_t off = zipf_.Next(rng);
    return off < live_records ? off : off % live_records;
  }

 private:
  ZipfGenerator zipf_;
};

struct YcsbConfig {
  YcsbMix mix = YcsbMix::kA;
  std::size_t records = 1024;  // initial key space (pages)
  std::uint64_t ops = 10'000;  // operations (not accesses: scans/RMW expand)
  std::size_t max_scan_len = 16;  // scan length drawn uniform in [1, this]
  double theta = 0.99;            // zipfian skew
  // Hard cap on the key space under inserts; 0 = records + ops/10 (2x the
  // expected 5% insert volume). Once full, inserts update the newest key.
  std::size_t max_records = 0;
  std::size_t first_page = 0;  // pages are offset by this in the stream
};

// Pages the stream can touch: first_page + the insert-capped key space.
// Callers size regions/shadows with this.
std::size_t YcsbFootprintPages(const YcsbConfig& cfg);

struct YcsbOpStats {
  std::uint64_t reads = 0;
  std::uint64_t updates = 0;
  std::uint64_t inserts = 0;
  std::uint64_t scans = 0;
  std::uint64_t rmws = 0;
  std::uint64_t scanned_pages = 0;  // total pages touched by scans
  std::uint64_t max_scan_run = 0;   // longest single scan emitted (pages)
  std::size_t final_records = 0;    // key space after inserts
};

// Generate the flat access stream for `cfg`. Pure function of (cfg, seed):
// the same pair always yields the same stream, byte for byte.
std::vector<TraceAccess> GenerateYcsb(const YcsbConfig& cfg,
                                      std::uint64_t seed,
                                      YcsbOpStats* stats = nullptr);

}  // namespace fluid::wl
