#include "workloads/tenants.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <utility>

#include "blockdev/block_device.h"
#include "chaos/injected_store.h"
#include "chaos/invariants.h"
#include "chaos/oracle.h"
#include "fluidmem/fault_engine.h"
#include "kvstore/decorators.h"
#include "kvstore/integrity.h"
#include "kvstore/local_store.h"
#include "kvstore/resilient.h"
#include "mem/frame_pool.h"
#include "mem/uffd.h"
#include "obs/span.h"
#include "swap/swap_space.h"

namespace fluid::wl {

namespace {

// Stamp value for (page, generation) — same construction as the trace
// replayer's, private to each: only self-consistency matters.
std::uint64_t Stamp(std::size_t page, std::uint64_t gen) noexcept {
  std::uint64_t x = page * 0x9e3779b97f4a7c15ULL + gen * 0x165667b19e3779f9ULL;
  x ^= x >> 29;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 32;
  return x;
}

std::uint64_t TenantSeed(std::uint64_t seed, std::size_t tenant) {
  return seed ^ (0x9e3779b97f4a7c15ULL * (tenant + 1));
}

// Fixed CPU-side cost of one completed access (TLB/cache path after the
// page is mapped); keeps hit latency non-zero so quantiles are meaningful.
constexpr SimDuration kAccessCost = 150;  // ns

// Stamp one tenant's stream with arrival times per its ArrivalModel.
// `burst_boost` (>= 1) multiplies burst length — the noisy-neighbor knob.
std::vector<TimedAccess> StampArrivals(const std::vector<TraceAccess>& accs,
                                       std::uint32_t stream,
                                       const ArrivalModel& m,
                                       double burst_boost) {
  if (m.burst_len == 0) return StampTrace(accs, stream, m.start, m.gap);
  const auto burst_len = static_cast<std::size_t>(
      static_cast<double>(m.burst_len) * std::max(1.0, burst_boost));
  std::vector<TimedAccess> out;
  out.reserve(accs.size());
  SimTime at = m.start;
  std::size_t in_burst = 0;
  for (const TraceAccess& a : accs) {
    out.push_back(TimedAccess{at, stream, a});
    if (++in_burst >= burst_len) {
      in_burst = 0;
      at += m.idle_between_bursts;
    } else {
      at += m.burst_gap;
    }
  }
  return out;
}

std::vector<TimedAccess> MergedArrivals(
    const std::vector<TenantSpec>& tenants, std::uint64_t seed,
    double antagonist_burst_boost) {
  std::vector<std::vector<TimedAccess>> streams;
  streams.reserve(tenants.size());
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const TenantSpec& spec = tenants[t];
    const auto accs = GenerateYcsb(spec.workload, TenantSeed(seed, t));
    const double boost = spec.role == TenantRole::kAntagonist
                             ? antagonist_burst_boost
                             : 1.0;
    streams.push_back(StampArrivals(accs, static_cast<std::uint32_t>(t),
                                    spec.arrival, boost));
  }
  return MergeByTimestamp(streams);
}

// A scripted drill event, applied when the merged replay reaches `at`.
struct DrillEvent {
  SimTime at = 0;
  enum class What : std::uint8_t { kReplicaDown, kQuotaCut } what;
  std::size_t index = 0;   // replica or tenant
  SimTime until = 0;       // kReplicaDown: FailUntil argument
  std::size_t pages = 0;   // kQuotaCut: new quota
};

void HistStats(const LatencyHistogram& h, double& p50, double& p99,
               double* mean = nullptr) {
  p50 = h.Count() ? h.QuantileUs(0.50) : 0.0;
  p99 = h.Count() ? h.QuantileUs(0.99) : 0.0;
  if (mean != nullptr) *mean = h.Count() ? h.MeanUs() : 0.0;
}

void Mix64(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

}  // namespace

TrafficShape MeasureTraffic(const std::vector<TenantSpec>& tenants,
                            std::uint64_t seed) {
  const auto merged = MergedArrivals(tenants, seed, /*boost=*/1.0);
  TrafficShape shape;
  shape.total_accesses = merged.size();
  shape.horizon = merged.empty() ? 0 : merged.back().at;
  for (const TimedAccess& a : merged)
    shape.horizon = std::max(shape.horizon, a.at);
  return shape;
}

MultiTenantResult RunTenants(const MultiTenantConfig& cfg) {
  const chaos::ScenarioOptions& opt = cfg.drill.options;
  MultiTenantResult res;
  res.status = Status::Ok();

  // --- the merged arrival timeline -----------------------------------------
  const auto merged = MergedArrivals(cfg.tenants, opt.seed,
                                     cfg.drill.antagonist_burst_boost);
  res.total_accesses = merged.size();

  // --- stack construction (multi-region analogue of chaos::Stack) ----------
  std::size_t total_fp = 0;
  std::size_t quota_sum = 0;
  for (const TenantSpec& spec : cfg.tenants) {
    total_fp += YcsbFootprintPages(spec.workload);
    quota_sum += spec.quota_pages;
  }
  const std::size_t lru_capacity = cfg.lru_capacity_pages != 0
                                       ? cfg.lru_capacity_pages
                                       : quota_sum + 32;
  mem::FramePool pool(total_fp + lru_capacity + 256);

  auto injector = std::make_shared<chaos::FaultInjector>(opt.plan);

  std::unique_ptr<kv::KvStore> store;
  std::vector<kv::FlakyStore*> flaky;  // replica-down script targets
  std::vector<kv::IntegrityStore*> integrity;
  kv::ReplicatedStore* replicated = nullptr;
  const int replicas = cfg.drill.replicas > 0 ? cfg.drill.replicas
                                              : cfg.drill.upgrade_replicas;
  if (replicas > 0) {
    // Replicated store whose replicas each sit behind a FlakyStore, so the
    // drill script can take them down with FailUntil (staggered upgrade
    // windows, or the bit-rot drill's hard replica death). With integrity
    // on, each replica additionally verifies its own envelopes, outermost:
    // Integrity(Flaky(Injected(LocalDram))).
    std::vector<std::unique_ptr<kv::KvStore>> reps;
    for (int i = 0; i < replicas; ++i) {
      kv::LocalStoreConfig lc;
      lc.seed = opt.seed * 5 + static_cast<std::uint64_t>(i);
      auto f = std::make_unique<kv::FlakyStore>(
          std::make_unique<chaos::InjectedStore>(
              std::make_unique<kv::LocalDramStore>(lc), injector),
          /*seed=*/opt.seed ^ (0xf1a6ULL + i));
      flaky.push_back(f.get());
      std::unique_ptr<kv::KvStore> rep = std::move(f);
      if (opt.integrity_store) {
        auto integ = std::make_unique<kv::IntegrityStore>(std::move(rep),
                                                          opt.scrub_budget);
        integrity.push_back(integ.get());
        rep = std::move(integ);
      }
      reps.push_back(std::move(rep));
    }
    auto rs = std::make_unique<kv::ReplicatedStore>(std::move(reps),
                                                    /*write_quorum=*/2);
    replicated = rs.get();
    if (opt.replica_dead_after > 0)
      replicated->set_dead_after(opt.replica_dead_after);
    // Detections dirty the rotten replica's copy so anti-entropy repairs it.
    for (std::size_t i = 0; i < integrity.size(); ++i) {
      kv::ReplicatedStore* r = replicated;
      integrity[i]->set_on_corruption([r, i](PartitionId p, kv::Key k) {
        r->ReportCorruption(i, p, k);
      });
    }
    store = std::move(rs);
  } else {
    kv::LocalStoreConfig lc;
    lc.seed = opt.seed ^ 0x10c41ULL;
    store = std::make_unique<chaos::InjectedStore>(
        std::make_unique<kv::LocalDramStore>(lc), injector);
    if (opt.integrity_store) {
      auto integ = std::make_unique<kv::IntegrityStore>(std::move(store),
                                                        opt.scrub_budget);
      integrity.push_back(integ.get());
      store = std::move(integ);
    }
  }
  if (opt.resilient_store) {
    kv::ResilientStoreConfig rsc;
    rsc.seed = opt.seed ^ 0x4e511eULL;
    store = std::make_unique<kv::ResilientStore>(std::move(store), rsc);
  }

  fm::MonitorConfig mc;
  mc.lru_capacity_pages = lru_capacity;
  mc.write_batch_pages = cfg.write_batch_pages;
  mc.fault_shards = opt.fault_shards;
  mc.uffd_read_batch = opt.uffd_read_batch;
  mc.pipelined_writeback = opt.pipelined_writeback;
  mc.prefetch_depth = opt.prefetch_depth;
  mc.prefetch.mode = opt.prefetch_majority ? fm::PrefetchMode::kMajority
                                           : fm::PrefetchMode::kSequential;
  mc.prefetch.accuracy_floor_pct = opt.prefetch_accuracy_floor;
  mc.seed = opt.seed ^ 0xc0ffeeULL;
  // Declared before the monitor (gauge registration), destroyed after.
  obs::Observability obs;
  obs.Enable();
  auto monitor = std::make_unique<fm::Monitor>(mc, *store, pool);
  monitor->AttachObservability(obs);

  std::unique_ptr<blk::BlockDevice> spill_device;
  std::unique_ptr<swap::SwapSpace> spill;
  if (opt.attach_spill) {
    spill_device = std::make_unique<blk::BlockDevice>(
        blk::MakePmemDevice(opt.spill_capacity));
    spill_device->set_fault_hook(injector);
    spill = std::make_unique<swap::SwapSpace>(*spill_device);
    monitor->AttachLocalSpill(*spill);
  }
  std::unique_ptr<blk::BlockDevice> cold_device;
  std::unique_ptr<swap::SwapSpace> cold_tier;
  if (opt.attach_cold_tier) {
    cold_device = std::make_unique<blk::BlockDevice>(
        blk::MakeNvmeofDevice(opt.cold_tier_capacity));
    cold_device->set_fault_hook(injector);
    cold_tier = std::make_unique<swap::SwapSpace>(*cold_device);
    monitor->AttachColdTier(*cold_tier);
  }

  // One region + partition + shadow per tenant. Region bases are 4 GiB
  // apart: tenant address spaces cannot collide.
  struct TenantRt {
    VirtAddr base = 0;
    fm::RegionId rid = 0;
    std::unique_ptr<mem::UffdRegion> region;
    chaos::ShadowMemory shadow;
    std::vector<std::uint64_t> generation;
    std::vector<bool> written;
    LatencyHistogram latency{/*min_ns=*/50.0, /*max_ns=*/1e9,
                             /*buckets_per_decade=*/60};
    std::uint64_t accesses = 0;
    std::uint64_t faults = 0;
    std::uint64_t blocked = 0;
    std::uint64_t verify_failures = 0;
  };
  constexpr VirtAddr kTenantBase = 0x6000'0000ULL;
  constexpr VirtAddr kTenantStride = 1ULL << 32;
  std::vector<TenantRt> rt(cfg.tenants.size());
  for (std::size_t t = 0; t < cfg.tenants.size(); ++t) {
    const std::size_t fp = YcsbFootprintPages(cfg.tenants[t].workload);
    rt[t].base = kTenantBase + static_cast<VirtAddr>(t) * kTenantStride;
    rt[t].region = std::make_unique<mem::UffdRegion>(
        /*pid=*/static_cast<ProcessId>(100 + t), rt[t].base, fp, pool);
    rt[t].rid = monitor->RegisterRegion(
        *rt[t].region, static_cast<PartitionId>(t + 1),
        cfg.tenants[t].quota_pages);
    rt[t].generation.assign(fp, 0);
    rt[t].written.assign(fp, false);
  }

  // --- the drill's scripted events -----------------------------------------
  std::vector<DrillEvent> events;
  if (cfg.drill.upgrade_replicas > 0) {
    for (int i = 0; i < cfg.drill.upgrade_replicas; ++i) {
      DrillEvent ev;
      ev.what = DrillEvent::What::kReplicaDown;
      ev.index = static_cast<std::size_t>(i);
      ev.at = cfg.drill.upgrade_start + i * cfg.drill.upgrade_window;
      ev.until = ev.at + cfg.drill.upgrade_window;
      events.push_back(ev);
    }
  }
  if (cfg.drill.replica_down_for > 0 &&
      cfg.drill.replica_down_index < flaky.size()) {
    // Hard replica death (bit_rot): one replica fails every op for longer
    // than the declare-dead threshold, forcing re-replication.
    DrillEvent ev;
    ev.what = DrillEvent::What::kReplicaDown;
    ev.index = cfg.drill.replica_down_index;
    ev.at = cfg.drill.replica_down_at;
    ev.until = ev.at + cfg.drill.replica_down_for;
    events.push_back(ev);
  }
  if (cfg.drill.kind == chaos::DrillKind::kQuotaCut &&
      cfg.drill.quota_cut_tenant < rt.size()) {
    DrillEvent ev;
    ev.what = DrillEvent::What::kQuotaCut;
    ev.index = cfg.drill.quota_cut_tenant;
    ev.pages = cfg.drill.quota_cut_pages;
    ev.at = cfg.drill.quota_cut_at;
    events.push_back(ev);
  }
  std::sort(events.begin(), events.end(),
            [](const DrillEvent& a, const DrillEvent& b) { return a.at < b.at; });

  // --- open-loop replay ------------------------------------------------------
  SimTime now = 0;
  SimTime next_pump = cfg.pump_every;
  std::size_t next_event = 0;
  std::array<std::byte, 8> buf8;

  const auto apply_event = [&](const DrillEvent& ev) {
    switch (ev.what) {
      case DrillEvent::What::kReplicaDown:
        if (ev.index < flaky.size()) flaky[ev.index]->FailUntil(ev.until);
        break;
      case DrillEvent::What::kQuotaCut:
        now = std::max(now, monitor->SetRegionQuota(rt[ev.index].rid,
                                                    ev.pages,
                                                    std::max(now, ev.at)));
        break;
    }
  };

  // Bounded retry under injected faults, as the guest would: back off
  // 100us after a failed fault and re-issue (chaos::EnsureResident's
  // policy, on this stack's regions).
  const auto ensure_resident = [&](TenantRt& tr, VirtAddr addr, bool is_write,
                                   SimTime& t, bool& faulted) -> bool {
    for (int attempt = 0; attempt < 4; ++attempt) {
      const auto access = tr.region->Access(addr, is_write);
      if (access.kind != mem::AccessKind::kUffdFault) {
        // Resident hit: report the touch (prefetch hit resolution + tier
        // heat). No-op on stacks with both features off.
        if (access.kind == mem::AccessKind::kHit)
          monitor->NotePageTouch(tr.rid, addr);
        return true;
      }
      faulted = true;
      const auto outcome = monitor->HandleFault(tr.rid, addr, t);
      t = std::max(t, outcome.wake_at);
      if (outcome.deadlocked) return false;
      if (!outcome.status.ok()) t += 100 * kMicrosecond;
    }
    return tr.region->Access(addr, is_write).kind !=
           mem::AccessKind::kUffdFault;
  };

  for (std::size_t i = 0; i < merged.size(); ++i) {
    const TimedAccess& ta = merged[i];
    injector->BeginStep(static_cast<std::uint32_t>(i));

    while (next_event < events.size() && events[next_event].at <= ta.at)
      apply_event(events[next_event++]);
    while (next_pump <= ta.at) {
      monitor->PumpBackground(std::max(now, next_pump));
      next_pump += cfg.pump_every;
    }

    TenantRt& tr = rt[ta.stream];
    const TenantSpec& spec = cfg.tenants[ta.stream];
    const std::size_t page = ta.access.page;
    const VirtAddr addr = tr.base + static_cast<VirtAddr>(page) * kPageSize;

    // Open loop: service starts when the stack is free AND the request has
    // arrived; latency is measured from ARRIVAL, so queueing behind other
    // tenants' work is charged to this access.
    SimTime t = std::max(now, ta.at);
    bool faulted = false;
    const bool resident =
        ensure_resident(tr, addr, ta.access.is_write, t, faulted);
    ++tr.accesses;
    if (faulted) ++tr.faults;
    if (!resident) {
      ++tr.blocked;
      now = t;
      tr.latency.Record(now + kAccessCost - ta.at);
      continue;
    }
    if (ta.access.is_write) {
      const std::uint64_t stamp = Stamp(page, ++tr.generation[page]);
      std::memcpy(buf8.data(), &stamp, 8);
      const Status s = tr.region->WriteBytes(addr, buf8);
      if (!s.ok()) {
        res.status = s;
        res.failure = "write to resident page failed: " + s.ToString();
        break;
      }
      tr.written[page] = true;
      tr.shadow.Write(addr, buf8);
    } else {
      const Status s = tr.region->ReadBytes(addr, buf8);
      if (!s.ok()) {
        res.status = s;
        res.failure = "read of resident page failed: " + s.ToString();
        break;
      }
      std::uint64_t got;
      std::memcpy(&got, buf8.data(), 8);
      const std::uint64_t expect =
          tr.written[page] ? Stamp(page, tr.generation[page]) : 0;
      if (got != expect) ++tr.verify_failures;
    }
    now = t + kAccessCost;
    tr.latency.Record(now - ta.at);
    (void)spec;
  }

  // Late-scripted events (an anchor past the last arrival) still apply.
  while (next_event < events.size()) apply_event(events[next_event++]);

  // --- quiesce: drain, settle, sweep ---------------------------------------
  now = monitor->DrainWrites(now);
  for (int round = 0; round < 8; ++round) {
    monitor->PumpBackground(now);
    now += 50 * kMicrosecond;
  }
  now = monitor->DrainWrites(now);

  if (res.status.ok()) {
    injector->set_paused(true);
    chaos::StackView view;
    view.monitor = monitor.get();
    view.pool = &pool;
    view.store = store.get();
    for (TenantRt& tr : rt) view.regions.push_back({tr.rid, tr.region.get()});
    if (auto violation = chaos::CheckInvariants(view)) {
      res.status = Status::Internal("invariant violation");
      res.failure = *violation;
    }
    for (std::size_t t = 0; res.status.ok() && t < rt.size(); ++t) {
      if (auto bad = chaos::VerifyRegionAgainstShadow(
              *monitor, *rt[t].region, rt[t].rid, *store, pool, rt[t].shadow,
              now)) {
        res.status = Status::Internal("oracle violation");
        res.failure = "tenant " + cfg.tenants[t].name + ": " + *bad;
      }
    }
    injector->set_paused(false);
  }

  // --- results ---------------------------------------------------------------
  res.finished = now;
  res.merged_latency_count = monitor->fault_engine().MergedLatency().Count();
  for (const kv::IntegrityStore* s : integrity) {
    const kv::IntegrityStoreStats& is = s->integrity_stats();
    res.corruptions_detected +=
        is.corruptions_detected + is.scrub_corruptions;
    res.scrub_pages += is.scrub_pages;
  }
  if (replicated != nullptr) {
    const kv::ReplicatedStoreStats& rs = replicated->replication_stats();
    res.repairs = rs.repairs;
    res.corruption_failovers = rs.corruption_failovers;
    res.dead_declared = rs.dead_declared;
    res.rf_restored = rs.rf_restored;
  }
  res.poisoned_fast_fails = monitor->stats().poisoned_fast_fails;
  res.prefetched_pages = monitor->stats().prefetched_pages;
  res.prefetch_hits = monitor->prefetcher().stats().hits;
  res.prefetch_wasted = monitor->prefetcher().stats().wasted;
  res.prefetch_gated_skips = monitor->prefetcher().stats().gated_skips;
  res.tier_demotions = monitor->stats().tier_demotions;
  res.tier_promotions = monitor->stats().tier_promotions;
  for (std::size_t t = 0; t < rt.size(); ++t) {
    const TenantSpec& spec = cfg.tenants[t];
    TenantRt& tr = rt[t];
    TenantResult out;
    out.name = spec.name;
    out.role = spec.role;
    out.mix = spec.workload.mix;
    out.accesses = tr.accesses;
    out.faults = tr.faults;
    out.blocked = tr.blocked;
    out.verify_failures = tr.verify_failures;
    HistStats(tr.latency, out.p50_us, out.p99_us, &out.mean_us);
    if (const obs::RegionSpanStats* rs = obs.RegionStats(tr.rid)) {
      out.span_faults = rs->spans;
      out.span_ok = rs->ok;
      HistStats(rs->latency, out.fault_p50_us, out.fault_p99_us);
      res.span_ok_total += rs->ok;
    }
    out.slo_p50_us = spec.slo_p50_us;
    out.slo_p99_us = spec.slo_p99_us;
    out.slo_pass =
        (spec.slo_p50_us <= 0 || out.p50_us <= spec.slo_p50_us) &&
        (spec.slo_p99_us <= 0 || out.p99_us <= spec.slo_p99_us) &&
        out.verify_failures == 0;
    res.blocked_total += tr.blocked;
    res.wrong_bytes += tr.verify_failures;
    res.tenants.push_back(std::move(out));
  }
  return res;
}

std::uint64_t MultiTenantResult::Fingerprint() const {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  Mix64(h, status.ok() ? 1 : 0);
  Mix64(h, total_accesses);
  Mix64(h, blocked_total);
  Mix64(h, merged_latency_count);
  Mix64(h, span_ok_total);
  Mix64(h, static_cast<std::uint64_t>(finished));
  Mix64(h, corruptions_detected);
  Mix64(h, scrub_pages);
  Mix64(h, repairs);
  Mix64(h, corruption_failovers);
  Mix64(h, dead_declared);
  Mix64(h, rf_restored);
  Mix64(h, poisoned_fast_fails);
  Mix64(h, wrong_bytes);
  Mix64(h, prefetched_pages);
  Mix64(h, prefetch_hits);
  Mix64(h, prefetch_wasted);
  Mix64(h, prefetch_gated_skips);
  Mix64(h, tier_demotions);
  Mix64(h, tier_promotions);
  for (const TenantResult& t : tenants) {
    Mix64(h, t.accesses);
    Mix64(h, t.faults);
    Mix64(h, t.blocked);
    Mix64(h, t.verify_failures);
    Mix64(h, t.span_faults);
    Mix64(h, t.span_ok);
    Mix64(h, std::bit_cast<std::uint64_t>(t.p50_us));
    Mix64(h, std::bit_cast<std::uint64_t>(t.p99_us));
    Mix64(h, std::bit_cast<std::uint64_t>(t.mean_us));
    Mix64(h, std::bit_cast<std::uint64_t>(t.fault_p50_us));
    Mix64(h, std::bit_cast<std::uint64_t>(t.fault_p99_us));
    Mix64(h, t.slo_pass ? 1 : 0);
  }
  return h;
}

std::vector<TenantSpec> StandardTenants(std::size_t count, YcsbMix steady_mix,
                                        double scale) {
  const auto scaled = [&](std::uint64_t ops) -> std::uint64_t {
    return std::max<std::uint64_t>(
        50, static_cast<std::uint64_t>(static_cast<double>(ops) * scale));
  };
  std::vector<TenantSpec> out;

  // Tenant 0: the latency-sensitive steady server. Quota'd to half the
  // default 256-page budget; its SLO is the line the drills defend.
  // Arrival rates are calibrated against the serial fault handler: one
  // fault costs ~28us of handler time (uffd dispatch + remote read +
  // eviction), so the family's aggregate fault arrival rate is kept near
  // ~50% utilization at baseline — SLO headroom exists, and the drills
  // (amplified bursts, outages, quota cuts) are what consume it.
  TenantSpec steady;
  steady.name = "steady";
  steady.role = TenantRole::kSteady;
  steady.workload.mix = steady_mix;
  steady.workload.records = 192;
  steady.workload.ops = scaled(2400);
  steady.arrival.gap = 50 * kMicrosecond;
  steady.quota_pages = 96;
  steady.slo_p50_us = 80;
  steady.slo_p99_us = 2000;
  out.push_back(steady);
  if (count < 2) return out;

  // Tenant 1: the bursty antagonist — update-heavy YCSB-A in tight bursts.
  TenantSpec antagonist;
  antagonist.name = "antagonist";
  antagonist.role = TenantRole::kAntagonist;
  antagonist.workload.mix = YcsbMix::kA;
  antagonist.workload.records = 256;
  antagonist.workload.ops = scaled(1600);
  antagonist.arrival.start = 100 * kMicrosecond;
  antagonist.arrival.burst_len = 8;
  antagonist.arrival.burst_gap = 2 * kMicrosecond;
  antagonist.arrival.idle_between_bursts = kMillisecond;
  antagonist.quota_pages = 64;
  antagonist.slo_p99_us = 20'000;
  out.push_back(antagonist);
  if (count < 3) return out;

  // Tenant 2: the scan-heavy batch job (YCSB-E); cares about finishing,
  // not tails — its SLO is deliberately loose.
  TenantSpec batch;
  batch.name = "batch";
  batch.role = TenantRole::kBatch;
  batch.workload.mix = YcsbMix::kE;
  batch.workload.records = 320;
  batch.workload.ops = scaled(400);
  batch.workload.max_scan_len = 16;
  batch.arrival.start = 500 * kMicrosecond;
  batch.arrival.gap = 40 * kMicrosecond;
  batch.quota_pages = 64;
  batch.slo_p99_us = 50'000;
  out.push_back(batch);

  // Tenants 3+: additional steady readers, alternating read-only C and
  // read-latest D.
  for (std::size_t t = 3; t < count; ++t) {
    TenantSpec extra;
    extra.name = "steady" + std::to_string(t);
    extra.role = TenantRole::kSteady;
    extra.workload.mix = (t % 2 == 1) ? YcsbMix::kC : YcsbMix::kD;
    extra.workload.records = 96;
    extra.workload.ops = scaled(800);
    extra.arrival.start = static_cast<SimTime>(t) * 50 * kMicrosecond;
    extra.arrival.gap = 120 * kMicrosecond;
    extra.quota_pages = 48;
    extra.slo_p50_us = 150;
    extra.slo_p99_us = 2500;
    out.push_back(extra);
  }
  return out;
}

}  // namespace fluid::wl
