#include "workloads/trace.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <numeric>

namespace fluid::wl {

namespace {

std::uint64_t Stamp(std::size_t page, std::uint64_t gen) noexcept {
  std::uint64_t x = page * 0x9e3779b97f4a7c15ULL + gen * 0x165667b19e3779f9ULL;
  x ^= x >> 29;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 32;
  return x;
}

}  // namespace

std::vector<TraceAccess> GeneratePhase(const TracePhase& phase,
                                       std::uint64_t seed) {
  std::vector<TraceAccess> out;
  out.reserve(phase.accesses);
  Rng rng{seed};
  const std::size_t n = std::max<std::size_t>(1, phase.pages);

  switch (phase.pattern) {
    case AccessPattern::kSequential: {
      for (std::uint64_t i = 0; i < phase.accesses; ++i)
        out.push_back(TraceAccess{
            phase.first_page + static_cast<std::size_t>(i % n),
            rng.NextDouble() < phase.write_fraction});
      break;
    }
    case AccessPattern::kUniform: {
      for (std::uint64_t i = 0; i < phase.accesses; ++i)
        out.push_back(TraceAccess{
            phase.first_page + static_cast<std::size_t>(rng.NextBounded(n)),
            rng.NextDouble() < phase.write_fraction});
      break;
    }
    case AccessPattern::kZipfian: {
      ZipfGenerator zipf{n, 0.99};
      for (std::uint64_t i = 0; i < phase.accesses; ++i)
        out.push_back(TraceAccess{
            phase.first_page + static_cast<std::size_t>(zipf.Next(rng)),
            rng.NextDouble() < phase.write_fraction});
      break;
    }
    case AccessPattern::kStrided: {
      std::size_t pos = 0;
      const std::size_t stride = std::max<std::size_t>(1, phase.stride_pages);
      for (std::uint64_t i = 0; i < phase.accesses; ++i) {
        out.push_back(TraceAccess{phase.first_page + pos,
                                  rng.NextDouble() < phase.write_fraction});
        pos = (pos + stride) % n;
      }
      break;
    }
    case AccessPattern::kPointerChase: {
      // A random cycle over the range: each access depends on the last, the
      // worst case for any prefetcher.
      std::vector<std::size_t> perm(n);
      std::iota(perm.begin(), perm.end(), std::size_t{0});
      for (std::size_t i = n; i > 1; --i)
        std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
      std::size_t pos = 0;
      for (std::uint64_t i = 0; i < phase.accesses; ++i) {
        out.push_back(TraceAccess{phase.first_page + pos,
                                  rng.NextDouble() < phase.write_fraction});
        pos = perm[pos];
      }
      break;
    }
  }
  return out;
}

std::vector<TimedAccess> StampTrace(const std::vector<TraceAccess>& accesses,
                                    std::uint32_t stream, SimTime start,
                                    SimDuration gap) {
  std::vector<TimedAccess> out;
  out.reserve(accesses.size());
  SimTime at = start;
  for (const TraceAccess& a : accesses) {
    out.push_back(TimedAccess{at, stream, a});
    at += gap;
  }
  return out;
}

std::vector<TimedAccess> MergeByTimestamp(
    std::span<const std::vector<TimedAccess>> streams) {
  std::size_t total = 0;
  for (const auto& s : streams) total += s.size();
  std::vector<TimedAccess> out;
  out.reserve(total);
  std::vector<std::size_t> pos(streams.size(), 0);
  while (out.size() < total) {
    std::size_t best = streams.size();
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (pos[s] >= streams[s].size()) continue;
      if (best == streams.size() ||
          streams[s][pos[s]].at < streams[best][pos[best]].at)
        best = s;
    }
    out.push_back(streams[best][pos[best]]);
    ++pos[best];
  }
  return out;
}

TraceResult ReplayTrace(paging::PagedMemory& memory, VirtAddr base,
                        const std::vector<TracePhase>& phases,
                        SimTime start, std::uint64_t seed) {
  TraceResult result;
  SimTime now = start;

  // Generation counter per page (for stamp verification); indexed from the
  // lowest page any phase names.
  std::size_t max_page = 0;
  for (const TracePhase& ph : phases)
    max_page = std::max(max_page, ph.first_page + ph.pages);
  std::vector<std::uint64_t> generation(max_page, 0);
  std::vector<bool> written(max_page, false);

  std::uint64_t phase_seed = seed;
  for (const TracePhase& ph : phases) {
    PhaseResult pr;
    pr.pattern = ph.pattern;
    const auto accesses = GeneratePhase(ph, phase_seed++);
    for (const TraceAccess& a : accesses) {
      const VirtAddr addr = base + a.page * kPageSize;
      const SimTime t0 = now;
      bool faulted = false;
      if (a.is_write) {
        const std::uint64_t gen = ++generation[a.page];
        const std::uint64_t stamp = Stamp(a.page, gen);
        std::array<std::byte, 8> buf;
        std::memcpy(buf.data(), &stamp, 8);
        paging::TouchResult r = memory.Store(addr, buf, now);
        if (!r.status.ok()) {
          result.status = r.status;
          return result;
        }
        written[a.page] = true;
        faulted = r.fault;
        now = r.done;
      } else {
        std::array<std::byte, 8> buf;
        paging::TouchResult r = memory.Load(addr, buf, now);
        if (!r.status.ok()) {
          result.status = r.status;
          return result;
        }
        now = r.done;
        std::uint64_t got;
        std::memcpy(&got, buf.data(), 8);
        // Unwritten pages read back zero-fill; written ones their stamp.
        const std::uint64_t expect =
            written[a.page] ? Stamp(a.page, generation[a.page]) : 0;
        if (got != expect) ++result.verify_failures;
        faulted = r.fault;
      }
      if (faulted) ++pr.faults;
      pr.latency.Record(now - t0);
    }
    pr.finished = now;
    result.phases.push_back(std::move(pr));
  }
  result.finished = now;
  result.status = Status::Ok();
  return result;
}

}  // namespace fluid::wl
