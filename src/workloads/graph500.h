// Graph500 (sequential reference implementation) — §VI-D1.
//
// "The benchmark creates a graph in memory of configurable size and then
//  performs 64 consecutive BFS traversals. ... Performance is measured
//  using the metric (millions of) traversed edges per second (TEPS). For
//  each configuration, the harmonic mean of TEPS for the 64 trials is
//  reported."
//
// The reproduction generates the standard Kronecker (R-MAT) edge list with
// the Graph500 initiator (A=0.57, B=0.19, C=0.19, D=0.05, edge factor 16),
// builds a CSR representation laid out in the VM's paged address space, and
// runs the sequential top-down BFS. Every array element access touches its
// page through PagedMemory, so the TEPS number reflects the mechanism's
// fault behaviour; the graph data itself is kept natively for speed (the
// data plane is exercised by pmbench and the test suite — DESIGN.md §4).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "paging/paged_memory.h"

namespace fluid::wl {

struct Graph500Config {
  int scale = 14;        // 2^scale vertices
  int edge_factor = 16;  // edges per vertex
  int bfs_roots = 64;
  VirtAddr base = 0;     // where the graph lives in the VM address space
  // CPU cost per traversed edge beyond memory accesses (the BFS arithmetic
  // itself); calibrated so the all-local configuration lands near Fig. 4a's
  // ~55M TEPS.
  double cpu_ns_per_edge = 7.0;
  // Background guest activity: invoked whenever `periodic_interval` of
  // virtual time passes inside the BFS, returning the new time. Models the
  // OS daemons that keep re-touching parts of the boot footprint — the
  // traffic that distinguishes full from partial disaggregation (§VI-D1).
  std::function<SimTime(SimTime)> periodic_work;
  SimDuration periodic_interval = 10 * kMillisecond;
  std::uint64_t seed = 101;
};

// CSR graph, generated natively; addresses map its arrays into the VM.
struct CsrGraph {
  std::int64_t num_vertices = 0;
  std::int64_t num_edges = 0;  // undirected input edges
  std::vector<std::int64_t> xadj;   // size V+1
  std::vector<std::int64_t> adjncy; // size 2E (both directions)

  // Paged layout: [xadj][adjncy][parent][queue] back to back.
  VirtAddr base = 0;
  VirtAddr xadj_base = 0;
  VirtAddr adj_base = 0;
  VirtAddr parent_base = 0;
  VirtAddr queue_base = 0;
  std::size_t total_pages = 0;
};

// Kronecker edge generator + CSR build.
CsrGraph BuildGraph(const Graph500Config& config);

struct BfsTrial {
  std::int64_t root = 0;
  std::int64_t edges_traversed = 0;
  SimDuration elapsed = 0;
  double Teps() const {
    return elapsed == 0 ? 0.0
                        : static_cast<double>(edges_traversed) /
                              (static_cast<double>(elapsed) / 1e9);
  }
};

struct Graph500Result {
  Status status;
  std::vector<BfsTrial> trials;
  SimTime finished = 0;

  // The official metric: harmonic mean TEPS over all trials.
  double HarmonicMeanTeps() const {
    if (trials.empty()) return 0.0;
    double denom = 0.0;
    for (const BfsTrial& t : trials) {
      const double teps = t.Teps();
      if (teps <= 0.0) return 0.0;
      denom += 1.0 / teps;
    }
    return static_cast<double>(trials.size()) / denom;
  }
};

// Construction phase: stream the graph arrays into paged memory (writes).
SimTime PopulateGraph(paging::PagedMemory& memory, const CsrGraph& graph,
                      SimTime now);

// Run the BFS trials. Roots are sampled from vertices with degree > 0.
Graph500Result RunGraph500(paging::PagedMemory& memory, const CsrGraph& graph,
                           const Graph500Config& config, SimTime start);

}  // namespace fluid::wl
