// Guest responsiveness probes under extreme footprints — Table III / §VI-E.
//
// "With the memory footprint reduced to 180 pages (720 KB), a VM can still
//  respond and open up an SSH shell. ... At only 80 pages, the VM can still
//  respond to an ICMP echo request every 1 s."
//
// A guest operation (answering a ping, completing an SSH login) is modelled
// as a working set of pages that the code path revisits many times: packet
// buffers, the sshd/ssh binaries, libc, kernel socket structures. While the
// enforced footprint covers the working set, only the first touches fault
// and the operation finishes in milliseconds; once the footprint drops
// below it, the insertion-ordered LRU thrashes on every step and the
// operation blows its protocol timeout. With a 1-page footprint under KVM,
// fault handling itself recursively faults and deadlocks — only full
// virtualisation (slow but deadlock-free) keeps the VM revivable.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/rng.h"
#include "common/types.h"
#include "paging/paged_memory.h"

namespace fluid::wl {

struct GuestOp {
  std::string_view name;
  VirtAddr wss_base = 0;
  std::size_t wss_pages = 0;   // pages the code path cycles over
  std::uint64_t steps = 0;     // page touches the operation performs
  SimDuration timeout = kSecond;
  std::uint64_t seed = 77;
};

// ICMP echo: small working set (NIC ring, skb, ICMP handler, timer paths),
// 1 s between requests.
constexpr GuestOp IcmpEchoOp(VirtAddr base) {
  return GuestOp{"icmp-echo", base, 80, 150'000, 1 * kSecond, 77};
}

// SSH login: key exchange, auth, shell spawn — a couple hundred pages of
// binary/library text plus heap, within the client's ~10 s patience.
constexpr GuestOp SshLoginOp(VirtAddr base) {
  return GuestOp{"ssh-login", base, 180, 1'200'000, 10 * kSecond, 78};
}

struct OpOutcome {
  bool responded = false;    // finished within the timeout
  bool deadlocked = false;   // KVM recursive-fault deadlock
  SimDuration elapsed = 0;
  std::uint64_t faults = 0;
};

// Run the operation: `steps` touches uniformly distributed over the working
// set (reads; instruction fetch dominates). Stops early once the timeout is
// exceeded or the mechanism deadlocks.
inline OpOutcome RunGuestOp(paging::PagedMemory& memory, const GuestOp& op,
                            SimTime start) {
  OpOutcome out;
  Rng rng{op.seed};
  SimTime now = start;
  const SimTime deadline = start + op.timeout;
  for (std::uint64_t s = 0; s < op.steps; ++s) {
    const std::size_t page =
        static_cast<std::size_t>(rng.NextBounded(op.wss_pages));
    paging::TouchResult r =
        memory.Touch(op.wss_base + page * kPageSize, /*is_write=*/false, now);
    if (r.deadlocked) {
      out.deadlocked = true;
      out.elapsed = r.done - start;
      return out;
    }
    if (!r.status.ok()) {
      out.elapsed = r.done - start;
      return out;
    }
    if (r.fault) ++out.faults;
    now = r.done;
    if (now > deadline) {
      out.elapsed = now - start;
      return out;  // timed out mid-operation
    }
  }
  out.elapsed = now - start;
  out.responded = out.elapsed <= op.timeout;
  return out;
}

}  // namespace fluid::wl
