// Testbed: one-stop wiring of the paper's six evaluation configurations
// (§VI-A): {FluidMem, Swap} x {DRAM, fast-network store, slow store}.
//
//   FluidMem backends: local DRAM store, RAMCloud over verbs, Memcached
//                      over IPoIB TCP.
//   Swap backends:     /dev/pmem0 (local DRAM), NVMeoF to remote DRAM,
//                      local SSD. The guest's own filesystem is always on
//                      the SSD.
//
// A Testbed owns every substrate object (frame pool, store, devices,
// monitor, VM) with consistent scaling: `local_dram_pages` plays the role
// of the paper's 1 GB hypervisor DRAM, and the OS census is scaled to the
// same kernel:DRAM proportion as the testbed hardware (~30 %).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string_view>

#include "blockdev/block_device.h"
#include "fluidmem/monitor.h"
#include "kvstore/local_store.h"
#include "kvstore/memcached.h"
#include "kvstore/ramcloud.h"
#include "mem/frame_pool.h"
#include "paging/paged_memory.h"
#include "swap/swap_space.h"
#include "vm/census.h"
#include "vm/fluid_vm.h"
#include "vm/swap_vm.h"

namespace fluid::wl {

enum class Backend {
  kFluidDram,
  kFluidRamcloud,
  kFluidMemcached,
  kSwapDram,
  kSwapNvmeof,
  kSwapSsd,
};

constexpr std::string_view BackendName(Backend b) noexcept {
  switch (b) {
    case Backend::kFluidDram: return "FluidMem DRAM";
    case Backend::kFluidRamcloud: return "FluidMem RAMCloud";
    case Backend::kFluidMemcached: return "FluidMem Memcached";
    case Backend::kSwapDram: return "Swap DRAM";
    case Backend::kSwapNvmeof: return "Swap NVMeoF";
    case Backend::kSwapSsd: return "Swap SSD";
  }
  return "?";
}

constexpr bool IsFluid(Backend b) noexcept {
  return b == Backend::kFluidDram || b == Backend::kFluidRamcloud ||
         b == Backend::kFluidMemcached;
}

struct TestbedConfig {
  // The hypervisor-local DRAM granted to the VM (the paper's 1 GB).
  std::size_t local_dram_pages = 4096;
  // Application pages in the VM's address space (hotplugged for FluidMem;
  // part of the 4-5 GB VM memory in the paper).
  std::size_t vm_app_pages = 16384;
  // OS boot footprint in pages; 0 means "scale the paper's 81042-page
  // census to ~30% of local DRAM", matching the testbed proportion.
  std::size_t os_footprint_pages = 0;
  // Remote store / swap device capacity, as multiples of local DRAM.
  std::size_t store_cap_dram_multiple = 20;
  fm::MonitorConfig monitor;  // lru_capacity_pages is overwritten
  // RAMCloud backend only: server worker cores (0 = the store's default of
  // 1, which serializes every request — raise it when background work like
  // speculative prefetch batches must not head-of-line-block demand reads).
  std::size_t store_service_lanes = 0;
  // FluidMem backends only: attach an NVMeoF cold tier of this many pages
  // so heat-cold eviction victims demote there (0 = no cold tier, the
  // paper's two-level hierarchy).
  std::size_t cold_tier_pages = 0;
  swap::SwapCostModel swap_costs;
  std::uint64_t seed = 1;
};

class Testbed {
 public:
  Testbed(Backend backend, const TestbedConfig& config)
      : backend_(backend), config_(config) {
    const std::size_t os_pages =
        config.os_footprint_pages != 0
            ? config.os_footprint_pages
            : config.local_dram_pages * 30 / 100;
    // MakeBootCensus divides 81042 by the divisor.
    const std::size_t divisor =
        std::max<std::size_t>(1, 81042 / std::max<std::size_t>(1, os_pages));
    census_ = vm::MakeBootCensus(divisor);

    const std::size_t store_cap_bytes =
        config.store_cap_dram_multiple * config.local_dram_pages * kPageSize;

    if (IsFluid(backend)) {
      switch (backend) {
        case Backend::kFluidDram:
          store_ = std::make_unique<kv::LocalDramStore>(kv::LocalStoreConfig{
              .memory_cap_bytes = store_cap_bytes, .seed = config.seed});
          break;
        case Backend::kFluidRamcloud: {
          kv::RamcloudConfig rc{.memory_cap_bytes = store_cap_bytes,
                                .seed = config.seed};
          if (config.store_service_lanes != 0)
            rc.service_lanes = config.store_service_lanes;
          store_ = std::make_unique<kv::RamcloudStore>(rc);
          break;
        }
        default:
          store_ = std::make_unique<kv::MemcachedStore>(kv::MemcachedConfig{
              .memory_cap_bytes = store_cap_bytes, .seed = config.seed});
          break;
      }
      // Frames: the LRU budget plus monitor-side buffers (write list,
      // in-flight batches) plus slack for transient zero-page upgrades.
      pool_ = std::make_unique<mem::FramePool>(config.local_dram_pages +
                                               8192);
      fm::MonitorConfig mc = config.monitor;
      mc.lru_capacity_pages = config.local_dram_pages;
      monitor_ = std::make_unique<fm::Monitor>(mc, *store_, *pool_);
      if (config.cold_tier_pages != 0) {
        cold_dev_ = std::make_unique<blk::BlockDevice>(
            blk::MakeNvmeofDevice(config.cold_tier_pages));
        cold_tier_ = std::make_unique<swap::SwapSpace>(*cold_dev_);
        monitor_->AttachColdTier(*cold_tier_);
      }
      fluid_vm_ = std::make_unique<vm::FluidVm>(
          census_, config.vm_app_pages, *monitor_, *pool_,
          /*pid=*/1234, /*partition=*/7, config.seed + 21);
      memory_ = fluid_vm_.get();
    } else {
      const std::size_t dev_blocks =
          config.store_cap_dram_multiple * config.local_dram_pages;
      switch (backend) {
        case Backend::kSwapDram:
          swap_dev_ = std::make_unique<blk::BlockDevice>(
              blk::MakePmemDevice(dev_blocks));
          break;
        case Backend::kSwapNvmeof:
          swap_dev_ = std::make_unique<blk::BlockDevice>(
              blk::MakeNvmeofDevice(dev_blocks));
          break;
        default:
          swap_dev_ = std::make_unique<blk::BlockDevice>(
              blk::MakeSsdDevice(dev_blocks));
          break;
      }
      fs_dev_ = std::make_unique<blk::BlockDevice>(
          blk::MakeSsdDevice(dev_blocks));
      swap_vm_ = std::make_unique<vm::SwapVm>(
          census_, config.vm_app_pages, config.local_dram_pages, *swap_dev_,
          *fs_dev_, config.swap_costs, config.seed + 22);
      memory_ = swap_vm_.get();
    }
  }

  Backend backend() const noexcept { return backend_; }
  std::string_view name() const noexcept { return BackendName(backend_); }

  paging::PagedMemory& memory() noexcept { return *memory_; }
  const vm::VmLayout& layout() const noexcept {
    return fluid_vm_ ? fluid_vm_->layout() : swap_vm_->layout();
  }
  const vm::OsCensus& census() const noexcept { return census_; }

  vm::FluidVm* fluid_vm() noexcept { return fluid_vm_.get(); }
  vm::SwapVm* swap_vm() noexcept { return swap_vm_.get(); }
  fm::Monitor* monitor() noexcept { return monitor_.get(); }
  kv::KvStore* store() noexcept { return store_.get(); }

  // Boot the guest OS (touch its census once).
  SimTime Boot(SimTime now) {
    return fluid_vm_ ? fluid_vm_->BootOs(now) : swap_vm_->BootOs(now);
  }

 private:
  Backend backend_;
  TestbedConfig config_;
  vm::OsCensus census_;

  // FluidMem side
  std::unique_ptr<kv::KvStore> store_;
  std::unique_ptr<mem::FramePool> pool_;
  // Cold tier (config.cold_tier_pages != 0): declared before the monitor
  // so it outlives it, like the store and the pool.
  std::unique_ptr<blk::BlockDevice> cold_dev_;
  std::unique_ptr<swap::SwapSpace> cold_tier_;
  std::unique_ptr<fm::Monitor> monitor_;
  std::unique_ptr<vm::FluidVm> fluid_vm_;

  // Swap side
  std::unique_ptr<blk::BlockDevice> swap_dev_;
  std::unique_ptr<blk::BlockDevice> fs_dev_;
  std::unique_ptr<vm::SwapVm> swap_vm_;

  paging::PagedMemory* memory_ = nullptr;
};

}  // namespace fluid::wl
