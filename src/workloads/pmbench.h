// pmbench: the paging micro-benchmark of §VI-B (Yang & Seymour 2018).
//
// "The working set size (WSS) was set by a 4 GB allocation from pmbench.
//  First, pmbench warms up the cache by accessing all pages once, and then
//  randomly makes 4 KB requests at a 50% read to write ratio for 100 s."
//
// The reproduction runs the same phases against a PagedMemory (either VM
// flavour), recording one latency sample per access, split into read and
// write histograms — the data behind Fig. 3's CDFs. Accesses carry real
// data: each write stamps the page with a pattern derived from its page
// number and a generation counter, and reads verify the stamp, so a paging
// bug (lost page, torn eviction) fails the run rather than skewing a curve.
#pragma once

#include <cstdint>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "paging/paged_memory.h"

namespace fluid::wl {

struct PmbenchConfig {
  VirtAddr base = 0;          // start of the benchmark allocation
  std::size_t wss_pages = 0;  // allocation size in pages
  SimDuration duration = 100 * kSecond;  // measured phase (virtual time)
  double read_ratio = 0.5;
  // Safety valve so a mis-sized run cannot spin forever in real time.
  std::uint64_t max_accesses = 50'000'000;
  std::uint64_t seed = 99;
};

struct PmbenchResult {
  Status status;
  LatencyHistogram read_latency;
  LatencyHistogram write_latency;
  std::uint64_t accesses = 0;
  std::uint64_t verify_failures = 0;
  SimTime warmup_done = 0;
  SimTime finished = 0;

  double MeanUs() const {
    const double n = static_cast<double>(read_latency.Count()) +
                     static_cast<double>(write_latency.Count());
    if (n == 0) return 0.0;
    return (read_latency.MeanUs() * static_cast<double>(read_latency.Count()) +
            write_latency.MeanUs() *
                static_cast<double>(write_latency.Count())) /
           n;
  }
};

PmbenchResult RunPmbench(paging::PagedMemory& memory,
                         const PmbenchConfig& config, SimTime start);

}  // namespace fluid::wl
