#include "workloads/pmbench.h"

#include <array>
#include <cstring>
#include <vector>

namespace fluid::wl {

namespace {

// 8-byte stamp written at the head of a page: a hash of the page number and
// the generation of the last write, so reads can detect stale or lost pages.
std::uint64_t Stamp(PageNum pn, std::uint64_t gen) noexcept {
  std::uint64_t x = pn * 0x9e3779b97f4a7c15ULL + gen;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  return x;
}

}  // namespace

PmbenchResult RunPmbench(paging::PagedMemory& memory,
                         const PmbenchConfig& config, SimTime start) {
  PmbenchResult result;
  Rng rng{config.seed};
  std::vector<std::uint64_t> generation(config.wss_pages, 0);

  SimTime now = start;

  // --- warm-up: touch every page once (writes, so contents are stamped) ----
  for (std::size_t i = 0; i < config.wss_pages; ++i) {
    const VirtAddr addr = config.base + i * kPageSize;
    const std::uint64_t stamp = Stamp(PageOf(addr), 0);
    std::array<std::byte, 8> buf;
    std::memcpy(buf.data(), &stamp, 8);
    paging::TouchResult r = memory.Store(addr, buf, now);
    if (!r.status.ok()) {
      result.status = r.status;
      return result;
    }
    now = r.done;
  }
  result.warmup_done = now;

  // --- measured phase: uniform random 4 KB requests ------------------------
  const SimTime deadline = now + config.duration;
  while (now < deadline && result.accesses < config.max_accesses) {
    const std::size_t page = static_cast<std::size_t>(
        rng.NextBounded(config.wss_pages));
    const VirtAddr addr = config.base + page * kPageSize;
    const bool is_read = rng.NextDouble() < config.read_ratio;
    const SimTime t0 = now;

    if (is_read) {
      std::array<std::byte, 8> buf;
      paging::TouchResult r = memory.Load(addr, buf, now);
      if (!r.status.ok()) {
        result.status = r.status;
        return result;
      }
      std::uint64_t seen;
      std::memcpy(&seen, buf.data(), 8);
      if (seen != Stamp(PageOf(addr), generation[page]))
        ++result.verify_failures;
      now = r.done;
      result.read_latency.Record(now - t0);
    } else {
      const std::uint64_t gen = ++generation[page];
      const std::uint64_t stamp = Stamp(PageOf(addr), gen);
      std::array<std::byte, 8> buf;
      std::memcpy(buf.data(), &stamp, 8);
      paging::TouchResult r = memory.Store(addr, buf, now);
      if (!r.status.ok()) {
        result.status = r.status;
        return result;
      }
      now = r.done;
      result.write_latency.Record(now - t0);
    }
    ++result.accesses;
  }

  result.finished = now;
  result.status = Status::Ok();
  return result;
}

}  // namespace fluid::wl
