#include "workloads/graph500.h"

#include <algorithm>
#include <deque>

namespace fluid::wl {

namespace {

// One R-MAT edge with the Graph500 initiator matrix.
std::pair<std::int64_t, std::int64_t> KroneckerEdge(int scale, Rng& rng) {
  constexpr double kA = 0.57, kB = 0.19, kC = 0.19;  // D = 0.05
  std::int64_t src = 0, dst = 0;
  for (int bit = 0; bit < scale; ++bit) {
    const double r = rng.NextDouble();
    int quad;
    if (r < kA) quad = 0;
    else if (r < kA + kB) quad = 1;
    else if (r < kA + kB + kC) quad = 2;
    else quad = 3;
    src = (src << 1) | (quad >> 1);
    dst = (dst << 1) | (quad & 1);
  }
  return {src, dst};
}

}  // namespace

CsrGraph BuildGraph(const Graph500Config& config) {
  Rng rng{config.seed};
  CsrGraph g;
  g.num_vertices = std::int64_t{1} << config.scale;
  g.num_edges = g.num_vertices * config.edge_factor;

  // Generate the edge list (both directions for the CSR).
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges));
  for (std::int64_t i = 0; i < g.num_edges; ++i) {
    auto [s, d] = KroneckerEdge(config.scale, rng);
    if (s == d) continue;  // self-loops are skipped by the reference code
    edges.emplace_back(s, d);
  }

  // Degree count (both directions), then CSR fill.
  g.xadj.assign(static_cast<std::size_t>(g.num_vertices) + 1, 0);
  for (const auto& [s, d] : edges) {
    ++g.xadj[static_cast<std::size_t>(s) + 1];
    ++g.xadj[static_cast<std::size_t>(d) + 1];
  }
  for (std::size_t v = 1; v < g.xadj.size(); ++v) g.xadj[v] += g.xadj[v - 1];
  g.adjncy.assign(static_cast<std::size_t>(g.xadj.back()), 0);
  std::vector<std::int64_t> cursor(g.xadj.begin(), g.xadj.end() - 1);
  for (const auto& [s, d] : edges) {
    g.adjncy[static_cast<std::size_t>(cursor[static_cast<std::size_t>(s)]++)] = d;
    g.adjncy[static_cast<std::size_t>(cursor[static_cast<std::size_t>(d)]++)] = s;
  }

  // Paged layout.
  g.base = config.base;
  const auto pages_for = [](std::size_t bytes) {
    return (bytes + kPageSize - 1) / kPageSize;
  };
  const std::size_t xadj_pages = pages_for(g.xadj.size() * 8);
  const std::size_t adj_pages = pages_for(g.adjncy.size() * 8);
  const std::size_t parent_pages =
      pages_for(static_cast<std::size_t>(g.num_vertices) * 8);
  const std::size_t queue_pages = parent_pages;
  g.xadj_base = g.base;
  g.adj_base = g.xadj_base + xadj_pages * kPageSize;
  g.parent_base = g.adj_base + adj_pages * kPageSize;
  g.queue_base = g.parent_base + parent_pages * kPageSize;
  g.total_pages = xadj_pages + adj_pages + parent_pages + queue_pages;
  return g;
}

SimTime PopulateGraph(paging::PagedMemory& memory, const CsrGraph& graph,
                      SimTime now) {
  // Graph construction streams the CSR arrays: one write-touch per page.
  const std::size_t data_pages =
      static_cast<std::size_t>(graph.queue_base - graph.base) / kPageSize;
  for (std::size_t i = 0; i < data_pages; ++i) {
    paging::TouchResult r =
        memory.Touch(graph.base + i * kPageSize, /*is_write=*/true, now);
    if (!r.status.ok()) return r.done;
    now = r.done;
  }
  return now;
}

Graph500Result RunGraph500(paging::PagedMemory& memory, const CsrGraph& graph,
                           const Graph500Config& config, SimTime start) {
  Graph500Result result;
  Rng rng{config.seed ^ 0xb0b5ULL};
  SimTime now = start;

  // BFS state kept natively; page touches model its memory traffic.
  std::vector<std::int64_t> parent(
      static_cast<std::size_t>(graph.num_vertices));

  const auto touch = [&](VirtAddr base, std::int64_t index,
                         bool is_write) -> Status {
    const VirtAddr addr =
        base + static_cast<VirtAddr>(index) * 8;  // 8-byte elements
    paging::TouchResult r = memory.Touch(addr, is_write, now);
    now = r.done;
    return r.status;
  };

  // Sample roots with degree > 0, as the reference code does.
  std::vector<std::int64_t> roots;
  while (static_cast<int>(roots.size()) < config.bfs_roots) {
    const auto v = static_cast<std::int64_t>(
        rng.NextBounded(static_cast<std::uint64_t>(graph.num_vertices)));
    if (graph.xadj[static_cast<std::size_t>(v) + 1] -
            graph.xadj[static_cast<std::size_t>(v)] >
        0)
      roots.push_back(v);
  }

  const double edge_cpu = config.cpu_ns_per_edge;
  SimTime next_tick = now + config.periodic_interval;
  const auto maybe_background = [&]() {
    if (!config.periodic_work) return;
    while (now >= next_tick) {
      now = config.periodic_work(now);
      next_tick += config.periodic_interval;
    }
  };
  for (const std::int64_t root : roots) {
    BfsTrial trial;
    trial.root = root;
    const SimTime t0 = now;

    std::fill(parent.begin(), parent.end(), -1);
    parent[static_cast<std::size_t>(root)] = root;
    std::deque<std::int64_t> queue{root};

    while (!queue.empty()) {
      maybe_background();
      const std::int64_t u = queue.front();
      queue.pop_front();
      if (Status s = touch(graph.queue_base, u % graph.num_vertices, false);
          !s.ok()) {
        result.status = s;
        return result;
      }
      // Row lookup touches xadj.
      if (Status s = touch(graph.xadj_base, u, false); !s.ok()) {
        result.status = s;
        return result;
      }
      const auto row_begin =
          static_cast<std::size_t>(graph.xadj[static_cast<std::size_t>(u)]);
      const auto row_end = static_cast<std::size_t>(
          graph.xadj[static_cast<std::size_t>(u) + 1]);
      PageNum last_adj_page = ~PageNum{0};
      for (std::size_t e = row_begin; e < row_end; ++e) {
        // Adjacency is scanned sequentially: touch per page, not per edge.
        const VirtAddr eaddr = graph.adj_base + e * 8;
        if (PageOf(eaddr) != last_adj_page) {
          last_adj_page = PageOf(eaddr);
          paging::TouchResult r = memory.Touch(eaddr, false, now);
          if (!r.status.ok()) {
            result.status = r.status;
            return result;
          }
          now = r.done;
        }
        const std::int64_t v = graph.adjncy[e];
        // The parent check is the irregular (random) access that makes BFS
        // memory bound.
        if (Status s = touch(graph.parent_base, v, false); !s.ok()) {
          result.status = s;
          return result;
        }
        now += static_cast<SimDuration>(edge_cpu);
        ++trial.edges_traversed;
        if (parent[static_cast<std::size_t>(v)] == -1) {
          parent[static_cast<std::size_t>(v)] = u;
          if (Status s = touch(graph.parent_base, v, true); !s.ok()) {
            result.status = s;
            return result;
          }
          queue.push_back(v);
        }
      }
    }
    trial.elapsed = now - t0;
    result.trials.push_back(trial);
  }

  result.finished = now;
  result.status = Status::Ok();
  return result;
}

}  // namespace fluid::wl
