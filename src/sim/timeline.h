// Timeline: a serially-occupied resource in virtual time.
//
// Each actor that can do only one thing at a time — the monitor thread, the
// writeback flush thread, a NIC, an SSD's command queue, a KV server's
// dispatch core — is a Timeline. Occupying it models FIFO queueing: work
// starts at max(ready, free_at) and the resource stays busy for the service
// duration. This is how asynchrony is expressed: an operation whose service
// lands on a *different* timeline than the faulting vCPU overlaps with it,
// exactly the overlap structure §V-B of the paper describes.
#pragma once

#include <algorithm>

#include "common/types.h"

namespace fluid {

class Timeline {
 public:
  struct Interval {
    SimTime start;
    SimTime end;
  };

  // FIFO-occupy the resource for `dur` starting no earlier than `ready`.
  Interval Occupy(SimTime ready, SimDuration dur) noexcept {
    const SimTime start = std::max(ready, free_at_);
    const SimTime end = start + dur;
    free_at_ = end;
    busy_total_ += dur;
    return {start, end};
  }

  // When would work submitted at `ready` start?
  SimTime EarliestStart(SimTime ready) const noexcept {
    return std::max(ready, free_at_);
  }

  SimTime free_at() const noexcept { return free_at_; }

  // Total busy time accumulated; used for utilisation reporting (the paper
  // discusses remote CPU usage of NVMeoF vs Infiniswap in §VI-A).
  SimDuration busy_total() const noexcept { return busy_total_; }

  double Utilization(SimTime horizon) const noexcept {
    return horizon == 0
               ? 0.0
               : static_cast<double>(busy_total_) / static_cast<double>(horizon);
  }

  void Reset() noexcept {
    free_at_ = 0;
    busy_total_ = 0;
  }

 private:
  SimTime free_at_ = 0;
  SimDuration busy_total_ = 0;
};

}  // namespace fluid
