// Virtual clock for the discrete-event cost model.
//
// The reproduction executes real data-structure operations but charges
// *virtual* time. A SimClock only moves forward; components advance it as
// the workload's critical path progresses. Background activity (the flush
// thread, kswapd) is modelled on separate Timelines (see timeline.h) and
// only intersects the clock through explicit waits.
#pragma once

#include <algorithm>
#include <cassert>

#include "common/types.h"

namespace fluid {

class SimClock {
 public:
  SimTime now() const noexcept { return now_; }

  void Advance(SimDuration d) noexcept { now_ += d; }

  void AdvanceTo(SimTime t) noexcept {
    // Monotone: waiting for something already complete costs nothing.
    now_ = std::max(now_, t);
  }

  void Reset() noexcept { now_ = 0; }

 private:
  SimTime now_ = 0;
};

}  // namespace fluid
