// Optional event tracing.
//
// A Tracer records (virtual time, category, message) triples when enabled.
// It is intentionally dumb: experiments and tests that want to assert on
// event ordering (e.g. "eviction overlapped the network read") attach one
// and inspect the log; production-style benchmark runs leave it disabled so
// tracing never perturbs results.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace fluid {

class Tracer {
 public:
  struct Event {
    SimTime at;
    std::string category;
    std::string message;
  };

  void Enable(bool on = true) noexcept { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }

  void Record(SimTime at, std::string_view category, std::string_view message) {
    if (!enabled_) return;
    events_.push_back(Event{at, std::string{category}, std::string{message}});
  }

  const std::vector<Event>& events() const noexcept { return events_; }
  void Clear() noexcept { events_.clear(); }

  // Count events in a category; convenience for tests.
  std::size_t CountCategory(std::string_view category) const noexcept {
    std::size_t n = 0;
    for (const auto& e : events_)
      if (e.category == category) ++n;
    return n;
  }

 private:
  bool enabled_ = false;
  std::vector<Event> events_;
};

}  // namespace fluid
