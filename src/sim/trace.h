// Optional event tracing.
//
// A Tracer records (virtual time, category, message) triples when enabled.
// Experiments and tests that want to assert on event ordering (e.g.
// "eviction overlapped the network read") attach one and inspect the log;
// production-style benchmark runs leave it disabled so tracing never
// perturbs results.
//
// Tracer is now a thin shim over obs::FlightRecorder: the event log is a
// bounded drop-oldest ring (it no longer grows without bound through a long
// chaos soak), category strings are interned once instead of allocated per
// event, and CountCategory is an O(1) counter read instead of a scan. The
// original API is preserved — events() materialises the live ring as the
// old vector-of-Event shape so existing ordering tests work unmodified.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "obs/flight_recorder.h"

namespace fluid {

class Tracer {
 public:
  struct Event {
    SimTime at;
    std::string category;
    std::string message;
  };

  explicit Tracer(std::size_t capacity = 4096) : recorder_(capacity) {}

  void Enable(bool on = true) noexcept { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }

  void Record(SimTime at, std::string_view category, std::string_view message) {
    if (!enabled_) return;
    recorder_.Record(at, recorder_.Intern(category), std::string{message});
  }

  // Events still retained in the ring, oldest first. Materialised on demand;
  // returned by value (callers binding a const& get lifetime extension).
  std::vector<Event> events() const {
    std::vector<Event> out;
    out.reserve(recorder_.size());
    recorder_.ForEach([&](const obs::FlightRecorder::Entry& e) {
      out.push_back(Event{e.at, std::string{recorder_.CategoryName(e.category)},
                          e.message});
    });
    return out;
  }

  void Clear() noexcept { recorder_.Clear(); }

  // Events recorded in a category since the last Clear(), O(1). Includes
  // events that have rotated out of the bounded ring.
  std::size_t CountCategory(std::string_view category) const noexcept {
    const auto id = recorder_.FindCategory(category);
    return id ? static_cast<std::size_t>(recorder_.CountCategory(*id)) : 0;
  }

  obs::FlightRecorder& recorder() noexcept { return recorder_; }
  const obs::FlightRecorder& recorder() const noexcept { return recorder_; }

 private:
  bool enabled_ = false;
  obs::FlightRecorder recorder_;
};

}  // namespace fluid
