// Executor: a fixed pool of serially-occupied workers in virtual time.
//
// Where a Timeline models ONE actor (the monitor thread, the flusher), an
// Executor models K interchangeable handler threads pulling from a shared
// queue — the shape of FluidMem's real monitor, which services userfaultfd
// events from a pool of handler threads. Work submitted at `ready` goes to
// the worker that can start it earliest; ties are broken by the LOWEST
// worker index, so given the same submission sequence the assignment is a
// pure function of the inputs and every run (including chaos replays) is
// bit-identical.
//
// The Executor does not schedule anything by itself: callers pick a worker,
// charge costs against its Timeline exactly as they would against a single
// monitor Timeline, and Occupy it. Aggregate busy/utilisation accessors feed
// the scalability bench.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "sim/timeline.h"

namespace fluid {

class Executor {
 public:
  explicit Executor(std::size_t workers)
      : lanes_(workers == 0 ? 1 : workers) {}

  std::size_t size() const noexcept { return lanes_.size(); }
  Timeline& at(std::size_t i) noexcept { return lanes_[i]; }
  const Timeline& at(std::size_t i) const noexcept { return lanes_[i]; }

  // The worker that can start work submitted at `ready` the earliest.
  // Deterministic tie-break: among equally-idle workers the lowest index
  // wins, so replays of the same submission order pick the same lanes.
  std::size_t PickWorker(SimTime ready) const noexcept {
    std::size_t best = 0;
    SimTime best_start = lanes_[0].EarliestStart(ready);
    for (std::size_t i = 1; i < lanes_.size(); ++i) {
      const SimTime s = lanes_[i].EarliestStart(ready);
      if (s < best_start) {
        best = i;
        best_start = s;
      }
    }
    return best;
  }

  // How many workers are still busy (would make work submitted at `ready`
  // queue) — the engine's contention model scales lock-wait with this.
  std::size_t BusyCount(SimTime ready) const noexcept {
    std::size_t n = 0;
    for (const Timeline& l : lanes_)
      if (l.free_at() > ready) ++n;
    return n;
  }

  SimDuration TotalBusy() const noexcept {
    SimDuration d = 0;
    for (const Timeline& l : lanes_) d += l.busy_total();
    return d;
  }

  SimTime MaxFreeAt() const noexcept {
    SimTime t = 0;
    for (const Timeline& l : lanes_)
      if (l.free_at() > t) t = l.free_at();
    return t;
  }

  void Reset() noexcept {
    for (Timeline& l : lanes_) l.Reset();
  }

 private:
  std::vector<Timeline> lanes_;
};

}  // namespace fluid
