// Network transport latency models.
//
// The paper's test platform (§VI-A) connects nodes with FDR InfiniBand
// (56 Gb/s, Mellanox ConnectX-3). Three transports appear in the
// evaluation:
//   * native verbs      — RAMCloud's InfiniBand transport and NVMeoF
//   * IP-over-IB (TCP)  — the Memcached backend
//   * local             — same-host DRAM ("backend" for the DRAM configs)
//
// A Transport charges the round-trip cost of one request/response pair:
// a base RTT sample (propagation + switching + endpoint processing, with
// jitter) plus serialisation time for the bytes moved. Batched operations
// (RAMCloud multi-write) pay the base RTT once and a per-object increment
// after the first, which is what makes asynchronous batching profitable.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>

#include "common/dist.h"
#include "common/fault_hook.h"
#include "common/rng.h"
#include "common/types.h"

namespace fluid::net {

struct TransportParams {
  std::string name;
  LatencyDist base_rtt;          // endpoint-to-endpoint round trip, no payload
  double gbps = 56.0;            // serialisation bandwidth
  LatencyDist per_object_extra;  // added per additional object in a batch
  // Extra host-side CPU per request (kernel TCP stack for IPoIB; ~0 for
  // kernel-bypass verbs). Charged on the caller's timeline by users.
  LatencyDist host_cpu;
};

class Transport {
 public:
  explicit Transport(TransportParams params) : params_(std::move(params)) {}

  std::string_view name() const noexcept { return params_.name; }

  // Chaos harness: every sampled round trip consults the hook and absorbs
  // its extra latency (congestion spike, link flap). Copies of the
  // transport (stores take it by value) share the same hook.
  void set_fault_hook(FaultHookPtr hook) noexcept { hook_ = std::move(hook); }
  const FaultHookPtr& fault_hook() const noexcept { return hook_; }

  // Wire time for `bytes` at the link bandwidth.
  SimDuration SerializationTime(std::size_t bytes) const noexcept {
    const double ns = static_cast<double>(bytes) * 8.0 / params_.gbps;
    return static_cast<SimDuration>(ns);
  }

  // Full RTT of a request with `req_bytes` out and `resp_bytes` back.
  SimDuration SampleRtt(std::size_t req_bytes, std::size_t resp_bytes,
                        Rng& rng) const noexcept {
    return params_.base_rtt.Sample(rng) + SerializationTime(req_bytes) +
           SerializationTime(resp_bytes) + params_.host_cpu.Sample(rng) +
           InjectedDelay();
  }

  // RTT of a batch of `n` objects of `obj_bytes` each in one direction.
  // The base RTT and host CPU are paid once; each object beyond the first
  // adds serialisation plus a small per-object server increment.
  SimDuration SampleBatchRtt(std::size_t n, std::size_t obj_bytes,
                             Rng& rng) const noexcept {
    if (n == 0) return 0;
    SimDuration t = params_.base_rtt.Sample(rng) + params_.host_cpu.Sample(rng) +
                    SerializationTime(n * obj_bytes) + InjectedDelay();
    for (std::size_t i = 1; i < n; ++i) t += params_.per_object_extra.Sample(rng);
    return t;
  }

  double MeanRttUs(std::size_t bytes) const noexcept {
    return params_.base_rtt.MeanUs() + params_.host_cpu.MeanUs() +
           ToMicros(SerializationTime(bytes));
  }

 private:
  // A transport models durations, not success/failure, so only the
  // latency half of the decision applies here; outright failures are
  // injected at the store/device/coordinator layers that own status codes.
  SimDuration InjectedDelay() const noexcept {
    return hook_ ? hook_->OnOp(FaultSite::kNetRtt, 0).extra_latency : 0;
  }

  TransportParams params_;
  FaultHookPtr hook_;
};

// --- Calibrated instances ----------------------------------------------------

// Same-host "transport": a function call plus a page copy.
inline Transport MakeLocalTransport() {
  return Transport{TransportParams{
      .name = "local",
      .base_rtt = LatencyDist::Normal(0.3, 0.05, 0.1),
      .gbps = 200.0,  // DRAM copy bandwidth, not a NIC
      .per_object_extra = LatencyDist::Constant(0.2),
      .host_cpu = LatencyDist::Constant(0.0),
  }};
}

// FDR InfiniBand with kernel-bypass verbs (RAMCloud / NVMeoF data path).
// RAMCloud reads of a 4 KB page took ~10 us of network wait in the paper
// (§V-B "a page read from RAMCloud involved waiting (10 us)").
inline Transport MakeVerbsTransport() {
  return Transport{TransportParams{
      .name = "verbs-fdr",
      .base_rtt = LatencyDist::Lognormal(7.6, 0.18, 3.8),
      .gbps = 56.0,
      .per_object_extra = LatencyDist::Normal(0.9, 0.15, 0.3),
      .host_cpu = LatencyDist::Constant(0.0),
  }};
}

// TCP over IPoIB: the Memcached backend. Kernel socket stack on both ends
// dominates; effective RTT for a 4 KB get lands near 50 us, matching the
// 65.79 us average fault latency of Fig. 3(c).
inline Transport MakeIpoibTcpTransport() {
  return Transport{TransportParams{
      .name = "ipoib-tcp",
      .base_rtt = LatencyDist::Lognormal(48.0, 0.22, 22.0),
      .gbps = 20.0,  // IPoIB achieves a fraction of native IB bandwidth
      .per_object_extra = LatencyDist::Normal(2.5, 0.5, 1.0),
      .host_cpu = LatencyDist::Normal(6.0, 1.0, 2.0),
  }};
}

}  // namespace fluid::net
