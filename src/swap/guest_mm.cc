#include "swap/guest_mm.h"

#include <algorithm>
#include <cstring>

namespace fluid::swap {

GuestKernelMm::GuestKernelMm(GuestMmConfig config,
                             blk::BlockDevice& swap_device,
                             blk::BlockDevice& fs_device)
    : config_(config),
      pool_(config.dram_frames),
      swap_(swap_device),
      fs_(&fs_device),
      rng_(config.seed) {}

void GuestKernelMm::DefineRange(VirtAddr base, std::size_t pages,
                                PageClass cls) {
  base = PageAlignDown(base);
  for (std::size_t i = 0; i < pages; ++i) {
    GuestPage& p = pages_[PageOf(base) + i];
    p.cls = cls;
    if (cls == PageClass::kFile) {
      // Each file page has a stable block on the guest's disk.
      p.slot = next_file_block_++;
    }
  }
}

SimTime GuestKernelMm::TouchRange(VirtAddr base, std::size_t pages,
                                  SimTime now) {
  base = PageAlignDown(base);
  for (std::size_t i = 0; i < pages; ++i) {
    GuestAccessResult r = Access(base + i * kPageSize, /*is_write=*/false, now);
    now = r.done;
  }
  return now;
}

GuestKernelMm::GuestPage* GuestKernelMm::Find(VirtAddr addr) {
  auto it = pages_.find(PageOf(addr));
  return it == pages_.end() ? nullptr : &it->second;
}
const GuestKernelMm::GuestPage* GuestKernelMm::Find(VirtAddr addr) const {
  auto it = pages_.find(PageOf(addr));
  return it == pages_.end() ? nullptr : &it->second;
}

void GuestKernelMm::AgeActiveList() {
  // Move a chunk of cold pages from the active tail (oldest) to the
  // inactive list, clearing referenced bits — the second-chance feed.
  // Linux only deactivates when the inactive list is low relative to the
  // active list (inactive_ratio); while a use-once stream keeps inactive
  // full, the promoted working set is never even scanned.
  if (inactive_.size() >= active_.size() && !inactive_.empty()) return;
  constexpr std::size_t kAgeBatch = 32;
  for (std::size_t i = 0; i < kAgeBatch; ++i) {
    GuestPage* p = active_.Front();
    if (p == nullptr) return;
    active_.Remove(*p);
    if (p->referenced) {
      // Recently used: rotate to the young end of the active list.
      p->referenced = false;
      p->on_active = true;
      active_.PushBack(*p);
    } else {
      p->on_active = false;
      inactive_.PushBack(*p);
    }
  }
}

bool GuestKernelMm::ShrinkInactiveOnce(SimTime& t, bool direct) {
  // Scan the inactive list from the cold end, honouring second chances.
  constexpr std::size_t kMaxScan = 64;
  for (std::size_t scanned = 0; scanned < kMaxScan; ++scanned) {
    GuestPage* p = inactive_.Front();
    if (p == nullptr) {
      AgeActiveList();
      p = inactive_.Front();
      if (p == nullptr) return false;
    }
    t += config_.costs.reclaim_per_page.Sample(rng_);
    inactive_.Remove(*p);
    if (p->referenced) {
      // Second chance: promote back to active.
      p->referenced = false;
      p->on_active = true;
      active_.PushBack(*p);
      continue;
    }

    // Evict this page.
    if (p->cls == PageClass::kAnon) {
      t += config_.costs.writeback_setup.Sample(rng_);
      auto out = swap_.WriteOut(
          std::span<const std::byte, kPageSize>{pool_.Data(p->frame)}, t);
      if (!out.status.ok()) {
        // Swap full: the page is unreclaimable for now; park it on active
        // so the scan does not spin on it.
        p->on_active = true;
        active_.PushBack(*p);
        ++stats_.oom_kills;  // allocation pressure with no swap left
        return false;
      }
      // Direct reclaim must wait for the writeback IO before the frame can
      // be reused — the latency cliff of Fig. 5a. kswapd fires and forgets.
      if (direct) t = std::max(t, out.io_complete_at);
      p->state = GuestPage::State::kSwapped;
      p->slot = out.slot;
      ++stats_.swap_outs;
    } else {  // kFile
      if (p->dirty) {
        t += config_.costs.writeback_setup.Sample(rng_);
        auto io = fs_->Write(
            p->slot,
            std::span<const std::byte, kPageSize>{pool_.Data(p->frame)}, t);
        if (direct) t = std::max(t, io.complete_at);
        ++stats_.file_writebacks;
      } else {
        ++stats_.file_drops;
      }
      p->state = GuestPage::State::kOnDisk;
    }
    pool_.Free(p->frame);
    p->frame = kInvalidFrame;
    p->dirty = false;
    return true;
  }
  return false;
}

std::size_t GuestKernelMm::Reclaim(std::size_t target_free, bool direct,
                                   SimTime& now) {
  std::size_t freed = 0;
  SimTime t = now;
  std::size_t stall = 0;
  while (pool_.available() < target_free) {
    if (ShrinkInactiveOnce(t, direct)) {
      ++freed;
      stall = 0;
    } else {
      AgeActiveList();
      if (++stall > 4) break;  // nothing reclaimable: OOM territory
    }
    ++reclaim_cycles_;
    if (reclaim_cycles_ % 8 == 0) AgeActiveList();
  }
  if (direct) now = t;
  return freed;
}

StatusOr<FrameId> GuestKernelMm::AllocateFrame(SimTime& now,
                                               bool* direct_reclaimed) {
  const auto low = static_cast<std::size_t>(std::max(
      4.0, config_.low_watermark_frac *
               static_cast<double>(config_.dram_frames)));
  const auto high = static_cast<std::size_t>(std::max(
      8.0, config_.high_watermark_frac *
               static_cast<double>(config_.dram_frames)));

  if (pool_.available() == 0) {
    // Direct reclaim on the faulting task's critical path.
    ++stats_.direct_reclaims;
    if (direct_reclaimed != nullptr) *direct_reclaimed = true;
    Reclaim(/*target_free=*/1, /*direct=*/true, now);
    if (pool_.available() == 0) {
      ++stats_.oom_kills;
      return Status::ResourceExhausted("guest OOM: nothing reclaimable");
    }
  } else if (pool_.available() < low) {
    // Wake kswapd: reclaims up to the high watermark on its own timeline.
    ++stats_.kswapd_runs;
    SimTime kt = kswapd_.EarliestStart(now);
    const SimTime k0 = kt;
    Reclaim(high, /*direct=*/false, kt);
    kswapd_.Occupy(k0, kt > k0 ? kt - k0 : 0);
  }
  return pool_.Allocate();
}

GuestAccessResult GuestKernelMm::Access(VirtAddr addr, bool is_write,
                                        SimTime now) {
  GuestAccessResult out;
  GuestPage* p = Find(addr);
  if (p == nullptr) {
    out.status = Status::InvalidArgument("access outside any defined range");
    out.done = now;
    return out;
  }

  if (p->state == GuestPage::State::kResident) {
    p->referenced = true;
    if (is_write) p->dirty = true;
    ++stats_.hits;
    out.status = Status::Ok();
    out.done = now + config_.costs.hit.Sample(rng_);
    return out;
  }

  SimTime t = now + config_.costs.fault_entry.Sample(rng_);

  if (p->state == GuestPage::State::kUntouched &&
      p->cls != PageClass::kFile) {
    // Anonymous/kernel first touch: zero-fill minor fault.
    bool direct = false;
    auto frame = AllocateFrame(t, &direct);
    if (!frame.ok()) {
      out.status = frame.status();
      out.done = t;
      return out;
    }
    std::memset(pool_.Data(*frame).data(), 0, kPageSize);
    t += config_.costs.minor_fault.Sample(rng_);
    p->frame = *frame;
    p->state = GuestPage::State::kResident;
    p->referenced = false;  // must be re-referenced to earn promotion
    p->dirty = is_write;
    if (p->cls == PageClass::kAnon || p->cls == PageClass::kFile) {
      // Use-once heuristic: new pages enter the INACTIVE list and are
      // promoted to active only if referenced again before reclaim scans
      // them — streaming pages never make it, the working set does.
      p->on_active = false;
      inactive_.PushBack(*p);
    } else {
      ++resident_pinned_;  // kernel/unevictable: off the reclaim lists
    }
    ++stats_.minor_faults;
    out.minor_fault = true;
    out.status = Status::Ok();
    out.done = t;
    return out;
  }

  // Major fault: contents come from the swap device or the filesystem.
  ++stats_.major_faults;
  out.major_fault = true;
  t += config_.costs.swapcache_lookup.Sample(rng_);
  bool direct = false;
  auto frame = AllocateFrame(t, &direct);
  if (!frame.ok()) {
    out.status = frame.status();
    out.done = t;
    return out;
  }

  t += config_.costs.block_submit.Sample(rng_);
  t += config_.costs.virtio_host.Sample(rng_);
  std::span<std::byte, kPageSize> dst{pool_.Data(*frame)};
  if (p->state == GuestPage::State::kSwapped) {
    auto io = swap_.ReadIn(p->slot, dst, t);
    if (!io.status.ok()) {
      pool_.Free(*frame);
      out.status = io.status;
      out.done = t;
      return out;
    }
    t = io.io_complete_at;
    ++stats_.swap_ins;
  } else {
    // kOnDisk file page, or first touch of a file page (page-cache miss).
    auto io = fs_->Read(p->slot, dst, t);
    if (!io.status.ok()) {
      pool_.Free(*frame);
      out.status = io.status;
      out.done = t;
      return out;
    }
    t = io.complete_at;
  }
  t += config_.costs.virtio_host.Sample(rng_);
  t += config_.costs.page_ops.Sample(rng_);

  p->frame = *frame;
  p->state = GuestPage::State::kResident;
  p->referenced = false;  // use-once: prove reuse before promotion
  p->dirty = is_write;
  if (p->cls == PageClass::kAnon || p->cls == PageClass::kFile) {
    p->on_active = false;
    inactive_.PushBack(*p);
  } else {
    ++resident_pinned_;
  }
  out.status = Status::Ok();
  out.done = t;
  return out;
}

SimTime GuestKernelMm::BalloonReclaim(std::size_t target_resident_frames,
                                      SimTime now) {
  SimTime t = now;
  std::size_t stall = 0;
  while (pool_.in_use() > target_resident_frames) {
    if (ShrinkInactiveOnce(t, /*direct=*/true)) {
      stall = 0;
    } else {
      AgeActiveList();
      if (++stall > 4) break;  // only pinned pages remain: the balloon floor
    }
  }
  return t;
}

Status GuestKernelMm::ReadBytes(VirtAddr addr, std::span<std::byte> out) const {
  const GuestPage* p = Find(addr);
  if (p == nullptr || p->state != GuestPage::State::kResident)
    return Status::FailedPrecondition("page not resident");
  const std::size_t off = addr & (kPageSize - 1);
  if (off + out.size() > kPageSize)
    return Status::InvalidArgument("read crosses page boundary");
  std::memcpy(out.data(), pool_.Data(p->frame).data() + off, out.size());
  return Status::Ok();
}

Status GuestKernelMm::WriteBytes(VirtAddr addr,
                                 std::span<const std::byte> in) {
  GuestPage* p = Find(addr);
  if (p == nullptr || p->state != GuestPage::State::kResident)
    return Status::FailedPrecondition("page not resident");
  const std::size_t off = addr & (kPageSize - 1);
  if (off + in.size() > kPageSize)
    return Status::InvalidArgument("write crosses page boundary");
  std::memcpy(pool_.Data(p->frame).data() + off, in.data(), in.size());
  p->dirty = true;
  return Status::Ok();
}

}  // namespace fluid::swap
