// GuestKernelMm: the guest kernel's memory manager for the swap baseline.
//
// This is the comparison system of the paper: a VM with a fixed local DRAM
// allotment whose overflow goes through the Linux swap interface to a block
// device (remote DRAM / NVMeoF / SSD). It reproduces the mechanisms whose
// *limits* motivate FluidMem (§II):
//
//   * page classes — only ANONYMOUS pages are swappable. File-backed pages
//     are written back to the filesystem (the guest's disk), and kernel or
//     unevictable (mlocked/pinned) pages can never leave DRAM. This is
//     partial memory disaggregation: with 1 GB of DRAM, the OS's resident
//     kernel/pinned footprint permanently subtracts from what the
//     application can keep local (visible in Fig. 4b).
//   * active/inactive second-chance reclaim — kswapd runs when free memory
//     dips below the low watermark and scans the inactive list, giving
//     referenced pages another round; the paper credits exactly this
//     mechanism for swap's better victim selection at scale factor 22.
//   * direct reclaim — when an allocation finds no free frame, the faulting
//     task reclaims synchronously, possibly waiting on dirty-page
//     writeback; this is the latency cliff MongoDB hits in Fig. 5a.
//   * a deeper software path per fault — swap-cache lookup, bio submission
//     through the guest block layer, virtio to the host, O_DIRECT host IO
//     (cache mode "none", §VI-D1) — which is why even DRAM-backed swap is
//     slower per fault than FluidMem's DRAM backend in Fig. 3.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>

#include "blockdev/block_device.h"
#include "common/dist.h"
#include "common/histogram.h"
#include "common/intrusive_list.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "mem/frame_pool.h"
#include "sim/timeline.h"
#include "swap/swap_space.h"

namespace fluid::swap {

enum class PageClass : std::uint8_t {
  kAnon,         // heap/stack: swappable
  kFile,         // page cache / mapped files: written back to the fs, not swap
  kKernel,       // kernel text/slab: never reclaimed
  kUnevictable,  // mlocked / pinned: never reclaimed
};

struct SwapCostModel {
  LatencyDist hit = LatencyDist::Normal(0.18, 0.05, 0.05);
  // First-touch anonymous minor fault: allocate + zero + map.
  LatencyDist minor_fault = LatencyDist::Normal(2.2, 0.4, 1.0);
  // Guest page-fault entry, vma walk, swap-entry decode.
  LatencyDist fault_entry = LatencyDist::Normal(2.6, 0.35, 1.2);
  LatencyDist swapcache_lookup = LatencyDist::Normal(1.2, 0.2, 0.5);
  // bio allocation + submission through the guest block layer.
  LatencyDist block_submit = LatencyDist::Normal(4.5, 0.6, 2.0);
  // virtio-blk to the host and O_DIRECT host-side processing (§VI-D1 uses
  // cache mode "none"), paid on both submit and completion.
  LatencyDist virtio_host = LatencyDist::Normal(7.5, 1.0, 3.5);
  // Frame allocation, page copy, PTE install, fault return.
  LatencyDist page_ops = LatencyDist::Normal(3.8, 0.6, 1.8);
  // Reclaim scan cost per page looked at.
  LatencyDist reclaim_per_page = LatencyDist::Normal(0.30, 0.05, 0.1);
  // Setting up writeback of one dirty page.
  LatencyDist writeback_setup = LatencyDist::Normal(2.2, 0.4, 1.0);
};

struct GuestMmConfig {
  std::size_t dram_frames = 1024;  // the VM's local memory allotment
  // Free-memory watermarks as page counts (Linux scales these with zone
  // size; we take fractions of the allotment).
  double low_watermark_frac = 0.02;
  double high_watermark_frac = 0.05;
  // vm.swappiness = 100 (paper §VI-D2): reclaim anon as eagerly as file.
  int swappiness = 100;
  SwapCostModel costs;
  std::uint64_t seed = 11;
};

struct GuestAccessResult {
  Status status;
  SimTime done = 0;
  bool major_fault = false;  // swap-in or filesystem read
  bool minor_fault = false;  // first touch / zero-fill
};

struct GuestMmStats {
  std::uint64_t hits = 0;
  std::uint64_t minor_faults = 0;
  std::uint64_t major_faults = 0;
  std::uint64_t swap_ins = 0;
  std::uint64_t swap_outs = 0;
  std::uint64_t file_writebacks = 0;
  std::uint64_t file_drops = 0;
  std::uint64_t kswapd_runs = 0;
  std::uint64_t direct_reclaims = 0;
  std::uint64_t oom_kills = 0;
};

class GuestKernelMm {
 public:
  GuestKernelMm(GuestMmConfig config, blk::BlockDevice& swap_device,
                blk::BlockDevice& fs_device);

  GuestKernelMm(const GuestKernelMm&) = delete;
  GuestKernelMm& operator=(const GuestKernelMm&) = delete;

  // Declare an address range with a page class. Pages materialise on first
  // touch; kernel/unevictable ranges can be pre-faulted with TouchRange.
  void DefineRange(VirtAddr base, std::size_t pages, PageClass cls);

  // Fault-in a whole range (used to model boot: the kernel's own footprint
  // becomes resident before the workload starts).
  SimTime TouchRange(VirtAddr base, std::size_t pages, SimTime now);

  // One guest memory access.
  GuestAccessResult Access(VirtAddr addr, bool is_write, SimTime now);

  // Data plane (page must be resident; Access() first).
  Status ReadBytes(VirtAddr addr, std::span<std::byte> out) const;
  Status WriteBytes(VirtAddr addr, std::span<const std::byte> in);

  // Balloon driver support (Table III): inflating the balloon pins pages
  // inside the guest, forcing reclaim of everything else. The achievable
  // floor is limited by the pinned footprint — the paper measured 64.75 MB
  // (20480 pages) as the balloon's maximum. Returns when reclaim finished;
  // ResidentFrames() afterwards reports the achieved footprint.
  SimTime BalloonReclaim(std::size_t target_resident_frames, SimTime now);

  // Override the resident-access cost (see vm::FluidVm::SetHitCost).
  void SetHitCost(LatencyDist d) noexcept { config_.costs.hit = d; }

  std::size_t ResidentFrames() const noexcept { return pool_.in_use(); }
  std::size_t FreeFrames() const noexcept { return pool_.available(); }
  std::size_t ResidentPinned() const noexcept { return resident_pinned_; }
  const GuestMmStats& stats() const noexcept { return stats_; }
  const SwapSpace& swap() const noexcept { return swap_; }

 private:
  struct GuestPage : ListNode {
    PageClass cls = PageClass::kAnon;
    enum class State : std::uint8_t {
      kUntouched,
      kResident,
      kSwapped,   // anon, contents in a swap slot
      kOnDisk,    // file, contents back on the filesystem
    } state = State::kUntouched;
    FrameId frame = kInvalidFrame;
    blk::BlockNum slot = 0;   // swap slot or file block
    bool dirty = false;
    bool referenced = false;
    bool on_active = false;   // which LRU list the page sits on
  };

  GuestPage* Find(VirtAddr addr);
  const GuestPage* Find(VirtAddr addr) const;

  // Allocate a frame; runs kswapd/direct reclaim as the watermarks demand.
  // Returns the allocation completion time via `now` (in/out).
  StatusOr<FrameId> AllocateFrame(SimTime& now, bool* direct_reclaimed);

  // Reclaim until free >= target_free. If `direct`, the cost lands on the
  // caller's clock (`now` advances); otherwise it runs on the kswapd
  // timeline. Returns frames freed.
  std::size_t Reclaim(std::size_t target_free, bool direct, SimTime& now);

  // Evict one reclaimable page from the inactive tail (second chance).
  // Returns true if a frame was freed; advances `t` by the reclaim work.
  bool ShrinkInactiveOnce(SimTime& t, bool direct);

  void AgeActiveList();

  SimDuration DeviceRoundTrip(blk::BlockDevice& dev, bool is_read,
                              std::span<std::byte, kPageSize> rbuf,
                              std::span<const std::byte, kPageSize> wbuf,
                              blk::BlockNum block, SimTime now,
                              SimTime* complete);

  GuestMmConfig config_;
  mem::FramePool pool_;
  SwapSpace swap_;
  blk::BlockDevice* fs_;
  Rng rng_;
  Timeline kswapd_;

  std::unordered_map<PageNum, GuestPage> pages_;
  IntrusiveList<GuestPage> active_;
  IntrusiveList<GuestPage> inactive_;
  std::size_t resident_pinned_ = 0;
  std::uint64_t reclaim_cycles_ = 0;
  blk::BlockNum next_file_block_ = 0;

  GuestMmStats stats_;
  alignas(16) std::array<std::byte, kPageSize> iobuf_{};
};

}  // namespace fluid::swap
