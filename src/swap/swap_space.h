// SwapSpace: swap-slot management over a block device.
//
// The swap baseline (Infiniswap-style network swap, §II and §VI-A) places a
// block device — DRAM pmem, an NVMeoF target, or an SSD partition — behind
// the kernel swap interface. SwapSpace owns the slot allocator and the
// mapping discipline: a page's slot is assigned at swap-out and freed at
// swap-in (no swap-cache retention, readahead disabled as in §VI-D2's
// configuration).
#pragma once

#include <span>
#include <vector>

#include "blockdev/block_device.h"
#include "common/status.h"
#include "common/types.h"

namespace fluid::swap {

class SwapSpace {
 public:
  explicit SwapSpace(blk::BlockDevice& device)
      : device_(&device), free_slots_() {
    free_slots_.reserve(device.capacity_blocks());
    for (std::size_t i = device.capacity_blocks(); i-- > 0;)
      free_slots_.push_back(static_cast<blk::BlockNum>(i));
  }

  SwapSpace(const SwapSpace&) = delete;
  SwapSpace& operator=(const SwapSpace&) = delete;

  std::size_t FreeSlots() const noexcept { return free_slots_.size(); }
  std::size_t Capacity() const noexcept { return device_->capacity_blocks(); }
  std::size_t UsedSlots() const noexcept {
    return Capacity() - free_slots_.size();
  }

  // Write a page out; returns the slot and the IO completion time.
  struct SwapOut {
    Status status;
    blk::BlockNum slot = 0;
    SimTime io_complete_at = 0;
  };
  SwapOut WriteOut(std::span<const std::byte, kPageSize> page, SimTime now) {
    if (free_slots_.empty())
      return {Status::ResourceExhausted("swap space full"), 0, now};
    const blk::BlockNum slot = free_slots_.back();
    free_slots_.pop_back();
    auto io = device_->Write(slot, page, now);
    return {io.status, slot, io.complete_at};
  }

  // Read a page back in and release its slot.
  struct SwapIn {
    Status status;
    SimTime io_complete_at = 0;
  };
  SwapIn ReadIn(blk::BlockNum slot, std::span<std::byte, kPageSize> out,
                SimTime now) {
    auto io = device_->Read(slot, out, now);
    free_slots_.push_back(slot);
    return {io.status, io.complete_at};
  }

  // Read without releasing the slot. For callers that must keep the
  // on-disk copy live until they know the read succeeded (ReadIn frees
  // the slot even on an IO error, after which it could be reallocated
  // and overwritten); pair with Release() once the data is safe.
  SwapIn ReadKeep(blk::BlockNum slot, std::span<std::byte, kPageSize> out,
                  SimTime now) {
    auto io = device_->Read(slot, out, now);
    return {io.status, io.complete_at};
  }

  // Return a slot to the free pool without reading it.
  void Release(blk::BlockNum slot) { free_slots_.push_back(slot); }

  blk::BlockDevice& device() noexcept { return *device_; }

 private:
  blk::BlockDevice* device_;
  std::vector<blk::BlockNum> free_slots_;
};

}  // namespace fluid::swap
