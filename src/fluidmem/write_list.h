// The asynchronous write list (paper §V-B, Fig. 2 steps 6-8).
//
// "Rather than waiting for the write to complete before handling the next
//  page fault, the critical path in the monitor only evicts the page from
//  the VM and puts the page on a write list before moving on to the next
//  fault. A separate thread periodically flushes the write list to the
//  key-value store when its size has reached a configured batch size of
//  pages or a stale file descriptor has been found."
//
// Entries hold the *frame* the page was UFFD_REMAP'ed into — zero-copy:
// the bytes move straight from the VM's page table into the flush batch.
// The page fault handler may STEAL an entry to resolve a re-fault without
// any network round trip; a page inside a posted (in-flight) batch cannot
// be stolen and the fault must wait for the batch to complete.
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <iterator>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "fluidmem/page_key.h"

namespace fluid::fm {

struct PendingWrite {
  PageRef page;
  FrameId frame = kInvalidFrame;
  SimTime enqueued_at = 0;
  // Per-object durability verdict, stamped when the write is posted (from
  // the store's per-KvWrite status). A batch can now partially succeed:
  // only the objects the store actually rejected re-enqueue on retirement.
  bool posted_ok = true;
};

struct InFlightBatch {
  std::vector<PendingWrite> writes;
  SimTime complete_at = 0;
  // Whether the posted multi-write succeeded. A failed batch still holds
  // its frames: the pages are NOT durable and must be re-enqueued when the
  // batch retires, never marked remote.
  bool ok = true;
};

// RetireCompleted's split result: `durable` pages may release their frames
// and become kRemote; `failed` pages must go back on the write list.
struct RetiredWrites {
  std::vector<PendingWrite> durable;
  std::vector<PendingWrite> failed;
};

class WriteList {
 public:
  // --- pending (not yet posted) ------------------------------------------------

  void Enqueue(const PageRef& p, FrameId frame, SimTime now) {
    pending_.push_back(PendingWrite{p, frame, now});
    pending_index_[p] = frame;
  }

  bool ContainsPending(const PageRef& p) const {
    return pending_index_.contains(p);
  }

  // Steal: remove the entry and hand its frame back to the fault handler.
  std::optional<FrameId> Steal(const PageRef& p) {
    auto it = pending_index_.find(p);
    if (it == pending_index_.end()) return std::nullopt;
    const FrameId f = it->second;
    pending_index_.erase(it);
    for (auto dit = pending_.begin(); dit != pending_.end(); ++dit) {
      if (dit->page == p) {
        pending_.erase(dit);
        break;
      }
    }
    ++steals_;
    return f;
  }

  std::size_t PendingCount() const noexcept { return pending_.size(); }

  // Age of the oldest pending entry. Entries can carry enqueue times ahead
  // of `now` (the flush thread's timeline runs ahead of the monitor's);
  // those are brand new, age 0 — never let unsigned subtraction underflow
  // into an "ancient" age that triggers a spurious flush.
  SimTime OldestPendingAge(SimTime now) const {
    if (pending_.empty()) return 0;
    const SimTime at = pending_.front().enqueued_at;
    return at >= now ? 0 : now - at;
  }

  // Pull up to `max_batch` entries to post as one multi-write.
  std::vector<PendingWrite> TakeBatch(std::size_t max_batch) {
    std::vector<PendingWrite> batch;
    const std::size_t n = std::min(max_batch, pending_.size());
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(pending_.front());
      pending_index_.erase(pending_.front().page);
      pending_.pop_front();
    }
    return batch;
  }

  // Pull up to `max_batch` entries MATCHING `pred`, preserving FIFO order
  // among the matches; non-matching entries keep their positions. The
  // coalescing flusher uses this to lift one partition's writes out of the
  // shared list as a single same-partition multi-write batch.
  template <typename Pred>  // bool(const PendingWrite&)
  std::vector<PendingWrite> TakeBatchIf(std::size_t max_batch, Pred&& pred) {
    std::vector<PendingWrite> batch;
    for (auto it = pending_.begin();
         it != pending_.end() && batch.size() < max_batch;) {
      if (pred(*it)) {
        batch.push_back(*it);
        pending_index_.erase(it->page);
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    return batch;
  }

  // --- in-flight (posted, awaiting completion) ----------------------------------

  void AddInFlight(InFlightBatch batch) {
    for (const PendingWrite& w : batch.writes)
      inflight_index_[w.page] = batch.complete_at;
    inflight_.push_back(std::move(batch));
  }

  // If `p` is inside a posted batch, when does that batch complete?
  std::optional<SimTime> InFlightCompletion(const PageRef& p) const {
    auto it = inflight_index_.find(p);
    if (it == inflight_index_.end()) return std::nullopt;
    return it->second;
  }

  // Retire batches whose completion time has passed. Writes from
  // successful batches come back as `durable` (caller recycles the frames
  // and marks pages kRemote); writes from failed batches come back as
  // `failed` (caller re-enqueues them — the store never stored the bytes,
  // so dropping the frame would lose the page).
  RetiredWrites RetireCompleted(SimTime now) {
    RetiredWrites done;
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      if (it->complete_at <= now) {
        for (const PendingWrite& w : it->writes) {
          // Per-object verdict: a batch that partially failed only
          // re-enqueues the objects the store actually rejected — the
          // acknowledged ones are durable and must NOT be re-flushed
          // (write amplification). Whole-batch failures stamp every
          // object failed, reproducing the old batch-level split exactly.
          (w.posted_ok ? done.durable : done.failed).push_back(w);
          inflight_index_.erase(w.page);
        }
        it = inflight_.erase(it);
      } else {
        ++it;
      }
    }
    return done;
  }

  // A fault hit a page inside a posted batch: the handler must wait until
  // the batch completes (the returned time), after which it may copy the
  // page straight from the still-buffered frame — no network round trip
  // (§V-B). The entry is removed; the caller owns the frame.
  std::optional<std::pair<SimTime, FrameId>> StealInFlight(const PageRef& p) {
    auto it = inflight_index_.find(p);
    if (it == inflight_index_.end()) return std::nullopt;
    const SimTime complete_at = it->second;
    inflight_index_.erase(it);
    for (InFlightBatch& b : inflight_) {
      for (auto wit = b.writes.begin(); wit != b.writes.end(); ++wit) {
        if (wit->page == p) {
          const FrameId f = wit->frame;
          b.writes.erase(wit);
          return std::make_pair(complete_at, f);
        }
      }
    }
    return std::nullopt;  // unreachable if indices are consistent
  }

  std::size_t InFlightCount() const noexcept {
    return inflight_index_.size();
  }

  // Drop every buffered write (pending AND in-flight) belonging to one
  // region, returning the frames for the caller to recycle. Used on VM
  // shutdown: the partition is about to be deleted, so flushing these
  // writes would pay network round trips for data that is already dead.
  std::vector<FrameId> DiscardRegion(RegionId region) {
    std::vector<FrameId> frames;
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->page.region == region) {
        frames.push_back(it->frame);
        pending_index_.erase(it->page);
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto bit = inflight_.begin(); bit != inflight_.end();) {
      auto& writes = bit->writes;
      for (auto wit = writes.begin(); wit != writes.end();) {
        if (wit->page.region == region) {
          frames.push_back(wit->frame);
          inflight_index_.erase(wit->page);
          wit = writes.erase(wit);
        } else {
          ++wit;
        }
      }
      bit = writes.empty() ? inflight_.erase(bit) : std::next(bit);
    }
    return frames;
  }

  // Completion time of the last posted batch (0 when none in flight).
  SimTime LatestCompletion() const noexcept {
    SimTime latest = 0;
    for (const InFlightBatch& b : inflight_)
      latest = std::max(latest, b.complete_at);
    return latest;
  }
  std::uint64_t StealCount() const noexcept { return steals_; }

  // --- read-only introspection (chaos invariants, durability checks) -----------

  template <typename Fn>  // Fn(const PendingWrite&)
  void ForEachPending(Fn&& fn) const {
    for (const PendingWrite& w : pending_) fn(w);
  }

  template <typename Fn>  // Fn(const PendingWrite&, bool batch_ok)
  void ForEachInFlight(Fn&& fn) const {
    for (const InFlightBatch& b : inflight_)
      for (const PendingWrite& w : b.writes) fn(w, b.ok);
  }

  // Does any buffered write (pending or in-flight) belong to `region`?
  // Shutdown/migration must not forget a region while this holds: those
  // pages are not durable anywhere else.
  bool HasRegionEntries(RegionId region) const {
    for (const PendingWrite& w : pending_)
      if (w.page.region == region) return true;
    for (const InFlightBatch& b : inflight_)
      for (const PendingWrite& w : b.writes)
        if (w.page.region == region) return true;
    return false;
  }

 private:
  std::deque<PendingWrite> pending_;
  std::unordered_map<PageRef, FrameId, PageRefHash> pending_index_;
  std::deque<InFlightBatch> inflight_;
  std::unordered_map<PageRef, SimTime, PageRefHash> inflight_index_;
  std::uint64_t steals_ = 0;
};

}  // namespace fluid::fm
