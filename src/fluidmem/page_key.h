// Identity of a tracked page inside the monitor.
//
// The monitor can watch several uffd regions (one per VM); a page is
// identified by the region it belongs to plus its page-aligned address.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.h"

namespace fluid::fm {

// Index of a registered region within one monitor (small and dense).
using RegionId = std::uint32_t;

struct PageRef {
  RegionId region = 0;
  VirtAddr addr = 0;  // page aligned

  bool operator==(const PageRef&) const = default;
};

struct PageRefHash {
  std::size_t operator()(const PageRef& p) const noexcept {
    std::uint64_t x = p.addr ^ (static_cast<std::uint64_t>(p.region) << 52);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

}  // namespace fluid::fm
