// White-box access to the Monitor for tests and the chaos harness.
//
// Two jobs: (1) reach internal structures the invariant checks must sweep
// (tracker/LRU/write-list mutual consistency) without widening the
// Monitor's public API, and (2) deliberately re-introduce fixed bugs so
// the chaos harness can demonstrate it catches them (regression-catching
// acceptance tests). Never used by production code paths.
#pragma once

#include "fluidmem/monitor.h"

namespace fluid::fm {

struct MonitorTestPeer {
  static PageTracker& tracker(Monitor& m) { return m.tracker_; }
  static LruBuffer& lru(Monitor& m) { return m.lru_; }
  static WriteList& write_list(Monitor& m) { return m.write_list_; }
  static mem::FramePool& pool(Monitor& m) { return *m.pool_; }

  // Re-creates the pre-fix UnregisterRegion shutdown path: drain (pay for)
  // the dying region's buffered writes instead of discarding them, then
  // drop the partition. Healthy stores make this merely wasteful; under a
  // store outage the bounded drain gives up and the region's write-list
  // entries — and their frames — dangle forever after the region is
  // forgotten. The chaos invariants (active-region write list, frame-pool
  // conservation) must catch exactly that.
  static Status BuggyUnregister(Monitor& m, RegionId id, SimTime now) {
    if (id >= m.regions_.size() || !m.regions_[id].active)
      return Status::InvalidArgument("unknown region");
    now = m.DrainWrites(now);
    m.RetireCompleted(now);
    (void)m.lru_.ExtractRegion(id);
    m.tracker_.ForgetRegion(id);
    (void)m.store_->DropPartition(m.regions_[id].partition, now);
    m.regions_[id].active = false;
    m.regions_[id].region = nullptr;
    return Status::Ok();
  }
};

}  // namespace fluid::fm
