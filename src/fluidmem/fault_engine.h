// The sharded fault-handling engine: K parallel monitor handler shards in
// deterministic virtual time.
//
// FluidMem's production monitor services userfaultfd events from a pool of
// handler threads; the serial Timeline model in Monitor reproduces Table I
// faithfully but hides the scaling axis entirely. The engine models that
// pool:
//
//   * K handler workers (an Executor of K Timelines). Every fault is routed
//     to the worker owning its page — ShardOf(page) is a pure hash — so the
//     assignment needs no shared queue state and replays identically.
//   * The page tracker and LRU buffer are partitioned into per-shard slices
//     by the same hash (see LruBuffer/PageTracker shard support); a handler
//     evicts from its own slice while it holds at least its fair share of
//     the budget, and WORK-STEALS the hottest slice's oldest page when its
//     own slice runs cold — one tenant's burst cannot monopolize DRAM.
//   * A contention model for the structures that stay shared (frame pool,
//     write list): each fault pays one sampled lock-hold window (calibrated
//     against Table I's cache-management rows, see MonitorCostModel) per
//     handler that is busy when it dispatches — the convoy a real striped
//     monitor pays on its shared locks.
//   * Batched uffd dequeue: UffdRegion queues concurrent vCPU faults and
//     ReadEvents(max_n) drains up to N per virtual read(2), as the real
//     libuserfaultfd loop does. Events 2..N of a batch skip the epoll
//     wakeup (batched_dispatch). Remote faults of one batch that share a
//     shard are fetched with ONE MultiGet, paying the transport's batch RTT
//     once instead of N full RTTs.
//   * A bounded outstanding-op window per shard: posted remote reads
//     overlap up to `io_window` deep; past that the poster waits for the
//     oldest op, bounding both memory and tail latency.
//   * Read coalescing: a refault on a page whose async read is still in
//     flight on a peer handler becomes a second waiter on the same Get
//     instead of issuing a duplicate.
//
// Determinism: workers are picked by page hash (not load), ties in every
// scan break toward the lowest index, and all randomness comes from seeded
// Rngs — with one shard no engine-only distribution is ever sampled, so
// serial runs (all existing tests, chaos seeds, Table I/II benches) are
// bit-identical to the pre-engine monitor.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/types.h"
#include "fluidmem/monitor.h"
#include "fluidmem/page_key.h"
#include "mem/uffd.h"
#include "obs/span.h"
#include "sim/executor.h"

namespace fluid::fm {

// Scheduling context for one HandleFaultScheduled call. The default value
// (null engine/worker) selects the legacy serial path: the fault runs on
// Monitor::monitor_, samples nothing extra, and consults no engine hook.
struct FaultSchedule {
  FaultEngine* engine = nullptr;  // null => serial path, no engine hooks
  std::size_t shard = 0;
  Timeline* worker = nullptr;     // null => Monitor::monitor_
  // Event 2..N of one batched read(2): charge batched_dispatch instead of
  // the full epoll-wakeup dispatch.
  bool batch_follower = false;
  // Bound span cursor when observability is enabled; null otherwise. The
  // fault path advances it at every stage transition (no-op when null).
  obs::SpanCursor* span = nullptr;
};

// Per-shard telemetry; merged on read by FaultEngine::TotalStats.
struct EngineShardStats {
  std::uint64_t faults = 0;
  std::uint64_t batched_reads = 0;    // served from a shard-group MultiGet
  std::uint64_t coalesced_reads = 0;  // refaults folded onto a pending read
  std::uint64_t work_steals = 0;      // victim taken from another slice
  std::uint64_t io_window_waits = 0;  // posts gated by the outstanding window
  std::uint64_t deferred_evictions = 0;  // victims handed to the bg evictor
  SimDuration lock_wait_total = 0;    // contention surcharge paid
};

class FaultEngine {
 public:
  FaultEngine(Monitor& monitor, std::size_t shards, std::size_t io_window,
              std::size_t read_batch, std::uint64_t seed);

  std::size_t shard_count() const noexcept { return exec_.size(); }
  std::size_t ShardOf(const PageRef& p) const noexcept {
    return exec_.size() == 1 ? 0 : PageRefHash{}(p) % exec_.size();
  }

  // Route one fault. Shard count 1 sends it down the exact legacy path.
  FaultOutcome Handle(RegionId id, VirtAddr addr, SimTime fault_time);

  // Drain the region's queued uffd events in batches of up to
  // `uffd_read_batch` per virtual read(2), routing each fault to its shard
  // and group-fetching each shard's remote pages with one MultiGet.
  // Returns outcomes in dequeue order.
  std::vector<FaultOutcome> PumpQueuedFaults(RegionId id, SimTime now);

  // --- merged-on-read telemetry ---------------------------------------------
  const EngineShardStats& shard_stats(std::size_t s) const {
    return shards_[s].stats;
  }
  EngineShardStats TotalStats() const;
  const LatencyHistogram& shard_latency(std::size_t s) const {
    return shards_[s].latency;
  }
  // End-to-end fault latency (fault raise -> vCPU wake) across all shards.
  LatencyHistogram MergedLatency() const;
  const Executor& executor() const noexcept { return exec_; }

 private:
  friend class Monitor;  // fault-path hooks below

  struct GroupRead {
    alignas(16) std::array<std::byte, kPageSize> bytes;
    SimTime available_at = 0;
  };

  // An eviction decided on the fault path but executed by the shard's
  // background evictor (pipelined-writeback mode).
  struct DeferredEviction {
    RegionId region = 0;   // faulting region (quota policy input)
    SimTime ready_at = 0;  // earliest time the evictor may start
  };

  struct Shard {
    EngineShardStats stats;
    LatencyHistogram latency{/*min_ns=*/50.0, /*max_ns=*/1e9,
                             /*buckets_per_decade=*/60};
    std::vector<SimTime> window;  // completion times of outstanding reads
    // Background eviction/writeback worker for this shard: deferred
    // evictions run here and the coalescing flusher posts this shard's
    // partition batches here, off every fault worker's critical path.
    Timeline evictor;
    std::vector<DeferredEviction> evict_queue;
  };

  FaultOutcome HandleOne(RegionId id, VirtAddr addr, SimTime fault_time,
                         bool batch_follower);

  // Shard-group remote fetch for one dequeued batch (engine mode only).
  void PostGroupReads(RegionId id, const std::vector<mem::QueuedEvent>& batch,
                      SimTime now);

  // --- hooks consulted by Monitor::HandleFaultScheduled ---------------------
  // One sampled (write-list + frame-pool) lock-hold window per busy peer
  // handler at dispatch time. Never called with one shard.
  SimDuration ChargeLockContention(std::size_t shard, SimTime at);
  // Block until the shard's outstanding-read window has a free slot.
  SimTime GateWindow(std::size_t shard, SimTime t);
  // Record a posted async read (window slot + coalescing map).
  void NoteReadPosted(std::size_t shard, const PageRef& p,
                      SimTime complete_at);
  // If `p` has an async read still in flight, its completion time (the
  // refault coalesces onto it); expired entries are lazily dropped.
  std::optional<SimTime> OutstandingReadCompletion(const PageRef& p,
                                                   SimTime now);
  // Claim bytes fetched by a shard-group MultiGet for `p`, if any.
  std::optional<GroupRead> TakeGroupRead(const PageRef& p);
  // Engine-mode victim selection: quota first (same policy as the serial
  // monitor), then the handler's own slice while it holds its fair share,
  // else steal the hottest slice's oldest page.
  bool PopVictim(RegionId faulting_region, std::size_t shard, PageRef* out);

  // --- background eviction/writeback pipeline (pipelined mode only) ---------
  // Queue one eviction decided on the fault path; the shard's background
  // evictor performs it when the dequeue batch is drained.
  void DeferEviction(std::size_t shard, RegionId region, SimTime ready_at);
  // Run every queued eviction on its shard's evictor timeline (overlapping
  // the next dequeue batch's fault handling on the worker timelines), then
  // give the coalescing flusher a chance to post the batches that filled.
  void DrainEvictions();
  // Timeline the coalescing flusher posts one partition's batches on.
  // Keyed by partition so same-partition writes retain their post order
  // (the eager-data model makes the last MultiPut authoritative).
  Timeline& EvictorTimelineFor(PartitionId partition) noexcept {
    return shards_[static_cast<std::size_t>(partition) % shards_.size()]
        .evictor;
  }

  Monitor* monitor_;
  Executor exec_;
  std::size_t io_window_;
  std::size_t read_batch_;
  // The dequeue/pump thread: reads each event batch and posts the shard-
  // group MultiGets at DEQUEUE time, before any handler touches the batch.
  // Posting here (not on the first handler's worker) is what overlaps one
  // batch's read RTT with the previous batch's fault handling — otherwise
  // every batch pays a full un-overlapped RTT per shard and the sweep
  // flatlines at the RTT/batch ratio regardless of K.
  Timeline pump_;
  Rng rng_;  // engine-only draws (never consulted with one shard)
  std::vector<Shard> shards_;
  // Async reads still in flight, keyed by page (coalescing).
  std::unordered_map<PageRef, SimTime, PageRefHash> outstanding_reads_;
  // Bytes group-fetched for the current batch, claimed per fault.
  std::unordered_map<PageRef, GroupRead, PageRefHash> group_reads_;
};

}  // namespace fluid::fm
