#include "fluidmem/migration.h"

#include <algorithm>
#include <array>
#include <vector>

namespace fluid::fm {

PreCopyMigrator::PreCopyMigrator(Monitor& source, RegionId source_region_id)
    : source_(&source), rid_(source_region_id) {}

PreCopyMigrator::Round PreCopyMigrator::CopyPages(
    const std::vector<VirtAddr>& pages, SimTime now) {
  Round r;
  mem::UffdRegion* region = source_->region_of(rid_);
  if (region == nullptr) {
    r.status = Status::InvalidArgument("unknown region");
    r.done = now;
    return r;
  }
  const PartitionId partition = source_->partition_of(rid_);
  kv::KvStore& store = source_->store();

  // Copy page contents to the store in multi-write batches. Unlike
  // eviction, the pages STAY mapped in the VM (copy, not move).
  constexpr std::size_t kBatch = 32;
  std::array<std::array<std::byte, kPageSize>, kBatch> bufs;
  std::vector<kv::KvWrite> writes;
  SimTime t = now;
  std::size_t i = 0;
  while (i < pages.size()) {
    writes.clear();
    const std::size_t n = std::min(kBatch, pages.size() - i);
    for (std::size_t k = 0; k < n; ++k) {
      const VirtAddr addr = pages[i + k];
      if (!region->ReadBytes(addr, bufs[k]).ok()) continue;  // raced away
      writes.push_back(kv::KvWrite{kv::MakePageKey(addr), bufs[k]});
    }
    if (!writes.empty()) {
      kv::OpResult mp = store.MultiPut(partition, writes, t);
      if (!mp.status.ok()) {
        r.status = mp.status;
        r.done = mp.complete_at;
        return r;
      }
      t = mp.complete_at;
      r.pages_copied += writes.size();
    }
    i += n;
  }
  r.status = Status::Ok();
  r.done = t;
  return r;
}

PreCopyMigrator::Round PreCopyMigrator::CopyRound(SimTime now) {
  mem::UffdRegion* region = source_->region_of(rid_);
  if (region == nullptr)
    return Round{Status::InvalidArgument("unknown region"), now, 0};
  std::vector<VirtAddr> pages;
  if (!first_round_done_) {
    pages = region->PresentPageAddresses();
    (void)region->CollectDirtyPages();  // the full copy supersedes them
    first_round_done_ = true;
  } else {
    pages = region->CollectDirtyPages();
  }
  Round r = CopyPages(pages, now);
  if (r.status.ok()) {
    ++rounds_;
    total_copied_ += r.pages_copied;
  }
  return r;
}

MigrationResult PreCopyMigrator::Finalize(Monitor& target,
                                          mem::UffdRegion& target_region,
                                          PartitionId partition, SimTime now,
                                          const MigrationConfig& config) {
  MigrationResult out;
  if (target_region.PresentPages() != 0) {
    out.status =
        Status::FailedPrecondition("destination region must be empty");
    out.resumed_at = now;
    return out;
  }
  const SimTime pause_start = now;

  // Stop-and-copy: the final dirty residue (plus anything never copied).
  Round final_round = CopyRound(now);
  if (!final_round.status.ok()) {
    out.status = final_round.status;
    out.resumed_at = final_round.done;
    return out;
  }
  SimTime t = final_round.done;
  out.pages_flushed = final_round.pages_copied;

  // Any pages still buffered on the source's write list must be durable.
  t = source_->DrainWrites(t);
  if (source_->write_list().HasRegionEntries(rid_)) {
    // Store outage mid-handoff: the only copies of some pages are still in
    // the source's write list. Abort before the destination adopts any
    // metadata; the source VM resumes where it was.
    out.status = Status::Unavailable("source writeback not durable");
    out.resumed_at = t;
    return out;
  }

  // Metadata: every page the source ever tracked, plus the pages that were
  // only ever resident (never evicted) and thus unknown to the tracker's
  // remote set — after the copy they all live in the store.
  std::vector<VirtAddr> tracked;
  source_->tracker().ForEachInRegion(
      rid_, [&tracked](const PageRef& p, PageLocation) {
        tracked.push_back(p.addr);
      });
  out.pages_tracked = tracked.size();
  t += config.handshake +
       static_cast<SimDuration>(tracked.size()) * config.metadata_ns_per_page;

  out.target_region = target.RegisterRegion(target_region, partition);
  for (const VirtAddr addr : tracked)
    target.ImportRemotePage(out.target_region, addr);

  Status rel = source_->UnregisterRegion(rid_, t, /*drop_partition=*/false);
  if (!rel.ok()) {
    out.status = rel;
    out.resumed_at = t;
    return out;
  }
  out.status = Status::Ok();
  out.downtime = t - pause_start;
  out.resumed_at = t;
  return out;
}

MigrationResult MigrateRegion(Monitor& source, RegionId source_region_id,
                              Monitor& target, mem::UffdRegion& target_region,
                              PartitionId partition, SimTime now,
                              const MigrationConfig& config) {
  MigrationResult out;
  if (target_region.PresentPages() != 0) {
    out.status =
        Status::FailedPrecondition("destination region must be empty");
    out.resumed_at = now;
    return out;
  }

  const SimTime pause_start = now;

  // 1. Pause point: push the VM's resident pages to the shared store. The
  //    page contents never touch the migration channel — they travel
  //    through remote memory, which both hypervisors already reach.
  const std::size_t resident_before = source.ResidentPages();
  SimTime t = source.FlushRegion(source_region_id, now);
  // Conservative: count what left this region (other VMs' pages stayed).
  out.pages_flushed = resident_before - source.ResidentPages();
  if (source.write_list().HasRegionEntries(source_region_id)) {
    // FlushRegion's drain gave up (store outage): some pages exist only in
    // the source's write list. Registering the destination now would hand
    // it a partition missing those pages — abort instead.
    out.status = Status::Unavailable("source writeback not durable");
    out.resumed_at = t;
    return out;
  }

  // 2. Transfer the pagetracker metadata (page numbers only).
  std::vector<VirtAddr> tracked;
  source.tracker().ForEachInRegion(
      source_region_id, [&tracked](const PageRef& p, PageLocation loc) {
        // After FlushRegion everything live is kRemote; defensive filter.
        if (loc == PageLocation::kRemote) tracked.push_back(p.addr);
      });
  out.pages_tracked = tracked.size();
  t += config.handshake +
       static_cast<SimDuration>(tracked.size()) * config.metadata_ns_per_page;

  // 3. Register the destination region and adopt the metadata; the VM
  //    resumes there with a zero local footprint.
  out.target_region = target.RegisterRegion(target_region, partition);
  for (const VirtAddr addr : tracked)
    target.ImportRemotePage(out.target_region, addr);

  // 4. Release the source side, keeping the partition's objects alive.
  Status rel = source.UnregisterRegion(source_region_id, t,
                                       /*drop_partition=*/false);
  if (!rel.ok()) {
    out.status = rel;
    out.resumed_at = t;
    return out;
  }

  out.status = Status::Ok();
  out.downtime = t - pause_start;
  out.resumed_at = t;
  return out;
}

}  // namespace fluid::fm
