// Calibrated cost model for FluidMem's page-fault handling path.
//
// Every named component below corresponds to a code path the paper profiles
// in Table I, or to a kernel/virtualisation cost implied by §V and Fig. 2.
// The default values are calibrated so that the reproduction's Table I,
// Table II, and Figure 3 land near the paper's numbers; tests that need
// exact arithmetic swap in LatencyDist::Constant values.
//
// Paper Table I (RAMCloud backend, synchronous handling), units us:
//   UPDATE_PAGE_CACHE      2.56 (0.25 sd, 3.32 p99)
//   INSERT_PAGE_HASH_NODE  2.58 (1.26 sd, 8.36 p99)
//   INSERT_LRU_CACHE_NODE  2.87 (0.47 sd, 3.65 p99)
//   UFFD_ZEROPAGE          2.61 (0.44 sd, 3.51 p99)
//   UFFD_REMAP             1.65 (2.57 sd, 18.03 p99)  <- async issue; the p99
//                          tail is the TLB-shootdown IPI broadcast
//   UFFD_COPY              3.89 (0.77 sd, 5.43 p99)
//   READ_PAGE             15.62
//   WRITE_PAGE            14.70
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/dist.h"
#include "common/histogram.h"
#include "common/types.h"

namespace fluid::fm {

// The profiled sections of monitor code (Table I rows) plus the auxiliary
// costs the end-to-end latency decomposition needs.
enum class CodePath : std::uint8_t {
  kUpdatePageCache = 0,   // LRU touch / page-cache bookkeeping on re-fault
  kInsertPageHashNode,    // first-access insert into the pagetracker hash
  kInsertLruCacheNode,    // insert into the LRU buffer
  kUffdZeropage,          // UFFDIO_ZEROPAGE ioctl
  kUffdRemap,             // UFFD_REMAP ioctl (eviction)
  kUffdCopy,              // UFFDIO_COPY ioctl (page read resolution)
  kReadPage,              // KV-store read, end to end
  kWritePage,             // KV-store write, end to end
  kCount,
};

constexpr std::string_view CodePathName(CodePath p) noexcept {
  switch (p) {
    case CodePath::kUpdatePageCache: return "UPDATE_PAGE_CACHE";
    case CodePath::kInsertPageHashNode: return "INSERT_PAGE_HASH_NODE";
    case CodePath::kInsertLruCacheNode: return "INSERT_LRU_CACHE_NODE";
    case CodePath::kUffdZeropage: return "UFFD_ZEROPAGE";
    case CodePath::kUffdRemap: return "UFFD_REMAP";
    case CodePath::kUffdCopy: return "UFFD_COPY";
    case CodePath::kReadPage: return "READ_PAGE";
    case CodePath::kWritePage: return "WRITE_PAGE";
    case CodePath::kCount: break;
  }
  return "?";
}

struct MonitorCostModel {
  // --- Table I components ----------------------------------------------------
  LatencyDist update_page_cache = LatencyDist::Normal(2.56, 0.25, 1.8);
  LatencyDist insert_page_hash = LatencyDist::Lognormal(2.35, 0.35, 1.2);
  LatencyDist insert_lru = LatencyDist::Normal(2.87, 0.47, 1.5);
  LatencyDist uffd_zeropage = LatencyDist::Normal(2.61, 0.44, 1.5);
  // UFFD_REMAP issued while the read is in flight returns in ~2 us; the
  // synchronous variant must wait for the IPI broadcast (4-5 us typical).
  // Both share a ~1% heavy tail when the shootdown hits busy cores.
  LatencyDist uffd_remap_async = LatencyDist::Bimodal(1.5, 16.5, 0.01, 0.12);
  LatencyDist uffd_remap_sync = LatencyDist::Bimodal(4.4, 18.0, 0.01, 0.10);
  LatencyDist uffd_copy = LatencyDist::Normal(3.89, 0.77, 2.0);
  // Client-side wrapper around the store op (argument marshalling, hash of
  // the key, buffer management). The store itself adds its OpResult time.
  LatencyDist read_page_overhead = LatencyDist::Normal(3.2, 0.4, 1.5);
  LatencyDist write_page_overhead = LatencyDist::Normal(3.0, 0.4, 1.5);

  // --- kernel & virtualisation costs (Fig. 2 steps 1-3 and 5) ---------------
  // Guest fault -> host uffd handling code -> event readable by monitor.
  LatencyDist uffd_event_delivery = LatencyDist::Normal(5.2, 0.7, 2.5);
  // Waking the vCPU: UFFDIO_WAKE plus scheduler latency plus VM entry.
  LatencyDist wake = LatencyDist::Normal(7.0, 0.9, 3.0);
  // Extra VM-exit/entry pair on the guest side for a KVM guest.
  LatencyDist kvm_exit_entry = LatencyDist::Normal(3.2, 0.4, 1.5);
  // In-kernel resolution of a write to the CoW zero page (regular minor
  // fault: allocate + zero + map).
  LatencyDist minor_zero_fault = LatencyDist::Normal(2.9, 0.5, 1.2);
  // A resident access (TLB fill / page walk as pmbench sees it).
  LatencyDist hit = LatencyDist::Normal(0.18, 0.05, 0.05);
  // Monitor event-loop dispatch (epoll wakeup, read of the uffd msg).
  LatencyDist dispatch = LatencyDist::Normal(2.4, 0.3, 1.0);

  // Full-virtualisation (TCG) slowdown factor on every fault-path component
  // when KVM is disabled (Table III's 1-page configuration).
  double full_virt_factor = 12.0;

  // --- parallel-engine costs (sharded monitor only; never sampled at K=1) ----
  // Lock-hold windows a handler may contend on, calibrated against Table I's
  // cache-management rows: the write-list/tracker critical section is the
  // INSERT_PAGE_HASH_NODE-scale bookkeeping done under the shared lock
  // (~1.2 us), the frame-pool allocation/free window is shorter (~0.6 us).
  // A fault's contention surcharge is one hold per *busy* peer handler —
  // the worst-case convoy through both shared sections.
  LatencyDist wl_lock_hold = LatencyDist::Normal(1.2, 0.2, 0.5);
  LatencyDist pool_lock_hold = LatencyDist::Normal(0.6, 0.1, 0.25);
  // Event 2..N of one batched read(2) skips the epoll wakeup and the
  // syscall: only the msg parse + queue hand-off remains.
  LatencyDist batched_dispatch = LatencyDist::Normal(0.7, 0.1, 0.3);
  // The read(2) on the uffd descriptor that drains a batch of events;
  // charged once per batch to the handler that performed it.
  LatencyDist uffd_read_syscall = LatencyDist::Normal(1.8, 0.25, 0.8);
};

// Per-codepath latency recorder backing Table I.
class Profiler {
 public:
  Profiler() {
    for (auto& h : hist_)
      h = LatencyHistogram{/*min_ns=*/50.0, /*max_ns=*/1e8,
                           /*buckets_per_decade=*/60};
  }

  void Record(CodePath p, SimDuration d) {
    hist_[static_cast<std::size_t>(p)].Record(d);
  }

  const LatencyHistogram& Of(CodePath p) const {
    return hist_[static_cast<std::size_t>(p)];
  }

 private:
  std::array<LatencyHistogram, static_cast<std::size_t>(CodePath::kCount)>
      hist_;
};

}  // namespace fluid::fm
