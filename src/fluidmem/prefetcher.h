// Predictive prefetching for the monitor's remote-fault path.
//
// Replaces the inline one-stream-per-region hack that used to live in
// RegionInfo (last_remote_fault + seq_streak): the Prefetcher owns the
// per-region prediction state, the adaptive readahead window, and the
// accuracy accounting, while the Monitor keeps owning the mechanics (the
// MultiGet, budget-honouring installs, breaker/churn guards).
//
// Two prediction modes:
//
//   kSequential — the legacy detector, verbatim: fetch a fixed-depth
//   window after two consecutive next-page (or window-end re-fault)
//   remote faults. Strided and interleaved streams defeat it.
//
//   kMajority — Leap's trend detection (Al Maruf & Chowdhury, ATC'20):
//   keep a bounded ring of recent fault deltas per region and find the
//   MAJORITY delta with one Boyer–Moore pass, widening the vote window
//   in doubling steps (4, 8, … up to the history bound) until a strict
//   majority appears. A short history falls back to the most recent
//   delta; no majority at any width emits nothing — a random pattern
//   must not fabricate a stride. The window (depth) is adaptive: hits
//   grow it by one page, wasted prefetches halve it.
//
// Accuracy-gated throttling (both modes): every prefetched page resolves
// to exactly one of HIT (a demand touch or raced demand fault absorbed by
// the still-resident page) or WASTED (evicted untouched). The trailing
// outcomes feed a per-region bit-ring; once the ring has enough evidence
// and its hit rate drops below `accuracy_floor_pct`, speculation for that
// region is suppressed except for a small probe batch every
// `gate_probe_period` suppressed faults — wrong guesses stop evicting
// useful frames, but the gate can re-open when the access pattern turns
// predictable again. The floor defaults to 0 (gate off), preserving the
// legacy behaviour of every existing prefetch-enabled stack.
//
// Determinism: the Prefetcher holds no RNG and never touches virtual
// time. Every method is pure bookkeeping over the fault sequence, so a
// (seed, plan) replay that feeds it the same faults gets the same
// decisions — and stacks with prefetch_depth == 0 never call it at all.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "fluidmem/page_key.h"

namespace fluid::fm {

enum class PrefetchMode : std::uint8_t {
  kSequential,  // legacy next-page stream detector, fixed window
  kMajority,    // Leap majority-vote stride detection, adaptive window
};

struct PrefetcherConfig {
  PrefetchMode mode = PrefetchMode::kSequential;
  // Fault deltas remembered per region (Leap's H). Vote windows double
  // from 4 up to this bound.
  std::size_t history = 8;
  // Adaptive window bounds (majority mode): shrink no further than
  // min_window; 0 max_window defers to the monitor's prefetch_depth.
  std::size_t min_window = 1;
  std::size_t max_window = 0;
  // Accuracy gate: suppress speculation for a region while its trailing
  // hit rate sits below this percentage. 0 disables the gate.
  int accuracy_floor_pct = 0;
  // Trailing prefetch outcomes (hit/wasted bits) per region considered by
  // the gate; capped at 64 (one machine word).
  std::size_t accuracy_window = 32;
  // While gated, let one probe batch (min_window pages) through every
  // this-many suppressed faults so fresh evidence can re-open the gate.
  std::size_t gate_probe_period = 16;
};

struct PrefetcherStats {
  std::uint64_t predictions = 0;   // decisions that emitted a window
  std::uint64_t no_trend = 0;      // majority vote found no stride
  std::uint64_t hits = 0;          // demand use absorbed by a prefetched page
  std::uint64_t wasted = 0;        // prefetched page evicted untouched
  std::uint64_t gated_skips = 0;   // windows suppressed by the accuracy gate
  std::uint64_t gate_probes = 0;   // probe batches let through while gated
};

// One speculation decision for a remote fault. depth == 0 means "emit
// nothing"; `gated` marks suppression by the accuracy gate (as opposed to
// an unarmed stream / no majority).
struct PrefetchDecision {
  std::int64_t stride_pages = 0;  // signed page delta between candidates
  std::size_t depth = 0;          // candidate count along the stride
  bool gated = false;
};

class Prefetcher {
 public:
  Prefetcher() = default;

  // `depth_cap` is the monitor's prefetch_depth: the hard ceiling on any
  // emitted window (and the fixed sequential-mode depth).
  void Configure(const PrefetcherConfig& cfg, std::size_t depth_cap);

  // A demand fault on `addr` resolved via the remote store: update the
  // region's delta history / stream detector and decide the window.
  PrefetchDecision OnRemoteFault(RegionId region, VirtAddr addr);

  // A batch finished with `continuation` the last candidate the install
  // loop actually CONSIDERED (installed, skipped, or abandoned to the
  // churn guard). The next fault continues the stream from there; no
  // synthetic delta is recorded, so the predictor's history is not
  // poisoned by the window-sized jump the batch created.
  void OnBatchEnd(RegionId region, VirtAddr continuation);

  // A speculative install landed: the page is prefetched-and-unused until
  // a touch (hit) or an eviction (wasted) resolves it.
  void MarkPrefetched(const PageRef& p);

  // A monitor-visible demand use of a resident page (NotePageTouch, or a
  // raced demand fault that found the page already present).
  void OnResidentTouch(const PageRef& p);

  // The page left residency (write-list eviction, sync eviction, or
  // cold-tier demotion).
  void OnEvicted(const PageRef& p);

  // Region unregistered: drop its predictor and pending-outcome pages
  // without charging hits or misses. O(1) in the number of OTHER regions'
  // pages — the unused set lives inside the region's own state, so this is
  // a single map erase, not a scan of every tracked speculation.
  void ForgetRegion(RegionId region);

  const PrefetcherStats& stats() const noexcept { return stats_; }
  std::size_t UnusedPrefetchedPages() const noexcept { return unused_total_; }
  bool IsPrefetchedUnused(const PageRef& p) const {
    auto it = regions_.find(p.region);
    return it != regions_.end() && it->second.unused.contains(p);
  }
  // Trailing hit rate of the region's outcome ring, in percent; -1 while
  // the ring lacks the evidence the gate requires.
  int TrailingAccuracyPct(RegionId region) const;
  // Current adaptive window (majority mode); depth_cap in sequential mode.
  std::size_t WindowOf(RegionId region) const;

 private:
  struct RegionState {
    VirtAddr last_fault = 0;
    bool has_last = false;
    std::uint32_t seq_streak = 0;  // sequential mode only
    std::vector<std::int64_t> deltas;  // ring, capacity = cfg.history
    std::size_t delta_next = 0;        // ring write cursor
    std::size_t delta_count = 0;
    std::size_t window = 0;  // adaptive depth (majority mode); 0 = unset
    std::uint64_t outcome_bits = 0;  // newest outcome in bit 0
    std::uint32_t outcome_len = 0;
    std::size_t probe_countdown = 0;
    // This region's prefetched-but-unused pages. Keeping the set inside
    // the region state (instead of one global set) makes ForgetRegion a
    // single erase instead of an O(all-unused-pages) sweep.
    std::unordered_set<PageRef, PageRefHash> unused;
  };

  RegionState& StateOf(RegionId region);
  std::size_t DepthCap() const noexcept;
  std::uint32_t OutcomeRingLen() const noexcept;
  bool Gated(const RegionState& r) const;
  // Majority-vote stride over the delta ring; 0 = no trend.
  std::int64_t Predict(const RegionState& r) const;
  void RecordOutcome(RegionId region, bool hit);

  PrefetcherConfig cfg_;
  std::size_t depth_cap_ = 0;
  std::unordered_map<RegionId, RegionState> regions_;
  // Total unused pages across all regions (the per-region sets hold the
  // members); kept incrementally so UnusedPrefetchedPages stays O(1).
  std::size_t unused_total_ = 0;
  PrefetcherStats stats_;
};

}  // namespace fluid::fm
