// The pre-radix-tree PageTracker core, kept verbatim as the reference
// model for the hash-vs-tree differential parity suite and as the
// bytes-per-page baseline in microbench_structures. Not used on any
// production path — PageTracker (page_tracker.h) is the real index.
//
// The only additions over the historical implementation are the strict
// Lookup() (mirroring the tracker's new API so the parity driver can diff
// both) and a counting allocator so the hash map's real memory footprint
// — buckets, nodes, and padding, not a guess — can be reported next to
// the tree's bytes_used().
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <new>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "fluidmem/page_key.h"
#include "fluidmem/page_state.h"

namespace fluid::fm {

template <typename T>
struct CountingAllocator {
  using value_type = T;

  std::size_t* bytes = nullptr;

  CountingAllocator() = default;
  explicit CountingAllocator(std::size_t* b) : bytes(b) {}
  template <typename U>
  CountingAllocator(const CountingAllocator<U>& o) : bytes(o.bytes) {}

  T* allocate(std::size_t n) {
    if (bytes != nullptr) *bytes += n * sizeof(T);
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    if (bytes != nullptr) *bytes -= n * sizeof(T);
    ::operator delete(p);
  }
  bool operator==(const CountingAllocator& o) const { return bytes == o.bytes; }
};

class HashPageTracker {
 public:
  explicit HashPageTracker(std::size_t shards = 1)
      : bytes_(std::make_unique<std::size_t>(0)) {
    const std::size_t n = shards == 0 ? 1 : shards;
    maps_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      maps_.emplace_back(Alloc(bytes_.get()));
  }

  std::size_t shard_count() const noexcept { return maps_.size(); }
  std::size_t ShardOf(const PageRef& p) const noexcept {
    return maps_.size() == 1 ? 0 : PageRefHash{}(p) % maps_.size();
  }
  std::size_t ShardSize(std::size_t s) const noexcept {
    return maps_[s].size();
  }

  bool Seen(const PageRef& p) const { return Of(p).contains(p); }

  std::optional<PageLocation> Lookup(const PageRef& p) const {
    const Map& m = Of(p);
    auto it = m.find(p);
    if (it == m.end()) return std::nullopt;
    return it->second.loc;
  }

  PageLocation LocationOf(const PageRef& p) const {
    return Lookup(p).value_or(PageLocation::kRemote);
  }

  void MarkResident(const PageRef& p) { Set(p, PageLocation::kResident); }
  void MarkWriteList(const PageRef& p) { Set(p, PageLocation::kWriteList); }
  void MarkInFlight(const PageRef& p) { Set(p, PageLocation::kInFlight); }
  void MarkRemote(const PageRef& p) { Set(p, PageLocation::kRemote); }
  void MarkSpilled(const PageRef& p) { Set(p, PageLocation::kSpilled); }
  void MarkColdTier(const PageRef& p) { Set(p, PageLocation::kColdTier); }

  std::uint8_t HeatOf(const PageRef& p) const {
    const Map& m = Of(p);
    auto it = m.find(p);
    return it == m.end() ? 0 : it->second.heat;
  }

  void BumpHeat(const PageRef& p, std::uint8_t add, std::uint8_t max) {
    Map& m = Of(p);
    auto it = m.find(p);
    if (it == m.end()) return;
    it->second.heat = static_cast<std::uint8_t>(
        std::min<unsigned>(max, unsigned(it->second.heat) + add));
  }

  void DecayHeat() {
    for (Map& m : maps_)
      for (auto& [p, s] : m) s.heat = static_cast<std::uint8_t>(s.heat >> 1);
  }

  void Forget(const PageRef& p) { Of(p).erase(p); }

  std::size_t ForgetRegion(RegionId region) {
    std::size_t n = 0;
    for (Map& m : maps_) {
      for (auto it = m.begin(); it != m.end();) {
        if (it->first.region == region) {
          it = m.erase(it);
          ++n;
        } else {
          ++it;
        }
      }
    }
    return n;
  }

  std::size_t Size() const noexcept {
    std::size_t n = 0;
    for (const Map& m : maps_) n += m.size();
    return n;
  }

  template <typename F>
  void ForEachInRegion(RegionId region, F&& f) const {
    for (const Map& m : maps_)
      for (const auto& [p, s] : m)
        if (p.region == region) f(p, s.loc);
  }

  template <typename F>
  void ForEach(F&& f) const {
    for (const Map& m : maps_)
      for (const auto& [p, s] : m) f(p, s.loc);
  }

  std::size_t CountIn(PageLocation loc) const {
    std::size_t n = 0;
    for (const Map& m : maps_)
      for (const auto& [p, s] : m)
        if (s.loc == loc) ++n;
    return n;
  }

  // Bytes currently held by the hash maps (buckets + nodes), measured at
  // the allocator, excluding the fixed per-shard object headers.
  std::size_t ApproxBytes() const noexcept { return *bytes_; }

 private:
  using Alloc = CountingAllocator<std::pair<const PageRef, PageState>>;
  using Map = std::unordered_map<PageRef, PageState, PageRefHash,
                                 std::equal_to<PageRef>, Alloc>;

  void Set(const PageRef& p, PageLocation l) { Of(p)[p].loc = l; }

  Map& Of(const PageRef& p) { return maps_[ShardOf(p)]; }
  const Map& Of(const PageRef& p) const { return maps_[ShardOf(p)]; }

  std::unique_ptr<std::size_t> bytes_;  // stable target for the allocators
  std::vector<Map> maps_;
};

}  // namespace fluid::fm
