// The monitor's resizable LRU buffer (paper §III, §V-A).
//
// "The monitor maintains an LRU list to manage page evictions, where the
//  size of the list determines the number of pages held in DRAM for all
//  VMs. Evictions come from the top of the LRU list ... Note that the LRU
//  list is only updated when a page is seen by the monitor process, which
//  only happens on first access and after an eviction. At present, the
//  internal ordering of the list does not change."
//
// So this is an *insertion-ordered* list, not a true LRU: residency order is
// fault order, and a resident hit does NOT refresh a page's position. The
// paper calls out the consequence in §VI-D1 (guest kswapd picks better
// victims at scale factor 22). We reproduce that behaviour exactly — and
// the Fig. 4 benches show the same penalty — while a `true_lru` switch
// enables the "future optimization" the paper mentions, used by the
// ablation bench.
//
// Region index: every node is threaded through TWO intrusive lists — the
// global insertion-order list and a per-region sublist in the same
// insertion order. Per-tenant operations (quota eviction, flush, teardown)
// walk only the region's own sublist, so PopVictimOfRegion is O(1) and
// ExtractRegion is O(pages-in-region) regardless of how many pages other
// tenants hold.
//
// Sharding: for the parallel fault engine the insertion-order list is
// partitioned into `shards` slices by hash of the page key, mirroring how a
// multi-threaded monitor stripes its LRU lock. Each node carries a global
// insertion sequence number, so with S slices the global-oldest victim is
// still exact: PopVictim scans the S slice heads (each slice is internally
// insertion-ordered) and takes the minimum sequence, lowest slice index on
// ties. With shards == 1 (the default, and all legacy callers) this
// degenerates to the original single-list behaviour — same victims, same
// order, bit-identical runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/intrusive_list.h"
#include "fluidmem/page_key.h"

namespace fluid::fm {

class LruBuffer {
 public:
  explicit LruBuffer(std::size_t capacity, bool true_lru = false,
                     std::size_t shards = 1)
      : capacity_(capacity),
        true_lru_(true_lru),
        lists_(shards == 0 ? 1 : shards) {}

  LruBuffer(const LruBuffer&) = delete;
  LruBuffer& operator=(const LruBuffer&) = delete;
  ~LruBuffer() { Clear(); }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return nodes_.size(); }
  std::size_t shard_count() const noexcept { return lists_.size(); }
  bool Contains(const PageRef& p) const { return nodes_.contains(p); }

  // Slice a page belongs to: pure hash of the page key, so any handler
  // computes the same assignment with no shared state.
  std::size_t ShardOf(const PageRef& p) const noexcept {
    return lists_.size() == 1 ? 0 : PageRefHash{}(p) % lists_.size();
  }
  std::size_t ShardSize(std::size_t s) const noexcept {
    return lists_[s].size();
  }
  // The slice holding the most pages (ties: lowest index). Work-stealing
  // victim source when a handler's own slice runs dry or cold.
  std::size_t LargestShard() const noexcept {
    std::size_t best = 0;
    for (std::size_t i = 1; i < lists_.size(); ++i)
      if (lists_[i].size() > lists_[best].size()) best = i;
    return best;
  }

  // The cloud operator resizes the buffer at runtime (near-zero-footprint
  // experiments); the monitor then evicts until size() <= capacity().
  void SetCapacity(std::size_t capacity) noexcept { capacity_ = capacity; }

  // True when inserting one more page would exceed capacity.
  bool NeedsEvictionBeforeInsert() const noexcept {
    return nodes_.size() >= capacity_;
  }
  bool OverCapacity() const noexcept { return nodes_.size() > capacity_; }

  // Insert a newly-seen page at the MRU end. Must not already be present.
  void Insert(const PageRef& p) {
    auto n = std::make_unique<Node>();
    n->page = p;
    n->seq = next_seq_++;
    lists_[ShardOf(p)].PushBack(*n);
    region_lists_[p.region].PushBack(*n);
    nodes_.emplace(p, std::move(n));
  }

  // A resident access observed by the monitor. With the paper's
  // insertion-order list this is a no-op; with true_lru it refreshes both
  // the global position and the page's position within its region.
  void Touch(const PageRef& p) {
    if (!true_lru_) return;
    auto it = nodes_.find(p);
    if (it == nodes_.end()) return;
    it->second->seq = next_seq_++;
    lists_[ShardOf(p)].MoveToBack(*it->second);
    region_lists_[p.region].MoveToBack(*it->second);
  }

  // Pop the eviction candidate (the globally oldest insertion), or return
  // false if empty. With S slices this scans the S heads for the minimum
  // insertion sequence — exact global order, O(S).
  bool PopVictim(PageRef* out) {
    Node* best = nullptr;
    std::size_t best_shard = 0;
    for (std::size_t i = 0; i < lists_.size(); ++i) {
      Node* n = lists_[i].Front();
      if (n != nullptr && (best == nullptr || n->seq < best->seq)) {
        best = n;
        best_shard = i;
      }
    }
    if (best == nullptr) return false;
    lists_[best_shard].Remove(*best);
    *out = best->page;
    Erase(best);
    return true;
  }

  // Non-mutating twin of PopVictim: report the page PopVictim would evict
  // next without removing it. The prefetch installer uses this to detect
  // self-eviction churn — a batch about to evict a page it installed
  // moments earlier should stop installing instead.
  bool PeekVictim(PageRef* out) const {
    const Node* best = nullptr;
    for (std::size_t i = 0; i < lists_.size(); ++i) {
      const Node* n = lists_[i].Front();
      if (n != nullptr && (best == nullptr || n->seq < best->seq)) best = n;
    }
    if (best == nullptr) return false;
    *out = best->page;
    return true;
  }

  // Pop the oldest page OF ONE SLICE (parallel engine: a handler evicting
  // from the slice it owns, or stealing from a hot neighbour). Exact
  // insertion order within the slice, O(1).
  bool PopVictimOfShard(std::size_t shard, PageRef* out) {
    Node* n = lists_[shard].Front();
    if (n == nullptr) return false;
    lists_[shard].Remove(*n);
    *out = n->page;
    Erase(n);
    return true;
  }

  // Pop the oldest page OF ONE REGION (per-tenant quota enforcement); the
  // order of other regions' pages is untouched. O(1): the region sublist's
  // head is the region's oldest insertion.
  bool PopVictimOfRegion(RegionId region, PageRef* out) {
    auto it = region_lists_.find(region);
    if (it == region_lists_.end()) return false;
    Node* n = it->second.Front();
    if (n == nullptr) return false;
    lists_[ShardOf(n->page)].Remove(*n);
    *out = n->page;
    Erase(n);
    return true;
  }

  // Non-mutating twin of PopVictimOfRegion.
  bool PeekVictimOfRegion(RegionId region, PageRef* out) const {
    auto it = region_lists_.find(region);
    if (it == region_lists_.end()) return false;
    const Node* n = it->second.Front();
    if (n == nullptr) return false;
    *out = n->page;
    return true;
  }

  // Remove every page of one region, in insertion order, without touching
  // the positions of any other region's pages. O(pages-in-region): used by
  // FlushRegion and UnregisterRegion instead of rebuilding the whole list.
  std::vector<PageRef> ExtractRegion(RegionId region) {
    std::vector<PageRef> out;
    auto it = region_lists_.find(region);
    if (it == region_lists_.end()) return out;
    out.reserve(it->second.size());
    while (Node* n = it->second.Front()) {
      out.push_back(n->page);
      lists_[ShardOf(n->page)].Remove(*n);
      it->second.Remove(*n);
      nodes_.erase(n->page);
    }
    region_lists_.erase(it);
    return out;
  }

  // Pages a region currently holds in the buffer.
  std::size_t RegionCount(RegionId region) const {
    auto it = region_lists_.find(region);
    return it == region_lists_.end() ? 0 : it->second.size();
  }

  // Remove a specific page (VM shutdown, page freed by other means).
  bool Remove(const PageRef& p) {
    auto it = nodes_.find(p);
    if (it == nodes_.end()) return false;
    lists_[ShardOf(p)].Remove(*it->second);
    Erase(it->second.get());
    return true;
  }

  void Clear() {
    PageRef dummy;
    while (PopVictim(&dummy)) {
    }
  }

  // Visit every buffered page, in no particular order (chaos invariant
  // sweeps need membership, not recency).
  template <typename F>
  void ForEach(F&& f) const {
    for (const auto& [p, n] : nodes_) f(p);
  }

 private:
  struct GlobalTag {};
  struct RegionTag {};

  struct Node : ListHook<GlobalTag>, ListHook<RegionTag> {
    PageRef page;
    // Global insertion order; lets sliced lists agree on the exact
    // globally-oldest victim.
    std::uint64_t seq = 0;
  };

  // Drop `n` from its region sublist and the node map; the caller has
  // already unlinked it from its slice list.
  void Erase(Node* n) {
    auto rit = region_lists_.find(n->page.region);
    rit->second.Remove(*n);
    if (rit->second.empty()) region_lists_.erase(rit);
    nodes_.erase(n->page);
  }

  std::size_t capacity_;
  bool true_lru_;
  std::uint64_t next_seq_ = 0;
  // One insertion-ordered list per slice; one list total by default.
  std::vector<IntrusiveList<Node, GlobalTag>> lists_;
  // Node-based map: sublists are self-referential and must never move.
  std::unordered_map<RegionId, IntrusiveList<Node, RegionTag>> region_lists_;
  std::unordered_map<PageRef, std::unique_ptr<Node>, PageRefHash> nodes_;
};

}  // namespace fluid::fm
