// The monitor's resizable LRU buffer (paper §III, §V-A).
//
// "The monitor maintains an LRU list to manage page evictions, where the
//  size of the list determines the number of pages held in DRAM for all
//  VMs. Evictions come from the top of the LRU list ... Note that the LRU
//  list is only updated when a page is seen by the monitor process, which
//  only happens on first access and after an eviction. At present, the
//  internal ordering of the list does not change."
//
// So this is an *insertion-ordered* list, not a true LRU: residency order is
// fault order, and a resident hit does NOT refresh a page's position. The
// paper calls out the consequence in §VI-D1 (guest kswapd picks better
// victims at scale factor 22). We reproduce that behaviour exactly — and
// the Fig. 4 benches show the same penalty — while a `true_lru` switch
// enables the "future optimization" the paper mentions, used by the
// ablation bench.
//
// Region index: every node is threaded through TWO intrusive lists — the
// global insertion-order list and a per-region sublist in the same
// insertion order. Per-tenant operations (quota eviction, flush, teardown)
// walk only the region's own sublist, so PopVictimOfRegion is O(1) and
// ExtractRegion is O(pages-in-region) regardless of how many pages other
// tenants hold.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/intrusive_list.h"
#include "fluidmem/page_key.h"

namespace fluid::fm {

class LruBuffer {
 public:
  explicit LruBuffer(std::size_t capacity, bool true_lru = false)
      : capacity_(capacity), true_lru_(true_lru) {}

  LruBuffer(const LruBuffer&) = delete;
  LruBuffer& operator=(const LruBuffer&) = delete;
  ~LruBuffer() { Clear(); }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return list_.size(); }
  bool Contains(const PageRef& p) const { return nodes_.contains(p); }

  // The cloud operator resizes the buffer at runtime (near-zero-footprint
  // experiments); the monitor then evicts until size() <= capacity().
  void SetCapacity(std::size_t capacity) noexcept { capacity_ = capacity; }

  // True when inserting one more page would exceed capacity.
  bool NeedsEvictionBeforeInsert() const noexcept {
    return list_.size() >= capacity_;
  }
  bool OverCapacity() const noexcept { return list_.size() > capacity_; }

  // Insert a newly-seen page at the MRU end. Must not already be present.
  void Insert(const PageRef& p) {
    auto n = std::make_unique<Node>();
    n->page = p;
    list_.PushBack(*n);
    region_lists_[p.region].PushBack(*n);
    nodes_.emplace(p, std::move(n));
  }

  // A resident access observed by the monitor. With the paper's
  // insertion-order list this is a no-op; with true_lru it refreshes both
  // the global position and the page's position within its region.
  void Touch(const PageRef& p) {
    if (!true_lru_) return;
    auto it = nodes_.find(p);
    if (it == nodes_.end()) return;
    list_.MoveToBack(*it->second);
    region_lists_[p.region].MoveToBack(*it->second);
  }

  // Pop the eviction candidate (the list head = oldest insertion), or
  // return false if empty.
  bool PopVictim(PageRef* out) {
    Node* n = list_.PopFront();
    if (n == nullptr) return false;
    *out = n->page;
    Erase(n);
    return true;
  }

  // Pop the oldest page OF ONE REGION (per-tenant quota enforcement); the
  // order of other regions' pages is untouched. O(1): the region sublist's
  // head is the region's oldest insertion.
  bool PopVictimOfRegion(RegionId region, PageRef* out) {
    auto it = region_lists_.find(region);
    if (it == region_lists_.end()) return false;
    Node* n = it->second.Front();
    if (n == nullptr) return false;
    list_.Remove(*n);
    *out = n->page;
    Erase(n);
    return true;
  }

  // Remove every page of one region, in insertion order, without touching
  // the positions of any other region's pages. O(pages-in-region): used by
  // FlushRegion and UnregisterRegion instead of rebuilding the whole list.
  std::vector<PageRef> ExtractRegion(RegionId region) {
    std::vector<PageRef> out;
    auto it = region_lists_.find(region);
    if (it == region_lists_.end()) return out;
    out.reserve(it->second.size());
    while (Node* n = it->second.Front()) {
      out.push_back(n->page);
      list_.Remove(*n);
      it->second.Remove(*n);
      nodes_.erase(n->page);
    }
    region_lists_.erase(it);
    return out;
  }

  // Pages a region currently holds in the buffer.
  std::size_t RegionCount(RegionId region) const {
    auto it = region_lists_.find(region);
    return it == region_lists_.end() ? 0 : it->second.size();
  }

  // Remove a specific page (VM shutdown, page freed by other means).
  bool Remove(const PageRef& p) {
    auto it = nodes_.find(p);
    if (it == nodes_.end()) return false;
    list_.Remove(*it->second);
    Erase(it->second.get());
    return true;
  }

  void Clear() {
    PageRef dummy;
    while (PopVictim(&dummy)) {
    }
  }

  // Visit every buffered page, in no particular order (chaos invariant
  // sweeps need membership, not recency).
  template <typename F>
  void ForEach(F&& f) const {
    for (const auto& [p, n] : nodes_) f(p);
  }

 private:
  struct GlobalTag {};
  struct RegionTag {};

  struct Node : ListHook<GlobalTag>, ListHook<RegionTag> {
    PageRef page;
  };

  // Drop `n` from its region sublist and the node map; the caller has
  // already unlinked it from the global list.
  void Erase(Node* n) {
    auto rit = region_lists_.find(n->page.region);
    rit->second.Remove(*n);
    if (rit->second.empty()) region_lists_.erase(rit);
    nodes_.erase(n->page);
  }

  std::size_t capacity_;
  bool true_lru_;
  IntrusiveList<Node, GlobalTag> list_;
  // Node-based map: sublists are self-referential and must never move.
  std::unordered_map<RegionId, IntrusiveList<Node, RegionTag>> region_lists_;
  std::unordered_map<PageRef, std::unique_ptr<Node>, PageRefHash> nodes_;
};

}  // namespace fluid::fm
