// The pagetracker: the monitor's hash of every page it has ever seen
// (paper §V-A, Fig. 2 step 4).
//
// "The monitor keeps a list of already seen pages to avoid reads from the
//  remote key-value store for first-time accesses."
//
// Beyond first-seen tracking, the tracker records where a page's contents
// currently live, which is what makes the write-list "steal" shortcut and
// the in-flight wait (§V-B) implementable:
//   kResident   — mapped in the VM (zero page or private frame);
//   kWriteList  — evicted, buffered, awaiting the flush thread;
//   kInFlight   — inside a multi-write batch the flush thread has posted;
//   kRemote     — safely in the key-value store;
//   kSpilled    — on the local swap device (graceful degradation while the
//                 remote store is down; migrates back when it recovers).
#pragma once

#include <cstddef>
#include <unordered_map>

#include "common/types.h"
#include "fluidmem/page_key.h"

namespace fluid::fm {

enum class PageLocation : std::uint8_t {
  kResident,
  kWriteList,
  kInFlight,
  kRemote,
  kSpilled,
};

class PageTracker {
 public:
  // Returns true if the page was already known (i.e. NOT a first access).
  bool Seen(const PageRef& p) const { return map_.contains(p); }

  PageLocation LocationOf(const PageRef& p) const {
    auto it = map_.find(p);
    // Unknown pages are "resident by zero-page" only after MarkResident;
    // callers must check Seen() first. Defensive default:
    return it == map_.end() ? PageLocation::kRemote : it->second;
  }

  void MarkResident(const PageRef& p) { map_[p] = PageLocation::kResident; }
  void MarkWriteList(const PageRef& p) { map_[p] = PageLocation::kWriteList; }
  void MarkInFlight(const PageRef& p) { map_[p] = PageLocation::kInFlight; }
  void MarkRemote(const PageRef& p) { map_[p] = PageLocation::kRemote; }
  void MarkSpilled(const PageRef& p) { map_[p] = PageLocation::kSpilled; }

  void Forget(const PageRef& p) { map_.erase(p); }

  // Drop every page belonging to `region` (VM shutdown); returns count.
  std::size_t ForgetRegion(RegionId region) {
    std::size_t n = 0;
    for (auto it = map_.begin(); it != map_.end();) {
      if (it->first.region == region) {
        it = map_.erase(it);
        ++n;
      } else {
        ++it;
      }
    }
    return n;
  }

  std::size_t Size() const noexcept { return map_.size(); }

  // Visit every tracked page of one region (migration metadata scan).
  template <typename F>
  void ForEachInRegion(RegionId region, F&& f) const {
    for (const auto& [p, loc] : map_)
      if (p.region == region) f(p, loc);
  }

  // Visit every tracked page (chaos invariant sweeps).
  template <typename F>
  void ForEach(F&& f) const {
    for (const auto& [p, loc] : map_) f(p, loc);
  }

  std::size_t CountIn(PageLocation loc) const {
    std::size_t n = 0;
    for (const auto& [p, l] : map_)
      if (l == loc) ++n;
    return n;
  }

 private:
  std::unordered_map<PageRef, PageLocation, PageRefHash> map_;
};

}  // namespace fluid::fm
