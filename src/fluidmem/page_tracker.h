// The pagetracker: the monitor's hash of every page it has ever seen
// (paper §V-A, Fig. 2 step 4).
//
// "The monitor keeps a list of already seen pages to avoid reads from the
//  remote key-value store for first-time accesses."
//
// Beyond first-seen tracking, the tracker records where a page's contents
// currently live, which is what makes the write-list "steal" shortcut and
// the in-flight wait (§V-B) implementable:
//   kResident   — mapped in the VM (zero page or private frame);
//   kWriteList  — evicted, buffered, awaiting the flush thread;
//   kInFlight   — inside a multi-write batch the flush thread has posted;
//   kRemote     — safely in the key-value store;
//   kSpilled    — on the local swap device (graceful degradation while the
//                 remote store is down; migrates back when it recovers);
//   kColdTier   — demoted to the cheap cold-tier device because the page's
//                 heat decayed (tier placement; promotes on refault).
//
// Each entry also carries a coarse per-page HEAT counter for the hot/cold
// tier policy: demand installs and monitor-visible touches bump it,
// PumpBackground halves it, and evictions demote pages at or below the
// cold threshold to the cold-tier device instead of remote DRAM. Heat is
// pure bookkeeping — reading or writing it draws no randomness and charges
// no virtual time, so stacks that never attach a cold tier replay
// byte-identically whether the counters move or not.
//
// Sharding: the parallel fault engine partitions the hash by page key so
// each handler shard owns a slice (mirroring a striped-lock hash table).
// The partition is internal — every public operation behaves identically
// at any shard count; ShardSize exposes slice occupancy for balance stats.
#pragma once

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "fluidmem/page_key.h"

namespace fluid::fm {

enum class PageLocation : std::uint8_t {
  kResident,
  kWriteList,
  kInFlight,
  kRemote,
  kSpilled,
  kColdTier,
};

class PageTracker {
 public:
  explicit PageTracker(std::size_t shards = 1)
      : maps_(shards == 0 ? 1 : shards) {}

  std::size_t shard_count() const noexcept { return maps_.size(); }
  std::size_t ShardOf(const PageRef& p) const noexcept {
    return maps_.size() == 1 ? 0 : PageRefHash{}(p) % maps_.size();
  }
  std::size_t ShardSize(std::size_t s) const noexcept {
    return maps_[s].size();
  }

  // Returns true if the page was already known (i.e. NOT a first access).
  bool Seen(const PageRef& p) const { return Of(p).contains(p); }

  PageLocation LocationOf(const PageRef& p) const {
    const Map& m = Of(p);
    auto it = m.find(p);
    // Unknown pages are "resident by zero-page" only after MarkResident;
    // callers must check Seen() first. Defensive default:
    return it == m.end() ? PageLocation::kRemote : it->second.loc;
  }

  void MarkResident(const PageRef& p) { Set(p, PageLocation::kResident); }
  void MarkWriteList(const PageRef& p) { Set(p, PageLocation::kWriteList); }
  void MarkInFlight(const PageRef& p) { Set(p, PageLocation::kInFlight); }
  void MarkRemote(const PageRef& p) { Set(p, PageLocation::kRemote); }
  void MarkSpilled(const PageRef& p) { Set(p, PageLocation::kSpilled); }
  void MarkColdTier(const PageRef& p) { Set(p, PageLocation::kColdTier); }

  // --- per-page heat (hot/cold tier placement) -----------------------------

  std::uint8_t HeatOf(const PageRef& p) const {
    const Map& m = Of(p);
    auto it = m.find(p);
    return it == m.end() ? 0 : it->second.heat;
  }

  // Saturating bump of a tracked page's heat; unknown pages are ignored
  // (heat exists only alongside a location entry).
  void BumpHeat(const PageRef& p, std::uint8_t add, std::uint8_t max) {
    Map& m = Of(p);
    auto it = m.find(p);
    if (it == m.end()) return;
    it->second.heat = static_cast<std::uint8_t>(
        std::min<unsigned>(max, unsigned(it->second.heat) + add));
  }

  // Exponential decay: halve every page's heat. One sweep per background
  // tick keeps "hot" meaning "touched since the last couple of pumps".
  void DecayHeat() {
    for (Map& m : maps_)
      for (auto& [p, s] : m) s.heat = static_cast<std::uint8_t>(s.heat >> 1);
  }

  void Forget(const PageRef& p) { Of(p).erase(p); }

  // Drop every page belonging to `region` (VM shutdown); returns count.
  std::size_t ForgetRegion(RegionId region) {
    std::size_t n = 0;
    for (Map& m : maps_) {
      for (auto it = m.begin(); it != m.end();) {
        if (it->first.region == region) {
          it = m.erase(it);
          ++n;
        } else {
          ++it;
        }
      }
    }
    return n;
  }

  std::size_t Size() const noexcept {
    std::size_t n = 0;
    for (const Map& m : maps_) n += m.size();
    return n;
  }

  // Visit every tracked page of one region (migration metadata scan).
  template <typename F>
  void ForEachInRegion(RegionId region, F&& f) const {
    for (const Map& m : maps_)
      for (const auto& [p, s] : m)
        if (p.region == region) f(p, s.loc);
  }

  // Visit every tracked page (chaos invariant sweeps).
  template <typename F>
  void ForEach(F&& f) const {
    for (const Map& m : maps_)
      for (const auto& [p, s] : m) f(p, s.loc);
  }

  std::size_t CountIn(PageLocation loc) const {
    std::size_t n = 0;
    for (const Map& m : maps_)
      for (const auto& [p, s] : m)
        if (s.loc == loc) ++n;
    return n;
  }

 private:
  struct PageState {
    PageLocation loc = PageLocation::kRemote;
    std::uint8_t heat = 0;
  };
  using Map = std::unordered_map<PageRef, PageState, PageRefHash>;

  // Location changes preserve heat: the counter tracks the page, not the
  // place it currently lives.
  void Set(const PageRef& p, PageLocation l) { Of(p)[p].loc = l; }

  Map& Of(const PageRef& p) { return maps_[ShardOf(p)]; }
  const Map& Of(const PageRef& p) const { return maps_[ShardOf(p)]; }

  std::vector<Map> maps_;
};

}  // namespace fluid::fm
