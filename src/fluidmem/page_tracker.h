// The page tracker: the monitor's index of every page it has ever seen
// (paper §V-A, Fig. 2 step 4).
//
// "The monitor keeps a list of already seen pages to avoid reads from the
//  remote key-value store for first-time accesses."
//
// Beyond first-seen tracking, the tracker records where a page's contents
// currently live (PageLocation, see page_state.h), which is what makes the
// write-list "steal" shortcut and the in-flight wait (§V-B) implementable,
// plus a coarse per-page heat counter for hot/cold tier placement.
//
// The core is a per-shard adaptive radix tree (radix_index.h) keyed by
// (region, addr >> 12), replacing the historical per-shard hash map
// (preserved as HashPageTracker for the differential parity suite). The
// tree makes region-scoped work proportional to the region, not the table:
// ForgetRegion is a subtree unlink, ForEachInRegion an in-order subtree
// walk, and ForEachRunInRegion exposes contiguous-run detection for
// writeback coalescing and prefetch neighborhood queries. Point ops ride a
// per-shard hot-node cache on the fault path. Behavior of every public
// operation is identical to the hash at any shard count; iteration order
// is now ascending key order per shard, which no replay-visible state
// depends on.
//
// Sharding: the parallel fault engine partitions pages by key so each
// handler shard owns a slice (mirroring a striped-lock hash table). The
// partition is internal — every public operation behaves identically at
// any shard count; ShardSize exposes slice occupancy for balance stats.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <vector>

#include "common/types.h"
#include "fluidmem/page_key.h"
#include "fluidmem/page_state.h"
#include "fluidmem/radix_index.h"

namespace fluid::fm {

class PageTracker {
 public:
  explicit PageTracker(std::size_t shards = 1)
      : shards_(shards == 0 ? 1 : shards) {}

  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::size_t ShardOf(const PageRef& p) const noexcept {
    return shards_.size() == 1 ? 0 : PageRefHash{}(p) % shards_.size();
  }
  std::size_t ShardSize(std::size_t s) const noexcept {
    return shards_[s].size();
  }

  // Returns true if the page was already known (i.e. NOT a first access).
  bool Seen(const PageRef& p) const { return Of(p).Find(p) != nullptr; }

  // Strict lookup: nullopt for pages the tracker has never seen. This is
  // the API call sites should use — an unknown page is a fact worth
  // surfacing (tracker desync, use-after-forget), not something to paper
  // over with a default.
  std::optional<PageLocation> Lookup(const PageRef& p) const {
    const PageState* st = Of(p).Find(p);
    if (st == nullptr) return std::nullopt;
    return st->loc;
  }

  // Legacy lenient lookup: unknown pages read as kRemote. Kept only for
  // callers that have already established Seen(p); new code should use
  // Lookup() and decide explicitly what an unknown page means.
  PageLocation LocationOf(const PageRef& p) const {
    return Lookup(p).value_or(PageLocation::kRemote);
  }

  void MarkResident(const PageRef& p) { Set(p, PageLocation::kResident); }
  void MarkWriteList(const PageRef& p) { Set(p, PageLocation::kWriteList); }
  void MarkInFlight(const PageRef& p) { Set(p, PageLocation::kInFlight); }
  void MarkRemote(const PageRef& p) { Set(p, PageLocation::kRemote); }
  void MarkSpilled(const PageRef& p) { Set(p, PageLocation::kSpilled); }
  void MarkColdTier(const PageRef& p) { Set(p, PageLocation::kColdTier); }

  // --- per-page heat (hot/cold tier placement) -----------------------------

  std::uint8_t HeatOf(const PageRef& p) const {
    const PageState* st = Of(p).Find(p);
    return st == nullptr ? 0 : st->heat;
  }

  // Saturating bump of a tracked page's heat; unknown pages are ignored
  // (heat exists only alongside a location entry).
  void BumpHeat(const PageRef& p, std::uint8_t add, std::uint8_t max) {
    PageState* st = Of(p).FindMutable(p);
    if (st == nullptr) return;
    st->heat = static_cast<std::uint8_t>(
        std::min<unsigned>(max, unsigned(st->heat) + add));
  }

  // Exponential decay: halve every page's heat. One sweep per background
  // tick keeps "hot" meaning "touched since the last couple of pumps".
  void DecayHeat() {
    for (RadixPageIndex& s : shards_) s.DecayHeat();
  }

  void Forget(const PageRef& p) { Of(p).Erase(p); }

  // Drop every page belonging to `region` (VM shutdown); returns count.
  // Subtree unlink per shard: cost is O(pages in the region), never
  // O(pages tracked).
  std::size_t ForgetRegion(RegionId region) {
    std::size_t n = 0;
    for (RadixPageIndex& s : shards_) n += s.EraseRegion(region);
    return n;
  }

  std::size_t Size() const noexcept {
    std::size_t n = 0;
    for (const RadixPageIndex& s : shards_) n += s.size();
    return n;
  }

  // Visit every tracked page of one region (migration metadata scan).
  // Ascending address order within each shard.
  template <typename F>
  void ForEachInRegion(RegionId region, F&& f) const {
    for (const RadixPageIndex& s : shards_)
      s.ForEachInRegion(region,
                        [&](const PageRef& p, const PageState& st) {
                          f(p, st.loc);
                        });
  }

  // Maximal runs of consecutive page addresses sharing a location:
  // f(PageRef first, std::size_t pages, PageLocation loc). With one shard
  // this streams straight off the tree; with several, consecutive pages
  // hash to different shards, so the per-shard (sorted) streams are
  // collected and merged by address first.
  template <typename F>
  void ForEachRunInRegion(RegionId region, F&& f) const {
    if (shards_.size() == 1) {
      shards_[0].ForEachRunInRegion(region, std::forward<F>(f));
      return;
    }
    std::vector<std::pair<VirtAddr, PageLocation>> pages;
    for (const RadixPageIndex& s : shards_)
      s.ForEachInRegion(region, [&](const PageRef& p, const PageState& st) {
        pages.emplace_back(p.addr, st.loc);
      });
    std::sort(pages.begin(), pages.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    bool open = false;
    VirtAddr start = 0, next = 0;
    PageLocation loc{};
    std::size_t len = 0;
    for (const auto& [addr, l] : pages) {
      if (open && addr == next && l == loc) {
        ++len;
        next += kPageSize;
        continue;
      }
      if (open) f(PageRef{region, start}, len, loc);
      open = true;
      start = addr;
      next = addr + kPageSize;
      loc = l;
      len = 1;
    }
    if (open) f(PageRef{region, start}, len, loc);
  }

  // Visit every tracked page (chaos invariant sweeps).
  template <typename F>
  void ForEach(F&& f) const {
    for (const RadixPageIndex& s : shards_)
      s.ForEach([&](const PageRef& p, const PageState& st) { f(p, st.loc); });
  }

  // O(shards): each shard keeps per-location counters.
  std::size_t CountIn(PageLocation loc) const {
    std::size_t n = 0;
    for (const RadixPageIndex& s : shards_) n += s.CountIn(loc);
    return n;
  }

  // --- index accounting (bench / observability) ----------------------------

  // Exact bytes of index node memory across all shards.
  std::size_t ApproxBytes() const noexcept {
    std::size_t n = 0;
    for (const RadixPageIndex& s : shards_) n += s.bytes_used();
    return n;
  }
  std::uint64_t HotCacheHits() const noexcept {
    std::uint64_t n = 0;
    for (const RadixPageIndex& s : shards_) n += s.cache_hits();
    return n;
  }
  std::uint64_t HotCacheMisses() const noexcept {
    std::uint64_t n = 0;
    for (const RadixPageIndex& s : shards_) n += s.cache_misses();
    return n;
  }

 private:
  // Location changes preserve heat: the counter tracks the page, not the
  // place it currently lives.
  void Set(const PageRef& p, PageLocation l) { Of(p).SetLocation(p, l); }

  RadixPageIndex& Of(const PageRef& p) { return shards_[ShardOf(p)]; }
  const RadixPageIndex& Of(const PageRef& p) const {
    return shards_[ShardOf(p)];
  }

  std::vector<RadixPageIndex> shards_;
};

}  // namespace fluid::fm
