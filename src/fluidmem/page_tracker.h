// The pagetracker: the monitor's hash of every page it has ever seen
// (paper §V-A, Fig. 2 step 4).
//
// "The monitor keeps a list of already seen pages to avoid reads from the
//  remote key-value store for first-time accesses."
//
// Beyond first-seen tracking, the tracker records where a page's contents
// currently live, which is what makes the write-list "steal" shortcut and
// the in-flight wait (§V-B) implementable:
//   kResident   — mapped in the VM (zero page or private frame);
//   kWriteList  — evicted, buffered, awaiting the flush thread;
//   kInFlight   — inside a multi-write batch the flush thread has posted;
//   kRemote     — safely in the key-value store;
//   kSpilled    — on the local swap device (graceful degradation while the
//                 remote store is down; migrates back when it recovers).
//
// Sharding: the parallel fault engine partitions the hash by page key so
// each handler shard owns a slice (mirroring a striped-lock hash table).
// The partition is internal — every public operation behaves identically
// at any shard count; ShardSize exposes slice occupancy for balance stats.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "fluidmem/page_key.h"

namespace fluid::fm {

enum class PageLocation : std::uint8_t {
  kResident,
  kWriteList,
  kInFlight,
  kRemote,
  kSpilled,
};

class PageTracker {
 public:
  explicit PageTracker(std::size_t shards = 1)
      : maps_(shards == 0 ? 1 : shards) {}

  std::size_t shard_count() const noexcept { return maps_.size(); }
  std::size_t ShardOf(const PageRef& p) const noexcept {
    return maps_.size() == 1 ? 0 : PageRefHash{}(p) % maps_.size();
  }
  std::size_t ShardSize(std::size_t s) const noexcept {
    return maps_[s].size();
  }

  // Returns true if the page was already known (i.e. NOT a first access).
  bool Seen(const PageRef& p) const { return Of(p).contains(p); }

  PageLocation LocationOf(const PageRef& p) const {
    const Map& m = Of(p);
    auto it = m.find(p);
    // Unknown pages are "resident by zero-page" only after MarkResident;
    // callers must check Seen() first. Defensive default:
    return it == m.end() ? PageLocation::kRemote : it->second;
  }

  void MarkResident(const PageRef& p) { Of(p)[p] = PageLocation::kResident; }
  void MarkWriteList(const PageRef& p) { Of(p)[p] = PageLocation::kWriteList; }
  void MarkInFlight(const PageRef& p) { Of(p)[p] = PageLocation::kInFlight; }
  void MarkRemote(const PageRef& p) { Of(p)[p] = PageLocation::kRemote; }
  void MarkSpilled(const PageRef& p) { Of(p)[p] = PageLocation::kSpilled; }

  void Forget(const PageRef& p) { Of(p).erase(p); }

  // Drop every page belonging to `region` (VM shutdown); returns count.
  std::size_t ForgetRegion(RegionId region) {
    std::size_t n = 0;
    for (Map& m : maps_) {
      for (auto it = m.begin(); it != m.end();) {
        if (it->first.region == region) {
          it = m.erase(it);
          ++n;
        } else {
          ++it;
        }
      }
    }
    return n;
  }

  std::size_t Size() const noexcept {
    std::size_t n = 0;
    for (const Map& m : maps_) n += m.size();
    return n;
  }

  // Visit every tracked page of one region (migration metadata scan).
  template <typename F>
  void ForEachInRegion(RegionId region, F&& f) const {
    for (const Map& m : maps_)
      for (const auto& [p, loc] : m)
        if (p.region == region) f(p, loc);
  }

  // Visit every tracked page (chaos invariant sweeps).
  template <typename F>
  void ForEach(F&& f) const {
    for (const Map& m : maps_)
      for (const auto& [p, loc] : m) f(p, loc);
  }

  std::size_t CountIn(PageLocation loc) const {
    std::size_t n = 0;
    for (const Map& m : maps_)
      for (const auto& [p, l] : m)
        if (l == loc) ++n;
    return n;
  }

 private:
  using Map = std::unordered_map<PageRef, PageLocation, PageRefHash>;

  Map& Of(const PageRef& p) { return maps_[ShardOf(p)]; }
  const Map& Of(const PageRef& p) const { return maps_[ShardOf(p)]; }

  std::vector<Map> maps_;
};

}  // namespace fluid::fm
