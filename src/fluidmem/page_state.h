// Per-page metadata shared by every page-index implementation.
//
// The tracker records where a page's contents currently live, which is what
// makes the write-list "steal" shortcut and the in-flight wait (§V-B)
// implementable:
//   kResident   — mapped in the VM (zero page or private frame);
//   kWriteList  — evicted, buffered, awaiting the flush thread;
//   kInFlight   — inside a multi-write batch the flush thread has posted;
//   kRemote     — safely in the key-value store;
//   kSpilled    — on the local swap device (graceful degradation while the
//                 remote store is down; migrates back when it recovers);
//   kColdTier   — demoted to the cheap cold-tier device because the page's
//                 heat decayed (tier placement; promotes on refault).
//
// Each entry also carries a coarse per-page HEAT counter for the hot/cold
// tier policy: demand installs and monitor-visible touches bump it,
// PumpBackground halves it, and evictions demote pages at or below the
// cold threshold to the cold-tier device instead of remote DRAM. Heat is
// pure bookkeeping — reading or writing it draws no randomness and charges
// no virtual time, so stacks that never attach a cold tier replay
// byte-identically whether the counters move or not.
#pragma once

#include <cstdint>

namespace fluid::fm {

enum class PageLocation : std::uint8_t {
  kResident,
  kWriteList,
  kInFlight,
  kRemote,
  kSpilled,
  kColdTier,
};

// One location enum value per slot in the per-shard location histograms.
inline constexpr std::size_t kPageLocationCount = 6;

struct PageState {
  PageLocation loc = PageLocation::kRemote;
  std::uint8_t heat = 0;
};

}  // namespace fluid::fm
