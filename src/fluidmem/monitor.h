// The FluidMem monitor process (paper §V).
//
// The monitor is the user-space page-fault handler: it waits on userfaultfd
// events from every registered VM region, resolves each fault against local
// DRAM / the write list / the remote key-value store, enforces the global
// LRU budget by evicting pages via UFFD_REMAP, and runs the asynchronous
// writeback machinery (write list + flush batching + steal shortcut).
//
// Concurrency model: the real monitor is an epoll loop plus a flush thread.
// Here both are Timelines in virtual time — the monitor serializes fault
// handling (a burst of faults queues), and the flush thread's multi-writes
// overlap with fault handling, which is precisely the asynchrony the paper's
// optimizations exploit. All data movement is real: page bytes travel
// VM frame -> write-list frame -> key-value store -> back, and the test
// suite round-trips contents through every path.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "fluidmem/cost_model.h"
#include "fluidmem/lru_buffer.h"
#include "fluidmem/page_tracker.h"
#include "fluidmem/page_key.h"
#include "fluidmem/prefetcher.h"
#include "fluidmem/write_list.h"
#include "kvstore/health.h"
#include "kvstore/kvstore.h"
#include "mem/frame_pool.h"
#include "mem/uffd.h"
#include "obs/span.h"
#include "sim/timeline.h"
#include "swap/swap_space.h"

namespace fluid::fm {

class FaultEngine;
struct FaultSchedule;

struct MonitorConfig {
  // Pages held in DRAM across all registered VMs (the resizable LRU).
  std::size_t lru_capacity_pages = 1024;
  // Enable the "future optimization": refresh LRU order on monitor-visible
  // hits. Off by default to match the paper (§V-A).
  bool true_lru = false;

  // Asynchronous-writeback batch size and the stale-descriptor flush age.
  std::size_t write_batch_pages = 32;
  SimDuration flush_max_age = 200 * kMicrosecond;

  // §V-B optimizations (Table II rows).
  bool async_read = true;
  bool async_write = true;

  // Fault-ahead: on a remote fault at page p, fetch up to `prefetch_depth`
  // predicted pages that are also remote, off the fault's critical path
  // (a §III-style user-space policy; 0 disables). The prediction policy
  // (legacy sequential detector vs Leap majority-vote, adaptive window,
  // accuracy gate) lives in `prefetch`.
  std::size_t prefetch_depth = 0;
  PrefetcherConfig prefetch;

  // --- hot/cold tier placement (active once AttachColdTier provides a
  // device) -----------------------------------------------------------------
  // Eviction victims whose decayed heat is at or below this threshold are
  // demoted to the cold-tier device instead of the remote-DRAM write path;
  // refaults promote them back (and re-heat them).
  std::uint8_t tier_cold_threshold = 1;
  // Heat added per demand install / monitor-visible touch, and the
  // saturation ceiling. PumpBackground halves all heat each tick.
  std::uint8_t page_heat_bump = 2;
  std::uint8_t page_heat_max = 8;

  // KVM hardware-assisted virtualisation vs full (TCG) virtualisation.
  // KVM fault handling can recurse into further faults; below
  // kvm_min_resident pages the recursion cannot terminate (Table III's
  // 1-page row requires full virtualisation).
  bool kvm_mode = true;
  std::size_t kvm_min_resident = 4;

  // DrainWrites retry budget: rounds of (flush, wait, retire) before the
  // drain gives up on a store that keeps rejecting batches. Exhaustion is
  // counted in MonitorStats::drain_budget_exhausted.
  std::size_t max_drain_rounds = 8;

  // Graceful-degradation breakers for the remote store (only active once
  // AttachLocalSpill provides somewhere to degrade to). Consecutive
  // kUnavailable results trip the breaker; while it is open, remote reads
  // fail fast and the write path spills to the local swap device instead
  // of stalling vCPUs on a dead store.
  int breaker_trip_after = 3;
  SimDuration breaker_open_duration = 1 * kMillisecond;
  // Pages migrated back from local spill to the store per PumpBackground
  // tick once the breaker closes (bounds the pump's work).
  std::size_t spill_migrate_batch = 8;

  // --- sharded fault engine ------------------------------------------------
  // Parallel handler shards serving faults (hash-of-page-key routing).
  // 1 = the paper's serial monitor: the engine then sends every fault down
  // the exact legacy path, so existing runs replay bit-identically.
  std::size_t fault_shards = 1;
  // Max userfaultfd events drained per virtual read(2) by the engine's
  // batched pump (1 = one event per wakeup, the legacy epoll loop).
  std::size_t uffd_read_batch = 1;
  // Bounded outstanding remote-read window per shard (engine mode only):
  // reads past the window wait for the oldest posted op to complete.
  std::size_t io_window = 4;
  // Completion-driven eviction/writeback pipeline (engine mode only, needs
  // fault_shards > 1). Faults hand their victims to per-shard background
  // evictors instead of running the eviction inline on the shared flusher
  // thread, and dirty pages coalesce into same-partition multi-write
  // batches posted on per-shard evictor timelines. With one shard the flag
  // is inert and the serial monitor path runs unchanged, byte for byte.
  bool pipelined_writeback = true;

  // Per-region DRAM quota applied at registration when RegisterRegion is
  // not given an explicit one. 0 = unlimited (the global budget alone).
  // Multi-tenant stacks set this so a quota is in force before a region's
  // first fault, not only after a later SetRegionQuota call.
  std::size_t default_region_quota_pages = 0;

  MonitorCostModel costs;
  std::uint64_t seed = 7;
};

struct FaultOutcome {
  Status status;
  SimTime wake_at = 0;      // vCPU resumes execution here
  bool first_access = false;
  bool stolen = false;       // resolved from the pending write list
  bool waited_in_flight = false;
  bool deadlocked = false;   // KVM recursive-fault deadlock (Table III)
};

struct MonitorStats {
  std::uint64_t faults = 0;
  std::uint64_t first_access_faults = 0;
  std::uint64_t refaults = 0;          // page read back from store
  std::uint64_t steals = 0;
  std::uint64_t inflight_waits = 0;
  std::uint64_t evictions = 0;
  std::uint64_t flush_batches = 0;
  std::uint64_t flushed_pages = 0;
  std::uint64_t prefetched_pages = 0;
  // Prefetch batches whose wholesale MultiGet failed: installs are skipped
  // (the per-key statuses are not trustworthy) but the background thread
  // still pays the batch's completion time.
  std::uint64_t prefetch_failed_batches = 0;
  // Prefetch batches suppressed because the read breaker was open.
  std::uint64_t prefetch_breaker_skips = 0;
  // Prefetch installs abandoned because the next eviction victim would
  // have been a page installed by this same batch (self-eviction churn).
  std::uint64_t prefetch_churn_stops = 0;
  // The store *lost* a page it had acknowledged: a believed-remote page
  // came back kNotFound. Genuine data loss — never incremented for
  // transient unavailability, which is retryable.
  std::uint64_t lost_page_errors = 0;
  // A read of a believed-remote page failed with a retryable error
  // (backend outage / injected fault). The page stays kRemote; the caller
  // may re-issue the fault once the backend recovers.
  std::uint64_t transient_read_errors = 0;
  // Writeback batches (or sync eviction Puts) the store rejected. The
  // affected pages were re-enqueued on the write list, never dropped.
  std::uint64_t writeback_errors = 0;
  std::uint64_t writeback_requeues = 0;  // pages sent back to the write list
  // Tracker said write-list/in-flight but the write list had no entry; the
  // fault fell back to a remote read instead of crashing (release-UB fix).
  std::uint64_t tracker_desyncs = 0;
  // A strict tracker Lookup() found no entry where the fault path expected
  // one — the case the old lenient LocationOf() silently masked as a
  // remote read of a possibly-nonexistent key. The fallback still treats
  // the page as remote, but the desync is now counted, not hidden.
  std::uint64_t tracker_unknown_pages = 0;
  // --- resilience / graceful degradation ---------------------------------------
  // DrainWrites ran out of rounds with writes still buffered.
  std::uint64_t drain_budget_exhausted = 0;
  // Pages diverted to the local swap device while the store was down.
  std::uint64_t spilled_pages = 0;
  // Faults served from the local spill device.
  std::uint64_t spill_refaults = 0;
  // Spilled pages pushed back to the store after the breaker closed.
  std::uint64_t spill_migrated_back = 0;
  // Local spill IO failures (device error or swap space full).
  std::uint64_t spill_errors = 0;
  // Remote reads refused without a network charge while the breaker was
  // open (bounded per-fault stall during an outage).
  std::uint64_t breaker_fast_fails = 0;
  // --- page integrity (PR 8) -----------------------------------------------------
  // A believed-remote read came back kDataLoss: every available copy failed
  // envelope verification. The page is quarantined (poisoned) — the fault
  // fails loudly, wrong bytes are never installed.
  std::uint64_t poisoned_page_errors = 0;
  // Faults on an already-quarantined page refused without a store read.
  std::uint64_t poisoned_fast_fails = 0;
  // Quarantined pages whose re-probe read verified clean again (anti-entropy
  // repaired the store copy); the page returns to normal kRemote service.
  std::uint64_t poison_cleared = 0;
  // --- hot/cold tier placement ---------------------------------------------------
  // Cold eviction victims written to the cold-tier device instead of the
  // remote-DRAM write path.
  std::uint64_t tier_demotions = 0;
  // Faults served from the cold tier (the page promoted back to DRAM).
  std::uint64_t tier_promotions = 0;
  // Cold-tier device IO failures (demotion write fell back to the write
  // list, or a promotion read that must be retried).
  std::uint64_t tier_io_errors = 0;
};

class Monitor {
 public:
  Monitor(MonitorConfig config, kv::KvStore& store, mem::FramePool& pool);
  ~Monitor();

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  // --- region lifecycle --------------------------------------------------------

  // Watch a region's userfaultfd; pages are stored under `partition`.
  // `quota_pages` caps this region's LRU share from the first fault on
  // (0 defers to MonitorConfig::default_region_quota_pages; see
  // SetRegionQuota for the semantics and later adjustment).
  RegionId RegisterRegion(mem::UffdRegion& region, PartitionId partition,
                          std::size_t quota_pages = 0);

  // Stop watching: all tracking state is forgotten. With `drop_partition`
  // (the default; VM shutdown) the store's objects are deleted too;
  // migration passes false so the destination monitor inherits them — in
  // that case every buffered write for the region must first become
  // durable, and kUnavailable is returned (region stays registered) if the
  // store will not take them within the drain retry budget.
  Status UnregisterRegion(RegionId id, SimTime now,
                          bool drop_partition = true);

  // Push every resident page of one region to the store and wait (the
  // per-VM footprint-to-zero path; used by migration). Returns when all
  // writes are durable.
  SimTime FlushRegion(RegionId id, SimTime now);

  // Adopt tracking metadata for a page whose contents already sit in the
  // store under this monitor's view of `id`'s partition (migration import).
  void ImportRemotePage(RegionId id, VirtAddr addr) {
    tracker_.MarkRemote(PageRef{id, PageAlignDown(addr)});
  }

  // --- the fault path ------------------------------------------------------------

  // Handle one userfaultfd event that fired at `fault_time`. Returns the
  // outcome with the vCPU wake time; the caller re-issues the access.
  // Routed through the fault engine: with fault_shards == 1 this is the
  // paper's serial handler, bit for bit; with more shards the fault runs on
  // the hash-assigned handler worker.
  FaultOutcome HandleFault(RegionId id, VirtAddr addr, SimTime fault_time);

  // The sharded fault-handling engine (always present; one shard by
  // default). Exposes the batched pump, per-shard stats and latency
  // histograms, and the worker executor for the scalability bench.
  FaultEngine& fault_engine() noexcept { return *engine_; }
  const FaultEngine& fault_engine() const noexcept { return *engine_; }

  // --- management ----------------------------------------------------------------

  // Resize the DRAM budget. Shrinking synchronously evicts down to the new
  // capacity; returns when the monitor finished the transition.
  SimTime SetLruCapacity(std::size_t pages, SimTime now);
  std::size_t LruCapacity() const { return lru_.capacity(); }
  std::size_t ResidentPages() const { return lru_.size(); }

  // Per-tenant fairness: cap one region's share of the buffer. When the
  // region is over its quota, its own oldest page is evicted instead of the
  // global head — a noisy tenant cannot squeeze out its neighbours.
  // 0 removes the quota. Shrinking evicts down to the quota synchronously.
  SimTime SetRegionQuota(RegionId id, std::size_t pages, SimTime now);
  std::size_t RegionResidentPages(RegionId id) const {
    return lru_.RegionCount(id);
  }

  // Hook for §V-A's "future optimization" ("trigger faults for pages not
  // yet evicted"): lets a driver report resident-page touches so a
  // true-LRU policy can refresh recency. No-op with the paper's
  // insertion-ordered list.
  void NotifyTouch(RegionId id, VirtAddr addr) {
    lru_.Touch(PageRef{id, PageAlignDown(addr)});
  }

  // Demand use of an already-resident page, reported by the VM layer (a
  // guest access that did NOT fault). Resolves prefetched-unused pages to
  // hits and bumps tier heat. Pure bookkeeping — no randomness, no time —
  // so legacy stacks replay byte-identically whether drivers call it or
  // not. Heat moves even with no cold tier attached: a tier attached
  // mid-run must see the warmup's access recency, not a blank slate
  // (stale-heat-at-attach fix).
  void NotePageTouch(RegionId id, VirtAddr addr) {
    const PageRef p{id, PageAlignDown(addr)};
    tracker_.BumpHeat(p, config_.page_heat_bump, config_.page_heat_max);
    if (config_.prefetch_depth != 0) prefetcher_.OnResidentTouch(p);
  }

  // Drive background work (flush stale writes, retire batches, store
  // maintenance, spill migrate-back) without a fault; the real flush
  // thread wakes periodically.
  void PumpBackground(SimTime now);

  // --- graceful degradation ------------------------------------------------------

  // Provide a local swap device to degrade onto. While the write breaker
  // is open, evictions/writebacks spill here instead of stalling on the
  // dead store; while the read breaker is open, remote faults fail fast.
  // Spilled pages migrate back via PumpBackground once the store recovers.
  // The SwapSpace must outlive the monitor.
  void AttachLocalSpill(swap::SwapSpace& spill) { spill_ = &spill; }
  bool HasLocalSpill() const noexcept { return spill_ != nullptr; }
  std::size_t SpilledPageCount() const noexcept { return spill_slots_.size(); }
  bool HasSpillSlot(const PageRef& p) const {
    return spill_slots_.contains(p);
  }
  // Oracle access for tests: read a spilled page's bytes without timing or
  // fault-injection side effects.
  Status PeekSpilled(const PageRef& p,
                     std::span<std::byte, kPageSize> out) const;
  const kv::HealthTracker& read_health() const noexcept {
    return read_health_;
  }
  const kv::HealthTracker& write_health() const noexcept {
    return write_health_;
  }

  // --- hot/cold tier placement ----------------------------------------------------

  // Provide a cheaper tier (NVMeoF/SSD BlockDevice behind a SwapSpace) for
  // cold pages: eviction victims whose heat decayed to the cold threshold
  // are demoted here instead of the remote-DRAM write path, and refaults
  // promote them back. The SwapSpace must outlive the monitor.
  void AttachColdTier(swap::SwapSpace& cold) { cold_ = &cold; }
  bool HasColdTier() const noexcept { return cold_ != nullptr; }
  std::size_t ColdTierPageCount() const noexcept { return cold_slots_.size(); }
  bool HasColdSlot(const PageRef& p) const { return cold_slots_.contains(p); }
  // Oracle access for tests: read a cold-tier page's bytes without timing
  // or fault-injection side effects.
  Status PeekColdTier(const PageRef& p,
                      std::span<std::byte, kPageSize> out) const;

  // The prediction subsystem (hit/waste/gate accounting lives there).
  const Prefetcher& prefetcher() const noexcept { return prefetcher_; }

  // --- page quarantine (integrity) ------------------------------------------------

  // Pages whose last remote read failed envelope verification on every
  // available copy. Faults on them fail fast with DataLoss until a
  // PumpBackground re-probe observes a clean read (post-repair).
  std::size_t PoisonedPageCount() const noexcept { return poisoned_.size(); }
  bool IsPoisoned(RegionId id, VirtAddr addr) const {
    return poisoned_.contains({id, PageAlignDown(addr)});
  }
  void ForEachPoisoned(
      const std::function<void(RegionId, VirtAddr)>& fn) const {
    for (const auto& [id, addr] : poisoned_) fn(id, addr);
  }

  // --- observability --------------------------------------------------------------

  // Attach the observability hub: per-fault spans open/close around the
  // fault path (see FaultEngine::HandleOne) and the monitor registers
  // gauges over its existing stats structs in the hub's MetricsRegistry.
  // Purely an observer — attaching (or enabling) never changes a replay.
  // The Observability must outlive the monitor.
  void AttachObservability(obs::Observability& obs);
  obs::Observability* observability() noexcept { return obs_; }

  // Force every pending write out to the store and wait; used on shutdown
  // and by tests asserting durability. Failed batches are re-posted up to
  // a bounded number of rounds; under a persistent store outage the
  // un-durable writes stay buffered (check write_list().PendingCount()).
  SimTime DrainWrites(SimTime now);

  // Introspection used by the migration machinery.
  mem::UffdRegion* region_of(RegionId id) noexcept {
    return id < regions_.size() && regions_[id].active
               ? regions_[id].region
               : nullptr;
  }
  PartitionId partition_of(RegionId id) const noexcept {
    return id < regions_.size() ? regions_[id].partition : 0;
  }

  const MonitorStats& stats() const noexcept { return stats_; }
  const Profiler& profiler() const noexcept { return profiler_; }
  const WriteList& write_list() const noexcept { return write_list_; }
  const PageTracker& tracker() const noexcept { return tracker_; }
  kv::KvStore& store() noexcept { return *store_; }
  const Timeline& monitor_timeline() const noexcept { return monitor_; }

 private:
  struct RegionInfo {
    mem::UffdRegion* region = nullptr;
    PartitionId partition = 0;
    bool active = false;
    // Per-tenant DRAM quota (pages); 0 = unlimited (global budget only).
    // (Stream-detector state moved into the Prefetcher.)
    std::size_t quota_pages = 0;
  };

  // The fault path proper, parameterized by a FaultSchedule (which worker
  // timeline runs it, contention surcharge, batch-dispatch discount, group
  // read / coalescing hooks). The default schedule reproduces the serial
  // monitor exactly — same RNG draws, same arithmetic.
  FaultOutcome HandleFaultScheduled(RegionId id, VirtAddr addr,
                                    SimTime fault_time,
                                    const FaultSchedule& sched);

  // Sample a cost (scaled for full virtualisation) and record it.
  SimDuration SampleCost(const LatencyDist& d);
  SimTime Charge(SimTime t, const LatencyDist& d);
  SimTime ChargeProfiled(SimTime t, const LatencyDist& d, CodePath path);

  // Retire completed flush batches: frames return to the pool and pages
  // become kRemote.
  void RetireCompleted(SimTime now);

  // Pick the eviction victim honouring the faulting region's quota.
  bool PopVictimFor(RegionId faulting_region, PageRef* victim);

  // Evict the LRU victim (per PopVictimFor). If `sync_write`, the store
  // write happens on the caller's critical path (Table II "Default"/
  // "Async Read" rows); else the page goes on the write list.
  // `remap_overlapped` means the REMAP runs while the faulting vCPU is
  // suspended on an in-flight read (cheap TLB sync, §V-B). Returns the
  // caller-visible finish time. With an engine-mode `sched`, the victim
  // comes from the handler's own LRU slice (or is work-stolen from the
  // hottest slice) instead of the global scan.
  // `span` (when non-null) attributes the eviction/writeback time to the
  // faulting span's stages; deferred evictions that run after the vCPU
  // woke pass null so stage sums keep matching end-to-end latency.
  SimTime EvictOneFor(RegionId faulting_region, SimTime t, bool sync_write,
                      bool remap_overlapped,
                      const FaultSchedule* sched = nullptr,
                      obs::SpanCursor* span = nullptr);

  // Remap an already-chosen victim out of its VM and onto the write list
  // (the asynchronous-writeback half of EvictOneFor). The management paths
  // (SetLruCapacity, SetRegionQuota, FlushRegion) collect victims first and
  // run this in a loop, then post the whole set as multi-write batches with
  // one FlushIfNeeded pass.
  SimTime EvictToWriteList(const PageRef& victim, SimTime t,
                           bool remap_overlapped,
                           obs::SpanCursor* span = nullptr);

  // Post pending writes as multi-write batches when full or stale.
  // Delegates to FlushCoalesced when the writeback pipeline is active.
  void FlushIfNeeded(SimTime now, bool force = false);

  // True when the completion-driven eviction/writeback pipeline is on:
  // engine mode with more than one shard and the config flag set.
  bool PipelineActive() const noexcept;

  // Pipelined flusher: group pending writes by partition and post each
  // group as one same-partition multi-write on that partition's evictor
  // timeline. A group flushes when it reaches write_batch_pages, when its
  // oldest entry exceeds flush_max_age, or on `force`.
  void FlushCoalesced(SimTime now, bool force);

  // Degradation path: move one batch of pending writes to the local swap
  // device (breaker open / store down). Returns true if any page spilled.
  bool SpillPending(SimTime now);
  // Recovery path: push spilled pages back to the store (bounded by
  // config_.spill_migrate_batch; requires the write breaker closed).
  void MigrateSpillBack(SimTime now);
  // Feed a store op outcome to one of the degradation breakers.
  void NoteStoreRead(const kv::OpResult& r);
  void NoteStoreWrite(const kv::OpResult& r);

  // Re-probe a bounded number of quarantined pages per background tick;
  // a clean verified read lifts the quarantine.
  void ProbePoisoned(SimTime now);

  // Fault-ahead: ask the Prefetcher for a predicted window after the
  // remote fault at `addr` and fetch it on the dedicated readahead lane.
  void PrefetchAfter(RegionId id, VirtAddr addr, SimTime now);

  // Demand install bookkeeping for the tier policy. Heat moves whether or
  // not a cold tier is attached — it is only READ at demotion time, and
  // keeping it current means a mid-run AttachColdTier makes its first
  // demotion choices from real recency instead of all-zero counters.
  void BumpHeatOnInstall(const PageRef& p) {
    tracker_.BumpHeat(p, config_.page_heat_bump, config_.page_heat_max);
  }

  kv::Key KeyFor(const PageRef& p) const { return kv::MakePageKey(p.addr); }

  MonitorConfig config_;
  kv::KvStore* store_;
  mem::FramePool* pool_;
  Rng rng_;

  std::vector<RegionInfo> regions_;
  LruBuffer lru_;
  PageTracker tracker_;
  WriteList write_list_;

  // Graceful degradation: local swap spill + per-direction store breakers.
  // Read and write health are tracked separately so a write-only outage
  // (store accepts reads, rejects writes) cannot be masked by read
  // successes resetting the failure count, and vice versa.
  swap::SwapSpace* spill_ = nullptr;
  std::unordered_map<PageRef, blk::BlockNum, PageRefHash> spill_slots_;
  kv::HealthTracker read_health_;
  kv::HealthTracker write_health_;

  // Hot/cold tier placement: cold eviction victims demote onto this
  // device; refaults promote. Distinct from spill_ (degradation under a
  // store outage) — the two can coexist.
  swap::SwapSpace* cold_ = nullptr;
  std::unordered_map<PageRef, blk::BlockNum, PageRefHash> cold_slots_;

  // The prediction subsystem (per-region stride vote, adaptive window,
  // accuracy gate, hit/waste accounting).
  Prefetcher prefetcher_;

  // Quarantined pages, ordered so re-probes walk deterministically.
  std::set<std::pair<RegionId, VirtAddr>> poisoned_;

  Timeline monitor_;  // the epoll/fault-handling thread (serial mode)
  Timeline flusher_;  // the writeback thread
  // Dedicated readahead lane: speculative MultiGets no longer contend
  // head-to-head with coalesced writeback on the flusher thread.
  Timeline prefetch_lane_;

  // The sharded handler pool; owns the per-shard worker timelines, stats,
  // contention model and I/O windows. One shard by default, in which case
  // it routes faults straight down the legacy path above.
  std::unique_ptr<FaultEngine> engine_;

  MonitorStats stats_;
  Profiler profiler_;

  // Observability hub (null until attached; checked via enabled() before
  // any span is opened). Not owned.
  obs::Observability* obs_ = nullptr;

  alignas(16) std::array<std::byte, kPageSize> scratch_{};

  // White-box access for regression tests that must corrupt internal state
  // (e.g. force a tracker/write-list desync) through no public path.
  friend struct MonitorTestPeer;
  friend class FaultEngine;
};

}  // namespace fluid::fm
