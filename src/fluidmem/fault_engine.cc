#include "fluidmem/fault_engine.h"

#include <algorithm>
#include <cassert>

namespace fluid::fm {

FaultEngine::FaultEngine(Monitor& monitor, std::size_t shards,
                         std::size_t io_window, std::size_t read_batch,
                         std::uint64_t seed)
    : monitor_(&monitor),
      exec_(shards == 0 ? 1 : shards),
      io_window_(io_window == 0 ? 1 : io_window),
      read_batch_(read_batch == 0 ? 1 : read_batch),
      rng_(seed),
      shards_(exec_.size()) {}

FaultOutcome FaultEngine::Handle(RegionId id, VirtAddr addr,
                                 SimTime fault_time) {
  FaultOutcome out = HandleOne(id, addr, fault_time, /*batch_follower=*/false);
  // Individually-driven faults (chaos harness, direct callers) drain their
  // deferred eviction right away; the batched pump drains once per batch.
  DrainEvictions();
  return out;
}

FaultOutcome FaultEngine::HandleOne(RegionId id, VirtAddr addr,
                                    SimTime fault_time, bool batch_follower) {
  FaultSchedule sched;
  sched.batch_follower = batch_follower;
  std::size_t s = 0;
  if (exec_.size() > 1) {
    const PageRef p{id, PageAlignDown(addr)};
    s = ShardOf(p);
    sched.engine = this;
    sched.shard = s;
    sched.worker = &exec_.at(s);
  }
  // Span lifecycle: exactly one span per fault, opened at dequeue and
  // closed at wake (or failure). Spans only observe — no rng draws, no
  // time charges — so traced runs replay byte-identically.
  obs::Observability* obs = monitor_->observability();
  obs::FaultSpan span_storage;
  obs::SpanCursor cursor;
  const bool tracing =
      obs != nullptr &&
      obs->StartSpan(&span_storage, &cursor, id, PageAlignDown(addr),
                     static_cast<std::uint32_t>(s), batch_follower,
                     fault_time);
  if (tracing) sched.span = &cursor;
  const FaultOutcome out =
      monitor_->HandleFaultScheduled(id, addr, fault_time, sched);
  Shard& sh = shards_[s];
  ++sh.stats.faults;
  if (out.status.ok() && out.wake_at >= fault_time)
    sh.latency.Record(out.wake_at - fault_time);
  if (tracing) {
    const SimTime end = out.wake_at >= fault_time ? out.wake_at : fault_time;
    obs->FinishSpan(&span_storage, &cursor, end, out.status.ok());
    obs->MaybeSample(end);
  }
  return out;
}

std::vector<FaultOutcome> FaultEngine::PumpQueuedFaults(RegionId id,
                                                        SimTime now) {
  std::vector<FaultOutcome> out;
  mem::UffdRegion* reg = monitor_->region_of(id);
  if (reg == nullptr) return out;
  while (reg->QueuedEventCount() > 0) {
    const std::vector<mem::QueuedEvent> batch = reg->ReadEvents(read_batch_);
    if (exec_.size() > 1 && batch.size() > 1) PostGroupReads(id, batch, now);
    bool first = true;
    for (const mem::QueuedEvent& qe : batch) {
      const SimTime ft = std::max(now, qe.raised_at);
      out.push_back(
          HandleOne(id, qe.event.addr, ft, /*batch_follower=*/!first));
      first = false;
    }
    // Unclaimed group bytes (install race, failed fault) are dropped; the
    // pages stay kRemote and a later fault simply re-reads them.
    group_reads_.clear();
    // Deferred evictions run now, on the per-shard evictor timelines —
    // overlapping the NEXT batch's dequeue and fault handling, which stay
    // on the worker timelines. This is the pipeline's de-serialization:
    // the fault loop never waits on an eviction or a writeback post.
    DrainEvictions();
  }
  return out;
}

void FaultEngine::PostGroupReads(RegionId id,
                                 const std::vector<mem::QueuedEvent>& batch,
                                 SimTime now) {
  // Collect each shard's remote candidates, deduped, in event order.
  std::vector<std::vector<PageRef>> per_shard(exec_.size());
  for (const mem::QueuedEvent& qe : batch) {
    const PageRef p{id, PageAlignDown(qe.event.addr)};
    if (monitor_->tracker_.Lookup(p) != PageLocation::kRemote) continue;
    if (group_reads_.contains(p) || outstanding_reads_.contains(p)) continue;
    std::vector<PageRef>& v = per_shard[ShardOf(p)];
    if (std::find(v.begin(), v.end(), p) == v.end()) v.push_back(p);
  }
  const PartitionId partition = monitor_->partition_of(id);
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    std::vector<PageRef>& pages = per_shard[s];
    if (pages.size() < 2) continue;  // a lone read pays its RTT either way
    // Same degradation gate as the per-fault path: never hammer a store
    // the read breaker says is down.
    if (monitor_->spill_ != nullptr &&
        !monitor_->read_health_.AllowRequest(now))
      continue;
    // The PUMP thread posts the group read at dequeue time: the batch RTT
    // runs while the handlers are still finishing the previous batch, so
    // consecutive batches overlap their reads instead of serializing a
    // full RTT per shard per batch. The per-shard outstanding window still
    // gates the post, bounding reads in flight.
    SimTime t = pump_.EarliestStart(now);
    const SimTime start = t;
    t = GateWindow(s, t);
    t = monitor_->Charge(t, monitor_->config_.costs.read_page_overhead);
    std::vector<std::array<std::byte, kPageSize>> bufs(pages.size());
    std::vector<kv::KvRead> reads;
    reads.reserve(pages.size());
    for (std::size_t i = 0; i < pages.size(); ++i)
      reads.push_back(kv::KvRead{monitor_->KeyFor(pages[i]), bufs[i], {}});
    const kv::OpResult mg = monitor_->store_->MultiGet(partition, reads, t);
    monitor_->NoteStoreRead(mg);
    // The pump is busy only for the issue work; the RTT itself overlaps
    // with the handlers' fault processing.
    pump_.Occupy(start, mg.issue_done > start ? mg.issue_done - start : 0);
    bool posted = false;
    for (std::size_t i = 0; i < pages.size(); ++i) {
      if (!reads[i].status.ok()) continue;  // per-key miss: fault falls back
      GroupRead g;
      g.bytes = bufs[i];
      g.available_at = mg.complete_at;
      group_reads_.emplace(pages[i], g);
      outstanding_reads_[pages[i]] = mg.complete_at;
      posted = true;
    }
    // One MultiGet is one op on the wire regardless of object count.
    if (posted) shards_[s].window.push_back(mg.complete_at);
  }
}

SimDuration FaultEngine::ChargeLockContention(std::size_t shard, SimTime at) {
  // In pipelined-writeback mode the fault path only CLASSIFIES under the
  // write-list lock (steal probe); eviction and flush posting — the long
  // write-list critical sections — moved to the background evictors. A
  // busy peer therefore convoys the handler on the frame-pool lock as
  // before, but the write-list hold is paid once per dispatch, not once
  // per peer.
  const bool pipelined = monitor_->PipelineActive();
  SimDuration d = 0;
  bool any_busy = false;
  for (std::size_t i = 0; i < exec_.size(); ++i) {
    if (i == shard || exec_.at(i).free_at() <= at) continue;
    any_busy = true;
    if (!pipelined)
      d += monitor_->SampleCost(monitor_->config_.costs.wl_lock_hold);
    d += monitor_->SampleCost(monitor_->config_.costs.pool_lock_hold);
  }
  if (pipelined && any_busy)
    d += monitor_->SampleCost(monitor_->config_.costs.wl_lock_hold);
  shards_[shard].stats.lock_wait_total += d;
  return d;
}

SimTime FaultEngine::GateWindow(std::size_t shard, SimTime t) {
  std::vector<SimTime>& w = shards_[shard].window;
  std::erase_if(w, [&](SimTime c) { return c <= t; });
  while (w.size() >= io_window_) {
    const auto oldest = std::min_element(w.begin(), w.end());
    t = std::max(t, *oldest);
    w.erase(oldest);
    ++shards_[shard].stats.io_window_waits;
    std::erase_if(w, [&](SimTime c) { return c <= t; });
  }
  return t;
}

void FaultEngine::NoteReadPosted(std::size_t shard, const PageRef& p,
                                 SimTime complete_at) {
  shards_[shard].window.push_back(complete_at);
  outstanding_reads_[p] = complete_at;
}

std::optional<SimTime> FaultEngine::OutstandingReadCompletion(const PageRef& p,
                                                              SimTime now) {
  auto it = outstanding_reads_.find(p);
  if (it == outstanding_reads_.end()) return std::nullopt;
  if (it->second <= now) {
    outstanding_reads_.erase(it);
    return std::nullopt;
  }
  const SimTime ready = it->second;
  ++shards_[ShardOf(p)].stats.coalesced_reads;
  return ready;
}

std::optional<FaultEngine::GroupRead> FaultEngine::TakeGroupRead(
    const PageRef& p) {
  auto it = group_reads_.find(p);
  if (it == group_reads_.end()) return std::nullopt;
  GroupRead g = it->second;
  group_reads_.erase(it);
  ++shards_[ShardOf(p)].stats.batched_reads;
  return g;
}

bool FaultEngine::PopVictim(RegionId faulting_region, std::size_t shard,
                            PageRef* out) {
  Monitor& m = *monitor_;
  // Per-tenant quota first — identical policy to the serial monitor.
  if (faulting_region < m.regions_.size()) {
    const Monitor::RegionInfo& ri = m.regions_[faulting_region];
    if (ri.quota_pages != 0 &&
        m.lru_.RegionCount(faulting_region) >= ri.quota_pages &&
        m.lru_.PopVictimOfRegion(faulting_region, out))
      return true;
  }
  // Evict from the handler's own slice while it holds its fair share of
  // the budget; a cold slice steals the hottest slice's oldest page so one
  // shard's burst cannot squeeze the others out of DRAM.
  const std::size_t fair =
      std::max<std::size_t>(1, m.lru_.capacity() / exec_.size());
  if (m.lru_.ShardSize(shard) >= fair)
    return m.lru_.PopVictimOfShard(shard, out);
  const std::size_t hot = m.lru_.LargestShard();
  if (m.lru_.ShardSize(hot) == 0) return false;
  if (hot != shard) ++shards_[shard].stats.work_steals;
  return m.lru_.PopVictimOfShard(hot, out);
}

void FaultEngine::DeferEviction(std::size_t shard, RegionId region,
                                SimTime ready_at) {
  shards_[shard].evict_queue.push_back(DeferredEviction{region, ready_at});
  ++shards_[shard].stats.deferred_evictions;
}

void FaultEngine::DrainEvictions() {
  obs::Observability* obs = monitor_->observability();
  SimTime latest = 0;
  bool any = false;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& sh = shards_[s];
    if (sh.evict_queue.empty()) continue;
    FaultSchedule sched;
    sched.engine = this;
    sched.shard = s;
    sched.worker = &exec_.at(s);
    for (const DeferredEviction& e : sh.evict_queue) {
      const SimTime start = sh.evictor.EarliestStart(e.ready_at);
      const SimTime done = monitor_->EvictOneFor(
          e.region, start, /*sync_write=*/false, /*remap_overlapped=*/false,
          &sched);
      sh.evictor.Occupy(start, done > start ? done - start : 0);
      if (obs != nullptr && obs->enabled()) {
        const auto lane = static_cast<std::uint32_t>(s);
        obs->RecordPipeline(obs::PipeStage::kVictimQueue, lane, e.ready_at,
                            start > e.ready_at ? start - e.ready_at : 0);
        obs->RecordPipeline(obs::PipeStage::kEvict, lane, start,
                            done > start ? done - start : 0);
      }
      latest = std::max(latest, done);
      any = true;
    }
    sh.evict_queue.clear();
  }
  // Evictions put dirty pages on the write list; let the coalescer post
  // any partition group that just reached its size/age trigger.
  if (any) monitor_->FlushIfNeeded(latest);
}

EngineShardStats FaultEngine::TotalStats() const {
  EngineShardStats total;
  for (const Shard& s : shards_) {
    total.faults += s.stats.faults;
    total.batched_reads += s.stats.batched_reads;
    total.coalesced_reads += s.stats.coalesced_reads;
    total.work_steals += s.stats.work_steals;
    total.io_window_waits += s.stats.io_window_waits;
    total.deferred_evictions += s.stats.deferred_evictions;
    total.lock_wait_total += s.stats.lock_wait_total;
  }
  return total;
}

LatencyHistogram FaultEngine::MergedLatency() const {
  LatencyHistogram merged{/*min_ns=*/50.0, /*max_ns=*/1e9,
                          /*buckets_per_decade=*/60};
  for (const Shard& s : shards_) {
    // Every shard histogram is built with the layout above, so a mismatch
    // here is a programming error, not a runtime condition.
    const Status st = merged.Merge(s.latency);
    assert(st.ok());
    (void)st;
  }
  return merged;
}

}  // namespace fluid::fm
