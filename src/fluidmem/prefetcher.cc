#include "fluidmem/prefetcher.h"

#include <algorithm>
#include <bit>

namespace fluid::fm {

void Prefetcher::Configure(const PrefetcherConfig& cfg,
                           std::size_t depth_cap) {
  cfg_ = cfg;
  if (cfg_.history < 2) cfg_.history = 2;
  if (cfg_.min_window == 0) cfg_.min_window = 1;
  if (cfg_.accuracy_window < 4) cfg_.accuracy_window = 4;
  if (cfg_.gate_probe_period == 0) cfg_.gate_probe_period = 1;
  depth_cap_ = depth_cap;
  regions_.clear();
  unused_total_ = 0;
  stats_ = PrefetcherStats{};
}

Prefetcher::RegionState& Prefetcher::StateOf(RegionId region) {
  RegionState& r = regions_[region];
  if (r.deltas.empty()) {
    r.deltas.assign(cfg_.history, 0);
    r.probe_countdown = cfg_.gate_probe_period;
  }
  return r;
}

std::size_t Prefetcher::DepthCap() const noexcept {
  return cfg_.max_window != 0 ? std::min(cfg_.max_window, depth_cap_)
                              : depth_cap_;
}

std::uint32_t Prefetcher::OutcomeRingLen() const noexcept {
  return static_cast<std::uint32_t>(
      std::min<std::size_t>(cfg_.accuracy_window, 64));
}

bool Prefetcher::Gated(const RegionState& r) const {
  if (cfg_.accuracy_floor_pct <= 0) return false;
  const std::uint32_t ring = OutcomeRingLen();
  // Demand evidence before judging: at least half a ring of resolved
  // outcomes (and never fewer than 4).
  const std::uint32_t need = std::max<std::uint32_t>(4, ring / 2);
  if (r.outcome_len < need) return false;
  const int pct = static_cast<int>(100 * std::popcount(r.outcome_bits) /
                                   r.outcome_len);
  return pct < cfg_.accuracy_floor_pct;
}

std::int64_t Prefetcher::Predict(const RegionState& r) const {
  if (r.delta_count == 0) return 0;
  const std::size_t cap = r.deltas.size();
  // back == 0 is the most recent delta.
  auto at = [&](std::size_t back) {
    return r.deltas[(r.delta_next + cap - 1 - back) % cap];
  };
  // Too little history for a meaningful vote: follow the latest trend
  // (Leap's fallback).
  if (r.delta_count < 4) return at(0);
  // Boyer–Moore majority over doubling suffix windows of the ring.
  std::size_t w = 4;
  while (true) {
    const std::size_t use = std::min(w, r.delta_count);
    std::int64_t cand = 0;
    std::size_t votes = 0;
    for (std::size_t i = 0; i < use; ++i) {
      const std::int64_t d = at(i);
      if (votes == 0) {
        cand = d;
        votes = 1;
      } else if (d == cand) {
        ++votes;
      } else {
        --votes;
      }
    }
    std::size_t n = 0;
    for (std::size_t i = 0; i < use; ++i)
      if (at(i) == cand) ++n;
    if (2 * n > use) return cand;  // strict majority found at this width
    if (use == r.delta_count || use >= cfg_.history) break;
    w *= 2;
  }
  return 0;
}

PrefetchDecision Prefetcher::OnRemoteFault(RegionId region, VirtAddr addr) {
  PrefetchDecision d;
  if (depth_cap_ == 0) return d;
  RegionState& r = StateOf(region);

  std::int64_t stride = 0;
  std::size_t depth = 0;
  if (cfg_.mode == PrefetchMode::kSequential) {
    // The legacy stream detector: consecutive next-page faults arm it;
    // `addr == last_fault` continues a stream whose window end re-faults.
    const bool sequential =
        r.has_last &&
        (addr == r.last_fault + kPageSize || addr == r.last_fault);
    r.seq_streak = sequential ? r.seq_streak + 1 : 0;
    r.last_fault = addr;
    r.has_last = true;
    if (r.seq_streak < 2) return d;
    stride = 1;
    depth = depth_cap_;
  } else {
    if (r.has_last) {
      const std::int64_t delta =
          static_cast<std::int64_t>(addr - r.last_fault) /
          static_cast<std::int64_t>(kPageSize);
      if (delta != 0) {
        r.deltas[r.delta_next] = delta;
        r.delta_next = (r.delta_next + 1) % r.deltas.size();
        r.delta_count = std::min(r.delta_count + 1, r.deltas.size());
      }
    }
    r.last_fault = addr;
    r.has_last = true;
    stride = Predict(r);
    if (stride == 0) {
      ++stats_.no_trend;
      return d;
    }
    if (r.window == 0)
      r.window = std::max(cfg_.min_window,
                          std::min<std::size_t>(4, DepthCap()));
    depth = r.window;
  }

  if (Gated(r)) {
    if (r.probe_countdown == 0) {
      // Probe: a minimal batch so the outcome ring keeps getting fresh
      // evidence — without it a closed gate could never re-open.
      r.probe_countdown = cfg_.gate_probe_period;
      ++stats_.gate_probes;
      depth = cfg_.min_window;
    } else {
      --r.probe_countdown;
      ++stats_.gated_skips;
      d.gated = true;
      return d;
    }
  }

  ++stats_.predictions;
  d.stride_pages = stride;
  d.depth = std::min(depth, depth_cap_);
  return d;
}

void Prefetcher::OnBatchEnd(RegionId region, VirtAddr continuation) {
  RegionState& r = StateOf(region);
  r.last_fault = continuation;
  r.has_last = true;
  // Sequential mode: the next window-end fault continues the stream (the
  // legacy "seq_streak = 2" re-arm). Majority mode records no delta: the
  // continuation point only anchors the next demand fault's delta so the
  // batch-sized jump never enters the vote.
  if (cfg_.mode == PrefetchMode::kSequential) r.seq_streak = 2;
}

void Prefetcher::MarkPrefetched(const PageRef& p) {
  if (StateOf(p.region).unused.insert(p).second) ++unused_total_;
}

void Prefetcher::RecordOutcome(RegionId region, bool hit) {
  RegionState& r = StateOf(region);
  const std::uint32_t ring = OutcomeRingLen();
  r.outcome_bits = (r.outcome_bits << 1) | (hit ? 1u : 0u);
  if (ring < 64) r.outcome_bits &= (std::uint64_t{1} << ring) - 1;
  r.outcome_len = std::min(r.outcome_len + 1, ring);
  if (cfg_.mode == PrefetchMode::kMajority) {
    if (hit)
      r.window = std::min(DepthCap(), std::max<std::size_t>(1, r.window) + 1);
    else
      r.window = std::max(cfg_.min_window, std::max<std::size_t>(1, r.window) / 2);
  }
}

void Prefetcher::OnResidentTouch(const PageRef& p) {
  auto it = regions_.find(p.region);
  if (it == regions_.end() || it->second.unused.erase(p) == 0) return;
  --unused_total_;
  ++stats_.hits;
  RecordOutcome(p.region, /*hit=*/true);
}

void Prefetcher::OnEvicted(const PageRef& p) {
  auto it = regions_.find(p.region);
  if (it == regions_.end() || it->second.unused.erase(p) == 0) return;
  --unused_total_;
  ++stats_.wasted;
  RecordOutcome(p.region, /*hit=*/false);
}

void Prefetcher::ForgetRegion(RegionId region) {
  auto it = regions_.find(region);
  if (it == regions_.end()) return;
  unused_total_ -= it->second.unused.size();
  regions_.erase(it);
}

int Prefetcher::TrailingAccuracyPct(RegionId region) const {
  auto it = regions_.find(region);
  if (it == regions_.end()) return -1;
  const RegionState& r = it->second;
  const std::uint32_t need = std::max<std::uint32_t>(4, OutcomeRingLen() / 2);
  if (r.outcome_len < need) return -1;
  return static_cast<int>(100 * std::popcount(r.outcome_bits) /
                          r.outcome_len);
}

std::size_t Prefetcher::WindowOf(RegionId region) const {
  if (cfg_.mode == PrefetchMode::kSequential) return depth_cap_;
  auto it = regions_.find(region);
  if (it == regions_.end() || it->second.window == 0)
    return std::max(cfg_.min_window, std::min<std::size_t>(4, DepthCap()));
  return it->second.window;
}

}  // namespace fluid::fm
