// Adaptive radix tree page index: one shard of the PageTracker core.
//
// The tracker's region-scoped operations (ForgetRegion, ForEachInRegion,
// CountIn) were full-table scans over a per-shard hash map — linear in
// *everything tracked* rather than in the region being operated on. At the
// 10^8+ page footprints the ROADMAP targets that is the difference between
// a region teardown costing microseconds and costing seconds. This index
// replaces the hash with an adaptive radix tree (ART) with full path
// compression, so that:
//
//   * point ops (Find / SetLocation / Erase) are O(key depth), depth <= 10;
//   * a region's pages form ONE subtree (the region id is the key's most
//     significant bytes), so EraseRegion is a subtree unlink and
//     ForEachInRegion an in-order subtree walk — O(region), never O(total);
//   * in-order iteration yields ascending addresses for free, which is what
//     ForEachRunInRegion builds contiguous-run detection on (writeback
//     coalescing, prefetch neighborhood queries).
//
// Key layout (11 bytes, big-endian so byte order == key order):
//
//   byte  0..3   region id        (uint32 BE)
//   byte  4..9   page number high (addr >> 12, top 48 of 52 bits, BE)
//   byte  10     page number low  — indexed INSIDE block leaves
//
// Interior nodes adapt their arity to fanout (Node4 / Node16 / Node48 /
// Node256, the classic ART repertoire) and carry a compressed prefix of up
// to 10 bytes, so a single-region single-extent tree is just one leaf.
// Leaves are BLOCK leaves covering 256 consecutive pages (one aligned 1 MiB
// extent): a sparse sorted-array Leaf16 that grows into a bitmap+dense
// Leaf256. Dense extents therefore cost ~2.3 B/page of index memory
// (Leaf256 is ~584 B for 256 pages) — far under the 48 B/page budget — and
// the worst sparse case (one page per 1 MiB extent) stays bounded by the
// Leaf16 + interior overhead, which microbench_structures reports as
// bytes-per-tracked-page.
//
// A one-entry hot-node cache remembers the last leaf touched (keyed by the
// 1 MiB block id). Fault handling is bursty and spatially local, so the
// common Mark*/Lookup sequence for neighboring pages skips the descent
// entirely; the cache is invalidated on any erase and updated when a leaf
// is grown or replaced. Per-location counters make CountIn O(1), and every
// node allocation is tallied so bytes_used() is exact, not estimated.
//
// Single-writer per shard (the fault engine partitions pages by ShardOf),
// so no internal locking — same contract as the hash it replaces.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "common/types.h"
#include "fluidmem/page_key.h"
#include "fluidmem/page_state.h"

namespace fluid::fm {

class RadixPageIndex {
 public:
  RadixPageIndex() = default;
  ~RadixPageIndex() {
    if (root_ != nullptr) FreeSubtree(root_);
  }

  RadixPageIndex(RadixPageIndex&& o) noexcept { *this = std::move(o); }
  RadixPageIndex& operator=(RadixPageIndex&& o) noexcept {
    if (this != &o) {
      if (root_ != nullptr) FreeSubtree(root_);
      root_ = o.root_;
      bytes_ = o.bytes_;
      cache_hits_ = o.cache_hits_;
      cache_misses_ = o.cache_misses_;
      std::memcpy(loc_counts_, o.loc_counts_, sizeof(loc_counts_));
      cached_leaf_ = o.cached_leaf_;
      cached_region_ = o.cached_region_;
      cached_block_ = o.cached_block_;
      o.root_ = nullptr;
      o.bytes_ = 0;
      o.cached_leaf_ = nullptr;
      std::memset(o.loc_counts_, 0, sizeof(o.loc_counts_));
    }
    return *this;
  }
  RadixPageIndex(const RadixPageIndex&) = delete;
  RadixPageIndex& operator=(const RadixPageIndex&) = delete;

  // --- point operations ----------------------------------------------------

  const PageState* Find(const PageRef& p) const {
    return const_cast<RadixPageIndex*>(this)->FindImpl(p);
  }
  PageState* FindMutable(const PageRef& p) { return FindImpl(p); }

  // Insert-or-update the page's location; a fresh entry starts at heat 0,
  // an existing entry keeps its heat (the counter tracks the page, not the
  // place it currently lives).
  void SetLocation(const PageRef& p, PageLocation loc) {
    const std::uint64_t pn = p.addr >> kPageShift;
    if (cached_leaf_ != nullptr && cached_region_ == p.region &&
        cached_block_ == (pn >> 8)) {
      if (PageState* st = LeafFindRaw(cached_leaf_, ByteOf(pn))) {
        ++cache_hits_;
        if (st->loc != loc) {
          --loc_counts_[static_cast<std::size_t>(st->loc)];
          ++loc_counts_[static_cast<std::size_t>(loc)];
          st->loc = loc;
        }
        return;
      }
      // Block leaf is cached but the page is absent: the insert has to
      // thread subtree counts down the path, so take the slow path.
    }
    ++cache_misses_;
    std::uint8_t key[kKeyLen];
    MakeKey(p, key);
    last_leaf_ = nullptr;
    UpsertRec(root_, 0, key, loc);
    if (last_leaf_ != nullptr) {
      cached_leaf_ = last_leaf_;
      cached_region_ = p.region;
      cached_block_ = pn >> 8;
    }
  }

  bool Erase(const PageRef& p) {
    if (root_ == nullptr) return false;
    cached_leaf_ = nullptr;
    std::uint8_t key[kKeyLen];
    MakeKey(p, key);
    return EraseRec(root_, 0, key);
  }

  // --- region operations (the point of the tree) ---------------------------

  // Unlink and free the region's entire subtree; returns pages dropped.
  // Cost is O(region pages) for the free itself plus O(depth) to locate —
  // pages in other regions are never visited.
  std::uint64_t EraseRegion(RegionId region) {
    if (root_ == nullptr) return 0;
    cached_leaf_ = nullptr;
    std::uint8_t rkey[4];
    RegionKey(region, rkey);
    return EraseRegionRec(root_, 0, rkey);
  }

  // In-order walk of one region's subtree: f(PageRef, const PageState&) in
  // ascending address order.
  template <typename F>
  void ForEachInRegion(RegionId region, F&& f) const {
    if (root_ == nullptr) return;
    std::uint8_t rkey[4];
    RegionKey(region, rkey);
    std::uint8_t kb[kKeyLen];
    const Node* n = root_;
    int depth = 0;
    while (true) {
      int i = 0;
      while (i < n->prefix_len && depth + i < kRegionBytes) {
        if (n->prefix[i] != rkey[depth + i]) return;
        ++i;
      }
      if (depth + n->prefix_len >= kRegionBytes) {
        WalkRec(n, depth, kb, f);
        return;
      }
      std::memcpy(kb + depth, n->prefix, n->prefix_len);
      depth += n->prefix_len;
      const Node* child = FindChildConst(n, rkey[depth]);
      if (child == nullptr) return;
      kb[depth] = rkey[depth];
      ++depth;
      n = child;
    }
  }

  // Contiguous-run detection over one region: f(PageRef first, pages, loc)
  // for each maximal run of consecutive page addresses sharing a location.
  // Built directly on the in-order walk, so it allocates nothing.
  template <typename F>
  void ForEachRunInRegion(RegionId region, F&& f) const {
    bool open = false;
    VirtAddr start = 0, next = 0;
    PageLocation loc{};
    std::size_t len = 0;
    ForEachInRegion(region, [&](const PageRef& p, const PageState& s) {
      if (open && p.addr == next && s.loc == loc) {
        ++len;
        next += kPageSize;
        return;
      }
      if (open) f(PageRef{region, start}, len, loc);
      open = true;
      start = p.addr;
      next = p.addr + kPageSize;
      loc = s.loc;
      len = 1;
    });
    if (open) f(PageRef{region, start}, len, loc);
  }

  // Full in-order walk: f(PageRef, const PageState&), ascending key order.
  template <typename F>
  void ForEach(F&& f) const {
    if (root_ == nullptr) return;
    std::uint8_t kb[kKeyLen];
    WalkRec(root_, 0, kb, f);
  }

  // Halve every tracked page's heat (background decay tick).
  void DecayHeat() {
    if (root_ != nullptr) DecayRec(root_);
  }

  // --- occupancy / accounting ----------------------------------------------

  std::uint64_t size() const noexcept {
    return root_ == nullptr ? 0 : root_->subtree_pages;
  }
  std::uint64_t CountIn(PageLocation loc) const noexcept {
    return loc_counts_[static_cast<std::size_t>(loc)];
  }
  // Exact bytes of index node memory currently allocated.
  std::uint64_t bytes_used() const noexcept { return bytes_; }
  std::uint64_t cache_hits() const noexcept { return cache_hits_; }
  std::uint64_t cache_misses() const noexcept { return cache_misses_; }

 private:
  static constexpr int kKeyLen = 11;       // 4 region + 7 page-number bytes
  static constexpr int kRegionBytes = 4;   // region id = top 4 key bytes
  static constexpr int kLeafDepth = 10;    // byte 10 lives inside leaves
  static constexpr int kMaxPrefix = 10;    // a root leaf compresses 10 bytes

  enum class NodeType : std::uint8_t {
    kNode4,
    kNode16,
    kNode48,
    kNode256,
    kLeaf16,
    kLeaf256,
  };

  struct Node {
    NodeType type;
    std::uint8_t prefix_len = 0;
    std::uint16_t count = 0;                 // children (interior) / pages (leaf)
    std::uint8_t prefix[kMaxPrefix] = {};    // path-compressed key bytes
    std::uint64_t subtree_pages = 0;         // pages under this node
    explicit Node(NodeType t) : type(t) {}
  };

  struct Node4 : Node {
    std::uint8_t keys[4] = {};               // sorted
    Node* children[4] = {};
    Node4() : Node(NodeType::kNode4) {}
  };
  struct Node16 : Node {
    std::uint8_t keys[16] = {};              // sorted
    Node* children[16] = {};
    Node16() : Node(NodeType::kNode16) {}
  };
  struct Node48 : Node {
    std::uint8_t child_index[256];           // 0xFF = empty, else slot
    Node* children[48] = {};
    Node48() : Node(NodeType::kNode48) {
      std::memset(child_index, 0xFF, sizeof(child_index));
    }
  };
  struct Node256 : Node {
    Node* children[256] = {};
    Node256() : Node(NodeType::kNode256) {}
  };

  // Sparse block leaf: up to 16 pages of one aligned 256-page extent,
  // sorted by the low key byte.
  struct Leaf16 : Node {
    std::uint8_t keys[16] = {};
    PageState vals[16] = {};
    Leaf16() : Node(NodeType::kLeaf16) {}
  };
  // Dense block leaf: bitmap + direct-indexed states for the full extent.
  struct Leaf256 : Node {
    std::uint64_t bitmap[4] = {};
    PageState vals[256] = {};
    Leaf256() : Node(NodeType::kLeaf256) {}
  };

  static constexpr std::uint16_t kLeafShrinkAt = 12;   // Leaf256 -> Leaf16
  static constexpr std::uint16_t kNode256ShrinkAt = 40;
  static constexpr std::uint16_t kNode48ShrinkAt = 12;
  static constexpr std::uint16_t kNode16ShrinkAt = 3;

  static bool IsLeaf(const Node* n) noexcept {
    return n->type == NodeType::kLeaf16 || n->type == NodeType::kLeaf256;
  }
  static std::uint8_t ByteOf(std::uint64_t pn) noexcept {
    return static_cast<std::uint8_t>(pn & 0xFF);
  }

  static void MakeKey(const PageRef& p, std::uint8_t* k) noexcept {
    RegionKey(p.region, k);
    const std::uint64_t pn = p.addr >> kPageShift;
    k[4] = static_cast<std::uint8_t>(pn >> 48);
    k[5] = static_cast<std::uint8_t>(pn >> 40);
    k[6] = static_cast<std::uint8_t>(pn >> 32);
    k[7] = static_cast<std::uint8_t>(pn >> 24);
    k[8] = static_cast<std::uint8_t>(pn >> 16);
    k[9] = static_cast<std::uint8_t>(pn >> 8);
    k[10] = static_cast<std::uint8_t>(pn);
  }
  static void RegionKey(RegionId r, std::uint8_t* k) noexcept {
    k[0] = static_cast<std::uint8_t>(r >> 24);
    k[1] = static_cast<std::uint8_t>(r >> 16);
    k[2] = static_cast<std::uint8_t>(r >> 8);
    k[3] = static_cast<std::uint8_t>(r);
  }
  static PageRef RefOf(const std::uint8_t* k) noexcept {
    const RegionId r = (static_cast<RegionId>(k[0]) << 24) |
                       (static_cast<RegionId>(k[1]) << 16) |
                       (static_cast<RegionId>(k[2]) << 8) |
                       static_cast<RegionId>(k[3]);
    std::uint64_t pn = 0;
    for (int i = 4; i < kKeyLen; ++i) pn = (pn << 8) | k[i];
    return PageRef{r, pn << kPageShift};
  }

  static int Match(const Node* n, const std::uint8_t* key, int depth) noexcept {
    int i = 0;
    while (i < n->prefix_len && n->prefix[i] == key[depth + i]) ++i;
    return i;
  }

  template <typename T>
  T* NewNode() {
    bytes_ += sizeof(T);
    return new T();
  }
  void FreeNode(Node* n) {
    switch (n->type) {
      case NodeType::kNode4:
        bytes_ -= sizeof(Node4);
        delete static_cast<Node4*>(n);
        break;
      case NodeType::kNode16:
        bytes_ -= sizeof(Node16);
        delete static_cast<Node16*>(n);
        break;
      case NodeType::kNode48:
        bytes_ -= sizeof(Node48);
        delete static_cast<Node48*>(n);
        break;
      case NodeType::kNode256:
        bytes_ -= sizeof(Node256);
        delete static_cast<Node256*>(n);
        break;
      case NodeType::kLeaf16:
        bytes_ -= sizeof(Leaf16);
        delete static_cast<Leaf16*>(n);
        break;
      case NodeType::kLeaf256:
        bytes_ -= sizeof(Leaf256);
        delete static_cast<Leaf256*>(n);
        break;
    }
  }

  // --- leaf primitives -----------------------------------------------------

  static PageState* LeafFindRaw(Node* n, std::uint8_t b) noexcept {
    if (n->type == NodeType::kLeaf16) {
      Leaf16* l = static_cast<Leaf16*>(n);
      for (int i = 0; i < l->count; ++i)
        if (l->keys[i] == b) return &l->vals[i];
      return nullptr;
    }
    Leaf256* l = static_cast<Leaf256*>(n);
    if ((l->bitmap[b >> 6] >> (b & 63)) & 1) return &l->vals[b];
    return nullptr;
  }

  // Fresh single-entry leaf whose prefix compresses key bytes [depth, 10).
  Node* NewLeafForKey(const std::uint8_t* key, int depth, PageLocation loc) {
    Leaf16* l = NewNode<Leaf16>();
    l->prefix_len = static_cast<std::uint8_t>(kLeafDepth - depth);
    std::memcpy(l->prefix, key + depth, l->prefix_len);
    l->keys[0] = key[kLeafDepth];
    l->vals[0] = PageState{loc, 0};
    l->count = 1;
    l->subtree_pages = 1;
    ++loc_counts_[static_cast<std::size_t>(loc)];
    last_leaf_ = l;
    return l;
  }

  // Insert-or-update inside the leaf at *slot; grows Leaf16 -> Leaf256.
  // Returns true when a NEW page was inserted (caller bumps path counts).
  bool LeafUpsert(Node*& slot, std::uint8_t b, PageLocation loc) {
    if (slot->type == NodeType::kLeaf16) {
      Leaf16* l = static_cast<Leaf16*>(slot);
      int i = 0;
      while (i < l->count && l->keys[i] < b) ++i;
      if (i < l->count && l->keys[i] == b) {
        if (l->vals[i].loc != loc) {
          --loc_counts_[static_cast<std::size_t>(l->vals[i].loc)];
          ++loc_counts_[static_cast<std::size_t>(loc)];
          l->vals[i].loc = loc;
        }
        last_leaf_ = l;
        return false;
      }
      if (l->count == 16) {
        Leaf256* big = NewNode<Leaf256>();
        big->prefix_len = l->prefix_len;
        std::memcpy(big->prefix, l->prefix, l->prefix_len);
        big->count = l->count;
        big->subtree_pages = l->subtree_pages;
        for (int j = 0; j < l->count; ++j) {
          const std::uint8_t kb = l->keys[j];
          big->bitmap[kb >> 6] |= std::uint64_t{1} << (kb & 63);
          big->vals[kb] = l->vals[j];
        }
        if (cached_leaf_ == l) cached_leaf_ = big;
        FreeNode(l);
        slot = big;
        return LeafUpsert(slot, b, loc);
      }
      std::memmove(l->keys + i + 1, l->keys + i, (l->count - i));
      std::memmove(l->vals + i + 1, l->vals + i,
                   (l->count - i) * sizeof(PageState));
      l->keys[i] = b;
      l->vals[i] = PageState{loc, 0};
      ++l->count;
      ++l->subtree_pages;
      ++loc_counts_[static_cast<std::size_t>(loc)];
      last_leaf_ = l;
      return true;
    }
    Leaf256* l = static_cast<Leaf256*>(slot);
    last_leaf_ = l;
    if ((l->bitmap[b >> 6] >> (b & 63)) & 1) {
      if (l->vals[b].loc != loc) {
        --loc_counts_[static_cast<std::size_t>(l->vals[b].loc)];
        ++loc_counts_[static_cast<std::size_t>(loc)];
        l->vals[b].loc = loc;
      }
      return false;
    }
    l->bitmap[b >> 6] |= std::uint64_t{1} << (b & 63);
    l->vals[b] = PageState{loc, 0};
    ++l->count;
    ++l->subtree_pages;
    ++loc_counts_[static_cast<std::size_t>(loc)];
    return true;
  }

  // Erase one page from the leaf at *slot; frees an emptied Leaf16 (slot
  // becomes nullptr) and shrinks a sparse Leaf256 back to Leaf16.
  bool LeafErase(Node*& slot, std::uint8_t b) {
    if (slot->type == NodeType::kLeaf16) {
      Leaf16* l = static_cast<Leaf16*>(slot);
      for (int i = 0; i < l->count; ++i) {
        if (l->keys[i] != b) continue;
        --loc_counts_[static_cast<std::size_t>(l->vals[i].loc)];
        std::memmove(l->keys + i, l->keys + i + 1, (l->count - i - 1));
        std::memmove(l->vals + i, l->vals + i + 1,
                     (l->count - i - 1) * sizeof(PageState));
        --l->count;
        --l->subtree_pages;
        if (l->count == 0) {
          FreeNode(l);
          slot = nullptr;
        }
        return true;
      }
      return false;
    }
    Leaf256* l = static_cast<Leaf256*>(slot);
    if (!((l->bitmap[b >> 6] >> (b & 63)) & 1)) return false;
    --loc_counts_[static_cast<std::size_t>(l->vals[b].loc)];
    l->bitmap[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    --l->count;
    --l->subtree_pages;
    if (l->count <= kLeafShrinkAt) {
      Leaf16* small = NewNode<Leaf16>();
      small->prefix_len = l->prefix_len;
      std::memcpy(small->prefix, l->prefix, l->prefix_len);
      small->subtree_pages = l->subtree_pages;
      for (int w = 0; w < 4; ++w) {
        std::uint64_t bits = l->bitmap[w];
        while (bits != 0) {
          const int bit = __builtin_ctzll(bits);
          bits &= bits - 1;
          const std::uint8_t kb = static_cast<std::uint8_t>(w * 64 + bit);
          small->keys[small->count] = kb;
          small->vals[small->count] = l->vals[kb];
          ++small->count;
        }
      }
      FreeNode(l);
      slot = small;
    }
    return true;
  }

  // --- interior-node child management --------------------------------------

  Node** FindChildSlot(Node* n, std::uint8_t b) noexcept {
    switch (n->type) {
      case NodeType::kNode4: {
        Node4* x = static_cast<Node4*>(n);
        for (int i = 0; i < x->count; ++i)
          if (x->keys[i] == b) return &x->children[i];
        return nullptr;
      }
      case NodeType::kNode16: {
        Node16* x = static_cast<Node16*>(n);
        for (int i = 0; i < x->count; ++i)
          if (x->keys[i] == b) return &x->children[i];
        return nullptr;
      }
      case NodeType::kNode48: {
        Node48* x = static_cast<Node48*>(n);
        return x->child_index[b] == 0xFF ? nullptr
                                         : &x->children[x->child_index[b]];
      }
      case NodeType::kNode256: {
        Node256* x = static_cast<Node256*>(n);
        return x->children[b] == nullptr ? nullptr : &x->children[b];
      }
      default:
        return nullptr;
    }
  }
  static const Node* FindChildConst(const Node* n, std::uint8_t b) noexcept {
    switch (n->type) {
      case NodeType::kNode4: {
        const Node4* x = static_cast<const Node4*>(n);
        for (int i = 0; i < x->count; ++i)
          if (x->keys[i] == b) return x->children[i];
        return nullptr;
      }
      case NodeType::kNode16: {
        const Node16* x = static_cast<const Node16*>(n);
        for (int i = 0; i < x->count; ++i)
          if (x->keys[i] == b) return x->children[i];
        return nullptr;
      }
      case NodeType::kNode48: {
        const Node48* x = static_cast<const Node48*>(n);
        return x->child_index[b] == 0xFF ? nullptr
                                         : x->children[x->child_index[b]];
      }
      case NodeType::kNode256:
        return static_cast<const Node256*>(n)->children[b];
      default:
        return nullptr;
    }
  }

  // Add a child edge, growing the node's arity in place when full (the
  // slot pointer is updated so parents never see a stale node).
  void AddChild(Node*& slot, std::uint8_t b, Node* child) {
    switch (slot->type) {
      case NodeType::kNode4: {
        Node4* x = static_cast<Node4*>(slot);
        if (x->count == 4) {
          Node16* big = NewNode<Node16>();
          CopyHeader(big, x);
          for (int i = 0; i < 4; ++i) {
            big->keys[i] = x->keys[i];
            big->children[i] = x->children[i];
          }
          big->count = 4;
          FreeNode(x);
          slot = big;
          AddChild(slot, b, child);
          return;
        }
        int i = 0;
        while (i < x->count && x->keys[i] < b) ++i;
        std::memmove(x->keys + i + 1, x->keys + i, (x->count - i));
        std::memmove(x->children + i + 1, x->children + i,
                     (x->count - i) * sizeof(Node*));
        x->keys[i] = b;
        x->children[i] = child;
        ++x->count;
        return;
      }
      case NodeType::kNode16: {
        Node16* x = static_cast<Node16*>(slot);
        if (x->count == 16) {
          Node48* big = NewNode<Node48>();
          CopyHeader(big, x);
          for (int i = 0; i < 16; ++i) {
            big->child_index[x->keys[i]] = static_cast<std::uint8_t>(i);
            big->children[i] = x->children[i];
          }
          big->count = 16;
          FreeNode(x);
          slot = big;
          AddChild(slot, b, child);
          return;
        }
        int i = 0;
        while (i < x->count && x->keys[i] < b) ++i;
        std::memmove(x->keys + i + 1, x->keys + i, (x->count - i));
        std::memmove(x->children + i + 1, x->children + i,
                     (x->count - i) * sizeof(Node*));
        x->keys[i] = b;
        x->children[i] = child;
        ++x->count;
        return;
      }
      case NodeType::kNode48: {
        Node48* x = static_cast<Node48*>(slot);
        if (x->count == 48) {
          Node256* big = NewNode<Node256>();
          CopyHeader(big, x);
          for (int kb = 0; kb < 256; ++kb)
            if (x->child_index[kb] != 0xFF)
              big->children[kb] = x->children[x->child_index[kb]];
          big->count = 48;
          FreeNode(x);
          slot = big;
          AddChild(slot, b, child);
          return;
        }
        x->child_index[b] = static_cast<std::uint8_t>(x->count);
        x->children[x->count] = child;
        ++x->count;
        return;
      }
      case NodeType::kNode256: {
        Node256* x = static_cast<Node256*>(slot);
        x->children[b] = child;
        ++x->count;
        return;
      }
      default:
        return;  // leaves have no child edges
    }
  }

  static void CopyHeader(Node* dst, const Node* src) noexcept {
    dst->prefix_len = src->prefix_len;
    std::memcpy(dst->prefix, src->prefix, src->prefix_len);
    dst->subtree_pages = src->subtree_pages;
  }

  // Remove the edge for byte b (must exist); count upkeep only — arity
  // shrinking and single-child merging happen in FixAfterChildRemoval.
  void RemoveChild(Node* n, std::uint8_t b) noexcept {
    switch (n->type) {
      case NodeType::kNode4: {
        Node4* x = static_cast<Node4*>(n);
        int i = 0;
        while (x->keys[i] != b) ++i;
        std::memmove(x->keys + i, x->keys + i + 1, (x->count - i - 1));
        std::memmove(x->children + i, x->children + i + 1,
                     (x->count - i - 1) * sizeof(Node*));
        --x->count;
        return;
      }
      case NodeType::kNode16: {
        Node16* x = static_cast<Node16*>(n);
        int i = 0;
        while (x->keys[i] != b) ++i;
        std::memmove(x->keys + i, x->keys + i + 1, (x->count - i - 1));
        std::memmove(x->children + i, x->children + i + 1,
                     (x->count - i - 1) * sizeof(Node*));
        --x->count;
        return;
      }
      case NodeType::kNode48: {
        Node48* x = static_cast<Node48*>(n);
        const std::uint8_t idx = x->child_index[b];
        x->child_index[b] = 0xFF;
        const std::uint8_t last = static_cast<std::uint8_t>(x->count - 1);
        if (idx != last) {
          x->children[idx] = x->children[last];
          for (int kb = 0; kb < 256; ++kb) {
            if (x->child_index[kb] == last) {
              x->child_index[kb] = idx;
              break;
            }
          }
        }
        x->children[last] = nullptr;
        --x->count;
        return;
      }
      case NodeType::kNode256: {
        Node256* x = static_cast<Node256*>(n);
        x->children[b] = nullptr;
        --x->count;
        return;
      }
      default:
        return;
    }
  }

  // First (lowest-byte) child edge of an interior node.
  static Node* FirstChild(const Node* n, std::uint8_t* edge) noexcept {
    switch (n->type) {
      case NodeType::kNode4: {
        const Node4* x = static_cast<const Node4*>(n);
        *edge = x->keys[0];
        return x->children[0];
      }
      case NodeType::kNode16: {
        const Node16* x = static_cast<const Node16*>(n);
        *edge = x->keys[0];
        return x->children[0];
      }
      case NodeType::kNode48: {
        const Node48* x = static_cast<const Node48*>(n);
        for (int b = 0; b < 256; ++b) {
          if (x->child_index[b] != 0xFF) {
            *edge = static_cast<std::uint8_t>(b);
            return x->children[x->child_index[b]];
          }
        }
        return nullptr;
      }
      case NodeType::kNode256: {
        const Node256* x = static_cast<const Node256*>(n);
        for (int b = 0; b < 256; ++b) {
          if (x->children[b] != nullptr) {
            *edge = static_cast<std::uint8_t>(b);
            return x->children[b];
          }
        }
        return nullptr;
      }
      default:
        return nullptr;
    }
  }

  // After an edge removal: merge a single-child node into its child
  // (concatenating compressed prefixes), or shrink an oversized arity.
  void FixAfterChildRemoval(Node*& slot) {
    Node* n = slot;
    if (n->count == 0) {  // only reachable transiently via EraseRegion
      FreeNode(n);
      slot = nullptr;
      return;
    }
    if (n->count == 1) {
      std::uint8_t edge = 0;
      Node* child = FirstChild(n, &edge);
      std::uint8_t tmp[kMaxPrefix];
      std::memcpy(tmp, n->prefix, n->prefix_len);
      tmp[n->prefix_len] = edge;
      std::memcpy(tmp + n->prefix_len + 1, child->prefix, child->prefix_len);
      child->prefix_len =
          static_cast<std::uint8_t>(child->prefix_len + n->prefix_len + 1);
      std::memcpy(child->prefix, tmp, child->prefix_len);
      FreeNode(n);
      slot = child;
      return;
    }
    switch (n->type) {
      case NodeType::kNode256: {
        Node256* x = static_cast<Node256*>(n);
        if (x->count > kNode256ShrinkAt) return;
        Node48* small = NewNode<Node48>();
        CopyHeader(small, x);
        for (int b = 0; b < 256; ++b) {
          if (x->children[b] == nullptr) continue;
          small->child_index[b] = static_cast<std::uint8_t>(small->count);
          small->children[small->count] = x->children[b];
          ++small->count;
        }
        FreeNode(x);
        slot = small;
        return;
      }
      case NodeType::kNode48: {
        Node48* x = static_cast<Node48*>(n);
        if (x->count > kNode48ShrinkAt) return;
        Node16* small = NewNode<Node16>();
        CopyHeader(small, x);
        for (int b = 0; b < 256; ++b) {
          if (x->child_index[b] == 0xFF) continue;
          small->keys[small->count] = static_cast<std::uint8_t>(b);
          small->children[small->count] = x->children[x->child_index[b]];
          ++small->count;
        }
        FreeNode(x);
        slot = small;
        return;
      }
      case NodeType::kNode16: {
        Node16* x = static_cast<Node16*>(n);
        if (x->count > kNode16ShrinkAt) return;
        Node4* small = NewNode<Node4>();
        CopyHeader(small, x);
        for (int i = 0; i < x->count; ++i) {
          small->keys[i] = x->keys[i];
          small->children[i] = x->children[i];
        }
        small->count = x->count;
        FreeNode(x);
        slot = small;
        return;
      }
      default:
        return;
    }
  }

  // --- recursive core ops --------------------------------------------------

  // Returns true when a NEW page was inserted (every ancestor's
  // subtree_pages is bumped on the way back up).
  bool UpsertRec(Node*& slot, int depth, const std::uint8_t* key,
                 PageLocation loc) {
    if (slot == nullptr) {
      slot = NewLeafForKey(key, depth, loc);
      return true;
    }
    Node* n = slot;
    const int m = Match(n, key, depth);
    if (m < n->prefix_len) {
      // Prefix diverges: split into a Node4 holding the shared part, with
      // the old node and a fresh leaf as its two children.
      Node4* parent = NewNode<Node4>();
      parent->prefix_len = static_cast<std::uint8_t>(m);
      std::memcpy(parent->prefix, n->prefix, m);
      const std::uint8_t old_edge = n->prefix[m];
      n->prefix_len = static_cast<std::uint8_t>(n->prefix_len - m - 1);
      std::memmove(n->prefix, n->prefix + m + 1, n->prefix_len);
      const std::uint8_t new_edge = key[depth + m];
      Node* leaf = NewLeafForKey(key, depth + m + 1, loc);
      parent->subtree_pages = n->subtree_pages + 1;
      Node* pslot = parent;
      AddChild(pslot, old_edge, n);
      AddChild(pslot, new_edge, leaf);
      slot = pslot;
      return true;
    }
    depth += n->prefix_len;
    if (IsLeaf(n)) {
      const bool inserted = LeafUpsert(slot, key[kLeafDepth], loc);
      return inserted;
    }
    const std::uint8_t b = key[depth];
    Node** child = FindChildSlot(n, b);
    if (child == nullptr) {
      Node* leaf = NewLeafForKey(key, depth + 1, loc);
      AddChild(slot, b, leaf);
      ++slot->subtree_pages;
      return true;
    }
    const bool inserted = UpsertRec(*child, depth + 1, key, loc);
    if (inserted) ++n->subtree_pages;
    return inserted;
  }

  bool EraseRec(Node*& slot, int depth, const std::uint8_t* key) {
    Node* n = slot;
    if (Match(n, key, depth) < n->prefix_len) return false;
    depth += n->prefix_len;
    if (IsLeaf(n)) return LeafErase(slot, key[kLeafDepth]);
    Node** child = FindChildSlot(n, key[depth]);
    if (child == nullptr) return false;
    if (!EraseRec(*child, depth + 1, key)) return false;
    --n->subtree_pages;
    if (*child == nullptr) {
      RemoveChild(n, key[depth]);
      FixAfterChildRemoval(slot);
    }
    return true;
  }

  // Free an entire subtree, tallying loc_counts_ down; returns pages freed.
  std::uint64_t FreeSubtree(Node* n) {
    const std::uint64_t pages = n->subtree_pages;
    switch (n->type) {
      case NodeType::kLeaf16: {
        Leaf16* l = static_cast<Leaf16*>(n);
        for (int i = 0; i < l->count; ++i)
          --loc_counts_[static_cast<std::size_t>(l->vals[i].loc)];
        break;
      }
      case NodeType::kLeaf256: {
        Leaf256* l = static_cast<Leaf256*>(n);
        for (int w = 0; w < 4; ++w) {
          std::uint64_t bits = l->bitmap[w];
          while (bits != 0) {
            const int bit = __builtin_ctzll(bits);
            bits &= bits - 1;
            --loc_counts_[static_cast<std::size_t>(
                l->vals[w * 64 + bit].loc)];
          }
        }
        break;
      }
      case NodeType::kNode4: {
        Node4* x = static_cast<Node4*>(n);
        for (int i = 0; i < x->count; ++i) FreeSubtree(x->children[i]);
        break;
      }
      case NodeType::kNode16: {
        Node16* x = static_cast<Node16*>(n);
        for (int i = 0; i < x->count; ++i) FreeSubtree(x->children[i]);
        break;
      }
      case NodeType::kNode48: {
        Node48* x = static_cast<Node48*>(n);
        for (int i = 0; i < x->count; ++i) FreeSubtree(x->children[i]);
        break;
      }
      case NodeType::kNode256: {
        Node256* x = static_cast<Node256*>(n);
        for (int b = 0; b < 256; ++b)
          if (x->children[b] != nullptr) FreeSubtree(x->children[b]);
        break;
      }
    }
    FreeNode(n);
    return pages;
  }

  std::uint64_t EraseRegionRec(Node*& slot, int depth,
                               const std::uint8_t* rkey) {
    Node* n = slot;
    int i = 0;
    while (i < n->prefix_len && depth + i < kRegionBytes) {
      if (n->prefix[i] != rkey[depth + i]) return 0;
      ++i;
    }
    if (depth + n->prefix_len >= kRegionBytes) {
      // The compressed path pins every region byte: the whole subtree
      // belongs to this region. Unlink it in one splice.
      const std::uint64_t freed = FreeSubtree(n);
      slot = nullptr;
      return freed;
    }
    depth += n->prefix_len;
    // Interior node strictly above the region boundary: descend one edge.
    Node** child = FindChildSlot(n, rkey[depth]);
    if (child == nullptr) return 0;
    const std::uint64_t freed = EraseRegionRec(*child, depth + 1, rkey);
    if (freed != 0) {
      n->subtree_pages -= freed;
      if (*child == nullptr) {
        RemoveChild(n, rkey[depth]);
        FixAfterChildRemoval(slot);
      }
    }
    return freed;
  }

  PageState* FindImpl(const PageRef& p) {
    const std::uint64_t pn = p.addr >> kPageShift;
    if (cached_leaf_ != nullptr && cached_region_ == p.region &&
        cached_block_ == (pn >> 8)) {
      ++cache_hits_;
      return LeafFindRaw(cached_leaf_, ByteOf(pn));
    }
    ++cache_misses_;
    if (root_ == nullptr) return nullptr;
    std::uint8_t key[kKeyLen];
    MakeKey(p, key);
    Node* n = root_;
    int depth = 0;
    while (true) {
      if (Match(n, key, depth) < n->prefix_len) return nullptr;
      depth += n->prefix_len;
      if (IsLeaf(n)) {
        cached_leaf_ = n;
        cached_region_ = p.region;
        cached_block_ = pn >> 8;
        return LeafFindRaw(n, key[kLeafDepth]);
      }
      Node** child = FindChildSlot(n, key[depth]);
      if (child == nullptr) return nullptr;
      n = *child;
      ++depth;
    }
  }

  template <typename F>
  static void WalkRec(const Node* n, int depth, std::uint8_t* kb, F&& f) {
    std::memcpy(kb + depth, n->prefix, n->prefix_len);
    depth += n->prefix_len;
    switch (n->type) {
      case NodeType::kLeaf16: {
        const Leaf16* l = static_cast<const Leaf16*>(n);
        for (int i = 0; i < l->count; ++i) {
          kb[kLeafDepth] = l->keys[i];
          f(RefOf(kb), l->vals[i]);
        }
        return;
      }
      case NodeType::kLeaf256: {
        const Leaf256* l = static_cast<const Leaf256*>(n);
        for (int w = 0; w < 4; ++w) {
          std::uint64_t bits = l->bitmap[w];
          while (bits != 0) {
            const int bit = __builtin_ctzll(bits);
            bits &= bits - 1;
            kb[kLeafDepth] = static_cast<std::uint8_t>(w * 64 + bit);
            f(RefOf(kb), l->vals[w * 64 + bit]);
          }
        }
        return;
      }
      case NodeType::kNode4: {
        const Node4* x = static_cast<const Node4*>(n);
        for (int i = 0; i < x->count; ++i) {
          kb[depth] = x->keys[i];
          WalkRec(x->children[i], depth + 1, kb, f);
        }
        return;
      }
      case NodeType::kNode16: {
        const Node16* x = static_cast<const Node16*>(n);
        for (int i = 0; i < x->count; ++i) {
          kb[depth] = x->keys[i];
          WalkRec(x->children[i], depth + 1, kb, f);
        }
        return;
      }
      case NodeType::kNode48: {
        const Node48* x = static_cast<const Node48*>(n);
        for (int b = 0; b < 256; ++b) {
          if (x->child_index[b] == 0xFF) continue;
          kb[depth] = static_cast<std::uint8_t>(b);
          WalkRec(x->children[x->child_index[b]], depth + 1, kb, f);
        }
        return;
      }
      case NodeType::kNode256: {
        const Node256* x = static_cast<const Node256*>(n);
        for (int b = 0; b < 256; ++b) {
          if (x->children[b] == nullptr) continue;
          kb[depth] = static_cast<std::uint8_t>(b);
          WalkRec(x->children[b], depth + 1, kb, f);
        }
        return;
      }
    }
  }

  static void DecayRec(Node* n) {
    switch (n->type) {
      case NodeType::kLeaf16: {
        Leaf16* l = static_cast<Leaf16*>(n);
        for (int i = 0; i < l->count; ++i)
          l->vals[i].heat = static_cast<std::uint8_t>(l->vals[i].heat >> 1);
        return;
      }
      case NodeType::kLeaf256: {
        Leaf256* l = static_cast<Leaf256*>(n);
        for (int b = 0; b < 256; ++b)
          l->vals[b].heat = static_cast<std::uint8_t>(l->vals[b].heat >> 1);
        return;
      }
      case NodeType::kNode4: {
        Node4* x = static_cast<Node4*>(n);
        for (int i = 0; i < x->count; ++i) DecayRec(x->children[i]);
        return;
      }
      case NodeType::kNode16: {
        Node16* x = static_cast<Node16*>(n);
        for (int i = 0; i < x->count; ++i) DecayRec(x->children[i]);
        return;
      }
      case NodeType::kNode48: {
        Node48* x = static_cast<Node48*>(n);
        for (int i = 0; i < x->count; ++i) DecayRec(x->children[i]);
        return;
      }
      case NodeType::kNode256: {
        Node256* x = static_cast<Node256*>(n);
        for (int b = 0; b < 256; ++b)
          if (x->children[b] != nullptr) DecayRec(x->children[b]);
        return;
      }
    }
  }

  Node* root_ = nullptr;
  std::uint64_t bytes_ = 0;
  std::uint64_t loc_counts_[kPageLocationCount] = {};

  // Hot-node cache: last leaf touched, keyed by its 256-page block.
  mutable Node* cached_leaf_ = nullptr;
  mutable RegionId cached_region_ = 0;
  mutable std::uint64_t cached_block_ = 0;
  mutable std::uint64_t cache_hits_ = 0;
  mutable std::uint64_t cache_misses_ = 0;
  Node* last_leaf_ = nullptr;  // scratch: leaf touched by the last upsert
};

}  // namespace fluid::fm
