#include "fluidmem/monitor.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <utility>
#include <vector>

#include "fluidmem/fault_engine.h"

namespace fluid::fm {

Monitor::Monitor(MonitorConfig config, kv::KvStore& store,
                 mem::FramePool& pool)
    : config_(config),
      store_(&store),
      pool_(&pool),
      rng_(config.seed),
      lru_(config.lru_capacity_pages, config.true_lru,
           std::max<std::size_t>(1, config.fault_shards)),
      tracker_(std::max<std::size_t>(1, config.fault_shards)),
      read_health_(kv::HealthConfig{config.breaker_trip_after,
                                    config.breaker_open_duration}),
      write_health_(kv::HealthConfig{config.breaker_trip_after,
                                     config.breaker_open_duration}),
      engine_(std::make_unique<FaultEngine>(
          *this, std::max<std::size_t>(1, config.fault_shards),
          config.io_window, config.uffd_read_batch,
          config.seed ^ 0x5eed5eedULL)) {
  prefetcher_.Configure(config_.prefetch, config_.prefetch_depth);
}

Monitor::~Monitor() = default;

Status Monitor::PeekSpilled(const PageRef& p,
                            std::span<std::byte, kPageSize> out) const {
  auto it = spill_slots_.find(p);
  if (spill_ == nullptr || it == spill_slots_.end())
    return Status::NotFound("page not in local spill");
  return spill_->device().Peek(it->second, out);
}

Status Monitor::PeekColdTier(const PageRef& p,
                             std::span<std::byte, kPageSize> out) const {
  auto it = cold_slots_.find(p);
  if (cold_ == nullptr || it == cold_slots_.end())
    return Status::NotFound("page not in cold tier");
  return cold_->device().Peek(it->second, out);
}

void Monitor::NoteStoreRead(const kv::OpResult& r) {
  // kNotFound is a healthy answer; only transport-level failure counts.
  if (r.status.ok() || r.status.code() == StatusCode::kNotFound)
    read_health_.RecordSuccess(r.complete_at);
  else if (r.status.code() == StatusCode::kUnavailable ||
           r.status.code() == StatusCode::kDeadlineExceeded)
    read_health_.RecordFailure(r.complete_at);
}

void Monitor::NoteStoreWrite(const kv::OpResult& r) {
  if (r.status.ok())
    write_health_.RecordSuccess(r.complete_at);
  else if (r.status.code() == StatusCode::kUnavailable ||
           r.status.code() == StatusCode::kDeadlineExceeded)
    write_health_.RecordFailure(r.complete_at);
}

RegionId Monitor::RegisterRegion(mem::UffdRegion& region,
                                 PartitionId partition,
                                 std::size_t quota_pages) {
  RegionInfo info{&region, partition, true};
  info.quota_pages =
      quota_pages != 0 ? quota_pages : config_.default_region_quota_pages;
  regions_.push_back(info);
  return static_cast<RegionId>(regions_.size() - 1);
}

Status Monitor::UnregisterRegion(RegionId id, SimTime now,
                                 bool drop_partition) {
  if (id >= regions_.size() || !regions_[id].active)
    return Status::InvalidArgument("unknown region");
  if (drop_partition) {
    // VM shutdown: the partition is deleted below, so any write still
    // buffered for this region is writing dead data — discard the entries
    // and recycle their frames instead of paying store round trips. Pages
    // spilled to the local swap device are dead data too: free the slots.
    for (FrameId f : write_list_.DiscardRegion(id)) pool_->Free(f);
    RetireCompleted(now);
    if (spill_ != nullptr) {
      for (auto it = spill_slots_.begin(); it != spill_slots_.end();) {
        if (it->first.region == id) {
          spill_->Release(it->second);
          it = spill_slots_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (cold_ != nullptr) {
      for (auto it = cold_slots_.begin(); it != cold_slots_.end();) {
        if (it->first.region == id) {
          cold_->Release(it->second);
          it = cold_slots_.erase(it);
        } else {
          ++it;
        }
      }
    }
  } else {
    // Migration hand-off: the destination inherits the partition, so the
    // region's buffered writes must become durable first. If the store
    // would not take them (outage), refuse to unregister — forgetting the
    // region now would strand its only copies in the write list.
    now = DrainWrites(now);
    RetireCompleted(now);
    if (write_list_.HasRegionEntries(id))
      return Status::Unavailable("buffered writes for region not durable");
    // Same durability bar for pages that degraded to the local spill
    // device: the destination cannot see our swap, so push them to the
    // store first; refuse if the store still will not take them.
    if (spill_ != nullptr) {
      std::vector<std::pair<PageRef, blk::BlockNum>> mine;
      for (const auto& [p, slot] : spill_slots_)
        if (p.region == id) mine.emplace_back(p, slot);
      std::sort(mine.begin(), mine.end(),
                [](const auto& a, const auto& b) {
                  return a.first.addr < b.first.addr;
                });
      for (const auto& [p, slot] : mine) {
        auto si = spill_->ReadKeep(
            slot, std::span<std::byte, kPageSize>{scratch_}, now);
        if (!si.status.ok()) {
          ++stats_.spill_errors;
          return Status::Unavailable("spilled page unreadable for migration");
        }
        now = si.io_complete_at;
        kv::OpResult put = store_->Put(
            regions_[id].partition, KeyFor(p),
            std::span<const std::byte, kPageSize>{scratch_}, now);
        NoteStoreWrite(put);
        if (!put.status.ok())
          return Status::Unavailable("spilled pages for region not durable");
        now = put.complete_at;
        spill_->Release(slot);
        spill_slots_.erase(p);
        tracker_.MarkRemote(p);
        ++stats_.spill_migrated_back;
      }
    }
    // Cold-tier pages face the same durability bar: the destination cannot
    // see our local device, so promote them straight into the store.
    if (cold_ != nullptr) {
      std::vector<std::pair<PageRef, blk::BlockNum>> mine;
      for (const auto& [p, slot] : cold_slots_)
        if (p.region == id) mine.emplace_back(p, slot);
      std::sort(mine.begin(), mine.end(),
                [](const auto& a, const auto& b) {
                  return a.first.addr < b.first.addr;
                });
      for (const auto& [p, slot] : mine) {
        auto ci = cold_->ReadKeep(
            slot, std::span<std::byte, kPageSize>{scratch_}, now);
        if (!ci.status.ok()) {
          ++stats_.tier_io_errors;
          return Status::Unavailable(
              "cold-tier page unreadable for migration");
        }
        now = ci.io_complete_at;
        kv::OpResult put = store_->Put(
            regions_[id].partition, KeyFor(p),
            std::span<const std::byte, kPageSize>{scratch_}, now);
        NoteStoreWrite(put);
        if (!put.status.ok())
          return Status::Unavailable("cold-tier pages for region not durable");
        now = put.complete_at;
        cold_->Release(slot);
        cold_slots_.erase(p);
        tracker_.MarkRemote(p);
      }
    }
  }
  // Extract the region's pages from the LRU without evicting to the store
  // (the VM is gone; its memory is discarded). Survivors never move.
  (void)lru_.ExtractRegion(id);
  tracker_.ForgetRegion(id);
  prefetcher_.ForgetRegion(id);
  // Quarantine entries die with the region (shutdown discards the pages;
  // migration hands the partition to a monitor with its own quarantine).
  for (auto it = poisoned_.begin(); it != poisoned_.end();) {
    it = (it->first == id) ? poisoned_.erase(it) : std::next(it);
  }
  if (drop_partition)
    (void)store_->DropPartition(regions_[id].partition, now);
  regions_[id].active = false;
  regions_[id].region = nullptr;
  return Status::Ok();
}

SimTime Monitor::FlushRegion(RegionId id, SimTime now) {
  if (id >= regions_.size() || !regions_[id].active) return now;
  // Extract only this region's pages — other tenants' LRU positions are
  // untouched — then remap them all onto the write list and post the lot
  // as full multi-write batches.
  const std::vector<PageRef> mine = lru_.ExtractRegion(id);

  SimTime t = monitor_.EarliestStart(now);
  const SimTime start = t;
  for (const PageRef& p : mine) {
    t = EvictToWriteList(p, t, /*remap_overlapped=*/false);
    FlushIfNeeded(t);  // posts a full batch whenever one accumulates,
                       // overlapping flush issue with the remap loop
  }
  FlushIfNeeded(t);
  monitor_.Occupy(start, t > start ? t - start : 0);
  return DrainWrites(t);
}

SimDuration Monitor::SampleCost(const LatencyDist& d) {
  SimDuration s = d.Sample(rng_);
  if (!config_.kvm_mode)
    s = static_cast<SimDuration>(static_cast<double>(s) *
                                 config_.costs.full_virt_factor);
  return s;
}

SimTime Monitor::Charge(SimTime t, const LatencyDist& d) {
  return t + SampleCost(d);
}

SimTime Monitor::ChargeProfiled(SimTime t, const LatencyDist& d,
                                CodePath path) {
  const SimDuration s = SampleCost(d);
  profiler_.Record(path, s);
  return t + s;
}

void Monitor::RetireCompleted(SimTime now) {
  RetiredWrites done = write_list_.RetireCompleted(now);
  for (const PendingWrite& w : done.durable) {
    pool_->Free(w.frame);
    tracker_.MarkRemote(w.page);
  }
  // A failed batch never reached the store: the frame still holds the only
  // copy of each page. Put them back on the write list for a later flush
  // (or a steal) instead of marking them remote — that would turn a
  // transient outage into permanent data loss.
  for (const PendingWrite& w : done.failed) {
    write_list_.Enqueue(w.page, w.frame, now);
    tracker_.MarkWriteList(w.page);
    ++stats_.writeback_requeues;
  }
}

bool Monitor::PipelineActive() const noexcept {
  return config_.pipelined_writeback && engine_ != nullptr &&
         engine_->shard_count() > 1;
}

void Monitor::FlushIfNeeded(SimTime now, bool force) {
  if (PipelineActive()) {
    FlushCoalesced(now, force);
    return;
  }
  // Lazy model of the periodic flush thread: post batches while the list
  // has a full batch, anything stale, or we are draining.
  while (write_list_.PendingCount() > 0 &&
         (force || write_list_.PendingCount() >= config_.write_batch_pages ||
          write_list_.OldestPendingAge(now) >= config_.flush_max_age)) {
    // Graceful degradation: with the write breaker open (store down) and a
    // local spill device attached, divert the batch to local swap instead
    // of posting a MultiPut that is known to fail. AllowRequest doubles as
    // the half-open gate — once the open window elapses it admits one
    // MultiPut probe whose outcome decides whether the breaker closes.
    if (spill_ != nullptr && !write_health_.AllowRequest(now)) {
      if (!SpillPending(now)) break;  // spill device full/failing: stop
      continue;
    }
    std::vector<PendingWrite> batch =
        write_list_.TakeBatch(config_.write_batch_pages);
    if (batch.empty()) break;
    // Batches group writes "belonging to the same userfaultfd region"
    // (§V-B): split by region before posting.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const PendingWrite& a, const PendingWrite& b) {
                       return a.page.region < b.page.region;
                     });
    std::size_t i = 0;
    while (i < batch.size()) {
      std::size_t j = i;
      while (j < batch.size() && batch[j].page.region == batch[i].page.region)
        ++j;
      const RegionId rid = batch[i].page.region;
      const PartitionId partition = regions_[rid].partition;

      std::vector<kv::KvWrite> writes;
      writes.reserve(j - i);
      for (std::size_t k = i; k < j; ++k) {
        writes.push_back(kv::KvWrite{
            KeyFor(batch[k].page),
            std::span<const std::byte, kPageSize>{pool_->Data(batch[k].frame)}});
      }
      const SimTime start = flusher_.EarliestStart(now);
      kv::OpResult mp = store_->MultiPut(partition, writes, start);
      // Charge the flusher for the issue work only (start -> issue_done).
      // Charging from `now` would double-count the queueing delay already
      // encoded in `start` and compound across batches posted back to back.
      flusher_.Occupy(now, mp.issue_done > start ? mp.issue_done - start : 0);
      profiler_.Record(
          CodePath::kWritePage,
          (mp.complete_at - start) / std::max<std::size_t>(1, j - i));
      NoteStoreWrite(mp);
      if (!mp.status.ok()) ++stats_.writeback_errors;

      InFlightBatch posted;
      posted.complete_at = mp.complete_at;
      posted.ok = mp.status.ok();
      for (std::size_t k = i; k < j; ++k) {
        // Per-object durability: only the objects the store actually
        // rejected re-enqueue at retirement; acknowledged objects from a
        // partially-failed batch stay durable instead of being re-flushed.
        batch[k].posted_ok = writes[k - i].status.ok();
        posted.writes.push_back(batch[k]);
        tracker_.MarkInFlight(batch[k].page);
      }
      write_list_.AddInFlight(std::move(posted));
      ++stats_.flush_batches;
      stats_.flushed_pages += j - i;
      i = j;
    }
  }
}

void Monitor::FlushCoalesced(SimTime now, bool force) {
  while (write_list_.PendingCount() > 0) {
    // Same degradation gate as the serial flusher: a tripped write breaker
    // diverts pending pages to the local spill device instead of posting
    // batches the store is known to reject.
    if (spill_ != nullptr && !write_health_.AllowRequest(now)) {
      if (!SpillPending(now)) return;
      continue;
    }
    // One scan of the pending FIFO: per-partition population and the age
    // of each partition's oldest entry (groups keep first-seen order, so
    // tie-breaks follow FIFO order of each partition's oldest write).
    struct Group {
      PartitionId partition = 0;
      std::size_t count = 0;
      SimTime oldest = 0;
    };
    std::vector<Group> groups;
    write_list_.ForEachPending([&](const PendingWrite& w) {
      const PartitionId part = regions_[w.page.region].partition;
      for (Group& g : groups) {
        if (g.partition == part) {
          ++g.count;
          return;
        }
      }
      groups.push_back(Group{part, 1, w.enqueued_at});
    });
    // Coalescing flush triggers, mirroring the read-side grouping: a
    // partition flushes when it fills a batch, when its oldest entry goes
    // stale, or when the caller is draining.
    const Group* pick = nullptr;
    for (const Group& g : groups) {
      const SimTime age = g.oldest >= now ? 0 : now - g.oldest;
      if (force || g.count >= config_.write_batch_pages ||
          age >= config_.flush_max_age) {
        pick = &g;
        break;
      }
    }
    if (pick == nullptr) return;
    const PartitionId partition = pick->partition;
    std::vector<PendingWrite> batch = write_list_.TakeBatchIf(
        config_.write_batch_pages, [&](const PendingWrite& w) {
          return regions_[w.page.region].partition == partition;
        });
    if (batch.empty()) return;

    std::vector<kv::KvWrite> writes;
    writes.reserve(batch.size());
    for (const PendingWrite& w : batch)
      writes.push_back(kv::KvWrite{
          KeyFor(w.page),
          std::span<const std::byte, kPageSize>{pool_->Data(w.frame)}});
    // Post on the partition's evictor timeline: same-partition batches
    // keep their post order (the eager data model makes the last MultiPut
    // authoritative for a key), while different partitions' writebacks
    // proceed in parallel instead of serializing on one flusher thread.
    Timeline& tl = engine_->EvictorTimelineFor(partition);
    const SimTime start = tl.EarliestStart(now);
    kv::OpResult mp = store_->MultiPut(partition, writes, start);
    tl.Occupy(start, mp.issue_done > start ? mp.issue_done - start : 0);
    profiler_.Record(CodePath::kWritePage,
                     (mp.complete_at - start) /
                         std::max<std::size_t>(1, batch.size()));
    NoteStoreWrite(mp);
    if (!mp.status.ok()) ++stats_.writeback_errors;
    if (obs_ != nullptr && obs_->enabled()) {
      const auto lane = static_cast<std::uint32_t>(
          static_cast<std::size_t>(partition) % engine_->shard_count());
      for (const PendingWrite& w : batch)
        obs_->RecordPipeline(
            obs::PipeStage::kCoalesceWait, lane, w.enqueued_at,
            start > w.enqueued_at ? start - w.enqueued_at : 0);
      obs_->RecordPipeline(obs::PipeStage::kStoreWrite, lane, start,
                           mp.complete_at > start ? mp.complete_at - start
                                                  : 0);
    }
    InFlightBatch posted;
    posted.complete_at = mp.complete_at;
    posted.ok = mp.status.ok();
    for (std::size_t k = 0; k < batch.size(); ++k) {
      batch[k].posted_ok = writes[k].status.ok();
      posted.writes.push_back(batch[k]);
      tracker_.MarkInFlight(batch[k].page);
    }
    write_list_.AddInFlight(std::move(posted));
    ++stats_.flush_batches;
    stats_.flushed_pages += batch.size();
  }
}

bool Monitor::PopVictimFor(RegionId faulting_region, PageRef* victim) {
  // Quota enforcement: a region over (or at) its quota pays for its own
  // growth; everyone else shares the global insertion-ordered list.
  if (faulting_region < regions_.size()) {
    const RegionInfo& ri = regions_[faulting_region];
    if (ri.quota_pages != 0 &&
        lru_.RegionCount(faulting_region) >= ri.quota_pages) {
      if (lru_.PopVictimOfRegion(faulting_region, victim)) return true;
    }
  }
  return lru_.PopVictim(victim);
}

SimTime Monitor::EvictOneFor(RegionId faulting_region, SimTime t,
                             bool sync_write, bool remap_overlapped,
                             const FaultSchedule* sched,
                             obs::SpanCursor* span) {
  obs::SpanCursor inert;
  obs::SpanCursor& sp = span != nullptr ? *span : inert;
  PageRef victim;
  // Engine mode: the handler evicts from its own LRU slice (or steals from
  // the hottest one); the serial path scans the global insertion order.
  const bool popped =
      (sched != nullptr && sched->engine != nullptr)
          ? sched->engine->PopVictim(faulting_region, sched->shard, &victim)
          : PopVictimFor(faulting_region, &victim);
  if (!popped) return t;
  if (!sync_write) return EvictToWriteList(victim, t, remap_overlapped, span);

  RegionInfo& ri = regions_[victim.region];
  assert(ri.active);

  // UFFD_REMAP: page-table move out of the VM into a monitor-owned frame.
  // When issued while the faulting vCPU is suspended waiting on a network
  // read (the async-read interleave), fewer TLB-shootdown IPIs are needed
  // and the call returns in ~2 us; otherwise it pays the full 4-5 us
  // synchronisation (§V-B).
  t = ChargeProfiled(t,
                     remap_overlapped ? config_.costs.uffd_remap_async
                                      : config_.costs.uffd_remap_sync,
                     CodePath::kUffdRemap);
  sp.Advance(obs::Stage::kEviction, t);
  auto frame = ri.region->Remap(victim.addr);
  if (!frame.ok()) {
    // The page vanished from the region (duplicate event race); nothing to
    // write back.
    tracker_.Forget(victim);
    return t;
  }
  ++stats_.evictions;
  prefetcher_.OnEvicted(victim);
  // Bookkeeping for the evicted page's new location in the pagetracker.
  t = ChargeProfiled(t, config_.costs.insert_page_hash,
                     CodePath::kInsertPageHashNode);
  sp.Advance(obs::Stage::kEviction, t);

  // Table II "Default"/"Async Read": WRITE_PAGE on the critical path.
  const SimTime start = t;
  t = Charge(t, config_.costs.write_page_overhead);
  kv::OpResult put = store_->Put(
      ri.partition, KeyFor(victim),
      std::span<const std::byte, kPageSize>{pool_->Data(*frame)}, t);
  t = put.complete_at;
  sp.Advance(obs::Stage::kWriteback, t);
  profiler_.Record(CodePath::kWritePage, t - start);
  NoteStoreWrite(put);
  if (!put.status.ok()) {
    // The store refused the page; the frame holds its only copy. Fall back
    // to the write list so a later flush (or a steal) can still save it.
    ++stats_.writeback_errors;
    ++stats_.writeback_requeues;
    write_list_.Enqueue(victim, *frame, t);
    tracker_.MarkWriteList(victim);
    return t;
  }
  pool_->Free(*frame);
  tracker_.MarkRemote(victim);
  return t;
}

SimTime Monitor::EvictToWriteList(const PageRef& victim, SimTime t,
                                  bool remap_overlapped,
                                  obs::SpanCursor* span) {
  obs::SpanCursor inert;
  obs::SpanCursor& sp = span != nullptr ? *span : inert;
  RegionInfo& ri = regions_[victim.region];
  assert(ri.active);
  t = ChargeProfiled(t,
                     remap_overlapped ? config_.costs.uffd_remap_async
                                      : config_.costs.uffd_remap_sync,
                     CodePath::kUffdRemap);
  sp.Advance(obs::Stage::kEviction, t);
  auto frame = ri.region->Remap(victim.addr);
  if (!frame.ok()) {
    // The page vanished from the region (duplicate event race); nothing to
    // write back.
    tracker_.Forget(victim);
    return t;
  }
  ++stats_.evictions;
  prefetcher_.OnEvicted(victim);
  t = ChargeProfiled(t, config_.costs.insert_page_hash,
                     CodePath::kInsertPageHashNode);
  sp.Advance(obs::Stage::kEviction, t);
  // Tier placement: a victim whose heat decayed to the cold threshold is
  // not worth a remote-DRAM slot — demote it to the cheap device instead
  // of the write list. Dirty-safe: WriteOut persists the frame's bytes
  // before the frame is freed, and a refault promotes via ReadKeep.
  if (cold_ != nullptr &&
      tracker_.HeatOf(victim) <= config_.tier_cold_threshold) {
    auto so = cold_->WriteOut(
        std::span<const std::byte, kPageSize>{pool_->Data(*frame)}, t);
    if (so.status.ok()) {
      const SimTime io_done = so.io_complete_at;
      pool_->Free(*frame);
      cold_slots_[victim] = so.slot;
      tracker_.MarkColdTier(victim);
      ++stats_.tier_demotions;
      if (obs_ != nullptr && obs_->enabled())
        obs_->RecordPipeline(obs::PipeStage::kTierDemote,
                             io_done > t ? io_done - t : 0);
      t = std::max(t, io_done);
      sp.Advance(obs::Stage::kColdTierIo, t);
      return t;
    }
    // Device full or failing: the frame still holds the only copy — fall
    // back to the normal write-list path.
    if (so.status.code() != StatusCode::kResourceExhausted)
      cold_->Release(so.slot);
    ++stats_.tier_io_errors;
  }
  write_list_.Enqueue(victim, *frame, t);
  tracker_.MarkWriteList(victim);
  return t;
}

FaultOutcome Monitor::HandleFault(RegionId id, VirtAddr addr,
                                  SimTime fault_time) {
  return engine_->Handle(id, addr, fault_time);
}

FaultOutcome Monitor::HandleFaultScheduled(RegionId id, VirtAddr addr,
                                           SimTime fault_time,
                                           const FaultSchedule& sched) {
  // Engine mode runs the fault on the hash-assigned handler worker and
  // consults the engine's hooks (contention, I/O window, group reads,
  // coalescing). The default schedule is the serial monitor thread with
  // every hook disabled — the exact pre-engine path.
  Timeline& worker = sched.worker != nullptr ? *sched.worker : monitor_;
  const bool engine_mode = sched.engine != nullptr && sched.worker != nullptr;
  FaultOutcome out;
  if (id >= regions_.size() || !regions_[id].active) {
    out.status = Status::InvalidArgument("unknown region");
    out.wake_at = fault_time;
    return out;
  }
  RegionInfo& ri = regions_[id];
  addr = PageAlignDown(addr);
  const PageRef p{id, addr};
  ++stats_.faults;

  // Table III: under KVM, fault handling can itself fault; below a minimal
  // residency the recursion cannot make progress.
  if (config_.kvm_mode && lru_.capacity() < config_.kvm_min_resident) {
    out.status = Status::DeadlineExceeded("KVM recursive page fault deadlock");
    out.deadlocked = true;
    out.wake_at = fault_time;
    return out;
  }

  // Span stage attribution (observability). The cursor only records time
  // windows already computed by the path below — it never charges, samples
  // or branches on anything, so traced runs replay identically. An unbound
  // cursor (tracing off) makes every Advance a single null check.
  obs::SpanCursor inert_cursor;
  obs::SpanCursor& span = sched.span != nullptr ? *sched.span : inert_cursor;

  // Guest exit + kernel userfaultfd handling + event delivery (Fig. 2,
  // steps 1-3), then FIFO onto the monitor thread.
  SimTime t = fault_time;
  if (config_.kvm_mode) t = Charge(t, config_.costs.kvm_exit_entry);
  t = Charge(t, config_.costs.uffd_event_delivery);
  span.Advance(obs::Stage::kKernelDelivery, t);
  const SimTime mon_start = worker.EarliestStart(t);
  span.Advance(obs::Stage::kQueueWait, mon_start);
  // Events 2..N of one batched read(2) skip the epoll wakeup and the
  // syscall; only the msg parse + hand-off remains.
  t = Charge(mon_start, sched.batch_follower ? config_.costs.batched_dispatch
                                             : config_.costs.dispatch);
  span.Advance(obs::Stage::kDispatch, t);
  if (engine_mode) {
    // Contention on the shared frame pool and write list: one sampled
    // lock-hold window per peer handler busy at dispatch time.
    t += sched.engine->ChargeLockContention(sched.shard, mon_start);
    span.Advance(obs::Stage::kLockWait, t);
  }

  RetireCompleted(t);

  const bool first = !tracker_.Seen(p);
  out.first_access = first;

  // Inserting this page will push the buffer — or this region's quota —
  // over budget.
  const bool need_evict =
      lru_.NeedsEvictionBeforeInsert() ||
      (ri.quota_pages != 0 && lru_.RegionCount(id) >= ri.quota_pages);

  // Completion-driven pipeline (engine mode, K > 1, flag on): the fault
  // path only DECIDES an eviction is needed; the victim pop, remap and
  // writeback all run on the shard's background evictor after the dequeue
  // batch — the fault loop never serializes on the shared flusher thread.
  const bool pipelined = engine_mode && PipelineActive();

  // Completes the fault at wake time `wake`, then runs deferred eviction
  // work on the monitor thread and reserves the monitor's busy window.
  auto Finish = [&](SimTime wake) -> FaultOutcome {
    if (need_evict && config_.async_write) {
      if (pipelined) {
        sched.engine->DeferEviction(sched.shard, id, wake);
      } else {
        // Asynchronous (blue) path of Fig. 2: the eviction happens after
        // the guest resumed, on the background (flush) thread so the
        // monitor can take the next fault immediately.
        const SimTime ev_start = flusher_.EarliestStart(wake);
        const SimTime ev_done =
            EvictOneFor(id, ev_start, /*sync_write=*/false,
                        /*remap_overlapped=*/false, &sched);
        flusher_.Occupy(ev_start, ev_done > ev_start ? ev_done - ev_start : 0);
        FlushIfNeeded(ev_done);
      }
    }
    worker.Occupy(mon_start, wake > mon_start ? wake - mon_start : 0);
    out.status = Status::Ok();
    out.wake_at = wake;
    return out;
  };
  auto Fail = [&](Status s, SimTime at) -> FaultOutcome {
    worker.Occupy(mon_start, at > mon_start ? at - mon_start : 0);
    out.status = std::move(s);
    out.wake_at = at;
    return out;
  };

  if (first) {
    ++stats_.first_access_faults;
    span.SetKind(obs::FaultKind::kFirstAccess);
    // Pagetracker feature (Fig. 2 step 4): never read the store for a
    // first-time access — install the zero page.
    t = ChargeProfiled(t, config_.costs.insert_page_hash,
                       CodePath::kInsertPageHashNode);
    span.Advance(obs::Stage::kClassify, t);
    if (need_evict && !config_.async_write)
      t = EvictOneFor(id, t, /*sync_write=*/true, /*remap_overlapped=*/false,
                      &sched, &span);
    t = ChargeProfiled(t, config_.costs.uffd_zeropage, CodePath::kUffdZeropage);
    Status zp = ri.region->ZeroPage(addr);
    if (!zp.ok() && zp.code() != StatusCode::kAlreadyExists)
      return Fail(std::move(zp), t);
    t = ChargeProfiled(t, config_.costs.insert_lru,
                       CodePath::kInsertLruCacheNode);
    span.Advance(obs::Stage::kInstall, t);
    lru_.Insert(p);
    tracker_.MarkResident(p);
    BumpHeatOnInstall(p);
    t = Charge(t, config_.costs.wake);
    return Finish(t);
  }

  // ---- page seen before: in the write list, in flight, or remote.
  // The hash lookup that classifies the page is part of dispatch;
  // UPDATE_PAGE_CACHE is the bookkeeping write, charged per branch so an
  // asynchronous remote read can overlap it with the network wait.
  ++stats_.refaults;
  const LatencyDist& upc = config_.costs.update_page_cache;

  // Resolve the tracker's claim against the write list up front. If the
  // two ever desync (tracker says buffered, write list has no entry), fall
  // back to the remote-read path instead of dereferencing an empty
  // optional — in release builds that was undefined behaviour.
  const std::optional<PageLocation> looked_up = tracker_.Lookup(p);
  if (!looked_up.has_value()) {
    // Seen(p) held above, so a miss here means the tracker desynced
    // mid-dispatch. Fall back to the remote-read path, but count it —
    // the old lenient LocationOf() would have hidden this entirely.
    ++stats_.tracker_unknown_pages;
  }
  PageLocation location = looked_up.value_or(PageLocation::kRemote);
  std::optional<FrameId> stolen_frame;
  std::optional<std::pair<SimTime, FrameId>> inflight_steal;
  blk::BlockNum spill_slot = 0;
  blk::BlockNum cold_slot = 0;
  if (location == PageLocation::kWriteList) {
    stolen_frame = write_list_.Steal(p);
    if (!stolen_frame.has_value()) {
      ++stats_.tracker_desyncs;
      location = PageLocation::kRemote;
    }
  } else if (location == PageLocation::kInFlight) {
    inflight_steal = write_list_.StealInFlight(p);
    if (!inflight_steal.has_value()) {
      ++stats_.tracker_desyncs;
      location = PageLocation::kRemote;
    }
  } else if (location == PageLocation::kSpilled) {
    auto it = spill_slots_.find(p);
    if (spill_ == nullptr || it == spill_slots_.end()) {
      ++stats_.tracker_desyncs;
      location = PageLocation::kRemote;
    } else {
      spill_slot = it->second;
    }
  } else if (location == PageLocation::kColdTier) {
    auto it = cold_slots_.find(p);
    if (cold_ == nullptr || it == cold_slots_.end()) {
      ++stats_.tracker_desyncs;
      location = PageLocation::kRemote;
    } else {
      cold_slot = it->second;
    }
  }

  switch (location) {
    case PageLocation::kResident: {
      // Raced with in-kernel resolution (zero-page write upgrade) or a
      // duplicate event; nothing to install.
      span.SetKind(obs::FaultKind::kResident);
      t = ChargeProfiled(t, upc, CodePath::kUpdatePageCache);
      span.Advance(obs::Stage::kClassify, t);
      lru_.Touch(p);
      // A raced demand fault absorbed by a still-resident prefetched page
      // IS the hit the speculation was for — resolve the outcome. Pure
      // bookkeeping, so feature-off replays are untouched.
      if (config_.prefetch_depth != 0) prefetcher_.OnResidentTouch(p);
      BumpHeatOnInstall(p);
      if (engine_mode) {
        // An async read for this page may still have been in flight when
        // this fault was RAISED (the eager install made the page resident
        // before its data actually arrived): this fault is a second waiter
        // on that Get (read dedup) — it must not wake before the data
        // lands. Expiry is judged at raise time, not handler-dispatch
        // time, since the handler may only get to the event afterwards.
        if (const auto ready =
                sched.engine->OutstandingReadCompletion(p, fault_time)) {
          out.waited_in_flight = true;
          t = std::max(t, *ready);
          span.Advance(obs::Stage::kRemoteRead, t);
        }
      }
      t = Charge(t, config_.costs.wake);
      // No LRU insert happened; cancel any deferred eviction.
      worker.Occupy(mon_start, t > mon_start ? t - mon_start : 0);
      out.status = Status::Ok();
      out.wake_at = t;
      return out;
    }

    case PageLocation::kWriteList: {
      // Steal: shortcut both round trips (§V-B).
      span.SetKind(obs::FaultKind::kSteal);
      t = ChargeProfiled(t, upc, CodePath::kUpdatePageCache);
      span.Advance(obs::Stage::kClassify, t);
      const std::optional<FrameId>& frame = stolen_frame;
      ++stats_.steals;
      out.stolen = true;
      if (need_evict && !config_.async_write)
        t = EvictOneFor(id, t, /*sync_write=*/true, /*remap_overlapped=*/false,
                        &sched, &span);
      t = ChargeProfiled(t, config_.costs.uffd_copy, CodePath::kUffdCopy);
      (void)ri.region->Copy(
          addr, std::span<const std::byte, kPageSize>{pool_->Data(*frame)});
      pool_->Free(*frame);
      t = ChargeProfiled(t, config_.costs.insert_lru,
                         CodePath::kInsertLruCacheNode);
      span.Advance(obs::Stage::kInstall, t);
      lru_.Insert(p);
      tracker_.MarkResident(p);
      BumpHeatOnInstall(p);
      t = Charge(t, config_.costs.wake);
      return Finish(t);
    }

    case PageLocation::kInFlight: {
      // "There is no other choice than to wait for the write to complete.
      //  However, the critical path will resume immediately once the
      //  pending write has completed." — then copy from the buffered frame.
      span.SetKind(obs::FaultKind::kInFlightWait);
      t = ChargeProfiled(t, upc, CodePath::kUpdatePageCache);
      span.Advance(obs::Stage::kClassify, t);
      const auto& steal = inflight_steal;
      ++stats_.inflight_waits;
      out.waited_in_flight = true;
      t = std::max(t, steal->first);
      span.Advance(obs::Stage::kWriteback, t);
      if (need_evict && !config_.async_write)
        t = EvictOneFor(id, t, /*sync_write=*/true, /*remap_overlapped=*/false,
                        &sched, &span);
      t = ChargeProfiled(t, config_.costs.uffd_copy, CodePath::kUffdCopy);
      (void)ri.region->Copy(
          addr,
          std::span<const std::byte, kPageSize>{pool_->Data(steal->second)});
      pool_->Free(steal->second);
      t = ChargeProfiled(t, config_.costs.insert_lru,
                         CodePath::kInsertLruCacheNode);
      span.Advance(obs::Stage::kInstall, t);
      lru_.Insert(p);
      tracker_.MarkResident(p);
      BumpHeatOnInstall(p);
      t = Charge(t, config_.costs.wake);
      return Finish(t);
    }

    case PageLocation::kSpilled: {
      // Degradation refault: the page went to local swap while the store
      // was down. Served entirely locally — no store round trip, no
      // dependence on the outage ending.
      span.SetKind(obs::FaultKind::kSpilled);
      t = ChargeProfiled(t, upc, CodePath::kUpdatePageCache);
      span.Advance(obs::Stage::kClassify, t);
      ++stats_.spill_refaults;
      auto si = spill_->ReadKeep(
          spill_slot, std::span<std::byte, kPageSize>{scratch_}, t);
      if (!si.status.ok()) {
        // Device hiccup: the slot still holds the only copy — keep it so
        // the fault can retry (ReadIn would have freed it).
        ++stats_.spill_errors;
        span.Advance(obs::Stage::kLocalSpillIo, si.io_complete_at);
        return Fail(si.status, si.io_complete_at);
      }
      t = si.io_complete_at;
      span.Advance(obs::Stage::kLocalSpillIo, t);
      spill_->Release(spill_slot);
      spill_slots_.erase(p);
      if (need_evict && !config_.async_write)
        t = EvictOneFor(id, t, /*sync_write=*/true,
                        /*remap_overlapped=*/false, &sched, &span);
      t = ChargeProfiled(t, config_.costs.uffd_copy, CodePath::kUffdCopy);
      (void)ri.region->Copy(
          addr, std::span<const std::byte, kPageSize>{scratch_});
      t = ChargeProfiled(t, config_.costs.insert_lru,
                         CodePath::kInsertLruCacheNode);
      span.Advance(obs::Stage::kInstall, t);
      lru_.Insert(p);
      tracker_.MarkResident(p);
      BumpHeatOnInstall(p);
      t = Charge(t, config_.costs.wake);
      return Finish(t);
    }

    case PageLocation::kColdTier: {
      // Tier promotion: the page's heat decayed and an eviction demoted it
      // to the cheap device; this refault brings it back to DRAM. Served
      // locally — no store round trip.
      span.SetKind(obs::FaultKind::kColdTier);
      t = ChargeProfiled(t, upc, CodePath::kUpdatePageCache);
      span.Advance(obs::Stage::kClassify, t);
      auto ci = cold_->ReadKeep(
          cold_slot, std::span<std::byte, kPageSize>{scratch_}, t);
      if (!ci.status.ok()) {
        // Device hiccup: the slot still holds the only copy — keep it so
        // the fault can retry.
        ++stats_.tier_io_errors;
        span.Advance(obs::Stage::kColdTierIo, ci.io_complete_at);
        return Fail(ci.status, ci.io_complete_at);
      }
      t = ci.io_complete_at;
      span.Advance(obs::Stage::kColdTierIo, t);
      cold_->Release(cold_slot);
      cold_slots_.erase(p);
      ++stats_.tier_promotions;
      if (need_evict && !config_.async_write)
        t = EvictOneFor(id, t, /*sync_write=*/true,
                        /*remap_overlapped=*/false, &sched, &span);
      t = ChargeProfiled(t, config_.costs.uffd_copy, CodePath::kUffdCopy);
      (void)ri.region->Copy(
          addr, std::span<const std::byte, kPageSize>{scratch_});
      t = ChargeProfiled(t, config_.costs.insert_lru,
                         CodePath::kInsertLruCacheNode);
      span.Advance(obs::Stage::kInstall, t);
      lru_.Insert(p);
      tracker_.MarkResident(p);
      // A promotion is strong evidence of renewed use: re-heat to the
      // ceiling so the page does not bounce straight back out.
      tracker_.BumpHeat(p, config_.page_heat_max, config_.page_heat_max);
      t = Charge(t, config_.costs.wake);
      return Finish(t);
    }

    case PageLocation::kRemote: {
      span.SetKind(obs::FaultKind::kRemote);
      const kv::Key key = KeyFor(p);
      // Quarantined page: its last read failed envelope verification on
      // every available copy. Fail fast with DataLoss — never wrong
      // bytes, never a wasted store round trip; the background re-probe
      // lifts the quarantine once anti-entropy repaired the store copy.
      if (!poisoned_.empty() && poisoned_.contains({id, p.addr})) {
        ++stats_.poisoned_fast_fails;
        return Fail(Status::DataLoss("page quarantined pending repair"), t);
      }
      // Bounded per-fault stall during an outage: with the read breaker
      // open (and local spill attached, i.e. degradation is on), refuse
      // the read immediately instead of paying the dead store's timeout.
      // The page stays kRemote; the fault retries once the breaker lets a
      // probe through.
      if (spill_ != nullptr && !read_health_.AllowRequest(t)) {
        ++stats_.breaker_fast_fails;
        return Fail(Status::Unavailable("remote store breaker open"), t);
      }
      const SimTime read_start = t;
      bool evict_deferred_flag = false;
      // Engine mode frees the worker between posting the read and the
      // data's arrival (split occupancy); the serial monitor blocks.
      bool split_occupancy = false;
      SimTime bh_start = 0;
      if (config_.async_read) {
        // Top half: post the read, then run the eviction *and* the fault's
        // bookkeeping (LRU insert, tracker update, buffer prep) during the
        // network wait (§V-B "asynchronous reads": UFFD_REMAP executes
        // while the vCPU thread is already suspended and the read is in
        // flight). Only UFFDIO_COPY truly needs the data.
        kv::OpResult rd;
        bool from_group = false;
        if (engine_mode) {
          // Bytes already fetched by the shard's batched MultiGet: claim
          // them instead of issuing a duplicate Get. The group read paid
          // the batch RTT (and the client overhead) once for the whole
          // shard batch.
          if (auto g = sched.engine->TakeGroupRead(p)) {
            scratch_ = g->bytes;
            rd.status = Status::Ok();
            rd.issue_done = t;
            rd.complete_at = std::max(t, g->available_at);
            from_group = true;
          }
        }
        if (!from_group) {
          t = Charge(t, config_.costs.read_page_overhead);
          // Bounded outstanding-op window: a shard with io_window reads in
          // flight waits for the oldest before posting another.
          if (engine_mode) t = sched.engine->GateWindow(sched.shard, t);
          rd = store_->Get(ri.partition, key,
                           std::span<std::byte, kPageSize>{scratch_}, t);
          NoteStoreRead(rd);
          if (!rd.status.ok()) {
            // kNotFound on a believed-remote page means the store lost data
            // it acknowledged; kDataLoss means no copy passed envelope
            // verification — quarantine the page so later faults fail fast
            // instead of re-reading rot; anything else (outage, injected
            // fault) is transient — the page stays kRemote and the fault
            // can retry.
            if (rd.status.code() == StatusCode::kNotFound) {
              ++stats_.lost_page_errors;
            } else if (rd.status.code() == StatusCode::kDataLoss) {
              ++stats_.poisoned_page_errors;
              poisoned_.insert({id, p.addr});
            } else {
              ++stats_.transient_read_errors;
            }
            span.Advance(obs::Stage::kRemoteRead, rd.complete_at);
            return Fail(rd.status, rd.complete_at);
          }
          if (engine_mode)
            sched.engine->NoteReadPosted(sched.shard, p, rd.complete_at);
        }
        t = rd.issue_done;
        span.Advance(obs::Stage::kRemoteRead, t);
        t = ChargeProfiled(t, upc, CodePath::kUpdatePageCache);
        span.Advance(obs::Stage::kClassify, t);
        if (need_evict) {
          if (!config_.async_write) {
            // Sync writeback: the eviction (and its store write) stays on
            // the fault path, overlapping the read wait.
            t = EvictOneFor(id, t, /*sync_write=*/true,
                            /*remap_overlapped=*/true, &sched, &span);
          } else if (pipelined) {
            // Pipelined mode keeps ALL async evictions off the fault span:
            // even an in-shadow eviction can outlast the read on a fast
            // backend, and the victim pop contends on the shared LRU. The
            // background evictor handles it after the batch.
            evict_deferred_flag = true;
          } else if (t < rd.complete_at) {
            // The read is still in flight: evict for free in its shadow.
            t = EvictOneFor(id, t, /*sync_write=*/false,
                            /*remap_overlapped=*/true, &sched, &span);
          } else {
            // Data already arrived (fast backend): do not delay the wake;
            // evict after the guest resumes.
            evict_deferred_flag = true;
          }
        }
        t = ChargeProfiled(t, config_.costs.insert_lru,
                           CodePath::kInsertLruCacheNode);
        span.Advance(obs::Stage::kInstall, t);
        lru_.Insert(p);
        tracker_.MarkResident(p);
        BumpHeatOnInstall(p);
        // READ_PAGE profiles the store read itself (top half through data
        // arrival), not whatever work overlapped it.
        profiler_.Record(CodePath::kReadPage,
                         rd.complete_at > read_start
                             ? rd.complete_at - read_start
                             : 0);
        if (engine_mode) {
          // Top half done: release the worker for the data wait so it can
          // take the next fault — the concurrency a handler pool actually
          // buys. The bottom half (copy + wake) re-queues on the worker
          // when the data lands.
          const SimTime top_end = t;
          worker.Occupy(mon_start,
                        top_end > mon_start ? top_end - mon_start : 0);
          bh_start = worker.EarliestStart(std::max(top_end, rd.complete_at));
          split_occupancy = true;
          // The data wait is remote-read time; any further delay until the
          // worker can take the bottom half is queueing.
          span.Advance(obs::Stage::kRemoteRead,
                       std::max(top_end, rd.complete_at));
          span.Advance(obs::Stage::kQueueWait, bh_start);
          t = ChargeProfiled(bh_start, config_.costs.uffd_copy,
                             CodePath::kUffdCopy);
          span.Advance(obs::Stage::kInstall, t);
        } else {
          // Bottom half: wait for the data if it has not arrived yet.
          t = std::max(t, rd.complete_at);
          span.Advance(obs::Stage::kRemoteRead, t);
          t = ChargeProfiled(t, config_.costs.uffd_copy, CodePath::kUffdCopy);
          span.Advance(obs::Stage::kInstall, t);
        }
        (void)ri.region->Copy(
            addr, std::span<const std::byte, kPageSize>{scratch_});
      } else {
        // Synchronous read, then (optionally synchronous) eviction.
        t = ChargeProfiled(t, upc, CodePath::kUpdatePageCache);
        span.Advance(obs::Stage::kClassify, t);
        t = Charge(t, config_.costs.read_page_overhead);
        kv::OpResult rd = store_->Get(
            ri.partition, key, std::span<std::byte, kPageSize>{scratch_}, t);
        NoteStoreRead(rd);
        if (!rd.status.ok()) {
          if (rd.status.code() == StatusCode::kNotFound) {
            ++stats_.lost_page_errors;
          } else if (rd.status.code() == StatusCode::kDataLoss) {
            ++stats_.poisoned_page_errors;
            poisoned_.insert({id, p.addr});
          } else {
            ++stats_.transient_read_errors;
          }
          span.Advance(obs::Stage::kRemoteRead, rd.complete_at);
          return Fail(rd.status, rd.complete_at);
        }
        t = rd.complete_at;
        span.Advance(obs::Stage::kRemoteRead, t);
        profiler_.Record(CodePath::kReadPage, t - read_start);
        // With synchronous writeback the eviction blocks the fault; with
        // the write list it is deferred until after the wake (Fig. 2's
        // blue path), handled below.
        if (need_evict && !config_.async_write)
          t = EvictOneFor(id, t, /*sync_write=*/true,
                          /*remap_overlapped=*/false, &sched, &span);
        t = ChargeProfiled(t, config_.costs.uffd_copy, CodePath::kUffdCopy);
        (void)ri.region->Copy(
            addr, std::span<const std::byte, kPageSize>{scratch_});
        t = ChargeProfiled(t, config_.costs.insert_lru,
                           CodePath::kInsertLruCacheNode);
        span.Advance(obs::Stage::kInstall, t);
        lru_.Insert(p);
        tracker_.MarkResident(p);
        BumpHeatOnInstall(p);
      }
      t = Charge(t, config_.costs.wake);
      const SimTime wake = t;
      SimTime background_done = wake;
      const bool deferred_evict_pending =
          need_evict && config_.async_write &&
          (!config_.async_read || evict_deferred_flag);
      if (deferred_evict_pending) {
        if (pipelined) {
          sched.engine->DeferEviction(sched.shard, id, wake);
        } else {
          // The eviction could not overlap anything useful: run it after
          // the guest resumed (Fig. 2's blue path), off the monitor's
          // fault loop.
          const SimTime ev_start = flusher_.EarliestStart(wake);
          background_done = EvictOneFor(id, ev_start, /*sync_write=*/false,
                                        /*remap_overlapped=*/false, &sched);
          flusher_.Occupy(ev_start, background_done > ev_start
                                        ? background_done - ev_start
                                        : 0);
        }
      }
      if (split_occupancy)
        worker.Occupy(bh_start, wake > bh_start ? wake - bh_start : 0);
      else
        worker.Occupy(mon_start, wake > mon_start ? wake - mon_start : 0);
      FlushIfNeeded(background_done);
      PrefetchAfter(id, addr, wake);
      out.status = Status::Ok();
      out.wake_at = wake;
      return out;
    }
  }
  return Fail(Status::Internal("unreachable"), t);
}

void Monitor::PrefetchAfter(RegionId id, VirtAddr addr, SimTime now) {
  if (config_.prefetch_depth == 0) return;
  RegionInfo& ri = regions_[id];

  // Ask the predictor for this fault's window: the legacy sequential
  // stream detector or the Leap majority-vote stride, with the adaptive
  // window and the accuracy gate applied inside. Pure bookkeeping — no
  // RNG, no virtual time — so the decision replays with the fault stream.
  const PrefetchDecision dec = prefetcher_.OnRemoteFault(id, addr);
  if (dec.depth == 0) return;

  // Collect the fetchable window along the predicted stride: pages the VM
  // has used before that are safely remote. Never-touched pages keep their
  // first-fault (zero-fill) semantics, and write-list pages are already
  // local. Walking off the region ends the window.
  const std::int64_t step =
      dec.stride_pages * static_cast<std::int64_t>(kPageSize);
  std::vector<PageRef> candidates;
  for (std::size_t d = 1; d <= dec.depth; ++d) {
    const VirtAddr next =
        addr + static_cast<VirtAddr>(step * static_cast<std::int64_t>(d));
    if (!ri.region->Contains(next)) break;
    const PageRef p{id, next};
    if (tracker_.Lookup(p) == PageLocation::kRemote) candidates.push_back(p);
  }
  if (candidates.empty()) return;

  // Same degradation gate as the demand-read paths (PostGroupReads, the
  // kRemote arm): with the read breaker open, speculative readahead must
  // not hammer the dead store — or spend the half-open window's single
  // probe token on a read nobody is waiting for.
  if (spill_ != nullptr && !read_health_.AllowRequest(now)) {
    ++stats_.prefetch_breaker_skips;
    return;
  }

  // The speculative MultiGet runs on its own readahead lane: it used to
  // ride the flusher timeline, where a large window could push coalesced
  // writeback (and deferred evictions) behind a read nobody is blocked on.
  Timeline& lane = prefetch_lane_;
  const auto lane_id = static_cast<std::uint32_t>(engine_->shard_count());
  SimTime t = lane.EarliestStart(now);
  const SimTime start = t;

  // One multiRead round trip for the whole window (RAMCloud §4; other
  // stores fall back to pipelined singles through the default adapter).
  std::vector<std::array<std::byte, kPageSize>> bufs(candidates.size());
  std::vector<kv::KvRead> reads;
  reads.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i)
    reads.push_back(kv::KvRead{KeyFor(candidates[i]), bufs[i], {}});
  kv::OpResult mg = store_->MultiGet(ri.partition, reads, t);
  NoteStoreRead(mg);
  t = mg.issue_done;
  if (!mg.status.ok()) {
    // Wholesale batch failure: a transport-level failure stamps every
    // per-key slot, so the slots are not install-grade evidence. Skip the
    // installs — but the lane still paid for the round trip, so charge
    // through the batch's completion.
    ++stats_.prefetch_failed_batches;
    t = std::max(t, mg.complete_at);
    if (obs_ != nullptr && obs_->enabled())
      obs_->RecordPipeline(obs::PipeStage::kPrefetchRead, lane_id, start,
                           t > start ? t - start : 0);
    lane.Occupy(start, t > start ? t - start : 0);
    return;
  }
  const SimTime read_done = std::max(t, mg.complete_at);

  PageRef last_considered{};
  bool any = false;
  std::vector<PageRef> installed_this_batch;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    // Continuation point for the window extension below: the last
    // candidate the loop actually CONSIDERED — installed, skipped, or
    // abandoned to the churn guard — not unconditionally the last
    // installed page. A truncated batch must not pretend it covered the
    // whole window, or the next window-end fault misses the stream.
    last_considered = candidates[i];
    if (!reads[i].status.ok()) {
      // Per-key failure: the slot is not install-grade. A kDataLoss slot
      // means no copy of that page passed envelope verification — charge
      // the corruption path and quarantine exactly like a demand read
      // would, so later faults fail fast into the repair flow instead of
      // re-reading rot.
      if (reads[i].status.code() == StatusCode::kDataLoss &&
          !poisoned_.contains({id, candidates[i].addr})) {
        ++stats_.poisoned_page_errors;
        poisoned_.insert({id, candidates[i].addr});
      }
      continue;  // lost race, store hiccup, or rot: never installed
    }
    // Make room first so the insert cannot overflow the budget — neither
    // the global one nor this region's quota. Prefetched pages count
    // against the faulting tenant exactly like demand-faulted ones;
    // otherwise a streaming tenant's readahead squeezes out its
    // neighbours. PopVictimFor picks the region's own oldest page when the
    // quota is the binding constraint.
    const bool over_quota =
        ri.quota_pages != 0 && lru_.RegionCount(id) >= ri.quota_pages;
    if (lru_.NeedsEvictionBeforeInsert() || over_quota) {
      // Self-eviction churn guard: if the page the eviction below would
      // pick was installed by THIS batch (a quota-bound region installing
      // more candidates than it has room for), installing further pages
      // just cycles them straight back out through the write list. Stop;
      // the rest of the window stays remote for a later demand fault.
      PageRef would_evict{};
      const bool peeked = over_quota
                              ? lru_.PeekVictimOfRegion(id, &would_evict)
                              : lru_.PeekVictim(&would_evict);
      if (peeked &&
          std::find(installed_this_batch.begin(), installed_this_batch.end(),
                    would_evict) != installed_this_batch.end()) {
        ++stats_.prefetch_churn_stops;
        break;
      }
      t = EvictOneFor(id, t, /*sync_write=*/false, /*remap_overlapped=*/true);
    }
    Status cp = ri.region->Copy(
        candidates[i].addr, std::span<const std::byte, kPageSize>{bufs[i]});
    if (!cp.ok()) continue;  // raced with an in-kernel install
    lru_.Insert(candidates[i]);
    tracker_.MarkResident(candidates[i]);
    prefetcher_.MarkPrefetched(candidates[i]);
    ++stats_.prefetched_pages;
    installed_this_batch.push_back(candidates[i]);
    any = true;
  }
  if (any) {
    // Readahead-window extension: the next fault at the end of the
    // covered run continues the stream rather than resetting it.
    prefetcher_.OnBatchEnd(id, last_considered.addr);
  }
  t = std::max(t, mg.complete_at);
  t = Charge(t, config_.costs.uffd_copy);  // batch install bookkeeping
  if (obs_ != nullptr && obs_->enabled()) {
    obs_->RecordPipeline(obs::PipeStage::kPrefetchRead, lane_id, start,
                         read_done > start ? read_done - start : 0);
    obs_->RecordPipeline(obs::PipeStage::kPrefetchInstall, lane_id, read_done,
                         t > read_done ? t - read_done : 0);
  }
  lane.Occupy(start, t > start ? t - start : 0);
  FlushIfNeeded(t);
}

SimTime Monitor::SetLruCapacity(std::size_t pages, SimTime now) {
  lru_.SetCapacity(pages);
  SimTime t = monitor_.EarliestStart(now);
  const SimTime start = t;
  // Collect every victim first (the LRU must not be mutated mid-scan),
  // then remap them in one pass; the flusher posts full multi-write
  // batches as they accumulate, overlapping with the remap loop.
  std::vector<PageRef> victims;
  PageRef victim;
  while (lru_.OverCapacity() && lru_.PopVictim(&victim))
    victims.push_back(victim);
  for (const PageRef& p : victims) {
    t = EvictToWriteList(p, t, /*remap_overlapped=*/false);
    FlushIfNeeded(t);
  }
  monitor_.Occupy(start, t > start ? t - start : 0);
  return t;
}

SimTime Monitor::SetRegionQuota(RegionId id, std::size_t pages,
                                SimTime now) {
  if (id >= regions_.size() || !regions_[id].active) return now;
  regions_[id].quota_pages = pages;
  SimTime t = monitor_.EarliestStart(now);
  const SimTime start = t;
  // Same batch shape as SetLruCapacity, drawing victims from the region's
  // own sublist (O(1) each) so other tenants' pages never move.
  std::vector<PageRef> victims;
  PageRef victim;
  while (pages != 0 && lru_.RegionCount(id) > pages &&
         lru_.PopVictimOfRegion(id, &victim))
    victims.push_back(victim);
  for (const PageRef& p : victims) {
    t = EvictToWriteList(p, t, /*remap_overlapped=*/false);
    FlushIfNeeded(t);
  }
  monitor_.Occupy(start, t > start ? t - start : 0);
  return t;
}

void Monitor::ProbePoisoned(SimTime now) {
  if (poisoned_.empty()) return;
  // Bounded work per tick, deterministic order (the set is sorted). A
  // clean read means anti-entropy repaired the store copy: lift the
  // quarantine. The probe's bytes are discarded — the page stays kRemote
  // and the next fault re-reads (and re-verifies) the repaired copy.
  std::size_t budget = 4;
  for (auto it = poisoned_.begin(); it != poisoned_.end() && budget > 0;
       --budget) {
    const auto [id, addr] = *it;
    kv::OpResult rd =
        store_->Get(regions_[id].partition, kv::MakePageKey(addr),
                    std::span<std::byte, kPageSize>{scratch_}, now);
    if (rd.status.ok()) {
      it = poisoned_.erase(it);
      ++stats_.poison_cleared;
    } else {
      ++it;
    }
  }
}

void Monitor::PumpBackground(SimTime now) {
  // Store-side maintenance first (RAMCloud coordinator recovery, replica
  // anti-entropy repair) — recovering the backend may unblock the flush.
  now = std::max(now, store_->PumpMaintenance(now));
  // Quarantine re-probes ride behind the repair pass: pages it fixed
  // return to service on the same tick.
  ProbePoisoned(now);
  // Tier placement: one exponential-decay sweep per background tick, so
  // "hot" means "touched since the last couple of pumps". Unconditional:
  // heat is replay-neutral bookkeeping (no randomness, no time), and
  // decaying it only when a cold tier is attached let stale warmup heat
  // skew the first demotion choices after a mid-run AttachColdTier.
  tracker_.DecayHeat();
  // Pipelined mode: any evictions still queued from the last dequeue batch
  // run now, so a quiescent monitor converges to the same steady state as
  // the serial one (LRU at budget, dirty pages on the write list).
  if (PipelineActive()) engine_->DrainEvictions();
  RetireCompleted(now);
  FlushIfNeeded(now);
  MigrateSpillBack(now);
  if (obs_ != nullptr) obs_->MaybeSample(now);
}

void Monitor::AttachObservability(obs::Observability& obs) {
  obs_ = &obs;
  // Gauges are cheap callbacks over the stats structs the subsystems
  // already maintain — the structs stay the source of truth and the hot
  // paths touch nothing new. Evaluated only at Snapshot()/MaybeSample().
  obs::MetricsRegistry& m = obs.metrics();
  auto g = [&m](std::string_view name, std::function<double()> fn) {
    m.Gauge(name, std::move(fn));
  };
  const MonitorStats& st = stats_;
  g("monitor.faults", [&st] { return double(st.faults); });
  g("monitor.first_access_faults",
    [&st] { return double(st.first_access_faults); });
  g("monitor.refaults", [&st] { return double(st.refaults); });
  g("monitor.steals", [&st] { return double(st.steals); });
  g("monitor.inflight_waits", [&st] { return double(st.inflight_waits); });
  g("monitor.evictions", [&st] { return double(st.evictions); });
  g("monitor.flush_batches", [&st] { return double(st.flush_batches); });
  g("monitor.flushed_pages", [&st] { return double(st.flushed_pages); });
  g("monitor.prefetched_pages",
    [&st] { return double(st.prefetched_pages); });
  g("monitor.prefetch_failed_batches",
    [&st] { return double(st.prefetch_failed_batches); });
  g("monitor.prefetch_breaker_skips",
    [&st] { return double(st.prefetch_breaker_skips); });
  g("monitor.prefetch_churn_stops",
    [&st] { return double(st.prefetch_churn_stops); });
  g("monitor.tracker_desyncs", [&st] { return double(st.tracker_desyncs); });
  g("monitor.tracker_unknown_pages",
    [&st] { return double(st.tracker_unknown_pages); });
  g("monitor.tracker_index_bytes",
    [this] { return double(tracker_.ApproxBytes()); });
  g("monitor.tier_demotions", [&st] { return double(st.tier_demotions); });
  g("monitor.tier_promotions", [&st] { return double(st.tier_promotions); });
  g("monitor.tier_io_errors", [&st] { return double(st.tier_io_errors); });
  g("monitor.cold_tier_pages",
    [this] { return double(cold_slots_.size()); });
  const PrefetcherStats& ps = prefetcher_.stats();
  g("prefetch.predictions", [&ps] { return double(ps.predictions); });
  g("prefetch.no_trend", [&ps] { return double(ps.no_trend); });
  g("prefetch.hits", [&ps] { return double(ps.hits); });
  g("prefetch.wasted", [&ps] { return double(ps.wasted); });
  g("prefetch.gated_skips", [&ps] { return double(ps.gated_skips); });
  g("prefetch.gate_probes", [&ps] { return double(ps.gate_probes); });
  g("prefetch.unused_pages",
    [this] { return double(prefetcher_.UnusedPrefetchedPages()); });
  g("monitor.writeback_errors",
    [&st] { return double(st.writeback_errors); });
  g("monitor.transient_read_errors",
    [&st] { return double(st.transient_read_errors); });
  g("monitor.spilled_pages", [&st] { return double(st.spilled_pages); });
  g("monitor.spill_refaults", [&st] { return double(st.spill_refaults); });
  g("monitor.breaker_fast_fails",
    [&st] { return double(st.breaker_fast_fails); });
  g("monitor.poisoned_page_errors",
    [&st] { return double(st.poisoned_page_errors); });
  g("monitor.poisoned_fast_fails",
    [&st] { return double(st.poisoned_fast_fails); });
  g("monitor.poison_cleared", [&st] { return double(st.poison_cleared); });
  g("monitor.poisoned_pages", [this] { return double(poisoned_.size()); });
  g("monitor.resident_pages", [this] { return double(lru_.size()); });
  g("monitor.write_list_pending",
    [this] { return double(write_list_.PendingCount()); });
  const FaultEngine* eng = engine_.get();
  g("engine.faults", [eng] { return double(eng->TotalStats().faults); });
  g("engine.batched_reads",
    [eng] { return double(eng->TotalStats().batched_reads); });
  g("engine.coalesced_reads",
    [eng] { return double(eng->TotalStats().coalesced_reads); });
  g("engine.work_steals",
    [eng] { return double(eng->TotalStats().work_steals); });
  g("engine.io_window_waits",
    [eng] { return double(eng->TotalStats().io_window_waits); });
  g("engine.deferred_evictions",
    [eng] { return double(eng->TotalStats().deferred_evictions); });
  g("engine.lock_wait_ns",
    [eng] { return double(eng->TotalStats().lock_wait_total); });
  const kv::StoreStats* ss = &store_->stats();
  g("store.gets", [ss] { return double(ss->gets); });
  g("store.puts", [ss] { return double(ss->puts); });
  g("store.retries", [ss] { return double(ss->retries); });
  g("store.hedged_reads", [ss] { return double(ss->hedged_reads); });
  g("store.hedge_wins", [ss] { return double(ss->hedge_wins); });
  g("store.deadline_exceeded",
    [ss] { return double(ss->deadline_exceeded); });
  g("uffd.total_queued", [this] {
    std::uint64_t n = 0;
    for (const RegionInfo& ri : regions_)
      if (ri.active && ri.region != nullptr)
        n += ri.region->TotalQueuedEvents();
    return double(n);
  });
  g("uffd.peak_queue_depth", [this] {
    std::size_t peak = 0;
    for (const RegionInfo& ri : regions_)
      if (ri.active && ri.region != nullptr)
        peak = std::max(peak, ri.region->PeakQueueDepth());
    return double(peak);
  });
}

bool Monitor::SpillPending(SimTime now) {
  if (spill_ == nullptr) return false;
  std::vector<PendingWrite> batch =
      write_list_.TakeBatch(config_.write_batch_pages);
  if (batch.empty()) return false;
  bool progressed = false;
  SimTime t = flusher_.EarliestStart(now);
  const SimTime start = t;
  for (const PendingWrite& w : batch) {
    auto so = spill_->WriteOut(
        std::span<const std::byte, kPageSize>{pool_->Data(w.frame)}, t);
    if (!so.status.ok()) {
      // Device write error still consumed a slot (full pool did not);
      // either way the frame keeps the only copy — back to the list.
      if (so.status.code() != StatusCode::kResourceExhausted)
        spill_->Release(so.slot);
      ++stats_.spill_errors;
      write_list_.Enqueue(w.page, w.frame, t);
      tracker_.MarkWriteList(w.page);
      continue;
    }
    t = std::max(t, so.io_complete_at);
    pool_->Free(w.frame);
    spill_slots_[w.page] = so.slot;
    tracker_.MarkSpilled(w.page);
    ++stats_.spilled_pages;
    progressed = true;
  }
  flusher_.Occupy(start, t > start ? t - start : 0);
  return progressed;
}

void Monitor::MigrateSpillBack(SimTime now) {
  if (spill_ == nullptr || spill_slots_.empty()) return;
  // Never while the breaker is open. In the half-open window the first Put
  // below doubles as the probe (AllowRequest takes the probe token), so
  // rebalancing does not depend on fresh write traffic to close the
  // breaker first.
  if (write_health_.StateAt(now) == kv::BreakerState::kOpen) return;
  if (write_health_.tripped() && !write_health_.AllowRequest(now)) return;

  // Deterministic order regardless of hash-map iteration.
  std::vector<std::pair<PageRef, blk::BlockNum>> entries(spill_slots_.begin(),
                                                         spill_slots_.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              if (a.first.region != b.first.region)
                return a.first.region < b.first.region;
              return a.first.addr < b.first.addr;
            });
  SimTime t = flusher_.EarliestStart(now);
  const SimTime start = t;
  std::size_t moved = 0;
  for (const auto& [p, slot] : entries) {
    if (moved >= config_.spill_migrate_batch) break;
    auto si = spill_->ReadKeep(
        slot, std::span<std::byte, kPageSize>{scratch_}, t);
    if (!si.status.ok()) {
      ++stats_.spill_errors;  // transient device error: retry next pump
      continue;
    }
    t = si.io_complete_at;
    kv::OpResult put = store_->Put(
        regions_[p.region].partition, KeyFor(p),
        std::span<const std::byte, kPageSize>{scratch_}, t);
    NoteStoreWrite(put);
    if (!put.status.ok()) break;  // store went away again; breaker re-arms
    t = put.complete_at;
    spill_->Release(slot);
    spill_slots_.erase(p);
    tracker_.MarkRemote(p);
    ++stats_.spill_migrated_back;
    ++moved;
  }
  flusher_.Occupy(start, t > start ? t - start : 0);
}

SimTime Monitor::DrainWrites(SimTime now) {
  // Failed batches re-enqueue on retirement, so a single flush pass is not
  // enough under store faults: keep re-posting until the list is empty or
  // the retry budget runs out (persistent outage — the writes stay
  // buffered rather than being dropped). Each failed round feeds the
  // write breaker, so under a real outage the later rounds divert to the
  // local spill device instead of hammering the dead store.
  const int max_rounds =
      static_cast<int>(std::max<std::size_t>(1, config_.max_drain_rounds));
  // Deferred evictions hold pages that belong on the write list; a drain
  // must see them or it under-reports what needs flushing.
  if (PipelineActive()) engine_->DrainEvictions();
  SimTime done = now;
  for (int round = 0; round < max_rounds; ++round) {
    FlushIfNeeded(done, /*force=*/true);
    if (write_list_.InFlightCount() == 0 && write_list_.PendingCount() == 0)
      break;
    done = std::max(done, write_list_.LatestCompletion());
    RetireCompleted(done);
    if (write_list_.PendingCount() == 0) break;
  }
  if (write_list_.PendingCount() > 0 || write_list_.InFlightCount() > 0) {
    ++stats_.drain_budget_exhausted;
    // Last resort before leaving writes buffered: if degradation is armed
    // and the breaker agrees the store is gone, spill the remainder so
    // the caller (shutdown, migration prep) sees a bounded drain.
    if (spill_ != nullptr && write_health_.tripped()) {
      done = std::max(done, write_list_.LatestCompletion());
      RetireCompleted(done);
      while (SpillPending(done)) {
      }
    }
  }
  return done;
}

}  // namespace fluid::fm
