// Remote-memory-assisted VM migration (paper §VII).
//
// "LM and memory disaggregation are complementary since LM is capable of
//  moving execution and memory disaggregation can offload memory from the
//  hypervisor."
//
// With FluidMem, migrating a VM between hypervisors barely moves any data:
//   1. the source monitor flushes the VM's resident pages to the shared
//      key-value store (exactly the footprint-shrink path of Table III) —
//      this is the only part the VM is paused for;
//   2. the page-tracker metadata (which pages exist and that they are all
//      remote) transfers to the destination monitor;
//   3. the VM resumes on the destination with an empty local footprint and
//      post-copy-style demand-faults its working set back from the store —
//      the same first-class path every FluidMem fault takes.
// Downtime is proportional to the VM's *resident* set, so a VM that was
// already shrunk migrates in near-zero time — the synergy the paper points
// at.
#pragma once

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "fluidmem/monitor.h"
#include "mem/uffd.h"

namespace fluid::fm {

struct MigrationResult {
  Status status;
  RegionId target_region = 0;
  SimDuration downtime = 0;        // VM paused: flush + metadata transfer
  std::size_t pages_flushed = 0;   // resident pages pushed to the store
  std::size_t pages_tracked = 0;   // metadata entries transferred
  SimTime resumed_at = 0;          // VM running on the destination
};

struct MigrationConfig {
  // Metadata wire cost per tracked page (key + location over the fabric).
  SimDuration metadata_ns_per_page = 24;
  // Control-plane handshake (QMP-style prepare/activate round trips).
  SimDuration handshake = 250 * kMicrosecond;
};

// --- Pre-copy migration -------------------------------------------------------
//
// The complementary strategy (QEMU's default): copy the VM's pages to the
// shared store in the background WHILE it keeps running, using soft-dirty
// tracking to re-copy what the guest touches, and only pause for the final
// (small) dirty residue plus metadata. Downtime is proportional to the
// write rate, not the resident set — at the cost of copying hot pages more
// than once.
class PreCopyMigrator {
 public:
  PreCopyMigrator(Monitor& source, RegionId source_region_id);

  struct Round {
    Status status;
    SimTime done = 0;
    std::size_t pages_copied = 0;  // dirty (or, first round, all present)
  };

  // One background copy round; the VM keeps running between rounds (the
  // driver interleaves guest work). Subsequent rounds copy only pages
  // dirtied since the previous round.
  Round CopyRound(SimTime now);

  // Stop-and-copy the residue and switch over to `target`. The downtime in
  // the result covers only this final round + metadata + handshake.
  MigrationResult Finalize(Monitor& target, mem::UffdRegion& target_region,
                           PartitionId partition, SimTime now,
                           const MigrationConfig& config = {});

  std::size_t rounds_run() const noexcept { return rounds_; }
  std::size_t total_pages_copied() const noexcept { return total_copied_; }

 private:
  Round CopyPages(const std::vector<VirtAddr>& pages, SimTime now);

  Monitor* source_;
  RegionId rid_;
  std::size_t rounds_ = 0;
  std::size_t total_copied_ = 0;
  bool first_round_done_ = false;
};

// Move the VM behind `source_region_id` from `source` to `target`. The
// destination region must be fresh (no pages) and both monitors must share
// a store holding `partition`'s pages (the normal FluidMem deployment).
// On success the source region is unregistered WITHOUT dropping the
// partition, and the returned target_region is live on `target`.
MigrationResult MigrateRegion(Monitor& source, RegionId source_region_id,
                              Monitor& target, mem::UffdRegion& target_region,
                              PartitionId partition, SimTime now,
                              const MigrationConfig& config = {});

}  // namespace fluid::fm
