// The chaos scenario driver.
//
// A scenario is (workload seed, FaultPlan): the seed generates a
// deterministic op sequence (GenerateOps) and the plan drives one
// FaultInjector installed behind every layer of a freshly built stack
// (RunOps). While the ops run, every workload write is mirrored into a
// ShadowMemory oracle; every read is differentially checked against it,
// and at periodic quiesce points the harness sweeps ALL touched pages —
// wherever the stack currently keeps them (VM frame, write-list frame,
// remote store) — and runs the global bookkeeping invariants
// (invariants.h).
//
// Every failure is replayable: RunReport::Report() prints the (seed, plan)
// pair, and re-running the same ScenarioOptions reproduces the identical
// failing step, because all randomness (workload, stack models, injection)
// derives from those two values. ShrinkFailure then ddmin-reduces the op
// sequence to a minimal reproducer — op ids are preserved under shrinking,
// so retained ops keep their exact fault behaviour.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "blockdev/block_device.h"
#include "chaos/fault_plan.h"
#include "chaos/injector.h"
#include "chaos/invariants.h"
#include "chaos/oracle.h"
#include "fluidmem/monitor.h"
#include "kvstore/decorators.h"
#include "kvstore/integrity.h"
#include "kvstore/kvstore.h"
#include "kvstore/ramcloud.h"
#include "kvstore/resilient.h"
#include "mem/frame_pool.h"
#include "mem/uffd.h"
#include "obs/span.h"
#include "sim/trace.h"
#include "swap/swap_space.h"

namespace fluid::chaos {

// Which backend the scenario stack talks to.
enum class StoreKind {
  kLocalDram,   // InjectedStore over LocalDramStore
  kRamcloud,    // InjectedStore over RamcloudStore (log cleaner in play)
  kReplicated,  // ReplicatedStore over 3x InjectedStore(LocalDramStore)
};

struct ScenarioOptions {
  std::uint64_t seed = 1;  // workload seed (ops, model RNGs)
  FaultPlan plan;          // injection seed + per-site fault schedule
  StoreKind store = StoreKind::kLocalDram;
  std::size_t pages = 96;         // region size (pages)
  std::size_t lru_capacity = 24;  // DRAM budget (pages)
  std::size_t write_batch = 8;
  std::size_t prefetch_depth = 0;
  // Prediction policy for the prefetcher (opt-in; the defaults reproduce
  // the legacy sequential detector byte-identically): majority-vote stride
  // detection, and an accuracy floor (percent) below which a region's
  // speculation is gated. 0 floor = gate off.
  bool prefetch_majority = false;
  int prefetch_accuracy_floor = 0;
  // Hot/cold tier placement (opt-in): attach a cheap NVMeoF device so
  // cold eviction victims demote there instead of remote DRAM.
  bool attach_cold_tier = false;
  std::size_t cold_tier_capacity = 256;  // cold device size, pages
  std::size_t num_ops = 300;
  std::size_t quiesce_every = 64;  // ops between full oracle sweeps
  Tracer* tracer = nullptr;        // optional chaos_stats sink

  // --- resilience layer (all opt-in: legacy scenarios replay bit-identically) --
  // Wrap the injected store in a ResilientStore (deadline/retry/hedging).
  bool resilient_store = false;
  // Attach a local swap device so the monitor can degrade gracefully when
  // the store's breakers trip (spill + fast-fail + migrate-back).
  bool attach_spill = false;
  std::size_t spill_capacity = 256;  // spill device size, pages
  // kRamcloud only: backup servers + coordinator-driven crash recovery.
  int ramcloud_backups = 0;
  bool ramcloud_auto_recover = false;

  // --- integrity layer (all opt-in: legacy scenarios replay bit-identically) --
  // Wrap the store (each replica, for kReplicated) in an IntegrityStore:
  // every page gets a checksummed envelope on Put, verified on Get, so
  // injected silent corruption (kStoreCorruptBits / kStoreTornWrite /
  // kStoreStaleGet) surfaces as Status::DataLoss instead of wrong bytes.
  bool integrity_store = false;
  // Pages the IntegrityStore scrubber re-verifies per PumpMaintenance
  // tick, off the fault path (0 = scrubbing disabled).
  std::size_t scrub_budget = 0;
  // kReplicated only: declare a replica permanently dead once it has been
  // failing continuously for this long; its full key set is then
  // re-replicated from healthy peers (0 = detection off).
  SimDuration replica_dead_after = 0;

  // --- sharded fault engine (opt-in: 1 = the serial monitor, so every
  // legacy scenario/seed replays bit-identically) ------------------------------
  std::size_t fault_shards = 1;
  std::size_t uffd_read_batch = 1;
  // Completion-driven eviction/writeback pipeline. Enabled by default but
  // structurally inert with fault_shards == 1 (the serial monitor path),
  // so every legacy (seed, plan) pair replays bit-identically; scenarios
  // with shards can flip it off to A/B the pipeline under faults.
  bool pipelined_writeback = true;

  // --- observability (opt-in). Spans/metrics only record — enabling them
  // never changes a replay; on an oracle/invariant failure the flight
  // recorder is dumped into RunReport next to the (seed, plan) reproducer. --
  bool observe = false;
};

// One deterministic workload operation. `id` is the op's ORIGINAL index in
// the generated sequence; the injector keys fault decisions on it, so a
// shrunk subsequence replays the same faults on the ops it keeps.
enum class OpKind : std::uint8_t {
  kWrite,   // touch a page, write 8 bytes, mirror into the shadow
  kRead,    // touch a page, differentially check it against the shadow
  kDrain,   // Monitor::DrainWrites
  kPump,    // Monitor::PumpBackground
  kResize,  // Monitor::SetLruCapacity (shrink/grow the DRAM budget)
  // Deliberately re-introduce the pre-fix UnregisterRegion shutdown bug
  // (MonitorTestPeer::BuggyUnregister). Never emitted by GenerateOps —
  // acceptance tests append it to prove the harness catches the bug and
  // that ShrinkFailure reduces around it.
  kBugUnregister,
};

struct Op {
  std::uint32_t id = 0;
  OpKind kind = OpKind::kWrite;
  std::uint32_t page = 0;     // page index within the region
  std::uint64_t value = 0;    // written payload / resize argument
};

std::vector<Op> GenerateOps(const ScenarioOptions& opt);

// A fully wired scenario stack. Exposed so targeted tests (quorum crash,
// migration, the BuggyUnregister acceptance test) can drive the same
// components by hand while reusing the harness's construction.
struct Stack {
  explicit Stack(const ScenarioOptions& opt);

  VirtAddr AddrOfPage(std::uint32_t page) const {
    return base + static_cast<VirtAddr>(page) * kPageSize;
  }
  StackView View();

  static constexpr VirtAddr kBase = 0x5000'0000;
  static constexpr PartitionId kPartition = 1;

  VirtAddr base = kBase;
  mem::FramePool pool;
  std::shared_ptr<FaultInjector> injector;
  std::unique_ptr<kv::KvStore> store;
  kv::ReplicatedStore* replicated = nullptr;  // set when store == kReplicated
  kv::RamcloudStore* ramcloud = nullptr;      // set when store == kRamcloud
  kv::ResilientStore* resilient = nullptr;    // set when opt.resilient_store
  // Integrity decorators (opt.integrity_store): the single store's, or one
  // per replica under kReplicated.
  std::vector<kv::IntegrityStore*> integrity;
  // Sum of per-store integrity stats (detections, scrub work).
  kv::IntegrityStoreStats IntegrityTotals() const;
  std::unique_ptr<blk::BlockDevice> spill_device;  // set when opt.attach_spill
  std::unique_ptr<swap::SwapSpace> spill;
  // Cold-tier device (opt.attach_cold_tier): cheap NVMeoF target for
  // demoted cold pages, sharing the scenario injector like the spill.
  std::unique_ptr<blk::BlockDevice> cold_device;
  std::unique_ptr<swap::SwapSpace> cold_tier;
  std::unique_ptr<mem::UffdRegion> region;
  // Declared before `monitor`: the monitor registers gauges over its stats
  // in here, so the hub must outlive it (destruction runs in reverse).
  obs::Observability obs;
  std::unique_ptr<fm::Monitor> monitor;
  fm::RegionId rid = 0;
  ShadowMemory shadow;
};

struct ChaosStats {
  std::uint64_t ops_executed = 0;
  std::uint64_t blocked_ops = 0;  // faults that stayed failed after retries
  std::uint64_t invariant_checks = 0;
  std::uint64_t pages_verified = 0;  // differential page comparisons
};

struct Failure {
  std::uint32_t op_id = 0;  // original id of the op the failure surfaced at
  std::string what;
};

struct RunReport {
  bool ok = true;
  std::uint64_t seed = 0;  // workload seed, echoed for Report()
  FaultPlan plan;
  std::optional<Failure> failure;
  ChaosStats stats;
  InjectorStats faults;
  // Flight-recorder dump captured at failure time (opt.observe only):
  // the last spans with stage breakdowns + the event ring.
  std::string flight_dump;

  // Human-readable reproduction recipe: always names the (seed, plan)
  // pair; on failure also the failing op and what went wrong, followed by
  // the flight-recorder dump when one was captured.
  std::string Report() const;
};

// Build a fresh stack and run the full generated sequence / a given
// subsequence. RunOps hands the stack over for post-mortem inspection
// when the caller provides a slot for it (`out_stack`).
RunReport RunScenario(const ScenarioOptions& opt);
RunReport RunOps(const ScenarioOptions& opt, std::span<const Op> ops,
                 std::unique_ptr<Stack>* out_stack = nullptr);

// Ensure `addr` is accessible in `stack`'s region, retrying the fault a
// bounded number of times under injected store failures. Returns false if
// the op stayed blocked (deterministically, for the given plan).
bool EnsureResident(Stack& stack, VirtAddr addr, bool is_write, SimTime& now);

// Run the quiesce-point verification (differential sweep of every shadow
// page + global invariants) against an arbitrary caller-built stack.
// Injection is paused for the duration. Returns the first discrepancy.
std::optional<std::string> VerifyStack(Stack& stack, SimTime& now,
                                       ChaosStats* stats = nullptr);

// The location-aware differential sweep for ONE region: every page the
// shadow knows is fetched from wherever the stack currently keeps it
// (resident frame, write-list/in-flight frame, remote store, local spill)
// and byte-compared against the reference model. Core of VerifyStack,
// exposed so multi-region drivers (the multi-tenant composer) can sweep
// per tenant. The caller is responsible for pausing injection.
std::optional<std::string> VerifyRegionAgainstShadow(
    fm::Monitor& monitor, mem::UffdRegion& region, fm::RegionId rid,
    kv::KvStore& store, mem::FramePool& pool, const ShadowMemory& shadow,
    SimTime& now, ChaosStats* stats = nullptr);

struct ShrinkResult {
  std::vector<Op> ops;  // minimal failing subsequence (original ids kept)
  RunReport report;     // report from the final (minimal) run
  int iterations = 0;   // candidate runs executed
};

// Delta-debug a failing sequence down to a locally-minimal reproducer.
// Every candidate runs on a fresh stack; determinism makes the search
// sound. Caps at `max_iterations` candidate runs.
ShrinkResult ShrinkFailure(const ScenarioOptions& opt,
                           std::span<const Op> failing_ops,
                           int max_iterations = 200);

}  // namespace fluid::chaos
