// InjectedStore: KvStore decorator that routes every store operation
// through the scenario's FaultInjector.
//
// This supersedes FlakyStore for chaos runs: FlakyStore draws from its own
// private RNG, so its faults depend on call ORDER and cannot be replayed
// or shrunk; InjectedStore's faults are keyed on (seed, plan, op id, call)
// via the shared hook. FlakyStore remains for the simple targeted tests.
//
// Several InjectedStores may share one injector (e.g. the three replicas
// of a ReplicatedStore): the injector's per-site call counter advances per
// consultation, so each replica draws an independent decision for the same
// logical op.
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "common/fault_hook.h"
#include "kvstore/kvstore.h"

namespace fluid::chaos {

class InjectedStore final : public kv::KvStore {
 public:
  InjectedStore(std::unique_ptr<kv::KvStore> inner, FaultHookPtr hook)
      : inner_(std::move(inner)), hook_(std::move(hook)) {}

  kv::KvStore& inner() noexcept { return *inner_; }

  std::string_view name() const override { return "injected"; }
  bool has_native_partitions() const override {
    return inner_->has_native_partitions();
  }

  kv::OpResult Put(PartitionId partition, kv::Key key,
                   std::span<const std::byte, kPageSize> value,
                   SimTime now) override {
    auto [fail, stall] = Consult(FaultSite::kStorePut, now);
    if (fail) return Unavailable(now);
    return Stalled(inner_->Put(partition, key, value, now), stall);
  }
  kv::OpResult Get(PartitionId partition, kv::Key key,
                   std::span<std::byte, kPageSize> out, SimTime now) override {
    auto [fail, stall] = Consult(FaultSite::kStoreGet, now);
    if (fail) return Unavailable(now);
    return Stalled(inner_->Get(partition, key, out, now), stall);
  }
  kv::OpResult Remove(PartitionId partition, kv::Key key, SimTime now) override {
    auto [fail, stall] = Consult(FaultSite::kStoreRemove, now);
    if (fail) return Unavailable(now);
    return Stalled(inner_->Remove(partition, key, now), stall);
  }
  kv::OpResult MultiPut(PartitionId partition,
                        std::span<kv::KvWrite> writes,
                        SimTime now) override {
    // Whole-batch consultation first (legacy site, one call per MultiPut —
    // the call-counter sequence legacy plans replay against is unchanged).
    auto [fail, stall] = Consult(FaultSite::kStoreMultiPut, now);
    if (fail) {
      for (kv::KvWrite& w : writes)
        w.status = Status::Unavailable("injected store failure");
      return Unavailable(now);
    }
    // Then one per-object consultation: rejected elements fail without
    // reaching the inner store, the surviving subset goes down as its own
    // (smaller) batch. Plans that never arm kStoreMultiPutKey take the
    // fast path below and the inner store sees the original span.
    std::vector<std::size_t> accepted;
    bool any_rejected = false;
    for (std::size_t i = 0; i < writes.size(); ++i) {
      auto [kfail, kstall] = Consult(FaultSite::kStoreMultiPutKey, now);
      stall += kstall;
      if (kfail) {
        writes[i].status = Status::Unavailable("injected object failure");
        any_rejected = true;
      } else {
        accepted.push_back(i);
      }
    }
    if (!any_rejected)
      return Stalled(inner_->MultiPut(partition, writes, now), stall);
    if (accepted.empty()) return Unavailable(now);
    std::vector<kv::KvWrite> sub;
    sub.reserve(accepted.size());
    for (std::size_t i : accepted) sub.push_back(writes[i]);
    kv::OpResult r = inner_->MultiPut(partition, sub, now);
    for (std::size_t j = 0; j < accepted.size(); ++j)
      writes[accepted[j]].status = sub[j].status;
    // At least one object was dropped on the floor: the batch as a whole
    // reports the injected failure even if the survivors landed.
    r.status = Status::Unavailable("injected object failure");
    r.complete_at = std::max(r.complete_at, now + 50 * kMicrosecond);
    return Stalled(r, stall);
  }
  kv::OpResult DropPartition(PartitionId partition, SimTime now) override {
    auto [fail, stall] = Consult(FaultSite::kStoreDropPartition, now);
    if (fail) return Unavailable(now);
    return Stalled(inner_->DropPartition(partition, now), stall);
  }
  // Maintenance is control-plane work (coordinator recovery, anti-entropy
  // repair driving); the repair's own data ops go through the injected
  // verbs above, so the tick itself is never injected.
  SimTime PumpMaintenance(SimTime now) override {
    return inner_->PumpMaintenance(now);
  }

  // Metadata introspection used by invariant checks; never injected.
  bool Contains(PartitionId partition, kv::Key key) const override {
    return inner_->Contains(partition, key);
  }
  std::size_t ObjectCount() const override { return inner_->ObjectCount(); }
  std::size_t BytesStored() const override { return inner_->BytesStored(); }
  const kv::StoreStats& stats() const override { return inner_->stats(); }

 private:
  FaultDecision Consult(FaultSite site, SimTime now) {
    return hook_ ? hook_->OnOp(site, now) : FaultDecision{};
  }
  static kv::OpResult Unavailable(SimTime now) {
    // Same timeout-ish cost model as FlakyStore: the caller learns of the
    // failure only after a 50 us RPC deadline.
    const SimTime at = now + 50 * kMicrosecond;
    return kv::OpResult{Status::Unavailable("injected store failure"), at, at};
  }
  static kv::OpResult Stalled(kv::OpResult r, SimDuration stall) {
    r.complete_at += stall;
    return r;
  }

  std::unique_ptr<kv::KvStore> inner_;
  FaultHookPtr hook_;
};

}  // namespace fluid::chaos
