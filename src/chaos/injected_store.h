// InjectedStore: KvStore decorator that routes every store operation
// through the scenario's FaultInjector.
//
// This supersedes FlakyStore for chaos runs: FlakyStore draws from its own
// private RNG, so its faults depend on call ORDER and cannot be replayed
// or shrunk; InjectedStore's faults are keyed on (seed, plan, op id, call)
// via the shared hook. FlakyStore remains for the simple targeted tests.
//
// Several InjectedStores may share one injector (e.g. the three replicas
// of a ReplicatedStore): the injector's per-site call counter advances per
// consultation, so each replica draws an independent decision for the same
// logical op.
#pragma once

#include <array>
#include <cstddef>
#include <cstring>
#include <map>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "common/fault_hook.h"
#include "common/rng.h"
#include "kvstore/key_codec.h"
#include "kvstore/kvstore.h"

namespace fluid::chaos {

class InjectedStore final : public kv::KvStore {
 public:
  InjectedStore(std::unique_ptr<kv::KvStore> inner, FaultHookPtr hook)
      : inner_(std::move(inner)), hook_(std::move(hook)) {}

  kv::KvStore& inner() noexcept { return *inner_; }

  std::string_view name() const override { return "injected"; }
  bool has_native_partitions() const override {
    return inner_->has_native_partitions();
  }

  kv::OpResult Put(PartitionId partition, kv::Key key,
                   std::span<const std::byte, kPageSize> value,
                   SimTime now) override {
    const FaultDecision fd = Consult(FaultSite::kStorePut, now);
    if (fd.fail) return Unavailable(now);
    // Torn-write consultation happens at verb entry on EVERY Put so the
    // per-site call sequence is uniform across plans; the effect — the
    // tail of the payload silently lost, as if the store crashed mid-write
    // — only applies when the site fires. The op still reports success:
    // that is what makes the fault silent.
    const FaultDecision torn = Consult(FaultSite::kStoreTornWrite, now);
    std::array<std::byte, kPageSize> scratch;
    std::span<const std::byte, kPageSize> payload = value;
    if (torn.fail) {
      payload = Tear(value, scratch, torn.entropy);
      ++torn_writes_;
    }
    kv::OpResult r = Stalled(inner_->Put(partition, key, payload, now),
                             fd.extra_latency + torn.extra_latency);
    if (r.status.ok()) RecordWrite(partition, key, payload);
    return r;
  }
  kv::OpResult Get(PartitionId partition, kv::Key key,
                   std::span<std::byte, kPageSize> out, SimTime now) override {
    const FaultDecision fd = Consult(FaultSite::kStoreGet, now);
    if (fd.fail) return Unavailable(now);
    // Corruption consultations at verb entry, fixed order, every Get.
    const FaultDecision stale = Consult(FaultSite::kStoreStaleGet, now);
    const FaultDecision rot = Consult(FaultSite::kStoreCorruptBits, now);
    kv::OpResult r = Stalled(
        inner_->Get(partition, key, out, now),
        fd.extra_latency + stale.extra_latency + rot.extra_latency);
    if (r.status.ok()) {
      // Stale first, bit rot second: a wire flip can hit an old version.
      if (stale.fail && ServeStale(partition, key, out)) ++stale_serves_;
      if (rot.fail) {
        FlipBits(out, rot.entropy);
        ++bit_corruptions_;
      }
    }
    return r;
  }
  kv::OpResult Remove(PartitionId partition, kv::Key key, SimTime now) override {
    const FaultDecision fd = Consult(FaultSite::kStoreRemove, now);
    if (fd.fail) return Unavailable(now);
    kv::OpResult r = Stalled(inner_->Remove(partition, key, now),
                             fd.extra_latency);
    if (r.status.ok() && !history_.empty())
      history_.erase(kv::FoldPartition(key, partition));
    return r;
  }
  kv::OpResult MultiPut(PartitionId partition,
                        std::span<kv::KvWrite> writes,
                        SimTime now) override {
    // Whole-batch consultation first (legacy site, one call per MultiPut —
    // the call-counter sequence legacy plans replay against is unchanged).
    const FaultDecision bd = Consult(FaultSite::kStoreMultiPut, now);
    SimDuration stall = bd.extra_latency;
    if (bd.fail) {
      for (kv::KvWrite& w : writes)
        w.status = Status::Unavailable("injected store failure");
      return Unavailable(now);
    }
    // Then one per-object consultation: rejected elements fail without
    // reaching the inner store, the surviving subset goes down as its own
    // (smaller) batch. Plans that never arm kStoreMultiPutKey take the
    // fast path below and the inner store sees the original span.
    // Each element also draws a torn-write decision (new site, independent
    // counter — legacy replay untouched): torn elements persist a
    // truncated payload yet still report per-object success.
    std::vector<std::size_t> accepted;
    std::vector<FaultDecision> torn(writes.size());
    std::vector<std::array<std::byte, kPageSize>> scratch;
    bool any_rejected = false;
    bool any_torn = false;
    for (std::size_t i = 0; i < writes.size(); ++i) {
      const FaultDecision kd = Consult(FaultSite::kStoreMultiPutKey, now);
      torn[i] = Consult(FaultSite::kStoreTornWrite, now);
      stall += kd.extra_latency + torn[i].extra_latency;
      if (kd.fail) {
        writes[i].status = Status::Unavailable("injected object failure");
        torn[i].fail = false;  // never reaches the store; nothing to tear
        any_rejected = true;
      } else {
        accepted.push_back(i);
        any_torn |= torn[i].fail;
      }
    }
    if (any_torn) scratch.resize(writes.size());
    auto payload_of = [&](std::size_t i) {
      if (!torn[i].fail) return writes[i].value;
      ++torn_writes_;
      return Tear(writes[i].value, scratch[i], torn[i].entropy);
    };
    if (!any_rejected && !any_torn) {
      kv::OpResult r = Stalled(inner_->MultiPut(partition, writes, now), stall);
      RecordBatch(partition, writes);
      return r;
    }
    if (accepted.empty()) return Unavailable(now);
    std::vector<kv::KvWrite> sub;
    sub.reserve(accepted.size());
    for (std::size_t i : accepted)
      sub.push_back(kv::KvWrite{writes[i].key, payload_of(i), writes[i].status});
    kv::OpResult r = inner_->MultiPut(partition, sub, now);
    for (std::size_t j = 0; j < accepted.size(); ++j)
      writes[accepted[j]].status = sub[j].status;
    RecordBatch(partition, sub);
    if (!any_rejected) return Stalled(r, stall);
    // At least one object was dropped on the floor: the batch as a whole
    // reports the injected failure even if the survivors landed.
    r.status = Status::Unavailable("injected object failure");
    r.complete_at = std::max(r.complete_at, now + 50 * kMicrosecond);
    return Stalled(r, stall);
  }
  kv::OpResult DropPartition(PartitionId partition, SimTime now) override {
    const FaultDecision fd = Consult(FaultSite::kStoreDropPartition, now);
    if (fd.fail) return Unavailable(now);
    kv::OpResult r = Stalled(inner_->DropPartition(partition, now),
                             fd.extra_latency);
    if (r.status.ok() && !history_.empty()) {
      for (auto it = history_.begin(); it != history_.end();) {
        if (kv::KeyPartition(it->first) == partition)
          it = history_.erase(it);
        else
          ++it;
      }
    }
    return r;
  }
  // Maintenance is control-plane work (coordinator recovery, anti-entropy
  // repair driving); the repair's own data ops go through the injected
  // verbs above, so the tick itself is never injected.
  SimTime PumpMaintenance(SimTime now) override {
    return inner_->PumpMaintenance(now);
  }

  // Metadata introspection used by invariant checks; never injected.
  bool Contains(PartitionId partition, kv::Key key) const override {
    return inner_->Contains(partition, key);
  }
  void ForEachKey(
      const std::function<void(PartitionId, kv::Key)>& fn) const override {
    inner_->ForEachKey(fn);
  }
  std::size_t ObjectCount() const override { return inner_->ObjectCount(); }
  std::size_t BytesStored() const override { return inner_->BytesStored(); }
  const kv::StoreStats& stats() const override { return inner_->stats(); }

  // Corruption telemetry: how many silent faults were actually planted.
  // Tests use these to assert detection counts match injection counts.
  std::uint64_t bit_corruptions() const noexcept { return bit_corruptions_; }
  std::uint64_t torn_writes() const noexcept { return torn_writes_; }
  std::uint64_t stale_serves() const noexcept { return stale_serves_; }

 private:
  FaultDecision Consult(FaultSite site, SimTime now) {
    return hook_ ? hook_->OnOp(site, now) : FaultDecision{};
  }
  bool StaleArmed() const {
    return hook_ && hook_->SiteArmed(FaultSite::kStoreStaleGet);
  }
  // Version history backing kStoreStaleGet: the previous committed payload
  // per key. Maintained only when the site is armed, so legacy plans pay
  // nothing; reads NEVER touch the inner store here (an extra inner Get
  // would advance the store's cost RNG and break legacy replay).
  void RecordWrite(PartitionId partition, kv::Key key,
                   std::span<const std::byte, kPageSize> value) {
    if (!StaleArmed()) return;
    Versions& v = history_[kv::FoldPartition(key, partition)];
    if (v.has_last) {
      v.prev = v.last;
      v.has_prev = true;
    }
    std::memcpy(v.last.data(), value.data(), kPageSize);
    v.has_last = true;
  }
  void RecordBatch(PartitionId partition, std::span<const kv::KvWrite> writes) {
    if (!StaleArmed()) return;
    for (const kv::KvWrite& w : writes)
      if (w.status.ok()) RecordWrite(partition, w.key, w.value);
  }
  bool ServeStale(PartitionId partition, kv::Key key,
                  std::span<std::byte, kPageSize> out) {
    auto it = history_.find(kv::FoldPartition(key, partition));
    if (it == history_.end() || !it->second.has_prev) return false;
    std::memcpy(out.data(), it->second.prev.data(), kPageSize);
    return true;
  }
  // Flip three deterministic bits of the payload. Three, not one: a single
  // flip is the easy case for any checksum; three spread across the page
  // exercises independence of the CRC from flip position.
  static void FlipBits(std::span<std::byte, kPageSize> out,
                       std::uint64_t entropy) {
    std::uint64_t e = entropy;
    for (int i = 0; i < 3; ++i) {
      const std::uint64_t bit = SplitMix64(e) % (kPageSize * 8);
      out[bit / 8] ^= std::byte{static_cast<unsigned char>(1u << (bit % 8))};
    }
  }
  // Torn write: the tail beyond a deterministic cut point is lost (reads
  // back as zeros, as a freshly-allocated slab would). At least one byte
  // survives and at least one byte is torn.
  static std::span<const std::byte, kPageSize> Tear(
      std::span<const std::byte, kPageSize> value,
      std::array<std::byte, kPageSize>& scratch, std::uint64_t entropy) {
    const std::size_t cut = 1 + entropy % (kPageSize - 1);
    std::memcpy(scratch.data(), value.data(), cut);
    std::memset(scratch.data() + cut, 0, kPageSize - cut);
    return std::span<const std::byte, kPageSize>{scratch};
  }
  static kv::OpResult Unavailable(SimTime now) {
    // Same timeout-ish cost model as FlakyStore: the caller learns of the
    // failure only after a 50 us RPC deadline.
    const SimTime at = now + 50 * kMicrosecond;
    return kv::OpResult{Status::Unavailable("injected store failure"), at, at};
  }
  static kv::OpResult Stalled(kv::OpResult r, SimDuration stall) {
    r.complete_at += stall;
    return r;
  }

  struct Versions {
    std::array<std::byte, kPageSize> last{};
    std::array<std::byte, kPageSize> prev{};
    bool has_last = false;
    bool has_prev = false;
  };

  std::unique_ptr<kv::KvStore> inner_;
  FaultHookPtr hook_;
  std::map<kv::Key, Versions> history_;  // folded key -> versions (stale site)
  std::uint64_t bit_corruptions_ = 0;
  std::uint64_t torn_writes_ = 0;
  std::uint64_t stale_serves_ = 0;
};

}  // namespace fluid::chaos
