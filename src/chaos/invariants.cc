#include "chaos/invariants.h"

#include <cstdio>

#include "kvstore/key_codec.h"

namespace fluid::chaos {

namespace {

std::string Describe(const fm::PageRef& p) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "page{region=%u addr=0x%llx}", p.region,
                static_cast<unsigned long long>(p.addr));
  return buf;
}

const char* LocationName(fm::PageLocation loc) {
  switch (loc) {
    case fm::PageLocation::kResident: return "resident";
    case fm::PageLocation::kWriteList: return "write-list";
    case fm::PageLocation::kInFlight: return "in-flight";
    case fm::PageLocation::kRemote: return "remote";
    case fm::PageLocation::kSpilled: return "spilled";
    case fm::PageLocation::kColdTier: return "cold-tier";
  }
  return "?";
}

}  // namespace

std::optional<std::string> CheckInvariants(const StackView& view) {
  fm::Monitor& m = *view.monitor;
  const fm::PageTracker& tracker = m.tracker();
  const fm::WriteList& wl = m.write_list();
  const fm::LruBuffer& lru = fm::MonitorTestPeer::lru(m);

  // 1. Frame conservation. Every allocated frame must be either mapped in
  // a region's page table or buffered on the write list; a mismatch means
  // a frame leaked (e.g. a forgotten region's buffered writes) or was
  // double-freed.
  std::size_t region_frames = 0;
  for (const auto& [rid, region] : view.regions)
    region_frames += region->ResidentFrames();
  std::size_t wl_frames = 0;
  wl.ForEachPending([&](const fm::PendingWrite&) { ++wl_frames; });
  wl.ForEachInFlight([&](const fm::PendingWrite&, bool) { ++wl_frames; });
  if (view.pool->in_use() != region_frames + wl_frames) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "frame conservation: pool in_use=%zu but regions hold %zu "
                  "and write list holds %zu (leak or double-free)",
                  view.pool->in_use(), region_frames, wl_frames);
    return std::string(buf);
  }

  // 2. Write-list sanity: buffered writes belong to live regions and the
  // tracker agrees on where each page is.
  std::optional<std::string> violation;
  wl.ForEachPending([&](const fm::PendingWrite& w) {
    if (violation) return;
    const std::optional<fm::PageLocation> loc = tracker.Lookup(w.page);
    if (m.region_of(w.page.region) == nullptr)
      violation = "write list holds pending " + Describe(w.page) +
                  " for an inactive region";
    else if (!loc.has_value())
      violation = "pending " + Describe(w.page) + " unknown to the tracker";
    else if (*loc != fm::PageLocation::kWriteList)
      violation = "pending " + Describe(w.page) + " tracked as " +
                  LocationName(*loc);
  });
  if (violation) return violation;
  wl.ForEachInFlight([&](const fm::PendingWrite& w, bool) {
    if (violation) return;
    const std::optional<fm::PageLocation> loc = tracker.Lookup(w.page);
    if (m.region_of(w.page.region) == nullptr)
      violation = "write list holds in-flight " + Describe(w.page) +
                  " for an inactive region";
    else if (!loc.has_value())
      violation = "in-flight " + Describe(w.page) + " unknown to the tracker";
    else if (*loc != fm::PageLocation::kInFlight)
      violation = "in-flight " + Describe(w.page) + " tracked as " +
                  LocationName(*loc);
  });
  if (violation) return violation;

  // 3. LRU residency: every LRU entry is a tracked-resident page actually
  // present in its region's page table.
  lru.ForEach([&](const fm::PageRef& p) {
    if (violation) return;
    const std::optional<fm::PageLocation> loc = tracker.Lookup(p);
    if (!loc.has_value()) {
      violation = "LRU entry " + Describe(p) + " unknown to the tracker";
      return;
    }
    if (*loc != fm::PageLocation::kResident) {
      violation = "LRU entry " + Describe(p) + " tracked as " +
                  LocationName(*loc);
      return;
    }
    mem::UffdRegion* region = m.region_of(p.region);
    if (region == nullptr)
      violation = "LRU entry " + Describe(p) + " for an inactive region";
    else if (!region->IsPresent(p.addr))
      violation = "LRU entry " + Describe(p) + " not present in the VM";
  });
  if (violation) return violation;

  // 4. Tracker sweep: each claimed location is backed by the structure
  // that owns it. kRemote is only checkable against a store snapshot.
  tracker.ForEach([&](const fm::PageRef& p, fm::PageLocation loc) {
    if (violation) return;
    switch (loc) {
      case fm::PageLocation::kResident:
        if (!lru.Contains(p))
          violation = "tracked-resident " + Describe(p) + " missing from LRU";
        break;
      case fm::PageLocation::kWriteList:
        if (!wl.ContainsPending(p))
          violation = "tracked-write-list " + Describe(p) +
                      " missing from the pending write list";
        break;
      case fm::PageLocation::kInFlight:
        if (!wl.InFlightCompletion(p).has_value())
          violation = "tracked-in-flight " + Describe(p) +
                      " missing from the posted batches";
        break;
      case fm::PageLocation::kRemote:
        if (view.store != nullptr &&
            !view.store->Contains(m.partition_of(p.region),
                                  kv::MakePageKey(p.addr)))
          violation = "tracked-remote " + Describe(p) +
                      " absent from the key-value store";
        break;
      case fm::PageLocation::kSpilled:
        if (!m.HasSpillSlot(p))
          violation = "tracked-spilled " + Describe(p) +
                      " has no local swap slot";
        break;
      case fm::PageLocation::kColdTier:
        if (!m.HasColdSlot(p))
          violation = "tracked-cold-tier " + Describe(p) +
                      " has no cold-tier slot";
        break;
    }
  });
  if (violation) return violation;

  // 5. Quarantine consistency: a poisoned page (integrity verification
  // failed on every copy) must belong to an active region, stay tracked
  // kRemote, and never be present in the VM's page table — quarantine
  // exists precisely so corrupt bytes cannot be cached in DRAM.
  m.ForEachPoisoned([&](fm::RegionId rid, VirtAddr addr) {
    if (violation) return;
    const fm::PageRef p{rid, addr};
    mem::UffdRegion* region = m.region_of(rid);
    if (region == nullptr) {
      violation = "poisoned " + Describe(p) + " for an inactive region";
      return;
    }
    if (region->IsPresent(addr)) {
      violation = "poisoned " + Describe(p) + " is present in the VM";
      return;
    }
    const std::optional<fm::PageLocation> loc = tracker.Lookup(p);
    if (loc.has_value() && *loc != fm::PageLocation::kRemote)
      violation = "poisoned " + Describe(p) + " tracked as " +
                  LocationName(*loc) +
                  " (quarantined pages must stay remote)";
  });
  return violation;
}

}  // namespace fluid::chaos
