#include "chaos/harness.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "chaos/injected_store.h"
#include "common/rng.h"
#include "obs/trace_export.h"
#include "kvstore/key_codec.h"
#include "kvstore/local_store.h"
#include "kvstore/ramcloud.h"

namespace fluid::chaos {

namespace {

std::string Hex(VirtAddr a) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(a));
  return buf;
}

}  // namespace

// --- stack construction ------------------------------------------------------

Stack::Stack(const ScenarioOptions& opt)
    // Region frames + write-list slack: eviction moves frames from the
    // region to the write list without freeing, so at peak both sides hold
    // frames at once.
    : pool(opt.pages * 2 + 64),
      injector(std::make_shared<FaultInjector>(opt.plan)) {
  switch (opt.store) {
    case StoreKind::kLocalDram: {
      kv::LocalStoreConfig lc;
      lc.seed = opt.seed ^ 0x10c41ULL;
      store = std::make_unique<InjectedStore>(
          std::make_unique<kv::LocalDramStore>(lc), injector);
      break;
    }
    case StoreKind::kRamcloud: {
      kv::RamcloudConfig rc;
      rc.seed = opt.seed ^ 0x4ac10dULL;
      rc.backup_count = opt.ramcloud_backups;
      rc.auto_recover = opt.ramcloud_auto_recover;
      auto rcs = std::make_unique<kv::RamcloudStore>(rc);
      ramcloud = rcs.get();
      store = std::make_unique<InjectedStore>(std::move(rcs), injector);
      break;
    }
    case StoreKind::kReplicated: {
      // Three replicas sharing ONE injector: the per-site call counter
      // advances per consultation, so each replica draws an independent
      // decision for the same logical op.
      std::vector<std::unique_ptr<kv::KvStore>> reps;
      for (std::uint64_t i = 0; i < 3; ++i) {
        kv::LocalStoreConfig lc;
        lc.seed = opt.seed * 3 + i;
        std::unique_ptr<kv::KvStore> rep = std::make_unique<InjectedStore>(
            std::make_unique<kv::LocalDramStore>(lc), injector);
        if (opt.integrity_store) {
          // Per-replica envelopes, wrapped INSIDE ReplicatedStore: each
          // replica verifies its own copy, so a rotten replica fails loudly
          // while its peers still serve clean bytes.
          auto integ = std::make_unique<kv::IntegrityStore>(std::move(rep),
                                                            opt.scrub_budget);
          integrity.push_back(integ.get());
          rep = std::move(integ);
        }
        reps.push_back(std::move(rep));
      }
      auto rs =
          std::make_unique<kv::ReplicatedStore>(std::move(reps),
                                                /*write_quorum=*/2);
      replicated = rs.get();
      if (opt.replica_dead_after > 0)
        replicated->set_dead_after(opt.replica_dead_after);
      // Detection feeds repair: a corruption found by replica i (read path
      // or scrubber) dirties (i, key) so the next anti-entropy pass
      // re-copies the page from a clean peer.
      for (std::size_t i = 0; i < integrity.size(); ++i) {
        kv::ReplicatedStore* r = replicated;
        integrity[i]->set_on_corruption([r, i](PartitionId p, kv::Key k) {
          r->ReportCorruption(i, p, k);
        });
      }
      store = std::move(rs);
      break;
    }
  }

  if (opt.integrity_store && integrity.empty()) {
    // Single-store kinds: one envelope layer over the injected store. With
    // no replica to repair from, detections surface as DataLoss and the
    // monitor quarantines the page instead of serving wrong bytes.
    auto integ = std::make_unique<kv::IntegrityStore>(std::move(store),
                                                      opt.scrub_budget);
    integrity.push_back(integ.get());
    store = std::move(integ);
  }

  if (opt.resilient_store) {
    // The resilience layer wraps the injected store, so its retries and
    // hedges consult the injector like any other request (and therefore
    // replay deterministically).
    kv::ResilientStoreConfig rsc;
    rsc.seed = opt.seed ^ 0x4e511eULL;
    auto res = std::make_unique<kv::ResilientStore>(std::move(store), rsc);
    resilient = res.get();
    store = std::move(res);
  }

  fm::MonitorConfig mc;
  mc.lru_capacity_pages = opt.lru_capacity;
  mc.write_batch_pages = opt.write_batch;
  mc.prefetch_depth = opt.prefetch_depth;
  mc.prefetch.mode = opt.prefetch_majority ? fm::PrefetchMode::kMajority
                                           : fm::PrefetchMode::kSequential;
  mc.prefetch.accuracy_floor_pct = opt.prefetch_accuracy_floor;
  mc.fault_shards = opt.fault_shards;
  mc.uffd_read_batch = opt.uffd_read_batch;
  mc.pipelined_writeback = opt.pipelined_writeback;
  mc.seed = opt.seed ^ 0xc0ffeeULL;
  monitor = std::make_unique<fm::Monitor>(mc, *store, pool);
  if (opt.observe) {
    // Spans/metrics only observe (no rng draws, no time charges), so an
    // observed run replays byte-identically to an unobserved one.
    obs.Enable();
    monitor->AttachObservability(obs);
    if (!integrity.empty()) {
      obs.metrics().Gauge("integrity.corruptions_detected", [this] {
        return double(IntegrityTotals().corruptions_detected);
      });
      obs.metrics().Gauge("integrity.scrub_pages", [this] {
        return double(IntegrityTotals().scrub_pages);
      });
      obs.metrics().Gauge("integrity.scrub_corruptions", [this] {
        return double(IntegrityTotals().scrub_corruptions);
      });
    }
    if (replicated != nullptr) {
      const kv::ReplicatedStore* rs = replicated;
      obs.metrics().Gauge("replicated.repairs", [rs] {
        return double(rs->replication_stats().repairs);
      });
      obs.metrics().Gauge("replicated.corruption_failovers", [rs] {
        return double(rs->replication_stats().corruption_failovers);
      });
      obs.metrics().Gauge("replicated.rf_restored", [rs] {
        return double(rs->replication_stats().rf_restored);
      });
    }
  }
  if (opt.attach_spill) {
    // Local swap device for graceful degradation; it shares the scenario
    // injector, so kBlockRead/kBlockWrite faults can hit the spill path too.
    spill_device = std::make_unique<blk::BlockDevice>(
        blk::MakePmemDevice(opt.spill_capacity));
    spill_device->set_fault_hook(injector);
    spill = std::make_unique<swap::SwapSpace>(*spill_device);
    monitor->AttachLocalSpill(*spill);
  }
  if (opt.attach_cold_tier) {
    // Cheap cold tier for heat-based demotion. Shares the injector, so
    // kBlockRead/kBlockWrite faults exercise the demote/promote paths.
    cold_device = std::make_unique<blk::BlockDevice>(
        blk::MakeNvmeofDevice(opt.cold_tier_capacity));
    cold_device->set_fault_hook(injector);
    cold_tier = std::make_unique<swap::SwapSpace>(*cold_device);
    monitor->AttachColdTier(*cold_tier);
  }
  region = std::make_unique<mem::UffdRegion>(/*pid=*/100, kBase, opt.pages,
                                             pool);
  rid = monitor->RegisterRegion(*region, kPartition);
}

kv::IntegrityStoreStats Stack::IntegrityTotals() const {
  kv::IntegrityStoreStats t;
  for (const kv::IntegrityStore* s : integrity) {
    const kv::IntegrityStoreStats& is = s->integrity_stats();
    t.envelopes_written += is.envelopes_written;
    t.verified_reads += is.verified_reads;
    t.corruptions_detected += is.corruptions_detected;
    t.unverified_reads += is.unverified_reads;
    t.scrub_pages += is.scrub_pages;
    t.scrub_corruptions += is.scrub_corruptions;
  }
  return t;
}

StackView Stack::View() {
  StackView v;
  v.monitor = monitor.get();
  v.pool = &pool;
  v.regions = {{rid, region.get()}};
  v.store = store.get();
  return v;
}

// --- workload generation -----------------------------------------------------

std::vector<Op> GenerateOps(const ScenarioOptions& opt) {
  Rng rng(opt.seed);
  std::vector<Op> ops;
  ops.reserve(opt.num_ops);
  const std::uint64_t hot_set = std::max<std::uint64_t>(1, opt.pages / 4);
  for (std::uint32_t i = 0; i < opt.num_ops; ++i) {
    Op op;
    op.id = i;
    // 70% of touches land in a hot quarter of the region so pages cycle
    // through resident -> write-list steal -> remote refault, the paths
    // where torn or stale contents would hide.
    const auto pick_page = [&]() -> std::uint32_t {
      const std::uint64_t space =
          rng.NextDouble() < 0.7 ? hot_set : opt.pages;
      return static_cast<std::uint32_t>(rng.NextBounded(space));
    };
    const double r = rng.NextDouble();
    if (r < 0.45) {
      op.kind = OpKind::kWrite;
      op.page = pick_page();
      op.value = rng();
    } else if (r < 0.80) {
      op.kind = OpKind::kRead;
      op.page = pick_page();
    } else if (r < 0.90) {
      op.kind = OpKind::kPump;
    } else if (r < 0.97) {
      op.kind = OpKind::kDrain;
    } else {
      op.kind = OpKind::kResize;
      op.value = rng();
    }
    ops.push_back(op);
  }
  return ops;
}

// --- execution ---------------------------------------------------------------

bool EnsureResident(Stack& stack, VirtAddr addr, bool is_write, SimTime& now) {
  for (int attempt = 0; attempt < 4; ++attempt) {
    const auto access = stack.region->Access(addr, is_write);
    if (access.kind != mem::AccessKind::kUffdFault) {
      // Already-resident touch: report it like the VM layer does, so
      // prefetched pages resolve to hits and tier heat refreshes. Pure
      // bookkeeping — legacy stacks replay byte-identically.
      if (access.kind == mem::AccessKind::kHit)
        stack.monitor->NotePageTouch(stack.rid, addr);
      return true;
    }
    const auto outcome = stack.monitor->HandleFault(stack.rid, addr, now);
    now = std::max(now, outcome.wake_at);
    if (outcome.deadlocked) return false;
    // A failed fault (store outage) is retryable: back off and re-issue,
    // as the guest would. Deterministic for a given plan.
    if (!outcome.status.ok()) now += 100 * kMicrosecond;
  }
  return stack.region->Access(addr, is_write).kind !=
         mem::AccessKind::kUffdFault;
}

std::optional<std::string> VerifyRegionAgainstShadow(
    fm::Monitor& monitor, mem::UffdRegion& region, fm::RegionId rid,
    kv::KvStore& store, mem::FramePool& pool, const ShadowMemory& shadow,
    SimTime& now, ChaosStats* stats) {
  const fm::PageTracker& tracker = monitor.tracker();
  const fm::WriteList& wl = monitor.write_list();
  std::unordered_map<fm::PageRef, FrameId, fm::PageRefHash> buffered;
  wl.ForEachPending(
      [&](const fm::PendingWrite& w) { buffered[w.page] = w.frame; });
  wl.ForEachInFlight(
      [&](const fm::PendingWrite& w, bool) { buffered[w.page] = w.frame; });

  std::optional<std::string> bad;
  std::array<std::byte, kPageSize> buf;
  shadow.ForEach([&](VirtAddr addr,
                     const std::array<std::byte, kPageSize>& want) {
    if (bad) return;
    const fm::PageRef p{rid, addr};
    const std::optional<fm::PageLocation> loc = tracker.Lookup(p);
    if (!loc.has_value()) {
      bad = "written page " + Hex(addr) + " unknown to the tracker";
      return;
    }
    switch (*loc) {
      case fm::PageLocation::kResident: {
        const Status s = region.ReadBytes(addr, buf);
        if (!s.ok()) {
          bad = "resident page " + Hex(addr) + " unreadable: " + s.ToString();
          return;
        }
        break;
      }
      case fm::PageLocation::kWriteList:
      case fm::PageLocation::kInFlight: {
        // Buffered frames hold the authoritative bytes whether or not the
        // posted batch succeeded — a failed batch keeps its frame.
        auto it = buffered.find(p);
        if (it == buffered.end()) {
          bad = "buffered page " + Hex(addr) + " has no write-list frame";
          return;
        }
        const auto data = pool.Data(it->second);
        std::memcpy(buf.data(), data.data(), kPageSize);
        break;
      }
      case fm::PageLocation::kRemote: {
        auto r = store.Get(monitor.partition_of(rid), kv::MakePageKey(addr),
                           buf, now);
        now = std::max(now, r.complete_at);
        if (r.status.code() == StatusCode::kUnavailable) {
          // A replicated store's failure detector may still be inside its
          // suspect window from pre-quiesce faults; step past it and probe
          // again before declaring the page unreadable.
          now += 5 * kMillisecond;
          r = store.Get(monitor.partition_of(rid), kv::MakePageKey(addr),
                        buf, now);
          now = std::max(now, r.complete_at);
        }
        if (!r.status.ok()) {
          bad = "remote page " + Hex(addr) +
                " unreadable with injection paused: " + r.status.ToString();
          return;
        }
        break;
      }
      case fm::PageLocation::kSpilled: {
        // Degraded to the local swap device; the monitor's slot map knows
        // where. Peek has no timing or injection side effects.
        const Status s = monitor.PeekSpilled(p, buf);
        if (!s.ok()) {
          bad = "spilled page " + Hex(addr) + " unreadable: " + s.ToString();
          return;
        }
        break;
      }
      case fm::PageLocation::kColdTier: {
        // Demoted to the cold-tier device; same oracle access as spill.
        const Status s = monitor.PeekColdTier(p, buf);
        if (!s.ok()) {
          bad = "cold-tier page " + Hex(addr) + " unreadable: " + s.ToString();
          return;
        }
        break;
      }
    }
    if (stats) ++stats->pages_verified;
    if (std::memcmp(buf.data(), want.data(), kPageSize) != 0)
      bad = "content mismatch on page " + Hex(addr) +
            " (stack diverged from the reference model)";
  });
  return bad;
}

std::optional<std::string> VerifyStack(Stack& stack, SimTime& now,
                                       ChaosStats* stats) {
  // Verification observes; it must not perturb. Pause injection for the
  // duration (per-site call counters still advance, preserving replay).
  stack.injector->set_paused(true);
  struct Unpause {
    FaultInjector* inj;
    ~Unpause() { inj->set_paused(false); }
  } unpause{stack.injector.get()};

  if (stats) ++stats->invariant_checks;
  if (auto violation = CheckInvariants(stack.View())) return violation;

  return VerifyRegionAgainstShadow(*stack.monitor, *stack.region, stack.rid,
                                   *stack.store, stack.pool, stack.shadow,
                                   now, stats);
}

namespace {

void EmitStats(const ScenarioOptions& opt, const RunReport& rep, SimTime now) {
  if (opt.tracer == nullptr) return;
  std::string msg;
  char head[160];
  std::snprintf(head, sizeof head,
                "ops=%llu blocked=%llu invariant_checks=%llu "
                "pages_verified=%llu fails=%llu stalls=%llu",
                static_cast<unsigned long long>(rep.stats.ops_executed),
                static_cast<unsigned long long>(rep.stats.blocked_ops),
                static_cast<unsigned long long>(rep.stats.invariant_checks),
                static_cast<unsigned long long>(rep.stats.pages_verified),
                static_cast<unsigned long long>(rep.faults.total_fails()),
                static_cast<unsigned long long>(rep.faults.total_stalls()));
  msg = head;
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    if (rep.faults.fails[i] == 0 && rep.faults.stalls[i] == 0) continue;
    char site[64];
    std::snprintf(site, sizeof site, " %s=%llu/%llu",
                  FaultSiteName(static_cast<FaultSite>(i)).data(),
                  static_cast<unsigned long long>(rep.faults.fails[i]),
                  static_cast<unsigned long long>(rep.faults.stalls[i]));
    msg += site;
  }
  opt.tracer->Record(now, "chaos_stats", msg);
}

}  // namespace

RunReport RunOps(const ScenarioOptions& opt, std::span<const Op> ops,
                 std::unique_ptr<Stack>* out_stack) {
  RunReport rep;
  rep.seed = opt.seed;
  rep.plan = opt.plan;

  auto stack_owner = std::make_unique<Stack>(opt);
  Stack& stack = *stack_owner;
  SimTime now = 0;
  std::uint32_t last_id = 0;
  std::size_t since_quiesce = 0;
  std::array<std::byte, kPageSize> buf;

  const auto fail = [&](std::uint32_t id, std::string what) {
    rep.ok = false;
    rep.failure = Failure{id, std::move(what)};
  };

  for (const Op& op : ops) {
    if (!rep.ok) break;
    last_id = op.id;
    stack.injector->BeginStep(op.id);
    switch (op.kind) {
      case OpKind::kWrite: {
        const VirtAddr page_base = stack.AddrOfPage(op.page);
        const std::size_t offset = (op.value % (kPageSize / 8)) * 8;
        if (!EnsureResident(stack, page_base, /*is_write=*/true, now)) {
          ++rep.stats.blocked_ops;
          break;
        }
        const std::uint64_t v = op.value;
        const auto bytes =
            std::as_bytes(std::span<const std::uint64_t, 1>(&v, 1));
        const Status s = stack.region->WriteBytes(page_base + offset, bytes);
        if (!s.ok()) {
          fail(op.id, "write to resident page " + Hex(page_base) +
                          " failed: " + s.ToString());
          break;
        }
        stack.shadow.Write(page_base + offset, bytes);
        break;
      }
      case OpKind::kRead: {
        const VirtAddr page_base = stack.AddrOfPage(op.page);
        if (!EnsureResident(stack, page_base, /*is_write=*/false, now)) {
          ++rep.stats.blocked_ops;
          break;
        }
        const Status s = stack.region->ReadBytes(page_base, buf);
        if (!s.ok()) {
          fail(op.id, "read of resident page " + Hex(page_base) +
                          " failed: " + s.ToString());
          break;
        }
        ++rep.stats.pages_verified;
        if (!stack.shadow.Matches(page_base, buf))
          fail(op.id, "differential mismatch reading page " + Hex(page_base));
        break;
      }
      case OpKind::kDrain:
        now = stack.monitor->DrainWrites(now);
        break;
      case OpKind::kPump:
        stack.monitor->PumpBackground(now);
        now += 20 * kMicrosecond;
        break;
      case OpKind::kResize: {
        // Clamp well above kvm_min_resident so a shrink can always finish.
        const std::size_t cap = 8 + op.value % (2 * opt.lru_capacity);
        now = stack.monitor->SetLruCapacity(cap, now);
        break;
      }
      case OpKind::kBugUnregister:
        // The re-introduced PR-1 bug; the next quiesce must catch what it
        // leaves behind (orphaned write-list entries for a dead region).
        (void)fm::MonitorTestPeer::BuggyUnregister(*stack.monitor, stack.rid,
                                                   now);
        break;
    }
    ++rep.stats.ops_executed;
    if (rep.ok && ++since_quiesce >= opt.quiesce_every) {
      since_quiesce = 0;
      if (auto violation = VerifyStack(stack, now, &rep.stats))
        fail(op.id, *violation);
    }
  }
  if (rep.ok) {
    if (auto violation = VerifyStack(stack, now, &rep.stats))
      fail(last_id, *violation);
  }

  rep.faults = stack.injector->stats();
  // On failure, dump the flight recorder next to the (seed, plan)
  // reproducer: the last spans (with stage breakdowns) and trace events
  // leading up to the violation.
  if (!rep.ok && stack.obs.enabled())
    rep.flight_dump = obs::DumpFlightRecorder(stack.obs);
  EmitStats(opt, rep, now);
  if (out_stack != nullptr) *out_stack = std::move(stack_owner);
  return rep;
}

RunReport RunScenario(const ScenarioOptions& opt) {
  const std::vector<Op> ops = GenerateOps(opt);
  return RunOps(opt, ops);
}

std::string RunReport::Report() const {
  std::string s = ok ? "chaos run OK: " : "chaos run FAILED: ";
  s += "seed=" + std::to_string(seed) + " " + plan.ToString();
  if (failure)
    s += "\n  at op " + std::to_string(failure->op_id) + ": " + failure->what;
  char tail[160];
  std::snprintf(tail, sizeof tail,
                "\n  ops=%llu blocked=%llu checks=%llu pages=%llu "
                "fails=%llu stalls=%llu",
                static_cast<unsigned long long>(stats.ops_executed),
                static_cast<unsigned long long>(stats.blocked_ops),
                static_cast<unsigned long long>(stats.invariant_checks),
                static_cast<unsigned long long>(stats.pages_verified),
                static_cast<unsigned long long>(faults.total_fails()),
                static_cast<unsigned long long>(faults.total_stalls()));
  s += tail;
  if (!flight_dump.empty()) s += "\n" + flight_dump;
  return s;
}

// --- shrinking ---------------------------------------------------------------

ShrinkResult ShrinkFailure(const ScenarioOptions& opt,
                           std::span<const Op> failing_ops,
                           int max_iterations) {
  ShrinkResult res;
  res.ops.assign(failing_ops.begin(), failing_ops.end());

  RunReport current = RunOps(opt, res.ops);
  res.iterations = 1;
  if (current.ok) {
    // Nothing to shrink: caller gave us a passing sequence.
    res.report = std::move(current);
    return res;
  }

  // ddmin-style chunk removal: repeatedly try dropping one of
  // `granularity` chunks; any candidate that still fails becomes the new
  // sequence. Op ids are never renumbered, so retained ops keep their
  // exact fault decisions and the search space is deterministic.
  std::size_t granularity = 2;
  while (res.ops.size() >= 2 && granularity <= res.ops.size() &&
         res.iterations < max_iterations) {
    const std::size_t chunk = (res.ops.size() + granularity - 1) / granularity;
    bool reduced = false;
    for (std::size_t start = 0;
         start < res.ops.size() && res.iterations < max_iterations;
         start += chunk) {
      std::vector<Op> candidate;
      candidate.reserve(res.ops.size());
      for (std::size_t i = 0; i < res.ops.size(); ++i)
        if (i < start || i >= start + chunk) candidate.push_back(res.ops[i]);
      if (candidate.empty()) continue;
      RunReport r = RunOps(opt, candidate);
      ++res.iterations;
      if (!r.ok) {
        res.ops = std::move(candidate);
        current = std::move(r);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= res.ops.size()) break;
      granularity = std::min(res.ops.size(), granularity * 2);
    }
  }
  if (opt.tracer != nullptr) {
    char msg[96];
    std::snprintf(msg, sizeof msg, "shrink iterations=%d minimal_ops=%zu",
                  res.iterations, res.ops.size());
    opt.tracer->Record(0, "chaos_stats", msg);
  }
  res.report = std::move(current);
  return res;
}

}  // namespace fluid::chaos
