// Scripted production drills: the four outage/contention exercises an
// operator runs against a shared memory pool before trusting it with
// tenant SLOs.
//
// A drill is a ScenarioOptions preset — the chaos (seed, plan) replay
// contract carries over unchanged — plus a handful of scripted events the
// multi-tenant composer (workloads/tenants.h) applies at fixed points in
// virtual time or in the merged access-id space:
//
//   noisy neighbor    the bursty antagonist tenant amplifies its bursts;
//                     nothing else fails. Tests that region quotas alone
//                     hold the steady tenant's SLO.
//   store failover    every store verb blackholes for a window of the
//                     merged op-id space mid-run; the stack must ride it
//                     out on retries + breakers + local spill.
//   rolling upgrade   a replicated store's replicas are taken down one
//                     after another via staggered FlakyStore::FailUntil
//                     windows — at most one replica down at a time, the
//                     quorum always available.
//   quota cut         a tenant's DRAM quota is slashed mid-run
//                     (SetRegionQuota), simulating a regional capacity
//                     give-back; its pages must spill to the store without
//                     disturbing the other tenants' correctness.
//   bit rot           silent corruption: ~1% of store reads serve
//                     bit-flipped payloads, a smaller share of writes are
//                     torn, recovering replicas occasionally serve stale
//                     versions — and one replica dies outright mid-run.
//                     Integrity envelopes + scrubbing + anti-entropy repair
//                     + re-replication must turn every event into
//                     detection-and-repair: zero wrong bytes may reach any
//                     tenant's VM.
//
// Every drill replays byte-identically from (kind, seed, geometry): all
// randomness flows from ScenarioOptions::seed and the plan.
#pragma once

#include <cstdint>
#include <string_view>

#include "chaos/harness.h"

namespace fluid::chaos {

enum class DrillKind : std::uint8_t {
  kNone = 0,  // baseline: no faults, no scripted events
  kNoisyNeighbor,
  kStoreFailover,
  kRollingUpgrade,
  kQuotaCut,
  kBitRot,
};

inline constexpr std::size_t kDrillCount = 6;  // including the baseline

constexpr std::string_view DrillName(DrillKind d) noexcept {
  switch (d) {
    case DrillKind::kNone: return "none";
    case DrillKind::kNoisyNeighbor: return "noisy_neighbor";
    case DrillKind::kStoreFailover: return "store_failover";
    case DrillKind::kRollingUpgrade: return "rolling_upgrade";
    case DrillKind::kQuotaCut: return "quota_cut";
    case DrillKind::kBitRot: return "bit_rot";
  }
  return "?";
}

struct Drill {
  DrillKind kind = DrillKind::kNone;
  // Stack geometry + the chaos (seed, plan) pair. The composer builds its
  // multi-region stack from these exactly as Stack does for one region.
  ScenarioOptions options;

  // kNoisyNeighbor: multiply antagonist tenants' burst length by this.
  double antagonist_burst_boost = 1.0;

  // kRollingUpgrade: replica count and the staggered maintenance windows —
  // replica i is down for [upgrade_start + i*w, upgrade_start + (i+1)*w).
  int upgrade_replicas = 0;
  SimTime upgrade_start = 0;
  SimDuration upgrade_window = 0;

  // kQuotaCut: at `quota_cut_at`, tenant `quota_cut_tenant`'s region quota
  // drops to `quota_cut_pages`.
  std::size_t quota_cut_tenant = 0;
  std::size_t quota_cut_pages = 0;
  SimTime quota_cut_at = 0;

  // kBitRot: replicated store (quorum 2) with per-replica integrity
  // envelopes; the silent-corruption sites are armed in options.plan and
  // options.{integrity_store, scrub_budget, replica_dead_after} configure
  // detection/repair. Independently of the rolling-upgrade windows, one
  // replica is taken down HARD at `replica_down_at` for `replica_down_for`
  // — longer than replica_dead_after, so the store declares it dead and
  // re-replicates its key set. replica_down_for == 0 disables the event.
  int replicas = 0;  // replicated store when > 0 (kRollingUpgrade uses
                     // upgrade_replicas; either enables the same path)
  std::size_t replica_down_index = 0;
  SimTime replica_down_at = 0;
  SimDuration replica_down_for = 0;
};

// Build the canonical preset for `kind`. `total_accesses` sizes the
// failover outage window in the merged op-id space (chaos-style, so the
// window is hit regardless of time dilation); `horizon` is the run's
// approximate virtual duration and anchors the time-scripted events.
Drill MakeDrill(DrillKind kind, std::uint64_t seed,
                std::size_t total_accesses, SimTime horizon);

}  // namespace fluid::chaos
