#include "chaos/drills.h"

namespace fluid::chaos {

Drill MakeDrill(DrillKind kind, std::uint64_t seed,
                std::size_t total_accesses, SimTime horizon) {
  Drill d;
  d.kind = kind;
  d.options.seed = seed;
  d.options.plan.seed = seed ^ 0xd9117ULL;
  // Sharded engine + observability are the composer's production shape;
  // spans carry the per-tenant attribution the SLO verdicts are built on.
  d.options.fault_shards = 4;
  d.options.observe = true;

  switch (kind) {
    case DrillKind::kNone:
    case DrillKind::kNoisyNeighbor:
      // No injected faults: the only adversary is the antagonist tenant's
      // amplified burst pattern, contending for DRAM and handler time.
      if (kind == DrillKind::kNoisyNeighbor) d.antagonist_burst_boost = 4.0;
      break;

    case DrillKind::kStoreFailover: {
      // Blackhole every store verb for ~8% of the merged op-id space,
      // starting at 40% — mid-run, when the working set is established and
      // bursts are in flight. The op-id keying makes the window land on
      // the same logical accesses in every replay.
      const auto from = static_cast<std::uint32_t>(total_accesses * 2 / 5);
      const auto to =
          static_cast<std::uint32_t>(from + total_accesses * 2 / 25);
      for (const FaultSite s :
           {FaultSite::kStoreGet, FaultSite::kStorePut,
            FaultSite::kStoreMultiPut, FaultSite::kStoreMultiPutKey}) {
        d.options.plan.at(s).outage_from = from;
        d.options.plan.at(s).outage_to = to;
      }
      // Survival gear: retries/hedging in front of the store, a local swap
      // device behind the write breaker.
      d.options.resilient_store = true;
      d.options.attach_spill = true;
      d.options.spill_capacity = 2048;
      // Plus wire rot: ~1% of reads come back bit-flipped. With a single
      // store there is no replica to repair from, so only TRANSIENT read
      // corruption is planted (no torn writes — those poison the stored
      // bytes permanently); the envelope turns each flip into DataLoss and
      // the resilient retry re-reads clean bytes.
      d.options.integrity_store = true;
      d.options.scrub_budget = 4;
      d.options.plan.at(FaultSite::kStoreCorruptBits).fail_p = 0.01;
      break;
    }

    case DrillKind::kRollingUpgrade:
      // Three replicas, quorum 2; each is taken down for one maintenance
      // window in turn. Windows are disjoint, so the quorum holds and no
      // data is ever unreachable — the drill measures the latency cost of
      // failover reads + anti-entropy repair, not data loss.
      d.upgrade_replicas = 3;
      d.upgrade_start = horizon / 4;
      d.upgrade_window = horizon / 6;
      break;

    case DrillKind::kQuotaCut:
      // Slash the antagonist tenant's DRAM share a third of the way in:
      // a regional capacity give-back. Its resident pages evict down to
      // the new quota; correctness must hold, and the freed DRAM should
      // help, not hurt, its neighbours.
      d.quota_cut_tenant = 1;
      d.quota_cut_pages = 16;
      d.quota_cut_at = horizon / 3;
      break;

    case DrillKind::kBitRot:
      // Silent corruption across the board: ~1% of replica reads serve
      // bit-flipped payloads, 0.5% of writes tear mid-page, 0.5% of reads
      // on a recovering replica serve the previous version. Three
      // integrity-enveloped replicas (quorum 2) detect every event as
      // DataLoss, fail over to a clean peer, and dirty the rotten copy for
      // anti-entropy repair; a budgeted scrubber hunts rot on cold pages.
      d.options.plan.at(FaultSite::kStoreCorruptBits).fail_p = 0.01;
      d.options.plan.at(FaultSite::kStoreTornWrite).fail_p = 0.005;
      d.options.plan.at(FaultSite::kStoreStaleGet).fail_p = 0.005;
      d.replicas = 3;
      d.options.integrity_store = true;
      d.options.scrub_budget = 8;
      d.options.resilient_store = true;
      // Replica death: replica 2 goes down hard mid-run for a quarter of
      // the horizon — past the declare-dead threshold, so the store must
      // re-replicate its full key set from the surviving peers and restore
      // RF by the time the outage ends.
      d.options.replica_dead_after = horizon / 8;
      d.replica_down_index = 2;
      d.replica_down_at = horizon / 2;
      d.replica_down_for = horizon / 4;
      break;
  }
  return d;
}

}  // namespace fluid::chaos
