// FaultInjector: the imperative half of the chaos harness.
//
// One injector is installed behind every FaultHook site in a scenario
// stack. Each decision is a pure function of
//   (plan seed, fault site, current op id, per-site call counter)
// so a run is bit-replayable from its (seed, plan) pair alone, and —
// because the harness calls BeginStep with the op's ORIGINAL id even
// after shrinking removed its neighbours — a shrunk subsequence sees the
// exact same faults on the ops it retains. That property is what makes
// ddmin converge on real minimal reproducers instead of chasing a moving
// fault schedule.
#pragma once

#include <array>
#include <cstdint>

#include "chaos/fault_plan.h"
#include "common/fault_hook.h"
#include "common/rng.h"

namespace fluid::chaos {

struct InjectorStats {
  std::array<std::uint64_t, kFaultSiteCount> fails{};
  std::array<std::uint64_t, kFaultSiteCount> stalls{};

  std::uint64_t total_fails() const {
    std::uint64_t n = 0;
    for (auto v : fails) n += v;
    return n;
  }
  std::uint64_t total_stalls() const {
    std::uint64_t n = 0;
    for (auto v : stalls) n += v;
    return n;
  }
};

class FaultInjector final : public FaultHook {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(plan) {}

  const FaultPlan& plan() const noexcept { return plan_; }

  // The harness calls this before executing each workload op. Resets the
  // per-site call counters so a given op always sees the same decision
  // sequence no matter what ran before it.
  void BeginStep(std::uint32_t op_id) noexcept {
    step_ = op_id;
    calls_.fill(0);
  }

  // Quiesce-time verification must observe the stack, not perturb it:
  // the oracle pauses injection while it sweeps memory contents.
  void set_paused(bool paused) noexcept { paused_ = paused; }
  bool paused() const noexcept { return paused_; }

  const InjectorStats& stats() const noexcept { return stats_; }

  FaultDecision OnOp(FaultSite site, SimTime /*now*/) override {
    const auto idx = static_cast<std::size_t>(site);
    const std::uint32_t call = calls_[idx]++;
    if (paused_) return {};
    const SiteFaults& f = plan_.site[idx];
    if (!f.active()) return {};

    FaultDecision d;
    if (step_ >= f.outage_from && step_ < f.outage_to &&
        (f.outage_call_stride <= 1 ||
         call % f.outage_call_stride == f.outage_call_phase)) {
      d.fail = true;
    } else if (f.fail_p > 0.0 &&
               HashToUnit(site, call, /*salt=*/0x4661696cULL) < f.fail_p) {
      d.fail = true;
    }
    if (!d.fail && f.stall_p > 0.0 &&
        HashToUnit(site, call, /*salt=*/0x5374616cULL) < f.stall_p) {
      d.extra_latency = f.stall;
      ++stats_.stalls[idx];
    }
    if (d.fail) {
      ++stats_.fails[idx];
      // Corruption details (bit index, torn-write cut point) come from the
      // same pure-hash family as the decision, under a distinct salt, so a
      // replay reproduces not just THAT a page rotted but HOW.
      d.entropy = HashBits(site, call, /*salt=*/0x456e7472ULL);
    }
    return d;
  }

  bool SiteArmed(FaultSite site) const override {
    return plan_.site[static_cast<std::size_t>(site)].active();
  }

 private:
  // Deterministic 64-bit hash of (seed, site, step, call, salt).
  std::uint64_t HashBits(FaultSite site, std::uint32_t call,
                         std::uint64_t salt) const noexcept {
    std::uint64_t s = plan_.seed ^ salt;
    s ^= SplitMix64(s) + static_cast<std::uint64_t>(site);
    s ^= SplitMix64(s) + step_;
    s ^= SplitMix64(s) + call;
    return SplitMix64(s);
  }
  // Deterministic uniform in [0,1) from (seed, site, step, call, salt).
  double HashToUnit(FaultSite site, std::uint32_t call,
                    std::uint64_t salt) const noexcept {
    return static_cast<double>(HashBits(site, call, salt) >> 11) * 0x1.0p-53;
  }

  FaultPlan plan_;
  std::uint32_t step_ = 0;
  std::array<std::uint32_t, kFaultSiteCount> calls_{};
  bool paused_ = false;
  InjectorStats stats_;
};

}  // namespace fluid::chaos
