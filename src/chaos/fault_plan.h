// FaultPlan: the declarative half of the chaos harness.
//
// A plan describes, per fault site, how often operations fail outright,
// how often they stall (latency spike) and by how much, and an optional
// hard outage window expressed in *op-id* space. Together with the
// injection seed, a plan fully determines every fault a run experiences:
// any failing run is replayable from its (seed, plan) pair, which every
// failure report prints (see RunReport::Report in harness.h).
//
// Outage windows are keyed on op ids rather than virtual time so that
// shrinking an op sequence (which compresses virtual time unpredictably)
// keeps the outage aligned with the same logical operations.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/fault_hook.h"
#include "common/types.h"

namespace fluid::chaos {

struct SiteFaults {
  // Independent per-operation probabilities, decided by a hash of
  // (plan seed, site, op id, per-op call index) — see FaultInjector.
  double fail_p = 0.0;
  double stall_p = 0.0;
  SimDuration stall = 0;  // extra latency when a stall fires
  // Hard outage: every op with outage_from <= id < outage_to fails at this
  // site. from == to (default) disables the window.
  std::uint32_t outage_from = 0;
  std::uint32_t outage_to = 0;
  // Restrict the outage to a subset of the site's per-op consultations:
  // only calls with (call_index % stride == phase) fail. Several stores
  // sharing one injector consult a site in a fixed order (e.g. the three
  // replicas of a ReplicatedStore draw calls 0,1,2 per op), so stride 3 /
  // phase 1 takes down exactly replica 1 while its peers stay up. The
  // stride applies to the outage window only; fail_p/stall_p stay
  // unconditional. stride <= 1 disables the filter.
  std::uint32_t outage_call_stride = 1;
  std::uint32_t outage_call_phase = 0;

  bool active() const noexcept {
    return fail_p > 0.0 || stall_p > 0.0 || outage_to > outage_from;
  }
};

struct FaultPlan {
  std::uint64_t seed = 0;  // injection-decision seed (NOT the workload seed)
  std::array<SiteFaults, kFaultSiteCount> site{};

  SiteFaults& at(FaultSite s) { return site[static_cast<std::size_t>(s)]; }
  const SiteFaults& at(FaultSite s) const {
    return site[static_cast<std::size_t>(s)];
  }

  // Compact single-line description, e.g.
  //   "plan{seed=7 store.multiput[fail_p=0 outage=40..120] net.rtt[stall_p=0.1/25us]}"
  // Printed in every failure report so a human can reconstruct the run.
  std::string ToString() const {
    std::string out = "plan{seed=" + std::to_string(seed);
    for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
      const SiteFaults& f = site[i];
      if (!f.active()) continue;
      out += ' ';
      out += FaultSiteName(static_cast<FaultSite>(i));
      out += '[';
      bool first = true;
      auto sep = [&] {
        if (!first) out += ' ';
        first = false;
      };
      if (f.fail_p > 0.0) {
        sep();
        out += "fail_p=" + std::to_string(f.fail_p);
      }
      if (f.stall_p > 0.0) {
        sep();
        out += "stall_p=" + std::to_string(f.stall_p) + "/" +
               std::to_string(ToMicros(f.stall)) + "us";
      }
      if (f.outage_to > f.outage_from) {
        sep();
        out += "outage=" + std::to_string(f.outage_from) + ".." +
               std::to_string(f.outage_to);
        if (f.outage_call_stride > 1)
          out += "/s" + std::to_string(f.outage_call_stride) + "p" +
                 std::to_string(f.outage_call_phase);
      }
      out += ']';
    }
    out += '}';
    return out;
  }
};

}  // namespace fluid::chaos
