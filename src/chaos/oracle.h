// ShadowMemory: the reference-model oracle.
//
// A flat map from page number to the bytes the workload believes that page
// holds. The harness mirrors every workload write into the shadow and,
// on every read and at every quiesce point, compares what the real stack
// serves (resident frame, buffered write-list frame, or remote store copy)
// against the shadow. The stack under test moves pages through uffd
// faults, eviction, asynchronous writeback, failover and migration; the
// oracle is the fixed point all of that machinery must be equivalent to.
//
// Pages never written are implicitly zero — matching the kernel's
// zero-page semantics for first-touch faults.
#pragma once

#include <array>
#include <cstddef>
#include <cstring>
#include <span>
#include <unordered_map>

#include "common/types.h"

namespace fluid::chaos {

class ShadowMemory {
 public:
  // Mirror a workload write of `bytes` at byte offset `offset` within the
  // page containing `addr`.
  void Write(VirtAddr addr, std::span<const std::byte> bytes) {
    auto& page = pages_[PageOf(addr)];
    const std::size_t offset = addr & (kPageSize - 1);
    std::memcpy(page.data() + offset, bytes.data(),
                std::min(bytes.size(), kPageSize - offset));
  }

  // Expected contents of the page containing `addr`; nullptr means the
  // page was never written and must read as all zeroes.
  const std::array<std::byte, kPageSize>* Lookup(VirtAddr addr) const {
    auto it = pages_.find(PageOf(addr));
    return it == pages_.end() ? nullptr : &it->second;
  }

  // True iff `got` matches the expected contents of `addr`'s page.
  bool Matches(VirtAddr addr,
               std::span<const std::byte, kPageSize> got) const {
    if (const auto* page = Lookup(addr))
      return std::memcmp(got.data(), page->data(), kPageSize) == 0;
    for (std::byte b : got)
      if (b != std::byte{0}) return false;
    return true;
  }

  void Forget(VirtAddr addr) { pages_.erase(PageOf(addr)); }
  void Clear() { pages_.clear(); }
  std::size_t TouchedPages() const { return pages_.size(); }

  // Iterate all pages ever written: f(VirtAddr page_base, const array&).
  template <typename F>
  void ForEach(F&& f) const {
    for (const auto& [pn, bytes] : pages_) f(AddrOf(pn), bytes);
  }

 private:
  std::unordered_map<PageNum, std::array<std::byte, kPageSize>> pages_;
};

}  // namespace fluid::chaos
