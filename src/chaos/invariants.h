// Quiesce-point global invariants over the whole FluidMem stack.
//
// The differential oracle (oracle.h) checks page *contents*; these checks
// cover the *bookkeeping*: whatever faults were injected, at any quiesce
// point the monitor's four views of the world — frame pool, LRU buffer,
// page tracker, write list — must still agree with each other and with the
// uffd regions' page tables. The PR-1 shutdown bug (UnregisterRegion
// flushing a dying region's writes and then forgetting them when the store
// is down) is exactly a violation of invariants 1 and 2 below, and the
// acceptance test re-introduces it via MonitorTestPeer::BuggyUnregister to
// prove these checks catch it.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fluidmem/monitor.h"
#include "fluidmem/test_peer.h"
#include "kvstore/kvstore.h"
#include "mem/frame_pool.h"
#include "mem/uffd.h"

namespace fluid::chaos {

// Everything the invariant sweep needs to see. `store` may be null when
// the store's Contains() is not meaningful (e.g. mid-outage checks).
struct StackView {
  fm::Monitor* monitor = nullptr;
  mem::FramePool* pool = nullptr;
  std::vector<std::pair<fm::RegionId, mem::UffdRegion*>> regions;
  const kv::KvStore* store = nullptr;
};

// Returns a description of the first violated invariant, or nullopt when
// the stack is consistent. Checked families:
//   1. frame conservation — every pool frame is accounted for by exactly
//      the regions' resident frames plus the write list's buffered frames;
//   2. write-list sanity — every buffered write belongs to an ACTIVE
//      region and the tracker agrees on its location
//      (pending -> kWriteList, posted -> kInFlight);
//   3. LRU residency — every LRU entry is tracked kResident and actually
//      present in its region's page table;
//   4. tracker sweep — every tracked page's location is backed by the
//      structure that location names (LRU / write list / store);
//   5. quarantine consistency — every poisoned page belongs to an active
//      region, is tracked kRemote, and is absent from the VM's page table
//      (corrupt bytes are never cached in DRAM).
std::optional<std::string> CheckInvariants(const StackView& view);

}  // namespace fluid::chaos
