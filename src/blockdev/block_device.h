// Block devices backing the swap baseline (paper §VI-A).
//
// The evaluation compares swap on three media:
//   * /dev/pmem0 — a DRAM-backed persistent-memory block device (the
//     "Swap DRAM" lower bound standing in for Infiniswap-to-local-DRAM);
//   * an NVMe-over-Fabrics target whose storage is remote DRAM, reached
//     over FDR InfiniBand;
//   * a local SATA SSD partition.
// Each device stores real 4 KB blocks (sparsely) and charges a service time
// from its latency model plus FIFO queueing on its command queue; NVMeoF
// additionally pays the fabric round trip.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/dist.h"
#include "common/fault_hook.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "net/transport.h"
#include "sim/timeline.h"

namespace fluid::blk {

// Linear block address in 4 KB units.
using BlockNum = std::uint64_t;

struct BlockIoResult {
  Status status;
  SimTime complete_at = 0;
};

struct BlockDeviceParams {
  std::string name;
  std::size_t capacity_blocks = (20ULL << 30) / kPageSize;  // 20 GB as in §VI-B
  LatencyDist read_service;
  LatencyDist write_service;
  // Fabric RTT per command; disengaged for local devices.
  std::optional<net::Transport> fabric;
  std::uint64_t seed = 46;
};

class BlockDevice {
 public:
  explicit BlockDevice(BlockDeviceParams params)
      : params_(std::move(params)), rng_(params_.seed) {}

  std::string_view name() const noexcept { return params_.name; }
  std::size_t capacity_blocks() const noexcept { return params_.capacity_blocks; }

  // Chaos harness: command-level fault injection. A stall decision adds
  // service time (firmware GC pause, fabric congestion); a fail decision
  // completes the command with kUnavailable after a timeout-ish delay
  // without touching the medium.
  void set_fault_hook(FaultHookPtr hook) noexcept { hook_ = std::move(hook); }

  BlockIoResult Read(BlockNum block, std::span<std::byte, kPageSize> out,
                     SimTime now) {
    if (block >= params_.capacity_blocks)
      return {Status::InvalidArgument("block out of range"), now};
    const FaultDecision fd = Inject(FaultSite::kBlockRead, now);
    if (fd.fail) {
      ++io_errors_;
      return {Status::Unavailable("injected device failure"),
              now + fd.extra_latency + kIoErrorDelay};
    }
    auto it = blocks_.find(block);
    if (it == blocks_.end()) {
      // Reading a never-written block returns zeroes, like a zeroed device.
      std::memset(out.data(), 0, kPageSize);
    } else {
      std::memcpy(out.data(), it->second.data(), kPageSize);
    }
    ++reads_;
    return {Status::Ok(),
            Complete(now, params_.read_service, kPageSize, fd.extra_latency)};
  }

  BlockIoResult Write(BlockNum block, std::span<const std::byte, kPageSize> in,
                      SimTime now) {
    if (block >= params_.capacity_blocks)
      return {Status::InvalidArgument("block out of range"), now};
    const FaultDecision fd = Inject(FaultSite::kBlockWrite, now);
    if (fd.fail) {
      ++io_errors_;
      return {Status::Unavailable("injected device failure"),
              now + fd.extra_latency + kIoErrorDelay};
    }
    auto& buf = blocks_[block];
    buf.assign(in.begin(), in.end());
    ++writes_;
    return {Status::Ok(),
            Complete(now, params_.write_service, kPageSize, fd.extra_latency)};
  }

  // Data-only read with no timing or queue effects: used when a model
  // layer (e.g. the guest page cache) already holds the block logically
  // and only the bytes are needed for verification.
  Status Peek(BlockNum block, std::span<std::byte, kPageSize> out) const {
    if (block >= params_.capacity_blocks)
      return Status::InvalidArgument("block out of range");
    auto it = blocks_.find(block);
    if (it == blocks_.end())
      std::memset(out.data(), 0, kPageSize);
    else
      std::memcpy(out.data(), it->second.data(), kPageSize);
    return Status::Ok();
  }

  std::uint64_t reads() const noexcept { return reads_; }
  std::uint64_t writes() const noexcept { return writes_; }
  std::uint64_t io_errors() const noexcept { return io_errors_; }
  std::size_t blocks_written() const noexcept { return blocks_.size(); }
  const Timeline& queue() const noexcept { return queue_; }

 private:
  // A failed command still holds the submitter for an abort/timeout window
  // before the error surfaces.
  static constexpr SimDuration kIoErrorDelay = 100 * kMicrosecond;

  FaultDecision Inject(FaultSite site, SimTime now) {
    return hook_ ? hook_->OnOp(site, now) : FaultDecision{};
  }

  SimTime Complete(SimTime now, const LatencyDist& service,
                   std::size_t bytes, SimDuration stall = 0) {
    SimTime submit = now;
    SimDuration fabric_out = 0, fabric_back = 0;
    if (params_.fabric) {
      const SimDuration rtt = params_.fabric->SampleRtt(64, bytes, rng_);
      fabric_out = rtt / 2;
      fabric_back = rtt - fabric_out;
    }
    // A stall occupies the command queue — queued commands behind a
    // stalled one wait too, exactly how a GC pause behaves.
    const auto svc =
        queue_.Occupy(submit + fabric_out, service.Sample(rng_) + stall);
    return svc.end + fabric_back;
  }

  BlockDeviceParams params_;
  Rng rng_;
  Timeline queue_;
  FaultHookPtr hook_;
  std::unordered_map<BlockNum, std::vector<std::byte>> blocks_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t io_errors_ = 0;
};

// --- Calibrated device models -----------------------------------------------

// Local DRAM-backed pmem block device: service is essentially a page copy
// plus block-layer completion; no fabric.
inline BlockDevice MakePmemDevice(std::size_t capacity_blocks =
                                      (20ULL << 30) / kPageSize) {
  return BlockDevice{BlockDeviceParams{
      .name = "pmem-dram",
      .capacity_blocks = capacity_blocks,
      .read_service = LatencyDist::Normal(3.2, 0.4, 1.5),
      .write_service = LatencyDist::Normal(3.0, 0.4, 1.5),
      .fabric = std::nullopt,
      .seed = 47,
  }};
}

// NVMe over Fabrics to a remote DRAM target (/dev/pmem0 on the target, FDR
// InfiniBand in between). The paper measured ~41.7 us average swap faults on
// this device (Fig. 3e).
inline BlockDevice MakeNvmeofDevice(std::size_t capacity_blocks =
                                        (20ULL << 30) / kPageSize) {
  return BlockDevice{BlockDeviceParams{
      .name = "nvmeof-dram",
      .capacity_blocks = capacity_blocks,
      // Target-side NVMe command processing + pmem copy + completion path.
      .read_service = LatencyDist::Normal(9.0, 1.2, 4.0),
      .write_service = LatencyDist::Normal(8.5, 1.2, 4.0),
      .fabric = net::MakeVerbsTransport(),
      .seed = 48,
  }};
}

// Local SATA SSD: tens-of-microseconds flash reads with a long tail
// (garbage collection), ~100 us average swap faults (Fig. 3f).
inline BlockDevice MakeSsdDevice(std::size_t capacity_blocks =
                                     (20ULL << 30) / kPageSize) {
  return BlockDevice{BlockDeviceParams{
      .name = "ssd",
      .capacity_blocks = capacity_blocks,
      // Reads hit flash (long tail from GC); writes land in the drive's
      // DRAM buffer and complete quickly.
      .read_service = LatencyDist::Lognormal(78.0, 0.30, 30.0),
      .write_service = LatencyDist::Lognormal(18.0, 0.40, 8.0),
      .fabric = std::nullopt,
      .seed = 49,
  }};
}

}  // namespace fluid::blk
