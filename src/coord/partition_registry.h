// PartitionRegistry: globally-unique virtual-partition allocation (paper §IV).
//
// "The index is created using the process PID, a hypervisor ID, and a nonce,
//  where global uniqueness is ensured by a replicated and globally
//  consistent table stored in Zookeeper."
//
// Every VM (one uffd region == one QEMU process) gets a 12-bit partition
// index so that multiple VMs can share one key-value store without key
// collisions. Allocation is create-if-absent on "alloc/<idx>" entries in the
// ReplicatedTable: two monitors racing for the same index are serialized by
// the table, and the loser probes the next candidate. An identity entry
// ("id/<pid>:<hypervisor>:<nonce>") makes allocation idempotent across
// monitor restarts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/status.h"
#include "common/types.h"
#include "coord/replicated_table.h"

namespace fluid::coord {

struct VmIdentity {
  ProcessId pid = 0;
  HypervisorId hypervisor = 0;
  std::uint64_t nonce = 0;

  std::string ToString() const {
    return std::to_string(pid) + ":" + std::to_string(hypervisor) + ":" +
           std::to_string(nonce);
  }
};

struct AllocationResult {
  Status status;
  PartitionId partition = 0;
  SimTime complete_at = 0;
};

class PartitionRegistry {
 public:
  explicit PartitionRegistry(ReplicatedTable& table) : table_(&table) {}

  // Allocate (or re-find) the partition for this identity. With a live
  // `session`, the allocation is EPHEMERAL: if the owning monitor stops
  // heartbeating (host crash), the table reaps the entries and the
  // partition index becomes reusable — no leaked partitions.
  AllocationResult Allocate(const VmIdentity& id, SimTime now,
                            SessionId session = kNoSession);

  // Release a partition on VM shutdown.
  Status Release(const VmIdentity& id, SimTime now);

  // Look up without allocating.
  std::optional<PartitionId> Find(const VmIdentity& id, SimTime now) const;

  std::size_t AllocatedCount() const {
    return table_->KeysWithPrefix("alloc/").size();
  }

 private:
  static std::string AllocKey(PartitionId p) {
    return "alloc/" + std::to_string(p);
  }
  static std::string IdKey(const VmIdentity& id) {
    return "id/" + id.ToString();
  }

  // Deterministic starting probe point: hash the identity so allocations
  // from different hypervisors spread over the 12-bit space instead of
  // contending on index 0.
  static PartitionId ProbeStart(const VmIdentity& id) {
    std::uint64_t x = (static_cast<std::uint64_t>(id.pid) << 32) ^
                      (static_cast<std::uint64_t>(id.hypervisor) << 13) ^
                      id.nonce;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 29;
    return static_cast<PartitionId>(x % kMaxVirtualPartitions);
  }

  ReplicatedTable* table_;
};

}  // namespace fluid::coord
