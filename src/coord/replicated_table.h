// ReplicatedTable: a ZooKeeper-stand-in providing a replicated, versioned,
// globally consistent key → value table.
//
// The paper (§IV) ensures global uniqueness of virtual-partition indices
// with "a replicated and globally consistent table stored in Zookeeper".
// We reproduce the coordination *contract* FluidMem relies on — linearizable
// create-if-absent, versioned compare-and-set, liveness while a majority of
// replicas is up — with a primary that commits an operation once a majority
// of replicas acknowledge it. This is deliberately not a full ZAB/Paxos
// implementation (DESIGN.md §5): there is a single fixed primary, and the
// interesting behaviours for FluidMem (uniqueness under concurrent
// allocation, unavailability below quorum, recovery of state from replicas)
// are all present and tested.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/dist.h"
#include "common/fault_hook.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"

namespace fluid::coord {

struct Versioned {
  std::string value;
  std::uint64_t version = 0;  // starts at 1 on create
};

struct TableOpResult {
  Status status;
  SimTime complete_at = 0;
  Versioned data;  // valid for reads and successful writes
};

struct ReplicatedTableConfig {
  int replica_count = 3;  // typical ZooKeeper ensemble
  LatencyDist replica_rtt = LatencyDist::Lognormal(120.0, 0.3, 50.0);  // us
  // Ephemeral-node session timeout: a client that stops heartbeating for
  // this long loses its session, and every ephemeral key it created is
  // deleted — how ZooKeeper cleans up after crashed FluidMem monitors.
  SimDuration session_timeout = 10 * kSecond;
  // How long a leader election blackout lasts after CrashPrimary: every
  // client op fails kUnavailable until it ends (ZooKeeper elections are
  // observed as a window of connection loss, typically sub-second).
  SimDuration election_time = 300 * kMillisecond;
  std::uint64_t seed = 45;
};

using SessionId = std::uint64_t;
inline constexpr SessionId kNoSession = 0;

class ReplicatedTable {
 public:
  explicit ReplicatedTable(ReplicatedTableConfig config = {})
      : config_(config), rng_(config.seed),
        replicas_(static_cast<std::size_t>(config.replica_count)) {}

  // --- client operations (linearizable; go through the primary) ------------

  // Create key; kAlreadyExists if present. New version is 1. Passing a
  // live session makes the node EPHEMERAL: it is deleted automatically
  // when the session expires.
  TableOpResult Create(const std::string& key, std::string value, SimTime now,
                       SessionId session = kNoSession);

  // Read current value; kNotFound if absent.
  TableOpResult Read(const std::string& key, SimTime now);

  // Compare-and-set: succeeds only if current version == expected_version.
  // kFailedPrecondition on version mismatch, kNotFound if absent.
  TableOpResult Update(const std::string& key, std::string value,
                       std::uint64_t expected_version, SimTime now);

  // Delete regardless of version; kNotFound if absent.
  TableOpResult Delete(const std::string& key, SimTime now);

  // List keys with a prefix (directory-style scan, like getChildren).
  std::vector<std::string> KeysWithPrefix(const std::string& prefix) const;

  // --- sessions & ephemeral nodes ---------------------------------------------

  // Open a client session (monitor startup). Sessions stay alive while
  // heartbeats arrive within session_timeout of each other.
  SessionId OpenSession(SimTime now);
  Status Heartbeat(SessionId session, SimTime now);
  // Close cleanly: ephemeral nodes are removed immediately.
  Status CloseSession(SessionId session, SimTime now);
  bool SessionAlive(SessionId session, SimTime now) const;
  // Expire sessions whose last heartbeat is older than the timeout,
  // deleting their ephemeral nodes. Returns how many keys were reaped.
  std::size_t ExpireSessions(SimTime now);

  // --- fault injection -------------------------------------------------------

  // Seeded chaos hook. kCoordOp is consulted once per client operation
  // (fail → the op returns kUnavailable; extra_latency delays it) and
  // kCoordAck once per replica per commit (fail → that replica never sees
  // the proposal and contributes no acknowledgement).
  void set_fault_hook(FaultHookPtr hook) noexcept { hook_ = std::move(hook); }

  void CrashReplica(int idx);
  // A restarted replica re-syncs from the primary's committed state.
  void RestoreReplica(int idx);
  // Crash the current primary: one alive replica dies and a leader
  // election begins. Every client op until now + election_time fails
  // kUnavailable("leader election in progress"). Committed state survives
  // on the surviving quorum; restore the replica with RestoreReplica.
  // Returns the crashed replica index, or -1 if none was alive.
  int CrashPrimary(SimTime now);
  bool InElection(SimTime now) const noexcept { return now < election_done_; }
  std::uint64_t elections() const noexcept { return elections_; }
  std::uint64_t dropped_acks() const noexcept { return dropped_acks_; }
  int AliveReplicas() const;
  bool HasQuorum() const {
    return AliveReplicas() >= config_.replica_count / 2 + 1;
  }

  // Verify all alive replicas hold identical committed state (test hook).
  bool ReplicasConsistent() const;

  std::size_t Size() const { return committed_.size(); }

 private:
  struct Replica {
    bool alive = true;
    std::map<std::string, Versioned> state;
  };

  // Replicate the committed state of `key` (or its absence) to a majority;
  // returns the commit completion time, or kUnavailable if below quorum or
  // if injected ack drops leave the proposal under-acknowledged. `prior`
  // is the value the key held before the caller's mutation (nullptr if
  // absent): replicas that applied an uncommitted proposal are rolled back
  // to it so the ensemble stays consistent with the caller's own rollback.
  StatusOr<SimTime> Commit(const std::string& key, SimTime now,
                           const Versioned* prior);

  // Election-window and kCoordOp gate shared by every client op: returns
  // the injected extra latency to absorb, or the failure status.
  StatusOr<SimDuration> OpGate(SimTime now);

  ReplicatedTableConfig config_;
  Rng rng_;
  FaultHookPtr hook_;
  SimTime election_done_ = 0;
  std::uint64_t elections_ = 0;
  std::uint64_t dropped_acks_ = 0;
  std::map<std::string, Versioned> committed_;  // the primary's state
  std::vector<Replica> replicas_;

  struct Session {
    SimTime last_heartbeat = 0;
    bool open = false;
    std::vector<std::string> ephemerals;
  };
  SessionId next_session_ = 1;
  std::map<SessionId, Session> sessions_;
};

}  // namespace fluid::coord
