#include "coord/partition_registry.h"

namespace fluid::coord {

AllocationResult PartitionRegistry::Allocate(const VmIdentity& id,
                                             SimTime now,
                                             SessionId session) {
  AllocationResult out;

  // Idempotence: if this identity already holds a partition, return it.
  TableOpResult existing = table_->Read(IdKey(id), now);
  now = existing.complete_at;
  if (existing.status.ok()) {
    out.status = Status::Ok();
    out.partition =
        static_cast<PartitionId>(std::stoul(existing.data.value));
    out.complete_at = now;
    return out;
  }
  if (existing.status.code() == StatusCode::kUnavailable) {
    out.status = existing.status;
    out.complete_at = now;
    return out;
  }

  // Probe for a free index, serialized by create-if-absent on the table.
  const PartitionId start = ProbeStart(id);
  for (std::uint32_t i = 0; i < kMaxVirtualPartitions; ++i) {
    const auto candidate = static_cast<PartitionId>(
        (start + i) % kMaxVirtualPartitions);
    TableOpResult claim =
        table_->Create(AllocKey(candidate), id.ToString(), now, session);
    now = claim.complete_at;
    if (claim.status.ok()) {
      // Record the reverse mapping; roll back the claim if it fails.
      TableOpResult rev =
          table_->Create(IdKey(id), std::to_string(candidate), now, session);
      now = rev.complete_at;
      if (!rev.status.ok()) {
        (void)table_->Delete(AllocKey(candidate), now);
        out.status = rev.status;
        out.complete_at = now;
        return out;
      }
      out.status = Status::Ok();
      out.partition = candidate;
      out.complete_at = now;
      return out;
    }
    if (claim.status.code() == StatusCode::kUnavailable) {
      out.status = claim.status;
      out.complete_at = now;
      return out;
    }
    // kAlreadyExists: lost the race for this index; probe the next one.
  }
  out.status = Status::ResourceExhausted("all 4096 virtual partitions taken");
  out.complete_at = now;
  return out;
}

Status PartitionRegistry::Release(const VmIdentity& id, SimTime now) {
  TableOpResult rev = table_->Read(IdKey(id), now);
  now = rev.complete_at;
  if (!rev.status.ok()) return rev.status;
  const auto partition =
      static_cast<PartitionId>(std::stoul(rev.data.value));
  TableOpResult d1 = table_->Delete(AllocKey(partition), now);
  now = d1.complete_at;
  TableOpResult d2 = table_->Delete(IdKey(id), now);
  if (!d1.status.ok()) return d1.status;
  return d2.status;
}

std::optional<PartitionId> PartitionRegistry::Find(const VmIdentity& id,
                                                   SimTime now) const {
  TableOpResult r = table_->Read(IdKey(id), now);
  if (!r.status.ok()) return std::nullopt;
  return static_cast<PartitionId>(std::stoul(r.data.value));
}

}  // namespace fluid::coord
