#include "coord/replicated_table.h"

#include <algorithm>

namespace fluid::coord {

StatusOr<SimTime> ReplicatedTable::Commit(const std::string& key, SimTime now,
                                          const Versioned* prior) {
  if (!HasQuorum()) return Status::Unavailable("quorum lost");
  // Fan out to all alive replicas; the op commits when the median (majority)
  // acknowledgement arrives. An injected kCoordAck failure drops the
  // proposal on the wire: that replica neither applies nor acknowledges.
  std::vector<SimDuration> acks;
  std::vector<Replica*> applied;
  auto it = committed_.find(key);
  for (Replica& r : replicas_) {
    if (!r.alive) continue;
    SimDuration extra = 0;
    if (hook_) {
      const FaultDecision fd = hook_->OnOp(FaultSite::kCoordAck, now);
      if (fd.fail) {
        ++dropped_acks_;
        continue;
      }
      extra = fd.extra_latency;
    }
    if (it == committed_.end())
      r.state.erase(key);
    else
      r.state[key] = it->second;
    applied.push_back(&r);
    acks.push_back(config_.replica_rtt.Sample(rng_) + extra);
  }
  const std::size_t majority =
      static_cast<std::size_t>(config_.replica_count / 2 + 1);
  if (acks.size() < majority) {
    // The proposal failed to commit: replicas that did apply it must not
    // keep an uncommitted value, or the ensemble would diverge from the
    // caller's rollback of the primary state.
    for (Replica* r : applied) {
      if (prior != nullptr)
        r->state[key] = *prior;
      else
        r->state.erase(key);
    }
    return Status::Unavailable("commit lost quorum of acks");
  }
  std::sort(acks.begin(), acks.end());
  return now + acks[majority - 1];
}

StatusOr<SimDuration> ReplicatedTable::OpGate(SimTime now) {
  if (InElection(now))
    return Status::Unavailable("leader election in progress");
  if (!hook_) return SimDuration{0};
  const FaultDecision fd = hook_->OnOp(FaultSite::kCoordOp, now);
  if (fd.fail) return Status::Unavailable("injected coordinator failure");
  return fd.extra_latency;
}

int ReplicatedTable::CrashPrimary(SimTime now) {
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!replicas_[i].alive) continue;
    CrashReplica(static_cast<int>(i));
    election_done_ = now + config_.election_time;
    ++elections_;
    return static_cast<int>(i);
  }
  return -1;
}

SessionId ReplicatedTable::OpenSession(SimTime now) {
  const SessionId id = next_session_++;
  sessions_[id] = Session{now, true, {}};
  return id;
}

Status ReplicatedTable::Heartbeat(SessionId session, SimTime now) {
  auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second.open)
    return Status::NotFound("no such session");
  if (now > it->second.last_heartbeat + config_.session_timeout)
    return Status::DeadlineExceeded("session already expired");
  it->second.last_heartbeat = now;
  return Status::Ok();
}

bool ReplicatedTable::SessionAlive(SessionId session, SimTime now) const {
  auto it = sessions_.find(session);
  return it != sessions_.end() && it->second.open &&
         now <= it->second.last_heartbeat + config_.session_timeout;
}

Status ReplicatedTable::CloseSession(SessionId session, SimTime now) {
  auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second.open)
    return Status::NotFound("no such session");
  for (const std::string& key : it->second.ephemerals)
    (void)Delete(key, now);
  it->second.open = false;
  it->second.ephemerals.clear();
  return Status::Ok();
}

std::size_t ReplicatedTable::ExpireSessions(SimTime now) {
  std::size_t reaped = 0;
  for (auto& [id, s] : sessions_) {
    if (!s.open || now <= s.last_heartbeat + config_.session_timeout)
      continue;
    for (const std::string& key : s.ephemerals) {
      if (Delete(key, now).status.ok()) ++reaped;
    }
    s.open = false;
    s.ephemerals.clear();
  }
  return reaped;
}

TableOpResult ReplicatedTable::Create(const std::string& key,
                                      std::string value, SimTime now,
                                      SessionId session) {
  TableOpResult r;
  auto gate = OpGate(now);
  if (!gate.ok()) {
    r.status = gate.status();
    r.complete_at = now + config_.replica_rtt.Sample(rng_);
    return r;
  }
  now += *gate;
  if (session != kNoSession && !SessionAlive(session, now)) {
    r.status = Status::FailedPrecondition("session expired or unknown");
    r.complete_at = now;
    return r;
  }
  if (committed_.contains(key)) {
    r.status = Status::AlreadyExists(key);
    r.complete_at = now + config_.replica_rtt.Sample(rng_);
    return r;
  }
  committed_[key] = Versioned{std::move(value), 1};
  auto commit = Commit(key, now, /*prior=*/nullptr);
  if (!commit.ok()) {
    committed_.erase(key);  // not durable; roll back
    r.status = commit.status();
    r.complete_at = now;
    return r;
  }
  r.status = Status::Ok();
  r.complete_at = *commit;
  r.data = committed_[key];
  if (session != kNoSession) sessions_[session].ephemerals.push_back(key);
  return r;
}

TableOpResult ReplicatedTable::Read(const std::string& key, SimTime now) {
  TableOpResult r;
  auto gate = OpGate(now);
  if (!gate.ok()) {
    r.status = gate.status();
    r.complete_at = now + config_.replica_rtt.Sample(rng_);
    return r;
  }
  now += *gate;
  r.complete_at = now + config_.replica_rtt.Sample(rng_);
  auto it = committed_.find(key);
  if (it == committed_.end()) {
    r.status = Status::NotFound(key);
    return r;
  }
  if (!HasQuorum()) {
    // A linearizable read requires a quorum round (sync + read).
    r.status = Status::Unavailable("quorum lost");
    return r;
  }
  r.status = Status::Ok();
  r.data = it->second;
  return r;
}

TableOpResult ReplicatedTable::Update(const std::string& key,
                                      std::string value,
                                      std::uint64_t expected_version,
                                      SimTime now) {
  TableOpResult r;
  auto gate = OpGate(now);
  if (!gate.ok()) {
    r.status = gate.status();
    r.complete_at = now + config_.replica_rtt.Sample(rng_);
    return r;
  }
  now += *gate;
  auto it = committed_.find(key);
  if (it == committed_.end()) {
    r.status = Status::NotFound(key);
    r.complete_at = now + config_.replica_rtt.Sample(rng_);
    return r;
  }
  if (it->second.version != expected_version) {
    r.status = Status::FailedPrecondition("version mismatch");
    r.complete_at = now + config_.replica_rtt.Sample(rng_);
    return r;
  }
  const Versioned saved = it->second;
  it->second = Versioned{std::move(value), expected_version + 1};
  auto commit = Commit(key, now, &saved);
  if (!commit.ok()) {
    it->second = saved;
    r.status = commit.status();
    r.complete_at = now;
    return r;
  }
  r.status = Status::Ok();
  r.complete_at = *commit;
  r.data = it->second;
  return r;
}

TableOpResult ReplicatedTable::Delete(const std::string& key, SimTime now) {
  TableOpResult r;
  auto gate = OpGate(now);
  if (!gate.ok()) {
    r.status = gate.status();
    r.complete_at = now + config_.replica_rtt.Sample(rng_);
    return r;
  }
  now += *gate;
  auto it = committed_.find(key);
  if (it == committed_.end()) {
    r.status = Status::NotFound(key);
    r.complete_at = now + config_.replica_rtt.Sample(rng_);
    return r;
  }
  const Versioned saved = it->second;
  committed_.erase(it);
  auto commit = Commit(key, now, &saved);
  if (!commit.ok()) {
    committed_[key] = saved;
    r.status = commit.status();
    r.complete_at = now;
    return r;
  }
  r.status = Status::Ok();
  r.complete_at = *commit;
  return r;
}

std::vector<std::string> ReplicatedTable::KeysWithPrefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = committed_.lower_bound(prefix); it != committed_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

void ReplicatedTable::CrashReplica(int idx) {
  if (idx >= 0 && idx < static_cast<int>(replicas_.size())) {
    replicas_[static_cast<std::size_t>(idx)].alive = false;
    replicas_[static_cast<std::size_t>(idx)].state.clear();
  }
}

void ReplicatedTable::RestoreReplica(int idx) {
  if (idx >= 0 && idx < static_cast<int>(replicas_.size())) {
    Replica& r = replicas_[static_cast<std::size_t>(idx)];
    r.alive = true;
    r.state = committed_;  // snapshot sync from the leader
  }
}

int ReplicatedTable::AliveReplicas() const {
  int n = 0;
  for (const Replica& r : replicas_)
    if (r.alive) ++n;
  return n;
}

bool ReplicatedTable::ReplicasConsistent() const {
  for (const Replica& r : replicas_) {
    if (!r.alive) continue;
    if (r.state.size() != committed_.size()) return false;
    for (const auto& [k, v] : r.state) {
      auto it = committed_.find(k);
      if (it == committed_.end() || it->second.version != v.version ||
          it->second.value != v.value)
        return false;
    }
  }
  return true;
}

}  // namespace fluid::coord
