#include "coord/replicated_table.h"

#include <algorithm>

namespace fluid::coord {

StatusOr<SimTime> ReplicatedTable::Commit(const std::string& key, SimTime now) {
  if (!HasQuorum()) return Status::Unavailable("quorum lost");
  // Fan out to all alive replicas; the op commits when the median (majority)
  // acknowledgement arrives.
  std::vector<SimDuration> acks;
  auto it = committed_.find(key);
  for (Replica& r : replicas_) {
    if (!r.alive) continue;
    if (it == committed_.end())
      r.state.erase(key);
    else
      r.state[key] = it->second;
    acks.push_back(config_.replica_rtt.Sample(rng_));
  }
  const std::size_t majority =
      static_cast<std::size_t>(config_.replica_count / 2 + 1);
  std::sort(acks.begin(), acks.end());
  // acks.size() >= majority guaranteed by HasQuorum().
  return now + acks[majority - 1];
}

SessionId ReplicatedTable::OpenSession(SimTime now) {
  const SessionId id = next_session_++;
  sessions_[id] = Session{now, true, {}};
  return id;
}

Status ReplicatedTable::Heartbeat(SessionId session, SimTime now) {
  auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second.open)
    return Status::NotFound("no such session");
  if (now > it->second.last_heartbeat + config_.session_timeout)
    return Status::DeadlineExceeded("session already expired");
  it->second.last_heartbeat = now;
  return Status::Ok();
}

bool ReplicatedTable::SessionAlive(SessionId session, SimTime now) const {
  auto it = sessions_.find(session);
  return it != sessions_.end() && it->second.open &&
         now <= it->second.last_heartbeat + config_.session_timeout;
}

Status ReplicatedTable::CloseSession(SessionId session, SimTime now) {
  auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second.open)
    return Status::NotFound("no such session");
  for (const std::string& key : it->second.ephemerals)
    (void)Delete(key, now);
  it->second.open = false;
  it->second.ephemerals.clear();
  return Status::Ok();
}

std::size_t ReplicatedTable::ExpireSessions(SimTime now) {
  std::size_t reaped = 0;
  for (auto& [id, s] : sessions_) {
    if (!s.open || now <= s.last_heartbeat + config_.session_timeout)
      continue;
    for (const std::string& key : s.ephemerals) {
      if (Delete(key, now).status.ok()) ++reaped;
    }
    s.open = false;
    s.ephemerals.clear();
  }
  return reaped;
}

TableOpResult ReplicatedTable::Create(const std::string& key,
                                      std::string value, SimTime now,
                                      SessionId session) {
  TableOpResult r;
  if (session != kNoSession && !SessionAlive(session, now)) {
    r.status = Status::FailedPrecondition("session expired or unknown");
    r.complete_at = now;
    return r;
  }
  if (committed_.contains(key)) {
    r.status = Status::AlreadyExists(key);
    r.complete_at = now + config_.replica_rtt.Sample(rng_);
    return r;
  }
  committed_[key] = Versioned{std::move(value), 1};
  auto commit = Commit(key, now);
  if (!commit.ok()) {
    committed_.erase(key);  // not durable; roll back
    r.status = commit.status();
    r.complete_at = now;
    return r;
  }
  r.status = Status::Ok();
  r.complete_at = *commit;
  r.data = committed_[key];
  if (session != kNoSession) sessions_[session].ephemerals.push_back(key);
  return r;
}

TableOpResult ReplicatedTable::Read(const std::string& key, SimTime now) {
  TableOpResult r;
  r.complete_at = now + config_.replica_rtt.Sample(rng_);
  auto it = committed_.find(key);
  if (it == committed_.end()) {
    r.status = Status::NotFound(key);
    return r;
  }
  if (!HasQuorum()) {
    // A linearizable read requires a quorum round (sync + read).
    r.status = Status::Unavailable("quorum lost");
    return r;
  }
  r.status = Status::Ok();
  r.data = it->second;
  return r;
}

TableOpResult ReplicatedTable::Update(const std::string& key,
                                      std::string value,
                                      std::uint64_t expected_version,
                                      SimTime now) {
  TableOpResult r;
  auto it = committed_.find(key);
  if (it == committed_.end()) {
    r.status = Status::NotFound(key);
    r.complete_at = now + config_.replica_rtt.Sample(rng_);
    return r;
  }
  if (it->second.version != expected_version) {
    r.status = Status::FailedPrecondition("version mismatch");
    r.complete_at = now + config_.replica_rtt.Sample(rng_);
    return r;
  }
  const Versioned saved = it->second;
  it->second = Versioned{std::move(value), expected_version + 1};
  auto commit = Commit(key, now);
  if (!commit.ok()) {
    it->second = saved;
    r.status = commit.status();
    r.complete_at = now;
    return r;
  }
  r.status = Status::Ok();
  r.complete_at = *commit;
  r.data = it->second;
  return r;
}

TableOpResult ReplicatedTable::Delete(const std::string& key, SimTime now) {
  TableOpResult r;
  auto it = committed_.find(key);
  if (it == committed_.end()) {
    r.status = Status::NotFound(key);
    r.complete_at = now + config_.replica_rtt.Sample(rng_);
    return r;
  }
  const Versioned saved = it->second;
  committed_.erase(it);
  auto commit = Commit(key, now);
  if (!commit.ok()) {
    committed_[key] = saved;
    r.status = commit.status();
    r.complete_at = now;
    return r;
  }
  r.status = Status::Ok();
  r.complete_at = *commit;
  return r;
}

std::vector<std::string> ReplicatedTable::KeysWithPrefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = committed_.lower_bound(prefix); it != committed_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

void ReplicatedTable::CrashReplica(int idx) {
  if (idx >= 0 && idx < static_cast<int>(replicas_.size())) {
    replicas_[static_cast<std::size_t>(idx)].alive = false;
    replicas_[static_cast<std::size_t>(idx)].state.clear();
  }
}

void ReplicatedTable::RestoreReplica(int idx) {
  if (idx >= 0 && idx < static_cast<int>(replicas_.size())) {
    Replica& r = replicas_[static_cast<std::size_t>(idx)];
    r.alive = true;
    r.state = committed_;  // snapshot sync from the leader
  }
}

int ReplicatedTable::AliveReplicas() const {
  int n = 0;
  for (const Replica& r : replicas_)
    if (r.alive) ++n;
  return n;
}

bool ReplicatedTable::ReplicasConsistent() const {
  for (const Replica& r : replicas_) {
    if (!r.alive) continue;
    if (r.state.size() != committed_.size()) return false;
    for (const auto& [k, v] : r.state) {
      auto it = committed_.find(k);
      if (it == committed_.end() || it->second.version != v.version ||
          it->second.value != v.value)
        return false;
    }
  }
  return true;
}

}  // namespace fluid::coord
