// FramePool: the hypervisor's local DRAM, divided into 4 KB frames.
//
// Page *contents* in this reproduction are real bytes — evicting a page to a
// key-value store and faulting it back must round-trip the data, otherwise
// the correctness properties the tests assert (no lost or torn pages) would
// be vacuous. A FramePool owns one contiguous allocation and hands out
// frame ids; everything above it (page tables, the monitor's zero-copy
// buffers, the swap cache) refers to frames by id.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace fluid::mem {

class FramePool {
 public:
  explicit FramePool(std::size_t frame_count)
      : storage_(frame_count * kPageSize), free_list_() {
    free_list_.reserve(frame_count);
    // Hand out low frame ids first: push in reverse.
    for (std::size_t i = frame_count; i-- > 0;)
      free_list_.push_back(static_cast<FrameId>(i));
  }

  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  std::size_t capacity() const noexcept { return storage_.size() / kPageSize; }
  std::size_t in_use() const noexcept { return capacity() - free_list_.size(); }
  std::size_t available() const noexcept { return free_list_.size(); }

  StatusOr<FrameId> Allocate() {
    if (free_list_.empty())
      return Status::ResourceExhausted("frame pool empty");
    const FrameId f = free_list_.back();
    free_list_.pop_back();
    return f;
  }

  // Allocate and zero-fill (what the kernel does for an anonymous page).
  StatusOr<FrameId> AllocateZeroed() {
    auto f = Allocate();
    if (f.ok()) std::memset(Data(*f).data(), 0, kPageSize);
    return f;
  }

  void Free(FrameId f) {
    assert(f < capacity());
    free_list_.push_back(f);
  }

  std::span<std::byte, kPageSize> Data(FrameId f) noexcept {
    assert(f < capacity());
    return std::span<std::byte, kPageSize>{&storage_[f * kPageSize], kPageSize};
  }
  std::span<const std::byte, kPageSize> Data(FrameId f) const noexcept {
    assert(f < capacity());
    return std::span<const std::byte, kPageSize>{&storage_[f * kPageSize],
                                                 kPageSize};
  }

  bool IsZeroFilled(FrameId f) const noexcept {
    const auto d = Data(f);
    for (std::byte b : d)
      if (b != std::byte{0}) return false;
    return true;
  }

 private:
  std::vector<std::byte> storage_;
  std::vector<FrameId> free_list_;
};

}  // namespace fluid::mem
