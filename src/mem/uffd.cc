#include "mem/uffd.h"

#include <cstring>

namespace fluid::mem {

Status UffdRegion::CheckInRange(VirtAddr addr) const {
  if (!Contains(addr))
    return Status::InvalidArgument("address outside registered region");
  return Status::Ok();
}

Pte* UffdRegion::Find(VirtAddr addr) {
  auto it = ptes_.find(PageOf(addr));
  return it == ptes_.end() ? nullptr : &it->second;
}

const Pte* UffdRegion::Find(VirtAddr addr) const {
  auto it = ptes_.find(PageOf(addr));
  return it == ptes_.end() ? nullptr : &it->second;
}

AccessResult UffdRegion::Access(VirtAddr addr, bool is_write) {
  addr = PageAlignDown(addr);
  if (!Contains(addr)) {
    // A real access outside any VMA would SIGSEGV; in the model this is a
    // programming error in the workload driver.
    return AccessResult{AccessKind::kUffdFault,
                        FaultEvent{addr, pid_, is_write}};
  }
  Pte* pte = Find(addr);
  if (pte == nullptr || pte->state == PteState::kNotMapped) {
    // Missing page: the vCPU halts and an event is queued on the uffd.
    return AccessResult{AccessKind::kUffdFault,
                        FaultEvent{addr, pid_, is_write}};
  }
  pte->referenced = true;
  if (pte->state == PteState::kZeroPage) {
    if (!is_write) return AccessResult{AccessKind::kHit, {}};
    // Write to the CoW zero page: the kernel resolves this *itself* with a
    // regular minor fault that installs a private zeroed frame. No uffd
    // event fires (paper §V-A footnote 1).
    auto frame = pool_->AllocateZeroed();
    if (!frame.ok()) {
      // Out of local frames: surface as a uffd fault so the driver can run
      // reclaim; the kernel analogue is direct reclaim inside the fault.
      return AccessResult{AccessKind::kUffdFault,
                          FaultEvent{addr, pid_, is_write}};
    }
    pte->state = PteState::kMapped;
    pte->frame = *frame;
    pte->dirty = true;
    ++resident_frames_;
    return AccessResult{AccessKind::kMinorZero, {}};
  }
  // kMapped
  if (is_write) pte->dirty = true;
  return AccessResult{AccessKind::kHit, {}};
}

Status UffdRegion::ReadBytes(VirtAddr addr, std::span<std::byte> out) const {
  if (auto s = CheckInRange(addr); !s.ok()) return s;
  const Pte* pte = Find(PageAlignDown(addr));
  if (pte == nullptr || pte->state == PteState::kNotMapped)
    return Status::FailedPrecondition("page not present");
  const std::size_t off = addr & (kPageSize - 1);
  if (off + out.size() > kPageSize)
    return Status::InvalidArgument("read crosses page boundary");
  if (pte->state == PteState::kZeroPage) {
    std::memset(out.data(), 0, out.size());
    return Status::Ok();
  }
  const auto src = pool_->Data(pte->frame);
  std::memcpy(out.data(), src.data() + off, out.size());
  return Status::Ok();
}

Status UffdRegion::WriteBytes(VirtAddr addr, std::span<const std::byte> in) {
  if (auto s = CheckInRange(addr); !s.ok()) return s;
  Pte* pte = Find(PageAlignDown(addr));
  if (pte == nullptr || pte->state != PteState::kMapped)
    return Status::FailedPrecondition(
        "page not writable (not present or zero-page; Access() first)");
  const std::size_t off = addr & (kPageSize - 1);
  if (off + in.size() > kPageSize)
    return Status::InvalidArgument("write crosses page boundary");
  auto dst = pool_->Data(pte->frame);
  std::memcpy(dst.data() + off, in.data(), in.size());
  pte->dirty = true;
  return Status::Ok();
}

Status UffdRegion::ZeroPage(VirtAddr addr) {
  if (auto s = CheckInRange(addr); !s.ok()) return s;
  addr = PageAlignDown(addr);
  Pte& pte = ptes_[PageOf(addr)];
  if (pte.state != PteState::kNotMapped)
    return Status::AlreadyExists("page already present (EEXIST)");
  pte.state = PteState::kZeroPage;
  pte.frame = kInvalidFrame;
  pte.dirty = false;
  pte.referenced = true;
  ++present_pages_;
  return Status::Ok();
}

Status UffdRegion::Copy(VirtAddr addr,
                        std::span<const std::byte, kPageSize> src) {
  if (auto s = CheckInRange(addr); !s.ok()) return s;
  addr = PageAlignDown(addr);
  Pte& pte = ptes_[PageOf(addr)];
  if (pte.state != PteState::kNotMapped)
    return Status::AlreadyExists("page already present (EEXIST)");
  auto frame = pool_->Allocate();
  if (!frame.ok()) return frame.status();
  std::memcpy(pool_->Data(*frame).data(), src.data(), kPageSize);
  pte.state = PteState::kMapped;
  pte.frame = *frame;
  pte.dirty = false;
  pte.referenced = true;
  ++resident_frames_;
  ++present_pages_;
  return Status::Ok();
}

StatusOr<FrameId> UffdRegion::Remap(VirtAddr addr) {
  if (auto s = CheckInRange(addr); !s.ok()) return s;
  addr = PageAlignDown(addr);
  Pte* pte = Find(addr);
  if (pte == nullptr || pte->state == PteState::kNotMapped)
    return Status::NotFound("page not present");
  FrameId out;
  if (pte->state == PteState::kZeroPage) {
    // No private frame exists; the page's logical contents are zero.
    auto frame = pool_->AllocateZeroed();
    if (!frame.ok()) return frame.status();
    out = *frame;
  } else {
    out = pte->frame;
    --resident_frames_;
  }
  pte->state = PteState::kNotMapped;
  pte->frame = kInvalidFrame;
  pte->dirty = false;
  --present_pages_;
  return out;
}

PteState UffdRegion::StateOf(VirtAddr addr) const {
  const Pte* pte = Find(PageAlignDown(addr));
  return pte == nullptr ? PteState::kNotMapped : pte->state;
}

bool UffdRegion::IsDirty(VirtAddr addr) const {
  const Pte* pte = Find(PageAlignDown(addr));
  return pte != nullptr && pte->dirty;
}

std::size_t UffdRegion::ClearReferencedBits() {
  std::size_t n = 0;
  for (auto& [pn, pte] : ptes_) {
    if (pte.referenced) {
      pte.referenced = false;
      ++n;
    }
  }
  return n;
}

std::vector<VirtAddr> UffdRegion::CollectDirtyPages() {
  std::vector<VirtAddr> out;
  for (auto& [pn, pte] : ptes_) {
    if (pte.state == PteState::kMapped && pte.dirty) {
      pte.dirty = false;
      out.push_back(AddrOf(pn));
    }
  }
  return out;
}

std::vector<VirtAddr> UffdRegion::PresentPageAddresses() const {
  std::vector<VirtAddr> out;
  out.reserve(present_pages_);
  for (const auto& [pn, pte] : ptes_) {
    if (pte.state != PteState::kNotMapped) out.push_back(AddrOf(pn));
  }
  return out;
}

void UffdRegion::ReleaseAllFrames() {
  for (auto& [pn, pte] : ptes_) {
    if (pte.state == PteState::kMapped) pool_->Free(pte.frame);
  }
  ptes_.clear();
  resident_frames_ = 0;
  present_pages_ = 0;
}

}  // namespace fluid::mem
