// A user-space model of Linux userfaultfd(2) over a registered VM region.
//
// FluidMem's entire mechanism rests on four kernel facilities (§III–§V):
//   1. registering a memory region so that *first* faults on every page are
//      delivered to user space as events on a file descriptor;
//   2. UFFDIO_ZEROPAGE — resolve a fault by mapping the shared CoW zero
//      page (a later write then takes a regular in-kernel minor fault that
//      allocates a private frame);
//   3. UFFDIO_COPY — resolve a fault by copying provided bytes into a fresh
//      frame mapped at the faulting address;
//   4. UFFD_REMAP (the authors' proposed ioctl) — *move* a mapped page out
//      of the region by page-table manipulation only, surrendering the
//      frame to the caller; requires a TLB shootdown (IPI) on KVM guests.
//
// UffdRegion reproduces the state machine of those operations exactly
// (including zero-page copy-on-write and "fault while evicted" races) but
// performs no timing itself: callers charge virtual time from a cost model
// so the same region can be driven synchronously in unit tests.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "mem/frame_pool.h"

namespace fluid::mem {

enum class PteState : std::uint8_t {
  kNotMapped,  // never touched, or moved out by UFFD_REMAP
  kZeroPage,   // maps the shared CoW zero page (no frame)
  kMapped,     // a private frame holds the contents
};

struct Pte {
  PteState state = PteState::kNotMapped;
  FrameId frame = kInvalidFrame;
  bool dirty = false;     // written since the frame was installed
  bool referenced = false;  // touched since last cleared (for reclaim models)
};

// What happened when the vCPU touched an address.
enum class AccessKind : std::uint8_t {
  kHit,        // present; no kernel involvement
  kMinorZero,  // zero-page write: in-kernel allocation, no uffd event
  kUffdFault,  // missing: vCPU halted, event delivered to the uffd reader
};

struct FaultEvent {
  VirtAddr addr = 0;  // page-aligned
  ProcessId pid = 0;
  bool is_write = false;
};

struct AccessResult {
  AccessKind kind = AccessKind::kHit;
  FaultEvent event;  // valid only when kind == kUffdFault
};

// A fault event sitting in the uffd file descriptor's queue, stamped with
// the virtual time the vCPU raised it (the kernel-side delivery work is
// charged by the reader's cost model, not here).
struct QueuedEvent {
  FaultEvent event;
  SimTime raised_at = 0;
};

class UffdRegion {
 public:
  // Registers [base, base + page_count * kPageSize) for the process `pid`.
  UffdRegion(ProcessId pid, VirtAddr base, std::size_t page_count,
             FramePool& pool)
      : pid_(pid), base_(PageAlignDown(base)), page_count_(page_count),
        pool_(&pool) {}

  UffdRegion(const UffdRegion&) = delete;
  UffdRegion& operator=(const UffdRegion&) = delete;
  ~UffdRegion() { ReleaseAllFrames(); }

  // Memory hotplug (paper §III): QEMU registers the hot-added DIMM with the
  // same wrapper, extending the region the monitor watches. The new pages
  // start unmapped, so their first access faults like any other.
  void Expand(std::size_t extra_pages) noexcept { page_count_ += extra_pages; }

  ProcessId pid() const noexcept { return pid_; }
  VirtAddr base() const noexcept { return base_; }
  std::size_t page_count() const noexcept { return page_count_; }
  bool Contains(VirtAddr a) const noexcept {
    return a >= base_ && a < base_ + page_count_ * kPageSize;
  }

  // ---- vCPU side ------------------------------------------------------------

  // Model one memory access. On kUffdFault the caller must halt the vCPU,
  // deliver the event to the monitor, and re-issue the access after wake.
  AccessResult Access(VirtAddr addr, bool is_write);

  // ---- fault-event queue (batched dequeue) ----------------------------------
  //
  // The real userfaultfd is a file descriptor: concurrent vCPU faults pile
  // up in its queue and one read(2) returns as many uffd_msg records as the
  // caller's buffer holds — the libuserfaultfd handler loop drains them in
  // batches. Drivers that model concurrent vCPUs park each kUffdFault here
  // (Access itself stays side-effect free, so single-fault callers are
  // untouched) and the fault engine drains up to `max_n` per virtual read
  // syscall. FIFO, like the kernel's queue.
  void QueueEvent(const FaultEvent& e, SimTime raised_at) {
    queue_.push_back(QueuedEvent{e, raised_at});
    ++total_queued_;
    peak_queue_depth_ = std::max(peak_queue_depth_, queue_.size());
  }
  std::vector<QueuedEvent> ReadEvents(std::size_t max_n) {
    std::vector<QueuedEvent> out;
    while (!queue_.empty() && out.size() < max_n) {
      out.push_back(queue_.front());
      queue_.pop_front();
    }
    return out;
  }
  std::size_t QueuedEventCount() const noexcept { return queue_.size(); }
  // Queue telemetry (observability gauges): lifetime events queued and the
  // deepest the queue ever got — how far behind the handlers fell.
  std::uint64_t TotalQueuedEvents() const noexcept { return total_queued_; }
  std::size_t PeakQueueDepth() const noexcept { return peak_queue_depth_; }

  // Read/write page contents through the mapping (valid only when present).
  // Writes mark the PTE dirty, as the MMU would.
  Status ReadBytes(VirtAddr addr, std::span<std::byte> out) const;
  Status WriteBytes(VirtAddr addr, std::span<const std::byte> in);

  // ---- monitor (ioctl) side ---------------------------------------------------

  // UFFDIO_ZEROPAGE: map the shared zero page at the faulting address.
  // Fails with kAlreadyExists if the page is already present (the kernel's
  // -EEXIST, which the monitor must tolerate on duplicate events).
  Status ZeroPage(VirtAddr addr);

  // UFFDIO_COPY: allocate a frame, copy `src` into it, map it.
  Status Copy(VirtAddr addr, std::span<const std::byte, kPageSize> src);

  // UFFD_REMAP (proposed): unmap the page and transfer its frame to the
  // caller without copying. A zero-page mapping materialises a zeroed frame
  // first (its logical contents are all-zero). Fails with kNotFound if the
  // page is not present.
  StatusOr<FrameId> Remap(VirtAddr addr);

  // ---- inspection -------------------------------------------------------------

  PteState StateOf(VirtAddr addr) const;
  bool IsPresent(VirtAddr addr) const {
    const PteState s = StateOf(addr);
    return s == PteState::kMapped || s == PteState::kZeroPage;
  }
  bool IsDirty(VirtAddr addr) const;
  // Frames currently held by this region (the VM's resident footprint).
  std::size_t ResidentFrames() const noexcept { return resident_frames_; }
  // Present pages including zero-page mappings.
  std::size_t PresentPages() const noexcept { return present_pages_; }

  // Clear all referenced bits, returning how many were set (reclaim models).
  std::size_t ClearReferencedBits();

  // Soft-dirty tracking (pre-copy migration): return the addresses of all
  // present pages written since the last collection, clearing their dirty
  // bits. Zero-page mappings are never dirty.
  std::vector<VirtAddr> CollectDirtyPages();

  // Addresses of all present pages (zero-page or mapped), for the initial
  // pre-copy round.
  std::vector<VirtAddr> PresentPageAddresses() const;

 private:
  Pte* Find(VirtAddr addr);
  const Pte* Find(VirtAddr addr) const;
  Status CheckInRange(VirtAddr addr) const;
  void ReleaseAllFrames();

  ProcessId pid_;
  VirtAddr base_;
  std::size_t page_count_;
  FramePool* pool_;
  std::unordered_map<PageNum, Pte> ptes_;
  std::deque<QueuedEvent> queue_;
  std::uint64_t total_queued_ = 0;
  std::size_t peak_queue_depth_ = 0;
  std::size_t resident_frames_ = 0;
  std::size_t present_pages_ = 0;
};

}  // namespace fluid::mem
