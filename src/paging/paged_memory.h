// PagedMemory: the mechanism-neutral face of a VM's memory.
//
// Workloads (pmbench, Graph500, the document store) run against this
// interface so the same benchmark code measures both mechanisms:
//   * FluidVm   — all VM memory registered with the FluidMem monitor;
//   * SwapVm    — fixed local DRAM plus a swap block device.
// Touch() models one memory access and returns its completion time in
// virtual time; ReadBytes/WriteBytes move real data through whatever frame
// currently backs the page.
#pragma once

#include <span>
#include <string_view>

#include "common/status.h"
#include "common/types.h"

namespace fluid::paging {

struct TouchResult {
  Status status;
  SimTime done = 0;
  bool fault = false;        // any non-resident access
  bool major_fault = false;  // required remote/disk data
  bool deadlocked = false;   // Table III: KVM recursive-fault deadlock
};

class PagedMemory {
 public:
  virtual ~PagedMemory() = default;

  virtual TouchResult Touch(VirtAddr addr, bool is_write, SimTime now) = 0;

  // Data plane; the page must be resident (call Touch first).
  virtual Status ReadBytes(VirtAddr addr, std::span<std::byte> out) = 0;
  virtual Status WriteBytes(VirtAddr addr, std::span<const std::byte> in) = 0;

  virtual std::string_view mechanism() const = 0;

  // Pages currently held in local DRAM (the VM's footprint on the host).
  virtual std::size_t ResidentPages() const = 0;

  // --- convenience: access + data in one call --------------------------------

  // Load `out.size()` bytes at addr (must not cross a page boundary).
  TouchResult Load(VirtAddr addr, std::span<std::byte> out, SimTime now) {
    TouchResult r = Touch(addr, /*is_write=*/false, now);
    if (!r.status.ok()) return r;
    if (Status s = ReadBytes(addr, out); !s.ok()) r.status = s;
    return r;
  }

  TouchResult Store(VirtAddr addr, std::span<const std::byte> in,
                    SimTime now) {
    TouchResult r = Touch(addr, /*is_write=*/true, now);
    if (!r.status.ok()) return r;
    if (Status s = WriteBytes(addr, in); !s.ok()) r.status = s;
    return r;
  }
};

}  // namespace fluid::paging
