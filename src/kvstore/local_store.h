// LocalDramStore: a same-host DRAM key-value store.
//
// This is the "FluidMem DRAM" backend of Figs. 3 and 4 — the control
// configuration that isolates the cost of FluidMem's fault-handling
// machinery from network latency. A put/get is a hash operation plus a page
// copy; timing comes from the local "transport" (function call + memcpy).
#pragma once

#include <algorithm>
#include <cstring>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/dist.h"
#include "common/rng.h"
#include "common/types.h"
#include "kvstore/kvstore.h"
#include "net/transport.h"

namespace fluid::kv {

struct LocalStoreConfig {
  std::size_t memory_cap_bytes = 1ULL << 30;
  LatencyDist op_cost = LatencyDist::Normal(0.9, 0.15, 0.3);
  std::uint64_t seed = 44;
};

class LocalDramStore final : public KvStore {
 public:
  explicit LocalDramStore(LocalStoreConfig config = {})
      : config_(config), rng_(config.seed) {}

  std::string_view name() const override { return "local-dram"; }
  bool has_native_partitions() const override { return true; }

  OpResult Put(PartitionId partition, Key key,
               std::span<const std::byte, kPageSize> value,
               SimTime now) override {
    ++stats_.puts;
    const Key k = FoldPartition(key, partition);
    if (!map_.contains(k) &&
        (map_.size() + 1) * kPageSize > config_.memory_cap_bytes)
      return Done(now, Status::ResourceExhausted("local store full"));
    map_[k].assign(value.begin(), value.end());
    return Done(now, Status::Ok());
  }

  OpResult Get(PartitionId partition, Key key,
               std::span<std::byte, kPageSize> out, SimTime now) override {
    ++stats_.gets;
    auto it = map_.find(FoldPartition(key, partition));
    if (it == map_.end()) return Done(now, Status::NotFound(""));
    std::memcpy(out.data(), it->second.data(), kPageSize);
    return Done(now, Status::Ok());
  }

  OpResult Remove(PartitionId partition, Key key, SimTime now) override {
    ++stats_.removes;
    const bool erased = map_.erase(FoldPartition(key, partition)) > 0;
    return Done(now, erased ? Status::Ok() : Status::NotFound(""));
  }

  OpResult MultiPut(PartitionId partition, std::span<KvWrite> writes,
                    SimTime now) override {
    ++stats_.multi_write_batches;
    stats_.multi_write_objects += writes.size();
    Status s = Status::Ok();
    SimTime t = now;
    for (KvWrite& w : writes) {
      OpResult one = Put(partition, w.key, w.value, t);
      --stats_.puts;
      t = one.complete_at;
      w.status = one.status;
      if (!one.status.ok()) s = one.status;
    }
    return OpResult{std::move(s), t, t};
  }

  OpResult DropPartition(PartitionId partition, SimTime now) override {
    for (auto it = map_.begin(); it != map_.end();) {
      it = (KeyPartition(it->first) == partition) ? map_.erase(it)
                                                  : std::next(it);
    }
    return Done(now, Status::Ok());
  }

  bool Contains(PartitionId partition, Key key) const override {
    return map_.contains(FoldPartition(key, partition));
  }
  void ForEachKey(
      const std::function<void(PartitionId, Key)>& fn) const override {
    // Sorted walk: map_ iteration order is hash-dependent, and callers
    // (re-replication) need a deterministic enumeration for replay.
    std::vector<Key> keys;
    keys.reserve(map_.size());
    for (const auto& [k, v] : map_) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    for (Key k : keys) fn(KeyPartition(k), KeyAddr(k));
  }
  std::size_t ObjectCount() const override { return map_.size(); }
  std::size_t BytesStored() const override { return map_.size() * kPageSize; }
  const StoreStats& stats() const override { return stats_; }

 private:
  OpResult Done(SimTime now, Status s) {
    const SimTime end = now + config_.op_cost.Sample(rng_);
    return OpResult{std::move(s), end, end};
  }

  LocalStoreConfig config_;
  Rng rng_;
  std::unordered_map<Key, std::vector<std::byte>> map_;
  StoreStats stats_;
};

}  // namespace fluid::kv
