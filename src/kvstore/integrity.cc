#include "kvstore/integrity.h"

#include <array>
#include <cstring>

#include "common/compress.h"
#include "common/rng.h"

namespace fluid::kv {

std::uint32_t IntegrityStore::Checksum(
    Key folded, std::uint64_t version,
    std::span<const std::byte, kPageSize> payload) {
  // CRC-32C over the payload, folded with a 64->32 hash of (key, version).
  // The fold binds the checksum to its address and write generation — a
  // page swapped with another key's bytes, or a stale previous version,
  // fails verification even though its payload CRC is self-consistent.
  const std::uint32_t body = Crc32c(payload);
  std::uint64_t s = folded ^ (version * 0x9e3779b97f4a7c15ULL);
  const std::uint64_t h = SplitMix64(s);
  return body ^ static_cast<std::uint32_t>(h ^ (h >> 32));
}

void IntegrityStore::RecordEnvelope(
    PartitionId partition, Key key,
    std::span<const std::byte, kPageSize> value) {
  const Key folded = FoldPartition(key, partition);
  Envelope& e = envelopes_[folded];
  ++e.version;
  e.crc = Checksum(folded, e.version, value);
  ++istats_.envelopes_written;
}

Status IntegrityStore::Verify(PartitionId partition, Key key,
                              std::span<const std::byte, kPageSize> out,
                              bool scrub) {
  const Key folded = FoldPartition(key, partition);
  auto it = envelopes_.find(folded);
  if (it == envelopes_.end()) {
    // Key written before this decorator was attached (or behind its back):
    // nothing to verify against. Pass through, but count it — a healthy
    // stack should see zero of these.
    ++istats_.unverified_reads;
    return Status::Ok();
  }
  if (Checksum(folded, it->second.version, out) == it->second.crc) {
    if (scrub)
      ++istats_.scrub_pages;
    else
      ++istats_.verified_reads;
    return Status::Ok();
  }
  if (scrub) {
    ++istats_.scrub_pages;
    ++istats_.scrub_corruptions;
  } else {
    ++istats_.corruptions_detected;
  }
  if (on_corruption_) on_corruption_(partition, key);
  return Status::DataLoss("page envelope checksum mismatch");
}

OpResult IntegrityStore::Put(PartitionId partition, Key key,
                             std::span<const std::byte, kPageSize> value,
                             SimTime now) {
  OpResult r = inner_->Put(partition, key, value, now);
  if (r.status.ok()) RecordEnvelope(partition, key, value);
  return r;
}

OpResult IntegrityStore::Get(PartitionId partition, Key key,
                             std::span<std::byte, kPageSize> out,
                             SimTime now) {
  OpResult r = inner_->Get(partition, key, out, now);
  if (!r.status.ok()) return r;
  Status v = Verify(partition, key, out, /*scrub=*/false);
  if (!v.ok()) r.status = std::move(v);
  return r;
}

OpResult IntegrityStore::Remove(PartitionId partition, Key key, SimTime now) {
  OpResult r = inner_->Remove(partition, key, now);
  if (r.status.ok()) envelopes_.erase(FoldPartition(key, partition));
  return r;
}

OpResult IntegrityStore::MultiPut(PartitionId partition,
                                  std::span<KvWrite> writes, SimTime now) {
  OpResult r = inner_->MultiPut(partition, writes, now);
  // Per-object statuses are authoritative: envelope every write that
  // landed, even inside a batch that failed as a whole.
  for (const KvWrite& w : writes)
    if (w.status.ok()) RecordEnvelope(partition, w.key, w.value);
  return r;
}

OpResult IntegrityStore::MultiGet(PartitionId partition,
                                  std::span<KvRead> reads, SimTime now) {
  OpResult r = inner_->MultiGet(partition, reads, now);
  bool any_loss = false;
  for (KvRead& rd : reads) {
    if (!rd.status.ok()) continue;
    Status v = Verify(partition, rd.key, rd.out, /*scrub=*/false);
    if (!v.ok()) {
      rd.status = std::move(v);
      any_loss = true;
    }
  }
  // The batch itself still completed as a transport op; per-object status
  // carries the corruption. But if the batch claimed blanket success AND
  // every object rotted, the aggregate must not read as clean.
  if (any_loss && r.status.ok()) {
    bool all_bad = true;
    for (const KvRead& rd : reads)
      if (rd.status.ok()) all_bad = false;
    if (all_bad) r.status = Status::DataLoss("all objects failed verification");
  }
  return r;
}

OpResult IntegrityStore::DropPartition(PartitionId partition, SimTime now) {
  OpResult r = inner_->DropPartition(partition, now);
  if (r.status.ok()) {
    for (auto it = envelopes_.begin(); it != envelopes_.end();) {
      if (KeyPartition(it->first) == partition)
        it = envelopes_.erase(it);
      else
        ++it;
    }
  }
  return r;
}

SimTime IntegrityStore::PumpMaintenance(SimTime now) {
  SimTime t = inner_->PumpMaintenance(now);
  if (scrub_budget_ == 0 || envelopes_.empty()) return t;
  // One budgeted slice of the full-store scrub: resume at the cursor,
  // re-read and re-verify pages in key order, wrap at the end. The reads
  // go through the inner store's data path on purpose — scrubbing through
  // the same path the monitor reads from is what lets it catch rot
  // wherever it crept in.
  std::array<std::byte, kPageSize> page;
  auto it = scrub_cursor_valid_ ? envelopes_.upper_bound(scrub_cursor_)
                                : envelopes_.begin();
  for (std::size_t n = 0; n < scrub_budget_; ++n) {
    if (it == envelopes_.end()) {
      it = envelopes_.begin();
      if (!scrub_cursor_valid_ || n > 0) break;  // wrapped: slice done
    }
    const Key folded = it->first;
    const PartitionId partition = KeyPartition(folded);
    const Key key = KeyAddr(folded);
    OpResult r = inner_->Get(partition, key,
                             std::span<std::byte, kPageSize>{page}, t);
    t = r.complete_at;
    if (r.status.code() == StatusCode::kNotFound) {
      // Orphaned envelope (store lost the page behind our back).
      it = envelopes_.erase(it);
      scrub_cursor_valid_ = false;
      continue;
    }
    if (r.status.ok()) (void)Verify(partition, key, page, /*scrub=*/true);
    scrub_cursor_ = folded;
    scrub_cursor_valid_ = true;
    ++it;
  }
  return t;
}

}  // namespace fluid::kv
