#include "kvstore/memcached.h"

#include <cstring>

namespace fluid::kv {

MemcachedStore::MemcachedStore(MemcachedConfig config, net::Transport transport)
    : config_(config), transport_(std::move(transport)), rng_(config.seed) {}

OpResult MemcachedStore::TimedOp(SimTime now, std::size_t req_bytes,
                                 std::size_t resp_bytes, Status status) {
  OpResult r;
  r.status = std::move(status);
  r.issue_done = now + config_.client_issue.Sample(rng_);
  const SimDuration rtt = transport_.SampleRtt(req_bytes, resp_bytes, rng_);
  const SimDuration half_out = rtt / 2;
  const auto svc = server_.Occupy(r.issue_done + half_out,
                                  config_.service.Sample(rng_));
  r.complete_at = svc.end + (rtt - half_out);
  return r;
}

bool MemcachedStore::EnsureChunkAvailable() {
  if (items_.size() < chunks_allocated_) return true;
  // Grow by one slab if under the memory cap.
  if ((slab_count_ + 1) * config_.slab_bytes <= config_.memory_cap_bytes) {
    ++slab_count_;
    chunks_allocated_ += config_.slab_bytes / kChunkBytes;
    return items_.size() < chunks_allocated_;
  }
  // At cap: evict the LRU item of this (the only used) class.
  if (lru_.empty()) return false;
  const Item& victim = lru_.back();
  items_.erase(victim.key);
  lru_.pop_back();
  ++stats_.evictions;
  return true;
}

OpResult MemcachedStore::Put(PartitionId partition, Key key,
                             std::span<const std::byte, kPageSize> value,
                             SimTime now) {
  ++stats_.puts;
  const Key k = FoldPartition(key, partition);
  Status s = Status::Ok();
  auto it = items_.find(k);
  if (it != items_.end()) {
    it->second->data.assign(value.begin(), value.end());
    lru_.splice(lru_.begin(), lru_, it->second);  // touch
  } else if (!EnsureChunkAvailable()) {
    s = Status::ResourceExhausted("memcached out of memory");
  } else {
    lru_.push_front(Item{k, {value.begin(), value.end()}});
    items_[k] = lru_.begin();
  }
  return TimedOp(now, kChunkBytes, 16, std::move(s));
}

OpResult MemcachedStore::Get(PartitionId partition, Key key,
                             std::span<std::byte, kPageSize> out,
                             SimTime now) {
  ++stats_.gets;
  const Key k = FoldPartition(key, partition);
  Status s = Status::Ok();
  auto it = items_.find(k);
  if (it == items_.end()) {
    s = Status::NotFound("cache miss");
  } else {
    std::memcpy(out.data(), it->second->data.data(), kPageSize);
    lru_.splice(lru_.begin(), lru_, it->second);  // touch
  }
  return TimedOp(now, 32, s.ok() ? kChunkBytes : 16, std::move(s));
}

OpResult MemcachedStore::Remove(PartitionId partition, Key key, SimTime now) {
  ++stats_.removes;
  const Key k = FoldPartition(key, partition);
  Status s = Status::Ok();
  auto it = items_.find(k);
  if (it == items_.end()) {
    s = Status::NotFound("no such item");
  } else {
    lru_.erase(it->second);
    items_.erase(it);
  }
  return TimedOp(now, 32, 16, std::move(s));
}

OpResult MemcachedStore::MultiPut(PartitionId partition,
                                  std::span<KvWrite> writes,
                                  SimTime now) {
  // No server-side batching: issue pipelined singles. The client pays one
  // issue cost per write but requests overlap in flight; completion is the
  // last response. This is why the paper notes asynchronous writeback "is
  // most beneficial when slower network transports are used ... such as
  // TCP with Memcached" — batching off the critical path hides this cost.
  ++stats_.multi_write_batches;
  stats_.multi_write_objects += writes.size();
  OpResult agg;
  agg.status = Status::Ok();
  agg.issue_done = now;
  agg.complete_at = now;
  SimTime issue_cursor = now;
  for (KvWrite& w : writes) {
    OpResult one = Put(partition, w.key, w.value, issue_cursor);
    // Puts through this path should not double-count in stats_.puts; undo.
    --stats_.puts;
    issue_cursor = one.issue_done;
    agg.issue_done = one.issue_done;
    agg.complete_at = std::max(agg.complete_at, one.complete_at);
    w.status = one.status;
    if (!one.status.ok()) agg.status = one.status;
  }
  return agg;
}

OpResult MemcachedStore::DropPartition(PartitionId partition, SimTime now) {
  // No native partitions: scan keys whose folded low bits match.
  std::size_t dropped = 0;
  for (auto it = items_.begin(); it != items_.end();) {
    if (KeyPartition(it->first) == partition) {
      lru_.erase(it->second);
      it = items_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return TimedOp(now, 32, 16, Status::Ok());
}

bool MemcachedStore::Contains(PartitionId partition, Key key) const {
  return items_.contains(FoldPartition(key, partition));
}

}  // namespace fluid::kv
