// Key encoding for remote-memory pages (paper §IV).
//
// "The key is a 64-bit integer matching the first 52 bits of the virtual
//  memory address used by the faulting application. [...] To support other
//  key-value stores without partition support, we use the remaining 12 bits
//  to index a 'virtual partition'."
//
// So a key is the page-aligned virtual address with a 12-bit partition index
// folded into the low (page-offset) bits. Stores with native partitions
// (RAMCloud tablets) receive the partition separately and a key with zero
// low bits; stores without (Memcached) fold the partition in.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace fluid::kv {

using Key = std::uint64_t;

inline constexpr Key kPartitionMask = 0xfffULL;  // low 12 bits

constexpr Key MakePageKey(VirtAddr addr) noexcept {
  return addr & ~kPartitionMask;  // first 52 bits of the address
}

constexpr Key FoldPartition(Key page_key, PartitionId partition) noexcept {
  return (page_key & ~kPartitionMask) | (partition & kPartitionMask);
}

constexpr VirtAddr KeyAddr(Key k) noexcept { return k & ~kPartitionMask; }
constexpr PartitionId KeyPartition(Key k) noexcept {
  return static_cast<PartitionId>(k & kPartitionMask);
}

}  // namespace fluid::kv
