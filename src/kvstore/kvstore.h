// Generic key-value store API (paper §IV).
//
// "FluidMem interfaces with key-value stores via a generic API that supports
//  partitions and allows multiple VMs to share the same key-value store."
//
// Operations return an OpResult carrying two virtual-time stamps:
//   issue_done  — when the *caller's* CPU is free again (the client-side
//                 "top half": building and posting the request);
//   complete_at — when the result is available (the "bottom half").
// A synchronous caller advances its clock to complete_at; an asynchronous
// caller (the monitor's interleaved read, §V-B) continues other work after
// issue_done and only waits at the point it needs the data. Data effects
// are applied eagerly — virtual time in a single-threaded simulation makes
// that sound — so tests can assert on contents without a scheduler.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <span>
#include <string_view>

#include "common/status.h"
#include "common/types.h"
#include "kvstore/key_codec.h"

namespace fluid::kv {

struct OpResult {
  Status status;
  SimTime issue_done = 0;
  SimTime complete_at = 0;
  // Resilience telemetry (filled by ResilientStore; plain stores leave the
  // defaults): how many attempts the op took and whether a hedged request
  // was issued.
  int attempts = 1;
  bool hedged = false;
};

// One slot of a batched write (RAMCloud multiWrite). `status` is per-object
// and mirrors KvRead: stores stamp every slot on every path — including
// wholesale transport failures — so retry layers can re-issue exactly the
// failed subset instead of amplifying the whole batch.
struct KvWrite {
  Key key = 0;
  std::span<const std::byte, kPageSize> value;
  Status status;
};

// One slot of a batched read (RAMCloud multiRead). `status` is per-object:
// a batch can succeed while individual keys are kNotFound.
struct KvRead {
  Key key = 0;
  std::span<std::byte, kPageSize> out;
  Status status;
};

struct StoreStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t removes = 0;
  std::uint64_t multi_write_batches = 0;
  std::uint64_t multi_write_objects = 0;
  std::uint64_t evictions = 0;  // store-internal (Memcached slab LRU)
  // Resilience telemetry (only ResilientStore populates these).
  std::uint64_t retries = 0;            // re-issued attempts after a failure
  std::uint64_t hedged_reads = 0;       // Gets that issued a hedge request
  std::uint64_t hedge_wins = 0;         // hedges that beat the first request
  std::uint64_t deadline_exceeded = 0;  // ops abandoned at their deadline
  // Objects re-issued inside MultiPut subset retries. A whole-batch retry
  // of an N-object batch would add N here per attempt; the subset-retry
  // contract keeps this at (number of actually-failed objects) per attempt,
  // which is how the chaos harness asserts no write is double-charged.
  std::uint64_t multi_write_retried_objects = 0;
};

class KvStore {
 public:
  virtual ~KvStore() = default;

  virtual std::string_view name() const = 0;
  virtual bool has_native_partitions() const = 0;

  // Store one 4 KB page under (partition, key).
  virtual OpResult Put(PartitionId partition, Key key,
                       std::span<const std::byte, kPageSize> value,
                       SimTime now) = 0;

  // Fetch into `out`. kNotFound if absent.
  virtual OpResult Get(PartitionId partition, Key key,
                       std::span<std::byte, kPageSize> out, SimTime now) = 0;

  virtual OpResult Remove(PartitionId partition, Key key, SimTime now) = 0;

  // Batched write (RAMCloud multiWrite). All writes must target one
  // partition — the batching FluidMem performs groups by uffd region.
  // Per-object status lands in each KvWrite (a batch can fail as a
  // transport op while earlier writes stuck, and vice versa); the batch
  // status stays Ok only when every object landed.
  virtual OpResult MultiPut(PartitionId partition, std::span<KvWrite> writes,
                            SimTime now) = 0;

  // Batched read (RAMCloud multiRead). The default adapter issues
  // sequential Gets; stores with native batch support (RAMCloud) override
  // it to pay one round trip. Per-object status lands in each KvRead.
  virtual OpResult MultiGet(PartitionId partition, std::span<KvRead> reads,
                            SimTime now) {
    OpResult agg;
    agg.status = Status::Ok();
    agg.issue_done = now;
    agg.complete_at = now;
    SimTime t = now;
    for (KvRead& r : reads) {
      OpResult one = Get(partition, r.key, r.out, t);
      r.status = one.status;
      t = one.complete_at;
      agg.issue_done = std::max(agg.issue_done, one.issue_done);
      agg.complete_at = std::max(agg.complete_at, one.complete_at);
    }
    return agg;
  }

  // Drop every object in a partition (VM shutdown).
  virtual OpResult DropPartition(PartitionId partition, SimTime now) = 0;

  // Background maintenance hook, called off the fault path (the monitor's
  // PumpBackground). Stores that need periodic work — RAMCloud failure
  // detection + crash recovery, ReplicatedStore anti-entropy repair — do it
  // here; the default is a no-op. Returns the time the caller's clock
  // should advance to (>= now).
  virtual SimTime PumpMaintenance(SimTime now) { return now; }

  // Enumerate every (partition, key) currently stored, in a deterministic
  // order. Control-plane metadata walk (re-replication after a replica
  // death, scrub planning) — never a data op, never injected. Stores that
  // cannot enumerate (or decorators with nothing of their own) keep the
  // default no-op.
  virtual void ForEachKey(
      const std::function<void(PartitionId, Key)>& /*fn*/) const {}

  virtual bool Contains(PartitionId partition, Key key) const = 0;
  virtual std::size_t ObjectCount() const = 0;
  virtual std::size_t BytesStored() const = 0;
  virtual const StoreStats& stats() const = 0;
};

}  // namespace fluid::kv
