// RamcloudStore: a log-structured in-memory key-value store in the style of
// RAMCloud (Ousterhout et al., TOCS 2015), the paper's primary remote-memory
// backend.
//
// Faithfully reproduced properties that FluidMem exercises:
//   * log-structured memory: every put appends to the head segment; objects
//     are never updated in place, and a cleaner relocates live objects to
//     reclaim dead space — so sustained page-eviction traffic from the
//     monitor keeps working even as pages are overwritten;
//   * a hash table from (tablet, key) to log location for O(1) gets;
//   * native partitions (tablets), so FluidMem's partition index is used
//     directly rather than folded into the key;
//   * multiWrite: a batch of writes paying one round trip (§V-B's
//     asynchronous-writeback optimisation leans on this);
//   * asynchronous client API: OpResult separates the client-side "top
//     half" from completion, letting the monitor overlap UFFD_REMAP with
//     the network wait (§V-B "asynchronous reads");
//   * optional durability (Ongaro et al., SOSP'11): log records mirrored to
//     backup servers and crash recovery by replay. Off by default, as in
//     the paper's evaluation (§VI-A: "replication ... not turned on").
#pragma once

#include <cstddef>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/dist.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "kvstore/kvstore.h"
#include "net/transport.h"
#include "sim/executor.h"
#include "sim/timeline.h"

namespace fluid::kv {

struct RamcloudConfig {
  // Total log memory on the server ("RAMCloud is given 25 GB" in the paper;
  // scaled down in experiments).
  std::size_t memory_cap_bytes = 256ULL << 20;
  std::size_t segment_bytes = 1ULL << 20;
  // Start cleaning when log allocation exceeds this fraction of the cap.
  double cleaner_start_utilization = 0.85;
  // Server-side service time per object (hash lookup + log append).
  LatencyDist service = LatencyDist::Normal(0.8, 0.15, 0.3);
  // Client-side cost to build/post one RPC (the top half).
  LatencyDist client_issue = LatencyDist::Normal(0.5, 0.1, 0.2);
  // Server-side request concurrency. A RAMCloud master runs a polling
  // dispatch thread that hands RPCs to a pool of worker cores (Ousterhout
  // et al. §4.1), so requests posted while an earlier one is still being
  // serviced do not queue behind it unless every core is busy. 1 models a
  // single-core server: one serially-occupied timeline, which additionally
  // serializes ops in POST order — an op posted early for a future ready
  // time blocks later-posted ops with earlier ready times. Keep 1 for the
  // calibrated Table I/II latency runs; raise it when clients genuinely
  // overlap requests (the monitor's pipelined writeback path).
  std::size_t service_lanes = 1;
  // Durability (Ongaro et al., SOSP'11): mirror every log record to this
  // many backup servers so a crashed master can rebuild its DRAM log.
  // 0 = off, matching the paper's evaluation ("replication ... not turned
  // on"). Writes then additionally wait for backup acks.
  int backup_count = 0;
  LatencyDist backup_rtt = LatencyDist::Lognormal(9.5, 0.2, 5.0);
  // Replay cost per log record during crash recovery.
  LatencyDist replay_per_record = LatencyDist::Normal(0.35, 0.05, 0.15);
  // Coordinator-driven crash recovery (Ousterhout et al. §3.4: the
  // coordinator detects a dead master and starts recovery on its own).
  // When on, PumpMaintenance() triggers Recover() automatically once
  // `failure_detection_delay` has elapsed since the crash; no manual call.
  bool auto_recover = false;
  SimDuration failure_detection_delay = 500 * kMicrosecond;
  std::uint64_t seed = 42;
};

class RamcloudStore final : public KvStore {
 public:
  explicit RamcloudStore(RamcloudConfig config,
                         net::Transport transport = net::MakeVerbsTransport());

  std::string_view name() const override { return "ramcloud"; }
  bool has_native_partitions() const override { return true; }

  OpResult Put(PartitionId partition, Key key,
               std::span<const std::byte, kPageSize> value,
               SimTime now) override;
  OpResult Get(PartitionId partition, Key key,
               std::span<std::byte, kPageSize> out, SimTime now) override;
  OpResult Remove(PartitionId partition, Key key, SimTime now) override;
  OpResult MultiPut(PartitionId partition, std::span<KvWrite> writes,
                    SimTime now) override;
  // Native multiRead: the whole batch pays one round trip (Ousterhout et
  // al. §4); FluidMem's prefetcher leans on this.
  OpResult MultiGet(PartitionId partition, std::span<KvRead> reads,
                    SimTime now) override;
  OpResult DropPartition(PartitionId partition, SimTime now) override;

  bool Contains(PartitionId partition, Key key) const override;
  std::size_t ObjectCount() const override { return object_count_; }
  std::size_t BytesStored() const override { return live_bytes_; }
  const StoreStats& stats() const override { return stats_; }

  // --- crash recovery ----------------------------------------------------------

  // Simulate a master crash at `now`: all DRAM state (log + hash table) is
  // lost. Subsequent operations fail with kUnavailable until Recover() —
  // called manually, or by PumpMaintenance when config.auto_recover is on
  // and the coordinator's failure-detection delay has elapsed.
  void CrashMaster(SimTime now = 0);
  bool crashed() const noexcept { return crashed_; }
  // Coordinator tick: drives automatic crash recovery (see RamcloudConfig).
  SimTime PumpMaintenance(SimTime now) override;
  std::uint64_t auto_recoveries() const noexcept { return auto_recoveries_; }
  // Rebuild the log by replaying a backup (requires backup_count > 0 at
  // construction and at least one surviving backup). Returns the recovery
  // completion time.
  StatusOr<SimTime> Recover(SimTime now);
  // Fail a single backup server (fault injection).
  void CrashBackup(int index);
  std::size_t BackupRecordCount() const;

  // --- log internals exposed for tests/benchmarks ---------------------------
  std::size_t AllocatedLogBytes() const noexcept { return allocated_bytes_; }
  std::size_t SegmentCount() const noexcept { return segments_.size(); }
  std::uint64_t CleanerPasses() const noexcept { return cleaner_passes_; }
  double LogUtilization() const noexcept {
    return allocated_bytes_ == 0
               ? 0.0
               : static_cast<double>(live_bytes_) /
                     static_cast<double>(allocated_bytes_);
  }
  // Aggregate across service lanes (lane 0 is the whole server when
  // service_lanes == 1, the default).
  const Executor& server_lanes() const noexcept { return server_; }
  const Timeline& server_timeline() const noexcept { return server_.at(0); }

 private:
  struct Entry {
    PartitionId partition = 0;
    Key key = 0;
    bool live = false;
    std::vector<std::byte> data;
  };
  struct Segment {
    std::vector<Entry> entries;
    std::size_t bytes = 0;
    std::size_t dead_bytes = 0;
    bool sealed = false;
  };
  struct Loc {
    std::uint32_t segment = 0;
    std::uint32_t index = 0;
  };
  struct KeyId {
    PartitionId partition;
    Key key;
    bool operator==(const KeyId&) const = default;
  };
  struct KeyIdHash {
    std::size_t operator()(const KeyId& k) const noexcept {
      // Mix tablet into the page key (low 12 bits are zero for page keys).
      std::uint64_t x = k.key ^ (static_cast<std::uint64_t>(k.partition) << 1);
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdULL;
      x ^= x >> 33;
      return static_cast<std::size_t>(x);
    }
  };

  // A durable log record mirrored to backups (object or tombstone).
  struct BackupRecord {
    std::uint64_t seq = 0;
    PartitionId partition = 0;
    Key key = 0;
    bool tombstone = false;
    std::vector<std::byte> data;
  };
  struct Backup {
    bool alive = true;
    std::vector<BackupRecord> log;
  };

  // Append one object to the head segment; updates hash and accounting.
  Status AppendObject(PartitionId partition, Key key,
                      std::span<const std::byte> value);
  void KillExisting(PartitionId partition, Key key);
  void MirrorToBackups(BackupRecord record);
  // Extra completion delay for waiting on backup acks (0 when off).
  SimDuration BackupAckDelay();
  void MaybeClean();
  void OpenNewHead();

  // Timing helper: one round trip carrying req/resp payloads with `service`
  // on the server's dispatch timeline.
  OpResult TimedOp(SimTime now, std::size_t req_bytes, std::size_t resp_bytes,
                   SimDuration service, Status status);

  RamcloudConfig config_;
  net::Transport transport_;
  Executor server_;
  Rng rng_;

  std::deque<Segment> segments_;
  std::vector<std::uint32_t> free_segments_;
  std::uint32_t head_segment_ = 0;
  std::unordered_map<KeyId, Loc, KeyIdHash> hash_;

  std::size_t live_bytes_ = 0;
  std::size_t allocated_bytes_ = 0;
  std::size_t object_count_ = 0;
  std::uint64_t cleaner_passes_ = 0;
  StoreStats stats_;

  bool crashed_ = false;
  SimTime crashed_at_ = 0;
  std::uint64_t auto_recoveries_ = 0;
  std::uint64_t next_seq_ = 1;
  std::vector<Backup> backups_;
};

}  // namespace fluid::kv
