#include "kvstore/resilient.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace fluid::kv {

ResilientStore::ResilientStore(std::unique_ptr<KvStore> inner,
                               ResilientStoreConfig config)
    : inner_(std::move(inner)), config_(config), rng_(config.seed) {}

SimDuration ResilientStore::BackoffDelay(int attempt) {
  double d = static_cast<double>(config_.backoff_base);
  for (int i = 1; i < attempt; ++i) d *= config_.backoff_mult;
  const double jitter =
      1.0 + config_.jitter_frac * (2.0 * rng_.NextDouble() - 1.0);
  return static_cast<SimDuration>(d * jitter);
}

template <typename Op>
OpResult ResilientStore::RetryLoop(SimTime now, Op&& op) {
  const SimTime deadline = now + config_.op_deadline;
  SimTime start = now;
  for (int attempt = 1;; ++attempt) {
    OpResult r = op(start);
    r.attempts = attempt;
    if (!Retryable(r.status) || attempt >= config_.max_attempts) return r;
    // The retry budget is deadline-aware: if the next attempt cannot even
    // start before the deadline, give up now — the caller learns at the
    // failed attempt's completion, never later than it has to.
    const SimTime next = r.complete_at + BackoffDelay(attempt);
    if (next >= deadline) {
      ++stats_.deadline_exceeded;
      r.status = Status::DeadlineExceeded("retry budget exhausted");
      return r;
    }
    ++stats_.retries;
    start = next;
  }
}

SimDuration ResilientStore::CurrentHedgeDelay() const {
  if (read_samples_ < config_.hedge_min_samples) return config_.hedge_floor;
  // read_latency_ holds first-attempt latencies only (see Get) and
  // QuantileNs clamps to the observed range, so the delay can no longer be
  // pushed above the largest service time ever seen by a bucket edge, nor
  // dragged down by hedge winners.
  const double q = read_latency_.QuantileNs(config_.hedge_percentile);
  // Never hedge instantly, even if the store is very fast: a duplicate of
  // every read would double load for no tail benefit.
  return std::max<SimDuration>(static_cast<SimDuration>(q),
                               10 * kMicrosecond);
}

void ResilientStore::ObserveRead(SimTime start, const OpResult& r) {
  if (!r.status.ok() || r.complete_at < start) return;
  read_latency_.Record(r.complete_at - start);
  ++read_samples_;
}

OpResult ResilientStore::Put(PartitionId partition, Key key,
                             std::span<const std::byte, kPageSize> value,
                             SimTime now) {
  ++stats_.puts;
  return RetryLoop(now, [&](SimTime start) {
    return inner_->Put(partition, key, value, start);
  });
}

OpResult ResilientStore::Get(PartitionId partition, Key key,
                             std::span<std::byte, kPageSize> out,
                             SimTime now) {
  ++stats_.gets;
  return RetryLoop(now, [&](SimTime start) {
    OpResult first = inner_->Get(partition, key, out, start);
    const SimTime hedge_at = start + CurrentHedgeDelay();
    const bool late = first.complete_at > hedge_at;
    // kNotFound is an authoritative answer, not a slow store.
    if (!config_.hedge_reads || !late ||
        first.status.code() == StatusCode::kNotFound) {
      ObserveRead(start, first);
      return first;
    }
    // The first request is still outstanding at hedge_at (or will fail
    // slowly): issue a duplicate and take the earlier success. Data
    // effects are eager, so the duplicate lands in scratch and is copied
    // out only when it is the winner.
    ++stats_.hedged_reads;
    alignas(16) std::array<std::byte, kPageSize> scratch{};
    OpResult second = inner_->Get(partition, key, scratch, hedge_at);

    OpResult r;
    r.hedged = true;
    r.issue_done = std::max(first.issue_done, second.issue_done);
    const bool second_wins =
        second.status.ok() &&
        (!first.status.ok() || second.complete_at < first.complete_at);
    if (second_wins) {
      ++stats_.hedge_wins;
      std::memcpy(out.data(), scratch.data(), kPageSize);
      r.status = second.status;
      r.complete_at = second.complete_at;
    } else if (first.status.ok() ||
               second.status.code() == StatusCode::kNotFound) {
      r.status = first.status.ok() ? first.status : second.status;
      r.complete_at = first.status.ok()
                          ? first.complete_at
                          : std::max(first.complete_at, second.complete_at);
    } else {
      // Both failed: the caller waited on both before learning.
      r.status = first.status;
      r.complete_at = std::max(first.complete_at, second.complete_at);
    }
    // Calibration must see the UNHEDGED service-time distribution. Feeding
    // the winner's (shortened) latency back into read_latency_ ratchets the
    // p95 hedge delay downward: each hedge win lowers the delay, which
    // triggers more hedges, which record still-shorter latencies. Record
    // only the first attempt, and only when it completed successfully on
    // its own; a failed first attempt says nothing about service time.
    ObserveRead(start, first);
    return r;
  });
}

OpResult ResilientStore::MultiGet(PartitionId partition,
                                  std::span<KvRead> reads, SimTime now) {
  stats_.gets += reads.size();
  const SimTime deadline = now + config_.op_deadline;
  OpResult agg = inner_->MultiGet(partition, reads, now);
  agg.attempts = 1;
  SimTime t = agg.complete_at;
  for (int attempt = 1; attempt < config_.max_attempts; ++attempt) {
    std::vector<std::size_t> failed;
    for (std::size_t i = 0; i < reads.size(); ++i)
      if (Retryable(reads[i].status)) failed.push_back(i);
    if (failed.empty()) break;
    const SimTime next = t + BackoffDelay(attempt);
    if (next >= deadline) {
      ++stats_.deadline_exceeded;
      for (std::size_t i : failed)
        reads[i].status = Status::DeadlineExceeded("retry budget exhausted");
      break;
    }
    ++stats_.retries;
    // Re-issue ONLY the failed subset as its own (smaller) batch; keys that
    // already succeeded keep their data and are not re-fetched.
    std::vector<KvRead> sub;
    sub.reserve(failed.size());
    for (std::size_t i : failed)
      sub.push_back(KvRead{reads[i].key, reads[i].out, {}});
    const OpResult r = inner_->MultiGet(partition, sub, next);
    agg.attempts = attempt + 1;
    agg.issue_done = std::max(agg.issue_done, r.issue_done);
    agg.complete_at = std::max(agg.complete_at, r.complete_at);
    t = r.complete_at;
    for (std::size_t j = 0; j < failed.size(); ++j)
      reads[failed[j]].status = sub[j].status;
  }
  // The batch-level status mirrors the base adapter's contract: the batch
  // "succeeds" as a transport op even when individual keys did not; callers
  // consult per-key statuses.
  bool all_failed = !reads.empty();
  for (const KvRead& r : reads)
    if (r.status.ok() || r.status.code() == StatusCode::kNotFound)
      all_failed = false;
  if (all_failed)
    agg.status = reads[0].status;
  else if (agg.status.code() == StatusCode::kUnavailable)
    agg.status = Status::Ok();
  return agg;
}

OpResult ResilientStore::Remove(PartitionId partition, Key key, SimTime now) {
  ++stats_.removes;
  return RetryLoop(
      now, [&](SimTime start) { return inner_->Remove(partition, key, start); });
}

OpResult ResilientStore::MultiPut(PartitionId partition,
                                  std::span<KvWrite> writes,
                                  SimTime now) {
  ++stats_.multi_write_batches;
  stats_.multi_write_objects += writes.size();
  const SimTime deadline = now + config_.op_deadline;
  OpResult agg = inner_->MultiPut(partition, writes, now);
  agg.attempts = 1;
  SimTime t = agg.complete_at;
  for (int attempt = 1; attempt < config_.max_attempts; ++attempt) {
    std::vector<std::size_t> failed;
    for (std::size_t i = 0; i < writes.size(); ++i)
      if (Retryable(writes[i].status)) failed.push_back(i);
    if (failed.empty()) break;
    const SimTime next = t + BackoffDelay(attempt);
    if (next >= deadline) {
      ++stats_.deadline_exceeded;
      for (std::size_t i : failed)
        writes[i].status = Status::DeadlineExceeded("retry budget exhausted");
      break;
    }
    ++stats_.retries;
    // Re-issue ONLY the failed subset as its own (smaller) batch; objects
    // that already landed are never re-sent, so a one-key blip costs one
    // subset RTT instead of re-charging the store for the whole batch.
    // Terminal statuses (kNotFound-style, kResourceExhausted, ...) are
    // authoritative and excluded by Retryable above.
    stats_.multi_write_retried_objects += failed.size();
    std::vector<KvWrite> sub;
    sub.reserve(failed.size());
    for (std::size_t i : failed)
      sub.push_back(KvWrite{writes[i].key, writes[i].value, {}});
    const OpResult r = inner_->MultiPut(partition, sub, next);
    agg.attempts = attempt + 1;
    agg.issue_done = std::max(agg.issue_done, r.issue_done);
    agg.complete_at = std::max(agg.complete_at, r.complete_at);
    t = r.complete_at;
    for (std::size_t j = 0; j < failed.size(); ++j)
      writes[failed[j]].status = sub[j].status;
  }
  // Batch-level contract (matches the plain stores): Ok only when every
  // object landed, otherwise the last failed object's status. Under a
  // wholesale transport failure every slot carries the same status, so
  // callers that only look at the batch status see exactly what the old
  // whole-batch retry reported.
  Status s = Status::Ok();
  for (const KvWrite& w : writes)
    if (!w.status.ok()) s = w.status;
  agg.status = std::move(s);
  return agg;
}

OpResult ResilientStore::DropPartition(PartitionId partition, SimTime now) {
  return RetryLoop(
      now, [&](SimTime start) { return inner_->DropPartition(partition, start); });
}

}  // namespace fluid::kv
