#include "kvstore/decorators.h"

#include <algorithm>
#include <cstring>

namespace fluid::kv {

// --- CompressedStore ---------------------------------------------------------------

CompressedStore::CompressedStore(CompressedStoreConfig config,
                                 net::Transport transport)
    : config_(config), transport_(std::move(transport)), rng_(config.seed) {}

OpResult CompressedStore::TimedOp(SimTime now, std::size_t req_bytes,
                                  std::size_t resp_bytes,
                                  SimDuration extra_cpu, Status status) {
  OpResult r;
  r.status = std::move(status);
  r.issue_done = now + extra_cpu + config_.client_issue.Sample(rng_);
  const SimDuration rtt = transport_.SampleRtt(req_bytes, resp_bytes, rng_);
  const SimDuration half_out = rtt / 2;
  const auto svc = server_.Occupy(r.issue_done + half_out,
                                  config_.server_service.Sample(rng_));
  r.complete_at = svc.end + (rtt - half_out);
  return r;
}

StatusOr<std::size_t> CompressedStore::StoreObject(
    Key folded, std::span<const std::byte, kPageSize> value) {
  Object obj;
  Compress(value, obj.compressed);
  if (config_.verify_checksums) obj.crc = Crc32c(value);
  if (obj.compressed.size() == 1) ++zero_pages_;  // zero-page elision

  auto it = map_.find(folded);
  const std::size_t old_size =
      it == map_.end() ? 0 : it->second.compressed.size();
  const std::size_t new_total =
      compressed_bytes_ - old_size + obj.compressed.size();
  if (new_total > config_.memory_cap_bytes)
    return Status::ResourceExhausted("compressed pool full");
  const std::size_t wire = obj.compressed.size();
  compressed_bytes_ = new_total;
  map_[folded] = std::move(obj);
  return wire;
}

OpResult CompressedStore::Put(PartitionId partition, Key key,
                              std::span<const std::byte, kPageSize> value,
                              SimTime now) {
  ++stats_.puts;
  auto wire = StoreObject(FoldPartition(key, partition), value);
  if (!wire.ok())
    return TimedOp(now, 64, 32, config_.compress_cpu.Sample(rng_),
                   wire.status());
  return TimedOp(now, *wire + 40, 32, config_.compress_cpu.Sample(rng_),
                 Status::Ok());
}

OpResult CompressedStore::Get(PartitionId partition, Key key,
                              std::span<std::byte, kPageSize> out,
                              SimTime now) {
  ++stats_.gets;
  auto it = map_.find(FoldPartition(key, partition));
  if (it == map_.end())
    return TimedOp(now, 32, 32, 0, Status::NotFound("no such page"));
  Status s = Decompress(it->second.compressed, out);
  if (s.ok() && config_.verify_checksums && Crc32c(out) != it->second.crc) {
    ++checksum_failures_;
    s = Status::Internal("page checksum mismatch");
  }
  return TimedOp(now, 32, it->second.compressed.size() + 40,
                 config_.decompress_cpu.Sample(rng_), std::move(s));
}

OpResult CompressedStore::Remove(PartitionId partition, Key key,
                                 SimTime now) {
  ++stats_.removes;
  auto it = map_.find(FoldPartition(key, partition));
  if (it == map_.end())
    return TimedOp(now, 32, 32, 0, Status::NotFound(""));
  compressed_bytes_ -= it->second.compressed.size();
  map_.erase(it);
  return TimedOp(now, 32, 32, 0, Status::Ok());
}

OpResult CompressedStore::MultiPut(PartitionId partition,
                                   std::span<KvWrite> writes,
                                   SimTime now) {
  ++stats_.multi_write_batches;
  stats_.multi_write_objects += writes.size();
  Status s = Status::Ok();
  std::size_t wire_total = 0;
  SimDuration cpu = 0;
  for (KvWrite& w : writes) {
    cpu += config_.compress_cpu.Sample(rng_);
    auto wire = StoreObject(FoldPartition(w.key, partition), w.value);
    if (!wire.ok()) {
      w.status = wire.status();
      s = wire.status();
    } else {
      w.status = Status::Ok();
      wire_total += *wire + 40;
    }
  }
  OpResult r;
  r.status = std::move(s);
  r.issue_done = now + cpu + config_.client_issue.Sample(rng_);
  const SimDuration rtt =
      transport_.SampleBatchRtt(writes.size(),
                                writes.empty() ? 0 : wire_total / writes.size(),
                                rng_);
  SimDuration service = 0;
  for (std::size_t i = 0; i < writes.size(); ++i)
    service += config_.server_service.Sample(rng_);
  const SimDuration half_out = rtt / 2;
  const auto svc = server_.Occupy(r.issue_done + half_out, service);
  r.complete_at = svc.end + (rtt - half_out);
  return r;
}

OpResult CompressedStore::DropPartition(PartitionId partition, SimTime now) {
  for (auto it = map_.begin(); it != map_.end();) {
    if (KeyPartition(it->first) == partition) {
      compressed_bytes_ -= it->second.compressed.size();
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
  return TimedOp(now, 32, 32, 0, Status::Ok());
}

bool CompressedStore::Contains(PartitionId partition, Key key) const {
  return map_.contains(FoldPartition(key, partition));
}

void CompressedStore::ForEachKey(
    const std::function<void(PartitionId, Key)>& fn) const {
  std::vector<Key> keys;
  keys.reserve(map_.size());
  for (const auto& [k, obj] : map_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  for (Key k : keys) fn(KeyPartition(k), KeyAddr(k));
}

// --- ReplicatedStore --------------------------------------------------------------------

ReplicatedStore::ReplicatedStore(
    std::vector<std::unique_ptr<KvStore>> replicas, int write_quorum,
    SimDuration probe_interval)
    : replicas_(std::move(replicas)),
      write_quorum_(write_quorum),
      probe_interval_(probe_interval),
      health_(replicas_.size(),
              HealthTracker{HealthConfig{/*trip_after=*/1,
                                         /*open_duration=*/probe_interval}}),
      dirty_(replicas_.size()),
      dirty_partitions_(replicas_.size()),
      down_since_(replicas_.size(), 0),
      dead_marked_(replicas_.size(), false) {}

void ReplicatedStore::NoteResult(std::size_t i, const OpResult& r) {
  if (r.status.ok() || r.status.code() == StatusCode::kNotFound) {
    // The replica answered; it is alive (kNotFound is a healthy answer).
    health_[i].RecordSuccess(r.complete_at);
    down_since_[i] = 0;
  } else if (r.status.code() == StatusCode::kUnavailable ||
             r.status.code() == StatusCode::kDataLoss) {
    // kDataLoss counts against the breaker too: a replica serving rotten
    // bytes is as unfit to serve reads as one timing out — previously only
    // op-status failures fed the failure detector, so a corrupting replica
    // kept absorbing primary reads forever.
    health_[i].RecordFailure(r.complete_at);
    if (down_since_[i] == 0) down_since_[i] = r.complete_at;
  }
}

void ReplicatedStore::NoteWrite(std::size_t i, PartitionId partition, Key key,
                                bool ok) {
  if (ok) {
    // A fresh write overwrites whatever stale value the replica held.
    auto it = dirty_[i].find(partition);
    if (it != dirty_[i].end()) {
      it->second.erase(key);
      if (it->second.empty()) dirty_[i].erase(it);
    }
  } else {
    dirty_[i][partition].insert(key);
  }
}

bool ReplicatedStore::ReplicaDirty(std::size_t i, PartitionId partition,
                                   Key key) const {
  if (dirty_partitions_[i].contains(partition)) return true;
  auto it = dirty_[i].find(partition);
  return it != dirty_[i].end() && it->second.contains(key);
}

std::size_t ReplicatedStore::DirtyObjectCount() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    n += dirty_partitions_[i].size();
    for (const auto& [partition, keys] : dirty_[i]) n += keys.size();
  }
  return n;
}

bool ReplicatedStore::has_native_partitions() const {
  for (const auto& r : replicas_)
    if (!r->has_native_partitions()) return false;
  return true;
}

OpResult ReplicatedStore::Put(PartitionId partition, Key key,
                              std::span<const std::byte, kPageSize> value,
                              SimTime now) {
  ++agg_stats_.puts;
  OpResult agg;
  agg.issue_done = now;
  agg.complete_at = now;
  int acks = 0;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    OpResult one = replicas_[i]->Put(partition, key, value, now);
    NoteResult(i, one);
    NoteWrite(i, partition, key, one.status.ok());
    agg.issue_done = std::max(agg.issue_done, one.issue_done);
    agg.complete_at = std::max(agg.complete_at, one.complete_at);
    if (one.status.ok()) ++acks;
  }
  if (acks >= write_quorum_) {
    if (acks < static_cast<int>(replicas_.size())) ++rstats_.degraded_writes;
    agg.status = Status::Ok();
  } else {
    ++rstats_.write_failures;
    agg.status = Status::Unavailable("below write quorum");
  }
  return agg;
}

OpResult ReplicatedStore::Get(PartitionId partition, Key key,
                              std::span<std::byte, kPageSize> out,
                              SimTime now) {
  ++agg_stats_.gets;
  // Try replicas in order; cumulative time reflects failover attempts.
  // Replicas suspected dead are skipped until their probe time, so a dead
  // primary's timeout is paid once per probe interval, not once per read.
  SimTime t = now;
  OpResult last;
  bool attempted = false;
  bool saw_data_loss = false;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (ReplicaDirty(i, partition, key)) {
      // The replica missed a write for this key while down: its copy is
      // stale (or a removed key it would resurrect). Never serve it.
      // Checked before the breaker so a stale replica cannot burn the
      // half-open probe token on a request that was never sent.
      ++rstats_.stale_skips;
      continue;
    }
    if (!health_[i].AllowRequest(t)) {
      ++rstats_.suspect_skips;
      continue;
    }
    last = replicas_[i]->Get(partition, key, out, t);
    attempted = true;
    NoteResult(i, last);
    if (last.status.ok()) {
      if (i > 0) ++rstats_.failovers;
      return last;
    }
    // kNotFound on the primary is authoritative only if the replica is
    // healthy; on kUnavailable, keep trying.
    if (last.status.code() == StatusCode::kNotFound) return last;
    if (last.status.code() == StatusCode::kDataLoss) {
      // The replica's copy failed envelope verification: its bytes are
      // rotten, not just late. Dirty the key so reads never route back to
      // this copy and anti-entropy rewrites it from a clean peer, then
      // fail over exactly as for a loud read failure.
      NoteWrite(i, partition, key, false);
      ++rstats_.corruption_failovers;
      saw_data_loss = true;
    }
    t = last.complete_at;
  }
  if (!attempted) {
    // Every replica is in its suspect window: fail fast without charging
    // any network time — the failure detector already knows the answer.
    last.status = Status::Unavailable("all replicas suspected down");
    last.issue_done = now;
    last.complete_at = now;
  }
  if (saw_data_loss && !last.status.ok() &&
      last.status.code() != StatusCode::kNotFound) {
    // No replica produced an intact copy and at least one is corrupt:
    // report DataLoss, not Unavailable — the caller must quarantine, not
    // merely retry, and must never see the rotten bytes as success.
    last.status = Status::DataLoss("no replica holds an intact copy");
  }
  return last;
}

void ReplicatedStore::ReportCorruption(std::size_t replica,
                                       PartitionId partition, Key key) {
  if (replica >= replicas_.size()) return;
  NoteWrite(replica, partition, key, false);
  ++rstats_.corruptions_reported;
}

OpResult ReplicatedStore::Remove(PartitionId partition, Key key,
                                 SimTime now) {
  ++agg_stats_.removes;
  OpResult agg;
  agg.issue_done = now;
  agg.complete_at = now;
  agg.status = Status::NotFound("");
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    OpResult one = replicas_[i]->Remove(partition, key, now);
    NoteResult(i, one);
    // A replica that missed the remove would resurrect the key on
    // failover; kNotFound means it never had it (equally gone).
    NoteWrite(i, partition, key,
              one.status.ok() || one.status.code() == StatusCode::kNotFound);
    agg.issue_done = std::max(agg.issue_done, one.issue_done);
    agg.complete_at = std::max(agg.complete_at, one.complete_at);
    if (one.status.ok()) agg.status = Status::Ok();
  }
  return agg;
}

OpResult ReplicatedStore::MultiPut(PartitionId partition,
                                   std::span<KvWrite> writes,
                                   SimTime now) {
  ++agg_stats_.multi_write_batches;
  agg_stats_.multi_write_objects += writes.size();
  OpResult agg;
  agg.issue_done = now;
  agg.complete_at = now;
  // Each replica stamps per-object statuses into its own copy of the batch
  // (a shared span would let replica i overwrite replica i-1's verdicts);
  // quorum is then counted per KEY, so a batch where different replicas
  // miss different keys degrades per-object instead of wholesale.
  std::vector<int> key_acks(writes.size(), 0);
  std::vector<KvWrite> mirror(writes.begin(), writes.end());
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    for (std::size_t k = 0; k < writes.size(); ++k) {
      mirror[k] = writes[k];
      mirror[k].status = Status::Ok();
    }
    OpResult one = replicas_[i]->MultiPut(partition, mirror, now);
    NoteResult(i, one);
    for (std::size_t k = 0; k < mirror.size(); ++k) {
      const bool ok = mirror[k].status.ok();
      NoteWrite(i, partition, mirror[k].key, ok);
      if (ok) ++key_acks[k];
    }
    agg.issue_done = std::max(agg.issue_done, one.issue_done);
    agg.complete_at = std::max(agg.complete_at, one.complete_at);
  }
  bool all_quorate = true;
  bool degraded = false;
  for (std::size_t k = 0; k < writes.size(); ++k) {
    if (key_acks[k] >= write_quorum_) {
      writes[k].status = Status::Ok();
      if (key_acks[k] < static_cast<int>(replicas_.size())) degraded = true;
    } else {
      writes[k].status = Status::Unavailable("below write quorum");
      all_quorate = false;
    }
  }
  if (all_quorate && !writes.empty()) {
    if (degraded) ++rstats_.degraded_writes;
    agg.status = Status::Ok();
  } else if (!writes.empty()) {
    ++rstats_.write_failures;
    agg.status = Status::Unavailable("below write quorum");
  } else {
    agg.status = Status::Ok();
  }
  return agg;
}

OpResult ReplicatedStore::DropPartition(PartitionId partition, SimTime now) {
  OpResult agg;
  agg.issue_done = now;
  agg.complete_at = now;
  agg.status = Status::Ok();
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    OpResult one = replicas_[i]->DropPartition(partition, now);
    NoteResult(i, one);
    if (one.status.ok()) {
      // The whole partition is gone on this replica; per-key divergence
      // within it is moot.
      dirty_partitions_[i].erase(partition);
      dirty_[i].erase(partition);
    } else {
      // The replica still holds objects of a dropped partition — mark the
      // whole partition dirty so reads skip it and repair retries the drop.
      dirty_partitions_[i].insert(partition);
      dirty_[i].erase(partition);
    }
    agg.complete_at = std::max(agg.complete_at, one.complete_at);
  }
  return agg;
}

SimTime ReplicatedStore::PumpMaintenance(SimTime now) {
  SimTime t = now;
  for (auto& r : replicas_) t = std::max(t, r->PumpMaintenance(t));
  if (dead_after_ > 0) {
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (!dead_marked_[i] && down_since_[i] > 0 &&
          t >= down_since_[i] + dead_after_)
        DeclareDead(i);
    }
  }
  return RepairPass(t);
}

void ReplicatedStore::DeclareDead(std::size_t i) {
  // Enumerate the full key set from the first peer that is neither dead
  // nor mid-re-replication, and mark every object missing from the dead
  // replica. Anti-entropy then re-replicates the set from clean copies,
  // restoring the replication factor once the slot starts answering
  // again (recovered host or rebuilt replacement). Enumeration is a
  // metadata walk on the healthy peer — no data ops, no injection.
  for (std::size_t j = 0; j < replicas_.size(); ++j) {
    if (j == i || dead_marked_[j]) continue;
    replicas_[j]->ForEachKey([&](PartitionId partition, Key key) {
      NoteWrite(i, partition, key, false);
    });
    dead_marked_[i] = true;
    ++rstats_.dead_declared;
    return;
  }
}

SimTime ReplicatedStore::RepairPass(SimTime now, std::size_t budget) {
  SimTime t = now;
  for (std::size_t i = 0; i < replicas_.size() && budget > 0; ++i) {
    if (dirty_partitions_[i].empty() && dirty_[i].empty()) continue;
    // Don't batter a replica whose breaker is open; a half-open repair op
    // doubles as the probe (its result feeds the breaker via NoteResult).
    if (health_[i].StateAt(t) == BreakerState::kOpen) continue;

    // Missed partition drops first: retry the drop wholesale.
    while (budget > 0 && !dirty_partitions_[i].empty()) {
      const PartitionId partition = *dirty_partitions_[i].begin();
      OpResult one = replicas_[i]->DropPartition(partition, t);
      NoteResult(i, one);
      --budget;
      t = std::max(t, one.complete_at);
      if (!one.status.ok()) {
        ++rstats_.repair_failures;
        break;  // replica still unhealthy; try again next pass
      }
      dirty_partitions_[i].erase(partition);
      ++rstats_.repairs;
    }
    if (health_[i].StateAt(t) == BreakerState::kOpen) continue;

    // Then per-key divergence: copy from the first clean, closed peer.
    bool replica_failed = false;
    for (auto pit = dirty_[i].begin();
         pit != dirty_[i].end() && budget > 0 && !replica_failed;) {
      const PartitionId partition = pit->first;
      std::set<Key>& keys = pit->second;
      for (auto kit = keys.begin(); kit != keys.end() && budget > 0;) {
        const Key key = *kit;
        // Find a source holding the authoritative copy.
        alignas(16) std::array<std::byte, kPageSize> page{};
        OpResult src;
        src.status = Status::Unavailable("no clean source replica");
        bool not_found = false;
        for (std::size_t j = 0; j < replicas_.size(); ++j) {
          if (j == i || ReplicaDirty(j, partition, key)) continue;
          if (health_[j].StateAt(t) != BreakerState::kClosed) continue;
          src = replicas_[j]->Get(partition, key, page, t);
          NoteResult(j, src);
          t = std::max(t, src.complete_at);
          if (src.status.ok()) break;
          if (src.status.code() == StatusCode::kNotFound) {
            not_found = true;  // authoritative: the object was removed
            break;
          }
          if (src.status.code() == StatusCode::kDataLoss) {
            // The would-be source is rotten too: dirty it so it stops
            // being offered as a source and gets repaired itself.
            NoteWrite(j, partition, key, false);
            ++rstats_.corruption_failovers;
          }
        }
        --budget;
        if (!src.status.ok() && !not_found) {
          ++rstats_.repair_failures;
          ++kit;
          continue;
        }
        OpResult fix = not_found
                           ? replicas_[i]->Remove(partition, key, t)
                           : replicas_[i]->Put(partition, key, page, t);
        NoteResult(i, fix);
        t = std::max(t, fix.complete_at);
        const bool fixed =
            fix.status.ok() ||
            (not_found && fix.status.code() == StatusCode::kNotFound);
        if (!fixed) {
          ++rstats_.repair_failures;
          replica_failed = true;  // replica went away again mid-repair
          break;
        }
        ++rstats_.repairs;
        if (dead_marked_[i]) ++rstats_.rf_restored;
        kit = keys.erase(kit);
      }
      if (keys.empty())
        pit = dirty_[i].erase(pit);
      else
        ++pit;
    }
    // Dead replica fully resynced: back to full replication factor.
    if (dead_marked_[i] && dirty_[i].empty() && dirty_partitions_[i].empty())
      dead_marked_[i] = false;
  }
  return t;
}

bool ReplicatedStore::Contains(PartitionId partition, Key key) const {
  for (const auto& r : replicas_)
    if (r->Contains(partition, key)) return true;
  return false;
}

std::size_t ReplicatedStore::ObjectCount() const {
  std::size_t m = 0;
  for (const auto& r : replicas_) m = std::max(m, r->ObjectCount());
  return m;
}

std::size_t ReplicatedStore::BytesStored() const {
  std::size_t m = 0;
  for (const auto& r : replicas_) m = std::max(m, r->BytesStored());
  return m;
}

}  // namespace fluid::kv
