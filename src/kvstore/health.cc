#include "kvstore/health.h"

namespace fluid::kv {

bool HealthTracker::AllowRequest(SimTime now) {
  if (!tripped_) return true;
  if (now < probe_at_) {
    ++stats_.fast_rejects;
    return false;
  }
  // Half-open: one probe per window. The probe slot is released by the
  // probe's own RecordSuccess/RecordFailure.
  if (probe_inflight_) {
    ++stats_.fast_rejects;
    return false;
  }
  probe_inflight_ = true;
  ++stats_.probes;
  return true;
}

void HealthTracker::RecordSuccess(SimTime) {
  ++stats_.successes;
  consecutive_failures_ = 0;
  tripped_ = false;
  probe_inflight_ = false;
}

void HealthTracker::RecordFailure(SimTime now) {
  ++stats_.failures;
  if (tripped_) {
    // A failed half-open probe (or a straggling in-flight op): re-arm the
    // Open window from the failure's completion time.
    probe_inflight_ = false;
    probe_at_ = now + config_.open_duration;
    return;
  }
  ++consecutive_failures_;
  if (consecutive_failures_ >= config_.trip_after) {
    tripped_ = true;
    probe_inflight_ = false;
    probe_at_ = now + config_.open_duration;
    ++stats_.trips;
  }
}

BreakerState HealthTracker::StateAt(SimTime now) const {
  if (!tripped_) return BreakerState::kClosed;
  return now >= probe_at_ ? BreakerState::kHalfOpen : BreakerState::kOpen;
}

const char* BreakerStateName(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

}  // namespace fluid::kv
