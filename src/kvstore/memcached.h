// MemcachedStore: a slab-allocated cache-style key-value store in the style
// of memcached, the paper's commodity-Ethernet-friendly backend (§VI runs it
// over IP-over-InfiniBand TCP).
//
// Reproduced properties FluidMem interacts with:
//   * slab allocation: memory is carved into fixed-size slabs, each sliced
//     into chunks of one size class; a 4 KB page lands in the largest class;
//   * per-class LRU eviction when the memory cap is reached — meaning the
//     store can silently DROP the least-recently-used object. FluidMem must
//     size the store above the VM's remote footprint or lose pages, and the
//     tests assert both sides of that contract;
//   * no native partitions: the 12-bit virtual partition is folded into the
//     key's low bits (key_codec.h), exactly the paper's scheme;
//   * TCP transport with kernel-stack CPU cost, which is what makes the
//     Memcached configurations slower end-to-end in Figs. 3 and 4.
#pragma once

#include <cstddef>
#include <list>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/dist.h"
#include "common/rng.h"
#include "common/types.h"
#include "kvstore/kvstore.h"
#include "net/transport.h"
#include "sim/timeline.h"

namespace fluid::kv {

struct MemcachedConfig {
  std::size_t memory_cap_bytes = 256ULL << 20;
  std::size_t slab_bytes = 1ULL << 20;
  // Server-side service per op (hash + LRU bookkeeping); memcached's
  // event-loop dispatch is slower than RAMCloud's polling dispatch.
  LatencyDist service = LatencyDist::Normal(2.0, 0.4, 0.8);
  LatencyDist client_issue = LatencyDist::Normal(1.0, 0.2, 0.4);
  std::uint64_t seed = 43;
};

class MemcachedStore final : public KvStore {
 public:
  explicit MemcachedStore(MemcachedConfig config,
                          net::Transport transport = net::MakeIpoibTcpTransport());

  std::string_view name() const override { return "memcached"; }
  bool has_native_partitions() const override { return false; }

  OpResult Put(PartitionId partition, Key key,
               std::span<const std::byte, kPageSize> value,
               SimTime now) override;
  OpResult Get(PartitionId partition, Key key,
               std::span<std::byte, kPageSize> out, SimTime now) override;
  OpResult Remove(PartitionId partition, Key key, SimTime now) override;
  // memcached has no multi-write; FluidMem's flush path falls back to
  // pipelined singles (one client issue, per-op RTTs overlapping on the
  // server timeline).
  OpResult MultiPut(PartitionId partition, std::span<KvWrite> writes,
                    SimTime now) override;
  OpResult DropPartition(PartitionId partition, SimTime now) override;

  bool Contains(PartitionId partition, Key key) const override;
  std::size_t ObjectCount() const override { return items_.size(); }
  std::size_t BytesStored() const override {
    return items_.size() * kChunkBytes;
  }
  const StoreStats& stats() const override { return stats_; }

  // Chunk size of the page class (value + item header), for tests.
  static constexpr std::size_t kChunkBytes = kPageSize + 56;

  std::size_t SlabCount() const noexcept { return slab_count_; }

 private:
  struct Item {
    Key key = 0;  // partition already folded in
    std::vector<std::byte> data;
  };
  using LruList = std::list<Item>;

  OpResult TimedOp(SimTime now, std::size_t req_bytes, std::size_t resp_bytes,
                   Status status);
  // Returns false if a new chunk cannot be obtained even after eviction.
  bool EnsureChunkAvailable();

  MemcachedConfig config_;
  net::Transport transport_;
  Timeline server_;
  Rng rng_;

  LruList lru_;  // front = most recent
  std::unordered_map<Key, LruList::iterator> items_;
  std::size_t slab_count_ = 0;
  std::size_t chunks_allocated_ = 0;  // capacity from slabs, in chunks
  StoreStats stats_;
};

}  // namespace fluid::kv
