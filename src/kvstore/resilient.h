// ResilientStore — deadline / retry / hedging decorator for any KvStore.
//
// The paper's monitor talks to remote memory over RPC; in production that
// path sees transient kUnavailable blips and latency outliers. This
// decorator gives every remote op:
//
//   * a per-op deadline — the caller is never stalled unboundedly; an op
//     that cannot finish in time returns kDeadlineExceeded at the deadline;
//   * bounded retries with exponential backoff + jitter — transient
//     failures are absorbed below the monitor instead of surfacing as
//     transient_read_errors / writeback requeue churn;
//   * hedged reads — on the fault path, if the first Get has not completed
//     by a calibrated percentile of observed read latency, a second copy
//     of the request is issued and the earlier success wins (the classic
//     tail-at-scale trick).
//
// Everything is deterministic: backoff jitter comes from a seeded Rng, the
// hedge delay is calibrated from a latency histogram of this store's own
// successful reads, and all scheduling is in virtual time.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string_view>

#include "common/histogram.h"
#include "common/rng.h"
#include "kvstore/kvstore.h"

namespace fluid::kv {

struct ResilientStoreConfig {
  // Hard per-op budget measured from the caller's `now`. Ops that would
  // finish (or retry) past it fail with kDeadlineExceeded at the deadline.
  SimDuration op_deadline = 2 * kMillisecond;
  // Total attempts (first try + retries). Retryable failure: kUnavailable.
  int max_attempts = 4;
  SimDuration backoff_base = 50 * kMicrosecond;
  double backoff_mult = 2.0;
  // Each backoff is scaled by a uniform factor in [1-jitter, 1+jitter].
  double jitter_frac = 0.25;

  // Hedged Gets: issue a duplicate request once the first has been
  // outstanding for the calibrated percentile of observed read latency.
  bool hedge_reads = true;
  double hedge_percentile = 0.95;
  // Until this many successful reads are observed, use hedge_floor.
  std::uint32_t hedge_min_samples = 32;
  SimDuration hedge_floor = 200 * kMicrosecond;

  std::uint64_t seed = 61;
};

class ResilientStore final : public KvStore {
 public:
  ResilientStore(std::unique_ptr<KvStore> inner, ResilientStoreConfig config);

  std::string_view name() const override { return "resilient"; }
  bool has_native_partitions() const override {
    return inner_->has_native_partitions();
  }

  OpResult Put(PartitionId partition, Key key,
               std::span<const std::byte, kPageSize> value,
               SimTime now) override;
  OpResult Get(PartitionId partition, Key key,
               std::span<std::byte, kPageSize> out, SimTime now) override;
  OpResult Remove(PartitionId partition, Key key, SimTime now) override;
  OpResult MultiPut(PartitionId partition, std::span<KvWrite> writes,
                    SimTime now) override;
  // Batched read with SUBSET retry: the whole batch goes to the inner
  // store's native MultiGet (one batch RTT), then only the keys that came
  // back kUnavailable are re-issued as a smaller batch, with the same
  // backoff/deadline budget as single ops. kNotFound is authoritative and
  // never retried. Batches are not hedged: a duplicate batch would double
  // the largest requests on the wire for a tail benefit the per-key
  // subset-retry already provides.
  OpResult MultiGet(PartitionId partition, std::span<KvRead> reads,
                    SimTime now) override;
  OpResult DropPartition(PartitionId partition, SimTime now) override;
  SimTime PumpMaintenance(SimTime now) override {
    return inner_->PumpMaintenance(now);
  }

  bool Contains(PartitionId partition, Key key) const override {
    return inner_->Contains(partition, key);
  }
  void ForEachKey(
      const std::function<void(PartitionId, Key)>& fn) const override {
    inner_->ForEachKey(fn);
  }
  std::size_t ObjectCount() const override { return inner_->ObjectCount(); }
  std::size_t BytesStored() const override { return inner_->BytesStored(); }
  const StoreStats& stats() const override { return stats_; }

  KvStore& inner() noexcept { return *inner_; }
  // The hedge delay a Get issued at this instant would use.
  SimDuration CurrentHedgeDelay() const;

 private:
  // Runs `op(attempt_start)` up to max_attempts times; `op` must return an
  // OpResult. Shared by every verb.
  template <typename Op>
  OpResult RetryLoop(SimTime now, Op&& op);

  SimDuration BackoffDelay(int attempt);
  void ObserveRead(SimTime start, const OpResult& r);
  static bool Retryable(const Status& s) {
    // kDataLoss is retryable by design: a corruption-failed read dirties
    // the rotten replica below (ReplicatedStore), so the retry routes to a
    // clean copy — or, on a single store, re-reads past a transient wire
    // flip. Only if every attempt rots does DataLoss surface to the caller.
    return s.code() == StatusCode::kUnavailable ||
           s.code() == StatusCode::kDataLoss;
  }

  std::unique_ptr<KvStore> inner_;
  ResilientStoreConfig config_;
  Rng rng_;
  LatencyHistogram read_latency_;
  std::uint32_t read_samples_ = 0;
  StoreStats stats_;
};

}  // namespace fluid::kv
