// Per-backend health tracking: a circuit breaker in virtual time.
//
// Failure handling in the stack used to be a scattered pair of
// `suspect_` / `retry_at_` vectors inside ReplicatedStore; this pulls the
// state machine out so the monitor's degradation path and the replicated
// store's read routing share one implementation:
//
//       Closed ──(trip_after consecutive failures)──▶ Open
//         ▲                                            │
//         │ success                    open_duration elapses
//         │                                            ▼
//         └───────────(probe succeeds)────────── Half-open
//                        (probe fails → Open again, timer re-armed)
//
// Closed passes every request through. Open fast-rejects everything —
// callers fail over or degrade without paying the dead backend's timeout.
// Half-open admits exactly one probe per window; its outcome decides
// whether the breaker closes or re-opens. All transitions are driven by
// the virtual-time stamps of observed op results, so the whole machine is
// deterministic under (seed, FaultPlan).
#pragma once

#include <cstdint>

#include "common/types.h"

namespace fluid::kv {

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

struct HealthConfig {
  // Consecutive kUnavailable results before the breaker trips.
  int trip_after = 3;
  // How long Open lasts before a half-open probe is admitted.
  SimDuration open_duration = 1 * kMillisecond;
};

struct HealthStats {
  std::uint64_t trips = 0;         // Closed -> Open transitions
  std::uint64_t probes = 0;        // half-open probes admitted
  std::uint64_t fast_rejects = 0;  // requests refused while Open
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
};

class HealthTracker {
 public:
  HealthTracker() = default;
  explicit HealthTracker(HealthConfig config) : config_(config) {}

  // Gate a request at `now`. Closed: always true. Open: false (counted as
  // a fast reject). Half-open: true for the first caller in the window
  // (the probe), false for the rest until the probe's result lands.
  bool AllowRequest(SimTime now);

  // Feed back an op outcome observed at `now` (use the op's complete_at).
  void RecordSuccess(SimTime now);
  void RecordFailure(SimTime now);

  BreakerState StateAt(SimTime now) const;
  bool tripped() const noexcept { return tripped_; }
  int consecutive_failures() const noexcept { return consecutive_failures_; }
  SimTime probe_at() const noexcept { return probe_at_; }
  const HealthStats& stats() const noexcept { return stats_; }

 private:
  HealthConfig config_;
  int consecutive_failures_ = 0;
  bool tripped_ = false;
  bool probe_inflight_ = false;
  SimTime probe_at_ = 0;  // when Open ends and a probe is admitted
  HealthStats stats_;
};

const char* BreakerStateName(BreakerState s);

}  // namespace fluid::kv
