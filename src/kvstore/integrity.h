// IntegrityStore: end-to-end checksummed page envelopes (PR 8).
//
// The resilience layer handles LOUD failures — timeouts, outages, crashed
// replicas. This decorator closes the silent-failure gap: a bit flip on
// the wire, a torn write on a memory server, or a stale version served
// after a partial recovery would otherwise hand wrong bytes to the VM
// undetected. Every Put records an envelope — a CRC-32C binding the
// payload to its (key, version) — and every Get/MultiGet re-verifies it,
// turning silent corruption into a loud Status::DataLoss that the
// existing retry/failover machinery above (ResilientStore,
// ReplicatedStore) already knows how to route around.
//
// The envelope is modeled as a side table rather than bytes prepended to
// the value: the KvStore API moves fixed 4 KB pages, so the header that a
// real store would write ahead of the payload lives in the decorator.
// Corruption is injected BELOW this layer (chaos InjectedStore), so
// verification covers the full storage round trip.
//
// A budgeted scrubber rides PumpMaintenance: each tick it re-reads and
// re-verifies up to `scrub_budget` stored pages in deterministic key
// order, so planted rot on a cold page is found within
// ceil(objects / budget) + 1 ticks instead of waiting for the next demand
// fetch. Detections (read-path and scrub) are reported through an
// optional callback so the owner (e.g. the chaos harness) can feed them
// to ReplicatedStore's anti-entropy repair.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string_view>

#include "kvstore/kvstore.h"

namespace fluid::kv {

struct IntegrityStoreStats {
  std::uint64_t envelopes_written = 0;   // Put/MultiPut objects enveloped
  std::uint64_t verified_reads = 0;      // Get/MultiGet objects verified OK
  std::uint64_t corruptions_detected = 0;  // read-path checksum mismatches
  std::uint64_t unverified_reads = 0;    // reads of keys with no envelope
  std::uint64_t scrub_pages = 0;         // pages re-verified by the scrubber
  std::uint64_t scrub_corruptions = 0;   // rot found by the scrubber
};

class IntegrityStore final : public KvStore {
 public:
  // Called on every detected corruption with the (partition, key) of the
  // bad page — read path and scrubber alike.
  using CorruptionCallback = std::function<void(PartitionId, Key)>;

  explicit IntegrityStore(std::unique_ptr<KvStore> inner,
                          std::size_t scrub_budget = 0)
      : inner_(std::move(inner)), scrub_budget_(scrub_budget) {}

  void set_on_corruption(CorruptionCallback cb) { on_corruption_ = std::move(cb); }
  void set_scrub_budget(std::size_t budget) noexcept { scrub_budget_ = budget; }
  KvStore& inner() noexcept { return *inner_; }

  std::string_view name() const override { return "integrity"; }
  bool has_native_partitions() const override {
    return inner_->has_native_partitions();
  }

  OpResult Put(PartitionId partition, Key key,
               std::span<const std::byte, kPageSize> value,
               SimTime now) override;
  OpResult Get(PartitionId partition, Key key,
               std::span<std::byte, kPageSize> out, SimTime now) override;
  OpResult Remove(PartitionId partition, Key key, SimTime now) override;
  OpResult MultiPut(PartitionId partition, std::span<KvWrite> writes,
                    SimTime now) override;
  OpResult MultiGet(PartitionId partition, std::span<KvRead> reads,
                    SimTime now) override;
  OpResult DropPartition(PartitionId partition, SimTime now) override;
  // Forwards to the inner store, then runs one budgeted scrub slice.
  SimTime PumpMaintenance(SimTime now) override;

  bool Contains(PartitionId partition, Key key) const override {
    return inner_->Contains(partition, key);
  }
  void ForEachKey(
      const std::function<void(PartitionId, Key)>& fn) const override {
    inner_->ForEachKey(fn);
  }
  std::size_t ObjectCount() const override { return inner_->ObjectCount(); }
  std::size_t BytesStored() const override { return inner_->BytesStored(); }
  const StoreStats& stats() const override { return inner_->stats(); }

  const IntegrityStoreStats& integrity_stats() const noexcept {
    return istats_;
  }
  std::size_t EnvelopeCount() const noexcept { return envelopes_.size(); }

 private:
  struct Envelope {
    std::uint32_t crc = 0;        // CRC-32C(payload) folded with (key, version)
    std::uint64_t version = 0;    // bumps on every rewrite of the key
  };

  static std::uint32_t Checksum(Key folded, std::uint64_t version,
                                std::span<const std::byte, kPageSize> payload);
  void RecordEnvelope(PartitionId partition, Key key,
                      std::span<const std::byte, kPageSize> value);
  // Verifies `out` against the stored envelope. Returns OK, DataLoss, or
  // OK-with-unverified accounting when the key has no envelope.
  Status Verify(PartitionId partition, Key key,
                std::span<const std::byte, kPageSize> out, bool scrub);

  std::unique_ptr<KvStore> inner_;
  std::size_t scrub_budget_;
  CorruptionCallback on_corruption_;
  // Ordered by folded key so the scrub cursor is deterministic.
  std::map<Key, Envelope> envelopes_;
  Key scrub_cursor_ = 0;
  bool scrub_cursor_valid_ = false;
  IntegrityStoreStats istats_;
};

}  // namespace fluid::kv
