#include "kvstore/ramcloud.h"

#include <algorithm>
#include <cstring>

namespace fluid::kv {

namespace {
// Per-object metadata on the wire and in the log (key, tablet, version,
// checksum) — approximates RAMCloud's object header.
constexpr std::size_t kObjectOverhead = 30;
constexpr std::size_t kLoggedSize = kPageSize + kObjectOverhead;
}  // namespace

RamcloudStore::RamcloudStore(RamcloudConfig config, net::Transport transport)
    : config_(config),
      transport_(std::move(transport)),
      server_(config.service_lanes),
      rng_(config.seed) {
  OpenNewHead();
  backups_.resize(static_cast<std::size_t>(
      config.backup_count < 0 ? 0 : config.backup_count));
}

void RamcloudStore::MirrorToBackups(BackupRecord record) {
  for (std::size_t i = 0; i < backups_.size(); ++i) {
    if (!backups_[i].alive) continue;
    if (i + 1 == backups_.size()) {
      backups_[i].log.push_back(std::move(record));
      return;
    }
    backups_[i].log.push_back(record);
  }
}

SimDuration RamcloudStore::BackupAckDelay() {
  if (backups_.empty()) return 0;
  // Replicas are written in parallel; the master waits for the slowest.
  SimDuration worst = 0;
  for (const Backup& b : backups_) {
    if (!b.alive) continue;
    worst = std::max(worst, config_.backup_rtt.Sample(rng_));
  }
  return worst;
}

void RamcloudStore::CrashMaster(SimTime now) {
  crashed_ = true;
  crashed_at_ = now;
  segments_.clear();
  free_segments_.clear();
  hash_.clear();
  live_bytes_ = 0;
  allocated_bytes_ = 0;
  object_count_ = 0;
  head_segment_ = 0;
}

SimTime RamcloudStore::PumpMaintenance(SimTime now) {
  if (!crashed_ || !config_.auto_recover) return now;
  // The coordinator's failure detector needs a few missed heartbeats
  // before it declares the master dead and starts recovery.
  if (now < crashed_at_ + config_.failure_detection_delay) return now;
  auto done = Recover(now);
  if (!done.ok()) return now;  // no surviving backup; keep limping
  ++auto_recoveries_;
  return *done;
}

void RamcloudStore::CrashBackup(int index) {
  if (index >= 0 && index < static_cast<int>(backups_.size())) {
    backups_[static_cast<std::size_t>(index)].alive = false;
    backups_[static_cast<std::size_t>(index)].log.clear();
  }
}

std::size_t RamcloudStore::BackupRecordCount() const {
  for (const Backup& b : backups_)
    if (b.alive) return b.log.size();
  return 0;
}

StatusOr<SimTime> RamcloudStore::Recover(SimTime now) {
  if (!crashed_) return now;
  const Backup* source = nullptr;
  for (const Backup& b : backups_)
    if (b.alive) {
      source = &b;
      break;
    }
  if (source == nullptr)
    return Status::Unavailable("no surviving backup to recover from");

  // Rebuild the log: replay records in sequence order (backups store them
  // in append order already). Tombstones delete; later objects supersede.
  crashed_ = false;
  OpenNewHead();
  SimTime t = now;
  for (const BackupRecord& rec : source->log) {
    t += config_.replay_per_record.Sample(rng_);
    if (rec.tombstone) {
      KillExisting(rec.partition, rec.key);
    } else {
      // Replay without re-mirroring (the records are already durable):
      // temporarily detach the backups.
      std::vector<Backup> saved;
      saved.swap(backups_);
      (void)AppendObject(rec.partition, rec.key, rec.data);
      saved.swap(backups_);
    }
  }
  return t;
}

void RamcloudStore::OpenNewHead() {
  if (!free_segments_.empty()) {
    head_segment_ = free_segments_.back();
    free_segments_.pop_back();
    Segment& s = segments_[head_segment_];
    s.entries.clear();
    s.bytes = 0;
    s.dead_bytes = 0;
    s.sealed = false;
    return;
  }
  segments_.emplace_back();
  head_segment_ = static_cast<std::uint32_t>(segments_.size() - 1);
}

void RamcloudStore::KillExisting(PartitionId partition, Key key) {
  auto it = hash_.find(KeyId{partition, key});
  if (it == hash_.end()) return;
  Segment& seg = segments_[it->second.segment];
  Entry& e = seg.entries[it->second.index];
  if (e.live) {
    e.live = false;
    e.data.clear();
    e.data.shrink_to_fit();
    seg.dead_bytes += kLoggedSize;
    live_bytes_ -= kPageSize;
    --object_count_;
  }
  hash_.erase(it);
}

Status RamcloudStore::AppendObject(PartitionId partition, Key key,
                                   std::span<const std::byte> value) {
  if (!backups_.empty()) {
    BackupRecord rec;
    rec.seq = next_seq_++;
    rec.partition = partition;
    rec.key = key;
    rec.data.assign(value.begin(), value.end());
    MirrorToBackups(std::move(rec));
  }
  KillExisting(partition, key);
  // Admission: refuse when even cleaning could not make room.
  if (live_bytes_ + kLoggedSize > config_.memory_cap_bytes)
    return Status::ResourceExhausted("ramcloud log full of live data");

  Segment* head = &segments_[head_segment_];
  if (head->bytes + kLoggedSize > config_.segment_bytes) {
    head->sealed = true;
    OpenNewHead();
    head = &segments_[head_segment_];
  }
  Entry e;
  e.partition = partition;
  e.key = key;
  e.live = true;
  e.data.assign(value.begin(), value.end());
  head->entries.push_back(std::move(e));
  head->bytes += kLoggedSize;
  allocated_bytes_ += kLoggedSize;
  live_bytes_ += kPageSize;
  ++object_count_;
  hash_[KeyId{partition, key}] =
      Loc{head_segment_, static_cast<std::uint32_t>(head->entries.size() - 1)};
  MaybeClean();
  return Status::Ok();
}

void RamcloudStore::MaybeClean() {
  // The cleaner runs on server CPU off the critical path; we reproduce its
  // *space* behaviour (relocating live objects out of the dirtiest sealed
  // segment), which is what lets a bounded log absorb unbounded eviction
  // traffic.
  while (static_cast<double>(allocated_bytes_) >
         config_.cleaner_start_utilization *
             static_cast<double>(config_.memory_cap_bytes)) {
    // Pick the sealed segment with the most dead bytes.
    std::uint32_t victim = ~0u;
    std::size_t best_dead = 0;
    for (std::uint32_t i = 0; i < segments_.size(); ++i) {
      if (i == head_segment_ || !segments_[i].sealed) continue;
      if (segments_[i].dead_bytes > best_dead) {
        best_dead = segments_[i].dead_bytes;
        victim = i;
      }
    }
    if (victim == ~0u || best_dead == 0) return;  // nothing reclaimable

    Segment& seg = segments_[victim];
    // Relocate live entries to the head of the log.
    for (std::uint32_t idx = 0; idx < seg.entries.size(); ++idx) {
      Entry& e = seg.entries[idx];
      if (!e.live) continue;
      Segment* head = &segments_[head_segment_];
      if (head->bytes + kLoggedSize > config_.segment_bytes) {
        head->sealed = true;
        OpenNewHead();
        head = &segments_[head_segment_];
      }
      head->entries.push_back(std::move(e));
      head->bytes += kLoggedSize;
      allocated_bytes_ += kLoggedSize;
      hash_[KeyId{head->entries.back().partition, head->entries.back().key}] =
          Loc{head_segment_,
              static_cast<std::uint32_t>(head->entries.size() - 1)};
      e.live = false;
    }
    allocated_bytes_ -= seg.bytes;
    seg.entries.clear();
    seg.bytes = 0;
    seg.dead_bytes = 0;
    seg.sealed = false;
    free_segments_.push_back(victim);
    ++cleaner_passes_;
  }
}

OpResult RamcloudStore::TimedOp(SimTime now, std::size_t req_bytes,
                                std::size_t resp_bytes, SimDuration service,
                                Status status) {
  OpResult r;
  r.status = std::move(status);
  r.issue_done = now + config_.client_issue.Sample(rng_);
  const SimDuration rtt = transport_.SampleRtt(req_bytes, resp_bytes, rng_);
  const SimDuration half_out = rtt / 2;
  const SimTime arrive = r.issue_done + half_out;
  const auto svc = server_.at(server_.PickWorker(arrive)).Occupy(arrive, service);
  r.complete_at = svc.end + (rtt - half_out);
  return r;
}

OpResult RamcloudStore::Put(PartitionId partition, Key key,
                            std::span<const std::byte, kPageSize> value,
                            SimTime now) {
  ++stats_.puts;
  if (crashed_)
    return OpResult{Status::Unavailable("master crashed"), now, now};
  Status s = AppendObject(partition, key, value);
  OpResult r = TimedOp(now, kLoggedSize, 32, config_.service.Sample(rng_),
                       std::move(s));
  r.complete_at += BackupAckDelay();
  return r;
}

OpResult RamcloudStore::Get(PartitionId partition, Key key,
                            std::span<std::byte, kPageSize> out, SimTime now) {
  ++stats_.gets;
  if (crashed_)
    return OpResult{Status::Unavailable("master crashed"), now, now};
  Status s = Status::Ok();
  auto it = hash_.find(KeyId{partition, key});
  if (it == hash_.end()) {
    s = Status::NotFound("no such object");
  } else {
    const Entry& e =
        segments_[it->second.segment].entries[it->second.index];
    std::memcpy(out.data(), e.data.data(), kPageSize);
  }
  return TimedOp(now, 32, s.ok() ? kLoggedSize : 32,
                 config_.service.Sample(rng_), std::move(s));
}

OpResult RamcloudStore::Remove(PartitionId partition, Key key, SimTime now) {
  ++stats_.removes;
  if (crashed_)
    return OpResult{Status::Unavailable("master crashed"), now, now};
  Status s = Status::Ok();
  if (!Contains(partition, key)) s = Status::NotFound("no such object");
  if (s.ok() && !backups_.empty()) {
    BackupRecord rec;
    rec.seq = next_seq_++;
    rec.partition = partition;
    rec.key = key;
    rec.tombstone = true;
    MirrorToBackups(std::move(rec));
  }
  KillExisting(partition, key);
  return TimedOp(now, 32, 32, config_.service.Sample(rng_), std::move(s));
}

OpResult RamcloudStore::MultiPut(PartitionId partition,
                                 std::span<KvWrite> writes,
                                 SimTime now) {
  if (crashed_) {
    ++stats_.multi_write_batches;
    for (KvWrite& w : writes) w.status = Status::Unavailable("master crashed");
    return OpResult{Status::Unavailable("master crashed"), now, now};
  }
  ++stats_.multi_write_batches;
  stats_.multi_write_objects += writes.size();
  Status s = Status::Ok();
  for (KvWrite& w : writes) {
    w.status = AppendObject(partition, w.key, w.value);
    if (!w.status.ok()) s = w.status;  // report last failure; earlier writes stick
  }
  OpResult r;
  r.status = std::move(s);
  r.issue_done = now + config_.client_issue.Sample(rng_);
  SimDuration service = 0;
  for (std::size_t i = 0; i < writes.size(); ++i)
    service += config_.service.Sample(rng_);
  const SimDuration rtt =
      transport_.SampleBatchRtt(writes.size(), kLoggedSize, rng_);
  const SimDuration half_out = rtt / 2;
  const SimTime arrive = r.issue_done + half_out;
  const auto svc = server_.at(server_.PickWorker(arrive)).Occupy(arrive, service);
  r.complete_at = svc.end + (rtt - half_out) + BackupAckDelay();
  return r;
}

OpResult RamcloudStore::MultiGet(PartitionId partition,
                                 std::span<KvRead> reads, SimTime now) {
  if (crashed_) {
    for (KvRead& r : reads) r.status = Status::Unavailable("master crashed");
    return OpResult{Status::Unavailable("master crashed"), now, now};
  }
  stats_.gets += reads.size();
  std::size_t found = 0;
  for (KvRead& r : reads) {
    auto it = hash_.find(KeyId{partition, r.key});
    if (it == hash_.end()) {
      r.status = Status::NotFound("no such object");
      continue;
    }
    const Entry& e = segments_[it->second.segment].entries[it->second.index];
    std::memcpy(r.out.data(), e.data.data(), kPageSize);
    r.status = Status::Ok();
    ++found;
  }
  OpResult agg;
  agg.status = Status::Ok();
  agg.issue_done = now + config_.client_issue.Sample(rng_);
  SimDuration service = 0;
  for (std::size_t i = 0; i < reads.size(); ++i)
    service += config_.service.Sample(rng_);
  const SimDuration rtt = transport_.SampleBatchRtt(
      std::max<std::size_t>(1, found), kLoggedSize, rng_);
  const SimDuration half_out = rtt / 2;
  const SimTime arrive = agg.issue_done + half_out;
  const auto svc = server_.at(server_.PickWorker(arrive)).Occupy(arrive, service);
  agg.complete_at = svc.end + (rtt - half_out);
  return agg;
}

OpResult RamcloudStore::DropPartition(PartitionId partition, SimTime now) {
  if (crashed_)
    return OpResult{Status::Unavailable("master crashed"), now, now};
  if (!backups_.empty()) {
    // Tombstone every live object of the tablet so recovery won't revive it.
    for (const auto& [kid, loc] : hash_) {
      if (kid.partition != partition) continue;
      BackupRecord rec;
      rec.seq = next_seq_++;
      rec.partition = kid.partition;
      rec.key = kid.key;
      rec.tombstone = true;
      MirrorToBackups(std::move(rec));
    }
  }
  std::vector<KeyId> doomed;
  doomed.reserve(hash_.size());
  for (const auto& [kid, loc] : hash_)
    if (kid.partition == partition) doomed.push_back(kid);
  for (const KeyId& kid : doomed) KillExisting(kid.partition, kid.key);
  MaybeClean();
  // One control RPC; the server-side scan is proportional to tablet size
  // but runs off any fault critical path.
  return TimedOp(now, 32, 32,
                 config_.service.Sample(rng_) * (1 + doomed.size() / 64),
                 Status::Ok());
}

bool RamcloudStore::Contains(PartitionId partition, Key key) const {
  return hash_.contains(KeyId{partition, key});
}

}  // namespace fluid::kv
