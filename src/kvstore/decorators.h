// Key-value store decorators for the provider customizations §III names:
// "Cloud providers can further benefit from the flexibility that comes
//  from handling memory paging in user space to rapidly deploy a variety
//  of customizations ... Some examples are page compression or replication
//  across remote servers."
//
//   * CompressedStore — a remote memory pool that stores pages compressed
//     (LZ + zero-page elision + CRC-32C integrity), charging compression
//     CPU on the client and shrinking both memory use and wire bytes.
//   * ReplicatedStore — mirrors every write across N inner stores and
//     fails reads over to a surviving replica; the monitor keeps working
//     through the loss of any minority of memory servers.
//   * FlakyStore — fault injection: wraps any store and can be taken down
//     (kUnavailable) or made lossy; used by the failure tests and by
//     ReplicatedStore's own test suite.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include <map>
#include <set>

#include "common/compress.h"
#include "common/dist.h"
#include "common/rng.h"
#include "kvstore/health.h"
#include "kvstore/kvstore.h"
#include "net/transport.h"
#include "sim/timeline.h"

namespace fluid::kv {

// --- CompressedStore ---------------------------------------------------------------

struct CompressedStoreConfig {
  std::size_t memory_cap_bytes = 256ULL << 20;  // cap on COMPRESSED bytes
  // Client-side codec cost per 4 KB page.
  LatencyDist compress_cpu = LatencyDist::Normal(3.2, 0.5, 1.5);
  LatencyDist decompress_cpu = LatencyDist::Normal(1.6, 0.3, 0.8);
  LatencyDist server_service = LatencyDist::Normal(0.9, 0.15, 0.3);
  LatencyDist client_issue = LatencyDist::Normal(0.5, 0.1, 0.2);
  bool verify_checksums = true;
  std::uint64_t seed = 52;
};

class CompressedStore final : public KvStore {
 public:
  explicit CompressedStore(CompressedStoreConfig config,
                           net::Transport transport = net::MakeVerbsTransport());

  std::string_view name() const override { return "compressed"; }
  bool has_native_partitions() const override { return true; }

  OpResult Put(PartitionId partition, Key key,
               std::span<const std::byte, kPageSize> value,
               SimTime now) override;
  OpResult Get(PartitionId partition, Key key,
               std::span<std::byte, kPageSize> out, SimTime now) override;
  OpResult Remove(PartitionId partition, Key key, SimTime now) override;
  OpResult MultiPut(PartitionId partition, std::span<KvWrite> writes,
                    SimTime now) override;
  OpResult DropPartition(PartitionId partition, SimTime now) override;

  bool Contains(PartitionId partition, Key key) const override;
  void ForEachKey(
      const std::function<void(PartitionId, Key)>& fn) const override;
  std::size_t ObjectCount() const override { return map_.size(); }
  // Logical bytes stored (pages * 4 KB), as other stores report.
  std::size_t BytesStored() const override { return map_.size() * kPageSize; }
  const StoreStats& stats() const override { return stats_; }

  // --- compression telemetry -----------------------------------------------------
  std::size_t CompressedBytes() const noexcept { return compressed_bytes_; }
  double CompressionRatio() const noexcept {
    return compressed_bytes_ == 0
               ? 0.0
               : static_cast<double>(BytesStored()) /
                     static_cast<double>(compressed_bytes_);
  }
  std::uint64_t ZeroPages() const noexcept { return zero_pages_; }
  std::uint64_t ChecksumFailures() const noexcept { return checksum_failures_; }

 private:
  struct Object {
    std::vector<std::byte> compressed;
    std::uint32_t crc = 0;
  };
  // One round trip carrying `wire_bytes`; data already applied.
  OpResult TimedOp(SimTime now, std::size_t req_bytes, std::size_t resp_bytes,
                   SimDuration extra_cpu, Status status);
  StatusOr<std::size_t> StoreObject(Key folded,
                                    std::span<const std::byte, kPageSize> value);

  CompressedStoreConfig config_;
  net::Transport transport_;
  Timeline server_;
  Rng rng_;
  std::unordered_map<Key, Object> map_;
  std::size_t compressed_bytes_ = 0;
  std::uint64_t zero_pages_ = 0;
  std::uint64_t checksum_failures_ = 0;
  StoreStats stats_;
};

// --- FlakyStore -----------------------------------------------------------------------

// Fault-injection decorator. Not a model of a real system — a test harness
// for everything above it.
class FlakyStore final : public KvStore {
 public:
  explicit FlakyStore(std::unique_ptr<KvStore> inner,
                      std::uint64_t seed = 53)
      : inner_(std::move(inner)), rng_(seed) {}

  void set_down(bool down) noexcept { down_ = down; }
  bool down() const noexcept { return down_; }
  // Scheduled outage window: every op issued before `t` (virtual time)
  // fails with kUnavailable, then the store recovers by itself. Lets
  // chaos scripts stage outage/recovery without hand-toggling set_down.
  void FailUntil(SimTime t) noexcept { down_until_ = t; }
  SimTime down_until() const noexcept { return down_until_; }
  // Probability that any single operation fails with kUnavailable.
  void set_failure_probability(double p) noexcept { fail_p_ = p; }
  KvStore& inner() noexcept { return *inner_; }

  std::string_view name() const override { return "flaky"; }
  bool has_native_partitions() const override {
    return inner_->has_native_partitions();
  }

  OpResult Put(PartitionId partition, Key key,
               std::span<const std::byte, kPageSize> value,
               SimTime now) override {
    if (ShouldFail(now)) return Unavailable(now);
    return inner_->Put(partition, key, value, now);
  }
  OpResult Get(PartitionId partition, Key key,
               std::span<std::byte, kPageSize> out, SimTime now) override {
    if (ShouldFail(now)) return Unavailable(now);
    return inner_->Get(partition, key, out, now);
  }
  OpResult Remove(PartitionId partition, Key key, SimTime now) override {
    if (ShouldFail(now)) return Unavailable(now);
    return inner_->Remove(partition, key, now);
  }
  OpResult MultiPut(PartitionId partition, std::span<KvWrite> writes,
                    SimTime now) override {
    if (ShouldFail(now)) {
      for (KvWrite& w : writes) w.status = Status::Unavailable("injected failure");
      return Unavailable(now);
    }
    return inner_->MultiPut(partition, writes, now);
  }
  OpResult DropPartition(PartitionId partition, SimTime now) override {
    if (ShouldFail(now)) return Unavailable(now);
    return inner_->DropPartition(partition, now);
  }
  SimTime PumpMaintenance(SimTime now) override {
    return inner_->PumpMaintenance(now);
  }

  bool Contains(PartitionId partition, Key key) const override {
    return !down_ && inner_->Contains(partition, key);
  }
  void ForEachKey(
      const std::function<void(PartitionId, Key)>& fn) const override {
    if (!down_) inner_->ForEachKey(fn);
  }
  std::size_t ObjectCount() const override { return inner_->ObjectCount(); }
  std::size_t BytesStored() const override { return inner_->BytesStored(); }
  const StoreStats& stats() const override { return inner_->stats(); }

 private:
  bool ShouldFail(SimTime now) {
    // Order matters for determinism: the probabilistic draw happens on
    // every op that is not already doomed, so adding an outage window
    // does not shift the RNG sequence of healthy runs.
    return down_ || now < down_until_ ||
           (fail_p_ > 0.0 && rng_.NextDouble() < fail_p_);
  }
  static OpResult Unavailable(SimTime now) {
    // A failed RPC still costs a timeout-ish delay before the caller knows.
    return OpResult{Status::Unavailable("injected failure"),
                    now + 50 * kMicrosecond, now + 50 * kMicrosecond};
  }

  std::unique_ptr<KvStore> inner_;
  Rng rng_;
  bool down_ = false;
  SimTime down_until_ = 0;
  double fail_p_ = 0.0;
};

// --- ReplicatedStore --------------------------------------------------------------------

struct ReplicatedStoreStats {
  std::uint64_t failovers = 0;        // reads served by a non-primary
  std::uint64_t degraded_writes = 0;  // writes that missed >=1 replica
  std::uint64_t write_failures = 0;   // writes below the ack quorum
  // Reads that skipped a suspected-dead replica instead of re-paying its
  // timeout (the failover-accounting fix this struct exists to witness).
  std::uint64_t suspect_skips = 0;
  // Reads that skipped a replica known to have missed a write for the key
  // (or a partition drop) while it was down — without this, a recovered
  // replica silently serves stale pages on failover.
  std::uint64_t stale_skips = 0;
  std::uint64_t repairs = 0;          // objects resynced by anti-entropy
  std::uint64_t repair_failures = 0;  // repair ops that failed
  // Integrity plumbing (PR 8): reads that failed envelope verification on
  // a replica and failed over, corruptions reported out-of-band (scrubber),
  // replicas declared permanently dead, and objects re-replicated onto a
  // dead-declared replica to restore replication factor.
  std::uint64_t corruption_failovers = 0;
  std::uint64_t corruptions_reported = 0;
  std::uint64_t dead_declared = 0;
  std::uint64_t rf_restored = 0;
};

// Mirrors writes to every replica; a write succeeds if at least
// `write_quorum` replicas acknowledge. Reads try replicas in order.
//
// Failure handling, per replica:
//   * a HealthTracker circuit breaker (trip on the first kUnavailable,
//     half-open probe after `probe_interval`) — reads skip a tripped
//     replica instead of re-paying the dead replica's full timeout; any
//     successful op (read probe or mirrored write) closes the breaker.
//   * a dirty set of keys/partitions whose mirrored writes the replica
//     missed while down. Reads never route to a replica dirty for the
//     key, and a background anti-entropy pass (`RepairPass`, driven by
//     `PumpMaintenance`) resyncs dirty objects from a clean replica, so
//     a recovered replica converges instead of serving stale data.
class ReplicatedStore final : public KvStore {
 public:
  ReplicatedStore(std::vector<std::unique_ptr<KvStore>> replicas,
                  int write_quorum = 1,
                  SimDuration probe_interval = 2 * kMillisecond);

  std::string_view name() const override { return "replicated"; }
  bool has_native_partitions() const override;

  OpResult Put(PartitionId partition, Key key,
               std::span<const std::byte, kPageSize> value,
               SimTime now) override;
  OpResult Get(PartitionId partition, Key key,
               std::span<std::byte, kPageSize> out, SimTime now) override;
  OpResult Remove(PartitionId partition, Key key, SimTime now) override;
  OpResult MultiPut(PartitionId partition, std::span<KvWrite> writes,
                    SimTime now) override;
  OpResult DropPartition(PartitionId partition, SimTime now) override;
  // Forwards to every replica, then runs one bounded RepairPass.
  SimTime PumpMaintenance(SimTime now) override;

  bool Contains(PartitionId partition, Key key) const override;
  std::size_t ObjectCount() const override;
  std::size_t BytesStored() const override;
  const StoreStats& stats() const override { return agg_stats_; }

  KvStore& replica(std::size_t i) noexcept { return *replicas_[i]; }
  std::size_t replica_count() const noexcept { return replicas_.size(); }
  bool replica_suspect(std::size_t i) const noexcept {
    return health_[i].tripped();
  }
  const HealthTracker& replica_health(std::size_t i) const noexcept {
    return health_[i];
  }
  const ReplicatedStoreStats& replication_stats() const noexcept {
    return rstats_;
  }

  // Anti-entropy: resync up to `budget` dirty objects per replica from a
  // clean peer. Returns the virtual time when the pass finishes.
  SimTime RepairPass(SimTime now, std::size_t budget = 16);
  // Outstanding divergence (missed writes + missed partition drops).
  std::size_t DirtyObjectCount() const;
  bool ReplicaDirty(std::size_t i, PartitionId partition, Key key) const;

  // Out-of-band corruption report (the per-replica IntegrityStore scrubber
  // calls this through the harness): dirty the key on that replica so
  // reads skip its rotten copy and anti-entropy rewrites it.
  void ReportCorruption(std::size_t replica, PartitionId partition, Key key);

  // Permanent-death detection: when a replica has been failing for longer
  // than `d`, declare it dead and mark every key the cluster holds as
  // missing from it, so anti-entropy re-replicates the full set once the
  // replacement (same slot, recovered or rebuilt) starts answering.
  // 0 (the default) disables detection — legacy behavior.
  void set_dead_after(SimDuration d) noexcept { dead_after_ = d; }
  bool replica_dead_marked(std::size_t i) const noexcept {
    return dead_marked_[i];
  }

 private:
  void NoteResult(std::size_t i, const OpResult& r);
  void NoteWrite(std::size_t i, PartitionId partition, Key key, bool ok);
  void DeclareDead(std::size_t i);

  std::vector<std::unique_ptr<KvStore>> replicas_;
  int write_quorum_;
  SimDuration probe_interval_;
  // Per-replica failure-detector state (circuit breaker).
  std::vector<HealthTracker> health_;
  // Per-replica divergence: keys whose mirrored write/remove failed, and
  // partitions whose drop failed. Ordered containers so RepairPass walks
  // them deterministically.
  std::vector<std::map<PartitionId, std::set<Key>>> dirty_;
  std::vector<std::set<PartitionId>> dirty_partitions_;
  // Permanent-death bookkeeping: when each replica's current failure run
  // started (0 = healthy), and whether it has been declared dead and is
  // awaiting full re-replication.
  SimDuration dead_after_ = 0;
  std::vector<SimTime> down_since_;
  std::vector<bool> dead_marked_;
  ReplicatedStoreStats rstats_;
  mutable StoreStats agg_stats_;
};

}  // namespace fluid::kv
