#include "vm/fluid_vm.h"

namespace fluid::vm {

paging::TouchResult FluidVm::Touch(VirtAddr addr, bool is_write, SimTime now) {
  paging::TouchResult out;
  const fm::MonitorCostModel& costs = costs_;
  mem::AccessResult a = region_.Access(addr, is_write);
  switch (a.kind) {
    case mem::AccessKind::kHit:
      // A resident hit never reaches the monitor's fault path, so report
      // it: prefetched pages resolve to hits and tier heat refreshes.
      // NotePageTouch is pure bookkeeping (early-out when neither feature
      // is on), so legacy stacks replay unchanged.
      monitor_->NotePageTouch(region_id_, addr);
      out.status = Status::Ok();
      out.done = now + costs.hit.Sample(rng_);
      return out;
    case mem::AccessKind::kMinorZero:
      // Zero-page write upgrade, resolved in-kernel without the monitor.
      out.status = Status::Ok();
      out.done = now + costs.minor_zero_fault.Sample(rng_);
      out.fault = true;
      return out;
    case mem::AccessKind::kUffdFault: {
      out.fault = true;
      fm::FaultOutcome f = monitor_->HandleFault(region_id_, addr, now);
      if (f.deadlocked) {
        out.deadlocked = true;
        out.status = f.status;
        out.done = f.wake_at;
        return out;
      }
      if (!f.status.ok()) {
        out.status = f.status;
        out.done = f.wake_at;
        return out;
      }
      out.major_fault = !f.first_access;
      // The vCPU retries the access after wake; it now hits the installed
      // page (or takes the in-kernel zero-page upgrade for writes).
      SimTime t = f.wake_at;
      mem::AccessResult retry = region_.Access(addr, is_write);
      switch (retry.kind) {
        case mem::AccessKind::kHit:
          t += costs.hit.Sample(rng_);
          break;
        case mem::AccessKind::kMinorZero:
          t += costs.minor_zero_fault.Sample(rng_);
          break;
        case mem::AccessKind::kUffdFault:
          // Should not happen: the monitor just installed the page.
          out.status = Status::Internal("fault after resolution");
          out.done = t;
          return out;
      }
      out.status = Status::Ok();
      out.done = t;
      return out;
    }
  }
  out.status = Status::Internal("unreachable");
  out.done = now;
  return out;
}

SimTime FluidVm::BootOs(SimTime now) {
  // Touch every OS page once. Kernel and unevictable pages are written
  // (they hold live data structures); file pages are read (text segments);
  // OS anonymous pages are written (daemon heaps).
  auto touch_range = [&](VirtAddr base, std::size_t pages, bool write) {
    for (std::size_t i = 0; i < pages; ++i) {
      paging::TouchResult r = Touch(base + i * kPageSize, write, now);
      now = r.done;
    }
  };
  touch_range(layout_.kernel_base, census_.kernel_pages, /*write=*/true);
  touch_range(layout_.unevictable_base, census_.unevictable_pages, true);
  touch_range(layout_.os_anon_base, census_.anon_pages, true);
  touch_range(layout_.os_file_base, census_.file_pages, /*write=*/false);
  return now;
}

SimTime FluidVm::OsJitter(SimTime now, double hot_fraction) {
  // Daemons and timers re-touch a deterministic "hot" slice of the OS
  // footprint: the first hot_fraction of each range (boot order makes the
  // early pages the long-lived daemons).
  auto touch_head = [&](VirtAddr base, std::size_t pages, bool write) {
    const auto hot = static_cast<std::size_t>(
        hot_fraction * static_cast<double>(pages));
    for (std::size_t i = 0; i < hot; ++i) {
      paging::TouchResult r = Touch(base + i * kPageSize, write, now);
      now = r.done;
    }
  };
  touch_head(layout_.kernel_base, census_.kernel_pages, true);
  touch_head(layout_.unevictable_base, census_.unevictable_pages, true);
  touch_head(layout_.os_anon_base, census_.anon_pages, true);
  touch_head(layout_.os_file_base, census_.file_pages, false);
  return now;
}

}  // namespace fluid::vm
