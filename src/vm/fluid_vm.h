// FluidVm: an unmodified VM whose entire memory is registered with the
// FluidMem monitor (the right-hand VM of Fig. 1).
//
// The VM's guest-physical memory is one userfaultfd region inside the QEMU
// process; every class of guest page — kernel, file-backed, anonymous,
// mlocked — faults through the monitor identically, which is what makes the
// disaggregation *full*. The local DRAM footprint is whatever the monitor's
// LRU allows, independent of the VM's configured memory size, and memory
// hotplug simply extends the registered region.
#pragma once

#include <string_view>

#include "common/rng.h"
#include "fluidmem/monitor.h"
#include "mem/frame_pool.h"
#include "mem/uffd.h"
#include "paging/paged_memory.h"
#include "vm/census.h"

namespace fluid::vm {

class FluidVm final : public paging::PagedMemory {
 public:
  // `pool` is the hypervisor's frame pool (shared with the monitor's
  // zero-copy buffers); `monitor` may serve several FluidVms.
  FluidVm(const OsCensus& census, std::size_t app_pages,
          fm::Monitor& monitor, mem::FramePool& pool, ProcessId pid,
          PartitionId partition, std::uint64_t seed = 21)
      : census_(census),
        layout_(MakeLayout(census, app_pages)),
        region_(pid, layout_.kernel_base, layout_.total_pages, pool),
        monitor_(&monitor),
        rng_(seed) {
    region_id_ = monitor_->RegisterRegion(region_, partition);
  }

  // --- PagedMemory -------------------------------------------------------------

  paging::TouchResult Touch(VirtAddr addr, bool is_write,
                            SimTime now) override;
  Status ReadBytes(VirtAddr addr, std::span<std::byte> out) override {
    return region_.ReadBytes(addr, out);
  }
  Status WriteBytes(VirtAddr addr, std::span<const std::byte> in) override {
    return region_.WriteBytes(addr, in);
  }
  std::string_view mechanism() const override { return "fluidmem"; }
  std::size_t ResidentPages() const override { return region_.PresentPages(); }

  // --- VM lifecycle --------------------------------------------------------------

  // Boot: the OS touches its whole footprint once (kernel init, daemons,
  // page-cache fill). Returns the boot completion time.
  SimTime BootOs(SimTime now);

  // Background OS activity: re-touch a hot fraction of the OS working set.
  SimTime OsJitter(SimTime now, double hot_fraction = 0.05);

  // Memory hotplug (paper §III / Fig. 1 left VM): grow the VM.
  void HotplugAdd(std::size_t extra_pages) {
    region_.Expand(extra_pages);
    layout_.app_pages += extra_pages;
    layout_.total_pages += extra_pages;
  }

  // Provider-side footprint control: resize the monitor's LRU.
  SimTime SetLocalFootprint(std::size_t pages, SimTime now) {
    return monitor_->SetLruCapacity(pages, now);
  }

  SimTime Shutdown(SimTime now) {
    (void)monitor_->UnregisterRegion(region_id_, now);
    return now;
  }

  // Workloads that model their own per-access CPU (Graph500 charges
  // cpu_ns_per_edge) override the resident-access cost: a cached in-guest
  // access is nanoseconds, unlike pmbench's measured ~0.2 us per request.
  void SetHitCost(LatencyDist d) noexcept {
    costs_.hit = d;
    costs_.minor_zero_fault = d;  // scaled the same way
  }

  const VmLayout& layout() const noexcept { return layout_; }
  const OsCensus& census() const noexcept { return census_; }
  fm::Monitor& monitor() noexcept { return *monitor_; }
  mem::UffdRegion& region() noexcept { return region_; }
  fm::RegionId region_id() const noexcept { return region_id_; }

 private:
  OsCensus census_;
  VmLayout layout_;
  mem::UffdRegion region_;
  fm::Monitor* monitor_;
  fm::RegionId region_id_ = 0;
  Rng rng_;
  // Guest-side access costs (hit, in-kernel zero-page upgrade).
  fm::MonitorCostModel costs_;
};

}  // namespace fluid::vm
