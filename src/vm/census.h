// Guest OS page census and address-space layout.
//
// Table III of the paper measures a freshly-booted VM at 81042 resident
// pages (316.57 MB). The census splits that footprint into the page classes
// whose *reclaim* treatment differs (§II): kernel pages and unevictable
// pages can never be swapped; file-backed pages (executables, page cache)
// write back to the guest's own disk, not to the swap device; only
// anonymous pages reach remote memory through swap. FluidMem, by contrast,
// treats all of them as plain uffd pages.
//
// The exact split is not published; we use a breakdown representative of a
// minimal CentOS 7 guest (documented substitution, DESIGN.md §1):
// 12 % kernel, 52 % file-backed (page cache + binaries), 30 % anonymous
// (daemon heaps), 6 % unevictable — consistent with Table III's balloon
// experiment, where the balloon reclaims down to 64.75 MB, so the pinned
// floor must sit below 20480 pages. A small
// "hot" fraction of the OS footprint is re-touched periodically by
// background daemons; the rest goes cold after boot — that cold majority is
// precisely what FluidMem pushes to remote memory and swap cannot (Fig. 4b).
#pragma once

#include <cstddef>

#include "common/types.h"

namespace fluid::vm {

struct OsCensus {
  std::size_t kernel_pages = 0;
  std::size_t file_pages = 0;
  std::size_t anon_pages = 0;
  std::size_t unevictable_pages = 0;

  constexpr std::size_t TotalPages() const noexcept {
    return kernel_pages + file_pages + anon_pages + unevictable_pages;
  }
  constexpr std::size_t PinnedPages() const noexcept {
    return kernel_pages + unevictable_pages;
  }
};

// The paper's boot footprint, scaled down by `divisor` (see DESIGN.md §4 on
// scale substitution). divisor=1 reproduces Table III's 81042 pages.
constexpr OsCensus MakeBootCensus(std::size_t divisor = 1) noexcept {
  const std::size_t total = 81042 / (divisor == 0 ? 1 : divisor);
  OsCensus c;
  c.kernel_pages = total * 12 / 100;
  c.file_pages = total * 52 / 100;
  c.anon_pages = total * 30 / 100;
  c.unevictable_pages = total - c.kernel_pages - c.file_pages - c.anon_pages;
  return c;
}

// Address-space layout of a VM: OS ranges first, application heap after.
// All addresses are guest-virtual as seen by the faulting QEMU process.
struct VmLayout {
  VirtAddr kernel_base = 0;
  VirtAddr unevictable_base = 0;
  VirtAddr os_anon_base = 0;
  VirtAddr os_file_base = 0;
  VirtAddr app_base = 0;
  std::size_t app_pages = 0;
  std::size_t total_pages = 0;

  VirtAddr AppAddr(std::size_t page_index) const noexcept {
    return app_base + page_index * kPageSize;
  }
};

constexpr VmLayout MakeLayout(const OsCensus& census, std::size_t app_pages,
                              VirtAddr base = 0x7f0000000000ULL) noexcept {
  VmLayout l;
  l.kernel_base = base;
  l.unevictable_base = l.kernel_base + census.kernel_pages * kPageSize;
  l.os_anon_base = l.unevictable_base + census.unevictable_pages * kPageSize;
  l.os_file_base = l.os_anon_base + census.anon_pages * kPageSize;
  l.app_base = l.os_file_base + census.file_pages * kPageSize;
  l.app_pages = app_pages;
  l.total_pages = census.TotalPages() + app_pages;
  return l;
}

}  // namespace fluid::vm
