// HybridVm: the LEFT-hand VM of the paper's Figure 1 — "a normal VM can
// add extra FluidMem memory via memory hotplug".
//
// The VM boots with ordinary hypervisor DRAM (its base memory is managed by
// the host kernel like any process memory: always resident, never passes
// through the monitor) and later hot-adds a DIMM whose backing is a
// FluidMem-registered region. The guest kernel sees one flat physical
// address space; only accesses beyond the base trap to the monitor. This is
// the incremental-adoption deployment: providers can bolt remote memory
// onto running VMs without re-provisioning them, at the cost of the base
// memory being pinned (only the hotplugged part is disaggregated — partial
// by construction, which is why the right-hand VM exists).
#pragma once

#include <string_view>

#include "common/rng.h"
#include "fluidmem/monitor.h"
#include "mem/frame_pool.h"
#include "mem/uffd.h"
#include "paging/paged_memory.h"
#include "vm/census.h"

namespace fluid::vm {

class HybridVm final : public paging::PagedMemory {
 public:
  // The VM boots with `base_pages` of plain DRAM (the census must fit in
  // it — a normal VM boots from local memory). Hot-added memory starts at
  // zero pages; call HotplugAdd().
  HybridVm(const OsCensus& census, std::size_t base_pages,
           fm::Monitor& monitor, mem::FramePool& pool, ProcessId pid,
           PartitionId partition, std::uint64_t seed = 23)
      : census_(census),
        layout_(MakeLayout(census, 0)),
        base_pages_(base_pages),
        base_resident_(base_pages, false),
        // The FluidMem region covers the hotplug area only, which begins
        // right after the base memory.
        region_(pid, layout_.kernel_base + base_pages * kPageSize,
                /*page_count=*/0, pool),
        monitor_(&monitor),
        rng_(seed) {
    region_id_ = monitor_->RegisterRegion(region_, partition);
  }

  // --- PagedMemory -------------------------------------------------------------

  paging::TouchResult Touch(VirtAddr addr, bool is_write,
                            SimTime now) override {
    if (InBase(addr)) {
      // Plain kernel-managed DRAM: first touch is an ordinary minor fault,
      // later accesses are hits; the monitor never sees it.
      paging::TouchResult r;
      const std::size_t idx = BaseIndex(addr);
      if (!base_resident_[idx]) {
        base_resident_[idx] = true;
        ++base_resident_count_;
        r.fault = true;
        r.done = now + costs_.minor_zero_fault.Sample(rng_);
      } else {
        r.done = now + costs_.hit.Sample(rng_);
      }
      r.status = Status::Ok();
      return r;
    }
    if (!region_.Contains(PageAlignDown(addr))) {
      return paging::TouchResult{
          Status::InvalidArgument("beyond hotplugged memory"), now};
    }
    return FluidTouch(addr, is_write, now);
  }

  Status ReadBytes(VirtAddr addr, std::span<std::byte> out) override {
    if (InBase(addr)) {
      // Base memory contents are modelled as zero unless shadowed; workloads
      // that need data integrity run in the hotplug range. Keep semantics
      // simple: reads return zeroes.
      std::fill(out.begin(), out.end(), std::byte{0});
      return Status::Ok();
    }
    return region_.ReadBytes(addr, out);
  }
  Status WriteBytes(VirtAddr addr, std::span<const std::byte> in) override {
    if (InBase(addr))
      return Status::FailedPrecondition(
          "base-memory data plane not modelled; use the hotplug range");
    return region_.WriteBytes(addr, in);
  }

  std::string_view mechanism() const override { return "fluidmem-hybrid"; }
  std::size_t ResidentPages() const override {
    return base_resident_count_ + region_.PresentPages();
  }

  // --- lifecycle -----------------------------------------------------------------

  SimTime BootOs(SimTime now) {
    // The whole OS census boots inside base memory (ordinary minor faults).
    for (std::size_t i = 0; i < census_.TotalPages() && i < base_pages_; ++i)
      now = Touch(layout_.kernel_base + i * kPageSize, true, now).done;
    return now;
  }

  // Hot-add `pages` of FluidMem-backed memory (Fig. 1 left VM).
  void HotplugAdd(std::size_t pages) {
    region_.Expand(pages);
    hotplug_pages_ += pages;
  }

  std::size_t base_pages() const noexcept { return base_pages_; }
  std::size_t hotplug_pages() const noexcept { return hotplug_pages_; }
  VirtAddr hotplug_base() const noexcept { return region_.base(); }
  fm::Monitor& monitor() noexcept { return *monitor_; }
  fm::RegionId region_id() const noexcept { return region_id_; }
  const VmLayout& layout() const noexcept { return layout_; }

 private:
  bool InBase(VirtAddr addr) const noexcept {
    return addr >= layout_.kernel_base &&
           addr < layout_.kernel_base + base_pages_ * kPageSize;
  }
  std::size_t BaseIndex(VirtAddr addr) const noexcept {
    return (PageAlignDown(addr) - layout_.kernel_base) / kPageSize;
  }

  paging::TouchResult FluidTouch(VirtAddr addr, bool is_write, SimTime now) {
    paging::TouchResult out;
    mem::AccessResult a = region_.Access(addr, is_write);
    switch (a.kind) {
      case mem::AccessKind::kHit:
        out.status = Status::Ok();
        out.done = now + costs_.hit.Sample(rng_);
        return out;
      case mem::AccessKind::kMinorZero:
        out.status = Status::Ok();
        out.done = now + costs_.minor_zero_fault.Sample(rng_);
        out.fault = true;
        return out;
      case mem::AccessKind::kUffdFault: {
        out.fault = true;
        fm::FaultOutcome f = monitor_->HandleFault(region_id_, addr, now);
        out.deadlocked = f.deadlocked;
        if (!f.status.ok()) {
          out.status = f.status;
          out.done = f.wake_at;
          return out;
        }
        out.major_fault = !f.first_access;
        SimTime t = f.wake_at;
        mem::AccessResult retry = region_.Access(addr, is_write);
        t += (retry.kind == mem::AccessKind::kMinorZero
                  ? costs_.minor_zero_fault.Sample(rng_)
                  : costs_.hit.Sample(rng_));
        out.status = Status::Ok();
        out.done = t;
        return out;
      }
    }
    out.status = Status::Internal("unreachable");
    out.done = now;
    return out;
  }

  OsCensus census_;
  VmLayout layout_;
  std::size_t base_pages_;
  std::vector<bool> base_resident_;
  std::size_t base_resident_count_ = 0;
  std::size_t hotplug_pages_ = 0;
  mem::UffdRegion region_;
  fm::Monitor* monitor_;
  fm::RegionId region_id_ = 0;
  Rng rng_;
  fm::MonitorCostModel costs_;
};

}  // namespace fluid::vm
