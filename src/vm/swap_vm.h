// SwapVm: the comparison VM — fixed local DRAM plus remote paging through
// the Linux swap interface (Infiniswap-style, §II and §VI-A).
//
// The VM's guest kernel manages residency itself (GuestKernelMm): only
// anonymous pages can reach the swap block device; file-backed pages write
// back to the guest's disk; kernel/unevictable pages are stuck in DRAM.
// A balloon driver is available for provider-initiated shrinking, with the
// cooperation requirement and the 64 MB floor Table III measures.
#pragma once

#include <string_view>

#include "blockdev/block_device.h"
#include "paging/paged_memory.h"
#include "swap/guest_mm.h"
#include "vm/census.h"

namespace fluid::vm {

class SwapVm final : public paging::PagedMemory {
 public:
  // `dram_frames`: the VM's local memory allotment. `swap_device` is the
  // medium under comparison; `fs_device` is the guest's own disk (always
  // SSD in the paper's testbed).
  SwapVm(const OsCensus& census, std::size_t app_pages,
         std::size_t dram_frames, blk::BlockDevice& swap_device,
         blk::BlockDevice& fs_device,
         swap::SwapCostModel costs = {}, std::uint64_t seed = 22)
      : census_(census), layout_(MakeLayout(census, app_pages)),
        mm_(swap::GuestMmConfig{.dram_frames = dram_frames,
                                .costs = costs,
                                .seed = seed},
            swap_device, fs_device) {
    mm_.DefineRange(layout_.kernel_base, census.kernel_pages,
                    swap::PageClass::kKernel);
    mm_.DefineRange(layout_.unevictable_base, census.unevictable_pages,
                    swap::PageClass::kUnevictable);
    mm_.DefineRange(layout_.os_anon_base, census.anon_pages,
                    swap::PageClass::kAnon);
    mm_.DefineRange(layout_.os_file_base, census.file_pages,
                    swap::PageClass::kFile);
    mm_.DefineRange(layout_.app_base, app_pages, swap::PageClass::kAnon);
  }

  // --- PagedMemory -------------------------------------------------------------

  paging::TouchResult Touch(VirtAddr addr, bool is_write,
                            SimTime now) override {
    swap::GuestAccessResult r = mm_.Access(addr, is_write, now);
    paging::TouchResult out;
    out.status = r.status;
    out.done = r.done;
    out.fault = r.minor_fault || r.major_fault;
    out.major_fault = r.major_fault;
    return out;
  }
  Status ReadBytes(VirtAddr addr, std::span<std::byte> out) override {
    return mm_.ReadBytes(addr, out);
  }
  Status WriteBytes(VirtAddr addr, std::span<const std::byte> in) override {
    return mm_.WriteBytes(addr, in);
  }
  std::string_view mechanism() const override { return "swap"; }
  std::size_t ResidentPages() const override { return mm_.ResidentFrames(); }

  // --- VM lifecycle --------------------------------------------------------------

  SimTime BootOs(SimTime now) {
    now = mm_.TouchRange(layout_.kernel_base, census_.kernel_pages, now);
    now = mm_.TouchRange(layout_.unevictable_base, census_.unevictable_pages,
                         now);
    now = mm_.TouchRange(layout_.os_anon_base, census_.anon_pages, now);
    now = mm_.TouchRange(layout_.os_file_base, census_.file_pages, now);
    return now;
  }

  SimTime OsJitter(SimTime now, double hot_fraction = 0.05) {
    auto touch_head = [&](VirtAddr base, std::size_t pages, bool write) {
      const auto hot = static_cast<std::size_t>(
          hot_fraction * static_cast<double>(pages));
      for (std::size_t i = 0; i < hot; ++i) {
        auto r = mm_.Access(base + i * kPageSize, write, now);
        now = r.done;
      }
    };
    touch_head(layout_.kernel_base, census_.kernel_pages, true);
    touch_head(layout_.unevictable_base, census_.unevictable_pages, true);
    touch_head(layout_.os_anon_base, census_.anon_pages, true);
    touch_head(layout_.os_file_base, census_.file_pages, false);
    return now;
  }

  // Balloon inflate: provider asks the guest driver to return pages.
  // Requires guest cooperation (that is the point of Table III's row 2),
  // and the driver itself caps how far it can deflate the guest: the paper
  // measured a 20480-page (64.75 MB) floor. `driver_floor_pages` scales
  // with the census divisor in scaled testbeds.
  SimTime BalloonInflate(std::size_t target_resident_pages, SimTime now,
                         std::size_t driver_floor_pages = 20480) {
    return mm_.BalloonReclaim(
        std::max(target_resident_pages, driver_floor_pages), now);
  }

  // See FluidVm::SetHitCost.
  void SetHitCost(LatencyDist d) noexcept { mm_.SetHitCost(d); }

  const VmLayout& layout() const noexcept { return layout_; }
  const OsCensus& census() const noexcept { return census_; }
  swap::GuestKernelMm& mm() noexcept { return mm_; }

 private:
  OsCensus census_;
  VmLayout layout_;
  swap::GuestKernelMm mm_;
};

}  // namespace fluid::vm
