#include "common/compress.h"

#include <algorithm>
#include <array>
#include <cstring>

namespace fluid {

namespace {

constexpr std::byte kTagStored{0};
constexpr std::byte kTagLz{1};
constexpr std::byte kTagZero{2};

// Token layout (after the tag byte):
//   0x00..0x3F  literal run of (token + 1) bytes (1..64); bytes follow
//   0x80..0xFF  match: length = (token & 0x7F) + 4 (4..131), followed by a
//               2-byte little-endian back-distance (1..65535)
//   0x40..0x7F  reserved (decode error)
constexpr int kMinMatch = 4;
constexpr int kMaxMatch = 131;
constexpr std::size_t kMaxLiteralRun = 64;

std::uint32_t Hash4(const std::byte* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 20;  // 12-bit hash
}

// Generated at first use; CRC-32C polynomial (Castagnoli, 0x1EDC6F41).
const std::array<std::uint32_t, 256>& Crc32cTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int k = 0; k < 8; ++k)
        crc = (crc >> 1) ^ (0x82F63B78u & (0u - (crc & 1u)));
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t Crc32c(std::span<const std::byte> data) noexcept {
  const auto& table = Crc32cTable();
  std::uint32_t crc = ~0u;
  for (std::byte b : data)
    crc = (crc >> 8) ^
          table[(crc ^ static_cast<std::uint32_t>(b)) & 0xffu];
  return ~crc;
}

bool IsAllZero(std::span<const std::byte> data) noexcept {
  for (std::byte b : data)
    if (b != std::byte{0}) return false;
  return true;
}

std::size_t Compress(std::span<const std::byte> in,
                     std::vector<std::byte>& out) {
  out.clear();
  if (IsAllZero(in)) {
    out.push_back(kTagZero);
    return out.size();
  }

  out.push_back(kTagLz);
  std::array<std::int32_t, 4096> head;
  head.fill(-1);

  const std::byte* base = in.data();
  const std::size_t n = in.size();
  std::size_t i = 0;
  std::size_t literal_start = 0;

  auto flush_literals = [&](std::size_t end) {
    std::size_t pos = literal_start;
    while (pos < end) {
      const std::size_t run = std::min(kMaxLiteralRun, end - pos);
      out.push_back(static_cast<std::byte>(run - 1));
      out.insert(out.end(), base + pos, base + pos + run);
      pos += run;
    }
  };

  while (i + kMinMatch <= n) {
    const std::uint32_t h = Hash4(base + i);
    const std::int32_t cand = head[h];
    head[h] = static_cast<std::int32_t>(i);

    std::size_t match_len = 0;
    if (cand >= 0) {
      const std::size_t dist = i - static_cast<std::size_t>(cand);
      if (dist >= 1 && dist <= 0xffff &&
          std::memcmp(base + cand, base + i, kMinMatch) == 0) {
        match_len = kMinMatch;
        const std::size_t limit =
            std::min<std::size_t>(kMaxMatch, n - i);
        while (match_len < limit &&
               base[static_cast<std::size_t>(cand) + match_len] ==
                   base[i + match_len])
          ++match_len;
      }
    }

    if (match_len >= kMinMatch) {
      flush_literals(i);
      const std::size_t dist = i - static_cast<std::size_t>(cand);
      out.push_back(static_cast<std::byte>(
          0x80u | static_cast<std::uint32_t>(match_len - kMinMatch)));
      out.push_back(static_cast<std::byte>(dist & 0xff));
      out.push_back(static_cast<std::byte>((dist >> 8) & 0xff));
      // Insert hash entries inside the match so later data can find it.
      const std::size_t step = match_len > 16 ? 4 : 1;
      for (std::size_t k = 1; k < match_len && i + k + 4 <= n; k += step)
        head[Hash4(base + i + k)] = static_cast<std::int32_t>(i + k);
      i += match_len;
      literal_start = i;
    } else {
      ++i;
    }
  }
  flush_literals(n);

  if (out.size() >= n + 1) {
    // Incompressible: store raw.
    out.clear();
    out.push_back(kTagStored);
    out.insert(out.end(), in.begin(), in.end());
  }
  return out.size();
}

Status Decompress(std::span<const std::byte> in, std::span<std::byte> out) {
  if (in.empty()) return Status::InvalidArgument("empty compressed data");
  const std::byte tag = in[0];
  const std::byte* src = in.data() + 1;
  const std::size_t nsrc = in.size() - 1;

  if (tag == kTagZero) {
    std::memset(out.data(), 0, out.size());
    return Status::Ok();
  }
  if (tag == kTagStored) {
    if (nsrc != out.size())
      return Status::InvalidArgument("stored size mismatch");
    std::memcpy(out.data(), src, nsrc);
    return Status::Ok();
  }
  if (tag != kTagLz) return Status::InvalidArgument("unknown format tag");

  std::size_t si = 0;
  std::size_t di = 0;
  while (si < nsrc) {
    const auto token = static_cast<std::uint32_t>(src[si++]);
    if (token < 0x40u) {
      const std::size_t run = token + 1;
      if (si + run > nsrc || di + run > out.size())
        return Status::InvalidArgument("corrupt literal run");
      std::memcpy(out.data() + di, src + si, run);
      si += run;
      di += run;
    } else if (token >= 0x80u) {
      if (si + 2 > nsrc) return Status::InvalidArgument("truncated match");
      const std::size_t len = (token & 0x7fu) + kMinMatch;
      const std::size_t dist = static_cast<std::size_t>(src[si]) |
                               (static_cast<std::size_t>(src[si + 1]) << 8);
      si += 2;
      if (dist == 0 || dist > di || di + len > out.size())
        return Status::InvalidArgument("corrupt match");
      // Byte-by-byte: overlapping matches (RLE) are valid and common.
      for (std::size_t k = 0; k < len; ++k, ++di)
        out[di] = out[di - dist];
    } else {
      return Status::InvalidArgument("reserved token");
    }
  }
  if (di != out.size())
    return Status::InvalidArgument("decompressed size mismatch");
  return Status::Ok();
}

}  // namespace fluid
