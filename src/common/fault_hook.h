// Fault-injection hook points shared by every layer of the stack.
//
// Disaggregated-memory correctness lives or dies on how the monitor reacts
// when the remote tier misbehaves (paper §III replication, §IV partition
// recovery). Each injectable layer — net transports, block devices, the
// coordination table, key-value stores — consults an optional FaultHook at
// its operation sites; the chaos harness (src/chaos) installs one seeded
// injector behind every site so an entire run is replayable from a
// (seed, FaultPlan) pair. With no hook installed the fast paths are a null
// pointer check, so production-style benches are unperturbed.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "common/types.h"

namespace fluid {

// Where in the stack an operation is about to run. One enumerator per
// injectable operation class, across every layer.
enum class FaultSite : std::uint8_t {
  kNetRtt = 0,          // one transport round trip (latency spikes only)
  kBlockRead,           // block device read command
  kBlockWrite,          // block device write command
  kCoordOp,             // a client op against the replicated table
  kCoordAck,            // one replica's commit acknowledgement
  kStoreGet,
  kStorePut,
  kStoreMultiPut,
  kStoreRemove,
  kStoreDropPartition,
  // Per-object failure inside a multi-write batch: consulted once per
  // element AFTER the whole-batch kStoreMultiPut consultation, so a plan
  // can fail individual keys (exercising subset retry) without taking down
  // the batch as a transport op. Appended last: per-site call counters are
  // independent, so legacy (seed, plan) pairs replay unchanged.
  kStoreMultiPutKey,
};
inline constexpr std::size_t kFaultSiteCount = 11;

constexpr std::string_view FaultSiteName(FaultSite s) noexcept {
  switch (s) {
    case FaultSite::kNetRtt: return "net.rtt";
    case FaultSite::kBlockRead: return "blk.read";
    case FaultSite::kBlockWrite: return "blk.write";
    case FaultSite::kCoordOp: return "coord.op";
    case FaultSite::kCoordAck: return "coord.ack";
    case FaultSite::kStoreGet: return "store.get";
    case FaultSite::kStorePut: return "store.put";
    case FaultSite::kStoreMultiPut: return "store.multiput";
    case FaultSite::kStoreRemove: return "store.remove";
    case FaultSite::kStoreDropPartition: return "store.drop";
    case FaultSite::kStoreMultiPutKey: return "store.multiput.key";
  }
  return "?";
}

struct FaultDecision {
  bool fail = false;             // operation fails (kUnavailable / dropped ack)
  SimDuration extra_latency = 0; // added service/queue delay (stall, spike)
};

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  // Called immediately before the operation executes. `now` is the
  // caller's virtual time where known, 0 where the layer has no clock of
  // its own (transport RTT sampling).
  virtual FaultDecision OnOp(FaultSite site, SimTime now) = 0;
};

// Layers hold the hook by shared_ptr: transports are copied by value into
// stores and devices, and every copy must keep consulting the same
// injector.
using FaultHookPtr = std::shared_ptr<FaultHook>;

}  // namespace fluid
