// Fault-injection hook points shared by every layer of the stack.
//
// Disaggregated-memory correctness lives or dies on how the monitor reacts
// when the remote tier misbehaves (paper §III replication, §IV partition
// recovery). Each injectable layer — net transports, block devices, the
// coordination table, key-value stores — consults an optional FaultHook at
// its operation sites; the chaos harness (src/chaos) installs one seeded
// injector behind every site so an entire run is replayable from a
// (seed, FaultPlan) pair. With no hook installed the fast paths are a null
// pointer check, so production-style benches are unperturbed.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "common/types.h"

namespace fluid {

// Where in the stack an operation is about to run. One enumerator per
// injectable operation class, across every layer.
enum class FaultSite : std::uint8_t {
  kNetRtt = 0,          // one transport round trip (latency spikes only)
  kBlockRead,           // block device read command
  kBlockWrite,          // block device write command
  kCoordOp,             // a client op against the replicated table
  kCoordAck,            // one replica's commit acknowledgement
  kStoreGet,
  kStorePut,
  kStoreMultiPut,
  kStoreRemove,
  kStoreDropPartition,
  // Per-object failure inside a multi-write batch: consulted once per
  // element AFTER the whole-batch kStoreMultiPut consultation, so a plan
  // can fail individual keys (exercising subset retry) without taking down
  // the batch as a transport op. Appended last: per-site call counters are
  // independent, so legacy (seed, plan) pairs replay unchanged.
  kStoreMultiPutKey,
  // Silent-corruption sites (PR 8). Unlike the sites above, a `fail`
  // decision here does not make the op report an error: the op SUCCEEDS
  // but the data is wrong — a bit flip on the read path, a torn
  // (truncated) write, or a stale previous version served for a read.
  // Only an integrity layer (kvstore/integrity.h) can catch these.
  // Appended last, one at a time: per-site call counters are independent,
  // so legacy (seed, plan) pairs replay unchanged.
  kStoreCorruptBits,  // Get returns payload with deterministic bit flips
  kStoreTornWrite,    // Put/MultiPut element persists a truncated payload
  kStoreStaleGet,     // Get is served the previous committed version
};
inline constexpr std::size_t kFaultSiteCount = 14;

constexpr std::string_view FaultSiteName(FaultSite s) noexcept {
  switch (s) {
    case FaultSite::kNetRtt: return "net.rtt";
    case FaultSite::kBlockRead: return "blk.read";
    case FaultSite::kBlockWrite: return "blk.write";
    case FaultSite::kCoordOp: return "coord.op";
    case FaultSite::kCoordAck: return "coord.ack";
    case FaultSite::kStoreGet: return "store.get";
    case FaultSite::kStorePut: return "store.put";
    case FaultSite::kStoreMultiPut: return "store.multiput";
    case FaultSite::kStoreRemove: return "store.remove";
    case FaultSite::kStoreDropPartition: return "store.drop";
    case FaultSite::kStoreMultiPutKey: return "store.multiput.key";
    case FaultSite::kStoreCorruptBits: return "store.corrupt.bits";
    case FaultSite::kStoreTornWrite: return "store.torn.write";
    case FaultSite::kStoreStaleGet: return "store.stale.get";
  }
  return "?";
}

struct FaultDecision {
  bool fail = false;             // operation fails (kUnavailable / dropped ack)
  SimDuration extra_latency = 0; // added service/queue delay (stall, spike)
  // Deterministic randomness accompanying a `fail` decision at the
  // corruption sites: selects which bits flip / where a torn write is cut.
  // Derived from the same (seed, site, step, call) tuple as the decision
  // itself, so corrupted bytes are bit-replayable too. Zero elsewhere.
  std::uint64_t entropy = 0;
};

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  // Called immediately before the operation executes. `now` is the
  // caller's virtual time where known, 0 where the layer has no clock of
  // its own (transport RTT sampling).
  virtual FaultDecision OnOp(FaultSite site, SimTime now) = 0;

  // True when the plan behind the hook could ever fire `site`. Lets a
  // decorator skip bookkeeping (e.g. the previous-version map backing
  // kStoreStaleGet) that only exists to serve an armed site. Consultation
  // via OnOp still happens unconditionally so call-counter sequences stay
  // uniform across plans.
  virtual bool SiteArmed(FaultSite /*site*/) const { return false; }
};

// Layers hold the hook by shared_ptr: transports are copied by value into
// stores and devices, and every copy must keep consulting the same
// injector.
using FaultHookPtr = std::shared_ptr<FaultHook>;

}  // namespace fluid
