// Deterministic pseudo-random number generation for simulation.
//
// We use xoshiro256** (public-domain, Blackman & Vigna) rather than
// std::mt19937 because it is faster, has a tiny state that copies cheaply
// into every model object, and gives identical streams on every platform —
// the whole evaluation must be bit-reproducible from a seed.
#pragma once

#include <cstdint>
#include <cmath>

namespace fluid {

// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x5eedf1d0ULL) noexcept { Reseed(seed); }

  constexpr void Reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = SplitMix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  constexpr std::uint64_t operator()() noexcept {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound). bound must be > 0. Uses Lemire's method.
  std::uint64_t NextBounded(std::uint64_t bound) noexcept {
    // 128-bit multiply keeps the distribution unbiased enough for simulation
    // (rejection step omitted intentionally; bias is < 2^-64 * bound).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  // Standard normal via Box-Muller (no cached second value; simplicity over
  // the ~2x micro-optimisation).
  double NextGaussian() noexcept {
    double u1 = NextDouble();
    while (u1 <= 1e-300) u1 = NextDouble();
    const double u2 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  // Derive an independent child stream (for per-component RNGs).
  Rng Fork() noexcept {
    Rng child{0};
    std::uint64_t sm = (*this)();
    for (auto& w : child.s_) w = SplitMix64(sm);
    return child;
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace fluid
