// Lightweight Status / StatusOr error handling.
//
// Error handling follows the Core Guidelines' advice for libraries whose
// callers need to branch on failures that are expected in normal operation
// (a missing key, a full buffer): return a value, don't throw. Exceptions
// remain in play for programming errors via assertions.
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace fluid {

enum class StatusCode : int {
  kOk = 0,
  kNotFound,        // key/page/object absent
  kAlreadyExists,   // create-if-absent lost the race
  kInvalidArgument,
  kResourceExhausted,  // out of frames / slots / partitions
  kUnavailable,        // replica down, quorum lost, device offline
  kFailedPrecondition,
  kDeadlineExceeded,
  kInternal,
  kDataLoss,  // stored bytes failed integrity verification (checksum mismatch)
};

[[nodiscard]] constexpr std::string_view StatusCodeName(StatusCode c) noexcept {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kDataLoss: return "DATA_LOSS";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }
  static Status NotFound(std::string m = "") { return {StatusCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m = "") { return {StatusCode::kAlreadyExists, std::move(m)}; }
  static Status InvalidArgument(std::string m = "") { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status ResourceExhausted(std::string m = "") { return {StatusCode::kResourceExhausted, std::move(m)}; }
  static Status Unavailable(std::string m = "") { return {StatusCode::kUnavailable, std::move(m)}; }
  static Status FailedPrecondition(std::string m = "") { return {StatusCode::kFailedPrecondition, std::move(m)}; }
  static Status DeadlineExceeded(std::string m = "") { return {StatusCode::kDeadlineExceeded, std::move(m)}; }
  static Status Internal(std::string m = "") { return {StatusCode::kInternal, std::move(m)}; }
  static Status DataLoss(std::string m = "") { return {StatusCode::kDataLoss, std::move(m)}; }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  std::string ToString() const {
    std::string s{StatusCodeName(code_)};
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// A value-or-status union in the spirit of std::expected (not yet available
// in the toolchain's standard library).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status s) : rep_(std::move(s)) {  // NOLINT: implicit by design
    assert(!std::get<Status>(rep_).ok() && "OK status without a value");
  }
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT: implicit by design

  bool ok() const noexcept { return std::holds_alternative<T>(rep_); }

  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace fluid
