// Log-bucketed latency histogram with exact moment tracking.
//
// Used everywhere a latency distribution is reported: Figure 3's CDFs,
// Table I's per-codepath avg/stdev/99th, Figure 5's time-courses.
// Buckets are log-spaced so the 0.1 us .. 1 s range that the paper plots is
// covered with bounded memory; mean/stdev are computed from exact running
// sums so they do not suffer bucketing error.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace fluid {

class LatencyHistogram {
 public:
  // Buckets span [min_ns, max_ns) with `buckets_per_decade` log-spaced
  // buckets per power of ten. Values outside the range clamp to the
  // first/last bucket.
  explicit LatencyHistogram(double min_ns = 10.0, double max_ns = 1e10,
                            int buckets_per_decade = 40)
      : min_ns_(min_ns),
        log_min_(std::log10(min_ns)),
        scale_(buckets_per_decade) {
    const int decades = static_cast<int>(std::ceil(std::log10(max_ns / min_ns)));
    counts_.assign(static_cast<std::size_t>(decades) * buckets_per_decade + 1, 0);
  }

  void Record(SimDuration ns) {
    const double v = static_cast<double>(ns);
    counts_[BucketOf(v)]++;
    n_++;
    sum_ += v;
    sum_sq_ += v * v;
    min_seen_ = std::min(min_seen_, v);
    max_seen_ = std::max(max_seen_, v);
  }

  // Combine per-thread/per-shard stats. The two histograms must share a
  // bucket layout: merging mismatched layouts used to silently drop the
  // excess buckets while still summing the exact moments, skewing every
  // quantile read off the merged result. Now it is a hard error — the
  // histogram is left untouched and an InvalidArgument Status is returned
  // (with an assert so debug/sanitize builds trap at the call site).
  [[nodiscard]] Status Merge(const LatencyHistogram& other) {
    const bool same_layout = min_ns_ == other.min_ns_ &&
                             scale_ == other.scale_ &&
                             counts_.size() == other.counts_.size();
    assert(same_layout && "LatencyHistogram::Merge: mismatched bucket layouts");
    if (!same_layout) {
      return Status::InvalidArgument(
          "LatencyHistogram::Merge: mismatched bucket layouts");
    }
    for (std::size_t i = 0; i < counts_.size(); ++i)
      counts_[i] += other.counts_[i];
    n_ += other.n_;
    sum_ += other.sum_;
    sum_sq_ += other.sum_sq_;
    min_seen_ = std::min(min_seen_, other.min_seen_);
    max_seen_ = std::max(max_seen_, other.max_seen_);
    return Status::Ok();
  }

  std::uint64_t Count() const noexcept { return n_; }
  double MeanNs() const noexcept { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double MeanUs() const noexcept { return MeanNs() / 1000.0; }
  double MinNs() const noexcept { return n_ ? min_seen_ : 0.0; }
  double MaxNs() const noexcept { return n_ ? max_seen_ : 0.0; }

  double StdevNs() const noexcept {
    if (n_ < 2) return 0.0;
    const double mean = MeanNs();
    const double var =
        std::max(0.0, sum_sq_ / static_cast<double>(n_) - mean * mean);
    return std::sqrt(var);
  }
  double StdevUs() const noexcept { return StdevNs() / 1000.0; }

  // Approximate p-quantile (0 < p <= 1) from bucket boundaries. The raw
  // bucket upper edge can exceed the largest value ever recorded (or fall
  // below the smallest, for low p), so the estimate is clamped to the exact
  // observed range — a reported p99 is never larger than MaxNs().
  double QuantileNs(double p) const noexcept {
    if (n_ == 0) return 0.0;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(n_)));
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      acc += counts_[i];
      if (acc >= target)
        return std::clamp(BucketUpperNs(i), min_seen_, max_seen_);
    }
    return max_seen_;
  }
  double QuantileUs(double p) const noexcept { return QuantileNs(p) / 1000.0; }

  // CDF sample points (bucket upper edge in us, cumulative fraction).
  // Skips empty leading/trailing regions. Used to print Figure 3.
  std::vector<std::pair<double, double>> CdfUs() const {
    std::vector<std::pair<double, double>> out;
    if (n_ == 0) return out;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] == 0) continue;
      acc += counts_[i];
      out.emplace_back(BucketUpperNs(i) / 1000.0,
                       static_cast<double>(acc) / static_cast<double>(n_));
    }
    return out;
  }

 private:
  std::size_t BucketOf(double v) const noexcept {
    if (v <= min_ns_) return 0;
    const double b = (std::log10(v) - log_min_) * scale_;
    const auto i = static_cast<std::size_t>(b);
    return std::min(i, counts_.size() - 1);
  }
  double BucketUpperNs(std::size_t i) const noexcept {
    return std::pow(10.0, log_min_ + static_cast<double>(i + 1) / scale_);
  }

  double min_ns_;
  double log_min_;
  double scale_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_seen_ = 1e300;
  double max_seen_ = 0.0;
};

}  // namespace fluid
