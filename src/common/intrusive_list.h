// Intrusive doubly-linked list used by the LRU structures.
//
// The monitor's LRU buffer and the guest kernel's active/inactive lists move
// entries between list positions on every fault; an intrusive list makes
// splice/remove O(1) with zero allocation.
//
// Hooks are *tagged* so one node can sit on several lists at once: the
// monitor's region-indexed LRU threads every page through the global
// insertion-order list AND a per-region sublist simultaneously. A node type
// inherits one `ListHook<Tag>` per list it participates in; each
// `IntrusiveList<T, Tag>` manipulates only its own hook. Membership per
// hook is still exclusive (enforced in debug builds). The untagged
// `ListNode` / `IntrusiveList<T>` spellings keep single-list users working
// unchanged.
#pragma once

#include <cassert>
#include <cstddef>

namespace fluid {

template <typename Tag>
struct ListHook {
  ListHook* prev = nullptr;
  ListHook* next = nullptr;

  bool linked() const noexcept { return prev != nullptr; }

  void Unlink() noexcept {
    assert(linked());
    prev->next = next;
    next->prev = prev;
    prev = next = nullptr;
  }
};

// Tag for single-list node types that don't care about multi-list support.
struct DefaultListTag {};
using ListNode = ListHook<DefaultListTag>;

// T must publicly inherit ListHook<Tag> (directly; the hook type selects
// which of a node's hooks this list threads through).
template <typename T, typename Tag = DefaultListTag>
class IntrusiveList {
  using Hook = ListHook<Tag>;

 public:
  IntrusiveList() noexcept {
    head_.prev = &head_;
    head_.next = &head_;
  }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const noexcept { return head_.next == &head_; }
  std::size_t size() const noexcept { return size_; }

  // Most-recently-used end.
  void PushBack(T& node) noexcept {
    Hook& n = node;
    assert(!n.linked());
    n.prev = head_.prev;
    n.next = &head_;
    head_.prev->next = &n;
    head_.prev = &n;
    ++size_;
  }

  // Least-recently-used end.
  void PushFront(T& node) noexcept {
    Hook& n = node;
    assert(!n.linked());
    n.next = head_.next;
    n.prev = &head_;
    head_.next->prev = &n;
    head_.next = &n;
    ++size_;
  }

  T* Front() noexcept {
    return empty() ? nullptr : static_cast<T*>(head_.next);
  }
  const T* Front() const noexcept {
    return empty() ? nullptr : static_cast<const T*>(head_.next);
  }
  T* Back() noexcept {
    return empty() ? nullptr : static_cast<T*>(head_.prev);
  }
  const T* Back() const noexcept {
    return empty() ? nullptr : static_cast<const T*>(head_.prev);
  }

  T* PopFront() noexcept {
    if (empty()) return nullptr;
    T* n = Front();
    Remove(*n);
    return n;
  }

  void Remove(T& node) noexcept {
    static_cast<Hook&>(node).Unlink();
    assert(size_ > 0);
    --size_;
  }

  // Move to the MRU end (classic LRU "touch").
  void MoveToBack(T& node) noexcept {
    Remove(node);
    PushBack(node);
  }

  template <typename F>
  void ForEach(F&& f) {
    for (Hook* n = head_.next; n != &head_;) {
      Hook* next = n->next;  // allow f to unlink n
      f(*static_cast<T*>(n));
      n = next;
    }
  }

 private:
  Hook head_;
  std::size_t size_ = 0;
};

}  // namespace fluid
