// Intrusive doubly-linked list used by the LRU structures.
//
// The monitor's LRU buffer and the guest kernel's active/inactive lists move
// entries between list positions on every fault; an intrusive list makes
// splice/remove O(1) with zero allocation, and lets one node live in exactly
// one list at a time (enforced in debug builds).
#pragma once

#include <cassert>
#include <cstddef>

namespace fluid {

struct ListNode {
  ListNode* prev = nullptr;
  ListNode* next = nullptr;

  bool linked() const noexcept { return prev != nullptr; }

  void Unlink() noexcept {
    assert(linked());
    prev->next = next;
    next->prev = prev;
    prev = next = nullptr;
  }
};

// T must derive from ListNode (optionally through a tag member — pass a
// member-pointer-free design: we simply require public inheritance).
template <typename T>
class IntrusiveList {
 public:
  IntrusiveList() noexcept {
    head_.prev = &head_;
    head_.next = &head_;
  }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const noexcept { return head_.next == &head_; }
  std::size_t size() const noexcept { return size_; }

  // Most-recently-used end.
  void PushBack(T& node) noexcept {
    ListNode& n = node;
    assert(!n.linked());
    n.prev = head_.prev;
    n.next = &head_;
    head_.prev->next = &n;
    head_.prev = &n;
    ++size_;
  }

  // Least-recently-used end.
  void PushFront(T& node) noexcept {
    ListNode& n = node;
    assert(!n.linked());
    n.next = head_.next;
    n.prev = &head_;
    head_.next->prev = &n;
    head_.next = &n;
    ++size_;
  }

  T* Front() noexcept {
    return empty() ? nullptr : static_cast<T*>(head_.next);
  }
  T* Back() noexcept {
    return empty() ? nullptr : static_cast<T*>(head_.prev);
  }

  T* PopFront() noexcept {
    if (empty()) return nullptr;
    T* n = Front();
    Remove(*n);
    return n;
  }

  void Remove(T& node) noexcept {
    static_cast<ListNode&>(node).Unlink();
    assert(size_ > 0);
    --size_;
  }

  // Move to the MRU end (classic LRU "touch").
  void MoveToBack(T& node) noexcept {
    Remove(node);
    PushBack(node);
  }

  template <typename F>
  void ForEach(F&& f) {
    for (ListNode* n = head_.next; n != &head_;) {
      ListNode* next = n->next;  // allow f to unlink n
      f(*static_cast<T*>(n));
      n = next;
    }
  }

 private:
  ListNode head_;
  std::size_t size_ = 0;
};

}  // namespace fluid
