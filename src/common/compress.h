// Page compression codec (the §III provider customization: "Some examples
// are page compression or replication across remote servers").
//
// A self-contained LZ77-family byte compressor tuned for 4 KB memory
// pages: greedy matching against a 4-byte-hash chain over a 4 KB window,
// literals/match tokens in an LZ4-like layout. Typical VM pages (zeroed
// regions, page tables, text with repeated opcodes) compress well; the
// codec guarantees correctness for arbitrary input by falling back to
// stored (uncompressed) form when compression would expand.
//
// Also provides CRC-32C for end-to-end page integrity checks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace fluid {

// --- CRC-32C (Castagnoli), bitwise-free table implementation -----------------

std::uint32_t Crc32c(std::span<const std::byte> data) noexcept;

// --- page codec -----------------------------------------------------------------

// Compresses `in` into `out` (resized). The encoding is:
//   byte 0: format tag — 0 = stored, 1 = lz, 2 = all-zero page
//   stored: tag + raw bytes
//   zero:   tag only (the decoder materialises in.size() zero bytes given
//           the expected size)
//   lz:     sequence of tokens:
//             literal run:  0x00llllll  (6-bit length-1, then bytes;
//                           0x3f escapes to an extension byte)
//             match:        0x40+ token: 2-byte little-endian offset
//                           (1..4095) and length 4..259
// Returns the compressed size. Never fails.
std::size_t Compress(std::span<const std::byte> in,
                     std::vector<std::byte>& out);

// Decompresses into `out` (must be pre-sized to the expected decompressed
// size — pages are fixed-size, so the caller always knows it).
Status Decompress(std::span<const std::byte> in, std::span<std::byte> out);

// True if every byte is zero (fast path: evicted zero pages need not be
// stored at all).
bool IsAllZero(std::span<const std::byte> data) noexcept;

}  // namespace fluid
