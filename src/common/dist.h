// Latency distributions for the cost model.
//
// Every timed component in the simulation (a userfaultfd ioctl, a NIC
// round-trip, an SSD read) draws its service time from a LatencyDist.
// Distributions are small value types; sampling takes the caller's Rng so
// that a model object can stay const and the experiment owns determinism.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/rng.h"
#include "common/types.h"

namespace fluid {

// A clamped distribution family sufficient for the latencies in the paper:
//  - kConstant:  always `mean`.
//  - kNormal:    N(mean, sigma) clamped to [floor, ceil].
//  - kLognormal: exp(N(mu, s)) parameterised by (median=mean, sigma factor),
//                good for device tails (SSD, TLB shootdown IPIs).
//  - kBimodal:   `mean` with prob (1-p_tail), `tail` with prob p_tail — used
//                for operations with a rare expensive path (UFFD_REMAP's
//                interprocessor interrupt in Table I).
class LatencyDist {
 public:
  constexpr LatencyDist() = default;

  static constexpr LatencyDist Constant(double us) {
    LatencyDist d;
    d.kind_ = Kind::kConstant;
    d.a_ = us;
    return d;
  }

  static constexpr LatencyDist Normal(double mean_us, double sigma_us,
                                      double floor_us = 0.05) {
    LatencyDist d;
    d.kind_ = Kind::kNormal;
    d.a_ = mean_us;
    d.b_ = sigma_us;
    d.c_ = floor_us;
    return d;
  }

  // median_us: the 50th percentile; sigma_log: std-dev of the underlying
  // normal in log-space (0.25 ~ mild tail, 0.6 ~ heavy SSD-like tail).
  static constexpr LatencyDist Lognormal(double median_us, double sigma_log,
                                         double floor_us = 0.05) {
    LatencyDist d;
    d.kind_ = Kind::kLognormal;
    d.a_ = median_us;
    d.b_ = sigma_log;
    d.c_ = floor_us;
    return d;
  }

  static constexpr LatencyDist Bimodal(double common_us, double tail_us,
                                       double p_tail, double jitter_frac = 0.1) {
    LatencyDist d;
    d.kind_ = Kind::kBimodal;
    d.a_ = common_us;
    d.b_ = tail_us;
    d.c_ = p_tail;
    d.e_ = jitter_frac;
    return d;
  }

  // Sample a duration in nanoseconds.
  SimDuration Sample(Rng& rng) const noexcept {
    double us = 0.0;
    switch (kind_) {
      case Kind::kConstant:
        us = a_;
        break;
      case Kind::kNormal:
        us = std::max(c_, a_ + b_ * rng.NextGaussian());
        break;
      case Kind::kLognormal:
        us = std::max(c_, a_ * std::exp(b_ * rng.NextGaussian()));
        break;
      case Kind::kBimodal: {
        const double base = (rng.NextDouble() < c_) ? b_ : a_;
        us = std::max(0.01, base * (1.0 + e_ * rng.NextGaussian()));
        break;
      }
    }
    return FromMicros(us);
  }

  // Expected value in microseconds (exact for constant/normal/bimodal,
  // analytic for lognormal). Used by tests and by planning heuristics.
  double MeanUs() const noexcept {
    switch (kind_) {
      case Kind::kConstant:
        return a_;
      case Kind::kNormal:
        return a_;  // clamping bias ignored (sigma << mean in our configs)
      case Kind::kLognormal:
        return a_ * std::exp(b_ * b_ / 2.0);
      case Kind::kBimodal:
        return a_ * (1.0 - c_) + b_ * c_;
    }
    return 0.0;
  }

 private:
  enum class Kind : std::uint8_t { kConstant, kNormal, kLognormal, kBimodal };
  Kind kind_ = Kind::kConstant;
  double a_ = 0.0;  // mean / median / common value (us)
  double b_ = 0.0;  // sigma / sigma_log / tail value (us)
  double c_ = 0.0;  // floor / p_tail
  double e_ = 0.0;  // jitter fraction (bimodal)
};

}  // namespace fluid
