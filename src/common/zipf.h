// Zipfian sampler (Gray et al., "Quickly Generating Billion-Record
// Synthetic Databases", SIGMOD '94) — the distribution YCSB uses for its
// request keys. theta=0.99 is YCSB's default skew.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/rng.h"

namespace fluid {

class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta = 0.99)
      : n_(n), theta_(theta) {
    zetan_ = Zeta(n_, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  // Sample an item in [0, n).
  std::uint64_t Next(Rng& rng) const {
    const double u = rng.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto idx = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return idx >= n_ ? n_ - 1 : idx;
  }

 private:
  static double Zeta(std::uint64_t n, double theta) {
    // Exact for small n; sampled harmonic approximation for large n keeps
    // construction O(1e6) bounded.
    double sum = 0.0;
    if (n <= 1'000'000) {
      for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
      return sum;
    }
    for (std::uint64_t i = 1; i <= 1'000'000; ++i)
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    // Integral tail approximation.
    const double a = 1e6, b = static_cast<double>(n);
    sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
           (1.0 - theta);
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace fluid
