// Fundamental types shared across the FluidMem reproduction.
//
// All simulated time is kept in nanoseconds as a 64-bit unsigned integer
// (SimTime). Helper literals and conversions to/from microseconds are
// provided because the paper reports everything in microseconds.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fluid {

// --- Time ------------------------------------------------------------------

// Virtual (simulated) time in nanoseconds since experiment start.
using SimTime = std::uint64_t;
// A duration in nanoseconds.
using SimDuration = std::uint64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr double ToMicros(SimDuration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}
constexpr SimDuration FromMicros(double us) noexcept {
  return us <= 0 ? 0 : static_cast<SimDuration>(us * static_cast<double>(kMicrosecond));
}

// --- Memory ----------------------------------------------------------------

// The x86-64 base page size the whole system operates on (the paper's unit
// of disaggregation).
inline constexpr std::size_t kPageSize = 4096;
inline constexpr std::size_t kPageShift = 12;

// A guest/process virtual address. FluidMem keys pages by the upper 52 bits
// of this address (see kvstore/key_codec.h).
using VirtAddr = std::uint64_t;

// Virtual page number: VirtAddr >> kPageShift.
using PageNum = std::uint64_t;

constexpr PageNum PageOf(VirtAddr a) noexcept { return a >> kPageShift; }
constexpr VirtAddr AddrOf(PageNum p) noexcept { return p << kPageShift; }
constexpr VirtAddr PageAlignDown(VirtAddr a) noexcept { return a & ~(kPageSize - 1); }

// Identifier of a local DRAM frame inside a FramePool.
using FrameId = std::uint32_t;
inline constexpr FrameId kInvalidFrame = ~FrameId{0};

// --- Identity --------------------------------------------------------------

// A process id of the faulting hypervisor process (e.g. QEMU); used together
// with a hypervisor id and a nonce to derive a virtual partition (paper SIV).
using ProcessId = std::uint32_t;
using HypervisorId = std::uint32_t;

// Partition index inside a key-value store. The paper packs this into the
// low 12 bits of the 64-bit key ("virtual partition"); stores with native
// partition support address them directly.
using PartitionId = std::uint16_t;
inline constexpr PartitionId kMaxVirtualPartitions = 4096;  // 12 bits

}  // namespace fluid
