// Central metrics registry: named counters, gauges and latency histograms.
//
// Before this layer every subsystem grew its own stats struct
// (MonitorStats, EngineShardStats, StoreStats, InjectorStats, ...) and
// every bench hand-plumbed the fields it wanted into its output. The
// registry gives them one namespace: subsystems register *gauges* — cheap
// callbacks over the stats structs they already maintain, so the structs
// stay the source of truth and the hot paths touch nothing new — while
// cross-cutting code (the observability span aggregator, benches) can own
// counters and histograms directly.
//
// Snapshot() materialises every counter and gauge as (name, value) pairs in
// deterministic (lexicographic) order; MaybeSample() appends snapshots on a
// virtual-time cadence for Figure-5-style time series. Nothing here draws
// randomness or advances time: attaching a registry never perturbs a run.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"

namespace fluid::obs {

class MetricsRegistry {
 public:
  // Create-or-get a counter owned by the registry.
  std::uint64_t& Counter(std::string_view name) {
    return counters_[std::string(name)];
  }

  // Register (or replace) a gauge: a callback evaluated at snapshot time.
  // The callback must outlive the registry's last Snapshot() call — the
  // usual pattern is a lambda over a stats struct owned by the subsystem
  // that registered it.
  void Gauge(std::string_view name, std::function<double()> fn) {
    gauges_[std::string(name)] = std::move(fn);
  }

  // Create-or-get a named histogram (created with the given layout).
  LatencyHistogram& Histogram(std::string_view name, double min_ns = 10.0,
                              double max_ns = 1e10,
                              int buckets_per_decade = 40) {
    auto it = histograms_.find(std::string(name));
    if (it == histograms_.end()) {
      it = histograms_
               .emplace(std::string(name),
                        LatencyHistogram{min_ns, max_ns, buckets_per_decade})
               .first;
    }
    return it->second;
  }

  // Every counter and gauge as (name, value), lexicographically ordered.
  std::vector<std::pair<std::string, double>> Snapshot() const {
    std::vector<std::pair<std::string, double>> out;
    out.reserve(counters_.size() + gauges_.size());
    for (const auto& [k, v] : counters_)
      out.emplace_back(k, static_cast<double>(v));
    for (const auto& [k, fn] : gauges_) out.emplace_back(k, fn());
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
  }

  const std::map<std::string, LatencyHistogram>& histograms() const noexcept {
    return histograms_;
  }

  // --- virtual-time sampling (time-series output) ---------------------------

  struct SeriesPoint {
    SimTime at = 0;
    std::vector<std::pair<std::string, double>> values;
  };

  // 0 disables sampling (the default).
  void EnableSampling(SimDuration interval) {
    sample_interval_ = interval;
    next_sample_ = 0;
  }

  // Append a snapshot if the cadence is due; callers invoke this from
  // convenient virtual-time hooks (fault completion, background pump).
  // Deterministic: depends only on `now` and the configured interval.
  void MaybeSample(SimTime now) {
    if (sample_interval_ == 0 || now < next_sample_) return;
    series_.push_back(SeriesPoint{now, Snapshot()});
    // Skip ahead past quiet gaps instead of emitting catch-up samples.
    next_sample_ = now + sample_interval_;
  }

  const std::vector<SeriesPoint>& series() const noexcept { return series_; }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::function<double()>> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;

  SimDuration sample_interval_ = 0;
  SimTime next_sample_ = 0;
  std::vector<SeriesPoint> series_;
};

}  // namespace fluid::obs
