// Per-fault spans: stage-attributed latency tracing for the fault path.
//
// A FaultSpan is opened when the fault engine dequeues a userfaultfd event
// and closed when the vCPU wakes (or the fault fails). Between the two, a
// SpanCursor rides the fault path's virtual-time variable `t`: every time
// the path advances `t` it tells the cursor which *stage* the elapsed
// window belongs to (queue wait, dispatch, remote read, eviction, ...).
// Because the cursor charges exactly the delta since its previous position,
// the per-stage durations of a span sum to its end-to-end latency by
// construction — the "where did this p99 fault go?" breakdown reconciles
// with the fault histogram exactly, not approximately.
//
// Cost model: a cursor bound to no span is a null check per Advance; an
// Observability that is disabled opens no spans at all. Recording draws no
// randomness and never moves `t`, so replays are byte-identical with
// observability enabled, disabled, or absent.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <string_view>

#include "common/histogram.h"
#include "common/types.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace fluid::obs {

// The span stage taxonomy (DESIGN.md §11). Stages follow Fig. 2's hand-off
// order; a fault touches the subset its resolution path visits.
enum class Stage : std::uint8_t {
  kKernelDelivery = 0,  // guest exit + kernel uffd handling + event delivery
  kQueueWait,           // fault queued behind the handler's earlier work
  kDispatch,            // epoll wakeup + read(2) + msg parse (or batched)
  kLockWait,            // shared write-list/frame-pool lock contention
  kClassify,            // tracker lookup + page-cache bookkeeping (UPC/IPH)
  kRemoteRead,          // KV-store read: post, window gate, RTT wait
  kLocalSpillIo,        // local swap device read (degraded mode)
  kColdTierIo,          // cold-tier device read (heat-based promotion)
  kEviction,            // UFFD_REMAP + tracker insert for the victim
  kWriteback,           // victim store write, or wait on an in-flight batch
  kInstall,             // UFFDIO_COPY / ZEROPAGE + LRU insert
  kWake,                // UFFDIO_WAKE + scheduler + VM entry
  kCount,
};

inline constexpr std::size_t kStageCount =
    static_cast<std::size_t>(Stage::kCount);

constexpr std::string_view StageName(Stage s) noexcept {
  switch (s) {
    case Stage::kKernelDelivery: return "kernel_delivery";
    case Stage::kQueueWait: return "queue_wait";
    case Stage::kDispatch: return "dispatch";
    case Stage::kLockWait: return "lock_wait";
    case Stage::kClassify: return "classify";
    case Stage::kRemoteRead: return "remote_read";
    case Stage::kLocalSpillIo: return "local_spill_io";
    case Stage::kColdTierIo: return "cold_tier_io";
    case Stage::kEviction: return "eviction";
    case Stage::kWriteback: return "writeback";
    case Stage::kInstall: return "install";
    case Stage::kWake: return "wake";
    case Stage::kCount: break;
  }
  return "?";
}

// Stages of the BACKGROUND eviction/writeback pipeline (DESIGN.md §11.5).
// These are deliberately separate from the fault-span Stage taxonomy: fault
// spans account the vCPU-visible critical path and must reconcile exactly
// with the end-to-end histogram; pipeline stages account work the pipeline
// moved OFF that path (victim queueing, background eviction, coalescing
// dwell, the store write itself) and reconcile against nothing — they
// overlap fault handling by design.
enum class PipeStage : std::uint8_t {
  kVictimQueue = 0,  // fault handed off victim -> background evictor picked it up
  kEvict,            // UFFD_REMAP + tracker insert on the evictor worker
  kCoalesceWait,     // dirty page dwelling in the coalescing buffer
  kStoreWrite,       // posted multi-write: issue through completion
  kPrefetchRead,     // speculative MultiGet: issue through completion
  kPrefetchInstall,  // prefetched window: evictions + batch install
  kTierDemote,       // cold victim written to the cold-tier device
  kCount,
};

inline constexpr std::size_t kPipeStageCount =
    static_cast<std::size_t>(PipeStage::kCount);

constexpr std::string_view PipeStageName(PipeStage s) noexcept {
  switch (s) {
    case PipeStage::kVictimQueue: return "pipe_victim_queue";
    case PipeStage::kEvict: return "pipe_evict";
    case PipeStage::kCoalesceWait: return "pipe_coalesce_wait";
    case PipeStage::kStoreWrite: return "pipe_store_write";
    case PipeStage::kPrefetchRead: return "pipe_prefetch_read";
    case PipeStage::kPrefetchInstall: return "pipe_prefetch_install";
    case PipeStage::kTierDemote: return "pipe_tier_demote";
    case PipeStage::kCount: break;
  }
  return "?";
}

// How the fault was resolved (which arm of the monitor's switch ran).
enum class FaultKind : std::uint8_t {
  kUnknown = 0,   // failed before classification (bad region, deadlock, ...)
  kFirstAccess,   // zero-page install, no store read
  kResident,      // duplicate/raced event; page already present
  kSteal,         // served from the pending write list
  kInFlightWait,  // waited on a posted writeback batch
  kSpilled,       // served from the local swap device
  kColdTier,      // promoted back from the cold-tier device
  kRemote,        // read back from the KV store
  kCount,
};

constexpr std::string_view FaultKindName(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kUnknown: return "unknown";
    case FaultKind::kFirstAccess: return "first_access";
    case FaultKind::kResident: return "resident";
    case FaultKind::kSteal: return "steal";
    case FaultKind::kInFlightWait: return "inflight_wait";
    case FaultKind::kSpilled: return "spilled";
    case FaultKind::kColdTier: return "cold_tier";
    case FaultKind::kRemote: return "remote";
    case FaultKind::kCount: break;
  }
  return "?";
}

// One retained background-pipeline interval, kept so the trace exporter
// can draw the evictor-lane rows next to the fault shards. The flat
// per-stage totals in Observability remain the source of truth for the
// stage table; this is presentation-layer detail on a bounded ring.
struct PipeEvent {
  PipeStage stage = PipeStage::kVictimQueue;
  std::uint32_t lane = 0;  // evictor lane (shard index the work ran on)
  SimTime start = 0;
  SimDuration dur = 0;
};

struct FaultSpan {
  std::uint64_t id = 0;
  std::uint32_t region = 0;
  VirtAddr addr = 0;
  std::uint32_t shard = 0;
  bool batch_follower = false;
  bool ok = false;
  FaultKind kind = FaultKind::kUnknown;
  SimTime start = 0;  // fault raise time
  SimTime end = 0;    // vCPU wake (or failure surfaced)
  std::array<SimDuration, kStageCount> stage_ns{};

  SimDuration DurationNs() const noexcept {
    return end > start ? end - start : 0;
  }
  SimDuration StageSumNs() const noexcept {
    SimDuration s = 0;
    for (const SimDuration d : stage_ns) s += d;
    return s;
  }
};

// Aggregate span accounting for one region (= one tenant in multi-tenant
// runs). Unlike the retained span ring this never drops: counts and the
// latency histogram cover every span finished for the region, so per-tenant
// fault attribution reconciles exactly with the engine's MergedLatency()
// totals (both record successful faults only, same histogram layout).
struct RegionSpanStats {
  std::uint64_t spans = 0;  // finished, ok or not
  std::uint64_t ok = 0;
  LatencyHistogram latency{/*min_ns=*/50.0, /*max_ns=*/1e9,
                           /*buckets_per_decade=*/60};
};

// Rides the fault path's time variable and attributes each advance to a
// stage. Unbound cursors (span_ == nullptr) no-op — the fault path calls
// Advance unconditionally and pays one branch when tracing is off.
class SpanCursor {
 public:
  SpanCursor() = default;

  void Bind(FaultSpan* span) noexcept {
    span_ = span;
    last_ = span != nullptr ? span->start : 0;
  }
  bool active() const noexcept { return span_ != nullptr; }

  void Advance(Stage s, SimTime t) noexcept {
    if (span_ == nullptr) return;
    if (t > last_) {
      span_->stage_ns[static_cast<std::size_t>(s)] += t - last_;
      last_ = t;
    }
  }

  void SetKind(FaultKind k) noexcept {
    if (span_ != nullptr) span_->kind = k;
  }

  // Attribute everything not yet accounted for to `tail` and stamp the end.
  void Close(SimTime end, bool ok, Stage tail = Stage::kWake) noexcept {
    if (span_ == nullptr) return;
    Advance(tail, end);
    span_->end = end > span_->start ? end : span_->start;
    span_->ok = ok;
  }

 private:
  FaultSpan* span_ = nullptr;
  SimTime last_ = 0;
};

// The per-process observability hub: span aggregation, the central metrics
// registry, and the crash flight recorder. Subsystems hold a pointer and
// check enabled(); everything is inert (and allocation-free on the fault
// path) until Enable() is called.
class Observability {
 public:
  explicit Observability(std::size_t span_capacity = 65536,
                         std::size_t recorder_capacity = 1024)
      : span_capacity_(span_capacity == 0 ? 1 : span_capacity),
        recorder_(recorder_capacity) {}

  void Enable(bool on = true) noexcept { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }

  MetricsRegistry& metrics() noexcept { return metrics_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }
  FlightRecorder& recorder() noexcept { return recorder_; }
  const FlightRecorder& recorder() const noexcept { return recorder_; }

  // --- span lifecycle (called by the fault engine) --------------------------

  // Initialise `span`, bind `cursor` to it. Returns false (and binds
  // nothing) when disabled.
  bool StartSpan(FaultSpan* span, SpanCursor* cursor, std::uint32_t region,
                 VirtAddr addr, std::uint32_t shard, bool batch_follower,
                 SimTime start) {
    if (!enabled_) return false;
    *span = FaultSpan{};
    span->id = next_span_id_++;
    span->region = region;
    span->addr = addr;
    span->shard = shard;
    span->batch_follower = batch_follower;
    span->start = start;
    cursor->Bind(span);
    ++spans_started_;
    return true;
  }

  // Close the cursor and fold the span into the retained ring + aggregates.
  void FinishSpan(FaultSpan* span, SpanCursor* cursor, SimTime end, bool ok) {
    cursor->Close(end, ok);
    ++spans_finished_;
    RegionSpanStats& rs = region_stats_[span->region];
    ++rs.spans;
    if (span->ok) {
      ++rs.ok;
      rs.latency.Record(span->DurationNs());
      for (std::size_t s = 0; s < kStageCount; ++s)
        stage_total_ns_[s] += span->stage_ns[s];
      end_to_end_.Record(span->DurationNs());
    } else {
      ++spans_failed_;
    }
    spans_.push_back(*span);
    if (spans_.size() > span_capacity_) {
      spans_.pop_front();
      ++spans_dropped_;
    }
  }

  // Retained spans, oldest first (bounded ring; see spans_dropped()).
  const std::deque<FaultSpan>& spans() const noexcept { return spans_; }

  std::uint64_t spans_started() const noexcept { return spans_started_; }
  std::uint64_t spans_finished() const noexcept { return spans_finished_; }
  std::uint64_t spans_failed() const noexcept { return spans_failed_; }
  std::uint64_t spans_dropped() const noexcept { return spans_dropped_; }

  // Aggregate stage totals over all *successful* spans ever finished (not
  // just the retained ring), in ns — the per-stage latency table.
  SimDuration StageTotalNs(Stage s) const noexcept {
    return stage_total_ns_[static_cast<std::size_t>(s)];
  }
  SimDuration StageTotalSumNs() const noexcept {
    SimDuration total = 0;
    for (const SimDuration d : stage_total_ns_) total += d;
    return total;
  }

  // End-to-end latency of successful spans; same layout as the fault
  // engine's per-shard histograms so the two can be cross-checked.
  const LatencyHistogram& end_to_end() const noexcept { return end_to_end_; }

  // Per-region (per-tenant) span aggregates, keyed by region id. Ordered
  // map: iteration order is deterministic for reporting.
  const std::map<std::uint32_t, RegionSpanStats>& region_span_stats()
      const noexcept {
    return region_stats_;
  }
  const RegionSpanStats* RegionStats(std::uint32_t region) const noexcept {
    const auto it = region_stats_.find(region);
    return it == region_stats_.end() ? nullptr : &it->second;
  }

  // --- background pipeline accounting ---------------------------------------

  // Attribute `d` of background-pipeline work to `s`. Unlike span stages
  // this is a flat total: pipeline work is per-victim/per-write, overlaps
  // fault handling, and is charged where it happens.
  void RecordPipeline(PipeStage s, SimDuration d) noexcept {
    if (!enabled_) return;
    pipe_total_ns_[static_cast<std::size_t>(s)] += d;
    ++pipe_count_[static_cast<std::size_t>(s)];
  }
  // Interval-aware variant: aggregates exactly like the overload above and
  // additionally retains the [start, start+d) interval (bounded ring) so
  // WriteChromeTrace can render the pipeline's evictor-lane rows.
  void RecordPipeline(PipeStage s, std::uint32_t lane, SimTime start,
                      SimDuration d) {
    RecordPipeline(s, d);
    if (!enabled_) return;
    pipe_events_.push_back(PipeEvent{s, lane, start, d});
    if (pipe_events_.size() > span_capacity_) {
      pipe_events_.pop_front();
      ++pipe_events_dropped_;
    }
  }
  // Retained pipeline intervals, oldest first (bounded ring).
  const std::deque<PipeEvent>& pipe_events() const noexcept {
    return pipe_events_;
  }
  std::uint64_t pipe_events_dropped() const noexcept {
    return pipe_events_dropped_;
  }
  SimDuration PipelineTotalNs(PipeStage s) const noexcept {
    return pipe_total_ns_[static_cast<std::size_t>(s)];
  }
  std::uint64_t PipelineCount(PipeStage s) const noexcept {
    return pipe_count_[static_cast<std::size_t>(s)];
  }

  // Virtual-time series hook; forwards to the registry's cadence.
  void MaybeSample(SimTime now) {
    if (enabled_) metrics_.MaybeSample(now);
  }

  void ClearSpans() {
    spans_.clear();
    region_stats_.clear();
    spans_started_ = spans_finished_ = spans_failed_ = spans_dropped_ = 0;
    stage_total_ns_.fill(0);
    pipe_total_ns_.fill(0);
    pipe_count_.fill(0);
    pipe_events_.clear();
    pipe_events_dropped_ = 0;
    end_to_end_ = LatencyHistogram{/*min_ns=*/50.0, /*max_ns=*/1e9,
                                   /*buckets_per_decade=*/60};
  }

 private:
  bool enabled_ = false;
  std::size_t span_capacity_;
  std::deque<FaultSpan> spans_;
  std::map<std::uint32_t, RegionSpanStats> region_stats_;
  std::uint64_t next_span_id_ = 1;
  std::uint64_t spans_started_ = 0;
  std::uint64_t spans_finished_ = 0;
  std::uint64_t spans_failed_ = 0;
  std::uint64_t spans_dropped_ = 0;
  std::array<SimDuration, kStageCount> stage_total_ns_{};
  std::array<SimDuration, kPipeStageCount> pipe_total_ns_{};
  std::array<std::uint64_t, kPipeStageCount> pipe_count_{};
  std::deque<PipeEvent> pipe_events_;
  std::uint64_t pipe_events_dropped_ = 0;
  LatencyHistogram end_to_end_{/*min_ns=*/50.0, /*max_ns=*/1e9,
                               /*buckets_per_decade=*/60};
  MetricsRegistry metrics_;
  FlightRecorder recorder_;
};

}  // namespace fluid::obs
