// Bounded flight recorder: the crash-dump half of the observability layer.
//
// A FlightRecorder is a fixed-capacity ring of (virtual time, category,
// message) entries with drop-oldest overwrite, plus an intern table that
// maps category strings to small stable ids. Recording an event costs one
// ring-slot write and one O(1) counter bump — no per-event category
// allocation and no unbounded growth, so it can stay attached through a
// multi-hour chaos soak and still hold the last N events when an oracle or
// invariant check fails. Tracer (sim/trace.h) is a thin shim over this
// class; the chaos harness dumps the ring next to its (seed, plan)
// reproducer on failure.
//
// Determinism: the recorder only observes. It draws no randomness and
// never feeds back into virtual time, so runs are byte-identical whether
// or not one is attached.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace fluid::obs {

class FlightRecorder {
 public:
  using CategoryId = std::uint32_t;

  struct Entry {
    std::uint64_t seq = 0;  // monotone record index (survives drops)
    SimTime at = 0;
    CategoryId category = 0;
    std::string message;
  };

  explicit FlightRecorder(std::size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.resize(capacity_);
  }

  // Map a category name to its stable small id, creating it on first use.
  CategoryId Intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    const auto id = static_cast<CategoryId>(names_.size());
    names_.emplace_back(name);
    counts_.push_back(0);
    ids_.emplace(names_.back(), id);
    return id;
  }

  // Lookup without creating; nullopt when the category was never recorded.
  std::optional<CategoryId> FindCategory(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  std::string_view CategoryName(CategoryId id) const {
    return id < names_.size() ? std::string_view{names_[id]} : "?";
  }

  void Record(SimTime at, CategoryId category, std::string message) {
    Entry& slot = ring_[static_cast<std::size_t>(seq_ % capacity_)];
    if (size_ == capacity_) ++dropped_;
    slot.seq = seq_;
    slot.at = at;
    slot.category = category;
    slot.message = std::move(message);
    ++seq_;
    if (size_ < capacity_) ++size_;
    if (category < counts_.size()) ++counts_[category];
  }

  // Entries still in the ring, oldest first.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const std::uint64_t first = seq_ - size_;
    for (std::uint64_t s = first; s < seq_; ++s)
      fn(ring_[static_cast<std::size_t>(s % capacity_)]);
  }

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t total_recorded() const noexcept { return seq_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

  // Events recorded in this category since the last Clear(), O(1). Counts
  // include entries that have since rotated out of the ring.
  std::uint64_t CountCategory(CategoryId id) const noexcept {
    return id < counts_.size() ? counts_[id] : 0;
  }

  // Forget all entries and counters; interned category ids stay valid.
  void Clear() noexcept {
    size_ = 0;
    seq_ = 0;
    dropped_ = 0;
    for (auto& c : counts_) c = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<Entry> ring_;
  std::uint64_t seq_ = 0;      // next slot to write == total recorded
  std::size_t size_ = 0;       // live entries in the ring
  std::uint64_t dropped_ = 0;  // entries overwritten by newer ones

  std::vector<std::string> names_;
  std::vector<std::uint64_t> counts_;  // per-category lifetime counts
  std::unordered_map<std::string, CategoryId> ids_;
};

}  // namespace fluid::obs
