// Exporters for the observability layer.
//
//  * WriteChromeTrace  — Chrome trace_event JSON ("X" complete events), one
//    row per fault-engine shard, one slice per span plus child slices for
//    its non-zero stages. Loads in chrome://tracing and ui.perfetto.dev.
//  * WriteMetricsJson  — counters/gauges snapshot + histogram summaries +
//    the sampled time series, as a standalone JSON document.
//  * DumpFlightRecorder — human-readable dump of the last N spans and ring
//    events; the chaos harness appends this to its failure report next to
//    the (seed, plan) reproducer.
//
// All output uses virtual time (ts/dur in microseconds as trace_event
// requires); nothing here mutates the observed structures.
#pragma once

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/span.h"

namespace fluid::obs {

namespace detail {

inline void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

inline std::string Us(SimTime ns) {  // trace_event wants microseconds
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e3);
  return buf;
}

}  // namespace detail

// One complete event per retained span (name = fault kind, tid = shard),
// with child slices tiling the span for each stage it spent time in. Child
// slices are laid out sequentially from the span start; because stage
// durations sum to the span duration by construction, they tile it exactly.
inline bool WriteChromeTrace(const Observability& obs,
                             const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& ev) {
    if (!first) out << ",";
    first = false;
    out << "\n" << ev;
  };

  // Thread-name metadata so Perfetto labels rows "shard N".
  std::uint32_t max_shard = 0;
  for (const FaultSpan& sp : obs.spans())
    if (sp.shard > max_shard) max_shard = sp.shard;
  for (std::uint32_t s = 0; s <= max_shard; ++s) {
    std::ostringstream md;
    md << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << (s + 1)
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"fault shard " << s
       << "\"}}";
    emit(md.str());
  }

  for (const FaultSpan& sp : obs.spans()) {
    const std::uint32_t tid = sp.shard + 1;
    {
      std::ostringstream ev;
      ev << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid << ",\"ts\":"
         << detail::Us(sp.start) << ",\"dur\":" << detail::Us(sp.DurationNs())
         << ",\"name\":\"" << FaultKindName(sp.kind)
         << "\",\"cat\":\"fault\",\"args\":{\"span_id\":" << sp.id
         << ",\"region\":" << sp.region << ",\"addr\":\"0x" << std::hex
         << sp.addr << std::dec << "\",\"ok\":" << (sp.ok ? "true" : "false")
         << ",\"batch_follower\":" << (sp.batch_follower ? "true" : "false")
         << "}}";
      emit(ev.str());
    }
    SimTime cursor = sp.start;
    for (std::size_t i = 0; i < kStageCount; ++i) {
      const SimDuration d = sp.stage_ns[i];
      if (d == 0) continue;
      std::ostringstream ev;
      ev << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid << ",\"ts\":"
         << detail::Us(cursor) << ",\"dur\":" << detail::Us(d)
         << ",\"name\":\"" << StageName(static_cast<Stage>(i))
         << "\",\"cat\":\"stage\",\"args\":{\"span_id\":" << sp.id << "}}";
      emit(ev.str());
      cursor += d;
    }
  }

  // Background eviction/writeback pipeline: one row per evictor lane,
  // slices for victim-queue dwell, the eviction itself, coalescing dwell,
  // and each posted multi-write. These rows overlap the fault rows above —
  // that overlap is the pipeline working as intended, visible at a glance.
  if (!obs.pipe_events().empty()) {
    constexpr std::uint32_t kEvictorTidBase = 1000;
    std::uint32_t max_lane = 0;
    for (const PipeEvent& pe : obs.pipe_events())
      if (pe.lane > max_lane) max_lane = pe.lane;
    for (std::uint32_t l = 0; l <= max_lane; ++l) {
      std::ostringstream md;
      md << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << (kEvictorTidBase + l)
         << ",\"name\":\"thread_name\",\"args\":{\"name\":\"evictor lane "
         << l << "\"}}";
      emit(md.str());
    }
    for (const PipeEvent& pe : obs.pipe_events()) {
      if (pe.dur == 0) continue;
      std::ostringstream ev;
      ev << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << (kEvictorTidBase + pe.lane)
         << ",\"ts\":" << detail::Us(pe.start) << ",\"dur\":"
         << detail::Us(pe.dur) << ",\"name\":\""
         << PipeStageName(pe.stage) << "\",\"cat\":\"pipeline\"}";
      emit(ev.str());
    }
  }
  out << "\n]}\n";
  out.flush();
  return static_cast<bool>(out);
}

// Counters + gauges + histogram summaries + sampled series as JSON.
inline bool WriteMetricsJson(const Observability& obs,
                             const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "{\n  \"metrics\": {";
  bool first = true;
  for (const auto& [name, value] : obs.metrics().Snapshot()) {
    if (!first) out << ",";
    first = false;
    std::string esc;
    detail::AppendJsonEscaped(esc, name);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out << "\n    \"" << esc << "\": " << buf;
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : obs.metrics().histograms()) {
    if (!first) out << ",";
    first = false;
    std::string esc;
    detail::AppendJsonEscaped(esc, name);
    out << "\n    \"" << esc << "\": {\"count\": " << h.Count()
        << ", \"mean_ns\": " << h.MeanNs() << ", \"p50_ns\": "
        << h.QuantileNs(0.5) << ", \"p99_ns\": " << h.QuantileNs(0.99)
        << ", \"max_ns\": " << h.MaxNs() << "}";
  }
  out << "\n  },\n  \"series\": [";
  first = true;
  for (const auto& point : obs.metrics().series()) {
    if (!first) out << ",";
    first = false;
    out << "\n    {\"at_ns\": " << point.at << ", \"values\": {";
    bool inner_first = true;
    for (const auto& [name, value] : point.values) {
      if (!inner_first) out << ", ";
      inner_first = false;
      std::string esc;
      detail::AppendJsonEscaped(esc, name);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", value);
      out << "\"" << esc << "\": " << buf;
    }
    out << "}}";
  }
  out << "\n  ]\n}\n";
  out.flush();
  return static_cast<bool>(out);
}

// Human-readable crash dump: the last `max_spans` spans with their stage
// breakdowns, then the flight-recorder ring. Returned as a string so the
// chaos harness can fold it into RunReport::Report().
inline std::string DumpFlightRecorder(const Observability& obs,
                                      std::size_t max_spans = 32) {
  std::ostringstream out;
  out << "--- flight recorder ---\n";
  out << "spans: started=" << obs.spans_started()
      << " finished=" << obs.spans_finished()
      << " failed=" << obs.spans_failed()
      << " retained=" << obs.spans().size()
      << " dropped=" << obs.spans_dropped() << "\n";
  const auto& spans = obs.spans();
  const std::size_t n = spans.size();
  const std::size_t begin = n > max_spans ? n - max_spans : 0;
  for (std::size_t i = begin; i < n; ++i) {
    const FaultSpan& sp = spans[i];
    out << "  span#" << sp.id << " " << FaultKindName(sp.kind)
        << (sp.ok ? " ok" : " FAIL") << " region=" << sp.region << " addr=0x"
        << std::hex << sp.addr << std::dec << " shard=" << sp.shard
        << " [" << sp.start << ".." << sp.end << "] dur=" << sp.DurationNs()
        << "ns";
    for (std::size_t s = 0; s < kStageCount; ++s) {
      if (sp.stage_ns[s] == 0) continue;
      out << " " << StageName(static_cast<Stage>(s)) << "="
          << sp.stage_ns[s];
    }
    out << "\n";
  }
  const FlightRecorder& rec = obs.recorder();
  out << "events: recorded=" << rec.total_recorded()
      << " retained=" << rec.size() << " dropped=" << rec.dropped() << "\n";
  rec.ForEach([&](const FlightRecorder::Entry& e) {
    out << "  [" << e.at << "] " << rec.CategoryName(e.category) << ": "
        << e.message << "\n";
  });
  out << "--- end flight recorder ---\n";
  return out.str();
}

}  // namespace fluid::obs
