file(REMOVE_RECURSE
  "libfluid_workloads.a"
)
