# Empty dependencies file for fluid_workloads.
# This may be replaced when dependencies are built.
