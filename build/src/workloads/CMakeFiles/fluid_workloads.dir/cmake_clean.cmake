file(REMOVE_RECURSE
  "CMakeFiles/fluid_workloads.dir/docstore.cc.o"
  "CMakeFiles/fluid_workloads.dir/docstore.cc.o.d"
  "CMakeFiles/fluid_workloads.dir/graph500.cc.o"
  "CMakeFiles/fluid_workloads.dir/graph500.cc.o.d"
  "CMakeFiles/fluid_workloads.dir/pmbench.cc.o"
  "CMakeFiles/fluid_workloads.dir/pmbench.cc.o.d"
  "CMakeFiles/fluid_workloads.dir/trace.cc.o"
  "CMakeFiles/fluid_workloads.dir/trace.cc.o.d"
  "libfluid_workloads.a"
  "libfluid_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluid_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
