file(REMOVE_RECURSE
  "CMakeFiles/fluid_common.dir/compress.cc.o"
  "CMakeFiles/fluid_common.dir/compress.cc.o.d"
  "libfluid_common.a"
  "libfluid_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluid_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
