# Empty dependencies file for fluid_common.
# This may be replaced when dependencies are built.
