file(REMOVE_RECURSE
  "libfluid_common.a"
)
