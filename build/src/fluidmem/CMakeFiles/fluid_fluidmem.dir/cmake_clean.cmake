file(REMOVE_RECURSE
  "CMakeFiles/fluid_fluidmem.dir/migration.cc.o"
  "CMakeFiles/fluid_fluidmem.dir/migration.cc.o.d"
  "CMakeFiles/fluid_fluidmem.dir/monitor.cc.o"
  "CMakeFiles/fluid_fluidmem.dir/monitor.cc.o.d"
  "libfluid_fluidmem.a"
  "libfluid_fluidmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluid_fluidmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
