# Empty dependencies file for fluid_fluidmem.
# This may be replaced when dependencies are built.
