file(REMOVE_RECURSE
  "libfluid_fluidmem.a"
)
