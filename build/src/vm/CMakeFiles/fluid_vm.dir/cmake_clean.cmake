file(REMOVE_RECURSE
  "CMakeFiles/fluid_vm.dir/fluid_vm.cc.o"
  "CMakeFiles/fluid_vm.dir/fluid_vm.cc.o.d"
  "libfluid_vm.a"
  "libfluid_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluid_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
