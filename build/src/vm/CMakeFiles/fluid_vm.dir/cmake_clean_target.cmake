file(REMOVE_RECURSE
  "libfluid_vm.a"
)
