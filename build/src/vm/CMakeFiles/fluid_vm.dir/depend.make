# Empty dependencies file for fluid_vm.
# This may be replaced when dependencies are built.
