# Empty compiler generated dependencies file for fluid_coord.
# This may be replaced when dependencies are built.
