file(REMOVE_RECURSE
  "libfluid_coord.a"
)
