file(REMOVE_RECURSE
  "CMakeFiles/fluid_coord.dir/partition_registry.cc.o"
  "CMakeFiles/fluid_coord.dir/partition_registry.cc.o.d"
  "CMakeFiles/fluid_coord.dir/replicated_table.cc.o"
  "CMakeFiles/fluid_coord.dir/replicated_table.cc.o.d"
  "libfluid_coord.a"
  "libfluid_coord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluid_coord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
