file(REMOVE_RECURSE
  "CMakeFiles/fluid_kvstore.dir/decorators.cc.o"
  "CMakeFiles/fluid_kvstore.dir/decorators.cc.o.d"
  "CMakeFiles/fluid_kvstore.dir/memcached.cc.o"
  "CMakeFiles/fluid_kvstore.dir/memcached.cc.o.d"
  "CMakeFiles/fluid_kvstore.dir/ramcloud.cc.o"
  "CMakeFiles/fluid_kvstore.dir/ramcloud.cc.o.d"
  "libfluid_kvstore.a"
  "libfluid_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluid_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
