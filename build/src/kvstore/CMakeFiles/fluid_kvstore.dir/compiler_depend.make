# Empty compiler generated dependencies file for fluid_kvstore.
# This may be replaced when dependencies are built.
