file(REMOVE_RECURSE
  "libfluid_kvstore.a"
)
