file(REMOVE_RECURSE
  "libfluid_swap.a"
)
