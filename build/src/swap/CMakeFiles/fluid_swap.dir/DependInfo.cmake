
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/swap/guest_mm.cc" "src/swap/CMakeFiles/fluid_swap.dir/guest_mm.cc.o" "gcc" "src/swap/CMakeFiles/fluid_swap.dir/guest_mm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fluid_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/fluid_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
