file(REMOVE_RECURSE
  "CMakeFiles/fluid_swap.dir/guest_mm.cc.o"
  "CMakeFiles/fluid_swap.dir/guest_mm.cc.o.d"
  "libfluid_swap.a"
  "libfluid_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluid_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
