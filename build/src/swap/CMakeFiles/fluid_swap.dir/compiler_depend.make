# Empty compiler generated dependencies file for fluid_swap.
# This may be replaced when dependencies are built.
