file(REMOVE_RECURSE
  "libfluid_mem.a"
)
