file(REMOVE_RECURSE
  "CMakeFiles/fluid_mem.dir/uffd.cc.o"
  "CMakeFiles/fluid_mem.dir/uffd.cc.o.d"
  "libfluid_mem.a"
  "libfluid_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluid_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
