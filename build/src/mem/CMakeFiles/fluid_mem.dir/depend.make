# Empty dependencies file for fluid_mem.
# This may be replaced when dependencies are built.
