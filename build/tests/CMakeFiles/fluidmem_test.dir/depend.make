# Empty dependencies file for fluidmem_test.
# This may be replaced when dependencies are built.
