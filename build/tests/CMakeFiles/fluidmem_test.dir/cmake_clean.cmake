file(REMOVE_RECURSE
  "CMakeFiles/fluidmem_test.dir/fluidmem_test.cc.o"
  "CMakeFiles/fluidmem_test.dir/fluidmem_test.cc.o.d"
  "fluidmem_test"
  "fluidmem_test.pdb"
  "fluidmem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluidmem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
