file(REMOVE_RECURSE
  "CMakeFiles/hybrid_vm_test.dir/hybrid_vm_test.cc.o"
  "CMakeFiles/hybrid_vm_test.dir/hybrid_vm_test.cc.o.d"
  "hybrid_vm_test"
  "hybrid_vm_test.pdb"
  "hybrid_vm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_vm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
