# Empty compiler generated dependencies file for decorators_test.
# This may be replaced when dependencies are built.
