file(REMOVE_RECURSE
  "CMakeFiles/decorators_test.dir/decorators_test.cc.o"
  "CMakeFiles/decorators_test.dir/decorators_test.cc.o.d"
  "decorators_test"
  "decorators_test.pdb"
  "decorators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decorators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
