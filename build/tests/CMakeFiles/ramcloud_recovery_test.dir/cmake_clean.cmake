file(REMOVE_RECURSE
  "CMakeFiles/ramcloud_recovery_test.dir/ramcloud_recovery_test.cc.o"
  "CMakeFiles/ramcloud_recovery_test.dir/ramcloud_recovery_test.cc.o.d"
  "ramcloud_recovery_test"
  "ramcloud_recovery_test.pdb"
  "ramcloud_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramcloud_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
