# Empty compiler generated dependencies file for ramcloud_recovery_test.
# This may be replaced when dependencies are built.
