file(REMOVE_RECURSE
  "CMakeFiles/prefetch_migration_test.dir/prefetch_migration_test.cc.o"
  "CMakeFiles/prefetch_migration_test.dir/prefetch_migration_test.cc.o.d"
  "prefetch_migration_test"
  "prefetch_migration_test.pdb"
  "prefetch_migration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_migration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
