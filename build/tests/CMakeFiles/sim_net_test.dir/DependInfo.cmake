
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_net_test.cc" "tests/CMakeFiles/sim_net_test.dir/sim_net_test.cc.o" "gcc" "tests/CMakeFiles/sim_net_test.dir/sim_net_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fluid_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/fluid_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/fluid_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/coord/CMakeFiles/fluid_coord.dir/DependInfo.cmake"
  "/root/repo/build/src/swap/CMakeFiles/fluid_swap.dir/DependInfo.cmake"
  "/root/repo/build/src/fluidmem/CMakeFiles/fluid_fluidmem.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/fluid_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/fluid_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
