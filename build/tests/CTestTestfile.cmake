# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_net_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/kvstore_test[1]_include.cmake")
include("/root/repo/build/tests/coord_test[1]_include.cmake")
include("/root/repo/build/tests/swap_test[1]_include.cmake")
include("/root/repo/build/tests/fluidmem_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/decorators_test[1]_include.cmake")
include("/root/repo/build/tests/prefetch_migration_test[1]_include.cmake")
include("/root/repo/build/tests/ramcloud_recovery_test[1]_include.cmake")
include("/root/repo/build/tests/quota_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/hybrid_vm_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
