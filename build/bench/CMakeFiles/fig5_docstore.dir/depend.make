# Empty dependencies file for fig5_docstore.
# This may be replaced when dependencies are built.
