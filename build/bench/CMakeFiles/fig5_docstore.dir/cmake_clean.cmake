file(REMOVE_RECURSE
  "CMakeFiles/fig5_docstore.dir/fig5_docstore.cc.o"
  "CMakeFiles/fig5_docstore.dir/fig5_docstore.cc.o.d"
  "fig5_docstore"
  "fig5_docstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_docstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
