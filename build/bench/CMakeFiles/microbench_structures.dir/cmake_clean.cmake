file(REMOVE_RECURSE
  "CMakeFiles/microbench_structures.dir/microbench_structures.cc.o"
  "CMakeFiles/microbench_structures.dir/microbench_structures.cc.o.d"
  "microbench_structures"
  "microbench_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
