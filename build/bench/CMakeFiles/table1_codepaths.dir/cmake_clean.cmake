file(REMOVE_RECURSE
  "CMakeFiles/table1_codepaths.dir/table1_codepaths.cc.o"
  "CMakeFiles/table1_codepaths.dir/table1_codepaths.cc.o.d"
  "table1_codepaths"
  "table1_codepaths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_codepaths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
