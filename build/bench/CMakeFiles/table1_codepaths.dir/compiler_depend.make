# Empty compiler generated dependencies file for table1_codepaths.
# This may be replaced when dependencies are built.
