# Empty dependencies file for fig4_graph500.
# This may be replaced when dependencies are built.
