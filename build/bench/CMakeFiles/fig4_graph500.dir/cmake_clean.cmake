file(REMOVE_RECURSE
  "CMakeFiles/fig4_graph500.dir/fig4_graph500.cc.o"
  "CMakeFiles/fig4_graph500.dir/fig4_graph500.cc.o.d"
  "fig4_graph500"
  "fig4_graph500.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_graph500.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
