file(REMOVE_RECURSE
  "CMakeFiles/fig3_pmbench_cdf.dir/fig3_pmbench_cdf.cc.o"
  "CMakeFiles/fig3_pmbench_cdf.dir/fig3_pmbench_cdf.cc.o.d"
  "fig3_pmbench_cdf"
  "fig3_pmbench_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_pmbench_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
