# Empty compiler generated dependencies file for ablation_traces.
# This may be replaced when dependencies are built.
