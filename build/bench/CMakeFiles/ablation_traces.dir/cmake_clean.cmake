file(REMOVE_RECURSE
  "CMakeFiles/ablation_traces.dir/ablation_traces.cc.o"
  "CMakeFiles/ablation_traces.dir/ablation_traces.cc.o.d"
  "ablation_traces"
  "ablation_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
