file(REMOVE_RECURSE
  "CMakeFiles/ablation_writeback.dir/ablation_writeback.cc.o"
  "CMakeFiles/ablation_writeback.dir/ablation_writeback.cc.o.d"
  "ablation_writeback"
  "ablation_writeback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_writeback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
