file(REMOVE_RECURSE
  "CMakeFiles/table2_optimizations.dir/table2_optimizations.cc.o"
  "CMakeFiles/table2_optimizations.dir/table2_optimizations.cc.o.d"
  "table2_optimizations"
  "table2_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
