# Empty dependencies file for table2_optimizations.
# This may be replaced when dependencies are built.
