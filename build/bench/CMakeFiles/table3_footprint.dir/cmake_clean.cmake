file(REMOVE_RECURSE
  "CMakeFiles/table3_footprint.dir/table3_footprint.cc.o"
  "CMakeFiles/table3_footprint.dir/table3_footprint.cc.o.d"
  "table3_footprint"
  "table3_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
