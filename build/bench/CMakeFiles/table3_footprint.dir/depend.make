# Empty dependencies file for table3_footprint.
# This may be replaced when dependencies are built.
