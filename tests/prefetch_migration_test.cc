// Tests for the fault-ahead prefetcher and remote-memory-assisted VM
// migration — the §V-A/§VII extension features.
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "fluidmem/migration.h"
#include "fluidmem/monitor.h"
#include "kvstore/ramcloud.h"
#include "mem/uffd.h"

namespace fluid::fm {
namespace {

constexpr VirtAddr kBase = 0x7f0000000000ULL;
constexpr VirtAddr PageAddr(std::size_t i) { return kBase + i * kPageSize; }

struct Rig {
  mem::FramePool pool{8192};
  kv::RamcloudStore store{kv::RamcloudConfig{.memory_cap_bytes = 1ULL << 30}};
  Monitor monitor;
  mem::UffdRegion region;
  RegionId rid;

  explicit Rig(MonitorConfig cfg, std::size_t region_pages = 2048)
      : monitor(cfg, store, pool),
        region(77, kBase, region_pages, pool),
        rid(monitor.RegisterRegion(region, /*partition=*/3)) {}

  // Populate `n` pages with markers and push them all remote.
  SimTime Populate(std::size_t n, SimTime now) {
    for (std::size_t i = 0; i < n; ++i) {
      (void)region.Access(PageAddr(i), true);
      now = monitor.HandleFault(rid, PageAddr(i), now).wake_at;
      (void)region.Access(PageAddr(i), true);
      const std::uint64_t v = 0xF00D0000 + i;
      EXPECT_TRUE(region
                      .WriteBytes(PageAddr(i) + 8,
                                  std::as_bytes(std::span{&v, 1}))
                      .ok());
    }
    now = monitor.FlushRegion(rid, now);
    return now;
  }

  // Sequential read sweep; returns (faults, end time).
  std::pair<std::uint64_t, SimTime> Sweep(std::size_t n, SimTime now) {
    std::uint64_t faults = 0;
    for (std::size_t i = 0; i < n; ++i) {
      auto a = region.Access(PageAddr(i), false);
      if (a.kind == mem::AccessKind::kUffdFault) {
        ++faults;
        auto out = monitor.HandleFault(rid, PageAddr(i), now);
        EXPECT_TRUE(out.status.ok());
        now = out.wake_at;
        (void)region.Access(PageAddr(i), false);
      }
      std::uint64_t got = 0;
      EXPECT_TRUE(region
                      .ReadBytes(PageAddr(i) + 8,
                                 std::as_writable_bytes(std::span{&got, 1}))
                      .ok());
      EXPECT_EQ(got, 0xF00D0000 + i) << "page " << i;
      now += 200;
    }
    return {faults, now};
  }
};

MonitorConfig Config(std::size_t prefetch, std::size_t lru = 256) {
  MonitorConfig cfg;
  cfg.lru_capacity_pages = lru;
  cfg.prefetch_depth = prefetch;
  return cfg;
}

// --- prefetch -------------------------------------------------------------------

TEST(Prefetch, SequentialSweepTakesFarFewerFaults) {
  Rig base{Config(0)};
  SimTime now0 = base.Populate(1024, 0);
  const auto [faults0, end0] = base.Sweep(1024, now0 + kMillisecond);

  Rig pf{Config(7)};
  SimTime now1 = pf.Populate(1024, 0);
  const auto [faults1, end1] = pf.Sweep(1024, now1 + kMillisecond);

  EXPECT_EQ(faults0, 1024u);             // every page faults without it
  EXPECT_LT(faults1, faults0 / 4);       // depth 7: ~1 fault per 8 pages
  EXPECT_GT(pf.monitor.stats().prefetched_pages, 700u);
}

TEST(Prefetch, NeverTouchesUnseenPages) {
  // First-touch semantics must be preserved: prefetching past the frontier
  // of ever-touched pages would wrongly materialise zero pages.
  Rig rig{Config(8)};
  SimTime now = rig.Populate(64, 0);  // pages 0..63 exist remotely
  // Fault page 60: prefetch may reach 61..63 but must stop there.
  (void)rig.region.Access(PageAddr(60), false);
  now = rig.monitor.HandleFault(rig.rid, PageAddr(60), now).wake_at;
  for (std::size_t i = 64; i < 72; ++i)
    EXPECT_FALSE(rig.region.IsPresent(PageAddr(i))) << "page " << i;
  EXPECT_FALSE(rig.monitor.tracker().Seen(PageRef{rig.rid, PageAddr(64)}));
}

TEST(Prefetch, RespectsLruBudget) {
  Rig rig{Config(8, /*lru=*/32)};
  SimTime now = rig.Populate(512, 0);
  (void)rig.Sweep(512, now + kMillisecond);
  EXPECT_LE(rig.monitor.ResidentPages(), 32u);
}

TEST(Prefetch, RandomWorkloadStaysCorrect) {
  Rig rig{Config(4, 64)};
  SimTime now = rig.Populate(512, 0);
  Rng rng{1234};
  for (int i = 0; i < 2000; ++i) {
    const std::size_t page = rng.NextBounded(512);
    auto a = rig.region.Access(PageAddr(page), false);
    if (a.kind == mem::AccessKind::kUffdFault) {
      auto out = rig.monitor.HandleFault(rig.rid, PageAddr(page), now);
      ASSERT_TRUE(out.status.ok());
      now = out.wake_at;
    }
    std::uint64_t got = 0;
    ASSERT_TRUE(rig.region
                    .ReadBytes(PageAddr(page) + 8,
                               std::as_writable_bytes(std::span{&got, 1}))
                    .ok());
    ASSERT_EQ(got, 0xF00D0000 + page);
    now += 300;
  }
  EXPECT_EQ(rig.monitor.stats().lost_page_errors, 0u);
}

// --- FlushRegion -----------------------------------------------------------------

TEST(FlushRegion, PushesEverythingAndOnlyThatRegion) {
  mem::FramePool pool{8192};
  kv::RamcloudStore store{kv::RamcloudConfig{.memory_cap_bytes = 1ULL << 30}};
  MonitorConfig cfg;
  cfg.lru_capacity_pages = 512;
  Monitor monitor{cfg, store, pool};
  mem::UffdRegion ra{1, kBase, 256, pool};
  mem::UffdRegion rb{2, kBase, 256, pool};
  const RegionId ida = monitor.RegisterRegion(ra, 1);
  const RegionId idb = monitor.RegisterRegion(rb, 2);
  SimTime now = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    (void)ra.Access(PageAddr(i), true);
    now = monitor.HandleFault(ida, PageAddr(i), now).wake_at;
    (void)ra.Access(PageAddr(i), true);
    (void)rb.Access(PageAddr(i), true);
    now = monitor.HandleFault(idb, PageAddr(i), now).wake_at;
    (void)rb.Access(PageAddr(i), true);
  }
  EXPECT_EQ(monitor.ResidentPages(), 128u);
  now = monitor.FlushRegion(ida, now);
  EXPECT_EQ(monitor.ResidentPages(), 64u);  // region B untouched
  EXPECT_EQ(ra.PresentPages(), 0u);
  EXPECT_EQ(rb.PresentPages(), 64u);
  // All of A's pages durable in the store under partition 1.
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_TRUE(store.Contains(1, kv::MakePageKey(PageAddr(i))));
}

// --- migration -------------------------------------------------------------------

struct TwoHosts {
  mem::FramePool pool_a{8192};
  mem::FramePool pool_b{8192};
  kv::RamcloudStore store{kv::RamcloudConfig{.memory_cap_bytes = 1ULL << 30}};
  Monitor host_a;
  Monitor host_b;

  TwoHosts()
      : host_a(MakeCfg(11), store, pool_a),
        host_b(MakeCfg(12), store, pool_b) {}

  static MonitorConfig MakeCfg(std::uint64_t seed) {
    MonitorConfig cfg;
    cfg.lru_capacity_pages = 512;
    cfg.seed = seed;
    return cfg;
  }
};

TEST(Migration, VmMovesWithDataIntact) {
  TwoHosts hosts;
  mem::UffdRegion src{100, kBase, 512, hosts.pool_a};
  const RegionId src_id = hosts.host_a.RegisterRegion(src, /*partition=*/9);

  // Run the VM on host A: 256 marked pages.
  SimTime now = 0;
  for (std::size_t i = 0; i < 256; ++i) {
    (void)src.Access(PageAddr(i), true);
    now = hosts.host_a.HandleFault(src_id, PageAddr(i), now).wake_at;
    (void)src.Access(PageAddr(i), true);
    const std::uint64_t v = 0xAB000000 + i;
    ASSERT_TRUE(src.WriteBytes(PageAddr(i) + 16,
                               std::as_bytes(std::span{&v, 1}))
                    .ok());
  }

  // Migrate to host B.
  mem::UffdRegion dst{100, kBase, 512, hosts.pool_b};
  MigrationResult mig =
      MigrateRegion(hosts.host_a, src_id, hosts.host_b, dst, 9, now);
  ASSERT_TRUE(mig.status.ok());
  EXPECT_EQ(mig.pages_flushed, 256u);
  EXPECT_EQ(mig.pages_tracked, 256u);
  EXPECT_GT(mig.downtime, 0u);
  now = mig.resumed_at;

  // The VM resumes on host B with an empty footprint; everything demand
  // faults back with correct contents.
  EXPECT_EQ(hosts.host_b.ResidentPages(), 0u);
  for (std::size_t i = 0; i < 256; ++i) {
    auto a = dst.Access(PageAddr(i), false);
    ASSERT_EQ(a.kind, mem::AccessKind::kUffdFault);
    auto out = hosts.host_b.HandleFault(mig.target_region, PageAddr(i), now);
    ASSERT_TRUE(out.status.ok()) << "page " << i;
    EXPECT_FALSE(out.first_access) << "metadata lost: page treated as new";
    now = out.wake_at;
    std::uint64_t got = 0;
    ASSERT_TRUE(dst.ReadBytes(PageAddr(i) + 16,
                              std::as_writable_bytes(std::span{&got, 1}))
                    .ok());
    EXPECT_EQ(got, 0xAB000000 + i);
  }
  // Faults on the dead source region are rejected.
  EXPECT_FALSE(hosts.host_a.HandleFault(src_id, PageAddr(0), now).status.ok());
}

TEST(Migration, DowntimeScalesWithResidentSet) {
  auto downtime_for = [](std::size_t resident) {
    TwoHosts hosts;
    mem::UffdRegion src{100, kBase, 2048, hosts.pool_a};
    const RegionId sid = hosts.host_a.RegisterRegion(src, 9);
    SimTime now = 0;
    for (std::size_t i = 0; i < resident; ++i) {
      (void)src.Access(PageAddr(i), true);
      now = hosts.host_a.HandleFault(sid, PageAddr(i), now).wake_at;
      (void)src.Access(PageAddr(i), true);
    }
    mem::UffdRegion dst{100, kBase, 2048, hosts.pool_b};
    MigrationResult mig =
        MigrateRegion(hosts.host_a, sid, hosts.host_b, dst, 9, now);
    EXPECT_TRUE(mig.status.ok());
    return mig.downtime;
  };
  const SimDuration small = downtime_for(16);
  const SimDuration large = downtime_for(500);
  EXPECT_GT(large, small * 4);
  // A pre-shrunk VM (Table III style) migrates in well under 10 ms here.
  EXPECT_LT(small, 10 * kMillisecond);
}

TEST(Migration, RejectsDirtyDestination) {
  TwoHosts hosts;
  mem::UffdRegion src{100, kBase, 64, hosts.pool_a};
  const RegionId sid = hosts.host_a.RegisterRegion(src, 9);
  mem::UffdRegion dst{100, kBase, 64, hosts.pool_b};
  ASSERT_TRUE(dst.ZeroPage(kBase).ok());  // destination not empty
  MigrationResult mig =
      MigrateRegion(hosts.host_a, sid, hosts.host_b, dst, 9, 0);
  EXPECT_EQ(mig.status.code(), StatusCode::kFailedPrecondition);
  // Source still alive.
  (void)src.Access(PageAddr(0), true);
  EXPECT_TRUE(hosts.host_a.HandleFault(sid, PageAddr(0), 0).status.ok());
}

TEST(Migration, RoundTripBackToOriginalHost) {
  TwoHosts hosts;
  mem::UffdRegion r1{100, kBase, 128, hosts.pool_a};
  const RegionId id1 = hosts.host_a.RegisterRegion(r1, 9);
  SimTime now = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    (void)r1.Access(PageAddr(i), true);
    now = hosts.host_a.HandleFault(id1, PageAddr(i), now).wake_at;
    (void)r1.Access(PageAddr(i), true);
    const std::uint64_t v = i ^ 0x5555;
    ASSERT_TRUE(r1.WriteBytes(PageAddr(i), std::as_bytes(std::span{&v, 1}))
                    .ok());
  }
  mem::UffdRegion r2{100, kBase, 128, hosts.pool_b};
  auto m1 = MigrateRegion(hosts.host_a, id1, hosts.host_b, r2, 9, now);
  ASSERT_TRUE(m1.status.ok());
  now = m1.resumed_at;
  // Touch half the pages on B (they fault in), then migrate back.
  for (std::size_t i = 0; i < 32; ++i) {
    (void)r2.Access(PageAddr(i), false);
    now = hosts.host_b.HandleFault(m1.target_region, PageAddr(i), now).wake_at;
  }
  mem::UffdRegion r3{100, kBase, 128, hosts.pool_a};
  auto m2 = MigrateRegion(hosts.host_b, m1.target_region, hosts.host_a, r3, 9,
                          now);
  ASSERT_TRUE(m2.status.ok());
  now = m2.resumed_at;
  for (std::size_t i = 0; i < 64; ++i) {
    (void)r3.Access(PageAddr(i), false);
    auto out = hosts.host_a.HandleFault(m2.target_region, PageAddr(i), now);
    ASSERT_TRUE(out.status.ok());
    now = out.wake_at;
    std::uint64_t got = 0;
    ASSERT_TRUE(r3.ReadBytes(PageAddr(i),
                             std::as_writable_bytes(std::span{&got, 1}))
                    .ok());
    EXPECT_EQ(got, i ^ 0x5555u);
  }
}

// --- pre-copy migration --------------------------------------------------------

TEST(PreCopyMigration, RoundsConvergeAndDataSurvives) {
  TwoHosts hosts;
  mem::UffdRegion src{100, kBase, 1024, hosts.pool_a};
  const RegionId sid = hosts.host_a.RegisterRegion(src, 9);
  SimTime now = 0;
  auto write_page = [&](std::size_t i, std::uint64_t v) {
    auto a = src.Access(PageAddr(i), true);
    if (a.kind == mem::AccessKind::kUffdFault) {
      now = hosts.host_a.HandleFault(sid, PageAddr(i), now).wake_at;
      (void)src.Access(PageAddr(i), true);
    }
    ASSERT_TRUE(
        src.WriteBytes(PageAddr(i), std::as_bytes(std::span{&v, 1})).ok());
  };
  for (std::size_t i = 0; i < 512; ++i) write_page(i, 0xCC000000 + i);

  PreCopyMigrator mig{hosts.host_a, sid};
  auto r1 = mig.CopyRound(now);
  ASSERT_TRUE(r1.status.ok());
  EXPECT_EQ(r1.pages_copied, 512u);  // full resident set
  now = r1.done;

  // The guest keeps running: dirties a small hot set between rounds.
  for (std::size_t i = 0; i < 32; ++i) write_page(i, 0xDD000000 + i);
  auto r2 = mig.CopyRound(now);
  ASSERT_TRUE(r2.status.ok());
  EXPECT_EQ(r2.pages_copied, 32u);  // only the re-dirtied pages
  now = r2.done;

  // A few more writes, then the switchover.
  for (std::size_t i = 0; i < 8; ++i) write_page(i, 0xEE000000 + i);
  mem::UffdRegion dst{100, kBase, 1024, hosts.pool_b};
  MigrationResult fin = mig.Finalize(hosts.host_b, dst, 9, now);
  ASSERT_TRUE(fin.status.ok());
  EXPECT_EQ(fin.pages_flushed, 8u);  // final residue only
  now = fin.resumed_at;

  for (std::size_t i = 0; i < 512; ++i) {
    (void)dst.Access(PageAddr(i), false);
    auto f = hosts.host_b.HandleFault(fin.target_region, PageAddr(i), now);
    ASSERT_TRUE(f.status.ok()) << i;
    now = f.wake_at;
    std::uint64_t got = 0;
    ASSERT_TRUE(dst.ReadBytes(PageAddr(i),
                              std::as_writable_bytes(std::span{&got, 1}))
                    .ok());
    const std::uint64_t expect = i < 8    ? 0xEE000000 + i
                                 : i < 32 ? 0xDD000000 + i
                                          : 0xCC000000 + i;
    EXPECT_EQ(got, expect) << "page " << i;
  }
}

TEST(PreCopyMigration, DowntimeBeatsPostCopyForHotVms) {
  // A large resident set with a small write rate: pre-copy's pause covers
  // only the residue, while stop-and-evict (MigrateRegion) flushes all of
  // it while paused.
  auto post_copy_downtime = [] {
    TwoHosts hosts;
    mem::UffdRegion src{100, kBase, 2048, hosts.pool_a};
    const RegionId sid = hosts.host_a.RegisterRegion(src, 9);
    SimTime now = 0;
    for (std::size_t i = 0; i < 1024; ++i) {
      (void)src.Access(PageAddr(i), true);
      now = hosts.host_a.HandleFault(sid, PageAddr(i), now).wake_at;
      (void)src.Access(PageAddr(i), true);
    }
    mem::UffdRegion dst{100, kBase, 2048, hosts.pool_b};
    auto m = MigrateRegion(hosts.host_a, sid, hosts.host_b, dst, 9, now);
    EXPECT_TRUE(m.status.ok());
    return m.downtime;
  };
  auto pre_copy_downtime = []() -> SimDuration {
    TwoHosts hosts;
    mem::UffdRegion src{100, kBase, 2048, hosts.pool_a};
    const RegionId sid = hosts.host_a.RegisterRegion(src, 9);
    SimTime now = 0;
    for (std::size_t i = 0; i < 1024; ++i) {
      (void)src.Access(PageAddr(i), true);
      now = hosts.host_a.HandleFault(sid, PageAddr(i), now).wake_at;
      (void)src.Access(PageAddr(i), true);
    }
    PreCopyMigrator mig{hosts.host_a, sid};
    auto r = mig.CopyRound(now);
    now = r.done;
    // Guest dirties 16 still-resident pages during the background copy
    // (the most recently faulted ones; older pages were FIFO-evicted).
    for (std::size_t i = 1008; i < 1024; ++i) {
      const std::uint64_t v = i;
      EXPECT_TRUE(
          src.WriteBytes(PageAddr(i), std::as_bytes(std::span{&v, 1})).ok());
    }
    mem::UffdRegion dst{100, kBase, 2048, hosts.pool_b};
    auto m = mig.Finalize(hosts.host_b, dst, 9, now);
    EXPECT_TRUE(m.status.ok());
    EXPECT_EQ(m.pages_flushed, 16u);
    return m.downtime;
  };
  EXPECT_LT(pre_copy_downtime() * 3, post_copy_downtime());
}

TEST(PreCopyMigration, CopiesMoreTotalBytesThanStopAndEvict) {
  // The classic trade-off: hot pages are copied repeatedly.
  TwoHosts hosts;
  mem::UffdRegion src{100, kBase, 512, hosts.pool_a};
  const RegionId sid = hosts.host_a.RegisterRegion(src, 9);
  SimTime now = 0;
  for (std::size_t i = 0; i < 256; ++i) {
    (void)src.Access(PageAddr(i), true);
    now = hosts.host_a.HandleFault(sid, PageAddr(i), now).wake_at;
    (void)src.Access(PageAddr(i), true);
  }
  PreCopyMigrator mig{hosts.host_a, sid};
  for (int round = 0; round < 4; ++round) {
    now = mig.CopyRound(now).done;
    for (std::size_t i = 0; i < 64; ++i) {  // same hot pages every round
      const std::uint64_t v = round;
      (void)src.WriteBytes(PageAddr(i), std::as_bytes(std::span{&v, 1}));
    }
  }
  mem::UffdRegion dst{100, kBase, 512, hosts.pool_b};
  auto m = mig.Finalize(hosts.host_b, dst, 9, now);
  ASSERT_TRUE(m.status.ok());
  EXPECT_GT(mig.total_pages_copied(), 256u + 3 * 64u - 1);
}

}  // namespace
}  // namespace fluid::fm
