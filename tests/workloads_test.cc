// Tests for the workloads: pmbench, Graph500, the document store + YCSB,
// and the Table III responsiveness probes — including cross-mechanism
// properties run over all six testbed backends.
#include <gtest/gtest.h>

#include <set>

#include "workloads/docstore.h"
#include "workloads/graph500.h"
#include "workloads/pmbench.h"
#include "workloads/responsiveness.h"
#include "workloads/testbed.h"

namespace fluid::wl {
namespace {

// --- pmbench over every backend ---------------------------------------------------

class PmbenchBackendTest : public ::testing::TestWithParam<Backend> {};

TEST_P(PmbenchBackendTest, VerifiesDataAndRecordsLatencies) {
  TestbedConfig cfg;
  cfg.local_dram_pages = 256;
  cfg.vm_app_pages = 1024;
  Testbed bed{GetParam(), cfg};
  SimTime now = bed.Boot(0);

  PmbenchConfig pm;
  pm.base = bed.layout().app_base;
  pm.wss_pages = 1024;  // 4x local DRAM, as in the paper
  pm.duration = 200 * kMillisecond;
  PmbenchResult r = RunPmbench(bed.memory(), pm, now);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.verify_failures, 0u) << "paging lost or corrupted data";
  EXPECT_GT(r.accesses, 1000u);
  EXPECT_GT(r.read_latency.Count(), 0u);
  EXPECT_GT(r.write_latency.Count(), 0u);
  EXPECT_GT(r.MeanUs(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, PmbenchBackendTest,
    ::testing::Values(Backend::kFluidDram, Backend::kFluidRamcloud,
                      Backend::kFluidMemcached, Backend::kSwapDram,
                      Backend::kSwapNvmeof, Backend::kSwapSsd),
    [](const auto& info) {
      std::string n{BackendName(info.param)};
      for (char& c : n)
        if (c == ' ') c = '_';
      return n;
    });

TEST(Pmbench, BackendOrderingMatchesFigureThree) {
  // Average access latency: FluidMem RAMCloud ~ FluidMem DRAM <
  // Swap NVMeoF < Swap SSD; FluidMem RAMCloud beats Swap NVMeoF by a
  // meaningful margin (the paper reports 40%).
  auto mean_for = [](Backend b) {
    TestbedConfig cfg;
    cfg.local_dram_pages = 256;
    cfg.vm_app_pages = 1024;
    Testbed bed{b, cfg};
    SimTime now = bed.Boot(0);
    PmbenchConfig pm;
    pm.base = bed.layout().app_base;
    pm.wss_pages = 1024;
    pm.duration = 300 * kMillisecond;
    PmbenchResult r = RunPmbench(bed.memory(), pm, now);
    EXPECT_TRUE(r.status.ok());
    EXPECT_EQ(r.verify_failures, 0u);
    return r.MeanUs();
  };
  const double fluid_rc = mean_for(Backend::kFluidRamcloud);
  const double swap_nvmeof = mean_for(Backend::kSwapNvmeof);
  const double swap_ssd = mean_for(Backend::kSwapSsd);
  EXPECT_LT(fluid_rc, swap_nvmeof * 0.8);
  EXPECT_LT(swap_nvmeof, swap_ssd);
}

TEST(Pmbench, DeterministicForFixedSeed) {
  auto run = [] {
    TestbedConfig cfg;
    cfg.local_dram_pages = 128;
    cfg.vm_app_pages = 512;
    Testbed bed{Backend::kFluidRamcloud, cfg};
    SimTime now = bed.Boot(0);
    PmbenchConfig pm;
    pm.base = bed.layout().app_base;
    pm.wss_pages = 512;
    pm.duration = 50 * kMillisecond;
    return RunPmbench(bed.memory(), pm, now);
  };
  const PmbenchResult a = run();
  const PmbenchResult b = run();
  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_DOUBLE_EQ(a.MeanUs(), b.MeanUs());
  EXPECT_EQ(a.finished, b.finished);
}

// --- Graph500 ---------------------------------------------------------------------

TEST(Graph500, CsrIsWellFormed) {
  Graph500Config cfg;
  cfg.scale = 10;
  const CsrGraph g = BuildGraph(cfg);
  EXPECT_EQ(g.num_vertices, 1024);
  ASSERT_EQ(g.xadj.size(), 1025u);
  // xadj monotone; adjacency totals twice the kept edges.
  for (std::size_t v = 1; v < g.xadj.size(); ++v)
    EXPECT_GE(g.xadj[v], g.xadj[v - 1]);
  EXPECT_EQ(static_cast<std::int64_t>(g.adjncy.size()), g.xadj.back());
  // Every adjacency entry is a valid vertex.
  for (std::int64_t v : g.adjncy) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, g.num_vertices);
  }
}

TEST(Graph500, CsrIsSymmetric) {
  Graph500Config cfg;
  cfg.scale = 8;
  const CsrGraph g = BuildGraph(cfg);
  // Count (u,v) and (v,u) occurrences — an undirected CSR has equal counts.
  std::map<std::pair<std::int64_t, std::int64_t>, int> dir;
  for (std::int64_t u = 0; u < g.num_vertices; ++u)
    for (auto e = g.xadj[u]; e < g.xadj[u + 1]; ++e)
      ++dir[{u, g.adjncy[static_cast<std::size_t>(e)]}];
  for (const auto& [uv, n] : dir) {
    auto it = dir.find({uv.second, uv.first});
    ASSERT_NE(it, dir.end());
    EXPECT_EQ(it->second, n);
  }
}

TEST(Graph500, BfsProducesPositiveTeps) {
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.bfs_roots = 4;
  const CsrGraph g = BuildGraph(cfg);

  TestbedConfig tb;
  tb.local_dram_pages = 4096;  // everything local
  tb.vm_app_pages = g.total_pages + 64;
  Testbed bed{Backend::kFluidDram, tb};
  Graph500Config run_cfg = cfg;
  run_cfg.base = bed.layout().app_base;
  CsrGraph placed = g;
  placed.base = run_cfg.base;
  placed.xadj_base += run_cfg.base - g.base;
  placed.adj_base += run_cfg.base - g.base;
  placed.parent_base += run_cfg.base - g.base;
  placed.queue_base += run_cfg.base - g.base;

  SimTime now = bed.Boot(0);
  now = PopulateGraph(bed.memory(), placed, now);
  Graph500Result r = RunGraph500(bed.memory(), placed, run_cfg, now);
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(r.trials.size(), 4u);
  for (const BfsTrial& t : r.trials) {
    EXPECT_GT(t.edges_traversed, 0);
    EXPECT_GT(t.Teps(), 0.0);
  }
  EXPECT_GT(r.HarmonicMeanTeps(), 0.0);
}

TEST(Graph500, HarmonicMeanIsBelowArithmetic) {
  Graph500Result r;
  r.trials.push_back(BfsTrial{0, 1000, 1000});   // 1e9 teps
  r.trials.push_back(BfsTrial{1, 1000, 10000});  // 1e8 teps
  const double hm = r.HarmonicMeanTeps();
  EXPECT_GT(hm, 0.0);
  EXPECT_LT(hm, (1e9 + 1e8) / 2);
}

// --- docstore / YCSB -----------------------------------------------------------------

TEST(Docstore, ReadsVerifyAgainstDisk) {
  TestbedConfig tb;
  tb.local_dram_pages = 512;
  tb.vm_app_pages = 2048;
  Testbed bed{Backend::kFluidRamcloud, tb};
  auto disk = blk::MakeSsdDevice(8192);

  DocstoreConfig cfg;
  cfg.record_count = 4000;
  cfg.cache_bytes = 1ULL << 20;  // 1024 records
  cfg.cache_base = bed.layout().app_base;
  cfg.heap_pages = 128;
  cfg.pagecache_pages = 128;
  DocStore store{cfg, bed.memory(), disk};
  ASSERT_LE(store.ArenaPages(), tb.vm_app_pages);
  SimTime now = bed.Boot(0);
  now = store.Load(now);

  // Read a spread of records; every one must verify its stamp (checked
  // internally — errors surface as !ok).
  for (std::uint64_t id = 0; id < 4000; id += 37) {
    auto r = store.Read(id, now);
    ASSERT_TRUE(r.status.ok()) << "record " << id;
    now = r.done;
  }
  EXPECT_GT(store.CacheMisses(), 0u);
}

TEST(Docstore, CacheHitsAreCheaperThanMisses) {
  TestbedConfig tb;
  tb.local_dram_pages = 2048;
  tb.vm_app_pages = 4096;
  Testbed bed{Backend::kFluidDram, tb};
  auto disk = blk::MakeSsdDevice(8192);
  DocstoreConfig cfg;
  cfg.record_count = 1000;
  cfg.cache_bytes = 2ULL << 20;
  cfg.cache_base = bed.layout().app_base;
  cfg.heap_pages = 128;
  cfg.pagecache_pages = 128;
  DocStore store{cfg, bed.memory(), disk};
  SimTime now = bed.Boot(0);
  now = store.Load(now);

  auto miss = store.Read(1, now);
  ASSERT_TRUE(miss.status.ok());
  EXPECT_FALSE(miss.cache_hit);
  auto hit = store.Read(1, miss.done);
  ASSERT_TRUE(hit.status.ok());
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_LT(hit.done - miss.done, miss.done - now);
}

TEST(Docstore, LruEvictionBoundsCache) {
  TestbedConfig tb;
  tb.local_dram_pages = 2048;
  tb.vm_app_pages = 4096;
  Testbed bed{Backend::kFluidDram, tb};
  auto disk = blk::MakeSsdDevice(8192);
  DocstoreConfig cfg;
  cfg.record_count = 2000;
  cfg.cache_bytes = 256 * 1024;  // 256 records
  cfg.cache_base = bed.layout().app_base;
  cfg.heap_pages = 128;
  cfg.pagecache_pages = 128;
  DocStore store{cfg, bed.memory(), disk};
  SimTime now = bed.Boot(0);
  now = store.Load(now);
  for (std::uint64_t id = 0; id < 2000; ++id) now = store.Read(id, now).done;
  EXPECT_LE(store.CacheRecords(), store.CacheCapacityRecords());
}

TEST(Ycsb, TimelineAndHistogramPopulated) {
  TestbedConfig tb;
  tb.local_dram_pages = 512;
  tb.vm_app_pages = 2048;
  Testbed bed{Backend::kFluidRamcloud, tb};
  auto disk = blk::MakeSsdDevice(8192);
  DocstoreConfig cfg;
  cfg.record_count = 4000;
  cfg.cache_bytes = 1ULL << 20;
  cfg.cache_base = bed.layout().app_base;
  cfg.heap_pages = 128;
  cfg.pagecache_pages = 128;
  DocStore store{cfg, bed.memory(), disk};
  SimTime now = bed.Boot(0);
  now = store.Load(now);

  YcsbConfig yc;
  yc.operations = 5000;
  yc.timeline_buckets = 10;
  YcsbResult r = RunYcsbC(store, yc, now);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.latency.Count(), 5000u);
  EXPECT_GE(r.timeline.size(), 10u);
  EXPECT_EQ(r.cache_hits + r.cache_misses, 5000u);
  // Zipf(0.99) on a cache 1/4 the dataset: hits must dominate misses.
  EXPECT_GT(r.cache_hits, r.cache_misses);
}

// --- responsiveness (Table III) -------------------------------------------------------

struct ResponsivenessRig {
  TestbedConfig tb;
  Testbed bed;
  SimTime now;

  ResponsivenessRig()
      : tb(MakeTb()), bed(Backend::kFluidRamcloud, tb), now(bed.Boot(0)) {}

  static TestbedConfig MakeTb() {
    TestbedConfig tb;
    tb.local_dram_pages = 1024;
    tb.vm_app_pages = 512;
    return tb;
  }

  OpOutcome RunAt(std::size_t footprint_pages, const GuestOp& op) {
    now = bed.fluid_vm()->SetLocalFootprint(footprint_pages, now);
    return RunGuestOp(bed.memory(), op, now);
  }
};

TEST(Responsiveness, SshWorksAtItsWorkingSetSize) {
  ResponsivenessRig rig;
  const auto op = SshLoginOp(rig.bed.layout().app_base);
  OpOutcome out = rig.RunAt(180, op);
  EXPECT_TRUE(out.responded) << "elapsed " << ToMicros(out.elapsed) << "us";
  EXPECT_FALSE(out.deadlocked);
}

TEST(Responsiveness, SshTimesOutBelowWorkingSet) {
  ResponsivenessRig rig;
  const auto op = SshLoginOp(rig.bed.layout().app_base);
  OpOutcome out = rig.RunAt(80, op);
  EXPECT_FALSE(out.responded);
  EXPECT_FALSE(out.deadlocked);
}

TEST(Responsiveness, IcmpWorksAtEightyPagesButNotBelow) {
  ResponsivenessRig rig;
  const auto op = IcmpEchoOp(rig.bed.layout().app_base);
  EXPECT_TRUE(rig.RunAt(80, op).responded);
  EXPECT_FALSE(rig.RunAt(40, op).responded);
}

TEST(Responsiveness, RevivedByIncreasingFootprint) {
  ResponsivenessRig rig;
  const auto op = IcmpEchoOp(rig.bed.layout().app_base);
  ASSERT_FALSE(rig.RunAt(40, op).responded);
  EXPECT_TRUE(rig.RunAt(1024, op).responded);
}

TEST(Responsiveness, OnePageDeadlocksUnderKvm) {
  ResponsivenessRig rig;
  const auto op = IcmpEchoOp(rig.bed.layout().app_base);
  OpOutcome out = rig.RunAt(1, op);
  EXPECT_TRUE(out.deadlocked);
}

TEST(Responsiveness, OnePageSurvivesUnderFullVirtualization) {
  TestbedConfig tb = ResponsivenessRig::MakeTb();
  tb.monitor.kvm_mode = false;  // QEMU TCG
  Testbed bed{Backend::kFluidRamcloud, tb};
  SimTime now = bed.Boot(0);
  now = bed.fluid_vm()->SetLocalFootprint(1, now);
  const auto op = IcmpEchoOp(bed.layout().app_base);
  OpOutcome out = RunGuestOp(bed.memory(), op, now);
  EXPECT_FALSE(out.deadlocked);   // functional...
  EXPECT_FALSE(out.responded);    // ...but non-responsive (Table III)
  // Revivable: raise the footprint and it answers again.
  now = bed.fluid_vm()->SetLocalFootprint(1024, now + out.elapsed);
  EXPECT_TRUE(RunGuestOp(bed.memory(), op, now).responded);
}

}  // namespace
}  // namespace fluid::wl
