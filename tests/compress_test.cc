// Tests for the page compression codec and CRC-32C (§III's compression
// policy substrate), including property-style round-trip sweeps over
// adversarial page contents.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <memory>
#include <vector>

#include "common/compress.h"
#include "common/rng.h"
#include "common/types.h"
#include "kvstore/decorators.h"
#include "kvstore/integrity.h"
#include "kvstore/key_codec.h"

namespace fluid {
namespace {

using Page = std::array<std::byte, kPageSize>;

Page MakePage(void (*fill)(Page&)) {
  Page p{};
  fill(p);
  return p;
}

void RoundTrip(const Page& in, std::size_t* compressed_size = nullptr) {
  std::vector<std::byte> comp;
  const std::size_t n = Compress(in, comp);
  ASSERT_EQ(n, comp.size());
  ASSERT_LE(n, kPageSize + 1) << "must never expand beyond stored form";
  Page out{};
  out.fill(std::byte{0xEE});
  ASSERT_TRUE(Decompress(comp, out).ok());
  EXPECT_EQ(0, std::memcmp(in.data(), out.data(), kPageSize));
  if (compressed_size != nullptr) *compressed_size = n;
}

// --- CRC-32C -------------------------------------------------------------------

TEST(Crc32c, KnownVector) {
  // CRC-32C("123456789") = 0xE3069283 (RFC 3720 test vector).
  const char* s = "123456789";
  const std::uint32_t crc =
      Crc32c(std::as_bytes(std::span{s, 9}));
  EXPECT_EQ(crc, 0xE3069283u);
}

TEST(Crc32c, EmptyIsZero) {
  EXPECT_EQ(Crc32c({}), 0u);
}

TEST(Crc32c, DetectsSingleBitFlips) {
  Rng rng{71};
  Page p{};
  for (auto& b : p) b = static_cast<std::byte>(rng());
  const std::uint32_t base = Crc32c(p);
  for (int trial = 0; trial < 64; ++trial) {
    Page q = p;
    const std::size_t byte = rng.NextBounded(kPageSize);
    const int bit = static_cast<int>(rng.NextBounded(8));
    q[byte] ^= static_cast<std::byte>(1 << bit);
    EXPECT_NE(Crc32c(q), base);
  }
}

// --- codec basics -----------------------------------------------------------------

TEST(Compress, ZeroPageShrinksToOneByte) {
  Page zero{};
  std::vector<std::byte> comp;
  EXPECT_EQ(Compress(zero, comp), 1u);
  Page out{};
  out.fill(std::byte{0xAB});
  ASSERT_TRUE(Decompress(comp, out).ok());
  EXPECT_TRUE(IsAllZero(out));
}

TEST(Compress, ConstantFillCompressesHard) {
  std::size_t n = 0;
  RoundTrip(MakePage([](Page& p) { p.fill(std::byte{0x5A}); }), &n);
  EXPECT_LT(n, 200u);  // pure RLE-style content
}

TEST(Compress, RepeatingPatternCompresses) {
  std::size_t n = 0;
  RoundTrip(MakePage([](Page& p) {
              for (std::size_t i = 0; i < p.size(); ++i)
                p[i] = static_cast<std::byte>("ABCDEFGH"[i % 8]);
            }),
            &n);
  EXPECT_LT(n, kPageSize / 4);
}

TEST(Compress, TextLikeContentCompresses) {
  std::size_t n = 0;
  RoundTrip(MakePage([](Page& p) {
              const char* words[] = {"page ", "fault ", "memory ",
                                     "remote ", "monitor "};
              std::size_t pos = 0;
              std::size_t w = 0;
              while (pos < p.size()) {
                const char* s = words[w++ % 5];
                const std::size_t len =
                    std::min(std::strlen(s), p.size() - pos);
                std::memcpy(p.data() + pos, s, len);
                pos += len;
              }
            }),
            &n);
  EXPECT_LT(n, kPageSize / 2);
}

TEST(Compress, RandomDataFallsBackToStored) {
  Rng rng{72};
  std::size_t n = 0;
  Page p{};
  for (auto& b : p) b = static_cast<std::byte>(rng());
  RoundTrip(p, &n);
  EXPECT_EQ(n, kPageSize + 1);  // stored form: tag + raw
}

TEST(Compress, SparsePageTypicalOfHeap) {
  // A mostly-zero page with a few live 8-byte values — the common case for
  // freshly-touched VM heap pages.
  std::size_t n = 0;
  RoundTrip(MakePage([](Page& p) {
              for (std::size_t i = 0; i < 16; ++i) {
                const std::uint64_t v = 0xdead0000 + i;
                std::memcpy(p.data() + i * 256, &v, 8);
              }
            }),
            &n);
  EXPECT_LT(n, 600u);
}

// --- decoder robustness --------------------------------------------------------------

TEST(Decompress, RejectsEmptyInput) {
  Page out{};
  EXPECT_FALSE(Decompress({}, out).ok());
}

TEST(Decompress, RejectsUnknownTag) {
  std::array<std::byte, 4> garbage{std::byte{9}, std::byte{0}, std::byte{0},
                                   std::byte{0}};
  Page out{};
  EXPECT_FALSE(Decompress(garbage, out).ok());
}

TEST(Decompress, RejectsStoredSizeMismatch) {
  std::vector<std::byte> bad{std::byte{0}, std::byte{1}, std::byte{2}};
  Page out{};
  EXPECT_EQ(Decompress(bad, out).code(), StatusCode::kInvalidArgument);
}

TEST(Decompress, SurvivesTruncationAndBitFlips) {
  // Property: no corrupted input may crash, read or write out of bounds
  // (ASan/UBSan builds enforce this), or return anything but a clean
  // verdict — Ok (the flip happened to decode) or InvalidArgument. Any
  // other code would leak a malformed-input failure into the retryable/
  // data-loss paths above.
  Rng rng{73};
  Page p{};
  for (std::size_t i = 0; i < p.size(); ++i)
    p[i] = static_cast<std::byte>((i / 64) & 0xff);
  std::vector<std::byte> comp;
  Compress(p, comp);
  Page out{};
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::byte> bad = comp;
    if (trial % 2 == 0 && bad.size() > 2) {
      bad.resize(1 + rng.NextBounded(bad.size() - 1));  // truncate
    } else {
      bad[rng.NextBounded(bad.size())] ^=
          static_cast<std::byte>(1 + rng.NextBounded(255));
    }
    const Status s = Decompress(bad, out);
    ASSERT_TRUE(s.ok() || s.code() == StatusCode::kInvalidArgument)
        << "trial " << trial << ": " << s.ToString();
  }
}

TEST(Decompress, SurvivesCorruptLzStream) {
  // Same property aimed squarely at the LZ decoder (tag 1): random pages
  // fall back to stored form, so the generic fuzz above mostly exercises
  // tag 0. Compressible content + heavier mutation (flips in the match
  // offset/length fields, truncation mid-token, appended garbage) walks
  // the LZ copy loops with hostile inputs.
  Rng rng{74};
  Page p{};
  std::size_t pos = 0;
  while (pos < p.size()) {
    const auto run = 1 + rng.NextBounded(24);
    const auto v = static_cast<std::byte>(rng());
    for (std::size_t k = 0; k < run && pos < p.size(); ++k) p[pos++] = v;
  }
  std::vector<std::byte> comp;
  Compress(p, comp);
  ASSERT_GT(comp.size(), 1u);
  ASSERT_EQ(comp[0], std::byte{1}) << "expected the LZ form";
  Page out{};
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<std::byte> bad = comp;
    switch (trial % 3) {
      case 0:
        bad.resize(1 + rng.NextBounded(bad.size() - 1));
        break;
      case 1:
        bad[1 + rng.NextBounded(bad.size() - 1)] ^=
            static_cast<std::byte>(1 + rng.NextBounded(255));
        break;
      default:
        for (int k = 0; k < 4; ++k)
          bad.push_back(static_cast<std::byte>(rng()));
        break;
    }
    const Status s = Decompress(bad, out);
    ASSERT_TRUE(s.ok() || s.code() == StatusCode::kInvalidArgument)
        << "trial " << trial << ": " << s.ToString();
  }
}

// --- composition with the integrity envelope -------------------------------------------

TEST(CompressedIntegrity, EnvelopeCoversTheCompressedPath) {
  // IntegrityStore(CompressedStore): the envelope is computed over the
  // UNCOMPRESSED page, so it end-to-end-verifies the whole
  // compress -> store -> decompress round trip.
  kv::CompressedStoreConfig cc;
  cc.seed = 91;
  auto comp_owned = std::make_unique<kv::CompressedStore>(cc);
  kv::CompressedStore* comp = comp_owned.get();
  kv::IntegrityStore store(std::move(comp_owned));

  SimTime now = 0;
  Page page{};
  for (std::size_t i = 0; i < 16; ++i) {
    const std::uint64_t v = 0xabc0 + i;
    std::memcpy(page.data() + i * 256, &v, 8);
  }
  const kv::Key key = kv::MakePageKey(0x5000'0000ULL);
  now = store.Put(1, key, page, now).complete_at;

  // Clean round trip decompresses and verifies.
  Page out{};
  ASSERT_TRUE(store.Get(1, key, out, now).status.ok());
  EXPECT_EQ(0, std::memcmp(out.data(), page.data(), kPageSize));
  EXPECT_EQ(store.integrity_stats().verified_reads, 1u);

  // Rewrite the object directly in the compressed store (bypassing the
  // envelope) with different — internally consistent — bytes: the inner
  // store's own CRC passes, only the envelope can tell the page is wrong.
  Page other = page;
  other[0] ^= std::byte{0x01};
  now = comp->Put(1, key, other, now).complete_at;
  const auto r = store.Get(1, key, out, now);
  EXPECT_EQ(r.status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(comp->ChecksumFailures(), 0u);
  EXPECT_EQ(store.integrity_stats().corruptions_detected, 1u);
}

// --- property sweep over structured content -------------------------------------------

struct PatternCase {
  const char* name;
  std::uint64_t seed;
  int run_length;  // average run of identical bytes
};

class CompressPropertyTest : public ::testing::TestWithParam<PatternCase> {};

TEST_P(CompressPropertyTest, RoundTripsExactly) {
  const auto& param = GetParam();
  Rng rng{param.seed};
  for (int trial = 0; trial < 50; ++trial) {
    Page p{};
    std::size_t pos = 0;
    while (pos < p.size()) {
      const auto run = 1 + rng.NextBounded(
                               static_cast<std::uint64_t>(param.run_length) *
                               2);
      const auto value = static_cast<std::byte>(rng());
      for (std::size_t k = 0; k < run && pos < p.size(); ++k)
        p[pos++] = value;
    }
    RoundTrip(p);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RunLengths, CompressPropertyTest,
    ::testing::Values(PatternCase{"short_runs", 81, 2},
                      PatternCase{"medium_runs", 82, 16},
                      PatternCase{"long_runs", 83, 200},
                      PatternCase{"page_runs", 84, 2000}),
    [](const auto& info) { return std::string{info.param.name}; });

TEST(Compress, CompressionRatioImprovesWithRedundancy) {
  Rng rng{85};
  auto make = [&](int run) {
    Page p{};
    std::size_t pos = 0;
    while (pos < p.size()) {
      const auto r = 1 + rng.NextBounded(static_cast<std::uint64_t>(run));
      const auto v = static_cast<std::byte>(rng());
      for (std::size_t k = 0; k < r && pos < p.size(); ++k) p[pos++] = v;
    }
    std::vector<std::byte> comp;
    return Compress(p, comp);
  };
  EXPECT_GT(make(2), make(64));
  EXPECT_GT(make(64), make(1024));
}

}  // namespace
}  // namespace fluid
