// Tests for RAMCloud durability: backup mirroring, master crash recovery by
// log replay, and the monitor surviving a remote-memory-server crash.
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "fluidmem/monitor.h"
#include "kvstore/ramcloud.h"
#include "mem/uffd.h"

namespace fluid::kv {
namespace {

constexpr VirtAddr kBase = 0x7f0000000000ULL;
constexpr Key KeyAt(std::uint64_t i) {
  return MakePageKey(kBase + i * kPageSize);
}

std::array<std::byte, kPageSize> PatternPage(std::uint32_t seed) {
  std::array<std::byte, kPageSize> page;
  for (std::size_t i = 0; i < kPageSize; ++i)
    page[i] = static_cast<std::byte>((seed * 131 + i * 7) & 0xff);
  return page;
}

RamcloudConfig DurableConfig(int backups = 2) {
  RamcloudConfig cfg;
  cfg.memory_cap_bytes = 64ULL << 20;
  cfg.backup_count = backups;
  return cfg;
}

TEST(RamcloudRecovery, BackupsMirrorEveryWrite) {
  RamcloudStore store{DurableConfig()};
  SimTime now = 0;
  for (std::uint32_t i = 0; i < 10; ++i)
    now = store.Put(1, KeyAt(i), PatternPage(i), now).complete_at;
  EXPECT_EQ(store.BackupRecordCount(), 10u);
}

TEST(RamcloudRecovery, WritesWaitForBackupAcks) {
  RamcloudStore plain{RamcloudConfig{}};
  RamcloudStore durable{DurableConfig(3)};
  double t_plain = 0, t_durable = 0;
  SimTime now = 0;
  for (std::uint32_t i = 0; i < 200; ++i) {
    auto a = plain.Put(1, KeyAt(i), PatternPage(i), now);
    auto b = durable.Put(1, KeyAt(i), PatternPage(i), now);
    t_plain += static_cast<double>(a.complete_at - now);
    t_durable += static_cast<double>(b.complete_at - now);
    now += 100 * kMicrosecond;
  }
  // The paper's reasoning for leaving replication off: writes get slower.
  EXPECT_GT(t_durable, t_plain * 1.3);
}

TEST(RamcloudRecovery, CrashLosesEverythingUntilRecovered) {
  RamcloudStore store{DurableConfig()};
  SimTime now = 0;
  for (std::uint32_t i = 0; i < 20; ++i)
    now = store.Put(1, KeyAt(i), PatternPage(i), now).complete_at;
  store.CrashMaster();
  EXPECT_TRUE(store.crashed());
  EXPECT_EQ(store.ObjectCount(), 0u);
  std::array<std::byte, kPageSize> out{};
  EXPECT_EQ(store.Get(1, KeyAt(0), out, now).status.code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(store.Put(1, KeyAt(0), PatternPage(0), now).status.code(),
            StatusCode::kUnavailable);

  auto rec = store.Recover(now);
  ASSERT_TRUE(rec.ok());
  EXPECT_GT(*rec, now);
  EXPECT_EQ(store.ObjectCount(), 20u);
  for (std::uint32_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(store.Get(1, KeyAt(i), out, *rec).status.ok()) << i;
    const auto expect = PatternPage(i);
    EXPECT_EQ(0, std::memcmp(out.data(), expect.data(), kPageSize));
  }
}

TEST(RamcloudRecovery, ReplayHonoursOverwritesAndTombstones) {
  RamcloudStore store{DurableConfig()};
  SimTime now = 0;
  now = store.Put(1, KeyAt(0), PatternPage(1), now).complete_at;
  now = store.Put(1, KeyAt(0), PatternPage(2), now).complete_at;  // overwrite
  now = store.Put(1, KeyAt(1), PatternPage(3), now).complete_at;
  now = store.Remove(1, KeyAt(1), now).complete_at;               // tombstone
  now = store.Put(1, KeyAt(2), PatternPage(4), now).complete_at;
  now = store.DropPartition(2, now).complete_at;  // no-op tablet

  store.CrashMaster();
  auto rec = store.Recover(now);
  ASSERT_TRUE(rec.ok());
  std::array<std::byte, kPageSize> out{};
  ASSERT_TRUE(store.Get(1, KeyAt(0), out, *rec).status.ok());
  const auto latest = PatternPage(2);
  EXPECT_EQ(0, std::memcmp(out.data(), latest.data(), kPageSize));
  EXPECT_EQ(store.Get(1, KeyAt(1), out, *rec).status.code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(store.Contains(1, KeyAt(2)));
  EXPECT_EQ(store.ObjectCount(), 2u);
}

TEST(RamcloudRecovery, DropPartitionStaysDroppedAcrossCrash) {
  RamcloudStore store{DurableConfig()};
  SimTime now = 0;
  now = store.Put(5, KeyAt(0), PatternPage(1), now).complete_at;
  now = store.Put(6, KeyAt(0), PatternPage(2), now).complete_at;
  now = store.DropPartition(5, now).complete_at;
  store.CrashMaster();
  ASSERT_TRUE(store.Recover(now).ok());
  EXPECT_FALSE(store.Contains(5, KeyAt(0)));
  EXPECT_TRUE(store.Contains(6, KeyAt(0)));
}

TEST(RamcloudRecovery, SurvivesMinorityBackupLossOnly) {
  RamcloudStore store{DurableConfig(2)};
  SimTime now = 0;
  for (std::uint32_t i = 0; i < 8; ++i)
    now = store.Put(1, KeyAt(i), PatternPage(i), now).complete_at;
  store.CrashBackup(0);
  store.CrashMaster();
  ASSERT_TRUE(store.Recover(now).ok());  // backup 1 still has the log
  EXPECT_EQ(store.ObjectCount(), 8u);

  store.CrashBackup(1);
  store.CrashMaster();
  auto rec = store.Recover(now);
  EXPECT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kUnavailable);
}

TEST(RamcloudRecovery, NoBackupsMeansNoRecovery) {
  RamcloudStore store{RamcloudConfig{}};  // replication off (paper default)
  SimTime now = store.Put(1, KeyAt(0), PatternPage(1), 0).complete_at;
  store.CrashMaster();
  EXPECT_FALSE(store.Recover(now).ok());
}

TEST(RamcloudRecovery, RecoveryTimeScalesWithLogSize) {
  auto recovery_time = [](std::uint32_t objects) {
    RamcloudStore store{DurableConfig()};
    SimTime now = 0;
    for (std::uint32_t i = 0; i < objects; ++i)
      now = store.Put(1, KeyAt(i), PatternPage(i), now).complete_at;
    store.CrashMaster();
    auto rec = store.Recover(now);
    EXPECT_TRUE(rec.ok());
    return *rec - now;
  };
  EXPECT_GT(recovery_time(400), recovery_time(50) * 4);
}

TEST(RamcloudRecovery, MonitorRidesThroughMasterCrash) {
  // A VM's remote pages survive the memory server crashing and recovering:
  // faults during the outage fail cleanly, then everything reads back.
  mem::FramePool pool{2048};
  RamcloudStore store{DurableConfig()};
  fm::MonitorConfig cfg;
  cfg.lru_capacity_pages = 16;
  fm::Monitor monitor{cfg, store, pool};
  mem::UffdRegion region{1, kBase, 128, pool};
  const fm::RegionId rid = monitor.RegisterRegion(region, 3);
  SimTime now = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    (void)region.Access(kBase + i * kPageSize, true);
    now = monitor.HandleFault(rid, kBase + i * kPageSize, now).wake_at;
    (void)region.Access(kBase + i * kPageSize, true);
    const std::uint64_t v = i + 7;
    ASSERT_TRUE(region
                    .WriteBytes(kBase + i * kPageSize,
                                std::as_bytes(std::span{&v, 1}))
                    .ok());
  }
  now = monitor.DrainWrites(now);

  store.CrashMaster();
  // A fault during the outage fails but does not wedge the monitor.
  (void)region.Access(kBase, false);
  auto during = monitor.HandleFault(rid, kBase, now);
  EXPECT_FALSE(during.status.ok());
  auto rec = store.Recover(now);
  ASSERT_TRUE(rec.ok());
  now = *rec;

  for (std::size_t i = 0; i < 64; ++i) {
    auto a = region.Access(kBase + i * kPageSize, false);
    if (a.kind == mem::AccessKind::kUffdFault) {
      auto out = monitor.HandleFault(rid, kBase + i * kPageSize, now);
      ASSERT_TRUE(out.status.ok()) << i;
      now = out.wake_at;
    }
    std::uint64_t got = 0;
    ASSERT_TRUE(region
                    .ReadBytes(kBase + i * kPageSize,
                               std::as_writable_bytes(std::span{&got, 1}))
                    .ok());
    EXPECT_EQ(got, i + 7);
  }
}

}  // namespace
}  // namespace fluid::kv
