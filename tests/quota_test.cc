// Tests for per-region DRAM quotas: multi-tenant fairness on the shared
// monitor LRU (a provider policy built on §III's flexibility argument).
#include <gtest/gtest.h>

#include "fluidmem/monitor.h"
#include "kvstore/local_store.h"
#include "mem/uffd.h"

namespace fluid::fm {
namespace {

constexpr VirtAddr kBase = 0x7f0000000000ULL;
constexpr VirtAddr PageAddr(std::size_t i) { return kBase + i * kPageSize; }

struct TwoTenants {
  mem::FramePool pool{8192};
  kv::LocalDramStore store;
  Monitor monitor;
  mem::UffdRegion a{1, kBase, 1024, pool};
  mem::UffdRegion b{2, kBase, 1024, pool};
  RegionId ida, idb;

  explicit TwoTenants(std::size_t lru = 128) : TwoTenants(MakeCfg(lru)) {}

  explicit TwoTenants(MonitorConfig cfg)
      : monitor(cfg, store, pool),
        ida(monitor.RegisterRegion(a, 1)),
        idb(monitor.RegisterRegion(b, 2)) {}

  static MonitorConfig MakeCfg(std::size_t lru) {
    MonitorConfig cfg;
    cfg.lru_capacity_pages = lru;
    return cfg;
  }

  SimTime Touch(mem::UffdRegion& r, RegionId id, std::size_t page,
                SimTime now) {
    auto acc = r.Access(PageAddr(page), true);
    if (acc.kind == mem::AccessKind::kUffdFault) {
      auto out = monitor.HandleFault(id, PageAddr(page), now);
      EXPECT_TRUE(out.status.ok());
      now = out.wake_at;
      (void)r.Access(PageAddr(page), true);
    }
    return now;
  }
};

TEST(RegionQuota, NoisyTenantCannotEvictNeighbour) {
  TwoTenants t{128};
  SimTime now = 0;
  // Tenant B establishes a 40-page working set.
  for (std::size_t i = 0; i < 40; ++i) now = t.Touch(t.b, t.idb, i, now);
  // Cap tenant A at 64 pages, then let it stream 800 pages.
  now = t.monitor.SetRegionQuota(t.ida, 64, now);
  for (std::size_t i = 0; i < 800; ++i) now = t.Touch(t.a, t.ida, i, now);
  // A is bounded by its quota; B is untouched.
  EXPECT_LE(t.monitor.RegionResidentPages(t.ida), 64u);
  EXPECT_EQ(t.monitor.RegionResidentPages(t.idb), 40u);
}

TEST(RegionQuota, WithoutQuotaTheStreamEvictsEveryone) {
  TwoTenants t{128};
  SimTime now = 0;
  for (std::size_t i = 0; i < 40; ++i) now = t.Touch(t.b, t.idb, i, now);
  for (std::size_t i = 0; i < 800; ++i) now = t.Touch(t.a, t.ida, i, now);
  // The control: global insertion-order eviction squeezed B out.
  EXPECT_LT(t.monitor.RegionResidentPages(t.idb), 5u);
}

TEST(RegionQuota, ShrinkingQuotaEvictsImmediately) {
  TwoTenants t{256};
  SimTime now = 0;
  for (std::size_t i = 0; i < 100; ++i) now = t.Touch(t.a, t.ida, i, now);
  EXPECT_EQ(t.monitor.RegionResidentPages(t.ida), 100u);
  now = t.monitor.SetRegionQuota(t.ida, 16, now);
  EXPECT_LE(t.monitor.RegionResidentPages(t.ida), 16u);
  // Data still correct after the squeeze.
  now = t.monitor.DrainWrites(now);
  for (std::size_t i = 0; i < 100; i += 7) now = t.Touch(t.a, t.ida, i, now);
  EXPECT_EQ(t.monitor.stats().lost_page_errors, 0u);
}

TEST(RegionQuota, RemovingQuotaRestoresGlobalSharing) {
  TwoTenants t{256};
  SimTime now = 0;
  now = t.monitor.SetRegionQuota(t.ida, 8, now);
  for (std::size_t i = 0; i < 64; ++i) now = t.Touch(t.a, t.ida, i, now);
  EXPECT_LE(t.monitor.RegionResidentPages(t.ida), 8u);
  now = t.monitor.SetRegionQuota(t.ida, 0, now);  // lift the cap
  for (std::size_t i = 64; i < 160; ++i) now = t.Touch(t.a, t.ida, i, now);
  EXPECT_GT(t.monitor.RegionResidentPages(t.ida), 8u);
}

TEST(RegionQuota, QuotaEvictionPreservesOtherRegionsOrder) {
  TwoTenants t{256};
  SimTime now = 0;
  // Interleave: B pages 0..9, A pages 0..9, B pages 10..19.
  for (std::size_t i = 0; i < 10; ++i) now = t.Touch(t.b, t.idb, i, now);
  for (std::size_t i = 0; i < 10; ++i) now = t.Touch(t.a, t.ida, i, now);
  for (std::size_t i = 10; i < 20; ++i) now = t.Touch(t.b, t.idb, i, now);
  // Quota-squeeze A to 2: only A's pages leave.
  now = t.monitor.SetRegionQuota(t.ida, 2, now);
  EXPECT_EQ(t.monitor.RegionResidentPages(t.idb), 20u);
  EXPECT_LE(t.monitor.RegionResidentPages(t.ida), 2u);
}

TEST(RegionQuota, PrefetchCannotPushRegionPastQuota) {
  // Sequential streaming triggers the fault-ahead prefetcher; prefetched
  // installs must count against the streaming tenant's quota exactly like
  // demand faults (the seed checked only global capacity, so readahead
  // silently blew past the quota and squeezed the neighbour).
  MonitorConfig cfg;
  cfg.lru_capacity_pages = 128;
  cfg.prefetch_depth = 8;
  TwoTenants t{cfg};
  SimTime now = 0;
  // Tenant B holds its working set; tenant A gets a tight cap.
  for (std::size_t i = 0; i < 40; ++i) now = t.Touch(t.b, t.idb, i, now);
  now = t.monitor.SetRegionQuota(t.ida, 16, now);
  // First pass makes A's pages remote; later passes re-fault them
  // sequentially, so the prefetcher fetches ahead on every fault.
  for (std::size_t i = 0; i < 64; ++i) now = t.Touch(t.a, t.ida, i, now);
  now = t.monitor.DrainWrites(now);
  for (std::size_t pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < 64; ++i) {
      now = t.Touch(t.a, t.ida, i, now);
      ASSERT_LE(t.monitor.RegionResidentPages(t.ida), 16u)
          << "pass " << pass << " page " << i;
    }
    now = t.monitor.DrainWrites(now);
  }
  EXPECT_GT(t.monitor.stats().prefetched_pages, 0u);
  EXPECT_EQ(t.monitor.RegionResidentPages(t.idb), 40u);
}

TEST(RegionQuota, BatchedQuotaShrinkPostsFullBatches) {
  // Shrinking a quota collects all victims first and posts them as full
  // multi-write batches instead of one FlushIfNeeded pass per page.
  MonitorConfig cfg;
  cfg.lru_capacity_pages = 256;
  cfg.write_batch_pages = 32;
  TwoTenants t{cfg};
  SimTime now = 0;
  for (std::size_t i = 0; i < 128; ++i) now = t.Touch(t.a, t.ida, i, now);
  const auto batches_before = t.store.stats().multi_write_batches;
  const auto objects_before = t.store.stats().multi_write_objects;
  now = t.monitor.SetRegionQuota(t.ida, 16, now);
  EXPECT_LE(t.monitor.RegionResidentPages(t.ida), 16u);
  now = t.monitor.DrainWrites(now);
  // 112 evictions in 32-page batches: at most ceil(112/32) = 4 posts (the
  // seed's per-page FlushIfNeeded shape still batched, but paid a full
  // flush scan per eviction; this pins the batched contract).
  const auto batches = t.store.stats().multi_write_batches - batches_before;
  const auto objects = t.store.stats().multi_write_objects - objects_before;
  EXPECT_EQ(objects, 112u);
  EXPECT_LE(batches, 4u);
  EXPECT_EQ(t.monitor.stats().lost_page_errors, 0u);
}

}  // namespace
}  // namespace fluid::fm
