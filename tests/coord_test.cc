// Tests for the coordination layer: the ZooKeeper-stand-in replicated table
// and the virtual-partition registry (paper §IV's global-uniqueness scheme).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "coord/partition_registry.h"
#include "coord/replicated_table.h"

namespace fluid::coord {
namespace {

// --- replicated table ------------------------------------------------------------

TEST(ReplicatedTable, CreateReadRoundTrip) {
  ReplicatedTable t;
  auto c = t.Create("k", "v", 0);
  ASSERT_TRUE(c.status.ok());
  EXPECT_EQ(c.data.version, 1u);
  EXPECT_GT(c.complete_at, 0u);

  auto r = t.Read("k", c.complete_at);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.data.value, "v");
  EXPECT_EQ(r.data.version, 1u);
}

TEST(ReplicatedTable, CreateIsExclusive) {
  ReplicatedTable t;
  ASSERT_TRUE(t.Create("k", "a", 0).status.ok());
  EXPECT_EQ(t.Create("k", "b", 0).status.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(t.Read("k", 0).data.value, "a");
}

TEST(ReplicatedTable, CasUpdateEnforcesVersion) {
  ReplicatedTable t;
  (void)t.Create("k", "v1", 0);
  // Wrong expected version fails.
  EXPECT_EQ(t.Update("k", "v2", 7, 0).status.code(),
            StatusCode::kFailedPrecondition);
  // Right version succeeds and bumps it.
  auto u = t.Update("k", "v2", 1, 0);
  ASSERT_TRUE(u.status.ok());
  EXPECT_EQ(u.data.version, 2u);
  // Replaying the same CAS fails (lost-update protection).
  EXPECT_EQ(t.Update("k", "v3", 1, 0).status.code(),
            StatusCode::kFailedPrecondition);
}

TEST(ReplicatedTable, DeleteRemovesAndReports) {
  ReplicatedTable t;
  (void)t.Create("k", "v", 0);
  ASSERT_TRUE(t.Delete("k", 0).status.ok());
  EXPECT_EQ(t.Read("k", 0).status.code(), StatusCode::kNotFound);
  EXPECT_EQ(t.Delete("k", 0).status.code(), StatusCode::kNotFound);
}

TEST(ReplicatedTable, PrefixScan) {
  ReplicatedTable t;
  (void)t.Create("alloc/1", "a", 0);
  (void)t.Create("alloc/2", "b", 0);
  (void)t.Create("id/x", "c", 0);
  auto keys = t.KeysWithPrefix("alloc/");
  EXPECT_EQ(keys.size(), 2u);
}

TEST(ReplicatedTable, ReplicasStayConsistent) {
  ReplicatedTable t;
  for (int i = 0; i < 20; ++i)
    (void)t.Create("k" + std::to_string(i), std::to_string(i), 0);
  (void)t.Update("k3", "new", 1, 0);
  (void)t.Delete("k7", 0);
  EXPECT_TRUE(t.ReplicasConsistent());
}

TEST(ReplicatedTable, ToleratesMinorityCrash) {
  ReplicatedTable t{ReplicatedTableConfig{.replica_count = 3}};
  t.CrashReplica(0);
  EXPECT_TRUE(t.HasQuorum());
  ASSERT_TRUE(t.Create("k", "v", 0).status.ok());
  EXPECT_TRUE(t.ReplicasConsistent());
}

TEST(ReplicatedTable, UnavailableBelowQuorum) {
  ReplicatedTable t{ReplicatedTableConfig{.replica_count = 3}};
  (void)t.Create("k", "v", 0);
  t.CrashReplica(0);
  t.CrashReplica(1);
  EXPECT_FALSE(t.HasQuorum());
  EXPECT_EQ(t.Create("k2", "v", 0).status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(t.Read("k", 0).status.code(), StatusCode::kUnavailable);
  // The failed create must not leave residue once quorum returns.
  t.RestoreReplica(0);
  EXPECT_TRUE(t.HasQuorum());
  EXPECT_EQ(t.Read("k2", 0).status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(t.Create("k2", "v", 0).status.ok());
}

TEST(ReplicatedTable, RestoredReplicaResyncs) {
  ReplicatedTable t;
  (void)t.Create("k1", "v1", 0);
  t.CrashReplica(2);
  (void)t.Create("k2", "v2", 0);
  t.RestoreReplica(2);
  EXPECT_TRUE(t.ReplicasConsistent());
}

TEST(ReplicatedTable, WritesTakeQuorumTime) {
  ReplicatedTable t;
  auto c = t.Create("k", "v", 1000);
  // Commit needs at least a replica round trip (~50 us floor in the model).
  EXPECT_GE(c.complete_at - 1000, FromMicros(50.0));
}

// --- partition registry -------------------------------------------------------------

TEST(PartitionRegistry, AllocatesAndFinds) {
  ReplicatedTable t;
  PartitionRegistry reg{t};
  const VmIdentity id{100, 1, 555};
  auto a = reg.Allocate(id, 0);
  ASSERT_TRUE(a.status.ok());
  EXPECT_LT(a.partition, kMaxVirtualPartitions);
  auto found = reg.Find(id, a.complete_at);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, a.partition);
}

TEST(PartitionRegistry, AllocationIsIdempotent) {
  ReplicatedTable t;
  PartitionRegistry reg{t};
  const VmIdentity id{100, 1, 555};
  auto a1 = reg.Allocate(id, 0);
  auto a2 = reg.Allocate(id, a1.complete_at);
  ASSERT_TRUE(a2.status.ok());
  EXPECT_EQ(a1.partition, a2.partition);
  EXPECT_EQ(reg.AllocatedCount(), 1u);
}

TEST(PartitionRegistry, DistinctIdentitiesGetDistinctPartitions) {
  // The paper's uniqueness property, as a property test: hundreds of VMs
  // across several hypervisors must never collide.
  ReplicatedTable t;
  PartitionRegistry reg{t};
  std::set<PartitionId> seen;
  SimTime now = 0;
  for (std::uint32_t hv = 0; hv < 8; ++hv) {
    for (std::uint32_t pid = 0; pid < 50; ++pid) {
      auto a = reg.Allocate(VmIdentity{pid, hv, pid * 7919u + hv}, now);
      ASSERT_TRUE(a.status.ok());
      now = a.complete_at;
      EXPECT_TRUE(seen.insert(a.partition).second)
          << "collision on partition " << a.partition;
    }
  }
  EXPECT_EQ(reg.AllocatedCount(), 400u);
}

TEST(PartitionRegistry, ReleaseMakesPartitionReusable) {
  ReplicatedTable t;
  PartitionRegistry reg{t};
  const VmIdentity a{1, 1, 1};
  auto alloc = reg.Allocate(a, 0);
  ASSERT_TRUE(alloc.status.ok());
  ASSERT_TRUE(reg.Release(a, alloc.complete_at).ok());
  EXPECT_EQ(reg.AllocatedCount(), 0u);
  EXPECT_FALSE(reg.Find(a, 0).has_value());
  // A new identity that probes the same start index can take the slot.
  auto again = reg.Allocate(a, 0);
  ASSERT_TRUE(again.status.ok());
  EXPECT_EQ(again.partition, alloc.partition);
}

TEST(PartitionRegistry, ProbesPastCollisions) {
  ReplicatedTable t;
  PartitionRegistry reg{t};
  const VmIdentity a{1, 1, 1};
  auto first = reg.Allocate(a, 0);
  ASSERT_TRUE(first.status.ok());
  // Forge an identity whose probe start collides by pre-claiming the next
  // 4095 slots is overkill; instead verify two identities with the same
  // probe start (same hash inputs except nonce tweak until collision) stay
  // unique.
  SimTime now = first.complete_at;
  for (std::uint32_t nonce = 2; nonce < 40; ++nonce) {
    auto b = reg.Allocate(VmIdentity{1, 1, nonce}, now);
    ASSERT_TRUE(b.status.ok());
    now = b.complete_at;
    EXPECT_NE(b.partition, first.partition);
  }
}

TEST(PartitionRegistry, UnavailableWithoutQuorum) {
  ReplicatedTable t{ReplicatedTableConfig{.replica_count = 3}};
  t.CrashReplica(0);
  t.CrashReplica(1);
  PartitionRegistry reg{t};
  auto a = reg.Allocate(VmIdentity{1, 1, 1}, 0);
  EXPECT_EQ(a.status.code(), StatusCode::kUnavailable);
}

// --- sessions & ephemeral nodes --------------------------------------------------

TEST(Sessions, HeartbeatKeepsSessionAlive) {
  ReplicatedTable t{ReplicatedTableConfig{.session_timeout = 1 * kSecond}};
  const SessionId s = t.OpenSession(0);
  EXPECT_TRUE(t.SessionAlive(s, 500 * kMillisecond));
  ASSERT_TRUE(t.Heartbeat(s, 900 * kMillisecond).ok());
  EXPECT_TRUE(t.SessionAlive(s, 1800 * kMillisecond));
  EXPECT_FALSE(t.SessionAlive(s, 3 * kSecond));
}

TEST(Sessions, LateHeartbeatIsRejected) {
  ReplicatedTable t{ReplicatedTableConfig{.session_timeout = 1 * kSecond}};
  const SessionId s = t.OpenSession(0);
  EXPECT_EQ(t.Heartbeat(s, 5 * kSecond).code(), StatusCode::kDeadlineExceeded);
}

TEST(Sessions, EphemeralNodesDieWithTheSession) {
  ReplicatedTable t{ReplicatedTableConfig{.session_timeout = 1 * kSecond}};
  const SessionId s = t.OpenSession(0);
  ASSERT_TRUE(t.Create("eph/a", "1", 0, s).status.ok());
  ASSERT_TRUE(t.Create("persist/b", "2", 0).status.ok());
  // No heartbeat: the session dies; only the ephemeral key is reaped.
  EXPECT_EQ(t.ExpireSessions(5 * kSecond), 1u);
  EXPECT_EQ(t.Read("eph/a", 5 * kSecond).status.code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(t.Read("persist/b", 5 * kSecond).status.ok());
  EXPECT_TRUE(t.ReplicasConsistent());
}

TEST(Sessions, CloseReapsImmediately) {
  ReplicatedTable t;
  const SessionId s = t.OpenSession(0);
  ASSERT_TRUE(t.Create("eph/x", "1", 0, s).status.ok());
  ASSERT_TRUE(t.CloseSession(s, 100).ok());
  EXPECT_EQ(t.Read("eph/x", 200).status.code(), StatusCode::kNotFound);
}

TEST(Sessions, CreateWithDeadSessionFails) {
  ReplicatedTable t{ReplicatedTableConfig{.session_timeout = 1 * kSecond}};
  const SessionId s = t.OpenSession(0);
  auto r = t.Create("eph/late", "1", 10 * kSecond, s);
  EXPECT_EQ(r.status.code(), StatusCode::kFailedPrecondition);
}

TEST(PartitionRegistry, CrashedMonitorsPartitionsAreReaped) {
  // The leak-proofing story: a monitor allocates partitions under its
  // session; the host dies (no heartbeats); the registry space recovers.
  ReplicatedTable t{ReplicatedTableConfig{.session_timeout = 2 * kSecond}};
  PartitionRegistry reg{t};
  const SessionId s = t.OpenSession(0);
  SimTime now = 0;
  for (std::uint32_t pid = 0; pid < 5; ++pid) {
    auto a = reg.Allocate(VmIdentity{pid, 1, pid}, now, s);
    ASSERT_TRUE(a.status.ok());
    now = a.complete_at;
  }
  EXPECT_EQ(reg.AllocatedCount(), 5u);
  // Host dies; the ensemble reaps both alloc/ and id/ ephemeral nodes.
  EXPECT_GT(t.ExpireSessions(now + 10 * kSecond), 0u);
  EXPECT_EQ(reg.AllocatedCount(), 0u);
  // The same identities can re-allocate under a fresh session.
  const SessionId s2 = t.OpenSession(now + 10 * kSecond);
  auto again = reg.Allocate(VmIdentity{0, 1, 0}, now + 10 * kSecond, s2);
  EXPECT_TRUE(again.status.ok());
}

}  // namespace
}  // namespace fluid::coord
