// YCSB workload-family generators: per-mix op-ratio convergence, key-
// frequency shape of the zipfian and latest distributions, deterministic
// replay, scan-length bounds, and footprint accounting.
#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "workloads/ycsb.h"

namespace fluid::wl {
namespace {

YcsbOpStats StatsFor(YcsbMix mix, std::uint64_t ops, std::uint64_t seed = 7) {
  YcsbConfig cfg;
  cfg.mix = mix;
  cfg.records = 1024;
  cfg.ops = ops;
  YcsbOpStats st;
  GenerateYcsb(cfg, seed, &st);
  return st;
}

double Frac(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0 : static_cast<double>(part) /
                                static_cast<double>(whole);
}

// --- op-ratio convergence ----------------------------------------------------

TEST(YcsbMixes, AUpdateHeavyConvergesToFiftyFifty) {
  const YcsbOpStats st = StatsFor(YcsbMix::kA, 100'000);
  const std::uint64_t total = st.reads + st.updates;
  EXPECT_EQ(total, 100'000u);
  EXPECT_NEAR(Frac(st.reads, total), 0.50, 0.01);
  EXPECT_NEAR(Frac(st.updates, total), 0.50, 0.01);
  EXPECT_EQ(st.inserts + st.scans + st.rmws, 0u);
}

TEST(YcsbMixes, BReadMostlyConvergesToNinetyFiveFive) {
  const YcsbOpStats st = StatsFor(YcsbMix::kB, 100'000);
  EXPECT_NEAR(Frac(st.reads, 100'000), 0.95, 0.01);
  EXPECT_NEAR(Frac(st.updates, 100'000), 0.05, 0.01);
}

TEST(YcsbMixes, CIsReadOnly) {
  const YcsbOpStats st = StatsFor(YcsbMix::kC, 50'000);
  EXPECT_EQ(st.reads, 50'000u);
  EXPECT_EQ(st.updates + st.inserts + st.scans + st.rmws, 0u);
}

TEST(YcsbMixes, DReadLatestConvergesToNinetyFiveFive) {
  const YcsbOpStats st = StatsFor(YcsbMix::kD, 100'000);
  EXPECT_NEAR(Frac(st.reads, 100'000), 0.95, 0.01);
  EXPECT_NEAR(Frac(st.inserts, 100'000), 0.05, 0.01);
  // Inserts grew the key space (up to the cap).
  EXPECT_GT(st.final_records, 1024u);
}

TEST(YcsbMixes, EShortScansConvergesToNinetyFiveFive) {
  const YcsbOpStats st = StatsFor(YcsbMix::kE, 100'000);
  EXPECT_NEAR(Frac(st.scans, 100'000), 0.95, 0.01);
  EXPECT_NEAR(Frac(st.inserts, 100'000), 0.05, 0.01);
  EXPECT_GT(st.scanned_pages, st.scans);  // scans expand to multiple pages
}

TEST(YcsbMixes, FReadModifyWriteConvergesToFiftyFifty) {
  const YcsbOpStats st = StatsFor(YcsbMix::kF, 100'000);
  EXPECT_NEAR(Frac(st.reads, 100'000), 0.50, 0.01);
  EXPECT_NEAR(Frac(st.rmws, 100'000), 0.50, 0.01);
}

TEST(YcsbMixes, RatiosOfEveryMixSumToOne) {
  for (std::size_t m = 0; m < kYcsbMixCount; ++m) {
    const YcsbMixRatios r = RatiosOf(static_cast<YcsbMix>(m));
    EXPECT_NEAR(r.read + r.update + r.insert + r.scan + r.rmw, 1.0, 1e-12)
        << "mix " << MixName(static_cast<YcsbMix>(m));
  }
}

// --- key-frequency shape -----------------------------------------------------

TEST(YcsbKeys, ZipfianRankZeroIsHottest) {
  YcsbConfig cfg;
  cfg.mix = YcsbMix::kC;
  cfg.records = 1024;
  cfg.ops = 100'000;
  const auto accs = GenerateYcsb(cfg, 11);
  std::map<std::size_t, std::uint64_t> freq;
  for (const TraceAccess& a : accs) ++freq[a.page];
  // Rank 0 is the single hottest key and far above the uniform share.
  const std::uint64_t hottest =
      std::max_element(freq.begin(), freq.end(), [](auto& a, auto& b) {
        return a.second < b.second;
      })->second;
  EXPECT_EQ(freq[0], hottest);
  EXPECT_GT(freq[0], 10 * (100'000 / 1024));
  // Zipf theta 0.99: the hottest ~10% of ranks draw the majority of
  // accesses.
  std::uint64_t head = 0;
  for (std::size_t k = 0; k < 102; ++k) head += freq.count(k) ? freq[k] : 0;
  EXPECT_GT(Frac(head, accs.size()), 0.5);
}

TEST(YcsbKeys, LatestDistributionFavorsRecentOffsets) {
  LatestGenerator latest(1024);
  Rng rng{3};
  std::map<std::uint64_t, std::uint64_t> freq;
  for (int i = 0; i < 100'000; ++i) ++freq[latest.NextOffset(rng, 1000)];
  // Offset 0 (the newest record) is the hottest; small offsets dominate.
  const std::uint64_t hottest =
      std::max_element(freq.begin(), freq.end(), [](auto& a, auto& b) {
        return a.second < b.second;
      })->second;
  EXPECT_EQ(freq[0], hottest);
  std::uint64_t recent = 0;
  for (std::uint64_t off = 0; off < 100; ++off)
    recent += freq.count(off) ? freq[off] : 0;
  EXPECT_GT(Frac(recent, 100'000), 0.5);
  // Every offset stays within the live range.
  EXPECT_LT(freq.rbegin()->first, 1000u);
}

TEST(YcsbKeys, DMixReadsConcentrateOnNewestKeys) {
  YcsbConfig cfg;
  cfg.mix = YcsbMix::kD;
  cfg.records = 512;
  cfg.ops = 50'000;
  YcsbOpStats st;
  const auto accs = GenerateYcsb(cfg, 5, &st);
  // Reads (non-inserts) should cluster near the top of the key space:
  // the mean read key sits well above the midpoint.
  double sum = 0;
  std::uint64_t reads = 0;
  for (const TraceAccess& a : accs)
    if (!a.is_write) {
      sum += static_cast<double>(a.page);
      ++reads;
    }
  ASSERT_GT(reads, 0u);
  EXPECT_GT(sum / static_cast<double>(reads),
            static_cast<double>(st.final_records) * 0.5);
}

// --- determinism -------------------------------------------------------------

TEST(YcsbDeterminism, SameSeedReplaysByteIdentically) {
  for (std::size_t m = 0; m < kYcsbMixCount; ++m) {
    YcsbConfig cfg;
    cfg.mix = static_cast<YcsbMix>(m);
    cfg.records = 256;
    cfg.ops = 20'000;
    const auto a = GenerateYcsb(cfg, 99);
    const auto b = GenerateYcsb(cfg, 99);
    ASSERT_EQ(a.size(), b.size()) << "mix " << MixName(cfg.mix);
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].page, b[i].page) << "mix " << MixName(cfg.mix);
      ASSERT_EQ(a[i].is_write, b[i].is_write) << "mix " << MixName(cfg.mix);
    }
  }
}

TEST(YcsbDeterminism, DifferentSeedsDiverge) {
  YcsbConfig cfg;
  cfg.mix = YcsbMix::kA;
  cfg.records = 256;
  cfg.ops = 1'000;
  const auto a = GenerateYcsb(cfg, 1);
  const auto b = GenerateYcsb(cfg, 2);
  bool differ = a.size() != b.size();
  for (std::size_t i = 0; !differ && i < a.size(); ++i)
    differ = a[i].page != b[i].page || a[i].is_write != b[i].is_write;
  EXPECT_TRUE(differ);
}

// --- scan bounds + footprint -------------------------------------------------

TEST(YcsbScans, RunLengthsRespectMaxScanLen) {
  YcsbConfig cfg;
  cfg.mix = YcsbMix::kE;
  cfg.records = 512;
  cfg.ops = 20'000;
  cfg.max_scan_len = 7;
  YcsbOpStats st;
  GenerateYcsb(cfg, 21, &st);
  // No single scan exceeds max_scan_len, and with 20k ops the bound is
  // actually reached. (Adjacent ascending reads in the flat stream can
  // chain two scans together, so the generator tracks the per-scan max.)
  EXPECT_EQ(st.max_scan_run, cfg.max_scan_len);
  // Average scan length lands mid-range (uniform in [1, 7] clipped at the
  // key-space edge).
  const double mean_len =
      Frac(st.scanned_pages, st.scans);
  EXPECT_GT(mean_len, 2.0);
  EXPECT_LT(mean_len, 7.0);
}

TEST(YcsbScans, EveryAccessStaysInsideFootprint) {
  for (std::size_t m = 0; m < kYcsbMixCount; ++m) {
    YcsbConfig cfg;
    cfg.mix = static_cast<YcsbMix>(m);
    cfg.records = 128;
    cfg.ops = 30'000;
    cfg.first_page = 10;
    const std::size_t fp = YcsbFootprintPages(cfg);
    YcsbOpStats st;
    const auto accs = GenerateYcsb(cfg, 17, &st);
    for (const TraceAccess& a : accs) {
      ASSERT_GE(a.page, cfg.first_page) << "mix " << MixName(cfg.mix);
      ASSERT_LT(a.page, fp) << "mix " << MixName(cfg.mix);
    }
    ASSERT_LE(cfg.first_page + st.final_records, fp)
        << "mix " << MixName(cfg.mix);
  }
}

TEST(YcsbScans, InsertsStopGrowingAtMaxRecords) {
  YcsbConfig cfg;
  cfg.mix = YcsbMix::kD;
  cfg.records = 64;
  cfg.ops = 50'000;
  cfg.max_records = 80;
  YcsbOpStats st;
  GenerateYcsb(cfg, 13, &st);
  EXPECT_EQ(st.final_records, 80u);
  EXPECT_EQ(YcsbFootprintPages(cfg), 80u);
}

}  // namespace
}  // namespace fluid::wl
