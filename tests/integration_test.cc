// Integration tests across modules: several VMs sharing one key-value
// store through the virtual-partition registry, end-to-end data integrity
// under footprint churn, workload determinism, and the full-vs-partial
// disaggregation contrast the paper is built around.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coord/partition_registry.h"
#include "coord/replicated_table.h"
#include "kvstore/memcached.h"
#include "kvstore/ramcloud.h"
#include "mem/frame_pool.h"
#include "vm/fluid_vm.h"
#include "vm/swap_vm.h"
#include "workloads/docstore.h"
#include "workloads/graph500.h"
#include "workloads/pmbench.h"
#include "workloads/testbed.h"

namespace fluid {
namespace {

// --- multiple VMs, one store, registry-allocated partitions -------------------------

struct Cloud {
  coord::ReplicatedTable table;
  coord::PartitionRegistry registry{table};
  mem::FramePool pool{32768};
  kv::RamcloudStore store{kv::RamcloudConfig{.memory_cap_bytes = 1ULL << 30}};
  fm::Monitor monitor;
  std::vector<std::unique_ptr<vm::FluidVm>> vms;
  SimTime now = 0;

  explicit Cloud(std::size_t lru_pages = 512)
      : monitor(MakeConfig(lru_pages), store, pool) {}

  static fm::MonitorConfig MakeConfig(std::size_t lru) {
    fm::MonitorConfig cfg;
    cfg.lru_capacity_pages = lru;
    return cfg;
  }

  vm::FluidVm& SpawnVm(ProcessId pid, HypervisorId hv) {
    auto alloc = registry.Allocate(coord::VmIdentity{pid, hv, pid * 31u}, now);
    EXPECT_TRUE(alloc.status.ok());
    now = alloc.complete_at;
    vms.push_back(std::make_unique<vm::FluidVm>(
        vm::MakeBootCensus(800), 1024, monitor, pool, pid, alloc.partition,
        pid));
    return *vms.back();
  }
};

TEST(MultiVm, SharedStoreKeepsVmsIsolated) {
  Cloud cloud{256};
  vm::FluidVm& a = cloud.SpawnVm(100, 1);
  vm::FluidVm& b = cloud.SpawnVm(200, 1);
  SimTime now = cloud.now;
  now = a.BootOs(now);
  now = b.BootOs(now);

  // Both VMs write different data at the SAME guest-virtual addresses —
  // only the partition index separates their pages in the shared store.
  for (std::size_t i = 0; i < 512; ++i) {
    const std::uint64_t va = 0xA000 + i;
    const std::uint64_t vb = 0xB000 + i;
    now = a.Store(a.layout().AppAddr(i), std::as_bytes(std::span{&va, 1}),
                  now).done;
    now = b.Store(b.layout().AppAddr(i), std::as_bytes(std::span{&vb, 1}),
                  now).done;
  }
  // The shared LRU (256 pages) forced most of both VMs remote.
  EXPECT_GT(cloud.monitor.stats().evictions, 500u);

  // Read back and verify no cross-VM bleed.
  for (std::size_t i = 0; i < 512; ++i) {
    std::uint64_t got = 0;
    now = a.Load(a.layout().AppAddr(i),
                 std::as_writable_bytes(std::span{&got, 1}), now).done;
    ASSERT_EQ(got, 0xA000 + i) << "VM A page " << i;
    now = b.Load(b.layout().AppAddr(i),
                 std::as_writable_bytes(std::span{&got, 1}), now).done;
    ASSERT_EQ(got, 0xB000 + i) << "VM B page " << i;
  }
}

TEST(MultiVm, ShutdownDropsOnlyThatVmsPages) {
  Cloud cloud{128};
  vm::FluidVm& a = cloud.SpawnVm(100, 1);
  vm::FluidVm& b = cloud.SpawnVm(200, 1);
  SimTime now = cloud.now;
  const std::uint64_t marker = 0x5ca1ab1e;
  for (std::size_t i = 0; i < 256; ++i) {
    now = a.Store(a.layout().AppAddr(i), std::as_bytes(std::span{&marker, 1}),
                  now).done;
    now = b.Store(b.layout().AppAddr(i), std::as_bytes(std::span{&marker, 1}),
                  now).done;
  }
  now = cloud.monitor.DrainWrites(now);
  const std::size_t objects_before = cloud.store.ObjectCount();
  ASSERT_GT(objects_before, 0u);
  now = a.Shutdown(now);
  EXPECT_LT(cloud.store.ObjectCount(), objects_before);
  // B's pages still read back fine.
  std::uint64_t got = 0;
  now = b.Load(b.layout().AppAddr(3),
               std::as_writable_bytes(std::span{&got, 1}), now).done;
  EXPECT_EQ(got, marker);
}

TEST(MultiVm, RegistryPartitionsSurviveReplicaCrash) {
  Cloud cloud{256};
  cloud.table.CrashReplica(1);
  vm::FluidVm& a = cloud.SpawnVm(300, 2);  // quorum of 2/3 still up
  SimTime now = a.BootOs(cloud.now);
  std::uint64_t v = 42;
  auto r = a.Store(a.layout().AppAddr(0), std::as_bytes(std::span{&v, 1}),
                   now);
  EXPECT_TRUE(r.status.ok());
  cloud.table.RestoreReplica(1);
  EXPECT_TRUE(cloud.table.ReplicasConsistent());
}

// --- data integrity under violent footprint churn ------------------------------------

TEST(Integration, FootprintChurnNeverCorruptsData) {
  wl::TestbedConfig tb;
  tb.local_dram_pages = 512;
  tb.vm_app_pages = 2048;
  wl::Testbed bed{wl::Backend::kFluidRamcloud, tb};
  SimTime now = bed.Boot(0);
  const vm::VmLayout& layout = bed.layout();

  // Fill app memory with addressed markers.
  for (std::size_t i = 0; i < 2048; ++i) {
    const std::uint64_t v = i * 0x9e3779b9ULL + 1;
    now = bed.memory().Store(layout.AppAddr(i),
                             std::as_bytes(std::span{&v, 1}), now).done;
  }
  // Thrash the footprint while reading.
  Rng rng{404};
  for (int round = 0; round < 12; ++round) {
    const std::size_t cap = 16 + rng.NextBounded(1024);
    now = bed.fluid_vm()->SetLocalFootprint(cap, now);
    for (int k = 0; k < 64; ++k) {
      const std::size_t i = rng.NextBounded(2048);
      std::uint64_t got = 0;
      auto r = bed.memory().Load(layout.AppAddr(i),
                                 std::as_writable_bytes(std::span{&got, 1}),
                                 now);
      ASSERT_TRUE(r.status.ok());
      now = r.done;
      ASSERT_EQ(got, i * 0x9e3779b9ULL + 1)
          << "round " << round << " page " << i << " cap " << cap;
    }
  }
  EXPECT_EQ(bed.fluid_vm()->monitor().stats().lost_page_errors, 0u);
}

// --- the headline contrast: full vs partial disaggregation ---------------------------

TEST(Integration, OnlyFluidMemReachesNearZeroFootprint) {
  const vm::OsCensus census = vm::MakeBootCensus(400);

  // FluidMem: footprint shrinks below the pinned OS set, VM keeps working.
  mem::FramePool pool{8192};
  kv::RamcloudStore store{kv::RamcloudConfig{}};
  fm::MonitorConfig mc;
  mc.lru_capacity_pages = 1024;
  fm::Monitor monitor{mc, store, pool};
  vm::FluidVm fvm{census, 256, monitor, pool, 1, 1};
  SimTime now = fvm.BootOs(0);
  now = fvm.SetLocalFootprint(8, now);
  EXPECT_LE(fvm.ResidentPages(), 8u);

  // Swap: the balloon cannot go below the pinned footprint.
  blk::BlockDevice swap_dev = blk::MakePmemDevice(8192);
  blk::BlockDevice fs_dev = blk::MakeSsdDevice(8192);
  vm::SwapVm svm{census, 256, 1024, swap_dev, fs_dev};
  now = svm.BootOs(0);
  now = svm.BalloonInflate(8, now, /*driver_floor_pages=*/0);
  EXPECT_GE(svm.ResidentPages(), census.PinnedPages());
  EXPECT_GT(svm.ResidentPages(), fvm.ResidentPages());
}

// --- determinism across the full stack ----------------------------------------------

TEST(Integration, Graph500RunsAreDeterministic) {
  auto run = [] {
    wl::Graph500Config gcfg;
    gcfg.scale = 9;
    gcfg.bfs_roots = 2;
    wl::CsrGraph graph = wl::BuildGraph(gcfg);
    wl::TestbedConfig tb;
    tb.local_dram_pages = 128;
    tb.vm_app_pages = graph.total_pages + 64;
    wl::Testbed bed{wl::Backend::kFluidRamcloud, tb};
    const VirtAddr delta = bed.layout().app_base - graph.base;
    graph.base += delta;
    graph.xadj_base += delta;
    graph.adj_base += delta;
    graph.parent_base += delta;
    graph.queue_base += delta;
    gcfg.base = graph.base;
    SimTime now = bed.Boot(0);
    now = wl::PopulateGraph(bed.memory(), graph, now);
    return wl::RunGraph500(bed.memory(), graph, gcfg, now);
  };
  const wl::Graph500Result a = run();
  const wl::Graph500Result b = run();
  ASSERT_TRUE(a.status.ok());
  EXPECT_DOUBLE_EQ(a.HarmonicMeanTeps(), b.HarmonicMeanTeps());
  EXPECT_EQ(a.finished, b.finished);
}

TEST(Integration, DocstoreVerifiesUnderBothMechanisms) {
  for (const wl::Backend backend :
       {wl::Backend::kFluidRamcloud, wl::Backend::kSwapNvmeof}) {
    wl::TestbedConfig tb;
    tb.local_dram_pages = 512;
    tb.vm_app_pages = 4096;
    wl::Testbed bed{backend, tb};
    auto disk = blk::MakeSsdDevice(8192);
    wl::DocstoreConfig cfg;
    cfg.record_count = 2000;
    cfg.cache_bytes = 512 * 1024;
    cfg.cache_base = bed.layout().app_base;
    cfg.heap_pages = 128;
    cfg.pagecache_pages = 256;
    wl::DocStore store{cfg, bed.memory(), disk};
    SimTime now = bed.Boot(0);
    now = store.Load(now);
    wl::YcsbConfig yc;
    yc.operations = 4000;
    wl::YcsbResult r = wl::RunYcsbC(store, yc, now);
    ASSERT_TRUE(r.status.ok()) << wl::BackendName(backend);
    EXPECT_EQ(r.latency.Count(), 4000u);
  }
}

}  // namespace
}  // namespace fluid
