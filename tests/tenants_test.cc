// Multi-tenant composer: merge-by-timestamp iterator, per-tenant
// isolation under the noisy-neighbor drill, span-based latency
// attribution reconciliation, and byte-identical replay of all four
// production drills (x 4 seeds) with the ShadowMemory oracle sweep.
#include <vector>

#include <gtest/gtest.h>

#include "chaos/drills.h"
#include "workloads/tenants.h"
#include "workloads/trace.h"
#include "workloads/ycsb.h"

namespace fluid::wl {
namespace {

// Fast config for drill tests: the standard three-tenant family at
// reduced op counts. Deterministic in `seed` only.
MultiTenantConfig DrillConfig(chaos::DrillKind kind, std::uint64_t seed,
                              double scale = 0.25) {
  MultiTenantConfig cfg;
  cfg.tenants = StandardTenants(3, YcsbMix::kB, scale);
  const TrafficShape shape = MeasureTraffic(cfg.tenants, seed);
  cfg.drill = chaos::MakeDrill(kind, seed, shape.total_accesses,
                               shape.horizon);
  return cfg;
}

const TenantResult* FindRole(const MultiTenantResult& res, TenantRole role) {
  for (const TenantResult& t : res.tenants)
    if (t.role == role) return &t;
  return nullptr;
}

// --- merge-by-timestamp iterator (the Trace fix) ----------------------------

TEST(TraceMerge, StampTraceSpacesArrivalsAtFixedRate) {
  const std::vector<TraceAccess> accs = {{0, false}, {1, true}, {2, false}};
  const auto timed = StampTrace(accs, /*stream=*/3, /*start=*/100, /*gap=*/7);
  ASSERT_EQ(timed.size(), 3u);
  EXPECT_EQ(timed[0].at, 100);
  EXPECT_EQ(timed[1].at, 107);
  EXPECT_EQ(timed[2].at, 114);
  for (const TimedAccess& a : timed) EXPECT_EQ(a.stream, 3u);
  EXPECT_TRUE(timed[1].access.is_write);
  EXPECT_EQ(timed[2].access.page, 2u);
}

TEST(TraceMerge, MergesTwoStreamsIntoGlobalArrivalOrder) {
  const std::vector<TraceAccess> a = {{10, false}, {11, false}, {12, false}};
  const std::vector<TraceAccess> b = {{20, true}, {21, true}};
  std::vector<std::vector<TimedAccess>> streams;
  streams.push_back(StampTrace(a, 0, /*start=*/0, /*gap=*/10));   // 0,10,20
  streams.push_back(StampTrace(b, 1, /*start=*/5, /*gap=*/10));   // 5,15
  const auto merged = MergeByTimestamp(streams);
  ASSERT_EQ(merged.size(), 5u);
  const std::size_t want_pages[] = {10, 20, 11, 21, 12};
  const std::uint32_t want_stream[] = {0, 1, 0, 1, 0};
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].access.page, want_pages[i]) << "i=" << i;
    EXPECT_EQ(merged[i].stream, want_stream[i]) << "i=" << i;
    if (i > 0) EXPECT_GE(merged[i].at, merged[i - 1].at);
  }
}

TEST(TraceMerge, TiesBreakTowardLowerStreamIndexStably) {
  const std::vector<TraceAccess> a = {{1, false}, {2, false}};
  const std::vector<TraceAccess> b = {{3, false}, {4, false}};
  std::vector<std::vector<TimedAccess>> streams;
  // Identical timelines: every arrival ties. Stream 0 must win every tie,
  // and within a stream the original order is preserved.
  streams.push_back(StampTrace(a, 0, 0, 10));
  streams.push_back(StampTrace(b, 1, 0, 10));
  const auto merged = MergeByTimestamp(streams);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].access.page, 1u);
  EXPECT_EQ(merged[1].access.page, 3u);
  EXPECT_EQ(merged[2].access.page, 2u);
  EXPECT_EQ(merged[3].access.page, 4u);
}

TEST(TraceMerge, HandlesEmptyStreamsAndUnbalancedLengths) {
  const std::vector<TraceAccess> a = {{1, false}, {2, false}, {3, false}};
  std::vector<std::vector<TimedAccess>> streams;
  streams.push_back({});
  streams.push_back(StampTrace(a, 1, 50, 1));
  streams.push_back({});
  const auto merged = MergeByTimestamp(streams);
  ASSERT_EQ(merged.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(merged[i].access.page, i + 1);
    EXPECT_EQ(merged[i].stream, 1u);
  }
  EXPECT_TRUE(MergeByTimestamp(std::vector<std::vector<TimedAccess>>{})
                  .empty());
}

// --- per-tenant isolation + attribution -------------------------------------

TEST(TenantIsolation, QuotasHoldSteadySloUnderNoisyNeighbor) {
  // The antagonist's bursts are amplified 4x and region quotas are in
  // force (StandardTenants sets them): the steady tenant's SLO must hold.
  const MultiTenantConfig cfg =
      DrillConfig(chaos::DrillKind::kNoisyNeighbor, /*seed=*/42, 0.5);
  const MultiTenantResult res = RunTenants(cfg);
  ASSERT_TRUE(res.status.ok()) << res.failure;
  const TenantResult* steady = FindRole(res, TenantRole::kSteady);
  ASSERT_NE(steady, nullptr);
  EXPECT_TRUE(steady->slo_pass)
      << "steady p50=" << steady->p50_us << "us p99=" << steady->p99_us
      << "us vs SLO " << steady->slo_p50_us << "/" << steady->slo_p99_us;
  EXPECT_EQ(steady->verify_failures, 0u);
  // The drill is not a no-op: the antagonist's own latency visibly
  // degrades vs the clean baseline.
  const MultiTenantResult base =
      RunTenants(DrillConfig(chaos::DrillKind::kNone, 42, 0.5));
  const TenantResult* ant_drill = FindRole(res, TenantRole::kAntagonist);
  const TenantResult* ant_base = FindRole(base, TenantRole::kAntagonist);
  ASSERT_NE(ant_drill, nullptr);
  ASSERT_NE(ant_base, nullptr);
  EXPECT_GT(ant_drill->p99_us, ant_base->p99_us);
}

TEST(TenantIsolation, SpanAttributionReconcilesWithMergedLatency) {
  // Double-entry check: the sum of per-region ok spans (obs) must equal
  // the engine's merged ok-fault count, exactly — no fault is lost or
  // double-attributed across tenants.
  for (const chaos::DrillKind kind :
       {chaos::DrillKind::kNone, chaos::DrillKind::kNoisyNeighbor,
        chaos::DrillKind::kQuotaCut}) {
    const MultiTenantResult res = RunTenants(DrillConfig(kind, 7, 0.25));
    ASSERT_TRUE(res.status.ok()) << res.failure;
    EXPECT_EQ(res.span_ok_total, res.merged_latency_count)
        << "drill " << chaos::DrillName(kind);
    // Every tenant that faulted has span-attributed latency.
    std::uint64_t span_sum = 0;
    for (const TenantResult& t : res.tenants) {
      span_sum += t.span_ok;
      if (t.faults > 0) {
        EXPECT_GT(t.span_faults, 0u) << t.name;
        EXPECT_GT(t.fault_p99_us, 0.0) << t.name;
      }
    }
    EXPECT_EQ(span_sum, res.span_ok_total);
  }
}

TEST(TenantIsolation, BaselinePassesEveryTenantSlo) {
  const MultiTenantResult res =
      RunTenants(DrillConfig(chaos::DrillKind::kNone, 42, 0.5));
  ASSERT_TRUE(res.status.ok()) << res.failure;
  EXPECT_TRUE(res.AllSlosPass());
  for (const TenantResult& t : res.tenants) {
    EXPECT_TRUE(t.slo_pass) << t.name;
    EXPECT_EQ(t.verify_failures, 0u) << t.name;
    EXPECT_GT(t.accesses, 0u) << t.name;
  }
}

// --- drill replay + oracle ---------------------------------------------------

class DrillReplay : public ::testing::TestWithParam<chaos::DrillKind> {};

TEST_P(DrillReplay, ReplaysByteIdenticallyAndPassesOracleAcrossSeeds) {
  for (const std::uint64_t seed : {11ull, 42ull, 137ull, 901ull}) {
    const MultiTenantConfig cfg = DrillConfig(GetParam(), seed);
    const MultiTenantResult first = RunTenants(cfg);
    ASSERT_TRUE(first.status.ok())
        << "seed " << seed << ": " << first.failure;
    const MultiTenantResult second = RunTenants(cfg);
    ASSERT_TRUE(second.status.ok())
        << "seed " << seed << ": " << second.failure;
    // Byte-identical replay: every count and latency statistic matches.
    EXPECT_EQ(first.Fingerprint(), second.Fingerprint()) << "seed " << seed;
    EXPECT_EQ(first.total_accesses, second.total_accesses);
    EXPECT_EQ(first.finished, second.finished);
    // The oracle swept every tenant (status.ok above) and no tenant saw a
    // stale read mid-run.
    for (const TenantResult& t : first.tenants)
      EXPECT_EQ(t.verify_failures, 0u) << t.name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDrills, DrillReplay,
    ::testing::Values(chaos::DrillKind::kNoisyNeighbor,
                      chaos::DrillKind::kStoreFailover,
                      chaos::DrillKind::kRollingUpgrade,
                      chaos::DrillKind::kQuotaCut),
    [](const ::testing::TestParamInfo<chaos::DrillKind>& info) {
      return std::string(chaos::DrillName(info.param));
    });

TEST(DrillPresets, EveryDrillHasANameAndDistinctFingerprint) {
  // Different drills over the same seed produce different runs (except
  // rolling upgrade vs none may only differ in store internals, so compare
  // against the baseline where an observable difference is guaranteed).
  const std::uint64_t seed = 42;
  const MultiTenantResult base =
      RunTenants(DrillConfig(chaos::DrillKind::kNone, seed));
  const MultiTenantResult noisy =
      RunTenants(DrillConfig(chaos::DrillKind::kNoisyNeighbor, seed));
  const MultiTenantResult cut =
      RunTenants(DrillConfig(chaos::DrillKind::kQuotaCut, seed));
  EXPECT_NE(base.Fingerprint(), noisy.Fingerprint());
  EXPECT_NE(base.Fingerprint(), cut.Fingerprint());
  EXPECT_NE(noisy.Fingerprint(), cut.Fingerprint());
}

TEST(DrillPresets, QuotaCutForcesEvictionsOnTheCutTenant) {
  const std::uint64_t seed = 42;
  const MultiTenantResult base =
      RunTenants(DrillConfig(chaos::DrillKind::kNone, seed, 0.5));
  const MultiTenantResult cut =
      RunTenants(DrillConfig(chaos::DrillKind::kQuotaCut, seed, 0.5));
  ASSERT_TRUE(cut.status.ok()) << cut.failure;
  // The cut tenant (the antagonist, per MakeDrill) refaults more after
  // losing DRAM.
  const TenantResult* ant_base = FindRole(base, TenantRole::kAntagonist);
  const TenantResult* ant_cut = FindRole(cut, TenantRole::kAntagonist);
  ASSERT_NE(ant_base, nullptr);
  ASSERT_NE(ant_cut, nullptr);
  EXPECT_GT(ant_cut->faults, ant_base->faults);
}

}  // namespace
}  // namespace fluid::wl
