// End-to-end page integrity (PR 8): checksummed envelopes, injected
// silent corruption (bit flips, torn writes, stale serves), detection ->
// failover -> anti-entropy repair, the budgeted scrubber, replica
// declare-dead + re-replication, and the monitor's poisoned-page
// quarantine. Plus the replay contracts: corruption scenarios replay
// byte-identically and the appended fault sites provably do not perturb
// legacy sites' draws.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <memory>
#include <vector>

#include "chaos/drills.h"
#include "chaos/harness.h"
#include "chaos/injected_store.h"
#include "chaos/injector.h"
#include "fluidmem/monitor.h"
#include "kvstore/decorators.h"
#include "kvstore/integrity.h"
#include "kvstore/key_codec.h"
#include "kvstore/local_store.h"
#include "workloads/tenants.h"

namespace fluid {
namespace {

constexpr VirtAddr kBase = 0x7f0000000000ULL;
constexpr kv::Key KeyAt(std::uint64_t i) {
  return kv::MakePageKey(kBase + i * kPageSize);
}

std::array<std::byte, kPageSize> PatternPage(std::uint32_t seed) {
  std::array<std::byte, kPageSize> page{};
  for (std::size_t i = 0; i < kPageSize; ++i)
    page[i] = static_cast<std::byte>((seed * 131 + i / 8) & 0xff);
  return page;
}

// --- envelope basics ---------------------------------------------------------

TEST(IntegrityStore, RoundTripVerifies) {
  kv::LocalStoreConfig lc;
  lc.seed = 11;
  kv::IntegrityStore store(std::make_unique<kv::LocalDramStore>(lc));
  SimTime now = 0;
  std::array<std::byte, kPageSize> out{};
  for (std::uint32_t i = 0; i < 16; ++i)
    now = store.Put(1, KeyAt(i), PatternPage(i), now).complete_at;
  EXPECT_EQ(store.integrity_stats().envelopes_written, 16u);
  EXPECT_EQ(store.EnvelopeCount(), 16u);
  for (std::uint32_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(store.Get(1, KeyAt(i), out, now).status.ok());
    const auto expect = PatternPage(i);
    EXPECT_EQ(0, std::memcmp(out.data(), expect.data(), kPageSize));
  }
  EXPECT_EQ(store.integrity_stats().verified_reads, 16u);
  EXPECT_EQ(store.integrity_stats().corruptions_detected, 0u);
}

TEST(IntegrityStore, RemoveAndDropForgetEnvelopes) {
  kv::LocalStoreConfig lc;
  lc.seed = 12;
  kv::IntegrityStore store(std::make_unique<kv::LocalDramStore>(lc));
  SimTime now = 0;
  for (std::uint32_t i = 0; i < 8; ++i)
    now = store.Put(1, KeyAt(i), PatternPage(i), now).complete_at;
  now = store.Remove(1, KeyAt(0), now).complete_at;
  EXPECT_EQ(store.EnvelopeCount(), 7u);
  now = store.DropPartition(1, now).complete_at;
  EXPECT_EQ(store.EnvelopeCount(), 0u);
}

// Direct rot: bytes changed underneath the envelope (no injector) must
// surface as DataLoss, never as wrong bytes, and fire the callback.
TEST(IntegrityStore, DetectsBytesChangedUnderneath) {
  kv::LocalStoreConfig lc;
  lc.seed = 13;
  auto local_owned = std::make_unique<kv::LocalDramStore>(lc);
  kv::LocalDramStore* local = local_owned.get();
  kv::IntegrityStore store(std::move(local_owned));
  int detected = 0;
  store.set_on_corruption([&](PartitionId, kv::Key) { ++detected; });

  SimTime now = 0;
  const auto page = PatternPage(1);
  now = store.Put(1, KeyAt(0), page, now).complete_at;
  auto rotten = page;
  rotten[100] ^= std::byte{0x04};
  now = local->Put(1, KeyAt(0), rotten, now).complete_at;

  std::array<std::byte, kPageSize> out{};
  const auto r = store.Get(1, KeyAt(0), out, now);
  EXPECT_EQ(r.status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(store.integrity_stats().corruptions_detected, 1u);
  EXPECT_EQ(detected, 1);
}

// --- injected silent corruption ---------------------------------------------

struct InjectedIntegrityRig {
  explicit InjectedIntegrityRig(const chaos::FaultPlan& plan)
      : injector(std::make_shared<chaos::FaultInjector>(plan)) {
    kv::LocalStoreConfig lc;
    lc.seed = 21;
    auto inj_owned = std::make_unique<chaos::InjectedStore>(
        std::make_unique<kv::LocalDramStore>(lc), injector);
    injected = inj_owned.get();
    store = std::make_unique<kv::IntegrityStore>(std::move(inj_owned));
  }
  std::shared_ptr<chaos::FaultInjector> injector;
  chaos::InjectedStore* injected = nullptr;
  std::unique_ptr<kv::IntegrityStore> store;
};

TEST(IntegrityStore, DetectsInjectedBitFlips) {
  chaos::FaultPlan plan;
  plan.seed = 31;
  plan.at(FaultSite::kStoreCorruptBits).fail_p = 1.0;
  InjectedIntegrityRig rig(plan);

  SimTime now = 0;
  rig.injector->BeginStep(0);
  now = rig.store->Put(1, KeyAt(0), PatternPage(3), now).complete_at;
  std::array<std::byte, kPageSize> out{};
  rig.injector->BeginStep(1);
  const auto r = rig.store->Get(1, KeyAt(0), out, now);
  EXPECT_EQ(r.status.code(), StatusCode::kDataLoss);
  EXPECT_GE(rig.injected->bit_corruptions(), 1u);
  EXPECT_GE(rig.store->integrity_stats().corruptions_detected, 1u);
}

TEST(IntegrityStore, DetectsInjectedTornWrites) {
  chaos::FaultPlan plan;
  plan.seed = 32;
  plan.at(FaultSite::kStoreTornWrite).fail_p = 1.0;
  InjectedIntegrityRig rig(plan);

  SimTime now = 0;
  rig.injector->BeginStep(0);
  // The envelope is computed over the UNTORN value; the tear happens below
  // in the injected store, so the committed bytes no longer match it.
  now = rig.store->Put(1, KeyAt(0), PatternPage(4), now).complete_at;
  EXPECT_GE(rig.injected->torn_writes(), 1u);
  std::array<std::byte, kPageSize> out{};
  rig.injector->BeginStep(1);
  const auto r = rig.store->Get(1, KeyAt(0), out, now);
  EXPECT_EQ(r.status.code(), StatusCode::kDataLoss);
}

TEST(IntegrityStore, DetectsInjectedStaleServes) {
  chaos::FaultPlan plan;
  plan.seed = 33;
  plan.at(FaultSite::kStoreStaleGet).fail_p = 1.0;
  InjectedIntegrityRig rig(plan);

  SimTime now = 0;
  rig.injector->BeginStep(0);
  now = rig.store->Put(1, KeyAt(0), PatternPage(5), now).complete_at;
  std::array<std::byte, kPageSize> out{};
  // Only one version exists: a stale serve cannot fire, the read verifies.
  rig.injector->BeginStep(1);
  EXPECT_TRUE(rig.store->Get(1, KeyAt(0), out, now).status.ok());
  // Overwrite; now the injected store can serve the previous version, and
  // the envelope — bound to (key, version) — must reject those bytes even
  // though they were valid for version 1.
  rig.injector->BeginStep(2);
  now = rig.store->Put(1, KeyAt(0), PatternPage(6), now).complete_at;
  rig.injector->BeginStep(3);
  const auto r = rig.store->Get(1, KeyAt(0), out, now);
  EXPECT_EQ(r.status.code(), StatusCode::kDataLoss);
  EXPECT_GE(rig.injected->stale_serves(), 1u);
}

// --- budgeted scrubber -------------------------------------------------------

TEST(IntegrityStore, ScrubFindsPlantedRotWithinBudgetedTicks) {
  kv::LocalStoreConfig lc;
  lc.seed = 41;
  auto local_owned = std::make_unique<kv::LocalDramStore>(lc);
  kv::LocalDramStore* local = local_owned.get();
  kv::IntegrityStore store(std::move(local_owned), /*scrub_budget=*/2);
  int detected = 0;
  store.set_on_corruption([&](PartitionId, kv::Key) { ++detected; });

  SimTime now = 0;
  constexpr std::uint32_t kPages = 8;
  for (std::uint32_t i = 0; i < kPages; ++i)
    now = store.Put(1, KeyAt(i), PatternPage(i), now).complete_at;
  // Plant rot on a cold page no demand read will touch.
  auto rotten = PatternPage(5);
  rotten[9] ^= std::byte{0x80};
  now = local->Put(1, KeyAt(5), rotten, now).complete_at;

  // budget=2 over 8 envelopes: the full sweep takes ceil(8/2)+1 = 5 ticks
  // at most (one extra for an unlucky cursor position).
  int ticks = 0;
  while (store.integrity_stats().scrub_corruptions == 0 && ticks < 5) {
    now = store.PumpMaintenance(now + 1);
    ++ticks;
  }
  EXPECT_EQ(store.integrity_stats().scrub_corruptions, 1u);
  EXPECT_EQ(detected, 1);
  EXPECT_GE(store.integrity_stats().scrub_pages, 1u);
  EXPECT_LE(ticks, 5);
}

// --- replicated detection -> failover -> repair ------------------------------

struct ReplicatedIntegrityRig {
  ReplicatedIntegrityRig() {
    std::vector<std::unique_ptr<kv::KvStore>> reps;
    for (int i = 0; i < 3; ++i) {
      kv::LocalStoreConfig lc;
      lc.seed = 50 + static_cast<std::uint64_t>(i);
      auto local = std::make_unique<kv::LocalDramStore>(lc);
      locals.push_back(local.get());
      auto ig = std::make_unique<kv::IntegrityStore>(std::move(local));
      integrity.push_back(ig.get());
      reps.push_back(std::move(ig));
    }
    store = std::make_unique<kv::ReplicatedStore>(std::move(reps),
                                                  /*write_quorum=*/2);
    for (std::size_t i = 0; i < integrity.size(); ++i) {
      kv::ReplicatedStore* r = store.get();
      integrity[i]->set_on_corruption([r, i](PartitionId p, kv::Key k) {
        r->ReportCorruption(i, p, k);
      });
    }
  }
  std::vector<kv::LocalDramStore*> locals;
  std::vector<kv::IntegrityStore*> integrity;
  std::unique_ptr<kv::ReplicatedStore> store;
};

TEST(ReplicatedIntegrity, CorruptionFailsOverDirtiesAndRepairs) {
  ReplicatedIntegrityRig rig;
  SimTime now = 0;
  const auto page = PatternPage(7);
  now = rig.store->Put(1, KeyAt(0), page, now).complete_at;

  // Rot replica 0's stored copy underneath its envelope.
  auto rotten = page;
  rotten[0] ^= std::byte{0xff};
  now = rig.locals[0]->Put(1, KeyAt(0), rotten, now).complete_at;

  // The read detects DataLoss on replica 0, charges its breaker, dirties
  // the key, and fails over to a clean peer — the caller sees clean bytes.
  std::array<std::byte, kPageSize> out{};
  const auto r = rig.store->Get(1, KeyAt(0), out, now);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(0, std::memcmp(out.data(), page.data(), kPageSize));
  EXPECT_GE(rig.store->replication_stats().corruption_failovers, 1u);

  // Anti-entropy repairs the rotten copy from a clean peer; afterwards
  // replica 0 byte-compares against the original page and verifies.
  now = rig.store->PumpMaintenance(now + 5 * kMillisecond);
  now = rig.store->PumpMaintenance(now + 5 * kMillisecond);
  EXPECT_GE(rig.store->replication_stats().repairs, 1u);
  out.fill(std::byte{0});
  const auto r0 = rig.integrity[0]->Get(1, KeyAt(0), out, now);
  ASSERT_TRUE(r0.status.ok()) << r0.status.ToString();
  EXPECT_EQ(0, std::memcmp(out.data(), page.data(), kPageSize));
}

TEST(ReplicatedIntegrity, AllCopiesRottenSurfacesDataLossNotWrongBytes) {
  ReplicatedIntegrityRig rig;
  SimTime now = 0;
  const auto page = PatternPage(8);
  now = rig.store->Put(1, KeyAt(0), page, now).complete_at;
  auto rotten = page;
  rotten[1] ^= std::byte{0x01};
  for (kv::LocalDramStore* l : rig.locals)
    now = l->Put(1, KeyAt(0), rotten, now).complete_at;

  std::array<std::byte, kPageSize> out{};
  const auto r = rig.store->Get(1, KeyAt(0), out, now);
  EXPECT_EQ(r.status.code(), StatusCode::kDataLoss);
}

TEST(ReplicatedIntegrity, ScrubReportsFeedAntiEntropy) {
  ReplicatedIntegrityRig rig;
  SimTime now = 0;
  const auto page = PatternPage(9);
  now = rig.store->Put(1, KeyAt(0), page, now).complete_at;
  auto rotten = page;
  rotten[2] ^= std::byte{0x20};
  now = rig.locals[1]->Put(1, KeyAt(0), rotten, now).complete_at;

  // No demand read ever touches the rot: the scrubber must find it and the
  // ReportCorruption callback dirties (replica 1, key) for repair.
  rig.integrity[1]->set_scrub_budget(4);
  for (int i = 0; i < 4; ++i)
    now = rig.store->PumpMaintenance(now + 3 * kMillisecond);
  EXPECT_GE(rig.store->replication_stats().corruptions_reported, 1u);
  EXPECT_GE(rig.store->replication_stats().repairs, 1u);
  std::array<std::byte, kPageSize> out{};
  const auto r1 = rig.integrity[1]->Get(1, KeyAt(0), out, now);
  ASSERT_TRUE(r1.status.ok()) << r1.status.ToString();
  EXPECT_EQ(0, std::memcmp(out.data(), page.data(), kPageSize));
}

// --- replica death -> re-replication -----------------------------------------

TEST(ReplicatedIntegrity, DeadReplicaIsReReplicated) {
  std::vector<std::unique_ptr<kv::KvStore>> reps;
  std::vector<kv::FlakyStore*> flaky;
  std::vector<kv::KvStore*> inners;
  for (int i = 0; i < 3; ++i) {
    kv::LocalStoreConfig lc;
    lc.seed = 60 + static_cast<std::uint64_t>(i);
    auto local = std::make_unique<kv::LocalDramStore>(lc);
    inners.push_back(local.get());
    auto f = std::make_unique<kv::FlakyStore>(std::move(local),
                                              /*seed=*/60 + i);
    flaky.push_back(f.get());
    reps.push_back(std::move(f));
  }
  kv::ReplicatedStore store(std::move(reps), /*write_quorum=*/2);
  store.set_dead_after(5 * kMillisecond);

  SimTime now = 0;
  for (std::uint32_t i = 0; i < 8; ++i)
    now = store.Put(1, KeyAt(i), PatternPage(i), now).complete_at;

  // Replica 0 dies hard: every op fails for 100 ms.
  flaky[0]->FailUntil(now + 100 * kMillisecond);
  const auto w = store.Put(1, KeyAt(8), PatternPage(8), now);
  EXPECT_TRUE(w.status.ok());  // quorum 2 of 3 still holds
  now = w.complete_at;

  // Below the declare-dead threshold: still just a suspect.
  now = store.PumpMaintenance(now + kMillisecond);
  EXPECT_EQ(store.replication_stats().dead_declared, 0u);

  // Past the threshold: declared dead, its whole key set marked for
  // re-replication.
  now = store.PumpMaintenance(now + 10 * kMillisecond);
  EXPECT_EQ(store.replication_stats().dead_declared, 1u);
  EXPECT_TRUE(store.replica_dead_marked(0));

  // Outage ends; anti-entropy re-copies everything onto the recovered
  // slot, restoring the replication factor.
  now += 200 * kMillisecond;
  for (int i = 0; i < 4; ++i)
    now = store.PumpMaintenance(now + 5 * kMillisecond);
  EXPECT_GE(store.replication_stats().rf_restored, 8u);
  EXPECT_FALSE(store.replica_dead_marked(0));
  for (std::uint32_t i = 0; i < 9; ++i)
    EXPECT_TRUE(inners[0]->Contains(1, KeyAt(i))) << "key " << i;
}

// --- monitor quarantine ------------------------------------------------------

TEST(MonitorQuarantine, PoisonFastFailProbeAndClear) {
  chaos::ScenarioOptions opt;
  opt.seed = 71;
  opt.store = chaos::StoreKind::kLocalDram;
  opt.integrity_store = true;
  opt.pages = 16;
  opt.lru_capacity = 8;
  chaos::Stack stack(opt);
  SimTime now = 0;

  // Touch every page so some get evicted to the store, then flush.
  std::array<std::byte, 8> stamp{};
  for (std::uint32_t i = 0; i < 16; ++i) {
    const VirtAddr addr = stack.AddrOfPage(i);
    ASSERT_TRUE(chaos::EnsureResident(stack, addr, /*is_write=*/true, now));
    const std::uint64_t v = 0xfeed0000ULL + i;
    std::memcpy(stamp.data(), &v, 8);
    ASSERT_TRUE(stack.region->WriteBytes(addr, stamp).ok());
  }
  now = stack.monitor->DrainWrites(now);

  // Pick a page the tracker holds remotely.
  VirtAddr victim = 0;
  for (std::uint32_t i = 0; i < 16 && victim == 0; ++i) {
    const fm::PageRef p{stack.rid, stack.AddrOfPage(i)};
    if (stack.monitor->tracker().LocationOf(p) == fm::PageLocation::kRemote)
      victim = p.addr;
  }
  ASSERT_NE(victim, 0u) << "no page went remote";
  const kv::Key key = kv::MakePageKey(victim);

  // Save the authoritative bytes, then rot the stored copy underneath the
  // envelope (directly in the inner LocalDramStore).
  std::array<std::byte, kPageSize> save{};
  ASSERT_TRUE(
      stack.store->Get(chaos::Stack::kPartition, key, save, now).status.ok());
  auto& injected =
      static_cast<chaos::InjectedStore&>(stack.integrity[0]->inner());
  auto rotten = save;
  rotten[17] ^= std::byte{0x10};
  (void)injected.inner().Put(chaos::Stack::kPartition, key, rotten, now);

  // The fault sees DataLoss on every copy -> the page is quarantined and
  // the access blocks instead of mapping wrong bytes.
  EXPECT_FALSE(chaos::EnsureResident(stack, victim, /*is_write=*/false, now));
  EXPECT_GE(stack.monitor->stats().poisoned_page_errors, 1u);
  EXPECT_TRUE(stack.monitor->IsPoisoned(stack.rid, victim));

  // Re-faulting fast-fails out of the quarantine set (no store round trip).
  EXPECT_FALSE(chaos::EnsureResident(stack, victim, /*is_write=*/false, now));
  EXPECT_GE(stack.monitor->stats().poisoned_fast_fails, 1u);

  // Repair the stored bytes; the background probe clears the quarantine
  // and the page returns to service with the right contents.
  (void)injected.inner().Put(chaos::Stack::kPartition, key, save, now);
  stack.monitor->PumpBackground(now);
  EXPECT_FALSE(stack.monitor->IsPoisoned(stack.rid, victim));
  EXPECT_GE(stack.monitor->stats().poison_cleared, 1u);
  ASSERT_TRUE(chaos::EnsureResident(stack, victim, /*is_write=*/false, now));
  std::array<std::byte, kPageSize> got{};
  ASSERT_TRUE(stack.region->ReadBytes(victim, got).ok());
  EXPECT_EQ(0, std::memcmp(got.data(), save.data(), kPageSize));
}

// --- replay contracts --------------------------------------------------------

// Appending the corruption sites must not perturb the legacy sites' draws:
// per-site call counters are independent, so a plan that arms the new
// sites (and consults them, as InjectedStore now does on every verb) sees
// bit-identical decisions on the old sites.
TEST(IntegrityReplay, AppendedSitesDoNotPerturbLegacyDraws) {
  chaos::FaultPlan legacy;
  legacy.seed = 81;
  legacy.at(FaultSite::kStoreGet).fail_p = 0.3;
  legacy.at(FaultSite::kStorePut).stall_p = 0.25;
  legacy.at(FaultSite::kStorePut).stall = 10 * kMicrosecond;
  chaos::FaultPlan extended = legacy;
  extended.at(FaultSite::kStoreCorruptBits).fail_p = 0.5;
  extended.at(FaultSite::kStoreTornWrite).fail_p = 0.5;
  extended.at(FaultSite::kStoreStaleGet).fail_p = 0.5;

  chaos::FaultInjector a(legacy);
  chaos::FaultInjector b(extended);
  for (std::uint32_t op = 0; op < 200; ++op) {
    a.BeginStep(op);
    b.BeginStep(op);
    for (int call = 0; call < 3; ++call) {
      const FaultDecision da = a.OnOp(FaultSite::kStoreGet, 0);
      // b interleaves corruption consults exactly as InjectedStore does.
      (void)b.OnOp(FaultSite::kStoreStaleGet, 0);
      (void)b.OnOp(FaultSite::kStoreCorruptBits, 0);
      const FaultDecision db = b.OnOp(FaultSite::kStoreGet, 0);
      ASSERT_EQ(da.fail, db.fail) << "op " << op << " call " << call;
      ASSERT_EQ(da.extra_latency, db.extra_latency);

      const FaultDecision pa = a.OnOp(FaultSite::kStorePut, 0);
      (void)b.OnOp(FaultSite::kStoreTornWrite, 0);
      const FaultDecision pb = b.OnOp(FaultSite::kStorePut, 0);
      ASSERT_EQ(pa.fail, pb.fail);
      ASSERT_EQ(pa.extra_latency, pb.extra_latency);
    }
  }
}

TEST(IntegrityReplay, CorruptionScenariosReplayByteIdentically) {
  for (const std::uint64_t seed : {3ULL, 5ULL, 7ULL, 11ULL}) {
    chaos::ScenarioOptions opt;
    opt.seed = seed;
    opt.plan.seed = seed ^ 0xabcULL;
    opt.store = chaos::StoreKind::kReplicated;
    opt.integrity_store = true;
    opt.scrub_budget = 4;
    opt.resilient_store = true;
    opt.num_ops = 200;
    opt.plan.at(FaultSite::kStoreCorruptBits).fail_p = 0.01;
    opt.plan.at(FaultSite::kStoreTornWrite).fail_p = 0.005;
    opt.plan.at(FaultSite::kStoreStaleGet).fail_p = 0.005;
    const chaos::RunReport r1 = chaos::RunScenario(opt);
    const chaos::RunReport r2 = chaos::RunScenario(opt);
    EXPECT_TRUE(r1.ok) << r1.Report();
    EXPECT_EQ(r1.Report(), r2.Report()) << "seed " << seed;
  }
}

// Under seeded corruption on a replicated, integrity-enveloped stack the
// oracle sweep must pass: every corruption was detected and repaired (or
// routed around); zero wrong bytes ever reached the VM.
TEST(IntegrityScenario, SeededCorruptionZeroWrongBytes) {
  chaos::ScenarioOptions opt;
  opt.seed = 91;
  opt.plan.seed = 0x917ULL;
  opt.store = chaos::StoreKind::kReplicated;
  opt.integrity_store = true;
  opt.scrub_budget = 8;
  opt.resilient_store = true;
  opt.num_ops = 400;
  opt.plan.at(FaultSite::kStoreCorruptBits).fail_p = 0.01;
  opt.plan.at(FaultSite::kStoreTornWrite).fail_p = 0.01;
  opt.plan.at(FaultSite::kStoreStaleGet).fail_p = 0.01;
  const chaos::RunReport rep = chaos::RunScenario(opt);
  EXPECT_TRUE(rep.ok) << rep.Report();
  EXPECT_GE(rep.faults.fails[static_cast<std::size_t>(
                FaultSite::kStoreCorruptBits)],
            1u)
      << "the plan never planted corruption — the test is vacuous";
}

// Legacy plans (no corruption sites, no integrity layer) still replay
// byte-identically — the opt-in machinery is inert by default.
TEST(IntegrityReplay, LegacyScenarioUnchangedByDefault) {
  chaos::ScenarioOptions opt;
  opt.seed = 23;
  opt.plan.seed = 0x23aULL;
  opt.store = chaos::StoreKind::kReplicated;
  opt.num_ops = 150;
  opt.plan.at(FaultSite::kStoreGet).fail_p = 0.05;
  const chaos::RunReport r1 = chaos::RunScenario(opt);
  const chaos::RunReport r2 = chaos::RunScenario(opt);
  EXPECT_TRUE(r1.ok) << r1.Report();
  EXPECT_EQ(r1.Report(), r2.Report());
}

// --- the bit_rot drill -------------------------------------------------------

TEST(BitRotDrill, DetectsRepairsAndRestoresRf) {
  wl::MultiTenantConfig cfg;
  cfg.tenants = wl::StandardTenants(3, wl::YcsbMix::kB, /*scale=*/0.25);
  const wl::TrafficShape shape = wl::MeasureTraffic(cfg.tenants, /*seed=*/42);
  cfg.drill = chaos::MakeDrill(chaos::DrillKind::kBitRot, /*seed=*/42,
                               shape.total_accesses, shape.horizon);

  const wl::MultiTenantResult res = wl::RunTenants(cfg);
  EXPECT_TRUE(res.status.ok()) << res.failure;
  EXPECT_EQ(res.wrong_bytes, 0u) << "corrupt bytes reached a VM";
  EXPECT_GE(res.corruptions_detected, 1u);
  EXPECT_GE(res.repairs, 1u);
  EXPECT_EQ(res.dead_declared, 1u);
  EXPECT_GE(res.rf_restored, 1u);

  // And the whole drill replays byte-identically.
  const wl::MultiTenantResult again = wl::RunTenants(cfg);
  EXPECT_EQ(res.Fingerprint(), again.Fingerprint());
}

}  // namespace
}  // namespace fluid
