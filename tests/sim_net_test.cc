// Unit tests for the simulation kernel (clock, timelines, tracer) and the
// network transport models.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/transport.h"
#include "sim/clock.h"
#include "sim/timeline.h"
#include "sim/trace.h"

namespace fluid {
namespace {

TEST(SimClock, AdvancesMonotonically) {
  SimClock c;
  EXPECT_EQ(c.now(), 0u);
  c.Advance(100);
  EXPECT_EQ(c.now(), 100u);
  c.AdvanceTo(50);  // never goes backwards
  EXPECT_EQ(c.now(), 100u);
  c.AdvanceTo(250);
  EXPECT_EQ(c.now(), 250u);
}

TEST(Timeline, IdleResourceStartsImmediately) {
  Timeline t;
  const auto iv = t.Occupy(1000, 500);
  EXPECT_EQ(iv.start, 1000u);
  EXPECT_EQ(iv.end, 1500u);
  EXPECT_EQ(t.free_at(), 1500u);
}

TEST(Timeline, BusyResourceQueuesFifo) {
  Timeline t;
  (void)t.Occupy(0, 1000);
  const auto second = t.Occupy(100, 200);  // submitted while busy
  EXPECT_EQ(second.start, 1000u);
  EXPECT_EQ(second.end, 1200u);
}

TEST(Timeline, GapsDoNotAccumulateBusyTime) {
  Timeline t;
  (void)t.Occupy(0, 100);
  (void)t.Occupy(10000, 100);
  EXPECT_EQ(t.busy_total(), 200u);
  EXPECT_NEAR(t.Utilization(20000), 0.01, 1e-9);
}

TEST(Timeline, EarliestStartDoesNotReserve) {
  Timeline t;
  (void)t.Occupy(0, 1000);
  EXPECT_EQ(t.EarliestStart(500), 1000u);
  EXPECT_EQ(t.free_at(), 1000u);  // unchanged
}

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tr;
  tr.Record(1, "cat", "msg");
  EXPECT_TRUE(tr.events().empty());
}

TEST(Tracer, EnabledRecordsAndCounts) {
  Tracer tr;
  tr.Enable();
  tr.Record(1, "evict", "page 1");
  tr.Record(2, "evict", "page 2");
  tr.Record(3, "fault", "page 3");
  EXPECT_EQ(tr.events().size(), 3u);
  EXPECT_EQ(tr.CountCategory("evict"), 2u);
}

// --- transports ----------------------------------------------------------------

TEST(Transport, SerializationScalesWithBytes) {
  auto t = net::MakeVerbsTransport();
  EXPECT_EQ(t.SerializationTime(0), 0u);
  // 4 KB at 56 Gb/s is ~585 ns.
  EXPECT_NEAR(static_cast<double>(t.SerializationTime(4096)), 585.0, 10.0);
}

TEST(Transport, OrderingMatchesTheTestbed) {
  // local < verbs < IPoIB-TCP for a 4 KB read, by a wide margin.
  Rng r{7};
  auto local = net::MakeLocalTransport();
  auto verbs = net::MakeVerbsTransport();
  auto tcp = net::MakeIpoibTcpTransport();
  double lsum = 0, vsum = 0, tsum = 0;
  for (int i = 0; i < 2000; ++i) {
    lsum += static_cast<double>(local.SampleRtt(32, 4096, r));
    vsum += static_cast<double>(verbs.SampleRtt(32, 4096, r));
    tsum += static_cast<double>(tcp.SampleRtt(32, 4096, r));
  }
  EXPECT_LT(lsum * 5, vsum);
  EXPECT_LT(vsum * 3, tsum);
}

TEST(Transport, BatchIsCheaperThanSingles) {
  Rng r{8};
  auto verbs = net::MakeVerbsTransport();
  constexpr std::size_t kBatch = 32;
  double batched = 0, single = 0;
  for (int i = 0; i < 500; ++i) {
    batched += static_cast<double>(verbs.SampleBatchRtt(kBatch, 4096, r));
    for (std::size_t j = 0; j < kBatch; ++j)
      single += static_cast<double>(verbs.SampleRtt(4096, 32, r));
  }
  EXPECT_LT(batched * 3, single);
}

TEST(Transport, VerbsReadNearTenMicros) {
  // §V-B: "a page read from RAMCloud involved waiting (10 us) for the
  // network transport".
  Rng r{9};
  auto verbs = net::MakeVerbsTransport();
  double sum = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i)
    sum += ToMicros(verbs.SampleRtt(32, 4096, r));
  const double mean = sum / kN;
  EXPECT_GT(mean, 7.0);
  EXPECT_LT(mean, 12.0);
}

}  // namespace
}  // namespace fluid
