// Resilience layer tests: the HealthTracker circuit breaker, the
// ResilientStore deadline/retry/hedging decorator, FlakyStore scheduled
// outages, ReplicatedStore divergence repair (a recovered replica must
// never serve stale data), RAMCloud coordinator-driven crash recovery,
// and the monitor's graceful degradation to a local swap device.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "blockdev/block_device.h"
#include "common/rng.h"
#include "fluidmem/monitor.h"
#include "kvstore/decorators.h"
#include "kvstore/health.h"
#include "kvstore/key_codec.h"
#include "kvstore/kvstore.h"
#include "kvstore/local_store.h"
#include "kvstore/ramcloud.h"
#include "kvstore/resilient.h"
#include "mem/uffd.h"
#include "swap/swap_space.h"

namespace fluid {
namespace {

using kv::BreakerState;

constexpr VirtAddr kBase = 0x7f0000000000ULL;
constexpr PartitionId kPart = 5;

VirtAddr PageAddr(std::size_t i) { return kBase + i * kPageSize; }
kv::Key KeyAt(std::size_t i) { return kv::MakePageKey(PageAddr(i)); }

std::array<std::byte, kPageSize> PatternPage(std::uint64_t seed) {
  std::array<std::byte, kPageSize> page{};
  Rng rng(seed);
  for (std::size_t i = 0; i + 8 <= kPageSize; i += 8) {
    const std::uint64_t v = rng();
    std::memcpy(page.data() + i, &v, 8);
  }
  return page;
}

// --- HealthTracker -----------------------------------------------------------------

TEST(HealthTracker, TripsOnlyAfterConsecutiveFailures) {
  kv::HealthTracker h{kv::HealthConfig{/*trip_after=*/3,
                                       /*open_duration=*/1 * kMillisecond}};
  EXPECT_EQ(h.StateAt(0), BreakerState::kClosed);
  h.RecordFailure(100);
  h.RecordFailure(200);
  EXPECT_FALSE(h.tripped());
  h.RecordSuccess(300);  // success resets the consecutive count
  EXPECT_EQ(h.consecutive_failures(), 0);
  h.RecordFailure(400);
  h.RecordFailure(500);
  EXPECT_FALSE(h.tripped());
  h.RecordFailure(600);
  EXPECT_TRUE(h.tripped());
  EXPECT_EQ(h.stats().trips, 1u);
  EXPECT_EQ(h.StateAt(700), BreakerState::kOpen);
  EXPECT_EQ(h.StateAt(600 + 1 * kMillisecond), BreakerState::kHalfOpen);
}

TEST(HealthTracker, OpenFastRejectsAndHalfOpenAdmitsOneProbe) {
  kv::HealthTracker h{kv::HealthConfig{/*trip_after=*/1,
                                       /*open_duration=*/1 * kMillisecond}};
  h.RecordFailure(0);
  ASSERT_TRUE(h.tripped());
  // Open: every request is refused without touching the backend.
  EXPECT_FALSE(h.AllowRequest(100));
  EXPECT_FALSE(h.AllowRequest(500 * kMicrosecond));
  EXPECT_EQ(h.stats().fast_rejects, 2u);
  // Half-open: exactly one probe per window.
  const SimTime probe_time = 1 * kMillisecond;
  EXPECT_TRUE(h.AllowRequest(probe_time));
  EXPECT_FALSE(h.AllowRequest(probe_time));  // probe already in flight
  EXPECT_EQ(h.stats().probes, 1u);
  // Probe fails: Open again with the timer re-armed (no second trip).
  h.RecordFailure(probe_time + 50 * kMicrosecond);
  EXPECT_EQ(h.stats().trips, 1u);
  EXPECT_EQ(h.StateAt(probe_time + 100 * kMicrosecond), BreakerState::kOpen);
  // Next window's probe succeeds: Closed.
  const SimTime next = probe_time + 50 * kMicrosecond + 1 * kMillisecond;
  EXPECT_TRUE(h.AllowRequest(next));
  h.RecordSuccess(next + 10 * kMicrosecond);
  EXPECT_FALSE(h.tripped());
  EXPECT_EQ(h.StateAt(next + 20 * kMicrosecond), BreakerState::kClosed);
  EXPECT_TRUE(h.AllowRequest(next + 30 * kMicrosecond));
}

// --- FlakyStore scheduled outages ---------------------------------------------------

TEST(FlakyStore, FailUntilExpiresOnItsOwn) {
  kv::FlakyStore store{std::make_unique<kv::LocalDramStore>(), 53};
  const auto page = PatternPage(7);
  store.FailUntil(500 * kMicrosecond);
  EXPECT_EQ(store.down_until(), 500 * kMicrosecond);

  auto during = store.Put(kPart, KeyAt(0), page, 100 * kMicrosecond);
  EXPECT_EQ(during.status.code(), StatusCode::kUnavailable);

  // Past the window the store recovers without anyone toggling set_down.
  auto after = store.Put(kPart, KeyAt(0), page, 600 * kMicrosecond);
  ASSERT_TRUE(after.status.ok());
  std::array<std::byte, kPageSize> out{};
  auto rd = store.Get(kPart, KeyAt(0), out, after.complete_at);
  ASSERT_TRUE(rd.status.ok());
  EXPECT_EQ(std::memcmp(out.data(), page.data(), kPageSize), 0);
}

// --- ResilientStore ----------------------------------------------------------------

struct ResilientRig {
  kv::FlakyStore* flaky = nullptr;
  std::unique_ptr<kv::ResilientStore> store;

  explicit ResilientRig(kv::ResilientStoreConfig cfg = {},
                        std::uint64_t flaky_seed = 53) {
    auto inner =
        std::make_unique<kv::FlakyStore>(std::make_unique<kv::LocalDramStore>(),
                                         flaky_seed);
    flaky = inner.get();
    store = std::make_unique<kv::ResilientStore>(std::move(inner), cfg);
  }
};

TEST(ResilientStore, RetriesAbsorbATransientOutage) {
  ResilientRig rig;
  const auto page = PatternPage(11);
  // The outage outlives the first attempt (which fails at +50us) but not
  // the backoff schedule: a retry lands after 120us and succeeds.
  rig.flaky->FailUntil(120 * kMicrosecond);
  auto put = rig.store->Put(kPart, KeyAt(0), page, 0);
  ASSERT_TRUE(put.status.ok()) << put.status.ToString();
  EXPECT_GT(put.attempts, 1);
  EXPECT_GT(rig.store->stats().retries, 0u);
  // The caller saw one op; the data really landed.
  std::array<std::byte, kPageSize> out{};
  auto rd = rig.store->Get(kPart, KeyAt(0), out, put.complete_at);
  ASSERT_TRUE(rd.status.ok());
  EXPECT_EQ(std::memcmp(out.data(), page.data(), kPageSize), 0);
}

TEST(ResilientStore, PermanentOutageExhaustsTheAttemptBudget) {
  kv::ResilientStoreConfig cfg;
  cfg.max_attempts = 4;
  ResilientRig rig{cfg};
  rig.flaky->set_down(true);
  std::array<std::byte, kPageSize> out{};
  auto rd = rig.store->Get(kPart, KeyAt(0), out, 0);
  EXPECT_EQ(rd.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(rd.attempts, 4);
  EXPECT_EQ(rig.store->stats().retries, 3u);
}

TEST(ResilientStore, DeadlineBoundsTheRetrySchedule) {
  kv::ResilientStoreConfig cfg;
  cfg.op_deadline = 150 * kMicrosecond;  // first retry would land past it
  ResilientRig rig{cfg};
  rig.flaky->set_down(true);
  const SimTime start = 1 * kMillisecond;
  std::array<std::byte, kPageSize> out{};
  auto rd = rig.store->Get(kPart, KeyAt(0), out, start);
  EXPECT_EQ(rd.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(rig.store->stats().deadline_exceeded, 1u);
  // The deadline gates starting new attempts; the attempt already in
  // flight still runs to its RPC timeout, so completion overshoots the
  // budget by at most one failed-attempt latency.
  EXPECT_LE(rd.complete_at, start + cfg.op_deadline + 50 * kMicrosecond);
}

TEST(ResilientStore, NotFoundIsAuthoritativeNoRetryNoHedge) {
  ResilientRig rig;
  std::array<std::byte, kPageSize> out{};
  auto rd = rig.store->Get(kPart, KeyAt(99), out, 0);
  EXPECT_EQ(rd.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(rd.attempts, 1);
  EXPECT_FALSE(rd.hedged);
  EXPECT_EQ(rig.store->stats().retries, 0u);
  EXPECT_EQ(rig.store->stats().hedged_reads, 0u);
}

// Test double for the hedging path: a store whose next N Gets are slow by a
// fixed amount. Data is served correctly either way.
class SlowGetStore final : public kv::KvStore {
 public:
  SlowGetStore() : inner_(kv::LocalStoreConfig{}) {}

  void SlowNextGets(int n, SimDuration extra) {
    slow_left_ = n;
    extra_ = extra;
  }

  std::string_view name() const override { return "slow-get"; }
  bool has_native_partitions() const override {
    return inner_.has_native_partitions();
  }
  kv::OpResult Put(PartitionId p, kv::Key k,
                   std::span<const std::byte, kPageSize> v,
                   SimTime now) override {
    return inner_.Put(p, k, v, now);
  }
  kv::OpResult Get(PartitionId p, kv::Key k,
                   std::span<std::byte, kPageSize> out, SimTime now) override {
    auto r = inner_.Get(p, k, out, now);
    if (slow_left_ > 0) {
      --slow_left_;
      r.complete_at += extra_;
    }
    return r;
  }
  kv::OpResult Remove(PartitionId p, kv::Key k, SimTime now) override {
    return inner_.Remove(p, k, now);
  }
  kv::OpResult MultiPut(PartitionId p, std::span<kv::KvWrite> w,
                        SimTime now) override {
    return inner_.MultiPut(p, w, now);
  }
  kv::OpResult DropPartition(PartitionId p, SimTime now) override {
    return inner_.DropPartition(p, now);
  }
  bool Contains(PartitionId p, kv::Key k) const override {
    return inner_.Contains(p, k);
  }
  std::size_t ObjectCount() const override { return inner_.ObjectCount(); }
  std::size_t BytesStored() const override { return inner_.BytesStored(); }
  const kv::StoreStats& stats() const override { return inner_.stats(); }

 private:
  kv::LocalDramStore inner_;
  int slow_left_ = 0;
  SimDuration extra_ = 0;
};

TEST(ResilientStore, HedgedReadCutsAStragglersLatency) {
  auto slow_owner = std::make_unique<SlowGetStore>();
  SlowGetStore* slow = slow_owner.get();
  kv::ResilientStoreConfig cfg;
  cfg.hedge_min_samples = 16;
  kv::ResilientStore store{std::move(slow_owner), cfg};

  const auto page = PatternPage(21);
  SimTime now = kMillisecond;
  now = store.Put(kPart, KeyAt(0), page, now).complete_at;

  // Calibrate: enough fast reads for the percentile hedge delay to engage.
  std::array<std::byte, kPageSize> out{};
  for (int i = 0; i < 24; ++i)
    now = store.Get(kPart, KeyAt(0), out, now).complete_at;
  const SimDuration hedge_delay = store.CurrentHedgeDelay();
  EXPECT_LT(hedge_delay, 100 * kMicrosecond);  // calibrated, not the floor

  // One straggler: the first request crawls, the hedge does not.
  const SimDuration kStall = 800 * kMicrosecond;
  slow->SlowNextGets(1, kStall);
  std::memset(out.data(), 0, kPageSize);
  auto rd = store.Get(kPart, KeyAt(0), out, now);
  ASSERT_TRUE(rd.status.ok());
  EXPECT_TRUE(rd.hedged);
  EXPECT_EQ(store.stats().hedged_reads, 1u);
  EXPECT_EQ(store.stats().hedge_wins, 1u);
  // The caller rides the hedge, not the straggler.
  EXPECT_LT(rd.complete_at, now + kStall);
  EXPECT_EQ(std::memcmp(out.data(), page.data(), kPageSize), 0);
}

// Test double for hedge calibration: every `period`-th Get call is slow by
// a fixed amount — a bimodal service-time distribution (fast common case +
// a heavy tail), the shape hedging exists for.
class BimodalGetStore final : public kv::KvStore {
 public:
  BimodalGetStore(int period, SimDuration extra)
      : inner_(kv::LocalStoreConfig{}), period_(period), extra_(extra) {}

  std::string_view name() const override { return "bimodal-get"; }
  bool has_native_partitions() const override {
    return inner_.has_native_partitions();
  }
  kv::OpResult Put(PartitionId p, kv::Key k,
                   std::span<const std::byte, kPageSize> v,
                   SimTime now) override {
    return inner_.Put(p, k, v, now);
  }
  kv::OpResult Get(PartitionId p, kv::Key k,
                   std::span<std::byte, kPageSize> out, SimTime now) override {
    auto r = inner_.Get(p, k, out, now);
    if (++calls_ % period_ == 0) r.complete_at += extra_;
    return r;
  }
  kv::OpResult Remove(PartitionId p, kv::Key k, SimTime now) override {
    return inner_.Remove(p, k, now);
  }
  kv::OpResult MultiPut(PartitionId p, std::span<kv::KvWrite> w,
                        SimTime now) override {
    return inner_.MultiPut(p, w, now);
  }
  kv::OpResult DropPartition(PartitionId p, SimTime now) override {
    return inner_.DropPartition(p, now);
  }
  bool Contains(PartitionId p, kv::Key k) const override {
    return inner_.Contains(p, k);
  }
  std::size_t ObjectCount() const override { return inner_.ObjectCount(); }
  std::size_t BytesStored() const override { return inner_.BytesStored(); }
  const kv::StoreStats& stats() const override { return inner_.stats(); }

 private:
  kv::LocalDramStore inner_;
  int period_;
  SimDuration extra_;
  std::uint64_t calls_ = 0;
};

// Regression: the hedging path used to record the WINNER's latency into the
// calibration histogram. On a bimodal store that is a ratchet — every hedge
// win feeds a shortened sample back in, which drags the p95 delay down,
// which triggers more hedges, forever. With the fix the histogram sees only
// first-attempt service times, so the calibrated delay climbs to the slow
// mode and hedging stops once it no longer helps.
TEST(ResilientStore, HedgeRateStabilisesOnABimodalStore) {
  auto bimodal_owner =
      std::make_unique<BimodalGetStore>(/*period=*/10, /*extra=*/2 * kMillisecond);
  kv::ResilientStoreConfig cfg;
  cfg.hedge_min_samples = 16;
  cfg.op_deadline = 10 * kMillisecond;  // the slow mode must not hit it
  kv::ResilientStore store{std::move(bimodal_owner), cfg};

  const auto page = PatternPage(31);
  SimTime now = kMillisecond;
  now = store.Put(kPart, KeyAt(0), page, now).complete_at;

  std::array<std::byte, kPageSize> out{};
  auto drive = [&](int reads) {
    for (int i = 0; i < reads; ++i) {
      auto r = store.Get(kPart, KeyAt(0), out, now);
      ASSERT_TRUE(r.status.ok());
      now = r.complete_at;
    }
  };

  // Warm-up: while the delay sits at the 200us floor, every slow read
  // (1 in 10) trips a hedge — the mechanism is genuinely active.
  drive(100);
  const std::uint64_t hedges_first_half = store.stats().hedged_reads;
  EXPECT_GT(hedges_first_half, 0u);

  // Once calibrated on first-attempt latencies, the p95 sits in the slow
  // mode: ~2ms, far above the floor.
  EXPECT_GE(store.CurrentHedgeDelay(), 1900 * kMicrosecond);

  // Steady state: the delay now covers the slow mode, so hedging all but
  // stops (a slow call whose jittered base sets a new record can still
  // trip one). With the winner-feedback bug the delay stays ratcheted near
  // the floor and every slow read hedges: ~10 more per 100 reads.
  drive(100);
  EXPECT_LE(store.stats().hedged_reads - hedges_first_half, 2u);
}

TEST(ResilientStore, ReplaysByteIdenticallyFromItsSeed) {
  const auto run = [] {
    kv::ResilientStoreConfig cfg;
    cfg.seed = 77;
    ResilientRig rig{cfg, /*flaky_seed=*/99};
    rig.flaky->set_failure_probability(0.4);
    const auto page = PatternPage(3);
    std::array<std::byte, kPageSize> out{};
    std::vector<SimTime> stamps;
    SimTime now = 0;
    for (std::size_t i = 0; i < 24; ++i) {
      auto w = rig.store->Put(kPart, KeyAt(i % 4), page, now);
      now = w.complete_at;
      stamps.push_back(now);
      auto r = rig.store->Get(kPart, KeyAt(i % 4), out, now);
      now = r.complete_at;
      stamps.push_back(now);
    }
    stamps.push_back(static_cast<SimTime>(rig.store->stats().retries));
    stamps.push_back(static_cast<SimTime>(rig.store->stats().hedged_reads));
    return stamps;
  };
  EXPECT_EQ(run(), run());
}

// --- ResilientStore::MultiGet subset retry -----------------------------------------

// Test double for the batched-read path: records the key list of every
// MultiGet call and can mark a chosen key set kUnavailable for the first N
// batch calls (the data itself is still written — only the status lies, as
// a dropped response would).
class RecordingBatchStore final : public kv::KvStore {
 public:
  RecordingBatchStore() : inner_(kv::LocalStoreConfig{}) {}

  void FailKeysForCalls(std::vector<kv::Key> keys, int calls) {
    flaky_keys_ = std::move(keys);
    fail_calls_ = calls;
  }
  const std::vector<std::vector<kv::Key>>& batch_calls() const {
    return calls_;
  }

  std::string_view name() const override { return "recording-batch"; }
  bool has_native_partitions() const override {
    return inner_.has_native_partitions();
  }
  kv::OpResult Put(PartitionId p, kv::Key k,
                   std::span<const std::byte, kPageSize> v,
                   SimTime now) override {
    return inner_.Put(p, k, v, now);
  }
  kv::OpResult Get(PartitionId p, kv::Key k,
                   std::span<std::byte, kPageSize> out, SimTime now) override {
    return inner_.Get(p, k, out, now);
  }
  kv::OpResult Remove(PartitionId p, kv::Key k, SimTime now) override {
    return inner_.Remove(p, k, now);
  }
  kv::OpResult MultiPut(PartitionId p, std::span<kv::KvWrite> w,
                        SimTime now) override {
    return inner_.MultiPut(p, w, now);
  }
  kv::OpResult MultiGet(PartitionId p, std::span<kv::KvRead> reads,
                        SimTime now) override {
    std::vector<kv::Key> keys;
    keys.reserve(reads.size());
    for (const kv::KvRead& r : reads) keys.push_back(r.key);
    calls_.push_back(std::move(keys));
    kv::OpResult agg = inner_.MultiGet(p, reads, now);
    if (static_cast<int>(calls_.size()) <= fail_calls_) {
      for (kv::KvRead& r : reads)
        if (std::find(flaky_keys_.begin(), flaky_keys_.end(), r.key) !=
            flaky_keys_.end())
          r.status = Status::Unavailable("dropped response");
    }
    return agg;
  }
  kv::OpResult DropPartition(PartitionId p, SimTime now) override {
    return inner_.DropPartition(p, now);
  }
  bool Contains(PartitionId p, kv::Key k) const override {
    return inner_.Contains(p, k);
  }
  std::size_t ObjectCount() const override { return inner_.ObjectCount(); }
  std::size_t BytesStored() const override { return inner_.BytesStored(); }
  const kv::StoreStats& stats() const override { return inner_.stats(); }

 private:
  kv::LocalDramStore inner_;
  std::vector<std::vector<kv::Key>> calls_;
  std::vector<kv::Key> flaky_keys_;
  int fail_calls_ = 0;
};

TEST(ResilientStore, MultiGetRetriesOnlyTheFailedSubset) {
  auto rec_owner = std::make_unique<RecordingBatchStore>();
  RecordingBatchStore* rec = rec_owner.get();
  kv::ResilientStore store{std::move(rec_owner), {}};
  const auto page = PatternPage(31);
  SimTime now = kMillisecond;
  for (std::size_t i = 0; i < 4; ++i)
    now = store.Put(kPart, KeyAt(i), page, now).complete_at;
  rec->FailKeysForCalls({KeyAt(1), KeyAt(3)}, /*calls=*/1);

  std::array<std::array<std::byte, kPageSize>, 5> bufs{};
  std::vector<kv::KvRead> reads;
  for (std::size_t i = 0; i < 4; ++i)
    reads.push_back(kv::KvRead{KeyAt(i), bufs[i], {}});
  reads.push_back(kv::KvRead{KeyAt(9), bufs[4], {}});  // never written

  auto r = store.MultiGet(kPart, reads, now);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.attempts, 2);
  EXPECT_EQ(store.stats().retries, 1u);
  ASSERT_EQ(rec->batch_calls().size(), 2u);
  EXPECT_EQ(rec->batch_calls()[0].size(), 5u);
  // Only the two kUnavailable keys went back out; the successes keep their
  // data and the kNotFound key is authoritative — no retry for it.
  EXPECT_EQ(rec->batch_calls()[1], (std::vector<kv::Key>{KeyAt(1), KeyAt(3)}));
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(reads[i].status.ok()) << "key " << i;
    EXPECT_EQ(std::memcmp(bufs[i].data(), page.data(), kPageSize), 0);
  }
  EXPECT_EQ(reads[4].status.code(), StatusCode::kNotFound);
  EXPECT_GE(r.complete_at, now);
}

TEST(ResilientStore, MultiGetExhaustsBudgetWhenKeysStayDown) {
  kv::ResilientStoreConfig cfg;
  cfg.max_attempts = 3;
  ResilientRig rig{cfg};
  const auto page = PatternPage(33);
  SimTime now = kMillisecond;
  for (std::size_t i = 0; i < 3; ++i)
    now = rig.store->Put(kPart, KeyAt(i), page, now).complete_at;
  rig.flaky->set_down(true);

  std::array<std::array<std::byte, kPageSize>, 3> bufs{};
  std::vector<kv::KvRead> reads;
  for (std::size_t i = 0; i < 3; ++i)
    reads.push_back(kv::KvRead{KeyAt(i), bufs[i], {}});
  auto r = rig.store->MultiGet(kPart, reads, now);
  EXPECT_FALSE(r.status.ok());
  EXPECT_EQ(r.attempts, 3);
  EXPECT_EQ(rig.store->stats().retries, 2u);
  for (const kv::KvRead& rd : reads)
    EXPECT_EQ(rd.status.code(), StatusCode::kUnavailable);
}

TEST(ResilientStore, MultiGetPaysOneBatchRttNotNSequentialGets) {
  // Three RAMCloud stores with identical seeds and identical Put history:
  // one wrapped in ResilientStore, one bare (exact-cost reference), one for
  // the sequential-Get comparison.
  kv::RamcloudConfig rc;
  auto inner_owner = std::make_unique<kv::RamcloudStore>(rc);
  kv::RamcloudStore* inner = inner_owner.get();
  kv::RamcloudStore bare{rc};
  kv::RamcloudStore seq{rc};

  const auto page = PatternPage(37);
  constexpr std::size_t kN = 8;
  SimTime now = kMillisecond;
  for (std::size_t i = 0; i < kN; ++i) {
    auto w = inner->Put(kPart, KeyAt(i), page, now);
    bare.Put(kPart, KeyAt(i), page, now);
    seq.Put(kPart, KeyAt(i), page, now);
    now = w.complete_at;
  }
  kv::ResilientStore store{std::move(inner_owner), {}};

  std::array<std::array<std::byte, kPageSize>, kN> bufs{};
  std::vector<kv::KvRead> reads, reads_ref;
  for (std::size_t i = 0; i < kN; ++i) {
    reads.push_back(kv::KvRead{KeyAt(i), bufs[i], {}});
    reads_ref.push_back(kv::KvRead{KeyAt(i), bufs[i], {}});
  }
  // With no failures the decorator's batch costs EXACTLY what the inner
  // store's native MultiGet costs — one batch RTT, no extra samples.
  auto batched = store.MultiGet(kPart, reads, now);
  auto reference = bare.MultiGet(kPart, reads_ref, now);
  ASSERT_TRUE(batched.status.ok());
  EXPECT_EQ(batched.attempts, 1);
  EXPECT_EQ(batched.issue_done, reference.issue_done);
  EXPECT_EQ(batched.complete_at, reference.complete_at);

  // And far below N dependent single-key Gets.
  SimTime t = now;
  for (std::size_t i = 0; i < kN; ++i) {
    auto g = seq.Get(kPart, KeyAt(i), bufs[i], t);
    ASSERT_TRUE(g.status.ok());
    t = g.complete_at;
  }
  const SimDuration batch_cost = batched.complete_at - now;
  const SimDuration seq_cost = t - now;
  EXPECT_LT(batch_cost, seq_cost / 2)
      << "batch=" << batch_cost << " sequential=" << seq_cost;
}

// --- ReplicatedStore divergence (regression: stale reads after recovery) -----------

struct Triplicated {
  std::array<kv::FlakyStore*, 3> flaky{};
  std::unique_ptr<kv::ReplicatedStore> store;

  explicit Triplicated(int quorum = 2) {
    std::vector<std::unique_ptr<kv::KvStore>> reps;
    for (std::uint64_t i = 0; i < 3; ++i) {
      auto f = std::make_unique<kv::FlakyStore>(
          std::make_unique<kv::LocalDramStore>(), 60 + i);
      flaky[i] = f.get();
      reps.push_back(std::move(f));
    }
    store = std::make_unique<kv::ReplicatedStore>(std::move(reps), quorum);
  }
};

TEST(ReplicatedStore, RecoveredReplicaNeverServesAStaleRead) {
  Triplicated t;
  const auto old_page = PatternPage(0xAA);
  const auto new_page = PatternPage(0xBB);
  SimTime now = kMillisecond;

  // Everyone holds the old value.
  now = t.store->Put(kPart, KeyAt(0), old_page, now).complete_at;

  // Replica 0 misses the overwrite while down.
  t.flaky[0]->set_down(true);
  auto put = t.store->Put(kPart, KeyAt(0), new_page, now);
  ASSERT_TRUE(put.status.ok());  // quorum of 2 still met
  now = put.complete_at;
  EXPECT_GT(t.store->replication_stats().degraded_writes, 0u);
  EXPECT_TRUE(t.store->ReplicaDirty(0, kPart, KeyAt(0)));

  // Replica 0 comes back, well past its probe window — but it still holds
  // the OLD page. The read must not touch it.
  t.flaky[0]->set_down(false);
  now += 10 * kMillisecond;
  std::array<std::byte, kPageSize> out{};
  auto rd = t.store->Get(kPart, KeyAt(0), out, now);
  ASSERT_TRUE(rd.status.ok());
  now = rd.complete_at;
  EXPECT_EQ(std::memcmp(out.data(), new_page.data(), kPageSize), 0)
      << "recovered replica served a stale page";
  EXPECT_GT(t.store->replication_stats().stale_skips, 0u);

  // Anti-entropy repair resyncs the diverged replica from a clean peer.
  EXPECT_GT(t.store->DirtyObjectCount(), 0u);
  now = t.store->PumpMaintenance(now);
  EXPECT_EQ(t.store->DirtyObjectCount(), 0u);
  EXPECT_GT(t.store->replication_stats().repairs, 0u);
  EXPECT_FALSE(t.store->ReplicaDirty(0, kPart, KeyAt(0)));

  // Replica 0's copy is now byte-identical to the authoritative value.
  std::memset(out.data(), 0, kPageSize);
  auto direct = t.store->replica(0).Get(kPart, KeyAt(0), out, now);
  ASSERT_TRUE(direct.status.ok());
  EXPECT_EQ(std::memcmp(out.data(), new_page.data(), kPageSize), 0);
}

TEST(ReplicatedStore, MissedRemoveCannotResurrectTheKey) {
  Triplicated t;
  const auto page = PatternPage(0xCC);
  SimTime now = kMillisecond;
  now = t.store->Put(kPart, KeyAt(1), page, now).complete_at;

  t.flaky[0]->set_down(true);
  auto rm = t.store->Remove(kPart, KeyAt(1), now);
  ASSERT_TRUE(rm.status.ok());
  now = rm.complete_at;
  EXPECT_TRUE(t.store->ReplicaDirty(0, kPart, KeyAt(1)));

  t.flaky[0]->set_down(false);
  now += 10 * kMillisecond;
  // Replica 0 still holds the zombie copy; the read must report the
  // authoritative answer: gone.
  std::array<std::byte, kPageSize> out{};
  auto rd = t.store->Get(kPart, KeyAt(1), out, now);
  EXPECT_EQ(rd.status.code(), StatusCode::kNotFound);
  now = rd.complete_at;

  // Repair deletes the zombie from the recovered replica.
  now = t.store->PumpMaintenance(now);
  EXPECT_EQ(t.store->DirtyObjectCount(), 0u);
  EXPECT_FALSE(t.store->replica(0).Contains(kPart, KeyAt(1)));
}

TEST(ReplicatedStore, RepairWaitsOutAnOpenBreaker) {
  Triplicated t;
  const auto page = PatternPage(0xDD);
  SimTime now = kMillisecond;
  t.flaky[2]->set_down(true);
  now = t.store->Put(kPart, KeyAt(2), page, now).complete_at;
  ASSERT_TRUE(t.store->ReplicaDirty(2, kPart, KeyAt(2)));

  // Breaker for replica 2 is freshly open: the pass must not batter it.
  now = t.store->PumpMaintenance(now);
  EXPECT_GT(t.store->DirtyObjectCount(), 0u);

  // Once the replica is back and its probe window elapsed, repair lands —
  // and its success is what closes the breaker again.
  t.flaky[2]->set_down(false);
  now += 10 * kMillisecond;
  now = t.store->PumpMaintenance(now);
  EXPECT_EQ(t.store->DirtyObjectCount(), 0u);
  EXPECT_FALSE(t.store->replica_suspect(2));
}

// --- RAMCloud coordinator-driven recovery ------------------------------------------

TEST(RamcloudStore, PumpMaintenanceRecoversACrashedMasterOnItsOwn) {
  kv::RamcloudConfig rc;
  rc.backup_count = 1;
  rc.auto_recover = true;
  kv::RamcloudStore store{rc};

  SimTime now = kMillisecond;
  const auto page = PatternPage(0x5A);
  for (std::size_t i = 0; i < 8; ++i)
    now = store.Put(kPart, KeyAt(i), page, now).complete_at;

  store.CrashMaster(now);
  ASSERT_TRUE(store.crashed());
  std::array<std::byte, kPageSize> out{};
  EXPECT_EQ(store.Get(kPart, KeyAt(0), out, now).status.code(),
            StatusCode::kUnavailable);

  // The coordinator has not noticed yet: pumping inside the detection
  // window does nothing.
  EXPECT_EQ(store.PumpMaintenance(now + 100 * kMicrosecond),
            now + 100 * kMicrosecond);
  EXPECT_TRUE(store.crashed());

  // Past the failure-detection delay the pump triggers Recover() itself.
  const SimTime later = now + rc.failure_detection_delay + 1;
  const SimTime recovered = store.PumpMaintenance(later);
  EXPECT_GE(recovered, later);
  EXPECT_FALSE(store.crashed());
  EXPECT_EQ(store.auto_recoveries(), 1u);
  for (std::size_t i = 0; i < 8; ++i) {
    auto rd = store.Get(kPart, KeyAt(i), out, recovered);
    ASSERT_TRUE(rd.status.ok()) << "key " << i;
    EXPECT_EQ(std::memcmp(out.data(), page.data(), kPageSize), 0);
  }
}

// --- Monitor graceful degradation ---------------------------------------------------

struct DegradedFixture {
  mem::FramePool pool{512};
  kv::FlakyStore store;
  blk::BlockDevice spill_dev = blk::MakePmemDevice(128);
  swap::SwapSpace spill{spill_dev};
  std::unique_ptr<fm::Monitor> monitor;
  std::unique_ptr<mem::UffdRegion> region;
  fm::RegionId rid = 0;

  explicit DegradedFixture(bool attach_spill = true,
                           std::size_t max_drain_rounds = 8)
      : store(std::make_unique<kv::LocalDramStore>(), 91) {
    fm::MonitorConfig cfg;
    cfg.lru_capacity_pages = 8;
    cfg.write_batch_pages = 4;
    cfg.max_drain_rounds = max_drain_rounds;
    monitor = std::make_unique<fm::Monitor>(cfg, store, pool);
    if (attach_spill) monitor->AttachLocalSpill(spill);
    region = std::make_unique<mem::UffdRegion>(77, kBase, 64, pool);
    rid = monitor->RegisterRegion(*region, kPart);
  }

  bool Touch(std::size_t page, SimTime& now, bool is_write) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      if (region->Access(PageAddr(page), is_write).kind !=
          mem::AccessKind::kUffdFault)
        return true;
      auto out = monitor->HandleFault(rid, PageAddr(page), now);
      now = std::max(now, out.wake_at);
      if (!out.status.ok()) now += 200 * kMicrosecond;
    }
    return region->Access(PageAddr(page), is_write).kind !=
           mem::AccessKind::kUffdFault;
  }

  void WriteMarker(std::size_t page, std::uint64_t marker) {
    ASSERT_TRUE(region
                    ->WriteBytes(PageAddr(page) + 16,
                                 std::as_bytes(std::span{&marker, 1}))
                    .ok());
  }

  std::uint64_t ReadMarker(std::size_t page) {
    std::uint64_t got = 0;
    EXPECT_TRUE(region
                    ->ReadBytes(PageAddr(page) + 16,
                                std::as_writable_bytes(std::span{&got, 1}))
                    .ok());
    return got;
  }
};

TEST(MonitorDegradation, SpillsToLocalSwapDuringAStoreOutage) {
  DegradedFixture f;
  f.store.FailUntil(50 * kMillisecond);
  SimTime now = kMillisecond;

  // Write enough pages to overflow the 8-page LRU many times over; with
  // the store down, flush batches fail until the breaker trips, then the
  // write path diverts to the local swap device.
  for (std::size_t p = 0; p < 24; ++p) {
    ASSERT_TRUE(f.Touch(p, now, /*is_write=*/true)) << "page " << p;
    f.WriteMarker(p, 0xabc000ULL + p);
  }
  now = f.monitor->DrainWrites(now);

  const fm::MonitorStats& ms = f.monitor->stats();
  EXPECT_GT(ms.spilled_pages, 0u);
  EXPECT_EQ(ms.lost_page_errors, 0u);
  EXPECT_EQ(f.monitor->write_list().PendingCount(), 0u);
  EXPECT_EQ(f.monitor->write_list().InFlightCount(), 0u);
  EXPECT_GT(f.monitor->SpilledPageCount(), 0u);
  EXPECT_TRUE(f.monitor->write_health().tripped());

  // Every page — resident or spilled — still reads back its marker, with
  // the store still dead. Refaults on spilled pages are served locally.
  for (std::size_t p = 0; p < 24; ++p) {
    ASSERT_TRUE(f.Touch(p, now, /*is_write=*/false)) << "page " << p;
    EXPECT_EQ(f.ReadMarker(p), 0xabc000ULL + p) << "page " << p;
  }
  EXPECT_GT(f.monitor->stats().spill_refaults, 0u);
  EXPECT_EQ(f.monitor->stats().lost_page_errors, 0u);
}

TEST(MonitorDegradation, SpilledPagesMigrateBackAfterRecovery) {
  DegradedFixture f;
  f.store.FailUntil(20 * kMillisecond);
  SimTime now = kMillisecond;
  for (std::size_t p = 0; p < 24; ++p) {
    ASSERT_TRUE(f.Touch(p, now, /*is_write=*/true));
    f.WriteMarker(p, 0xdef000ULL + p);
  }
  now = f.monitor->DrainWrites(now);
  ASSERT_GT(f.monitor->SpilledPageCount(), 0u);

  // The store comes back; PumpBackground's migrate-back path probes the
  // breaker itself and rebalances a bounded batch per tick.
  now = std::max(now, SimTime{21 * kMillisecond});
  int pumps = 0;
  while (f.monitor->SpilledPageCount() > 0 && pumps < 64) {
    f.monitor->PumpBackground(now);
    now += 100 * kMicrosecond;
    ++pumps;
  }
  EXPECT_EQ(f.monitor->SpilledPageCount(), 0u);
  EXPECT_GT(f.monitor->stats().spill_migrated_back, 0u);
  EXPECT_FALSE(f.monitor->write_health().tripped());
  // The rebalanced pages are durable in the store again.
  std::size_t remote_found = 0;
  for (std::size_t p = 0; p < 24; ++p)
    if (f.store.Contains(kPart, KeyAt(p))) ++remote_found;
  EXPECT_GT(remote_found, 0u);
  // And all spill slots were handed back.
  EXPECT_EQ(f.spill.UsedSlots(), 0u);
}

TEST(MonitorDegradation, ReadBreakerFastFailsInsteadOfPayingTimeouts) {
  DegradedFixture f;
  SimTime now = kMillisecond;
  // Make pages 0..3 remote while the store is healthy.
  for (std::size_t p = 0; p < 12; ++p) {
    ASSERT_TRUE(f.Touch(p, now, /*is_write=*/true));
    f.WriteMarker(p, 0x111000ULL + p);
  }
  now = f.monitor->DrainWrites(now);
  ASSERT_EQ(f.monitor->stats().lost_page_errors, 0u);

  f.store.set_down(true);
  // Each failed remote read costs the injected 50us timeout and feeds the
  // read breaker; after it trips, faults are refused at zero added cost.
  std::size_t timeout_faults = 0;
  for (int i = 0; i < 8; ++i) {
    if (f.region->Access(PageAddr(0), false).kind !=
        mem::AccessKind::kUffdFault)
      break;
    auto out = f.monitor->HandleFault(f.rid, PageAddr(0), now);
    EXPECT_FALSE(out.status.ok());
    if (f.monitor->stats().breaker_fast_fails == 0) ++timeout_faults;
    now = std::max(now, out.wake_at) + 10 * kMicrosecond;
  }
  EXPECT_GT(f.monitor->stats().transient_read_errors, 0u);
  EXPECT_GT(f.monitor->stats().breaker_fast_fails, 0u);
  EXPECT_EQ(f.monitor->stats().lost_page_errors, 0u);
  EXPECT_LE(timeout_faults, 4u);  // bounded stall: only pre-trip faults paid

  // Recovery: past the open window the next fault is the probe and serves
  // the page again.
  f.store.set_down(false);
  now += 5 * kMillisecond;
  ASSERT_TRUE(f.Touch(0, now, /*is_write=*/false));
  EXPECT_EQ(f.ReadMarker(0), 0x111000ULL);
}

TEST(MonitorDegradation, DrainBudgetIsConfigurableAndCounted) {
  // No spill: a dead store leaves the writes buffered after the budget.
  DegradedFixture f{/*attach_spill=*/false, /*max_drain_rounds=*/2};
  f.store.set_down(true);
  SimTime now = kMillisecond;
  for (std::size_t p = 0; p < 16; ++p) {
    ASSERT_TRUE(f.Touch(p, now, /*is_write=*/true));
    f.WriteMarker(p, 0x222000ULL + p);
  }
  now = f.monitor->DrainWrites(now);
  EXPECT_EQ(f.monitor->stats().drain_budget_exhausted, 1u);
  EXPECT_GT(f.monitor->write_list().PendingCount(), 0u);  // buffered, not lost
  EXPECT_EQ(f.monitor->stats().lost_page_errors, 0u);
  EXPECT_EQ(f.monitor->stats().spilled_pages, 0u);  // nowhere to degrade to
}

TEST(MonitorDegradation, UnregisterWithDropFreesSpillSlots) {
  DegradedFixture f;
  f.store.FailUntil(50 * kMillisecond);
  SimTime now = kMillisecond;
  for (std::size_t p = 0; p < 24; ++p) {
    ASSERT_TRUE(f.Touch(p, now, /*is_write=*/true));
    f.WriteMarker(p, 0x333000ULL + p);
  }
  now = f.monitor->DrainWrites(now);
  ASSERT_GT(f.monitor->SpilledPageCount(), 0u);
  const std::size_t used_before = f.spill.UsedSlots();
  ASSERT_GT(used_before, 0u);

  ASSERT_TRUE(f.monitor->UnregisterRegion(f.rid, now).ok());
  EXPECT_EQ(f.monitor->SpilledPageCount(), 0u);
  EXPECT_EQ(f.spill.UsedSlots(), 0u);
  EXPECT_EQ(f.pool.in_use(), f.region->ResidentFrames());
}

TEST(MonitorDegradation, MigrationUnregisterMakesSpilledPagesDurableFirst) {
  DegradedFixture f;
  f.store.FailUntil(10 * kMillisecond);
  SimTime now = kMillisecond;
  for (std::size_t p = 0; p < 24; ++p) {
    ASSERT_TRUE(f.Touch(p, now, /*is_write=*/true));
    f.WriteMarker(p, 0x444000ULL + p);
  }
  now = f.monitor->DrainWrites(now);
  ASSERT_GT(f.monitor->SpilledPageCount(), 0u);

  // While the store is still down, a migration-style unregister must
  // refuse: the spilled pages cannot become durable yet.
  auto refused = f.monitor->UnregisterRegion(f.rid, now,
                                             /*drop_partition=*/false);
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable);
  EXPECT_NE(f.monitor->region_of(f.rid), nullptr);  // still registered

  // After recovery the same call pushes every spilled page to the store.
  now = 11 * kMillisecond;
  const std::size_t spilled = f.monitor->SpilledPageCount();
  ASSERT_TRUE(f.monitor->UnregisterRegion(f.rid, now,
                                          /*drop_partition=*/false)
                  .ok());
  EXPECT_EQ(f.monitor->SpilledPageCount(), 0u);
  EXPECT_GE(f.monitor->stats().spill_migrated_back, spilled);
  EXPECT_EQ(f.spill.UsedSlots(), 0u);
}

}  // namespace
}  // namespace fluid
