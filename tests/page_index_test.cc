// Differential parity suite for the radix-tree page index: PageTracker
// (radix_index.h) must behave identically to the historical hash-map core
// (hash_page_tracker.h) under randomized op streams at every shard count,
// the new region-scoped ops (ForgetRegion counts, run detection, ordered
// walks) must be exact, the hot-node cache must stay invisible to
// correctness, and chaos (seed, plan) pairs must keep replaying
// byte-identically with the tree underneath — including under injected
// store faults and bit corruption.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <utility>
#include <vector>

#include "chaos/harness.h"
#include "common/fault_hook.h"
#include "fluidmem/hash_page_tracker.h"
#include "fluidmem/monitor.h"
#include "fluidmem/page_state.h"
#include "fluidmem/page_tracker.h"

namespace fluid::fm {
namespace {

constexpr VirtAddr kBase = 0x7f0000000000ULL;
constexpr VirtAddr PageAddr(std::uint64_t i) { return kBase + i * kPageSize; }
PageRef Ref(std::uint32_t region, std::uint64_t page) {
  return PageRef{region, PageAddr(page)};
}

constexpr PageLocation kAllLocations[] = {
    PageLocation::kResident, PageLocation::kWriteList,
    PageLocation::kInFlight, PageLocation::kRemote,
    PageLocation::kSpilled,  PageLocation::kColdTier,
};

using PageMap = std::map<std::pair<std::uint32_t, VirtAddr>, PageLocation>;

PageMap Snapshot(const PageTracker& t) {
  PageMap m;
  t.ForEach([&](const PageRef& p, PageLocation loc) {
    m[{p.region, p.addr}] = loc;
  });
  return m;
}

PageMap Snapshot(const HashPageTracker& t) {
  PageMap m;
  t.ForEach([&](const PageRef& p, PageLocation loc) {
    m[{p.region, p.addr}] = loc;
  });
  return m;
}

PageMap RegionSnapshot(const PageTracker& t, RegionId region) {
  PageMap m;
  t.ForEachInRegion(region, [&](const PageRef& p, PageLocation loc) {
    m[{p.region, p.addr}] = loc;
  });
  return m;
}

PageMap RegionSnapshot(const HashPageTracker& t, RegionId region) {
  PageMap m;
  t.ForEachInRegion(region, [&](const PageRef& p, PageLocation loc) {
    m[{p.region, p.addr}] = loc;
  });
  return m;
}

// Expand the tracker's run stream back into per-page facts so it can be
// diffed against a page-level snapshot: the runs must tile the region's
// pages exactly (no overlap, no gap, maximal).
PageMap RunsAsPages(const PageTracker& t, RegionId region,
                    std::size_t* runs_out) {
  PageMap m;
  std::size_t runs = 0;
  VirtAddr prev_end = 0;
  PageLocation prev_loc{};
  bool have_prev = false;
  t.ForEachRunInRegion(region, [&](const PageRef& first, std::size_t pages,
                                   PageLocation loc) {
    ++runs;
    EXPECT_GT(pages, 0u);
    if (have_prev) {
      EXPECT_GE(first.addr, prev_end) << "runs overlap or go backwards";
      // Maximality: adjacent runs must differ in location.
      if (first.addr == prev_end) {
        EXPECT_NE(loc, prev_loc);
      }
    }
    for (std::size_t i = 0; i < pages; ++i)
      m[{region, first.addr + i * kPageSize}] = loc;
    prev_end = first.addr + pages * kPageSize;
    prev_loc = loc;
    have_prev = true;
  });
  if (runs_out != nullptr) *runs_out = runs;
  return m;
}

// Drive the tree-backed tracker and the hash reference through one
// identical randomized op stream, diffing full state at checkpoints.
void RunDifferential(std::uint64_t seed, std::size_t shards,
                     std::size_t num_ops) {
  std::mt19937_64 rng(seed);
  PageTracker tree(shards);
  HashPageTracker hash(shards);

  constexpr std::uint32_t kRegions = 5;
  // Mix dense low pages (block-leaf packing, runs) with sparse high pages
  // (path compression, deep splits).
  auto random_page = [&]() -> std::uint64_t {
    switch (rng() % 4) {
      case 0: return rng() % 256;                       // one dense block
      case 1: return rng() % 4096;                      // dense-ish
      case 2: return (rng() % 64) * 0x10000ULL;         // sparse, far apart
      default: return rng() % (1ULL << 36);             // anywhere
    }
  };

  std::vector<PageRef> touched;  // bias some ops toward known pages
  auto pick = [&]() -> PageRef {
    if (!touched.empty() && rng() % 2 == 0)
      return touched[rng() % touched.size()];
    PageRef p = Ref(static_cast<std::uint32_t>(rng() % kRegions),
                    random_page());
    touched.push_back(p);
    return p;
  };

  auto check = [&](std::size_t at_op) {
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " shards=" + std::to_string(shards) +
                 " op=" + std::to_string(at_op));
    ASSERT_EQ(tree.Size(), hash.Size());
    for (PageLocation loc : kAllLocations)
      EXPECT_EQ(tree.CountIn(loc), hash.CountIn(loc));
    EXPECT_EQ(Snapshot(tree), Snapshot(hash));
    for (std::uint32_t r = 0; r < kRegions; ++r) {
      const PageMap want = RegionSnapshot(hash, r);
      EXPECT_EQ(RegionSnapshot(tree, r), want);
      EXPECT_EQ(RunsAsPages(tree, r, nullptr), want);
    }
    // Point lookups (strict + legacy + heat) on a sample of known pages.
    for (std::size_t i = 0; i < std::min<std::size_t>(64, touched.size());
         ++i) {
      const PageRef& p = touched[(i * 97 + at_op) % touched.size()];
      EXPECT_EQ(tree.Seen(p), hash.Seen(p));
      EXPECT_EQ(tree.Lookup(p), hash.Lookup(p));
      EXPECT_EQ(tree.LocationOf(p), hash.LocationOf(p));
      EXPECT_EQ(tree.HeatOf(p), hash.HeatOf(p));
    }
  };

  for (std::size_t op = 0; op < num_ops; ++op) {
    const unsigned what = static_cast<unsigned>(rng() % 100);
    if (what < 55) {
      const PageRef p = pick();
      const PageLocation loc = kAllLocations[rng() % 6];
      switch (loc) {
        case PageLocation::kResident: tree.MarkResident(p); hash.MarkResident(p); break;
        case PageLocation::kWriteList: tree.MarkWriteList(p); hash.MarkWriteList(p); break;
        case PageLocation::kInFlight: tree.MarkInFlight(p); hash.MarkInFlight(p); break;
        case PageLocation::kRemote: tree.MarkRemote(p); hash.MarkRemote(p); break;
        case PageLocation::kSpilled: tree.MarkSpilled(p); hash.MarkSpilled(p); break;
        case PageLocation::kColdTier: tree.MarkColdTier(p); hash.MarkColdTier(p); break;
      }
    } else if (what < 75) {
      const PageRef p = pick();
      tree.BumpHeat(p, 2, 8);
      hash.BumpHeat(p, 2, 8);
    } else if (what < 90) {
      const PageRef p = pick();
      tree.Forget(p);
      hash.Forget(p);
    } else if (what < 95) {
      tree.DecayHeat();
      hash.DecayHeat();
    } else if (what < 99) {
      // Re-read a recent page: exercises the hot-node cache fast path in
      // between mutations without changing state.
      const PageRef p = pick();
      EXPECT_EQ(tree.Lookup(p), hash.Lookup(p));
    } else {
      const RegionId r = static_cast<RegionId>(rng() % kRegions);
      EXPECT_EQ(tree.ForgetRegion(r), hash.ForgetRegion(r));
    }
    if (op % 2000 == 1999) check(op);
  }
  check(num_ops);
}

TEST(PageIndexParity, MatchesHashSingleShard) {
  for (const std::uint64_t seed : {1ULL, 71ULL, 20260807ULL})
    RunDifferential(seed, /*shards=*/1, /*num_ops=*/12000);
}

TEST(PageIndexParity, MatchesHashFourShards) {
  for (const std::uint64_t seed : {2ULL, 4242ULL})
    RunDifferential(seed, /*shards=*/4, /*num_ops=*/12000);
}

TEST(PageIndexParity, MatchesHashSixteenShards) {
  for (const std::uint64_t seed : {3ULL, 977ULL})
    RunDifferential(seed, /*shards=*/16, /*num_ops=*/12000);
}

// --- strict lookup ----------------------------------------------------------

TEST(PageIndex, StrictLookupDistinguishesUnknownFromRemote) {
  PageTracker t;
  const PageRef unknown = Ref(1, 10);
  EXPECT_EQ(t.Lookup(unknown), std::nullopt);
  // The legacy call papers over the difference — that is exactly why it is
  // legacy-only.
  EXPECT_EQ(t.LocationOf(unknown), PageLocation::kRemote);

  t.MarkRemote(unknown);
  EXPECT_EQ(t.Lookup(unknown), PageLocation::kRemote);

  t.Forget(unknown);
  EXPECT_EQ(t.Lookup(unknown), std::nullopt);
  EXPECT_FALSE(t.Seen(unknown));
}

TEST(PageIndex, LookupSurvivesRegionForget) {
  PageTracker t(4);
  for (std::uint64_t i = 0; i < 300; ++i) t.MarkResident(Ref(7, i));
  for (std::uint64_t i = 0; i < 100; ++i) t.MarkSpilled(Ref(8, i));
  EXPECT_EQ(t.ForgetRegion(7), 300u);
  EXPECT_EQ(t.Lookup(Ref(7, 5)), std::nullopt);
  EXPECT_EQ(t.Lookup(Ref(8, 5)), PageLocation::kSpilled);
  EXPECT_EQ(t.Size(), 100u);
  EXPECT_EQ(t.ForgetRegion(7), 0u);  // already gone
}

// --- region walks and runs --------------------------------------------------

TEST(PageIndex, RegionWalkIsAscendingPerShard) {
  PageTracker t;  // one shard: the walk order is the tree's key order
  std::mt19937_64 rng(99);
  std::vector<std::uint64_t> pages;
  for (int i = 0; i < 500; ++i) pages.push_back(rng() % (1ULL << 30));
  for (std::uint64_t p : pages) t.MarkResident(Ref(3, p));
  VirtAddr prev = 0;
  std::size_t seen = 0;
  t.ForEachInRegion(3, [&](const PageRef& p, PageLocation) {
    EXPECT_GT(p.addr, prev);
    prev = p.addr;
    ++seen;
  });
  EXPECT_EQ(seen, t.Size());
}

TEST(PageIndex, RunDetectionFindsMaximalRuns) {
  PageTracker t;  // single shard: runs stream straight off the tree
  // Layout in region 9: [0,16) resident, [16,20) write-list, gap,
  // [40,41) resident, gap, [300,330) spilled (crosses nothing special),
  // and one page far away.
  for (std::uint64_t i = 0; i < 16; ++i) t.MarkResident(Ref(9, i));
  for (std::uint64_t i = 16; i < 20; ++i) t.MarkWriteList(Ref(9, i));
  t.MarkResident(Ref(9, 40));
  for (std::uint64_t i = 300; i < 330; ++i) t.MarkSpilled(Ref(9, i));
  t.MarkColdTier(Ref(9, 1'000'000));
  // Noise in another region must not leak in.
  for (std::uint64_t i = 0; i < 64; ++i) t.MarkResident(Ref(10, i));

  std::vector<std::tuple<VirtAddr, std::size_t, PageLocation>> runs;
  t.ForEachRunInRegion(9, [&](const PageRef& first, std::size_t pages,
                              PageLocation loc) {
    runs.emplace_back(first.addr, pages, loc);
  });
  ASSERT_EQ(runs.size(), 5u);
  EXPECT_EQ(runs[0], std::make_tuple(PageAddr(0), 16u, PageLocation::kResident));
  EXPECT_EQ(runs[1], std::make_tuple(PageAddr(16), 4u, PageLocation::kWriteList));
  EXPECT_EQ(runs[2], std::make_tuple(PageAddr(40), 1u, PageLocation::kResident));
  EXPECT_EQ(runs[3], std::make_tuple(PageAddr(300), 30u, PageLocation::kSpilled));
  EXPECT_EQ(runs[4],
            std::make_tuple(PageAddr(1'000'000), 1u, PageLocation::kColdTier));
}

TEST(PageIndex, RunDetectionAcrossBlockLeafBoundary) {
  PageTracker t;
  // One run spanning the 256-page leaf boundary: pages 250..262.
  for (std::uint64_t i = 250; i < 263; ++i) t.MarkResident(Ref(2, i));
  std::size_t runs = 0;
  t.ForEachRunInRegion(2, [&](const PageRef& first, std::size_t pages,
                              PageLocation loc) {
    ++runs;
    EXPECT_EQ(first.addr, PageAddr(250));
    EXPECT_EQ(pages, 13u);
    EXPECT_EQ(loc, PageLocation::kResident);
  });
  EXPECT_EQ(runs, 1u);
}

TEST(PageIndex, MultiShardRunsMatchSingleShard) {
  std::mt19937_64 rng(2024);
  PageTracker one(1), eight(8);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t page = rng() % 2048;
    const PageLocation loc = kAllLocations[rng() % 6];
    const PageRef p = Ref(4, page);
    for (PageTracker* t : {&one, &eight}) {
      switch (loc) {
        case PageLocation::kResident: t->MarkResident(p); break;
        case PageLocation::kWriteList: t->MarkWriteList(p); break;
        case PageLocation::kInFlight: t->MarkInFlight(p); break;
        case PageLocation::kRemote: t->MarkRemote(p); break;
        case PageLocation::kSpilled: t->MarkSpilled(p); break;
        case PageLocation::kColdTier: t->MarkColdTier(p); break;
      }
    }
  }
  std::size_t runs1 = 0, runs8 = 0;
  const PageMap m1 = RunsAsPages(one, 4, &runs1);
  const PageMap m8 = RunsAsPages(eight, 4, &runs8);
  EXPECT_EQ(m1, m8);
  EXPECT_EQ(runs1, runs8);  // both streams must emit maximal runs
  EXPECT_GT(runs1, 0u);
}

// --- hot-node cache ---------------------------------------------------------

TEST(PageIndex, HotCacheAcceleratesBlockLocalLookups) {
  PageTracker t;  // single shard so the counters aggregate one cache
  for (std::uint64_t i = 0; i < 256; ++i) t.MarkResident(Ref(1, i));
  const std::uint64_t miss0 = t.HotCacheMisses();
  // Block-local stream: after the first touch primes the cache, the rest
  // must hit it.
  for (std::uint64_t i = 0; i < 256; ++i)
    EXPECT_EQ(t.Lookup(Ref(1, i)), PageLocation::kResident);
  EXPECT_GE(t.HotCacheHits(), 255u);
  EXPECT_LE(t.HotCacheMisses() - miss0, 1u);
}

TEST(PageIndex, HotCacheStaysCorrectAcrossGrowAndErase) {
  PageTracker t;
  // Prime the cache inside one block while the leaf is still small…
  for (std::uint64_t i = 0; i < 8; ++i) t.MarkResident(Ref(6, i));
  EXPECT_EQ(t.Lookup(Ref(6, 3)), PageLocation::kResident);
  // …then force the Leaf16 -> Leaf256 growth and keep reading through the
  // (re-pointed) cache.
  for (std::uint64_t i = 8; i < 64; ++i) t.MarkWriteList(Ref(6, i));
  EXPECT_EQ(t.Lookup(Ref(6, 3)), PageLocation::kResident);
  EXPECT_EQ(t.Lookup(Ref(6, 63)), PageLocation::kWriteList);
  // Erase invalidates: the cached leaf must not serve stale entries.
  t.Forget(Ref(6, 3));
  EXPECT_EQ(t.Lookup(Ref(6, 3)), std::nullopt);
  t.ForgetRegion(6);
  EXPECT_EQ(t.Lookup(Ref(6, 63)), std::nullopt);
  EXPECT_EQ(t.Size(), 0u);
}

// --- memory accounting ------------------------------------------------------

TEST(PageIndex, DenseRegionStaysUnderBytesPerPageBudget) {
  PageTracker t;
  constexpr std::uint64_t kPages = 1 << 16;  // 64Ki pages = 256 MiB tracked
  for (std::uint64_t i = 0; i < kPages; ++i) t.MarkResident(Ref(1, i));
  ASSERT_EQ(t.Size(), kPages);
  const double per_page = double(t.ApproxBytes()) / double(kPages);
  EXPECT_LE(per_page, 48.0) << t.ApproxBytes() << " bytes total";
  // Dense blocks should in fact land far below the ceiling.
  EXPECT_LE(per_page, 8.0);
}

// --- chaos replay with the tree underneath ----------------------------------

// The full stack under injected store faults AND bit corruption (the
// integrity envelope path): two fresh stacks fed the same (seed, plan)
// must agree on every byte of the report now that the tracker is a radix
// tree. This is the "no replay-visible behavior change" acceptance test.
TEST(PageIndexChaos, ReplaysByteIdenticallyUnderFaultsAndCorruption) {
  for (const std::uint64_t seed : {21ULL, 1979ULL, 600613ULL}) {
    chaos::ScenarioOptions opt;
    opt.seed = seed;
    opt.plan.seed = seed * 131 + 7;
    opt.num_ops = 400;
    opt.lru_capacity = 16;
    opt.resilient_store = true;
    opt.attach_spill = true;
    opt.integrity_store = true;
    opt.scrub_budget = 4;
    opt.plan.at(FaultSite::kStoreGet).fail_p = 0.03;
    opt.plan.at(FaultSite::kStoreMultiPutKey).fail_p = 0.03;
    opt.plan.at(FaultSite::kStoreCorruptBits).fail_p = 0.02;
    const std::vector<chaos::Op> ops = chaos::GenerateOps(opt);
    std::unique_ptr<chaos::Stack> a, b;
    const chaos::RunReport ra = chaos::RunOps(opt, ops, &a);
    const chaos::RunReport rb = chaos::RunOps(opt, ops, &b);
    ASSERT_TRUE(ra.ok) << ra.Report();
    EXPECT_EQ(ra.Report(), rb.Report()) << "seed " << seed;
    EXPECT_EQ(a->monitor->stats().faults, b->monitor->stats().faults);
    EXPECT_EQ(a->monitor->stats().tracker_desyncs,
              b->monitor->stats().tracker_desyncs);
    EXPECT_EQ(a->monitor->stats().tracker_unknown_pages,
              b->monitor->stats().tracker_unknown_pages);
  }
}

// Sharded tracker (parallel fault engine) + store faults: the per-shard
// trees must partition pages exactly as the per-shard hash maps did
// (ShardOf is unchanged), so multi-shard replays stay deterministic too.
TEST(PageIndexChaos, ShardedTrackerReplaysByteIdentically) {
  for (const std::uint64_t seed : {5ULL, 31337ULL}) {
    chaos::ScenarioOptions opt;
    opt.seed = seed;
    opt.plan.seed = seed ^ 0xabcdefULL;
    opt.num_ops = 400;
    opt.lru_capacity = 16;
    opt.fault_shards = 4;
    opt.resilient_store = true;
    opt.plan.at(FaultSite::kStoreGet).fail_p = 0.03;
    opt.plan.at(FaultSite::kStoreMultiPutKey).fail_p = 0.03;
    const std::vector<chaos::Op> ops = chaos::GenerateOps(opt);
    std::unique_ptr<chaos::Stack> a, b;
    const chaos::RunReport ra = chaos::RunOps(opt, ops, &a);
    const chaos::RunReport rb = chaos::RunOps(opt, ops, &b);
    ASSERT_TRUE(ra.ok) << ra.Report();
    EXPECT_EQ(ra.Report(), rb.Report()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace fluid::fm
