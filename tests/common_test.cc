// Unit tests for src/common: RNG, distributions, histograms, status,
// intrusive list, Zipf sampler.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/dist.h"
#include "common/histogram.h"
#include "common/intrusive_list.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "common/zipf.h"

namespace fluid {
namespace {

// --- time helpers ------------------------------------------------------------

TEST(Types, MicrosRoundTrip) {
  EXPECT_EQ(FromMicros(1.0), kMicrosecond);
  EXPECT_DOUBLE_EQ(ToMicros(kSecond), 1e6);
  EXPECT_EQ(FromMicros(-5.0), 0u);
}

TEST(Types, PageArithmetic) {
  EXPECT_EQ(PageOf(0x12345678), 0x12345678u >> 12);
  EXPECT_EQ(AddrOf(PageOf(0x12345678)), PageAlignDown(0x12345678));
  EXPECT_EQ(PageAlignDown(kPageSize + 17), kPageSize);
}

// --- RNG ----------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Rng a{123}, b{123};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r{7};
  for (int i = 0; i < 10000; ++i) {
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBoundedInRange) {
  Rng r{9};
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 4096ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.NextBounded(bound), bound);
  }
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng r{11};
  std::vector<int> counts(10, 0);
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[r.NextBounded(10)];
  for (int c : counts) {
    EXPECT_GT(c, kN / 10 * 0.9);
    EXPECT_LT(c, kN / 10 * 1.1);
  }
}

TEST(Rng, GaussianMoments) {
  Rng r{13};
  double sum = 0, sum_sq = 0;
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double g = r.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.03);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a{42};
  Rng child = a.Fork();
  // Child should not replay the parent's stream.
  Rng b{42};
  (void)b();  // same position as parent post-fork
  EXPECT_NE(child(), b());
}

// --- distributions ---------------------------------------------------------------

TEST(LatencyDist, ConstantIsExact) {
  Rng r{1};
  const auto d = LatencyDist::Constant(3.5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.Sample(r), FromMicros(3.5));
  EXPECT_DOUBLE_EQ(d.MeanUs(), 3.5);
}

struct DistCase {
  LatencyDist dist;
  double expected_mean_us;
  double tolerance_frac;
};

class DistMeanTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistMeanTest, EmpiricalMeanMatchesAnalytic) {
  Rng r{99};
  const auto& [dist, expected, tol] = GetParam();
  double sum = 0;
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += ToMicros(dist.Sample(r));
  EXPECT_NEAR(sum / kN, expected, expected * tol);
  EXPECT_NEAR(dist.MeanUs(), expected, expected * 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, DistMeanTest,
    ::testing::Values(
        DistCase{LatencyDist::Constant(5.0), 5.0, 0.001},
        DistCase{LatencyDist::Normal(10.0, 1.0), 10.0, 0.02},
        DistCase{LatencyDist::Lognormal(8.0, 0.25),
                 8.0 * std::exp(0.25 * 0.25 / 2), 0.03},
        DistCase{LatencyDist::Bimodal(2.0, 20.0, 0.1), 2.0 * 0.9 + 20.0 * 0.1,
                 0.05}));

TEST(LatencyDist, NormalRespectsFloor) {
  Rng r{3};
  const auto d = LatencyDist::Normal(1.0, 5.0, 0.5);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(d.Sample(r), FromMicros(0.5));
}

TEST(LatencyDist, BimodalHasTail) {
  Rng r{5};
  const auto d = LatencyDist::Bimodal(2.0, 20.0, 0.05, 0.0);
  int tails = 0;
  for (int i = 0; i < 10000; ++i)
    if (d.Sample(r) > FromMicros(10.0)) ++tails;
  EXPECT_GT(tails, 300);
  EXPECT_LT(tails, 800);
}

// --- histogram --------------------------------------------------------------------

TEST(LatencyHistogram, MomentsAreExact) {
  LatencyHistogram h;
  h.Record(1000);
  h.Record(2000);
  h.Record(3000);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.MeanNs(), 2000.0);
  EXPECT_NEAR(h.StdevNs(), std::sqrt(2.0 / 3.0) * 1000, 1e-6);
  EXPECT_DOUBLE_EQ(h.MinNs(), 1000.0);
  EXPECT_DOUBLE_EQ(h.MaxNs(), 3000.0);
}

TEST(LatencyHistogram, QuantilesBracketTheData) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<SimDuration>(i * 100));
  // p50 should land near 50us = 50000ns within bucket resolution.
  EXPECT_NEAR(h.QuantileNs(0.5), 50000, 50000 * 0.1);
  EXPECT_NEAR(h.QuantileNs(0.99), 99000, 99000 * 0.1);
}

TEST(LatencyHistogram, CdfIsMonotoneAndEndsAtOne) {
  LatencyHistogram h;
  Rng r{17};
  for (int i = 0; i < 10000; ++i) h.Record(100 + r.NextBounded(1000000));
  auto cdf = h.CdfUs();
  ASSERT_FALSE(cdf.empty());
  double prev = 0;
  for (const auto& [us, frac] : cdf) {
    EXPECT_GE(frac, prev);
    prev = frac;
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(LatencyHistogram, MergeCombinesCounts) {
  LatencyHistogram a, b;
  a.Record(1000);
  b.Record(3000);
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_DOUBLE_EQ(a.MeanNs(), 2000.0);
}

// Regression: quantiles used to report a bucket's upper edge verbatim, so a
// single 1234ns sample produced p99 ~= 1258ns — outside the observed range.
// QuantileNs must clamp into [MinNs, MaxNs].
TEST(LatencyHistogram, QuantileClampsToObservedRange) {
  LatencyHistogram h;
  h.Record(1234);
  EXPECT_DOUBLE_EQ(h.QuantileNs(0.5), 1234.0);
  EXPECT_DOUBLE_EQ(h.QuantileNs(0.99), 1234.0);
  EXPECT_DOUBLE_EQ(h.QuantileNs(1.0), 1234.0);
  LatencyHistogram many;
  Rng r{29};
  for (int i = 0; i < 5000; ++i) many.Record(100 + r.NextBounded(900000));
  for (double q : {0.0, 0.01, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_GE(many.QuantileNs(q), many.MinNs()) << "q=" << q;
    EXPECT_LE(many.QuantileNs(q), many.MaxNs()) << "q=" << q;
  }
}

// Regression: merging histograms with different bucket layouts used to
// silently add bucket counts index-by-index, corrupting every quantile.
// Now it is a hard error: the target histogram must be left untouched.
TEST(LatencyHistogram, MergeRejectsMismatchedLayouts) {
  LatencyHistogram a{50.0, 1e9, 60};
  a.Record(1000);
  LatencyHistogram b{10.0, 1e10, 40};
  b.Record(3000);
#ifdef NDEBUG
  const Status st = a.Merge(b);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // No partial mutation.
  EXPECT_EQ(a.Count(), 1u);
  EXPECT_DOUBLE_EQ(a.MeanNs(), 1000.0);
#else
  EXPECT_DEATH_IF_SUPPORTED((void)a.Merge(b), "mismatched bucket layouts");
#endif
}

// --- status ------------------------------------------------------------------------

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(Status, FactoriesSetCodeAndMessage) {
  const Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: key 42");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::Unavailable("down");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kUnavailable);
}

// --- intrusive list -------------------------------------------------------------------

struct TestNode : ListNode {
  int id = 0;
};

TEST(IntrusiveList, FifoOrder) {
  IntrusiveList<TestNode> list;
  TestNode nodes[5];
  for (int i = 0; i < 5; ++i) {
    nodes[i].id = i;
    list.PushBack(nodes[i]);
  }
  EXPECT_EQ(list.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    TestNode* n = list.PopFront();
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->id, i);
  }
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveList, RemoveFromMiddle) {
  IntrusiveList<TestNode> list;
  TestNode a, b, c;
  a.id = 1; b.id = 2; c.id = 3;
  list.PushBack(a);
  list.PushBack(b);
  list.PushBack(c);
  list.Remove(b);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.PopFront()->id, 1);
  EXPECT_EQ(list.PopFront()->id, 3);
}

TEST(IntrusiveList, MoveToBackRefreshes) {
  IntrusiveList<TestNode> list;
  TestNode a, b;
  a.id = 1; b.id = 2;
  list.PushBack(a);
  list.PushBack(b);
  list.MoveToBack(a);
  EXPECT_EQ(list.PopFront()->id, 2);
  EXPECT_EQ(list.PopFront()->id, 1);
}

TEST(IntrusiveList, ForEachAllowsUnlink) {
  IntrusiveList<TestNode> list;
  TestNode nodes[4];
  for (int i = 0; i < 4; ++i) {
    nodes[i].id = i;
    list.PushBack(nodes[i]);
  }
  list.ForEach([&](TestNode& n) {
    if (n.id % 2 == 0) list.Remove(n);
  });
  EXPECT_EQ(list.size(), 2u);
}

// --- zipf ----------------------------------------------------------------------------

TEST(Zipf, StaysInRange) {
  Rng r{23};
  ZipfGenerator z{1000, 0.99};
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.Next(r), 1000u);
}

TEST(Zipf, IsSkewedTowardHead) {
  Rng r{29};
  ZipfGenerator z{10000, 0.99};
  int head = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i)
    if (z.Next(r) < 100) ++head;  // top 1% of keys
  // Zipf(0.99) sends a large share of traffic to the head; uniform would
  // give 1%.
  EXPECT_GT(head, kN / 5);
}

TEST(Zipf, ThetaZeroIsNearlyUniform) {
  Rng r{31};
  ZipfGenerator z{100, 0.01};
  std::vector<int> counts(100, 0);
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[z.Next(r)];
  const auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_GT(*mn, 600);
  EXPECT_LT(*mx, 1600);
}

}  // namespace
}  // namespace fluid
