// Tests for the swap baseline: block devices, swap space, and the guest
// kernel memory manager (page classes, active/inactive reclaim, balloon).
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "blockdev/block_device.h"
#include "swap/guest_mm.h"
#include "swap/swap_space.h"

namespace fluid::swap {
namespace {

constexpr VirtAddr kBase = 0x7f0000000000ULL;

std::array<std::byte, kPageSize> PatternPage(std::uint8_t seed) {
  std::array<std::byte, kPageSize> page;
  for (std::size_t i = 0; i < kPageSize; ++i)
    page[i] = static_cast<std::byte>((seed + i * 3) & 0xff);
  return page;
}

// --- block devices -----------------------------------------------------------

TEST(BlockDevice, UnwrittenBlocksReadZero) {
  auto dev = blk::MakePmemDevice(16);
  std::array<std::byte, kPageSize> buf;
  buf.fill(std::byte{0xff});
  auto io = dev.Read(3, buf, 0);
  ASSERT_TRUE(io.status.ok());
  for (std::byte b : buf) EXPECT_EQ(b, std::byte{0});
}

TEST(BlockDevice, WriteReadRoundTrip) {
  auto dev = blk::MakeSsdDevice(16);
  const auto page = PatternPage(9);
  auto w = dev.Write(5, page, 0);
  ASSERT_TRUE(w.status.ok());
  std::array<std::byte, kPageSize> buf{};
  auto r = dev.Read(5, buf, w.complete_at);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(0, std::memcmp(buf.data(), page.data(), kPageSize));
}

TEST(BlockDevice, OutOfRangeRejected) {
  auto dev = blk::MakePmemDevice(4);
  std::array<std::byte, kPageSize> buf{};
  EXPECT_EQ(dev.Read(4, buf, 0).status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dev.Write(99, buf, 0).status.code(),
            StatusCode::kInvalidArgument);
}

TEST(BlockDevice, QueueSerialisesCommands) {
  auto dev = blk::MakeSsdDevice(16);
  std::array<std::byte, kPageSize> buf{};
  auto a = dev.Read(0, buf, 0);
  auto b = dev.Read(1, buf, 0);  // issued at the same instant
  EXPECT_GE(b.complete_at, a.complete_at);
}

TEST(BlockDevice, LatencyOrderingPmemNvmeofSsd) {
  auto pmem = blk::MakePmemDevice(1024);
  auto nvmeof = blk::MakeNvmeofDevice(1024);
  auto ssd = blk::MakeSsdDevice(1024);
  std::array<std::byte, kPageSize> buf{};
  double p = 0, n = 0, s = 0;
  SimTime t = 0;
  for (int i = 0; i < 300; ++i) {
    t += 10 * kMillisecond;  // idle between commands: no queueing
    p += static_cast<double>(pmem.Read(i % 1024, buf, t).complete_at - t);
    n += static_cast<double>(nvmeof.Read(i % 1024, buf, t).complete_at - t);
    s += static_cast<double>(ssd.Read(i % 1024, buf, t).complete_at - t);
  }
  EXPECT_LT(p * 2, n);
  EXPECT_LT(n * 2, s);
}

// --- swap space ----------------------------------------------------------------

TEST(SwapSpace, SlotRoundTripAndRelease) {
  auto dev = blk::MakePmemDevice(8);
  SwapSpace swap{dev};
  EXPECT_EQ(swap.FreeSlots(), 8u);
  const auto page = PatternPage(1);
  auto out = swap.WriteOut(page, 0);
  ASSERT_TRUE(out.status.ok());
  EXPECT_EQ(swap.FreeSlots(), 7u);
  std::array<std::byte, kPageSize> buf{};
  auto in = swap.ReadIn(out.slot, buf, out.io_complete_at);
  ASSERT_TRUE(in.status.ok());
  EXPECT_EQ(0, std::memcmp(buf.data(), page.data(), kPageSize));
  EXPECT_EQ(swap.FreeSlots(), 8u);  // slot freed on swap-in
}

TEST(SwapSpace, ExhaustsCleanly) {
  auto dev = blk::MakePmemDevice(2);
  SwapSpace swap{dev};
  const auto page = PatternPage(2);
  ASSERT_TRUE(swap.WriteOut(page, 0).status.ok());
  ASSERT_TRUE(swap.WriteOut(page, 0).status.ok());
  EXPECT_EQ(swap.WriteOut(page, 0).status.code(),
            StatusCode::kResourceExhausted);
}

// --- guest kernel mm ----------------------------------------------------------------

struct MmFixture {
  blk::BlockDevice swap_dev = blk::MakePmemDevice(4096);
  blk::BlockDevice fs_dev = blk::MakeSsdDevice(4096);
  GuestKernelMm mm;
  explicit MmFixture(std::size_t dram = 64)
      : mm(GuestMmConfig{.dram_frames = dram}, swap_dev, fs_dev) {}
};

TEST(GuestMm, FirstTouchIsMinorFault) {
  MmFixture f;
  f.mm.DefineRange(kBase, 8, PageClass::kAnon);
  auto r = f.mm.Access(kBase, true, 0);
  ASSERT_TRUE(r.status.ok());
  EXPECT_TRUE(r.minor_fault);
  EXPECT_FALSE(r.major_fault);
  auto r2 = f.mm.Access(kBase, false, r.done);
  EXPECT_FALSE(r2.minor_fault);
  EXPECT_GT(f.mm.stats().hits, 0u);
}

TEST(GuestMm, AnonSwapRoundTripPreservesData) {
  MmFixture f{16};
  f.mm.DefineRange(kBase, 64, PageClass::kAnon);
  const std::uint64_t marker = 0x1122334455667788ULL;
  SimTime now = 0;
  // Write a marker into page 0, then touch enough pages to force it out.
  now = f.mm.Access(kBase, true, now).done;
  ASSERT_TRUE(
      f.mm.WriteBytes(kBase + 8, std::as_bytes(std::span{&marker, 1})).ok());
  for (std::size_t i = 1; i < 64; ++i)
    now = f.mm.Access(kBase + i * kPageSize, true, now).done;
  EXPECT_GT(f.mm.stats().swap_outs, 0u);
  // Fault page 0 back in: data must survive the device round trip.
  auto r = f.mm.Access(kBase, false, now);
  ASSERT_TRUE(r.status.ok());
  EXPECT_TRUE(r.major_fault);
  std::uint64_t got = 0;
  ASSERT_TRUE(
      f.mm.ReadBytes(kBase + 8, std::as_writable_bytes(std::span{&got, 1}))
          .ok());
  EXPECT_EQ(got, marker);
  EXPECT_GT(f.mm.stats().swap_ins, 0u);
}

TEST(GuestMm, FilePagesWriteBackToFilesystemNotSwap) {
  MmFixture f{16};
  f.mm.DefineRange(kBase, 64, PageClass::kFile);
  SimTime now = 0;
  for (std::size_t i = 0; i < 64; ++i)
    now = f.mm.Access(kBase + i * kPageSize, /*is_write=*/true, now).done;
  // Reclaim must have used the fs device, never swap.
  EXPECT_EQ(f.mm.stats().swap_outs, 0u);
  EXPECT_GT(f.mm.stats().file_writebacks, 0u);
  EXPECT_EQ(f.mm.swap().UsedSlots(), 0u);
  EXPECT_GT(f.fs_dev.writes(), 0u);
}

TEST(GuestMm, CleanFilePagesAreDroppedNotWritten) {
  MmFixture f{16};
  f.mm.DefineRange(kBase, 64, PageClass::kFile);
  SimTime now = 0;
  for (std::size_t i = 0; i < 64; ++i)
    now = f.mm.Access(kBase + i * kPageSize, /*is_write=*/false, now).done;
  EXPECT_GT(f.mm.stats().file_drops, 0u);
  EXPECT_EQ(f.mm.stats().file_writebacks, 0u);
}

TEST(GuestMm, KernelAndUnevictablePagesNeverLeaveDram) {
  // The partial-disaggregation limit (§II): hammer the VM with anon
  // pressure; pinned pages stay resident throughout.
  MmFixture f{32};
  f.mm.DefineRange(kBase, 8, PageClass::kKernel);
  f.mm.DefineRange(kBase + 8 * kPageSize, 8, PageClass::kUnevictable);
  f.mm.DefineRange(kBase + 16 * kPageSize, 256, PageClass::kAnon);
  SimTime now = f.mm.TouchRange(kBase, 16, 0);
  EXPECT_EQ(f.mm.ResidentPinned(), 16u);
  for (int round = 0; round < 3; ++round)
    for (std::size_t i = 0; i < 256; ++i)
      now = f.mm.Access(kBase + (16 + i) * kPageSize, true, now).done;
  // Pinned pages still resident: re-access them with zero major faults.
  const auto majors_before = f.mm.stats().major_faults;
  now = f.mm.TouchRange(kBase, 16, now);
  EXPECT_EQ(f.mm.stats().major_faults, majors_before);
  EXPECT_EQ(f.mm.ResidentPinned(), 16u);
}

TEST(GuestMm, SecondChanceKeepsHotPages) {
  // Re-referenced pages survive reclaim; cold pages go out.
  MmFixture f{32};
  f.mm.DefineRange(kBase, 128, PageClass::kAnon);
  SimTime now = 0;
  // Establish 8 hot pages, touched between every batch of cold pages.
  for (std::size_t i = 0; i < 128; ++i) {
    now = f.mm.Access(kBase + i * kPageSize, true, now).done;
    if (i % 4 == 0)
      for (std::size_t h = 0; h < 8; ++h)
        now = f.mm.Access(kBase + h * kPageSize, false, now).done;
  }
  // Hot pages should mostly still be resident.
  const auto majors_before = f.mm.stats().major_faults;
  for (std::size_t h = 0; h < 8; ++h)
    now = f.mm.Access(kBase + h * kPageSize, false, now).done;
  EXPECT_LE(f.mm.stats().major_faults - majors_before, 2u);
}

TEST(GuestMm, DirectReclaimKicksInUnderPressure) {
  MmFixture f{16};
  f.mm.DefineRange(kBase, 256, PageClass::kAnon);
  SimTime now = 0;
  for (std::size_t i = 0; i < 256; ++i)
    now = f.mm.Access(kBase + i * kPageSize, true, now).done;
  EXPECT_GT(f.mm.stats().kswapd_runs + f.mm.stats().direct_reclaims, 0u);
  EXPECT_LE(f.mm.ResidentFrames(), 16u);
}

TEST(GuestMm, MajorFaultCostsMoreThanMinor) {
  MmFixture f{16};
  f.mm.DefineRange(kBase, 64, PageClass::kAnon);
  SimTime now = 0;
  SimDuration minor_cost = 0, major_cost = 0;
  auto r = f.mm.Access(kBase, true, now);
  minor_cost = r.done - now;
  now = r.done;
  for (std::size_t i = 1; i < 64; ++i)
    now = f.mm.Access(kBase + i * kPageSize, true, now).done;
  const SimTime t0 = now;
  r = f.mm.Access(kBase, false, now);
  ASSERT_TRUE(r.major_fault);
  major_cost = r.done - t0;
  EXPECT_GT(major_cost, 2 * minor_cost);
}

TEST(GuestMm, OomWhenSwapAndReclaimExhausted) {
  blk::BlockDevice tiny_swap = blk::MakePmemDevice(4);
  blk::BlockDevice fs = blk::MakeSsdDevice(64);
  GuestKernelMm mm{GuestMmConfig{.dram_frames = 8}, tiny_swap, fs};
  mm.DefineRange(kBase, 64, PageClass::kAnon);
  SimTime now = 0;
  Status last = Status::Ok();
  for (std::size_t i = 0; i < 64 && last.ok(); ++i) {
    auto r = mm.Access(kBase + i * kPageSize, true, now);
    last = r.status;
    now = r.done;
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(mm.stats().oom_kills, 0u);
}

TEST(GuestMm, BalloonShrinksToFloorButNotBelowPinned) {
  MmFixture f{128};
  f.mm.DefineRange(kBase, 16, PageClass::kKernel);
  f.mm.DefineRange(kBase + 16 * kPageSize, 64, PageClass::kAnon);
  SimTime now = f.mm.TouchRange(kBase, 80, 0);
  EXPECT_GE(f.mm.ResidentFrames(), 80u);
  // Ask the balloon for a 4-page footprint: it can only evict reclaimables.
  now = f.mm.BalloonReclaim(4, now);
  EXPECT_LE(f.mm.ResidentFrames(), 17u);  // anon gone (some slack)
  EXPECT_GE(f.mm.ResidentFrames(), 16u);  // pinned floor holds
}

}  // namespace
}  // namespace fluid::swap
