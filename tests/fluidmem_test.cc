// Tests for the FluidMem core: LRU buffer, page tracker, write list, and
// the monitor's fault-handling paths (first access, read-back, steal,
// in-flight wait, eviction, resize, drain, and the Table II optimization
// orderings).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <vector>

#include "fluidmem/lru_buffer.h"
#include "fluidmem/monitor.h"
#include "fluidmem/page_tracker.h"
#include "fluidmem/test_peer.h"
#include "fluidmem/write_list.h"
#include "kvstore/local_store.h"
#include "kvstore/memcached.h"
#include "kvstore/ramcloud.h"
#include "mem/uffd.h"

namespace fluid::fm {

namespace {

constexpr VirtAddr kBase = 0x7f0000000000ULL;
constexpr VirtAddr PageAddr(std::size_t i) { return kBase + i * kPageSize; }
PageRef Ref(std::size_t i, RegionId r = 0) { return PageRef{r, PageAddr(i)}; }

// --- LruBuffer ------------------------------------------------------------------

TEST(LruBuffer, InsertionOrderEviction) {
  LruBuffer lru{3};
  lru.Insert(Ref(0));
  lru.Insert(Ref(1));
  lru.Insert(Ref(2));
  EXPECT_TRUE(lru.NeedsEvictionBeforeInsert());
  PageRef victim;
  ASSERT_TRUE(lru.PopVictim(&victim));
  EXPECT_EQ(victim, Ref(0));  // oldest insertion evicts first
}

TEST(LruBuffer, PaperSemanticsTouchDoesNotRefresh) {
  // §V-A: "the internal ordering of the list does not change."
  LruBuffer lru{3};
  lru.Insert(Ref(0));
  lru.Insert(Ref(1));
  lru.Touch(Ref(0));  // would refresh in a true LRU
  PageRef victim;
  ASSERT_TRUE(lru.PopVictim(&victim));
  EXPECT_EQ(victim, Ref(0));
}

TEST(LruBuffer, TrueLruModeRefreshesOnTouch) {
  LruBuffer lru{3, /*true_lru=*/true};
  lru.Insert(Ref(0));
  lru.Insert(Ref(1));
  lru.Touch(Ref(0));
  PageRef victim;
  ASSERT_TRUE(lru.PopVictim(&victim));
  EXPECT_EQ(victim, Ref(1));
}

TEST(LruBuffer, RemoveSpecificAndResize) {
  LruBuffer lru{4};
  for (std::size_t i = 0; i < 4; ++i) lru.Insert(Ref(i));
  EXPECT_TRUE(lru.Remove(Ref(2)));
  EXPECT_FALSE(lru.Remove(Ref(2)));
  EXPECT_EQ(lru.size(), 3u);
  lru.SetCapacity(1);
  EXPECT_TRUE(lru.OverCapacity());
}

TEST(LruBuffer, RegionsKeepDistinctPages) {
  LruBuffer lru{4};
  lru.Insert(Ref(0, 0));
  lru.Insert(Ref(0, 1));  // same address, different region
  EXPECT_EQ(lru.size(), 2u);
  EXPECT_TRUE(lru.Contains(Ref(0, 0)));
  EXPECT_TRUE(lru.Contains(Ref(0, 1)));
}

// --- LruBuffer region index -------------------------------------------------------

TEST(LruBuffer, PopVictimOfRegionTakesThatRegionsOldest) {
  LruBuffer lru{8};
  lru.Insert(Ref(0, 0));
  lru.Insert(Ref(1, 1));
  lru.Insert(Ref(2, 0));
  lru.Insert(Ref(3, 1));
  PageRef v;
  ASSERT_TRUE(lru.PopVictimOfRegion(1, &v));
  EXPECT_EQ(v, Ref(1, 1));
  // The global order of everything else is untouched.
  ASSERT_TRUE(lru.PopVictim(&v));
  EXPECT_EQ(v, Ref(0, 0));
  ASSERT_TRUE(lru.PopVictim(&v));
  EXPECT_EQ(v, Ref(2, 0));
  ASSERT_TRUE(lru.PopVictim(&v));
  EXPECT_EQ(v, Ref(3, 1));
  EXPECT_FALSE(lru.PopVictimOfRegion(1, &v));
  EXPECT_FALSE(lru.PopVictimOfRegion(42, &v));
}

TEST(LruBuffer, ExtractRegionPreservesSurvivorOrder) {
  LruBuffer lru{16};
  for (std::size_t i = 0; i < 4; ++i) {
    lru.Insert(Ref(i, 0));
    lru.Insert(Ref(i, 1));
  }
  std::vector<PageRef> mine = lru.ExtractRegion(1);
  ASSERT_EQ(mine.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(mine[i], Ref(i, 1));  // region pages come out in fault order
  EXPECT_EQ(lru.RegionCount(1), 0u);
  EXPECT_EQ(lru.size(), 4u);
  PageRef v;
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(lru.PopVictim(&v));
    EXPECT_EQ(v, Ref(i, 0));
  }
  EXPECT_TRUE(lru.ExtractRegion(0).empty());
}

TEST(LruBuffer, RegionCountTracksEveryMutation) {
  LruBuffer lru{8};
  lru.Insert(Ref(0, 3));
  lru.Insert(Ref(1, 3));
  lru.Insert(Ref(2, 5));
  EXPECT_EQ(lru.RegionCount(3), 2u);
  EXPECT_EQ(lru.RegionCount(5), 1u);
  PageRef v;
  ASSERT_TRUE(lru.PopVictim(&v));  // global head is a region-3 page
  EXPECT_EQ(lru.RegionCount(3), 1u);
  EXPECT_TRUE(lru.Remove(Ref(1, 3)));
  EXPECT_EQ(lru.RegionCount(3), 0u);
  EXPECT_EQ(lru.RegionCount(5), 1u);
  lru.Insert(Ref(7, 3));  // a drained region fills again
  EXPECT_EQ(lru.RegionCount(3), 1u);
}

TEST(LruBuffer, TrueLruTouchRefreshesRegionOrderToo) {
  LruBuffer lru{8, /*true_lru=*/true};
  lru.Insert(Ref(0, 1));
  lru.Insert(Ref(1, 1));
  lru.Touch(Ref(0, 1));
  PageRef v;
  ASSERT_TRUE(lru.PopVictimOfRegion(1, &v));
  EXPECT_EQ(v, Ref(1, 1));  // region sublist refreshed along with global
}

// --- PageTracker ----------------------------------------------------------------

TEST(PageTracker, SeenAndLocationLifecycle) {
  PageTracker t;
  EXPECT_FALSE(t.Seen(Ref(0)));
  t.MarkResident(Ref(0));
  EXPECT_TRUE(t.Seen(Ref(0)));
  EXPECT_EQ(t.LocationOf(Ref(0)), PageLocation::kResident);
  t.MarkWriteList(Ref(0));
  EXPECT_EQ(t.LocationOf(Ref(0)), PageLocation::kWriteList);
  t.MarkInFlight(Ref(0));
  EXPECT_EQ(t.LocationOf(Ref(0)), PageLocation::kInFlight);
  t.MarkRemote(Ref(0));
  EXPECT_EQ(t.LocationOf(Ref(0)), PageLocation::kRemote);
}

TEST(PageTracker, ForgetRegionDropsOnlyThatRegion) {
  PageTracker t;
  t.MarkResident(Ref(0, 0));
  t.MarkResident(Ref(1, 0));
  t.MarkResident(Ref(0, 1));
  EXPECT_EQ(t.ForgetRegion(0), 2u);
  EXPECT_FALSE(t.Seen(Ref(0, 0)));
  EXPECT_TRUE(t.Seen(Ref(0, 1)));
}

// --- WriteList ------------------------------------------------------------------

TEST(WriteList, StealRemovesPending) {
  WriteList wl;
  wl.Enqueue(Ref(0), 7, 100);
  EXPECT_TRUE(wl.ContainsPending(Ref(0)));
  auto frame = wl.Steal(Ref(0));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, 7u);
  EXPECT_FALSE(wl.ContainsPending(Ref(0)));
  EXPECT_EQ(wl.StealCount(), 1u);
}

TEST(WriteList, TakeBatchIsFifoAndBounded) {
  WriteList wl;
  for (std::size_t i = 0; i < 10; ++i) wl.Enqueue(Ref(i), FrameId(i), i);
  auto batch = wl.TakeBatch(4);
  ASSERT_EQ(batch.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(batch[i].page, Ref(i));
  EXPECT_EQ(wl.PendingCount(), 6u);
}

TEST(WriteList, InFlightWaitAndRetire) {
  WriteList wl;
  InFlightBatch b;
  b.complete_at = 5000;
  b.writes.push_back(PendingWrite{Ref(0), 3, 0});
  b.writes.push_back(PendingWrite{Ref(1), 4, 0});
  wl.AddInFlight(std::move(b));
  EXPECT_EQ(wl.InFlightCount(), 2u);
  EXPECT_EQ(wl.InFlightCompletion(Ref(0)).value(), 5000u);
  EXPECT_EQ(wl.LatestCompletion(), 5000u);
  // Nothing retires before completion.
  EXPECT_TRUE(wl.RetireCompleted(4000).durable.empty());
  auto done = wl.RetireCompleted(5000);
  EXPECT_EQ(done.durable.size(), 2u);
  EXPECT_TRUE(done.failed.empty());
  EXPECT_EQ(wl.InFlightCount(), 0u);
}

TEST(WriteList, StealInFlightDetachesOneWrite) {
  WriteList wl;
  InFlightBatch b;
  b.complete_at = 5000;
  b.writes.push_back(PendingWrite{Ref(0), 3, 0});
  b.writes.push_back(PendingWrite{Ref(1), 4, 0});
  wl.AddInFlight(std::move(b));
  auto steal = wl.StealInFlight(Ref(0));
  ASSERT_TRUE(steal.has_value());
  EXPECT_EQ(steal->first, 5000u);
  EXPECT_EQ(steal->second, 3u);
  // The stolen write must not retire again.
  auto done = wl.RetireCompleted(6000);
  ASSERT_EQ(done.durable.size(), 1u);
  EXPECT_EQ(done.durable[0].page, Ref(1));
}

TEST(WriteList, OldestPendingAge) {
  WriteList wl;
  EXPECT_EQ(wl.OldestPendingAge(100), 0u);
  wl.Enqueue(Ref(0), 1, 100);
  wl.Enqueue(Ref(1), 2, 300);
  EXPECT_EQ(wl.OldestPendingAge(500), 400u);
}

TEST(WriteList, OldestPendingAgeClampsFutureEnqueueTimes) {
  // The flush thread's timeline can run ahead of the monitor's `now`, so
  // entries may carry enqueue times in the future. Their age is 0 — the
  // seed's unsigned subtraction underflowed to an enormous age and
  // triggered spurious flushes from PumpBackground.
  WriteList wl;
  wl.Enqueue(Ref(0), 1, 1000);
  EXPECT_EQ(wl.OldestPendingAge(400), 0u);
  EXPECT_EQ(wl.OldestPendingAge(1000), 0u);
  EXPECT_EQ(wl.OldestPendingAge(1600), 600u);
}

TEST(WriteList, DiscardRegionDropsPendingAndInFlight) {
  WriteList wl;
  wl.Enqueue(Ref(0, 1), 10, 0);
  wl.Enqueue(Ref(1, 2), 11, 0);
  wl.Enqueue(Ref(2, 1), 12, 0);
  InFlightBatch b;
  b.complete_at = 100;
  b.writes.push_back(PendingWrite{Ref(3, 1), 13, 0});
  b.writes.push_back(PendingWrite{Ref(4, 2), 14, 0});
  wl.AddInFlight(std::move(b));
  std::vector<FrameId> frames = wl.DiscardRegion(1);
  std::sort(frames.begin(), frames.end());
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], 10u);
  EXPECT_EQ(frames[1], 12u);
  EXPECT_EQ(frames[2], 13u);
  // The surviving region's entries are intact.
  EXPECT_FALSE(wl.ContainsPending(Ref(0, 1)));
  EXPECT_TRUE(wl.ContainsPending(Ref(1, 2)));
  EXPECT_EQ(wl.PendingCount(), 1u);
  EXPECT_EQ(wl.InFlightCount(), 1u);
  auto done = wl.RetireCompleted(100);
  ASSERT_EQ(done.durable.size(), 1u);
  EXPECT_EQ(done.durable[0].page, Ref(4, 2));
}

// --- Monitor fixture -------------------------------------------------------------

struct MonitorFixture {
  mem::FramePool pool;
  kv::LocalDramStore store;
  Monitor monitor;
  mem::UffdRegion region;
  RegionId rid;

  explicit MonitorFixture(MonitorConfig cfg = DefaultConfig(),
                          std::size_t pool_frames = 4096,
                          std::size_t region_pages = 1024)
      : pool(pool_frames),
        store(kv::LocalStoreConfig{}),
        monitor(cfg, store, pool),
        region(77, kBase, region_pages, pool),
        rid(monitor.RegisterRegion(region, /*partition=*/3)) {}

  static MonitorConfig DefaultConfig() {
    MonitorConfig cfg;
    cfg.lru_capacity_pages = 8;
    cfg.write_batch_pages = 4;
    return cfg;
  }

  // Drive one full access like a vCPU would: touch, fault, retry.
  FaultOutcome Fault(std::size_t page, SimTime now, bool is_write = false) {
    auto a = region.Access(PageAddr(page), is_write);
    EXPECT_EQ(a.kind, mem::AccessKind::kUffdFault);
    return monitor.HandleFault(rid, PageAddr(page), now);
  }

  void WriteMarker(std::size_t page, std::uint64_t marker) {
    (void)region.Access(PageAddr(page), true);  // upgrade zero page
    ASSERT_TRUE(region
                    .WriteBytes(PageAddr(page) + 16,
                                std::as_bytes(std::span{&marker, 1}))
                    .ok());
  }

  std::uint64_t ReadMarker(std::size_t page) {
    std::uint64_t got = 0;
    EXPECT_TRUE(region
                    .ReadBytes(PageAddr(page) + 16,
                               std::as_writable_bytes(std::span{&got, 1}))
                    .ok());
    return got;
  }
};

TEST(Monitor, FirstAccessInstallsZeroPage) {
  MonitorFixture f;
  auto out = f.Fault(0, 1000);
  ASSERT_TRUE(out.status.ok());
  EXPECT_TRUE(out.first_access);
  EXPECT_GT(out.wake_at, 1000u);
  EXPECT_EQ(f.region.StateOf(PageAddr(0)), mem::PteState::kZeroPage);
  EXPECT_EQ(f.monitor.stats().first_access_faults, 1u);
  // No store traffic for first touches (the pagetracker feature).
  EXPECT_EQ(f.store.stats().gets, 0u);
}

TEST(Monitor, EvictionRoundTripPreservesData) {
  MonitorFixture f;
  SimTime now = 0;
  // Fill 8 pages with markers (LRU capacity is 8).
  for (std::size_t i = 0; i < 8; ++i) {
    now = f.Fault(i, now, true).wake_at;
    f.WriteMarker(i, 0xAA00 + i);
  }
  // Page 8 forces the eviction of page 0.
  now = f.Fault(8, now, true).wake_at;
  EXPECT_EQ(f.monitor.stats().evictions, 1u);
  EXPECT_EQ(f.region.StateOf(PageAddr(0)), mem::PteState::kNotMapped);
  // Fault page 0 back: its marker must survive via the write list / store.
  auto out = f.Fault(0, now + 10 * kMillisecond);
  ASSERT_TRUE(out.status.ok());
  EXPECT_FALSE(out.first_access);
  EXPECT_EQ(f.ReadMarker(0), 0xAA00u);
}

TEST(Monitor, StealResolvesFromWriteList) {
  MonitorConfig cfg = MonitorFixture::DefaultConfig();
  cfg.write_batch_pages = 64;           // keep writes pending
  cfg.flush_max_age = 10 * kSecond;     // no age-based flush
  MonitorFixture f{cfg};
  SimTime now = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    now = f.Fault(i, now, true).wake_at;
    f.WriteMarker(i, 0xBB00 + i);
  }
  now = f.Fault(8, now).wake_at;  // evicts page 0 onto the write list
  ASSERT_GT(f.monitor.write_list().PendingCount(), 0u);
  // Immediately fault page 0 again: resolved by stealing, no store read.
  const auto gets_before = f.store.stats().gets;
  auto out = f.Fault(0, now);
  ASSERT_TRUE(out.status.ok());
  EXPECT_TRUE(out.stolen);
  EXPECT_EQ(f.store.stats().gets, gets_before);
  EXPECT_EQ(f.ReadMarker(0), 0xBB00u);
  EXPECT_EQ(f.monitor.stats().steals, 1u);
}

TEST(Monitor, InFlightFaultWaitsForBatchCompletion) {
  MonitorConfig cfg = MonitorFixture::DefaultConfig();
  cfg.write_batch_pages = 1;  // every eviction posts immediately
  MonitorFixture f{cfg};
  SimTime now = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    now = f.Fault(i, now, true).wake_at;
    f.WriteMarker(i, 0xCC00 + i);
  }
  // Evict page 0 (posted as an in-flight batch), then fault it back at a
  // time before the batch completes.
  auto evicting = f.Fault(8, now);
  now = evicting.wake_at;
  auto out = f.Fault(0, now);  // wake_at of the evicting fault ~ batch post
  ASSERT_TRUE(out.status.ok());
  if (out.waited_in_flight) {
    EXPECT_GT(f.monitor.stats().inflight_waits, 0u);
  }
  EXPECT_EQ(f.ReadMarker(0), 0xCC00u);
}

TEST(Monitor, LruCapacityIsEnforced) {
  MonitorFixture f;
  SimTime now = 0;
  for (std::size_t i = 0; i < 100; ++i) now = f.Fault(i, now, true).wake_at;
  EXPECT_LE(f.monitor.ResidentPages(), 8u);
  EXPECT_GE(f.monitor.stats().evictions, 92u);
}

TEST(Monitor, ShrinkEvictsGrowDoesNot) {
  MonitorFixture f;
  SimTime now = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    now = f.Fault(i, now, true).wake_at;
    f.WriteMarker(i, 0xDD00 + i);
  }
  now = f.monitor.SetLruCapacity(2, now);
  EXPECT_LE(f.monitor.ResidentPages(), 2u);
  now = f.monitor.DrainWrites(now);
  // All evicted pages durable in the store.
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_TRUE(f.store.Contains(3, kv::MakePageKey(PageAddr(i))))
        << "page " << i;
  now = f.monitor.SetLruCapacity(64, now);
  EXPECT_LE(f.monitor.ResidentPages(), 2u);  // growing evicts nothing
  // And the data still reads back.
  auto out = f.Fault(0, now);
  ASSERT_TRUE(out.status.ok());
  EXPECT_EQ(f.ReadMarker(0), 0xDD00u);
}

TEST(Monitor, DrainWritesMakesStoreDurable) {
  MonitorConfig cfg = MonitorFixture::DefaultConfig();
  cfg.write_batch_pages = 100;  // nothing flushes on its own
  cfg.flush_max_age = 100 * kSecond;
  MonitorFixture f{cfg};
  SimTime now = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    now = f.Fault(i, now, true).wake_at;
    f.WriteMarker(i, i);
  }
  EXPECT_GT(f.monitor.write_list().PendingCount(), 0u);
  now = f.monitor.DrainWrites(now);
  EXPECT_EQ(f.monitor.write_list().PendingCount(), 0u);
  EXPECT_EQ(f.monitor.write_list().InFlightCount(), 0u);
  EXPECT_EQ(f.monitor.tracker().CountIn(PageLocation::kWriteList), 0u);
}

TEST(Monitor, WriteListDesyncFallsBackToRemoteRead) {
  MonitorFixture f;
  SimTime now = 0;
  for (std::size_t i = 0; i < 9; ++i) {
    now = f.Fault(i, now, true).wake_at;
    f.WriteMarker(i, 0xEE00 + i);
  }
  now = f.monitor.DrainWrites(now);  // page 0 evicted and durably remote
  ASSERT_EQ(f.monitor.tracker().LocationOf(Ref(0, f.rid)),
            PageLocation::kRemote);
  // Corrupt the tracker: it claims page 0 is still buffered on the write
  // list while the write list has no such entry. The seed dereferenced the
  // empty optional (assert in debug, UB in release); the monitor must fall
  // back to the remote-read path and count the desync.
  MonitorTestPeer::tracker(f.monitor).MarkWriteList(Ref(0, f.rid));
  auto out = f.Fault(0, now);
  ASSERT_TRUE(out.status.ok());
  EXPECT_FALSE(out.stolen);
  EXPECT_EQ(f.monitor.stats().tracker_desyncs, 1u);
  EXPECT_EQ(f.ReadMarker(0), 0xEE00u);
}

TEST(Monitor, InFlightDesyncFallsBackToRemoteRead) {
  MonitorFixture f;
  SimTime now = 0;
  for (std::size_t i = 0; i < 9; ++i) {
    now = f.Fault(i, now, true).wake_at;
    f.WriteMarker(i, 0xEF00 + i);
  }
  now = f.monitor.DrainWrites(now);
  ASSERT_EQ(f.monitor.tracker().LocationOf(Ref(0, f.rid)),
            PageLocation::kRemote);
  MonitorTestPeer::tracker(f.monitor).MarkInFlight(Ref(0, f.rid));
  auto out = f.Fault(0, now);
  ASSERT_TRUE(out.status.ok());
  EXPECT_FALSE(out.waited_in_flight);
  EXPECT_EQ(f.monitor.stats().tracker_desyncs, 1u);
  EXPECT_EQ(f.ReadMarker(0), 0xEF00u);
}

TEST(Monitor, UnregisterDiscardsDyingRegionsBufferedWrites) {
  MonitorConfig cfg = MonitorFixture::DefaultConfig();
  cfg.write_batch_pages = 1000;  // nothing flushes on its own
  cfg.flush_max_age = 100 * kSecond;
  MonitorFixture f{cfg};
  SimTime now = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    now = f.Fault(i, now, true).wake_at;
    f.WriteMarker(i, i);
  }
  // 12 evictions are buffered, none posted.
  ASSERT_EQ(f.monitor.write_list().PendingCount(), 12u);
  const auto puts_before = f.store.stats().puts;
  const auto batches_before = f.store.stats().multi_write_batches;
  const std::size_t in_use_before = f.pool.in_use();
  ASSERT_TRUE(f.monitor.UnregisterRegion(f.rid, now).ok());
  // Shutdown must not pay store round trips for a partition that is being
  // deleted (the seed drained the whole write list first)...
  EXPECT_EQ(f.store.stats().puts, puts_before);
  EXPECT_EQ(f.store.stats().multi_write_batches, batches_before);
  // ...and every buffered frame goes back to the pool.
  EXPECT_EQ(f.monitor.write_list().PendingCount(), 0u);
  EXPECT_EQ(f.monitor.write_list().InFlightCount(), 0u);
  EXPECT_EQ(f.pool.in_use(), in_use_before - 12);
}

TEST(Monitor, UnregisterDropsPartition) {
  MonitorFixture f;
  SimTime now = 0;
  for (std::size_t i = 0; i < 20; ++i) now = f.Fault(i, now, true).wake_at;
  now = f.monitor.DrainWrites(now);
  EXPECT_GT(f.store.ObjectCount(), 0u);
  ASSERT_TRUE(f.monitor.UnregisterRegion(f.rid, now).ok());
  EXPECT_EQ(f.store.ObjectCount(), 0u);
  // Further faults on the dead region are rejected.
  auto out = f.monitor.HandleFault(f.rid, PageAddr(0), now);
  EXPECT_FALSE(out.status.ok());
}

TEST(Monitor, KvmDeadlockBelowMinimalResidency) {
  MonitorConfig cfg = MonitorFixture::DefaultConfig();
  cfg.lru_capacity_pages = 2;
  cfg.kvm_mode = true;
  cfg.kvm_min_resident = 4;
  MonitorFixture f{cfg};
  auto out = f.Fault(0, 0);
  EXPECT_TRUE(out.deadlocked);
  EXPECT_FALSE(out.status.ok());
}

TEST(Monitor, FullVirtualizationAvoidsDeadlockButIsSlow) {
  MonitorConfig kvm_cfg = MonitorFixture::DefaultConfig();
  MonitorConfig tcg_cfg = kvm_cfg;
  tcg_cfg.kvm_mode = false;
  tcg_cfg.lru_capacity_pages = 2;
  tcg_cfg.kvm_min_resident = 4;
  MonitorFixture tcg{tcg_cfg};
  auto out = tcg.Fault(0, 0);
  EXPECT_FALSE(out.deadlocked);
  ASSERT_TRUE(out.status.ok());

  MonitorFixture kvm{kvm_cfg};
  auto fast = kvm.Fault(0, 0);
  // TCG pays the full-virtualisation multiplier.
  EXPECT_GT(out.wake_at - 0, (fast.wake_at - 0) * 5);
}

TEST(Monitor, ProfilerRecordsTableOneCodePaths) {
  MonitorFixture f;
  SimTime now = 0;
  for (std::size_t i = 0; i < 40; ++i) now = f.Fault(i, now, true).wake_at;
  for (std::size_t i = 0; i < 8; ++i)
    now = f.Fault(i, now + kMillisecond).wake_at;  // read-backs
  const Profiler& p = f.monitor.profiler();
  EXPECT_GT(p.Of(CodePath::kInsertPageHashNode).Count(), 0u);
  EXPECT_GT(p.Of(CodePath::kInsertLruCacheNode).Count(), 0u);
  EXPECT_GT(p.Of(CodePath::kUffdZeropage).Count(), 0u);
  EXPECT_GT(p.Of(CodePath::kUffdRemap).Count(), 0u);
  EXPECT_GT(p.Of(CodePath::kUffdCopy).Count(), 0u);
  EXPECT_GT(p.Of(CodePath::kUpdatePageCache).Count(), 0u);
  EXPECT_GT(p.Of(CodePath::kReadPage).Count(), 0u);
  EXPECT_GT(p.Of(CodePath::kWritePage).Count(), 0u);
}

TEST(Monitor, LostPageSurfacesAsError) {
  // A Memcached store so small it evicts FluidMem's pages behind its back:
  // the monitor must report the loss, not fabricate zeroes.
  mem::FramePool pool{1024};
  kv::MemcachedConfig mc;
  mc.slab_bytes = 4 * kv::MemcachedStore::kChunkBytes;
  mc.memory_cap_bytes = mc.slab_bytes;  // room for only 4 pages
  kv::MemcachedStore store{mc};
  MonitorConfig cfg = MonitorFixture::DefaultConfig();
  cfg.lru_capacity_pages = 4;
  cfg.write_batch_pages = 2;
  Monitor monitor{cfg, store, pool};
  mem::UffdRegion region{77, kBase, 64, pool};
  RegionId rid = monitor.RegisterRegion(region, 3);
  SimTime now = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    (void)region.Access(PageAddr(i), true);
    auto out = monitor.HandleFault(rid, PageAddr(i), now);
    now = out.wake_at + kMillisecond;
    (void)region.Access(PageAddr(i), true);
  }
  now = monitor.DrainWrites(now);
  // Fault back a long-evicted page: the store already dropped it.
  (void)region.Access(PageAddr(0), false);
  auto out = monitor.HandleFault(rid, PageAddr(0), now);
  EXPECT_FALSE(out.status.ok());
  EXPECT_GT(monitor.stats().lost_page_errors, 0u);
}

// --- Table II orderings: the async optimizations must actually pay ------------------

struct OptCase {
  bool async_read;
  bool async_write;
};

class OptimizationTest : public ::testing::TestWithParam<OptCase> {};

double MeanRefaultLatencyUs(bool async_read, bool async_write) {
  mem::FramePool pool{8192};
  kv::RamcloudConfig rc;
  rc.memory_cap_bytes = 512ULL << 20;
  kv::RamcloudStore store{rc};
  MonitorConfig cfg;
  cfg.lru_capacity_pages = 64;
  cfg.write_batch_pages = 32;
  cfg.async_read = async_read;
  cfg.async_write = async_write;
  Monitor monitor{cfg, store, pool};
  mem::UffdRegion region{77, kBase, 4096, pool};
  RegionId rid = monitor.RegisterRegion(region, 3);
  Rng rng{12345};
  SimTime now = 0;
  // Populate 512 pages, then random re-faults (every fault also evicts).
  for (std::size_t i = 0; i < 512; ++i) {
    (void)region.Access(PageAddr(i), true);
    now = monitor.HandleFault(rid, PageAddr(i), now).wake_at;
    (void)region.Access(PageAddr(i), true);
  }
  double sum = 0;
  int n = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::size_t page = rng.NextBounded(512);
    auto a = region.Access(PageAddr(page), false);
    if (a.kind != mem::AccessKind::kUffdFault) continue;
    const SimTime t0 = now;
    auto out = monitor.HandleFault(rid, PageAddr(page), now);
    EXPECT_TRUE(out.status.ok());
    now = out.wake_at + 50 * kMicrosecond;  // think time between faults
    sum += ToMicros(out.wake_at - t0);
    ++n;
  }
  EXPECT_GT(n, 100);
  return sum / n;
}

TEST(OptimizationOrdering, AsyncOptionsReduceLatencyLikeTableTwo) {
  const double def = MeanRefaultLatencyUs(false, false);
  const double ar = MeanRefaultLatencyUs(true, false);
  const double aw = MeanRefaultLatencyUs(false, true);
  const double arw = MeanRefaultLatencyUs(true, true);
  // Table II (RAMCloud): Default 66.71 > AsyncRead 51.08 > AsyncWrite
  // 42.88 > AsyncRW 29.47. We assert the strict ordering and that the
  // combined optimizations recover a large fraction of Default's cost.
  EXPECT_LT(ar, def * 0.92);
  EXPECT_LT(aw, ar * 0.98);
  EXPECT_LT(arw, aw * 0.95);
  EXPECT_LT(arw, def * 0.70);
}

}  // namespace
}  // namespace fluid::fm
