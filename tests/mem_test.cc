// Unit tests for the memory substrate: FramePool and the userfaultfd model.
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "mem/frame_pool.h"
#include "mem/uffd.h"

namespace fluid::mem {
namespace {

constexpr VirtAddr kBase = 0x7f0000000000ULL;

std::array<std::byte, kPageSize> PatternPage(std::uint8_t seed) {
  std::array<std::byte, kPageSize> page;
  for (std::size_t i = 0; i < kPageSize; ++i)
    page[i] = static_cast<std::byte>((seed + i * 7) & 0xff);
  return page;
}

// --- FramePool -----------------------------------------------------------------

TEST(FramePool, AllocUntilExhaustion) {
  FramePool pool{4};
  EXPECT_EQ(pool.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    auto f = pool.Allocate();
    ASSERT_TRUE(f.ok());
  }
  EXPECT_EQ(pool.available(), 0u);
  auto f = pool.Allocate();
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kResourceExhausted);
}

TEST(FramePool, FreeReturnsCapacity) {
  FramePool pool{2};
  auto a = pool.Allocate();
  auto b = pool.Allocate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(pool.in_use(), 2u);
  pool.Free(*a);
  EXPECT_EQ(pool.in_use(), 1u);
  EXPECT_TRUE(pool.Allocate().ok());
}

TEST(FramePool, AllocateZeroedIsZero) {
  FramePool pool{2};
  auto a = pool.Allocate();
  ASSERT_TRUE(a.ok());
  std::memset(pool.Data(*a).data(), 0xab, kPageSize);
  pool.Free(*a);
  auto b = pool.AllocateZeroed();
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(pool.IsZeroFilled(*b));
}

TEST(FramePool, DataIsIsolatedPerFrame) {
  FramePool pool{2};
  auto a = pool.Allocate();
  auto b = pool.Allocate();
  ASSERT_TRUE(a.ok() && b.ok());
  std::memset(pool.Data(*a).data(), 0x11, kPageSize);
  std::memset(pool.Data(*b).data(), 0x22, kPageSize);
  EXPECT_EQ(pool.Data(*a)[kPageSize - 1], std::byte{0x11});
  EXPECT_EQ(pool.Data(*b)[0], std::byte{0x22});
}

// --- UffdRegion ------------------------------------------------------------------

class UffdTest : public ::testing::Test {
 protected:
  FramePool pool_{64};
  UffdRegion region_{42, kBase, 16, pool_};
};

TEST_F(UffdTest, FirstAccessFaults) {
  auto r = region_.Access(kBase, false);
  EXPECT_EQ(r.kind, AccessKind::kUffdFault);
  EXPECT_EQ(r.event.addr, kBase);
  EXPECT_EQ(r.event.pid, 42u);
  EXPECT_FALSE(r.event.is_write);
}

TEST_F(UffdTest, FaultAddressIsPageAligned) {
  auto r = region_.Access(kBase + 3 * kPageSize + 123, true);
  EXPECT_EQ(r.kind, AccessKind::kUffdFault);
  EXPECT_EQ(r.event.addr, kBase + 3 * kPageSize);
  EXPECT_TRUE(r.event.is_write);
}

TEST_F(UffdTest, ZeroPageResolvesReads) {
  ASSERT_TRUE(region_.ZeroPage(kBase).ok());
  EXPECT_EQ(region_.Access(kBase, false).kind, AccessKind::kHit);
  std::array<std::byte, 16> buf;
  buf.fill(std::byte{0xff});
  ASSERT_TRUE(region_.ReadBytes(kBase + 100, buf).ok());
  for (std::byte b : buf) EXPECT_EQ(b, std::byte{0});
  // Zero-page mappings consume no frame.
  EXPECT_EQ(region_.ResidentFrames(), 0u);
  EXPECT_EQ(region_.PresentPages(), 1u);
}

TEST_F(UffdTest, ZeroPageWriteUpgradesInKernel) {
  ASSERT_TRUE(region_.ZeroPage(kBase).ok());
  auto r = region_.Access(kBase, true);
  EXPECT_EQ(r.kind, AccessKind::kMinorZero);
  EXPECT_EQ(region_.StateOf(kBase), PteState::kMapped);
  EXPECT_EQ(region_.ResidentFrames(), 1u);
  EXPECT_TRUE(region_.IsDirty(kBase));
  // Subsequent accesses hit.
  EXPECT_EQ(region_.Access(kBase, true).kind, AccessKind::kHit);
}

TEST_F(UffdTest, ZeroPageDoubleInstallIsEexist) {
  ASSERT_TRUE(region_.ZeroPage(kBase).ok());
  const Status s = region_.ZeroPage(kBase);
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST_F(UffdTest, CopyInstallsContents) {
  const auto page = PatternPage(5);
  ASSERT_TRUE(region_.Copy(kBase + kPageSize, page).ok());
  EXPECT_EQ(region_.Access(kBase + kPageSize, false).kind, AccessKind::kHit);
  std::array<std::byte, 32> buf;
  ASSERT_TRUE(region_.ReadBytes(kBase + kPageSize + 64, buf).ok());
  EXPECT_EQ(0, std::memcmp(buf.data(), page.data() + 64, 32));
  EXPECT_FALSE(region_.IsDirty(kBase + kPageSize));  // installed, not written
}

TEST_F(UffdTest, CopyOnPresentPageIsEexist) {
  const auto page = PatternPage(6);
  ASSERT_TRUE(region_.Copy(kBase, page).ok());
  EXPECT_EQ(region_.Copy(kBase, page).code(), StatusCode::kAlreadyExists);
}

TEST_F(UffdTest, RemapMovesContentsOut) {
  const auto page = PatternPage(7);
  ASSERT_TRUE(region_.Copy(kBase, page).ok());
  auto frame = region_.Remap(kBase);
  ASSERT_TRUE(frame.ok());
  // Frame holds the exact bytes; the page is gone from the region.
  EXPECT_EQ(0, std::memcmp(pool_.Data(*frame).data(), page.data(), kPageSize));
  EXPECT_EQ(region_.StateOf(kBase), PteState::kNotMapped);
  EXPECT_EQ(region_.Access(kBase, false).kind, AccessKind::kUffdFault);
  EXPECT_EQ(region_.ResidentFrames(), 0u);
  pool_.Free(*frame);
}

TEST_F(UffdTest, RemapOfZeroPageMaterialisesZeroFrame) {
  ASSERT_TRUE(region_.ZeroPage(kBase).ok());
  auto frame = region_.Remap(kBase);
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(pool_.IsZeroFilled(*frame));
  pool_.Free(*frame);
}

TEST_F(UffdTest, RemapOfMissingPageIsNotFound) {
  auto frame = region_.Remap(kBase);
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kNotFound);
}

TEST_F(UffdTest, RoundTripPreservesData) {
  // copy -> write -> remap -> copy back: the write must survive.
  const auto page = PatternPage(8);
  ASSERT_TRUE(region_.Copy(kBase, page).ok());
  const std::uint64_t marker = 0xdeadbeefcafef00dULL;
  ASSERT_EQ(region_.Access(kBase, true).kind, AccessKind::kHit);
  ASSERT_TRUE(
      region_.WriteBytes(kBase + 8, std::as_bytes(std::span{&marker, 1}))
          .ok());
  auto frame = region_.Remap(kBase);
  ASSERT_TRUE(frame.ok());
  std::array<std::byte, kPageSize> stash;
  std::memcpy(stash.data(), pool_.Data(*frame).data(), kPageSize);
  pool_.Free(*frame);
  ASSERT_TRUE(region_.Copy(kBase, stash).ok());
  std::uint64_t got = 0;
  ASSERT_TRUE(
      region_.ReadBytes(kBase + 8, std::as_writable_bytes(std::span{&got, 1}))
          .ok());
  EXPECT_EQ(got, marker);
}

TEST_F(UffdTest, CrossPageAccessRejected) {
  ASSERT_TRUE(region_.ZeroPage(kBase).ok());
  std::array<std::byte, 32> buf;
  EXPECT_EQ(region_.ReadBytes(kBase + kPageSize - 8, buf).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(UffdTest, OutOfRangeIoctlsRejected) {
  const VirtAddr outside = kBase + 16 * kPageSize;
  EXPECT_EQ(region_.ZeroPage(outside).code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(region_.Remap(outside).ok());
}

TEST_F(UffdTest, ExpandAddsFaultablePages) {
  const VirtAddr extra = kBase + 16 * kPageSize;
  EXPECT_FALSE(region_.Contains(extra));
  region_.Expand(4);
  EXPECT_TRUE(region_.Contains(extra));
  EXPECT_EQ(region_.Access(extra, false).kind, AccessKind::kUffdFault);
  EXPECT_TRUE(region_.ZeroPage(extra).ok());
}

TEST_F(UffdTest, ReferencedBitsClearAndCount) {
  ASSERT_TRUE(region_.ZeroPage(kBase).ok());
  ASSERT_TRUE(region_.ZeroPage(kBase + kPageSize).ok());
  (void)region_.Access(kBase, false);
  EXPECT_GE(region_.ClearReferencedBits(), 1u);
  EXPECT_EQ(region_.ClearReferencedBits(), 0u);
}

TEST_F(UffdTest, DestructorReleasesFrames) {
  const std::size_t before = pool_.in_use();
  {
    UffdRegion r2{43, kBase + (1ULL << 30), 8, pool_};
    const auto page = PatternPage(9);
    ASSERT_TRUE(r2.Copy(kBase + (1ULL << 30), page).ok());
    EXPECT_EQ(pool_.in_use(), before + 1);
  }
  EXPECT_EQ(pool_.in_use(), before);
}

// Exhaustion: when the pool is dry, a zero-page write upgrade surfaces as a
// uffd fault so the driver can reclaim.
TEST(UffdExhaustion, ZeroUpgradeWithoutFramesFaults) {
  FramePool tiny{1};
  UffdRegion region{1, kBase, 4, tiny};
  ASSERT_TRUE(region.ZeroPage(kBase).ok());
  ASSERT_TRUE(region.ZeroPage(kBase + kPageSize).ok());
  EXPECT_EQ(region.Access(kBase, true).kind, AccessKind::kMinorZero);
  // Pool now empty; the second upgrade cannot allocate.
  EXPECT_EQ(region.Access(kBase + kPageSize, true).kind,
            AccessKind::kUffdFault);
}

}  // namespace
}  // namespace fluid::mem
