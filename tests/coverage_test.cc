// Cross-cutting coverage: testbed wiring over every backend, docstore page
// cache, census scaling sweeps, flush-age behaviour, and API edges not
// owned by any single-module suite.
#include <gtest/gtest.h>

#include "fluidmem/monitor.h"
#include "kvstore/local_store.h"
#include "mem/uffd.h"
#include "workloads/docstore.h"
#include "workloads/testbed.h"

namespace fluid {
namespace {

// --- Testbed wiring over all six configurations ------------------------------------

class TestbedWiring : public ::testing::TestWithParam<wl::Backend> {};

TEST_P(TestbedWiring, BootsAndExposesTheRightMechanism) {
  wl::TestbedConfig cfg;
  cfg.local_dram_pages = 256;
  cfg.vm_app_pages = 512;
  wl::Testbed bed{GetParam(), cfg};
  EXPECT_EQ(bed.name(), wl::BackendName(GetParam()));
  const SimTime booted = bed.Boot(0);
  EXPECT_GT(booted, 0u);
  EXPECT_GT(bed.memory().ResidentPages(), 0u);
  if (wl::IsFluid(GetParam())) {
    ASSERT_NE(bed.fluid_vm(), nullptr);
    EXPECT_EQ(bed.swap_vm(), nullptr);
    EXPECT_EQ(bed.memory().mechanism(), "fluidmem");
    ASSERT_NE(bed.store(), nullptr);
    // The census scales to ~30% of local DRAM.
    EXPECT_NEAR(static_cast<double>(bed.census().TotalPages()),
                0.30 * 256, 16.0);
  } else {
    ASSERT_NE(bed.swap_vm(), nullptr);
    EXPECT_EQ(bed.fluid_vm(), nullptr);
    EXPECT_EQ(bed.memory().mechanism(), "swap");
    // The swap VM cannot exceed its DRAM allotment.
    EXPECT_LE(bed.memory().ResidentPages(), 256u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, TestbedWiring,
    ::testing::Values(wl::Backend::kFluidDram, wl::Backend::kFluidRamcloud,
                      wl::Backend::kFluidMemcached, wl::Backend::kSwapDram,
                      wl::Backend::kSwapNvmeof, wl::Backend::kSwapSsd),
    [](const auto& info) {
      std::string n{wl::BackendName(info.param)};
      for (char& c : n)
        if (c == ' ') c = '_';
      return n;
    });

// --- DocStore guest page cache ------------------------------------------------------

struct DocRig {
  wl::TestbedConfig tb;
  wl::Testbed bed;
  blk::BlockDevice disk = blk::MakeSsdDevice(8192);

  DocRig() : tb(MakeTb()), bed(wl::Backend::kFluidDram, tb) {}
  static wl::TestbedConfig MakeTb() {
    wl::TestbedConfig tb;
    tb.local_dram_pages = 2048;
    tb.vm_app_pages = 4096;
    return tb;
  }
};

TEST(DocstorePageCache, RepeatMissesHitThePageCache) {
  DocRig rig;
  wl::DocstoreConfig cfg;
  cfg.record_count = 2000;
  cfg.cache_bytes = 64 * 1024;  // tiny WT cache: 64 records
  cfg.cache_base = rig.bed.layout().app_base;
  cfg.heap_pages = 64;
  cfg.pagecache_pages = 512;  // big page cache
  wl::DocStore store{cfg, rig.bed.memory(), rig.disk};
  SimTime now = rig.bed.Boot(0);
  now = store.Load(now);

  // Two sweeps over 400 records: the WT cache (64) can't hold them, the
  // page cache (512 blocks = 2048 records) can.
  for (int sweep = 0; sweep < 2; ++sweep)
    for (std::uint64_t id = 0; id < 400; ++id)
      now = store.Read(id, now).done;
  EXPECT_GT(store.PageCacheHits(), 300u);
}

TEST(DocstorePageCache, DisabledCacheMeansEveryMissHitsDisk) {
  DocRig rig;
  wl::DocstoreConfig cfg;
  cfg.record_count = 1000;
  cfg.cache_bytes = 64 * 1024;
  cfg.cache_base = rig.bed.layout().app_base;
  cfg.heap_pages = 64;
  cfg.pagecache_pages = 0;
  wl::DocStore store{cfg, rig.bed.memory(), rig.disk};
  SimTime now = rig.bed.Boot(0);
  now = store.Load(now);
  const auto reads_before = rig.disk.reads();
  for (int sweep = 0; sweep < 2; ++sweep)
    for (std::uint64_t id = 0; id < 200; ++id)
      now = store.Read(id, now).done;
  EXPECT_EQ(store.PageCacheHits(), 0u);
  EXPECT_GT(rig.disk.reads(), reads_before + 300);
}

// --- census scaling property ---------------------------------------------------------

class CensusSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CensusSweep, PartitionAndScaleInvariants) {
  const std::size_t divisor = GetParam();
  const vm::OsCensus c = vm::MakeBootCensus(divisor);
  EXPECT_EQ(c.TotalPages(), 81042u / divisor);
  EXPECT_EQ(c.kernel_pages + c.file_pages + c.anon_pages +
                c.unevictable_pages,
            c.TotalPages());
  // Pinned fraction stays under the balloon floor proportion (Table III).
  EXPECT_LT(c.PinnedPages(), c.TotalPages() * 20 / 100 + 2);
  // Layout covers exactly census + app pages, contiguously.
  const vm::VmLayout l = vm::MakeLayout(c, 128);
  EXPECT_EQ((l.app_base - l.kernel_base) / kPageSize, c.TotalPages());
  EXPECT_EQ(l.AppAddr(0), l.app_base);
  EXPECT_EQ(l.AppAddr(5), l.app_base + 5 * kPageSize);
}

INSTANTIATE_TEST_SUITE_P(Divisors, CensusSweep,
                         ::testing::Values(1u, 4u, 64u, 300u, 1000u));

// --- monitor flush-age behaviour ------------------------------------------------------

TEST(Monitor, StaleWritesFlushByAgeViaPump) {
  mem::FramePool pool{1024};
  kv::LocalDramStore store;
  fm::MonitorConfig cfg;
  cfg.lru_capacity_pages = 4;
  cfg.write_batch_pages = 100;            // never fills
  cfg.flush_max_age = 1 * kMillisecond;   // but ages out fast
  fm::Monitor monitor{cfg, store, pool};
  constexpr VirtAddr kBase = 0x7f0000000000ULL;
  mem::UffdRegion region{1, kBase, 64, pool};
  const fm::RegionId rid = monitor.RegisterRegion(region, 1);
  SimTime now = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    (void)region.Access(kBase + i * kPageSize, true);
    now = monitor.HandleFault(rid, kBase + i * kPageSize, now).wake_at;
    (void)region.Access(kBase + i * kPageSize, true);
  }
  ASSERT_GT(monitor.write_list().PendingCount(), 0u);
  // The periodic flush thread wakes long after the age threshold.
  monitor.PumpBackground(now + 10 * kMillisecond);
  EXPECT_EQ(monitor.write_list().PendingCount(), 0u);
  EXPECT_GT(monitor.stats().flush_batches, 0u);
}

TEST(Monitor, RegionIntrospectionAccessors) {
  mem::FramePool pool{64};
  kv::LocalDramStore store;
  fm::Monitor monitor{fm::MonitorConfig{}, store, pool};
  constexpr VirtAddr kBase = 0x7f0000000000ULL;
  mem::UffdRegion region{1, kBase, 8, pool};
  const fm::RegionId rid = monitor.RegisterRegion(region, 17);
  EXPECT_EQ(monitor.region_of(rid), &region);
  EXPECT_EQ(monitor.partition_of(rid), 17);
  EXPECT_EQ(monitor.region_of(rid + 1), nullptr);
}

// --- misc edges ----------------------------------------------------------------------

TEST(LatencyHistogram, QuantilesAreMonotone) {
  LatencyHistogram h;
  Rng rng{5};
  for (int i = 0; i < 5000; ++i)
    h.Record(100 + rng.NextBounded(10'000'000));
  double prev = 0;
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const double q = h.QuantileNs(p);
    EXPECT_GE(q, prev) << "p=" << p;
    prev = q;
  }
  // Quantiles report bucket upper edges, which can slightly exceed the
  // exact max; allow one bucket's width of slack (~6% per decade/40).
  EXPECT_GE(h.MaxNs() * 1.07, prev);
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(Transport, MeanRttTracksEmpiricalMean) {
  auto t = net::MakeVerbsTransport();
  Rng rng{3};
  double sum = 0;
  const int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += ToMicros(t.SampleRtt(0, 4096, rng));
  EXPECT_NEAR(sum / kN, t.MeanRttUs(4096), t.MeanRttUs(4096) * 0.05);
}

}  // namespace
}  // namespace fluid
