// Tests for the fault-path observability layer: span lifecycle (every fault
// closes exactly one span; per-span stage sums equal the end-to-end duration
// exactly), the metrics registry (counters, gauges, snapshots, virtual-time
// sampling), the bounded flight recorder, the Chrome-trace/metrics
// exporters, and the cardinal invariant that enabling observability never
// changes a replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "fluidmem/monitor.h"
#include "kvstore/local_store.h"
#include "mem/uffd.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace_export.h"

namespace fluid::obs {
namespace {

constexpr VirtAddr kBase = 0x7f0000000000ULL;
constexpr VirtAddr PageAddr(std::size_t i) { return kBase + i * kPageSize; }

// --- SpanCursor --------------------------------------------------------------------

TEST(SpanCursor, AdvanceChargesElapsedTimeToStages) {
  FaultSpan span;
  span.start = 1000;
  SpanCursor c;
  c.Bind(&span);
  ASSERT_TRUE(c.active());
  c.Advance(Stage::kKernelDelivery, 1200);
  c.Advance(Stage::kDispatch, 1500);
  c.Advance(Stage::kDispatch, 1400);  // time never runs backwards: no-op
  c.Close(2000, /*ok=*/true);
  EXPECT_EQ(span.stage_ns[static_cast<std::size_t>(Stage::kKernelDelivery)],
            200u);
  EXPECT_EQ(span.stage_ns[static_cast<std::size_t>(Stage::kDispatch)], 300u);
  // Close absorbs the remainder into the wake stage.
  EXPECT_EQ(span.stage_ns[static_cast<std::size_t>(Stage::kWake)], 500u);
  EXPECT_EQ(span.end, 2000u);
  EXPECT_TRUE(span.ok);
  EXPECT_EQ(span.StageSumNs(), span.DurationNs());
}

TEST(SpanCursor, UnboundCursorIsInertAndCheap) {
  SpanCursor c;
  EXPECT_FALSE(c.active());
  c.Advance(Stage::kInstall, 500);  // must not crash
  c.SetKind(FaultKind::kRemote);
  c.Close(900, true);
}

TEST(SpanNames, EveryStageAndKindHasAName) {
  for (std::size_t i = 0; i < kStageCount; ++i)
    EXPECT_FALSE(
        std::string_view{StageName(static_cast<Stage>(i))}.empty());
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(FaultKind::kCount); ++i)
    EXPECT_FALSE(
        std::string_view{FaultKindName(static_cast<FaultKind>(i))}.empty());
}

// --- MetricsRegistry ---------------------------------------------------------------

TEST(MetricsRegistry, CounterIsCreateOrGet) {
  MetricsRegistry reg;
  reg.Counter("a.faults") += 3;
  reg.Counter("a.faults") += 4;
  EXPECT_EQ(reg.Counter("a.faults"), 7u);
}

TEST(MetricsRegistry, SnapshotMergesCountersAndGauges) {
  MetricsRegistry reg;
  reg.Counter("z.counter") = 5;
  double live = 1.5;
  reg.Gauge("a.gauge", [&live] { return live; });
  live = 2.5;
  const auto snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  // Sorted by name; the gauge is evaluated at snapshot time.
  EXPECT_EQ(snap[0].first, "a.gauge");
  EXPECT_DOUBLE_EQ(snap[0].second, 2.5);
  EXPECT_EQ(snap[1].first, "z.counter");
  EXPECT_DOUBLE_EQ(snap[1].second, 5.0);
}

TEST(MetricsRegistry, SamplesOnVirtualTimeCadence) {
  MetricsRegistry reg;
  reg.Counter("n") = 0;
  reg.MaybeSample(100);  // sampling disabled: no series point
  EXPECT_TRUE(reg.series().empty());
  reg.EnableSampling(1000);
  reg.Counter("n") = 1;
  reg.MaybeSample(0);  // first eligible instant samples immediately
  reg.Counter("n") = 2;
  reg.MaybeSample(500);  // before the next cadence point: skipped
  reg.MaybeSample(1000);
  ASSERT_EQ(reg.series().size(), 2u);
  EXPECT_EQ(reg.series()[0].at, 0u);
  EXPECT_EQ(reg.series()[1].at, 1000u);
  EXPECT_DOUBLE_EQ(reg.series()[0].values[0].second, 1.0);
  EXPECT_DOUBLE_EQ(reg.series()[1].values[0].second, 2.0);
}

// --- FlightRecorder ----------------------------------------------------------------

TEST(FlightRecorder, InternedCategoriesAreStable) {
  FlightRecorder fr{8};
  const auto a = fr.Intern("evict");
  const auto b = fr.Intern("fault");
  EXPECT_NE(a, b);
  EXPECT_EQ(fr.Intern("evict"), a);
  EXPECT_EQ(fr.CategoryName(a), "evict");
  ASSERT_TRUE(fr.FindCategory("fault").has_value());
  EXPECT_EQ(*fr.FindCategory("fault"), b);
  EXPECT_FALSE(fr.FindCategory("nope").has_value());
}

TEST(FlightRecorder, RingDropsOldestAndKeepsLifetimeCounts) {
  FlightRecorder fr{3};
  const auto cat = fr.Intern("op");
  for (int i = 0; i < 5; ++i)
    fr.Record(100 + i, cat, "msg" + std::to_string(i));
  EXPECT_EQ(fr.size(), 3u);
  EXPECT_EQ(fr.total_recorded(), 5u);
  EXPECT_EQ(fr.dropped(), 2u);
  // Lifetime category count includes the rotated-out entries.
  EXPECT_EQ(fr.CountCategory(cat), 5u);
  std::vector<std::string> kept;
  fr.ForEach([&](const FlightRecorder::Entry& e) {
    kept.push_back(e.message);
  });
  ASSERT_EQ(kept.size(), 3u);  // oldest-first: msg2, msg3, msg4
  EXPECT_EQ(kept.front(), "msg2");
  EXPECT_EQ(kept.back(), "msg4");
  fr.Clear();
  EXPECT_EQ(fr.size(), 0u);
  EXPECT_EQ(fr.CountCategory(cat), 0u);
  EXPECT_EQ(fr.CategoryName(cat), "op");  // interning survives Clear
}

// --- Span lifecycle through the monitor --------------------------------------------

struct Rig {
  mem::FramePool pool;
  kv::LocalDramStore store;
  fm::Monitor monitor;
  mem::UffdRegion region;
  fm::RegionId rid;

  explicit Rig(std::size_t lru_pages = 8, std::size_t shards = 1)
      : pool(4096),
        store(kv::LocalStoreConfig{}),
        monitor(Config(lru_pages, shards), store, pool),
        region(7, kBase, 1024, pool),
        rid(monitor.RegisterRegion(region, /*partition=*/3)) {}

  static fm::MonitorConfig Config(std::size_t lru_pages, std::size_t shards) {
    fm::MonitorConfig cfg;
    cfg.lru_capacity_pages = lru_pages;
    cfg.write_batch_pages = 4;
    cfg.fault_shards = shards;
    return cfg;
  }

  SimTime Fault(std::size_t page, SimTime now, bool is_write = false) {
    auto a = region.Access(PageAddr(page), is_write);
    EXPECT_EQ(a.kind, mem::AccessKind::kUffdFault);
    auto out = monitor.HandleFault(rid, PageAddr(page), now);
    EXPECT_TRUE(out.status.ok());
    return out.wake_at;
  }

  // Cycle 24 pages through an 8-page LRU with writebacks and refaults, so
  // the span stream covers first-access, eviction, writeback, steal,
  // spilled-in-write-list, and remote-read fault kinds.
  SimTime Storm(SimTime now) {
    for (int round = 0; round < 3; ++round) {
      for (std::size_t p = 0; p < 24; ++p) now = Fault(p, now, true);
      now = monitor.DrainWrites(now);
    }
    return now;
  }
};

TEST(SpanLifecycle, EveryFaultClosesExactlyOneSpan) {
  Rig rig;
  Observability obs;
  obs.Enable();
  rig.monitor.AttachObservability(obs);
  const SimTime end = rig.Storm(0);
  (void)end;
  const auto& st = rig.monitor.stats();
  EXPECT_GT(st.faults, 0u);
  EXPECT_EQ(obs.spans_started(), st.faults);
  EXPECT_EQ(obs.spans_finished(), st.faults);
  EXPECT_EQ(obs.spans_failed(), 0u);
  EXPECT_EQ(obs.spans().size() + obs.spans_dropped(), st.faults);
}

TEST(SpanLifecycle, StageSumsEqualEndToEndExactly) {
  Rig rig;
  Observability obs;
  obs.Enable();
  rig.monitor.AttachObservability(obs);
  rig.Storm(0);
  ASSERT_FALSE(obs.spans().empty());
  std::uint64_t kinds_seen = 0;
  for (const FaultSpan& s : obs.spans()) {
    EXPECT_EQ(s.StageSumNs(), s.DurationNs())
        << "span " << s.id << " kind " << FaultKindName(s.kind);
    EXPECT_GE(s.end, s.start);
    EXPECT_NE(s.kind, FaultKind::kUnknown) << "span " << s.id;
    kinds_seen |= 1ull << static_cast<unsigned>(s.kind);
  }
  // The storm must exercise at least first-access and remote-read faults.
  EXPECT_TRUE(kinds_seen & (1ull << static_cast<unsigned>(
                                FaultKind::kFirstAccess)));
  EXPECT_TRUE(kinds_seen &
              (1ull << static_cast<unsigned>(FaultKind::kRemote)));
  // And the aggregate view reconciles: sum over stages == histogram sum.
  std::uint64_t stage_sum = 0;
  for (std::size_t i = 0; i < kStageCount; ++i)
    stage_sum += obs.StageTotalNs(static_cast<Stage>(i));
  EXPECT_EQ(stage_sum, obs.StageTotalSumNs());
  EXPECT_EQ(obs.end_to_end().Count(), obs.spans_finished());
}

TEST(SpanLifecycle, DisabledObservabilityRecordsNothing) {
  Rig rig;
  Observability obs;  // never enabled
  rig.monitor.AttachObservability(obs);
  rig.Storm(0);
  EXPECT_EQ(obs.spans_started(), 0u);
  EXPECT_EQ(obs.spans_finished(), 0u);
  EXPECT_TRUE(obs.spans().empty());
  EXPECT_EQ(obs.end_to_end().Count(), 0u);
}

// The cardinal invariant: observability only *records*. The same fault
// sequence replays byte-identically with tracing enabled, disabled, and
// absent — identical wake times and identical monitor stats.
TEST(SpanLifecycle, EnablingObservabilityNeverChangesTheReplay) {
  auto run = [](int mode, std::vector<SimTime>& wakes) {
    Rig rig;
    Observability obs;
    if (mode == 1) rig.monitor.AttachObservability(obs);  // attached, off
    if (mode == 2) {
      obs.Enable();
      obs.metrics().EnableSampling(10 * kMicrosecond);
      rig.monitor.AttachObservability(obs);
    }
    SimTime now = 0;
    for (int round = 0; round < 3; ++round) {
      for (std::size_t p = 0; p < 24; ++p) {
        now = rig.Fault(p, now, true);
        wakes.push_back(now);
      }
      now = rig.monitor.DrainWrites(now);
      wakes.push_back(now);
    }
    return rig.monitor.stats();
  };
  std::vector<SimTime> w0, w1, w2;
  const auto s0 = run(0, w0);
  const auto s1 = run(1, w1);
  const auto s2 = run(2, w2);
  EXPECT_EQ(w0, w1);
  EXPECT_EQ(w0, w2);
  EXPECT_EQ(s0.faults, s2.faults);
  EXPECT_EQ(s0.evictions, s2.evictions);
  EXPECT_EQ(s0.flushed_pages, s2.flushed_pages);
  EXPECT_EQ(s0.refaults, s2.refaults);
  EXPECT_EQ(s0.steals, s2.steals);
}

TEST(SpanLifecycle, ShardedEngineTagsShardsAndStaysReconciled) {
  Rig rig{/*lru_pages=*/8, /*shards=*/4};
  Observability obs;
  obs.Enable();
  rig.monitor.AttachObservability(obs);
  rig.Storm(0);
  ASSERT_FALSE(obs.spans().empty());
  bool nonzero_shard = false;
  for (const FaultSpan& s : obs.spans()) {
    EXPECT_LT(s.shard, 4u);
    nonzero_shard |= s.shard != 0;
    EXPECT_EQ(s.StageSumNs(), s.DurationNs());
  }
  EXPECT_TRUE(nonzero_shard);
}

TEST(SpanLifecycle, BoundedSpanWindowDropsOldest) {
  Rig rig;
  Observability obs{/*span_capacity=*/16};
  obs.Enable();
  rig.monitor.AttachObservability(obs);
  rig.Storm(0);
  EXPECT_EQ(obs.spans().size(), 16u);
  EXPECT_GT(obs.spans_dropped(), 0u);
  // The histogram still saw every span, only the detail window is bounded.
  EXPECT_EQ(obs.end_to_end().Count(), obs.spans_finished());
}

// --- Exporters ---------------------------------------------------------------------

TEST(TraceExport, WritesParsableChromeTraceAndMetrics) {
  Rig rig;
  Observability obs;
  obs.Enable();
  obs.metrics().EnableSampling(10 * kMicrosecond);
  rig.monitor.AttachObservability(obs);
  rig.Storm(0);

  const std::string trace_path = "obs_test_trace.json";
  const std::string metrics_path = "obs_test_metrics.json";
  ASSERT_TRUE(WriteChromeTrace(obs, trace_path));
  ASSERT_TRUE(WriteMetricsJson(obs, metrics_path));

  auto slurp = [](const std::string& p) {
    std::string out;
    std::FILE* f = std::fopen(p.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    if (f == nullptr) return out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
    std::fclose(f);
    return out;
  };
  const std::string trace = slurp(trace_path);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("first_access"), std::string::npos);
  EXPECT_NE(trace.find("remote_read"), std::string::npos);
  EXPECT_EQ(trace.find("\n\n"), std::string::npos);
  const std::string metrics = slurp(metrics_path);
  EXPECT_NE(metrics.find("monitor.faults"), std::string::npos);
  EXPECT_NE(metrics.find("\"series\""), std::string::npos);
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST(TraceExport, FlightRecorderDumpNamesSpansAndEvents) {
  Rig rig;
  Observability obs;
  obs.Enable();
  rig.monitor.AttachObservability(obs);
  const auto cat = obs.recorder().Intern("test_event");
  obs.recorder().Record(42, cat, "something happened");
  rig.Storm(0);
  const std::string dump = DumpFlightRecorder(obs, /*max_spans=*/4);
  EXPECT_NE(dump.find("flight recorder"), std::string::npos);
  EXPECT_NE(dump.find("test_event"), std::string::npos);
  EXPECT_NE(dump.find("something happened"), std::string::npos);
  EXPECT_NE(dump.find("span"), std::string::npos);
  EXPECT_NE(dump.find("end flight recorder"), std::string::npos);
}

}  // namespace
}  // namespace fluid::obs
