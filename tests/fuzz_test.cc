// Randomized property tests ("fuzz with invariants"): long deterministic
// random op sequences against each subsystem, checking the structural
// invariants and data integrity after every step. Seeds are parameterized
// so several independent sequences run per suite.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <map>
#include <memory>

#include "fluidmem/monitor.h"
#include "kvstore/decorators.h"
#include "kvstore/local_store.h"
#include "kvstore/memcached.h"
#include "kvstore/ramcloud.h"
#include "mem/uffd.h"
#include "swap/guest_mm.h"
#include "workloads/testbed.h"

namespace fluid {
namespace {

constexpr VirtAddr kBase = 0x7f0000000000ULL;
constexpr VirtAddr PageAddr(std::size_t i) { return kBase + i * kPageSize; }

// --- UffdRegion fuzz: no frame leaks, states always consistent ---------------------

class UffdFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UffdFuzz, RandomOpsNeverLeakFrames) {
  mem::FramePool pool{512};
  constexpr std::size_t kPages = 64;
  mem::UffdRegion region{1, kBase, kPages, pool};
  Rng rng{GetParam()};
  // Frames we hold after Remap (the "monitor buffer").
  std::vector<FrameId> held;

  for (int step = 0; step < 4000; ++step) {
    const std::size_t page = rng.NextBounded(kPages);
    const VirtAddr addr = PageAddr(page);
    switch (rng.NextBounded(5)) {
      case 0: {  // access
        const bool write = rng.NextBounded(2) == 1;
        const auto r = region.Access(addr, write);
        if (r.kind == mem::AccessKind::kUffdFault)
          EXPECT_FALSE(region.IsPresent(addr));
        break;
      }
      case 1: {  // zeropage
        const Status s = region.ZeroPage(addr);
        EXPECT_TRUE(s.ok() || s.code() == StatusCode::kAlreadyExists);
        break;
      }
      case 2: {  // copy
        std::array<std::byte, kPageSize> buf;
        buf.fill(static_cast<std::byte>(step & 0xff));
        const Status s = region.Copy(addr, buf);
        EXPECT_TRUE(s.ok() || s.code() == StatusCode::kAlreadyExists);
        break;
      }
      case 3: {  // remap out
        auto f = region.Remap(addr);
        if (f.ok()) {
          held.push_back(*f);
          EXPECT_FALSE(region.IsPresent(addr));
        } else {
          EXPECT_EQ(f.status().code(), StatusCode::kNotFound);
        }
        break;
      }
      case 4: {  // release a held frame
        if (!held.empty()) {
          pool.Free(held.back());
          held.pop_back();
        }
        break;
      }
    }
    // INVARIANT: every allocated frame is accounted for — either mapped in
    // the region or held by "the monitor".
    ASSERT_EQ(pool.in_use(), region.ResidentFrames() + held.size())
        << "frame leak at step " << step;
    ASSERT_LE(region.PresentPages(), kPages);
  }
  for (FrameId f : held) pool.Free(f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UffdFuzz,
                         ::testing::Values(1ull, 77ull, 4096ull, 31337ull));

// --- KV store differential fuzz: every store vs a reference map --------------------

class StoreFuzz
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {
 protected:
  static std::unique_ptr<kv::KvStore> Make(const std::string& kind) {
    if (kind == "ramcloud")
      return std::make_unique<kv::RamcloudStore>(kv::RamcloudConfig{
          .memory_cap_bytes = 64ULL << 20, .segment_bytes = 96 * 4096});
    if (kind == "memcached")
      return std::make_unique<kv::MemcachedStore>(
          kv::MemcachedConfig{.memory_cap_bytes = 64ULL << 20});
    if (kind == "compressed")
      return std::make_unique<kv::CompressedStore>(
          kv::CompressedStoreConfig{.memory_cap_bytes = 64ULL << 20});
    return std::make_unique<kv::LocalDramStore>();
  }
};

TEST_P(StoreFuzz, MatchesReferenceMap) {
  auto store = Make(std::get<0>(GetParam()));
  Rng rng{std::get<1>(GetParam())};
  // Reference: (partition, page index) -> seed of the stored pattern.
  std::map<std::pair<PartitionId, std::size_t>, std::uint32_t> ref;

  auto pattern = [](std::uint32_t seed) {
    std::array<std::byte, kPageSize> p;
    for (std::size_t i = 0; i < kPageSize; ++i)
      p[i] = static_cast<std::byte>((seed * 97 + i / 8) & 0xff);
    return p;
  };

  SimTime now = 0;
  for (int step = 0; step < 3000; ++step) {
    const PartitionId part = static_cast<PartitionId>(rng.NextBounded(3));
    const std::size_t page = rng.NextBounded(256);
    const kv::Key key = kv::MakePageKey(PageAddr(page));
    switch (rng.NextBounded(4)) {
      case 0: {  // put
        const auto seed = static_cast<std::uint32_t>(rng());
        auto r = store->Put(part, key, pattern(seed), now);
        ASSERT_TRUE(r.status.ok());
        now = r.complete_at;
        ref[{part, page}] = seed;
        break;
      }
      case 1: {  // get + verify
        std::array<std::byte, kPageSize> out{};
        auto r = store->Get(part, key, out, now);
        now = r.complete_at;
        auto it = ref.find({part, page});
        if (it == ref.end()) {
          ASSERT_EQ(r.status.code(), StatusCode::kNotFound) << step;
        } else {
          ASSERT_TRUE(r.status.ok()) << step;
          const auto expect = pattern(it->second);
          ASSERT_EQ(0, std::memcmp(out.data(), expect.data(), kPageSize))
              << "step " << step;
        }
        break;
      }
      case 2: {  // remove
        auto r = store->Remove(part, key, now);
        now = r.complete_at;
        const bool existed = ref.erase({part, page}) > 0;
        ASSERT_EQ(r.status.ok(), existed) << step;
        break;
      }
      case 3: {  // multiput a small batch
        std::vector<std::array<std::byte, kPageSize>> pages;
        std::vector<kv::KvWrite> writes;
        const std::size_t n = 1 + rng.NextBounded(6);
        pages.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          const std::size_t p2 = rng.NextBounded(256);
          const auto seed = static_cast<std::uint32_t>(rng());
          pages.push_back(pattern(seed));
          writes.push_back(
              kv::KvWrite{kv::MakePageKey(PageAddr(p2)), pages.back()});
          ref[{part, p2}] = seed;
        }
        // Duplicate keys in one batch apply in order (last writer wins),
        // matching the in-order ref updates above.
        auto r = store->MultiPut(part, writes, now);
        ASSERT_TRUE(r.status.ok());
        now = r.complete_at;
        break;
      }
    }
    // INVARIANT: object count matches the reference exactly.
    ASSERT_EQ(store->ObjectCount(), ref.size()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    StoresAndSeeds, StoreFuzz,
    ::testing::Combine(::testing::Values("ramcloud", "memcached", "local",
                                         "compressed"),
                       ::testing::Values(5ull, 999ull)),
    [](const auto& info) {
      return std::string{std::get<0>(info.param)} + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// --- Monitor fuzz: faults, resizes, quotas, drains — nothing breaks ----------------

class MonitorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MonitorFuzz, RandomDriverPreservesEveryInvariant) {
  mem::FramePool pool{4096};
  kv::RamcloudStore store{kv::RamcloudConfig{.memory_cap_bytes = 1ULL << 30}};
  fm::MonitorConfig cfg;
  cfg.lru_capacity_pages = 64;
  cfg.write_batch_pages = 8;
  fm::Monitor monitor{cfg, store, pool};
  constexpr std::size_t kPages = 256;
  mem::UffdRegion region{1, kBase, kPages, pool};
  const fm::RegionId rid = monitor.RegisterRegion(region, 3);

  Rng rng{GetParam()};
  std::map<std::size_t, std::uint64_t> ref;  // page -> last written value
  SimTime now = 0;

  for (int step = 0; step < 3000; ++step) {
    switch (rng.NextBounded(8)) {
      case 0:
      case 1:
      case 2: {  // write a page
        const std::size_t page = rng.NextBounded(kPages);
        auto a = region.Access(PageAddr(page), true);
        if (a.kind == mem::AccessKind::kUffdFault) {
          auto out = monitor.HandleFault(rid, PageAddr(page), now);
          ASSERT_TRUE(out.status.ok()) << step;
          now = out.wake_at;
          (void)region.Access(PageAddr(page), true);
        }
        const std::uint64_t v = (static_cast<std::uint64_t>(step) << 20) | page;
        ASSERT_TRUE(region
                        .WriteBytes(PageAddr(page) + 24,
                                    std::as_bytes(std::span{&v, 1}))
                        .ok());
        ref[page] = v;
        break;
      }
      case 3:
      case 4: {  // read + verify a page
        const std::size_t page = rng.NextBounded(kPages);
        auto a = region.Access(PageAddr(page), false);
        if (a.kind == mem::AccessKind::kUffdFault) {
          auto out = monitor.HandleFault(rid, PageAddr(page), now);
          ASSERT_TRUE(out.status.ok()) << step;
          now = out.wake_at;
        }
        std::uint64_t got = 0;
        ASSERT_TRUE(region
                        .ReadBytes(PageAddr(page) + 24,
                                   std::as_writable_bytes(std::span{&got, 1}))
                        .ok());
        auto it = ref.find(page);
        ASSERT_EQ(got, it == ref.end() ? 0u : it->second)
            << "page " << page << " step " << step;
        break;
      }
      case 5: {  // resize the buffer
        const std::size_t cap = 8 + rng.NextBounded(128);
        now = monitor.SetLruCapacity(cap, now);
        ASSERT_LE(monitor.ResidentPages(), cap) << step;
        break;
      }
      case 6: {  // toggle a quota
        const std::size_t q = rng.NextBounded(2) == 0
                                  ? 0
                                  : 4 + rng.NextBounded(64);
        now = monitor.SetRegionQuota(rid, q, now);
        if (q != 0) ASSERT_LE(monitor.RegionResidentPages(rid), q) << step;
        break;
      }
      case 7: {  // background pump / drain
        if (rng.NextBounded(4) == 0)
          now = monitor.DrainWrites(now);
        else
          monitor.PumpBackground(now);
        break;
      }
    }
    // INVARIANTS (every step):
    ASSERT_LE(monitor.ResidentPages(), monitor.LruCapacity()) << step;
    ASSERT_EQ(monitor.stats().lost_page_errors, 0u) << step;
    // Frame accounting: frames in use = region-resident frames + write
    // buffers (pending + in-flight).
    ASSERT_EQ(pool.in_use(),
              region.ResidentFrames() + monitor.write_list().PendingCount() +
                  monitor.write_list().InFlightCount())
        << "frame accounting broke at step " << step;
  }

  // Final sweep: every page ever written still holds its value.
  now = monitor.DrainWrites(now);
  for (const auto& [page, v] : ref) {
    auto a = region.Access(PageAddr(page), false);
    if (a.kind == mem::AccessKind::kUffdFault) {
      auto out = monitor.HandleFault(rid, PageAddr(page), now);
      ASSERT_TRUE(out.status.ok());
      now = out.wake_at;
    }
    std::uint64_t got = 0;
    ASSERT_TRUE(region
                    .ReadBytes(PageAddr(page) + 24,
                               std::as_writable_bytes(std::span{&got, 1}))
                    .ok());
    ASSERT_EQ(got, v) << "final sweep page " << page;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonitorFuzz,
                         ::testing::Values(21ull, 1213ull, 808017ull));

// --- Swap guest fuzz: reclaim under chaos keeps its promises ------------------------

class SwapFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SwapFuzz, GuestReclaimNeverLosesDataOrPinnedPages) {
  blk::BlockDevice swap_dev = blk::MakePmemDevice(8192);
  blk::BlockDevice fs_dev = blk::MakeSsdDevice(8192);
  swap::GuestKernelMm mm{swap::GuestMmConfig{.dram_frames = 96}, swap_dev,
                         fs_dev};
  constexpr std::size_t kPinned = 16;
  constexpr std::size_t kAnon = 256;
  mm.DefineRange(PageAddr(0), kPinned, swap::PageClass::kKernel);
  mm.DefineRange(PageAddr(kPinned), kAnon, swap::PageClass::kAnon);
  SimTime now = mm.TouchRange(PageAddr(0), kPinned, 0);
  ASSERT_EQ(mm.ResidentPinned(), kPinned);

  Rng rng{GetParam()};
  std::map<std::size_t, std::uint64_t> ref;
  for (int step = 0; step < 3000; ++step) {
    const std::size_t page = kPinned + rng.NextBounded(kAnon);
    const bool write = rng.NextBounded(2) == 1;
    auto r = mm.Access(PageAddr(page), write, now);
    ASSERT_TRUE(r.status.ok()) << step;
    now = r.done;
    if (write) {
      const std::uint64_t v = (static_cast<std::uint64_t>(step) << 16) | page;
      ASSERT_TRUE(mm.WriteBytes(PageAddr(page) + 32,
                                std::as_bytes(std::span{&v, 1}))
                      .ok());
      ref[page] = v;
    } else {
      std::uint64_t got = 0;
      ASSERT_TRUE(mm.ReadBytes(PageAddr(page) + 32,
                               std::as_writable_bytes(std::span{&got, 1}))
                      .ok());
      auto it = ref.find(page);
      ASSERT_EQ(got, it == ref.end() ? 0u : it->second) << "step " << step;
    }
    // INVARIANTS: DRAM budget respected; pinned pages never reclaimed.
    ASSERT_LE(mm.ResidentFrames(), 96u) << step;
    ASSERT_EQ(mm.ResidentPinned(), kPinned) << step;
    // Occasional balloon squeeze and recovery.
    if (step % 700 == 699) {
      now = mm.BalloonReclaim(kPinned + 8, now);
      ASSERT_GE(mm.ResidentFrames(), kPinned) << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwapFuzz,
                         ::testing::Values(3ull, 456ull, 78910ull));

}  // namespace
}  // namespace fluid
